// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-run all|fig1|table1|table2|table3|table4|table5|fig4|
//	             table6|fig5|fig6|fig7|table7|table8|featimp|models|ablation]
//	            [-full] [-seed N] [-queries N]
//
// By default a quick configuration runs (seconds per experiment); -full
// uses the configuration recorded in EXPERIMENTS.md (minutes).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"progressest/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "comma-separated experiment list or 'all'")
	full := flag.Bool("full", false, "use the full (slow) configuration")
	seed := flag.Int64("seed", 0, "override the random seed")
	queries := flag.Int("queries", 0, "override per-workload query counts")
	flag.Parse()

	cfg := experiments.Quick()
	if *full {
		cfg = experiments.Full()
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *queries > 0 {
		cfg.QueriesTPCH = *queries
		cfg.QueriesTPCDS = *queries
		cfg.QueriesReal1 = *queries
		cfg.QueriesReal2 = *queries
	}
	suite := experiments.NewSuite(cfg)

	type experiment struct {
		name string
		fn   func() (fmt.Stringer, error)
	}
	exps := []experiment{
		{"fig1", func() (fmt.Stringer, error) { return suite.Figure1() }},
		{"table1", func() (fmt.Stringer, error) { return suite.Table1() }},
		{"table2", func() (fmt.Stringer, error) { return suite.Table2() }},
		{"table3", func() (fmt.Stringer, error) { return suite.Table3() }},
		{"table4", func() (fmt.Stringer, error) { return suite.Table4() }},
		{"table5", func() (fmt.Stringer, error) { return suite.Table5() }},
		{"fig4", func() (fmt.Stringer, error) {
			r, err := suite.AdHoc()
			return stringerFunc(func() string { return r.Figure4String() }), err
		}},
		{"table6", func() (fmt.Stringer, error) {
			r, err := suite.AdHoc()
			return stringerFunc(func() string { return r.Table6String() }), err
		}},
		{"fig5", func() (fmt.Stringer, error) {
			r, err := suite.AdHoc()
			return stringerFunc(func() string { return r.Figure5String() }), err
		}},
		{"fig6", func() (fmt.Stringer, error) { return suite.Figure6() }},
		{"fig7", func() (fmt.Stringer, error) { return suite.Figure7() }},
		{"table7", func() (fmt.Stringer, error) { return suite.Table7() }},
		{"table8", func() (fmt.Stringer, error) { return suite.Table8() }},
		{"featimp", func() (fmt.Stringer, error) { return suite.FeatureImportance() }},
		{"models", func() (fmt.Stringer, error) { return suite.Models() }},
		{"ablation", func() (fmt.Stringer, error) { return suite.Ablation() }},
		{"online", func() (fmt.Stringer, error) { return suite.Online() }},
		{"refinement", func() (fmt.Stringer, error) { return suite.Refinement() }},
	}

	want := map[string]bool{}
	if *run != "all" {
		for _, n := range strings.Split(*run, ",") {
			want[strings.TrimSpace(n)] = true
		}
	}

	mode := "quick"
	if *full {
		mode = "full"
	}
	fmt.Printf("progressest experiment suite (%s configuration, seed %d)\n", mode, cfg.Seed)
	fmt.Println(strings.Repeat("=", 78))
	ranAny := false
	for _, e := range exps {
		if *run != "all" && !want[e.name] {
			continue
		}
		ranAny = true
		start := time.Now()
		r, err := e.fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Printf("\n[%s] (%.1fs)\n%s\n", e.name, time.Since(start).Seconds(), r)
		fmt.Println(strings.Repeat("=", 78))
	}
	if !ranAny {
		fmt.Fprintf(os.Stderr, "no experiment matched %q\n", *run)
		os.Exit(2)
	}
}

type stringerFunc func() string

func (f stringerFunc) String() string { return f() }
