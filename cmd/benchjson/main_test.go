package main

import (
	"regexp"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: progressest
BenchmarkSnapshotUpdateCycle/batched-8         	  120000	      9876 ns/op	       0 B/op	       0 allocs/op
BenchmarkSnapshotUpdateCycle/unbatched-8       	  100000	     12345.5 ns/op	       0 B/op	       0 allocs/op
BenchmarkMonitorStartToDone/batched-8          	     100	  11223344 ns/op	   65536 B/op	     321 allocs/op
BenchmarkGateAdmit/fixed-16                    	 5000000	       250 ns/op
PASS
ok  	progressest	12.3s
`

func TestParseBench(t *testing.T) {
	res, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(res))
	}
	m, ok := res["BenchmarkSnapshotUpdateCycle/batched"]
	if !ok {
		t.Fatal("GOMAXPROCS suffix not stripped")
	}
	if m.NsOp != 9876 || m.BOp != 0 || m.AllocsOp != 0 || m.Iters != 120000 {
		t.Fatalf("bad metrics: %+v", m)
	}
	if res["BenchmarkSnapshotUpdateCycle/unbatched"].NsOp != 12345.5 {
		t.Fatal("fractional ns/op not parsed")
	}
	if mm := res["BenchmarkMonitorStartToDone/batched"]; mm.AllocsOp != 321 || mm.BOp != 65536 {
		t.Fatalf("bad alloc metrics: %+v", mm)
	}
	// Without -benchmem the alloc columns are absent, recorded as -1.
	if mm := res["BenchmarkGateAdmit/fixed"]; mm.AllocsOp != -1 || mm.BOp != -1 {
		t.Fatalf("missing -benchmem columns not marked: %+v", mm)
	}
}

func TestAssertZeroAllocs(t *testing.T) {
	res, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if err := assertZeroAllocs(res, regexp.MustCompile(`^BenchmarkSnapshotUpdateCycle/`)); err != nil {
		t.Fatalf("zero-alloc pair should pass: %v", err)
	}
	if err := assertZeroAllocs(res, regexp.MustCompile(`^BenchmarkMonitorStartToDone/`)); err == nil {
		t.Fatal("allocating benchmark passed the gate")
	}
	if err := assertZeroAllocs(res, regexp.MustCompile(`^BenchmarkGateAdmit/`)); err == nil {
		t.Fatal("benchmark without -benchmem columns passed the gate")
	}
	if err := assertZeroAllocs(res, regexp.MustCompile(`^BenchmarkNoSuch`)); err == nil {
		t.Fatal("empty match passed the gate")
	}
}
