// Command benchjson turns `go test -bench -benchmem` output into the
// repo's machine-readable perf trajectory: a JSON map from benchmark name
// to ns/op, B/op and allocs/op. CI regenerates it as an artifact on every
// run (BENCH_ci.json) and the committed BENCH_baseline.json records the
// reference point future PRs diff against.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson \
//	    [-o BENCH_ci.json] \
//	    [-assert-zero-allocs 'BenchmarkSnapshotUpdateCycle/'] \
//	    [-diff BENCH_baseline.json]
//
// -assert-zero-allocs fails (exit 1) when any matching benchmark reports
// a non-zero allocs/op — the regression gate for the zero-alloc
// observation hot path — and also when nothing matches, so a silently
// deleted benchmark cannot pass the gate. -diff prints a per-benchmark
// ns/op comparison against an earlier recording (informational only).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Metrics are one benchmark's recorded measurements. AllocsOp and BOp are
// -1 when the run lacked -benchmem.
type Metrics struct {
	NsOp     float64 `json:"ns_op"`
	BOp      int64   `json:"b_op"`
	AllocsOp int64   `json:"allocs_op"`
	Iters    int64   `json:"iterations"`
}

// parseBench extracts benchmark result lines ("BenchmarkX-8  N  t ns/op
// [b B/op  a allocs/op]") from go test output. The trailing -GOMAXPROCS
// suffix is stripped so recordings compare across machines.
func parseBench(r io.Reader) (map[string]Metrics, error) {
	out := make(map[string]Metrics)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		m := Metrics{Iters: iters, BOp: -1, AllocsOp: -1}
		seen := false
		for i := 2; i+1 < len(f); i += 2 {
			v := f[i]
			switch f[i+1] {
			case "ns/op":
				m.NsOp, err = strconv.ParseFloat(v, 64)
				seen = err == nil
			case "B/op":
				m.BOp, _ = strconv.ParseInt(v, 10, 64)
			case "allocs/op":
				m.AllocsOp, _ = strconv.ParseInt(v, 10, 64)
			}
		}
		if !seen {
			continue
		}
		out[stripProcs(f[0])] = m
	}
	return out, sc.Err()
}

// stripProcs removes the -GOMAXPROCS suffix go test appends to benchmark
// names ("BenchmarkFoo/bar-8" -> "BenchmarkFoo/bar").
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// assertZeroAllocs returns an error when any benchmark matching re
// reports non-zero (or unrecorded) allocs/op, or when none matches.
func assertZeroAllocs(results map[string]Metrics, re *regexp.Regexp) error {
	matched := 0
	for name, m := range results {
		if !re.MatchString(name) {
			continue
		}
		matched++
		if m.AllocsOp < 0 {
			return fmt.Errorf("%s: allocs/op not recorded (run with -benchmem)", name)
		}
		if m.AllocsOp != 0 {
			return fmt.Errorf("%s: %d allocs/op, want 0", name, m.AllocsOp)
		}
	}
	if matched == 0 {
		return fmt.Errorf("no benchmark matches %q — hot-path benchmarks missing from the run", re)
	}
	return nil
}

// diff renders a per-benchmark ns/op comparison against a baseline.
func diff(w io.Writer, baseline, current map[string]Metrics) {
	names := make([]string, 0, len(current))
	for name := range current {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		cur := current[name]
		base, ok := baseline[name]
		if !ok || base.NsOp == 0 {
			fmt.Fprintf(w, "%-60s %12.1f ns/op  (no baseline)\n", name, cur.NsOp)
			continue
		}
		fmt.Fprintf(w, "%-60s %12.1f ns/op  baseline %12.1f  %+.1f%%\n",
			name, cur.NsOp, base.NsOp, (cur.NsOp-base.NsOp)/base.NsOp*100)
	}
}

func main() {
	out := flag.String("o", "", "write the JSON recording to this file (default stdout)")
	assertRe := flag.String("assert-zero-allocs", "", "fail unless every matching benchmark reports 0 allocs/op (regexp)")
	diffPath := flag.String("diff", "", "print a ns/op comparison against this earlier recording")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	} else if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "benchjson: at most one input file")
		os.Exit(2)
	}

	results, err := parseBench(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results in input")
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *diffPath != "" {
		raw, err := os.ReadFile(*diffPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		baseline := make(map[string]Metrics)
		if err := json.Unmarshal(raw, &baseline); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		diff(os.Stderr, baseline, results)
	}

	if *assertRe != "" {
		re, err := regexp.Compile(*assertRe)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := assertZeroAllocs(results, re); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: zero-alloc gate failed: %v\n", err)
			os.Exit(1)
		}
	}
}
