// Command progressd is the progress-estimation daemon: it builds a
// workload (database + parameterised queries), optionally loads a trained
// selection model, and serves live query monitoring over HTTP. The
// serving core is a sharded engine — a pool of workload replicas behind
// one admission gate with a bounded queue and least-loaded dispatch — so
// submitted queries execute concurrently across replicas while their
// streaming progress estimates (per pipeline and combined per eq. 5 of
// the paper) are polled as JSON.
//
// The pool is elastic: with -max-shards above -min-shards a background
// controller polls the gate every -autoscale-interval and grows the pool
// by one replica after sustained saturation (admission queue more than
// half full, or rejections, across consecutive polls) up to -max-shards,
// and drains one replica back after sustained idleness down to
// -min-shards — with a cooldown between resizes so a single bursty poll
// never flaps the pool. A shrunk replica finishes its live queries,
// receives nothing new, and is reaped once empty; its lifetime counters
// survive in GET /engine/stats, which also reports the resize history
// and the controller's last decision. POST /engine/resize is the
// operator override; -no-autoscale keeps the pool fixed.
//
// Admission is QoS-aware. -qos-weights assigns weighted-fair-queueing
// weights to workload families ("tpch=9,tpcds=1"): queued submissions
// are scheduled per admission class — the query's family, refined to
// family|client when the submission body carries a "client" tag — so
// under saturation every class converges to at least its weight share
// of the admissions instead of one hot family (or client) starving the
// rest. Per-class windowed queue-wait and admission-to-done percentiles
// (p50/p90/p99) are exported in GET /engine/stats. -slo-p99 declares a
// p99 queue-wait SLO the autoscaler defends: a sustained breach grows
// the pool BEFORE the queue fills and submissions start bouncing.
// -deadline-admission sheds a submission whose "deadline_ms" cannot
// cover the predicted queue wait immediately (429, reason
// "deadline_shed") instead of letting it queue to die; rejected
// submissions carry a Retry-After header derived from observed waits.
//
// With -learn the daemon closes the paper's training loop on its own
// traffic: every finished query is harvested into an on-disk corpus
// (tagged with its workload family), a background retrainer periodically
// fits fresh selection models on it — one global model, plus one per
// sufficiently represented family with -route-by-family — and versions
// that pass the retrain-quality gate are hot-swapped into serving without
// dropping a progress request. Accepted versions are persisted next to
// the corpus, so a restarted daemon resumes from its last trained models.
// -model (or an earlier corpus) seeds the loop.
//
// Endpoints:
//
//	POST /queries                {"query": i}  start workload query i
//	GET  /queries                              list submitted queries
//	GET  /queries/{id}/progress                freshest progress update
//	GET  /engine/stats                         shard pool, queue + resize state
//	POST /engine/resize          {"shards": n} operator pool resize
//	GET  /healthz                              liveness probe
//	GET  /models                               corpus + model versions + drift (-learn)
//	GET  /models/drift                         observed-vs-predicted per target (-learn)
//	POST /models/retrain                       train + gate + hot-swap (-learn)
//	POST /models/rollback      [{"family":f}]  revert to previous (-learn)
//	POST   /sessions                           open an external estimation session
//	POST   /sessions/{id}/observations         stream counter observations
//	GET    /sessions/{id}/progress             freshest session progress update
//	GET    /sessions                           list sessions
//	DELETE /sessions/{id}                      abort an open session
//
// The session endpoints serve progress estimation to queries executing
// on EXTERNAL engines: the engine opens a session with its plan shape,
// streams monotone counter observations, and reads the same progress
// stream native queries get; on completion the run is harvested into the
// -learn corpus under the session's family, joining retraining and
// drift monitoring. Sessions admit through the same QoS gate as native
// submissions; -ingest-ttl expires sessions that stop streaming, and
// -ingest-max-sessions bounds the concurrently open ones.
//
// Usage:
//
//	progressd [-addr :8080] [-workload tpch|tpcds|real1|real2]
//	          [-design 0|1|2] [-queries N] [-scale F] [-zipf F] [-seed N]
//	          [-shards N] [-queue-depth N] [-max-live N] [-route-by-family]
//	          [-min-shards N] [-max-shards N] [-autoscale-interval D]
//	          [-no-autoscale]
//	          [-qos-weights fam=w,...] [-class-queue-depth N]
//	          [-slo-p99 D] [-deadline-admission]
//	          [-every N] [-pace D] [-model selector.json]
//	          [-learn corpus/] [-retrain-after N] [-retrain-every D]
//	          [-gate-tolerance F] [-no-gate]
//	          [-drift-ratio F] [-drift-window N] [-no-drift-retrain]
//	          [-family-quota N] [-compact-interval D]
//	          [-canary-window N] [-canary-max-age D] [-drift-reject-limit N]
//	          [-scan-workers N] [-train-workers N] [-corpus-cache-mb N]
//	          [-pprof addr]
//
// -pprof serves the net/http/pprof profiling endpoints on a separate
// listener (for example -pprof localhost:6060 exposes
// /debug/pprof/profile, /debug/pprof/heap, ...), so the zero-alloc
// observation hot path can be profiled in a running daemon under real
// load. Off by default; bind it to localhost in production.
//
// -gate-tolerance is the quality gate's accepted relative holdout-L1
// regression (0 means strict: a candidate must not be worse than the
// serving model beyond a 0.01 absolute slack); -no-gate hot-swaps every
// retrain unconditionally.
//
// With -learn the daemon also monitors model drift: per routing target it
// joins each served query's pinned model version with the estimator
// errors later harvested for that query, and once the windowed observed
// error exceeds the version's holdout baseline by -drift-ratio (plus a
// 0.01 absolute slack), exactly that target is retrained with trigger
// "drift" — unless -no-drift-retrain leaves the decision to the operator.
// GET /models/drift exposes the per-target standing and the retrainer's
// decision history.
//
// The learning loop scales to large corpora: sealed corpus segments carry
// sidecar indexes (rebuilt automatically when missing or corrupt) and a
// bounded decode cache (-corpus-cache-mb), so a retrain re-reads only the
// active tail and drift retrains read only the drifted family's records;
// -scan-workers and -train-workers bound the corpus-read and per-family
// fitting parallelism (results are bit-identical to sequential runs).
//
// -family-quota protects sparse workload families from burst traffic:
// retention and compaction keep at least N examples of every tagged
// family on disk, and a background compactor (every -compact-interval)
// rewrites sealed segments, downsampling the largest (family, plan
// signature) groups first, so one hot family's flood cannot evict the
// examples a rarer family's drift retrain will need.
//
// -canary-window gates hot-swaps on live evidence: a background-retrained
// model that passes the holdout gate first shadow-scores on N live
// queries against the serving champion and only swaps in if its observed
// error holds up (pending challengers are visible in GET /models as
// "canaries"; -canary-max-age bounds the wait). -drift-reject-limit is
// the auto-rollback breaker: after N consecutive rejected drift retrains
// of a still-drifting target, the serving version itself is rolled back
// (or the family pinned to the global model), exactly as POST
// /models/rollback would.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: it stops accepting
// connections, fails queued admissions instead of stranding them, drains
// in-flight queries (bounded by -drain-timeout) so their traces still
// land in the corpus, then stops the retrainer and syncs the corpus.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux (served only with -pprof)
	"os"
	"os/signal"
	"syscall"
	"time"

	"progressest"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	wl := flag.String("workload", "tpch", "workload family: tpch, tpcds, real1, real2")
	design := flag.Int("design", 1, "physical design: 0=untuned, 1=partial, 2=full")
	queries := flag.Int("queries", 100, "number of queries to generate")
	scale := flag.Float64("scale", 0.15, "database scale")
	zipf := flag.Float64("zipf", 1, "data skew factor z")
	seed := flag.Int64("seed", 1, "random seed")
	shards := flag.Int("shards", 1, "workload replicas the pool starts with")
	queueDepth := flag.Int("queue-depth", 64, "admissions queued once all shards are at capacity (0 = reject immediately)")
	maxLive := flag.Int("max-live", 64, "concurrent queries per shard")
	minShards := flag.Int("min-shards", 0, "lower autoscale bound for the replica pool (default: -shards)")
	maxShards := flag.Int("max-shards", 0, "upper autoscale bound; above -min-shards it enables load-driven grow/shrink (default: -shards, fixed pool)")
	autoscaleInterval := flag.Duration("autoscale-interval", 2*time.Second, "how often the autoscaler polls the admission gate")
	noAutoscale := flag.Bool("no-autoscale", false, "never resize the pool automatically (POST /engine/resize still works)")
	qosWeights := flag.String("qos-weights", "", "fair-queueing weights per workload family, e.g. tpch=9,tpcds=1 (unlisted classes weigh 1)")
	classQueueDepth := flag.Int("class-queue-depth", 0, "one admission class's share of the queue (default: -queue-depth, no per-class tightening)")
	sloP99 := flag.Duration("slo-p99", 0, "p99 queue-wait SLO the autoscaler defends: sustained breach grows the pool before rejections (0 = off)")
	deadlineAdmission := flag.Bool("deadline-admission", false, "shed submissions whose deadline_ms cannot cover the predicted queue wait instead of queueing them")
	routeByFamily := flag.Bool("route-by-family", false, "train and serve per-workload-family selection models (needs -learn)")
	every := flag.Int("every", 8, "record a progress update every N counter snapshots")
	pace := flag.Duration("pace", 0, "pace execution: sleep per progress update (0 = full speed)")
	model := flag.String("model", "", "optional trained selector (see cmd/trainsel)")
	learn := flag.String("learn", "", "corpus directory: harvest finished queries and retrain continuously")
	retrainAfter := flag.Int("retrain-after", 256, "retrain once the corpus grew by this many examples")
	retrainEvery := flag.Duration("retrain-every", time.Minute, "minimum interval between automatic retrains")
	gateTolerance := flag.Float64("gate-tolerance", 0.25, "retrain-quality gate: accepted relative holdout-L1 regression (0 = strict)")
	noGate := flag.Bool("no-gate", false, "disable the retrain-quality gate (every retrain hot-swaps)")
	driftRatio := flag.Float64("drift-ratio", 1.5, "drift monitor: a target drifts once its observed serving L1 exceeds baseline*ratio + 0.01")
	driftWindow := flag.Int("drift-window", 256, "drift monitor: observed errors kept per routing target")
	noDriftRetrain := flag.Bool("no-drift-retrain", false, "track drift but never auto-retrain on it (operator decides)")
	familyQuota := flag.Int("family-quota", 0, "per-family corpus retention floor: keep at least N examples of every tagged family through retention and compaction (0 = off)")
	compactInterval := flag.Duration("compact-interval", 30*time.Second, "how often the corpus compactor downsamples over-represented (family, signature) groups (needs -family-quota; 0 disables)")
	canaryWindow := flag.Int("canary-window", 0, "champion/challenger confirmation: shadow-score retrained models on N live queries before hot-swap (0 = swap immediately)")
	canaryMaxAge := flag.Duration("canary-max-age", 5*time.Minute, "reject a challenger that cannot fill its confirmation window within this long")
	driftRejectLimit := flag.Int("drift-reject-limit", 3, "auto-rollback after N consecutive rejected drift retrains of a still-drifting target (0 = off)")
	trees := flag.Int("trees", 200, "MART boosting iterations for retrained models")
	scanWorkers := flag.Int("scan-workers", 0, "concurrent corpus-segment reads per retrain (0 = GOMAXPROCS capped at 8, 1 = sequential)")
	trainWorkers := flag.Int("train-workers", 0, "concurrent per-family model fits per retrain (0 = GOMAXPROCS capped at 8, 1 = sequential)")
	corpusCacheMB := flag.Int("corpus-cache-mb", 64, "decode-cache budget for sealed corpus segments in MiB (0 disables)")
	ingestTTL := flag.Duration("ingest-ttl", 2*time.Minute, "expire external estimation sessions that ingested nothing for this long (negative = never)")
	ingestMaxSessions := flag.Int("ingest-max-sessions", 256, "concurrently open external estimation sessions")
	ingestMaxObs := flag.Int("ingest-max-obs", 0, "counter snapshots one session may ingest (0 = default 65536)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown deadline for in-flight queries")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")
	flag.Parse()

	datasets := map[string]progressest.Dataset{
		"tpch": progressest.TPCH, "tpcds": progressest.TPCDS,
		"real1": progressest.Real1, "real2": progressest.Real2,
	}
	dataset, ok := datasets[*wl]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wl)
		os.Exit(2)
	}
	weights, err := progressest.ParseQoSWeights(*qosWeights)
	if err != nil {
		fmt.Fprintf(os.Stderr, "-qos-weights: %v\n", err)
		os.Exit(2)
	}

	log.Printf("building %s workload (%d queries, scale %g, zipf %g, design %d)...",
		*wl, *queries, *scale, *zipf, *design)
	w, err := progressest.Open(progressest.Config{
		Dataset: dataset,
		Queries: *queries,
		Scale:   *scale,
		Zipf:    *zipf,
		Design:  progressest.Design(*design),
		Seed:    *seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	opts := progressest.MonitorOptions{UpdateEvery: *every, Pace: *pace}
	var sel *progressest.Selector
	if *model != "" {
		sel, err = progressest.LoadSelector(*model)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded selection model from %s", *model)
	}

	var learning *progressest.Learning
	if *learn != "" {
		// An explicit -gate-tolerance 0 means STRICT, which the config
		// encodes as negative (its zero value selects the default).
		gt := *gateTolerance
		if gt == 0 {
			gt = -1
		}
		// -corpus-cache-mb 0 means OFF, which the config encodes as
		// negative (its zero value selects the 64 MiB default).
		cacheBytes := int64(*corpusCacheMB) << 20
		if cacheBytes <= 0 {
			cacheBytes = -1
		}
		// Same convention for -compact-interval 0 (no compactor) and
		// -drift-reject-limit 0 (no auto-rollback breaker): explicit zero
		// means OFF, which the config encodes as negative.
		ci := *compactInterval
		if ci <= 0 {
			ci = -1
		}
		drl := *driftRejectLimit
		if drl <= 0 {
			drl = -1
		}
		learning, err = progressest.OpenLearning(progressest.LearningConfig{
			Dir:                 *learn,
			Selector:            progressest.SelectorConfig{Trees: *trees, Seed: *seed},
			MinNewExamples:      *retrainAfter,
			MinInterval:         *retrainEvery,
			SeedSelector:        sel,
			FamilyModels:        *routeByFamily,
			GateTolerance:       gt,
			DisableGate:         *noGate,
			DriftRatio:          *driftRatio,
			DriftWindow:         *driftWindow,
			DisableDriftRetrain: *noDriftRetrain,
			FamilyQuota:         *familyQuota,
			CompactInterval:     ci,
			CanaryWindow:        *canaryWindow,
			CanaryMaxAge:        *canaryMaxAge,
			DriftRejectLimit:    drl,
			CorpusCacheBytes:    cacheBytes,
			ScanWorkers:         *scanWorkers,
			TrainWorkers:        *trainWorkers,
		})
		if err != nil {
			log.Fatal(err)
		}
		opts.Learning = learning
		log.Printf("continuous learning on: corpus %s (%d examples), retrain after %d new examples / %s",
			*learn, learning.CorpusSize(), *retrainAfter, *retrainEvery)
		if cur, ok := learning.Current(); ok {
			log.Printf("serving model v%d (source %s)", cur.ID, cur.Source)
		}
		if fams := learning.FamilyVersions(); len(fams) > 0 {
			log.Printf("restored %d family model(s)", len(fams))
		}
	} else {
		// Without learning the explicit model (if any) serves statically.
		opts.Selector = sel
		if *routeByFamily {
			log.Printf("warning: -route-by-family needs -learn; serving the global model only")
		}
	}

	if *pprofAddr != "" {
		// The profiling endpoints live on their own listener (the default
		// mux, which the pprof import registers on), so enabling them never
		// widens the serving API's exposure.
		go func() {
			log.Printf("pprof listening on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	eng := progressest.NewEngine(w, progressest.EngineConfig{
		Shards:            *shards,
		MaxLivePerShard:   *maxLive,
		QueueDepth:        *queueDepth,
		RouteByFamily:     *routeByFamily,
		MinShards:         *minShards,
		MaxShards:         *maxShards,
		DisableAutoscale:  *noAutoscale,
		AutoscaleInterval: *autoscaleInterval,
		QoSWeights:        weights,
		ClassQueueDepth:   *classQueueDepth,
		SLOQueueWaitP99:   *sloP99,
		DeadlineAdmission: *deadlineAdmission,
	}, opts)
	server := progressest.NewEngineServer(eng)
	server.SetSessionConfig(progressest.SessionConfig{
		TTL:             *ingestTTL,
		MaxSessions:     *ingestMaxSessions,
		MaxObservations: *ingestMaxObs,
	})
	defer server.Close()
	httpSrv := &http.Server{Addr: *addr, Handler: server}

	errCh := make(chan error, 1)
	go func() {
		st := eng.Stats()
		pool := fmt.Sprintf("%d shard(s)", st.CurrentShards)
		if st.Autoscale {
			pool = fmt.Sprintf("%d shard(s), autoscaling %d..%d every %s",
				st.CurrentShards, st.MinShards, st.MaxShards, *autoscaleInterval)
		}
		qos := ""
		if len(weights) > 0 {
			qos = fmt.Sprintf(", qos weights %v", weights)
		}
		if *sloP99 > 0 {
			qos += fmt.Sprintf(", p99 SLO %s", *sloP99)
		}
		if *deadlineAdmission {
			qos += ", deadline admission"
		}
		log.Printf("progressd listening on %s (%d queries ready, %s × %d live, queue %d%s)",
			*addr, w.NumQueries(), pool, *maxLive, *queueDepth, qos)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("received %v; shutting down...", sig)
	case err := <-errCh:
		if learning != nil {
			learning.Close()
		}
		log.Fatal(err)
	}

	// Graceful shutdown: drain the engine CONCURRENTLY with the HTTP
	// shutdown — Drain's first act is failing every queued admission, and
	// those waiters are blocked HTTP handlers http.Server.Shutdown would
	// otherwise wait out for the whole deadline, leaving no budget for
	// the in-flight queries. With both running, queued submissions 503
	// immediately, Shutdown finishes the unblocked exchanges, executing
	// queries drain so their traces still reach the corpus, and only then
	// the retrainer stops and the corpus syncs.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drained := make(chan error, 1)
	go func() { drained <- server.Drain(ctx) }()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := <-drained; err != nil {
		log.Printf("drain: %v", err)
	}
	if learning != nil {
		// Shutdown honors the remaining deadline: an in-flight training
		// run past it is abandoned rather than stalling the exit.
		if err := learning.Shutdown(ctx); err != nil {
			log.Printf("learning shutdown: %v", err)
		}
		log.Printf("corpus synced (%d examples)", learning.CorpusSize())
	}
	log.Printf("progressd stopped")
}
