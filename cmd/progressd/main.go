// Command progressd is the progress-estimation daemon: it builds a
// workload (database + parameterised queries), optionally loads a trained
// selection model, and serves live query monitoring over HTTP. Submitted
// queries execute on their own goroutines while their streaming progress
// estimates — per pipeline and combined per eq. 5 of the paper — are
// polled as JSON.
//
// With -learn the daemon closes the paper's training loop on its own
// traffic: every finished query is harvested into an on-disk corpus, a
// background retrainer periodically fits a fresh selection model on it,
// and new versions are hot-swapped into serving without dropping a
// progress request. -model (or an earlier corpus) seeds the loop.
//
// Endpoints:
//
//	POST /queries                {"query": i}  start workload query i
//	GET  /queries                              list submitted queries
//	GET  /queries/{id}/progress                freshest progress update
//	GET  /healthz                              liveness probe
//	GET  /models                               corpus + model versions (-learn)
//	POST /models/retrain                       train + hot-swap now (-learn)
//	POST /models/rollback                      revert to previous (-learn)
//
// Usage:
//
//	progressd [-addr :8080] [-workload tpch|tpcds|real1|real2]
//	          [-design 0|1|2] [-queries N] [-scale F] [-zipf F] [-seed N]
//	          [-every N] [-pace D] [-model selector.json]
//	          [-learn corpus/] [-retrain-after N] [-retrain-every D]
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: it stops accepting
// connections, drains in-flight queries (bounded by -drain-timeout) so
// their traces still land in the corpus, then stops the retrainer and
// syncs the corpus to disk.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"progressest"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	wl := flag.String("workload", "tpch", "workload family: tpch, tpcds, real1, real2")
	design := flag.Int("design", 1, "physical design: 0=untuned, 1=partial, 2=full")
	queries := flag.Int("queries", 100, "number of queries to generate")
	scale := flag.Float64("scale", 0.15, "database scale")
	zipf := flag.Float64("zipf", 1, "data skew factor z")
	seed := flag.Int64("seed", 1, "random seed")
	every := flag.Int("every", 8, "record a progress update every N counter snapshots")
	pace := flag.Duration("pace", 0, "pace execution: sleep per progress update (0 = full speed)")
	model := flag.String("model", "", "optional trained selector (see cmd/trainsel)")
	learn := flag.String("learn", "", "corpus directory: harvest finished queries and retrain continuously")
	retrainAfter := flag.Int("retrain-after", 256, "retrain once the corpus grew by this many examples")
	retrainEvery := flag.Duration("retrain-every", time.Minute, "minimum interval between automatic retrains")
	trees := flag.Int("trees", 200, "MART boosting iterations for retrained models")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown deadline for in-flight queries")
	flag.Parse()

	datasets := map[string]progressest.Dataset{
		"tpch": progressest.TPCH, "tpcds": progressest.TPCDS,
		"real1": progressest.Real1, "real2": progressest.Real2,
	}
	dataset, ok := datasets[*wl]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wl)
		os.Exit(2)
	}

	log.Printf("building %s workload (%d queries, scale %g, zipf %g, design %d)...",
		*wl, *queries, *scale, *zipf, *design)
	w, err := progressest.Open(progressest.Config{
		Dataset: dataset,
		Queries: *queries,
		Scale:   *scale,
		Zipf:    *zipf,
		Design:  progressest.Design(*design),
		Seed:    *seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	opts := progressest.MonitorOptions{UpdateEvery: *every, Pace: *pace}
	var sel *progressest.Selector
	if *model != "" {
		sel, err = progressest.LoadSelector(*model)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded selection model from %s", *model)
	}

	var learning *progressest.Learning
	if *learn != "" {
		learning, err = progressest.OpenLearning(progressest.LearningConfig{
			Dir:            *learn,
			Selector:       progressest.SelectorConfig{Trees: *trees, Seed: *seed},
			MinNewExamples: *retrainAfter,
			MinInterval:    *retrainEvery,
			SeedSelector:   sel,
		})
		if err != nil {
			log.Fatal(err)
		}
		opts.Learning = learning
		log.Printf("continuous learning on: corpus %s (%d examples), retrain after %d new examples / %s",
			*learn, learning.CorpusSize(), *retrainAfter, *retrainEvery)
	} else {
		// Without learning the explicit model (if any) serves statically.
		opts.Selector = sel
	}

	server := progressest.NewServer(w, opts)
	httpSrv := &http.Server{Addr: *addr, Handler: server}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("progressd listening on %s (%d queries ready)", *addr, w.NumQueries())
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("received %v; shutting down...", sig)
	case err := <-errCh:
		if learning != nil {
			learning.Close()
		}
		log.Fatal(err)
	}

	// Graceful shutdown: stop accepting, finish in-flight HTTP exchanges,
	// drain executing queries so their traces still reach the corpus, then
	// stop the retrainer and sync the corpus.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := server.Drain(ctx); err != nil {
		log.Printf("drain: %v", err)
	}
	if learning != nil {
		// Shutdown honors the remaining deadline: an in-flight training
		// run past it is abandoned rather than stalling the exit.
		if err := learning.Shutdown(ctx); err != nil {
			log.Printf("learning shutdown: %v", err)
		}
		log.Printf("corpus synced (%d examples)", learning.CorpusSize())
	}
	log.Printf("progressd stopped")
}
