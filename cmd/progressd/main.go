// Command progressd executes one query from a chosen workload and prints
// a live progress report: at each reporting step, the estimates of every
// candidate estimator next to true progress, plus (optionally) the
// estimator a trained selection model would pick per pipeline.
//
// Usage:
//
//	progressd [-workload tpch|tpcds|real1|real2] [-design 0|1|2]
//	          [-query N] [-scale F] [-zipf F] [-seed N] [-steps N]
//	          [-model selector.json]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"progressest/internal/catalog"
	"progressest/internal/datagen"
	"progressest/internal/exec"
	"progressest/internal/features"
	"progressest/internal/progress"
	"progressest/internal/selection"
	"progressest/internal/workload"
)

func main() {
	wl := flag.String("workload", "tpch", "workload family: tpch, tpcds, real1, real2")
	design := flag.Int("design", 1, "physical design: 0=untuned, 1=partial, 2=full")
	query := flag.Int("query", 0, "query index within the workload")
	scale := flag.Float64("scale", 0.15, "database scale")
	zipf := flag.Float64("zipf", 1, "data skew factor z")
	seed := flag.Int64("seed", 1, "random seed")
	steps := flag.Int("steps", 12, "number of progress report lines")
	model := flag.String("model", "", "optional trained selector (see cmd/trainsel)")
	flag.Parse()

	kinds := map[string]datagen.DatasetKind{
		"tpch": datagen.TPCHLike, "tpcds": datagen.TPCDSLike,
		"real1": datagen.Real1Like, "real2": datagen.Real2Like,
	}
	kind, ok := kinds[*wl]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wl)
		os.Exit(2)
	}

	w, err := workload.Build(workload.Spec{
		Name: *wl, Kind: kind, Queries: *query + 1,
		Scale: *scale, Zipf: *zipf,
		Design: catalog.DesignLevel(*design), Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}
	spec := w.Queries[*query]
	fmt.Printf("Query: %s\n\n", spec)

	pl, err := w.Planner.Plan(spec)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("Plan:\n%s\n", pl)

	tr := exec.Run(w.DB, pl, exec.Options{TargetObservations: 800})
	fmt.Printf("Executed: %d pipelines, %d observations, %.0f virtual time units\n\n",
		len(tr.Pipes.Pipelines), len(tr.Snapshots), tr.TotalTime)

	var sel *selection.Selector
	if *model != "" {
		sel, err = selection.Load(*model)
		if err != nil {
			fatal(err)
		}
	}

	est := progress.ExtendedKinds()
	for p := range tr.Pipes.Pipelines {
		v := progress.NewPipelineView(tr, p)
		if v.NumObs() < 3 {
			continue
		}
		pipe := tr.Pipes.Pipelines[p]
		fmt.Printf("Pipeline %d: %d nodes, drivers %v\n", p, len(pipe.Nodes), pipe.Drivers)
		if sel != nil {
			choice := sel.Select(features.Full(v))
			fmt.Printf("  selection model picks: %v\n", choice)
		}
		header := []string{"  true"}
		for _, k := range est {
			header = append(header, fmt.Sprintf("%8s", k))
		}
		fmt.Println(strings.Join(header, " "))
		truth := v.TrueSeries()
		n := v.NumObs()
		for s := 0; s < *steps; s++ {
			i := s * (n - 1) / max(*steps-1, 1)
			row := []string{fmt.Sprintf("%5.1f%%", 100*truth[i])}
			for _, k := range est {
				row = append(row, fmt.Sprintf("%7.1f%%", 100*v.Estimate(k, i)))
			}
			fmt.Println("  " + strings.Join(row, " "))
		}
		fmt.Println()
		errs := v.AllErrors()
		best, _ := progress.Best(errs, est)
		fmt.Printf("  L1 errors:")
		for _, k := range est {
			mark := " "
			if k == best {
				mark = "*"
			}
			fmt.Printf("  %v=%.4f%s", k, errs[k].L1, mark)
		}
		fmt.Print("\n\n")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "progressd:", err)
	os.Exit(1)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
