// Command progressd is the progress-estimation daemon: it builds a
// workload (database + parameterised queries), optionally loads a trained
// selection model, and serves live query monitoring over HTTP. Submitted
// queries execute on their own goroutines while their streaming progress
// estimates — per pipeline and combined per eq. 5 of the paper — are
// polled as JSON.
//
// Endpoints:
//
//	POST /queries                {"query": i}  start workload query i
//	GET  /queries                              list submitted queries
//	GET  /queries/{id}/progress                freshest progress update
//	GET  /healthz                              liveness probe
//
// Usage:
//
//	progressd [-addr :8080] [-workload tpch|tpcds|real1|real2]
//	          [-design 0|1|2] [-queries N] [-scale F] [-zipf F] [-seed N]
//	          [-every N] [-pace D] [-model selector.json]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"progressest"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	wl := flag.String("workload", "tpch", "workload family: tpch, tpcds, real1, real2")
	design := flag.Int("design", 1, "physical design: 0=untuned, 1=partial, 2=full")
	queries := flag.Int("queries", 100, "number of queries to generate")
	scale := flag.Float64("scale", 0.15, "database scale")
	zipf := flag.Float64("zipf", 1, "data skew factor z")
	seed := flag.Int64("seed", 1, "random seed")
	every := flag.Int("every", 8, "record a progress update every N counter snapshots")
	pace := flag.Duration("pace", 0, "pace execution: sleep per progress update (0 = full speed)")
	model := flag.String("model", "", "optional trained selector (see cmd/trainsel)")
	flag.Parse()

	datasets := map[string]progressest.Dataset{
		"tpch": progressest.TPCH, "tpcds": progressest.TPCDS,
		"real1": progressest.Real1, "real2": progressest.Real2,
	}
	dataset, ok := datasets[*wl]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wl)
		os.Exit(2)
	}

	log.Printf("building %s workload (%d queries, scale %g, zipf %g, design %d)...",
		*wl, *queries, *scale, *zipf, *design)
	w, err := progressest.Open(progressest.Config{
		Dataset: dataset,
		Queries: *queries,
		Scale:   *scale,
		Zipf:    *zipf,
		Design:  progressest.Design(*design),
		Seed:    *seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	opts := progressest.MonitorOptions{UpdateEvery: *every, Pace: *pace}
	if *model != "" {
		sel, err := progressest.LoadSelector(*model)
		if err != nil {
			log.Fatal(err)
		}
		opts.Selector = sel
		log.Printf("loaded selection model from %s", *model)
	}

	log.Printf("progressd listening on %s (%d queries ready)", *addr, w.NumQueries())
	log.Fatal(http.ListenAndServe(*addr, progressest.NewServer(w, opts)))
}
