// Command trainsel trains an estimator-selection model on generated
// workloads and saves it as JSON for use by cmd/progressd or an embedding
// application.
//
// Training runs are resumable through the same segmented on-disk corpus
// the daemon's continuous-learning loop writes: -corpus seeds the
// training set with a previously exported (or live-harvested) corpus, and
// -export appends this run's freshly harvested examples to a corpus
// directory, so offline and online training share one artifact.
//
// Usage:
//
//	trainsel [-out selector.json] [-queries N] [-scale F] [-trees M]
//	         [-dynamic] [-extended] [-seed N]
//	         [-corpus dir] [-export dir] [-skip-harvest]
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"progressest"
	"progressest/internal/catalog"
	"progressest/internal/datagen"
	"progressest/internal/mart"
	"progressest/internal/progress"
	"progressest/internal/selection"
	"progressest/internal/workload"
)

func main() {
	out := flag.String("out", "selector.json", "output model path")
	queries := flag.Int("queries", 80, "queries per workload variant")
	scale := flag.Float64("scale", 0.15, "database scale")
	trees := flag.Int("trees", 200, "MART boosting iterations")
	dynamic := flag.Bool("dynamic", true, "use dynamic features")
	extended := flag.Bool("extended", true, "include BATCHDNE/DNESEEK/TGNINT candidates")
	seed := flag.Int64("seed", 1, "random seed")
	corpus := flag.String("corpus", "", "seed training with the examples stored in this corpus directory")
	export := flag.String("export", "", "append this run's harvested examples to this corpus directory")
	skipHarvest := flag.Bool("skip-harvest", false, "train on -corpus only, without generating new workloads")
	flag.Parse()

	var examples []selection.Example
	if *corpus != "" {
		stored, err := progressest.ImportExamples(*corpus)
		switch {
		case errors.Is(err, progressest.ErrCorpusEmpty) && !*skipHarvest:
			// A daemon that never finished a query leaves a valid empty
			// corpus; the fresh harvest below supplies the training set.
			fmt.Printf("Corpus %s is empty; training on freshly harvested examples only\n", *corpus)
		case err != nil:
			fatal(err)
		default:
			examples = append(examples, stored...)
			fmt.Printf("Loaded %d examples from corpus %s\n", len(stored), *corpus)
		}
	}

	if !*skipHarvest {
		var fresh []selection.Example
		start := time.Now()
		for _, kind := range []datagen.DatasetKind{
			datagen.TPCHLike, datagen.TPCDSLike, datagen.Real1Like, datagen.Real2Like,
		} {
			for _, lvl := range []catalog.DesignLevel{
				catalog.Untuned, catalog.PartiallyTuned, catalog.FullyTuned,
			} {
				res, err := workload.BuildAndRun(workload.Spec{
					Name: kind.String(), Kind: kind, Queries: *queries,
					Scale: *scale, Zipf: 1, Design: lvl, Seed: *seed + int64(lvl),
				}, workload.RunOptions{Seed: *seed + int64(lvl)})
				if err != nil {
					fatal(err)
				}
				fresh = append(fresh, res.Examples...)
				fmt.Printf("  %-16s %-16s -> %d pipelines\n", kind, lvl, len(res.Examples))
			}
		}
		fmt.Printf("Collected %d training examples in %.1fs\n", len(fresh), time.Since(start).Seconds())
		if *export != "" {
			if err := progressest.ExportExamples(*export, fresh); err != nil {
				fatal(err)
			}
			fmt.Printf("Exported %d examples to corpus %s\n", len(fresh), *export)
		}
		examples = append(examples, fresh...)
	} else {
		if *corpus == "" {
			fatal(fmt.Errorf("-skip-harvest requires -corpus"))
		}
		// Nothing was harvested, so -export re-materializes the imported
		// corpus (a copy/merge) instead of being silently ignored.
		if *export != "" {
			if sameDir(*export, *corpus) {
				fatal(fmt.Errorf("-export %s would append the corpus onto itself, duplicating every record; pick a different directory", *export))
			}
			if err := progressest.ExportExamples(*export, examples); err != nil {
				fatal(err)
			}
			fmt.Printf("Exported %d imported examples to corpus %s\n", len(examples), *export)
		}
	}

	kinds := progress.CoreKinds()
	if *extended {
		kinds = progress.ExtendedKinds()
	}
	start := time.Now()
	sel, err := selection.Train(examples, selection.Config{
		Kinds: kinds, Dynamic: *dynamic,
		Mart: mart.Options{Trees: *trees, Seed: *seed},
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("Trained %d error models (M=%d) on %d examples in %.1fs\n",
		len(kinds), *trees, len(examples), time.Since(start).Seconds())

	if err := sel.Save(*out); err != nil {
		fatal(err)
	}
	ev := selection.Evaluate(sel, examples)
	fmt.Printf("Saved %s (in-sample: picked-optimal %.1f%%, avg L1 %.4f, oracle %.4f)\n",
		*out, 100*ev.PickedOptimal, ev.AvgL1, ev.OracleL1)
}

// sameDir reports whether two paths name the same directory, seeing
// through relative/absolute aliases and symlinks (so -export cannot be
// pointed back at -corpus by another spelling of the same path).
func sameDir(a, b string) bool {
	ai, errA := os.Stat(a)
	bi, errB := os.Stat(b)
	if errA == nil && errB == nil {
		return os.SameFile(ai, bi)
	}
	aa, errA := filepath.Abs(a)
	bb, errB := filepath.Abs(b)
	return errA == nil && errB == nil && aa == bb
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "trainsel:", err)
	os.Exit(1)
}
