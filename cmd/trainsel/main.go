// Command trainsel trains an estimator-selection model on generated
// workloads and saves it as JSON for use by cmd/progressd or an embedding
// application.
//
// Usage:
//
//	trainsel [-out selector.json] [-queries N] [-scale F] [-trees M]
//	         [-dynamic] [-extended] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"progressest/internal/catalog"
	"progressest/internal/datagen"
	"progressest/internal/mart"
	"progressest/internal/progress"
	"progressest/internal/selection"
	"progressest/internal/workload"
)

func main() {
	out := flag.String("out", "selector.json", "output model path")
	queries := flag.Int("queries", 80, "queries per workload variant")
	scale := flag.Float64("scale", 0.15, "database scale")
	trees := flag.Int("trees", 200, "MART boosting iterations")
	dynamic := flag.Bool("dynamic", true, "use dynamic features")
	extended := flag.Bool("extended", true, "include BATCHDNE/DNESEEK/TGNINT candidates")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	var examples []selection.Example
	start := time.Now()
	for _, kind := range []datagen.DatasetKind{
		datagen.TPCHLike, datagen.TPCDSLike, datagen.Real1Like, datagen.Real2Like,
	} {
		for _, lvl := range []catalog.DesignLevel{
			catalog.Untuned, catalog.PartiallyTuned, catalog.FullyTuned,
		} {
			res, err := workload.BuildAndRun(workload.Spec{
				Name: kind.String(), Kind: kind, Queries: *queries,
				Scale: *scale, Zipf: 1, Design: lvl, Seed: *seed + int64(lvl),
			}, workload.RunOptions{Seed: *seed + int64(lvl)})
			if err != nil {
				fatal(err)
			}
			examples = append(examples, res.Examples...)
			fmt.Printf("  %-16s %-16s -> %d pipelines\n", kind, lvl, len(res.Examples))
		}
	}
	fmt.Printf("Collected %d training examples in %.1fs\n", len(examples), time.Since(start).Seconds())

	kinds := progress.CoreKinds()
	if *extended {
		kinds = progress.ExtendedKinds()
	}
	start = time.Now()
	sel, err := selection.Train(examples, selection.Config{
		Kinds: kinds, Dynamic: *dynamic,
		Mart: mart.Options{Trees: *trees, Seed: *seed},
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("Trained %d error models (M=%d) in %.1fs\n", len(kinds), *trees, time.Since(start).Seconds())

	if err := sel.Save(*out); err != nil {
		fatal(err)
	}
	ev := selection.Evaluate(sel, examples)
	fmt.Printf("Saved %s (in-sample: picked-optimal %.1f%%, avg L1 %.4f, oracle %.4f)\n",
		*out, 100*ev.PickedOptimal, ev.AvgL1, ev.OracleL1)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "trainsel:", err)
	os.Exit(1)
}
