module progressest

go 1.24
