package progressest

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// Server exposes live query monitoring over HTTP — the daemon core of
// cmd/progressd. It owns one Workload and runs submitted queries on their
// own goroutines, recording the freshest ProgressUpdate of each:
//
//	POST /queries                {"query": i}  -> {"id": "q1", ...}
//	GET  /queries                              -> list of submitted queries
//	GET  /queries/{id}/progress                -> live progress JSON
//	GET  /healthz                              -> {"status": "ok"}
//
// When MonitorOptions.Learning is set, the model-lifecycle routes come
// alive too (404 otherwise):
//
//	GET  /models                               -> corpus + version history
//	POST /models/retrain                       -> train + hot-swap a version
//	POST /models/rollback                      -> revert to the previous one
//
// Every submitted query records which selector version served it
// ("model" in the submit, list and progress responses).
type Server struct {
	w    *Workload
	opts MonitorOptions
	mux  *http.ServeMux

	// maxLive and maxKept are the admission/retention bounds, settable
	// before the server starts handling requests (tests shrink them).
	maxLive int
	maxKept int

	mu      sync.Mutex
	queries map[string]*serverQuery
	order   []*serverQuery // submission order, for stable listings
	live    int            // queries admitted and not yet finished
	nextID  int
}

// Server resource bounds: at most defaultMaxLive queries execute
// concurrently (further submissions get 429), and finished queries beyond
// defaultMaxKept are evicted oldest-first so a long-running daemon's
// memory stays bounded.
const (
	defaultMaxLive = 64
	defaultMaxKept = 1024
)

// serverQuery tracks one submitted query.
type serverQuery struct {
	id    string
	query int
	model int // selector version that serves it (0 = none)

	mu     sync.Mutex
	latest ProgressUpdate
	seen   bool
	done   bool
}

func (q *serverQuery) snapshot() (ProgressUpdate, bool, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.latest, q.seen, q.done
}

// NewServer wraps the workload in an HTTP monitoring server. The monitor
// options apply to every submitted query.
func NewServer(w *Workload, opts MonitorOptions) *Server {
	s := &Server{
		w:       w,
		opts:    opts.withDefaults(),
		mux:     http.NewServeMux(),
		maxLive: defaultMaxLive,
		maxKept: defaultMaxKept,
		queries: make(map[string]*serverQuery),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("POST /queries", s.handleSubmit)
	s.mux.HandleFunc("GET /queries", s.handleList)
	s.mux.HandleFunc("GET /queries/{id}/progress", s.handleProgress)
	s.mux.HandleFunc("GET /models", s.handleModels)
	s.mux.HandleFunc("POST /models/retrain", s.handleRetrain)
	s.mux.HandleFunc("POST /models/rollback", s.handleRollback)
	return s
}

// Drain blocks until every admitted query has finished or the context
// expires — the graceful-shutdown hook cmd/progressd uses between
// http.Server.Shutdown and Learning.Close, so in-flight queries still
// land in the corpus.
func (s *Server) Drain(ctx context.Context) error {
	for {
		s.mu.Lock()
		live := s.live
		s.mu.Unlock()
		if live == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("progressest: drain: %d queries still live: %w", live, ctx.Err())
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	resp := map[string]any{
		"status":  "ok",
		"queries": s.w.NumQueries(),
	}
	if l := s.opts.Learning; l != nil {
		if cur, ok := l.Current(); ok {
			resp["model"] = cur.ID
		}
		resp["corpus_size"] = l.CorpusSize()
	}
	writeJSON(w, http.StatusOK, resp)
}

// submitRequest is the POST /queries body.
type submitRequest struct {
	// Query is the workload query index to execute.
	Query int `json:"query"`
}

// queryInfo is the wire form of a submitted query's identity.
type queryInfo struct {
	ID    string `json:"id"`
	Query int    `json:"query"`
	Text  string `json:"text,omitempty"`
	Done  bool   `json:"done"`
	// Model is the selector version that serves the query (0 = fixed
	// estimator or explicitly configured selector).
	Model int `json:"model,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid body: %v", err)
		return
	}
	if req.Query < 0 || req.Query >= s.w.NumQueries() {
		writeError(w, http.StatusBadRequest, "query index %d out of range [0,%d)",
			req.Query, s.w.NumQueries())
		return
	}
	// Admission is atomic: the slot is claimed under the lock before the
	// query starts, so concurrent submissions cannot overshoot the cap.
	s.mu.Lock()
	if s.live >= s.maxLive {
		live := s.live
		s.mu.Unlock()
		writeError(w, http.StatusTooManyRequests, "%d queries already executing", live)
		return
	}
	s.live++
	s.mu.Unlock()

	m, err := s.w.Start(req.Query, s.opts)
	if err != nil {
		s.mu.Lock()
		s.live--
		s.mu.Unlock()
		writeError(w, http.StatusInternalServerError, "start: %v", err)
		return
	}
	s.mu.Lock()
	s.nextID++
	q := &serverQuery{id: fmt.Sprintf("q%d", s.nextID), query: req.Query, model: m.ModelVersion()}
	s.queries[q.id] = q
	s.order = append(s.order, q)
	// Evict the oldest finished queries beyond the retention bound.
	if len(s.order) > s.maxKept {
		kept := s.order[:0]
		excess := len(s.order) - s.maxKept
		for _, old := range s.order {
			_, _, done := old.snapshot()
			if excess > 0 && done {
				delete(s.queries, old.id)
				excess--
				continue
			}
			kept = append(kept, old)
		}
		s.order = kept
	}
	s.mu.Unlock()

	go func() {
		for u := range m.Updates {
			q.mu.Lock()
			q.latest = u
			q.seen = true
			q.done = q.done || u.Done
			q.mu.Unlock()
		}
		q.mu.Lock()
		q.done = true
		q.mu.Unlock()
		s.mu.Lock()
		s.live--
		s.mu.Unlock()
	}()

	writeJSON(w, http.StatusAccepted, queryInfo{
		ID: q.id, Query: req.Query, Text: s.w.QueryText(req.Query), Model: q.model,
	})
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	queries := append([]*serverQuery(nil), s.order...)
	s.mu.Unlock()
	infos := make([]queryInfo, 0, len(queries))
	for _, q := range queries {
		_, _, done := q.snapshot()
		infos = append(infos, queryInfo{ID: q.id, Query: q.query, Done: done, Model: q.model})
	}
	writeJSON(w, http.StatusOK, infos)
}

// progressResponse is the GET /queries/{id}/progress wire form.
type progressResponse struct {
	ID     string          `json:"id"`
	Query  int             `json:"query"`
	Done   bool            `json:"done"`
	Model  int             `json:"model,omitempty"`
	Update *ProgressUpdate `json:"update,omitempty"`
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	q, ok := s.queries[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown query %q", id)
		return
	}
	latest, seen, done := q.snapshot()
	resp := progressResponse{ID: q.id, Query: q.query, Done: done, Model: q.model}
	if seen {
		resp.Update = &latest
	}
	writeJSON(w, http.StatusOK, resp)
}

// modelsResponse is the GET /models wire form.
type modelsResponse struct {
	// Current is the id of the serving version (0 before the first
	// publication).
	Current int `json:"current"`
	// CorpusSize is the number of harvested examples retained on disk.
	CorpusSize int `json:"corpus_size"`
	// Harvest are the lifetime harvesting counters.
	Harvest HarvestStats `json:"harvest"`
	// Versions is the publication history, oldest first.
	Versions []ModelVersion `json:"versions"`
}

// learning returns the attached learning loop, or writes a 404 and
// returns nil when continuous learning is not enabled.
func (s *Server) learning(w http.ResponseWriter) *Learning {
	if s.opts.Learning == nil {
		writeError(w, http.StatusNotFound, "continuous learning not enabled (start with a learning corpus)")
		return nil
	}
	return s.opts.Learning
}

func (s *Server) handleModels(w http.ResponseWriter, _ *http.Request) {
	l := s.learning(w)
	if l == nil {
		return
	}
	resp := modelsResponse{
		CorpusSize: l.CorpusSize(),
		Harvest:    l.HarvestStats(),
		Versions:   l.Versions(),
	}
	if cur, ok := l.Current(); ok {
		resp.Current = cur.ID
	}
	if resp.Versions == nil {
		resp.Versions = []ModelVersion{}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleRetrain(w http.ResponseWriter, _ *http.Request) {
	l := s.learning(w)
	if l == nil {
		return
	}
	v, err := l.Retrain()
	switch {
	case IsEmptyCorpus(err):
		writeError(w, http.StatusConflict, "retrain: %v", err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, "retrain: %v", err)
	default:
		writeJSON(w, http.StatusOK, v)
	}
}

func (s *Server) handleRollback(w http.ResponseWriter, _ *http.Request) {
	l := s.learning(w)
	if l == nil {
		return
	}
	v, err := l.Rollback()
	switch {
	case IsNoRollback(err):
		writeError(w, http.StatusConflict, "rollback: %v", err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, "rollback: %v", err)
	default:
		writeJSON(w, http.StatusOK, v)
	}
}
