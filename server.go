package progressest

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"progressest/internal/engine"
	"progressest/internal/ingest"
)

// Server exposes live query monitoring over HTTP — the daemon core of
// cmd/progressd. It fronts a sharded Engine: submitted queries pass the
// admission gate (waiting in its bounded queue when every replica is at
// capacity), execute on the least-loaded Workload replica, and record the
// freshest ProgressUpdate of each:
//
//	POST /queries                {"query": i}  -> {"id": "q1", "shard": s, ...}
//	GET  /queries                              -> list of submitted queries
//	GET  /queries/{id}/progress                -> live progress JSON
//	GET  /engine/stats                         -> shard pool, queue, QoS + resize state
//	POST /engine/resize          {"shards": n} -> operator pool resize
//	GET  /healthz                              -> {"status": "ok"}
//
// A submission may carry "client" (refines the admission class from the
// query's family to family|client, so fairness holds between a family's
// clients) and "deadline_ms" (bounds the admission wait; with deadline
// admission on, a request whose deadline cannot cover the predicted
// queue wait is shed immediately). Admission refusals answer with a
// JSON "reason" — "queue_full", "deadline_shed" or "draining" — and
// 429/503s carry a Retry-After header derived from observed queue waits.
//
// The session routes turn the daemon into progress-estimation-as-a-
// service for queries executing on external engines (see internal/ingest
// and the README's "Estimation as a service"):
//
//	POST   /sessions                        {plan spec} -> {"id": "s1", ...}
//	POST   /sessions/{id}/observations      {counter batch} -> apply result
//	GET    /sessions/{id}/progress                      -> live progress JSON
//	GET    /sessions                                    -> list of sessions
//	DELETE /sessions/{id}                               -> abort the session
//
// A session admits through the same QoS gate as a native submission
// (class = its family, optionally "family|client"; deadline-aware),
// streams monotone counter observations that are validated and rejected
// on regression or reordering, reads the same ProgressUpdate stream, and
// on completion harvests into the feedback corpus under its family tag.
// Idle sessions expire after a configurable TTL (SetSessionConfig).
//
// When MonitorOptions.Learning is set, the model-lifecycle routes come
// alive too (404 otherwise):
//
//	GET  /models                               -> corpus + version history + drift
//	GET  /models/drift                         -> observed-vs-predicted per target
//	POST /models/retrain                       -> train + gate + hot-swap
//	POST /models/rollback     [{"family": f}]  -> revert to the previous one
//
// Every submitted query records its placement (shard), its workload
// family, and which selector version served it ("model"/"model_family" in
// the submit, list and progress responses).
type Server struct {
	eng      *Engine
	mux      *http.ServeMux
	sessions *sessionManager

	// maxKept is the retention bound for finished queries, settable before
	// the server starts handling requests (tests shrink it).
	maxKept int

	mu      sync.Mutex
	queries map[string]*serverQuery
	order   []*serverQuery // submission order, for stable listings
	nextID  int
}

// defaultMaxKept bounds retention: finished queries beyond it are evicted
// oldest-first so a long-running daemon's memory stays bounded. (The
// concurrent-execution bound lives in EngineConfig.MaxLivePerShard.)
const defaultMaxKept = 1024

// serverQuery tracks one submitted query.
type serverQuery struct {
	id          string
	query       int
	shard       int    // engine replica executing it
	family      string // the query's workload family
	class       string // admission class (family, or family|client)
	model       int    // selector version that serves it (0 = none)
	modelFamily string // routing target of that version ("" = global)

	mu     sync.Mutex
	latest ProgressUpdate
	seen   bool
	done   bool
}

func (q *serverQuery) snapshot() (ProgressUpdate, bool, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.latest, q.seen, q.done
}

// NewServer wraps the workload in an HTTP monitoring server backed by a
// single-shard engine. The monitor options apply to every submitted
// query. Use NewEngineServer for a sharded pool.
func NewServer(w *Workload, opts MonitorOptions) *Server {
	return NewEngineServer(NewEngine(w, EngineConfig{}, opts))
}

// NewEngineServer wraps a sharded engine in the HTTP monitoring server.
func NewEngineServer(e *Engine) *Server {
	s := &Server{
		eng:     e,
		mux:     http.NewServeMux(),
		maxKept: defaultMaxKept,
		queries: make(map[string]*serverQuery),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("POST /queries", s.handleSubmit)
	s.mux.HandleFunc("GET /queries", s.handleList)
	s.mux.HandleFunc("GET /queries/{id}/progress", s.handleProgress)
	s.mux.HandleFunc("GET /engine/stats", s.handleEngineStats)
	s.mux.HandleFunc("POST /engine/resize", s.handleResize)
	s.mux.HandleFunc("GET /models", s.handleModels)
	s.mux.HandleFunc("GET /models/drift", s.handleDrift)
	s.mux.HandleFunc("POST /models/retrain", s.handleRetrain)
	s.mux.HandleFunc("POST /models/rollback", s.handleRollback)
	s.sessions = newSessionManager(e, SessionConfig{})
	s.mux.HandleFunc("POST /sessions", s.handleSessionOpen)
	s.mux.HandleFunc("GET /sessions", s.handleSessionList)
	s.mux.HandleFunc("POST /sessions/{id}/observations", s.handleSessionObserve)
	s.mux.HandleFunc("GET /sessions/{id}/progress", s.handleSessionProgress)
	s.mux.HandleFunc("DELETE /sessions/{id}", s.handleSessionDelete)
	return s
}

// SetSessionConfig replaces the external-session layer's sizing (TTL,
// open-session bound, observation cap, retention). Call it before the
// server starts handling requests; sessions already open keep the old
// manager's state.
func (s *Server) SetSessionConfig(cfg SessionConfig) {
	s.sessions.stop()
	s.sessions = newSessionManager(s.eng, cfg)
}

// Close stops the session layer's background janitor. It does not drain;
// use Drain first for a graceful shutdown.
func (s *Server) Close() { s.sessions.stop() }

// Drain stops admission — queued submissions get 503 immediately instead
// of stranding — and blocks until every admitted query has finished or
// the context expires. Open ingestion sessions are aborted first: each
// holds an admission slot for its lifetime, and an external engine that
// never completes must not hold the drain hostage. It is the
// graceful-shutdown hook cmd/progressd uses between http.Server.Shutdown
// and Learning.Close, so in-flight queries still land in the corpus.
func (s *Server) Drain(ctx context.Context) error {
	s.sessions.drain()
	return s.eng.Drain(ctx)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// drainingRetryAfter is the fixed Retry-After stamped on 503 draining
// rejections. Draining has no observed-wait signal to derive a hint from
// (the queue is being failed, not measured), but well-behaved clients
// still need SOME backoff — without a header they hammer a shutting-down
// node, or worse, a load balancer re-targets them at full rate. A few
// seconds is enough for the fleet's usual drain-and-restart.
const drainingRetryAfter = 5 * time.Second

// writeReject answers an admission refusal: the machine-readable reason
// ("queue_full", "deadline_shed" or "draining") rides next to the error
// text, and a positive retryAfter becomes a Retry-After header (whole
// seconds, rounded up, at least 1 — clients without backoff of their own
// can honor it directly).
func writeReject(w http.ResponseWriter, status int, reason string, retryAfter time.Duration, err error) {
	if status == http.StatusTooManyRequests || retryAfter > 0 {
		secs := int64((retryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeJSON(w, status, map[string]string{
		"error":  fmt.Sprintf("submit: %v", err),
		"reason": reason,
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	resp := map[string]any{
		"status":  "ok",
		"queries": s.eng.Workload().NumQueries(),
		"shards":  s.eng.NumShards(),
	}
	if l := s.eng.learning(); l != nil {
		if cur, ok := l.Current(); ok {
			resp["model"] = cur.ID
		}
		resp["corpus_size"] = l.CorpusSize()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleEngineStats(w http.ResponseWriter, _ *http.Request) {
	st := s.eng.Stats()
	st.Ingest = s.sessions.stats()
	writeJSON(w, http.StatusOK, st)
}

// resizeRequest is the POST /engine/resize body.
type resizeRequest struct {
	// Shards is the desired active replica count.
	Shards int `json:"shards"`
}

// handleResize is the operator override of the shard pool size: it
// resizes immediately (the autoscaler, if any, restarts its hysteresis
// from the new size) and answers with the post-resize engine stats.
func (s *Server) handleResize(w http.ResponseWriter, r *http.Request) {
	var req resizeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid body: %v", err)
		return
	}
	err := s.eng.Resize(req.Shards)
	switch {
	case errors.Is(err, errResizeInvalid):
		writeError(w, http.StatusBadRequest, "resize: %v", err)
	case IsDraining(err):
		writeError(w, http.StatusConflict, "resize: %v", err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, "resize: %v", err)
	default:
		writeJSON(w, http.StatusOK, s.eng.Stats())
	}
}

// submitRequest is the POST /queries body.
type submitRequest struct {
	// Query is the workload query index to execute.
	Query int `json:"query"`
	// Client optionally tags the submission with its issuer, refining the
	// admission class from the query's family to "family|client" (which
	// inherits the family's QoS weight).
	Client string `json:"client,omitempty"`
	// DeadlineMS optionally bounds the admission wait in milliseconds;
	// with deadline admission on, a submission whose deadline cannot
	// cover the predicted queue wait is shed immediately (429,
	// reason "deadline_shed").
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// queryInfo is the wire form of a submitted query's identity.
type queryInfo struct {
	ID    string `json:"id"`
	Query int    `json:"query"`
	Text  string `json:"text,omitempty"`
	Done  bool   `json:"done"`
	// Shard is the engine replica the query executes on.
	Shard int `json:"shard"`
	// Family is the query's workload family (the model-routing key);
	// Class the admission class it was admitted under (the family, or
	// "family|client" for a tagged submission — the QoS scheduling key).
	Family string `json:"family,omitempty"`
	Class  string `json:"class,omitempty"`
	// Model is the selector version that serves the query (0 = fixed
	// estimator or explicitly configured selector); ModelFamily is that
	// version's routing target ("" = the global model).
	Model       int    `json:"model,omitempty"`
	ModelFamily string `json:"model_family,omitempty"`
}

func (q *serverQuery) info(text string, done bool) queryInfo {
	return queryInfo{
		ID: q.id, Query: q.query, Text: text, Done: done,
		Shard: q.shard, Family: q.family, Class: q.class,
		Model: q.model, ModelFamily: q.modelFamily,
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid body: %v", err)
		return
	}
	if req.Query < 0 || req.Query >= s.eng.Workload().NumQueries() {
		writeError(w, http.StatusBadRequest, "query index %d out of range [0,%d)",
			req.Query, s.eng.Workload().NumQueries())
		return
	}
	// The engine owns admission: the submission waits in the bounded
	// fair queue under its class when every shard is at capacity, and
	// the request context frees the queue slot if the client gives up.
	// A deadline_ms bound rides on that same context, so it also feeds
	// deadline-aware admission.
	ctx := r.Context()
	if req.DeadlineMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineMS)*time.Millisecond)
		defer cancel()
	}
	m, err := s.eng.StartTagged(ctx, req.Query, req.Client)
	var shedErr *engine.DeadlineShedError
	switch {
	case errors.As(err, &shedErr):
		// The predicted queue wait is the honest backoff hint: resubmitting
		// sooner would just be shed again under the same conditions.
		writeReject(w, http.StatusTooManyRequests, "deadline_shed", shedErr.Predicted, err)
		return
	case IsSaturated(err):
		writeReject(w, http.StatusTooManyRequests, "queue_full", s.eng.RetryAfterHint(), err)
		return
	case IsDraining(err):
		writeReject(w, http.StatusServiceUnavailable, "draining", drainingRetryAfter, err)
		return
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The client abandoned the queued submission (or its deadline_ms
		// expired while queued); nothing to answer.
		writeError(w, http.StatusServiceUnavailable, "submit: %v", err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "start: %v", err)
		return
	}

	s.mu.Lock()
	s.nextID++
	q := &serverQuery{
		id:          fmt.Sprintf("q%d", s.nextID),
		query:       req.Query,
		shard:       m.Shard(),
		family:      m.Family(),
		class:       m.Class(),
		model:       m.ModelVersion(),
		modelFamily: m.ModelFamily(),
	}
	s.queries[q.id] = q
	s.order = append(s.order, q)
	// Evict the oldest finished queries beyond the retention bound.
	if len(s.order) > s.maxKept {
		kept := s.order[:0]
		excess := len(s.order) - s.maxKept
		for _, old := range s.order {
			_, _, done := old.snapshot()
			if excess > 0 && done {
				delete(s.queries, old.id)
				excess--
				continue
			}
			kept = append(kept, old)
		}
		s.order = kept
	}
	s.mu.Unlock()

	go func() {
		for u := range m.Updates {
			q.mu.Lock()
			q.latest = u
			q.seen = true
			q.done = q.done || u.Done
			q.mu.Unlock()
		}
		q.mu.Lock()
		q.done = true
		q.mu.Unlock()
	}()

	info := q.info(s.eng.Workload().QueryText(req.Query), false)
	writeJSON(w, http.StatusAccepted, info)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	queries := append([]*serverQuery(nil), s.order...)
	s.mu.Unlock()
	infos := make([]queryInfo, 0, len(queries))
	for _, q := range queries {
		_, _, done := q.snapshot()
		infos = append(infos, q.info("", done))
	}
	writeJSON(w, http.StatusOK, infos)
}

// progressResponse is the GET /queries/{id}/progress wire form.
type progressResponse struct {
	ID          string          `json:"id"`
	Query       int             `json:"query"`
	Done        bool            `json:"done"`
	Shard       int             `json:"shard"`
	Family      string          `json:"family,omitempty"`
	Class       string          `json:"class,omitempty"`
	Model       int             `json:"model,omitempty"`
	ModelFamily string          `json:"model_family,omitempty"`
	Update      *ProgressUpdate `json:"update,omitempty"`
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	q, ok := s.queries[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown query %q", id)
		return
	}
	latest, seen, done := q.snapshot()
	resp := progressResponse{
		ID: q.id, Query: q.query, Done: done,
		Shard: q.shard, Family: q.family, Class: q.class,
		Model: q.model, ModelFamily: q.modelFamily,
	}
	if seen {
		resp.Update = &latest
	}
	writeJSON(w, http.StatusOK, resp)
}

// modelsResponse is the GET /models wire form.
type modelsResponse struct {
	// Current is the id of the serving global version (0 before the first
	// publication).
	Current int `json:"current"`
	// Families maps each workload family with its own trained model to
	// the version id serving it; families absent here fall back to the
	// global model.
	Families map[string]int `json:"families"`
	// CorpusSize is the number of harvested examples retained on disk.
	CorpusSize int `json:"corpus_size"`
	// Corpus is the corpus shape — segment count, on-disk bytes,
	// per-family example counts — plus the decode cache's counters.
	Corpus CorpusStats `json:"corpus"`
	// Harvest are the lifetime harvesting counters.
	Harvest HarvestStats `json:"harvest"`
	// Versions is the publication history, oldest first, including
	// quality-gate-rejected versions (decision "rejected") that never
	// served.
	Versions []ModelVersion `json:"versions"`
	// Drift is the observed-vs-predicted standing per routing target —
	// the serving version's windowed live error against its holdout
	// baseline, the drift flag, and the target's last retrain trigger.
	Drift []DriftStatus `json:"drift"`
	// Canaries are the challengers currently in champion/challenger
	// confirmation, shadow-scoring on live traffic before they may
	// hot-swap (empty unless canary serving is enabled).
	Canaries []CanaryStatus `json:"canaries"`
	// Decisions is the retrainer's bounded decision history, oldest
	// first: which trigger (manual, auto, drift) trained which target and
	// how the quality gate ruled.
	Decisions []RetrainDecision `json:"decisions"`
	// PersistError, when set, means the on-disk model manifest trails the
	// live routing table (a restart would resume from the last
	// successfully persisted models); the next successful persist clears
	// it.
	PersistError string `json:"persist_error,omitempty"`
	// TrainingError, when set, is the most recent background-training
	// failure (e.g. a family whose model could not be fit); a fully
	// successful retrain clears it.
	TrainingError string `json:"training_error,omitempty"`
}

// learning returns the attached learning loop, or writes a 404 and
// returns nil when continuous learning is not enabled.
func (s *Server) learning(w http.ResponseWriter) *Learning {
	if l := s.eng.learning(); l != nil {
		return l
	}
	writeError(w, http.StatusNotFound, "continuous learning not enabled (start with a learning corpus)")
	return nil
}

func (s *Server) handleModels(w http.ResponseWriter, _ *http.Request) {
	l := s.learning(w)
	if l == nil {
		return
	}
	resp := modelsResponse{
		Families:   l.FamilyVersions(),
		CorpusSize: l.CorpusSize(),
		Corpus:     l.CorpusStats(),
		Harvest:    l.HarvestStats(),
		Versions:   l.Versions(),
		Drift:      l.DriftStatus(),
		Canaries:   l.Canaries(),
		Decisions:  l.Decisions(),
	}
	if perr := l.PersistError(); perr != nil {
		resp.PersistError = perr.Error()
	}
	if terr := l.LastTrainingError(); terr != nil {
		resp.TrainingError = terr.Error()
	}
	if cur, ok := l.Current(); ok {
		resp.Current = cur.ID
	}
	if resp.Versions == nil {
		resp.Versions = []ModelVersion{}
	}
	if resp.Drift == nil {
		resp.Drift = []DriftStatus{}
	}
	if resp.Canaries == nil {
		resp.Canaries = []CanaryStatus{}
	}
	if resp.Decisions == nil {
		resp.Decisions = []RetrainDecision{}
	}
	writeJSON(w, http.StatusOK, resp)
}

// driftResponse is the GET /models/drift wire form.
type driftResponse struct {
	// Targets is the observed-vs-predicted standing per routing target
	// that served at least one harvested query (global target under
	// family "").
	Targets []DriftStatus `json:"targets"`
	// Decisions is the retrainer's decision history, oldest first —
	// "drift"-triggered entries record which verdicts turned into
	// retrains.
	Decisions []RetrainDecision `json:"decisions"`
}

func (s *Server) handleDrift(w http.ResponseWriter, _ *http.Request) {
	l := s.learning(w)
	if l == nil {
		return
	}
	resp := driftResponse{Targets: l.DriftStatus(), Decisions: l.Decisions()}
	if resp.Targets == nil {
		resp.Targets = []DriftStatus{}
	}
	if resp.Decisions == nil {
		resp.Decisions = []RetrainDecision{}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleRetrain(w http.ResponseWriter, _ *http.Request) {
	l := s.learning(w)
	if l == nil {
		return
	}
	v, err := l.Retrain()
	switch {
	case IsEmptyCorpus(err):
		writeError(w, http.StatusConflict, "retrain: %v", err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, "retrain: %v", err)
	default:
		writeJSON(w, http.StatusOK, v)
	}
}

// rollbackRequest is the optional POST /models/rollback body.
type rollbackRequest struct {
	// Family selects the routing target to roll back ("" = the global
	// model).
	Family string `json:"family"`
}

// rollbackResponse is the POST /models/rollback wire form: the
// rolled-back-to version, plus the outcome of persisting the change.
type rollbackResponse struct {
	ModelVersion
	// PersistError, when set, means the rollback applied in memory but
	// the on-disk manifest could not be rewritten — a restart would
	// resume from the previously persisted routing table. The same
	// failure shows as "persist_error" in GET /models until a later
	// sync repairs it.
	PersistError string `json:"persist_error,omitempty"`
}

func (s *Server) handleRollback(w http.ResponseWriter, r *http.Request) {
	l := s.learning(w)
	if l == nil {
		return
	}
	var req rollbackRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, "invalid body: %v", err)
		return
	}
	v, persistErr, err := l.rollback(req.Family)
	switch {
	case IsUnknownFamily(err):
		// A routing target the registry has never dealt with is a client
		// addressing error (likely a typo'd family name), not a conflict
		// with the target's current state.
		writeError(w, http.StatusNotFound, "rollback: %v", err)
	case IsNoRollback(err):
		writeError(w, http.StatusConflict, "rollback: %v", err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, "rollback: %v", err)
	default:
		resp := rollbackResponse{ModelVersion: v}
		if persistErr != nil {
			resp.PersistError = persistErr.Error()
		}
		writeJSON(w, http.StatusOK, resp)
	}
}

// sessionInfo is the wire form of an external estimation session's
// identity (POST /sessions response; GET /sessions entries).
type sessionInfo struct {
	ID       string `json:"id"`
	Workload string `json:"workload"`
	// Family is the session's workload family; Class the admission class
	// it was admitted under (the family, or "family|client").
	Family string `json:"family"`
	Class  string `json:"class"`
	// Shard is the engine slot whose capacity the session occupies.
	Shard int `json:"shard"`
	// Model is the selector version serving the session (0 = fixed
	// estimator); ModelFamily that version's routing target ("" = global).
	Model       int    `json:"model,omitempty"`
	ModelFamily string `json:"model_family,omitempty"`
	// State is "open", "completed", "aborted" or "expired".
	State string `json:"state"`
	// Observations is the number of counter snapshots ingested so far.
	Observations int64 `json:"observations"`
}

func (s *ingestSession) info() sessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return sessionInfo{
		ID: s.id, Workload: s.workload, Family: s.family, Class: s.class,
		Shard: s.shard, Model: s.model, ModelFamily: s.modelFamily,
		State: sessionStateName(s.state), Observations: s.ingested,
	}
}

// handleSessionOpen is POST /sessions: validate the plan spec, admit
// through the engine gate under the session's class, and register the
// session. Admission refusals answer exactly as query submissions do
// (429 queue_full / deadline_shed, 503 draining, Retry-After included).
func (s *Server) handleSessionOpen(w http.ResponseWriter, r *http.Request) {
	spec, err := ingest.DecodeSpec(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "open session: %v", err)
		return
	}
	if spec.Family == "" {
		writeError(w, http.StatusBadRequest, "open session: family is required (it is the admission class and the corpus tag)")
		return
	}
	model, err := ingest.Build(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "open session: %v", err)
		return
	}
	ctx := r.Context()
	if spec.DeadlineMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(spec.DeadlineMS)*time.Millisecond)
		defer cancel()
	}
	sess, err := s.sessions.open(ctx, spec, model)
	var shedErr *engine.DeadlineShedError
	switch {
	case errors.As(err, &shedErr):
		writeReject(w, http.StatusTooManyRequests, "deadline_shed", shedErr.Predicted, err)
		return
	case errors.Is(err, errSessionLimit):
		writeReject(w, http.StatusTooManyRequests, "session_limit", s.eng.RetryAfterHint(), err)
		return
	case IsSaturated(err):
		writeReject(w, http.StatusTooManyRequests, "queue_full", s.eng.RetryAfterHint(), err)
		return
	case IsDraining(err):
		writeReject(w, http.StatusServiceUnavailable, "draining", drainingRetryAfter, err)
		return
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusServiceUnavailable, "open session: %v", err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "open session: %v", err)
		return
	}
	writeJSON(w, http.StatusCreated, sess.info())
}

func (s *Server) handleSessionList(w http.ResponseWriter, _ *http.Request) {
	sessions := s.sessions.list()
	infos := make([]sessionInfo, 0, len(sessions))
	for _, sess := range sessions {
		infos = append(infos, sess.info())
	}
	writeJSON(w, http.StatusOK, infos)
}

// observeResponse is the POST /sessions/{id}/observations wire form.
type observeResponse struct {
	ID string `json:"id"`
	// Added is the number of snapshots this batch ingested.
	Added int `json:"added"`
	// Observations is the session's ingested snapshot total.
	Observations int64 `json:"observations"`
	// State is the session's state after the batch ("completed" once the
	// Done marker applied).
	State string `json:"state"`
}

// handleSessionObserve is POST /sessions/{id}/observations: one strict
// observation batch. Validation failures map onto the ingest error
// taxonomy — 400 malformed, 409 ordering/regression/already-completed,
// 413 size or retention limits — and a rejected batch leaves the session
// at its last consistent prefix.
func (s *Server) handleSessionObserve(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessions.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session %q", r.PathValue("id"))
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, ingest.MaxBatchBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "observations: %v", err)
		return
	}
	batch, err := ingest.DecodeBatch(body)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ingest.ErrBatchTooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, "observations: %v", err)
		return
	}
	added, state, err := s.sessions.apply(sess, batch)
	if err != nil {
		status := http.StatusBadRequest
		switch {
		case errors.Is(err, ingest.ErrOutOfOrder), errors.Is(err, ingest.ErrRegression),
			errors.Is(err, ingest.ErrCompleted):
			status = http.StatusConflict
		case errors.Is(err, ingest.ErrLimit):
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, "observations: %v", err)
		return
	}
	sess.mu.Lock()
	total := sess.ingested
	sess.mu.Unlock()
	writeJSON(w, http.StatusOK, observeResponse{
		ID: sess.id, Added: added, Observations: total,
		State: sessionStateName(state),
	})
}

// sessionProgressResponse is the GET /sessions/{id}/progress wire form —
// the session's identity plus the freshest conflated ProgressUpdate,
// exactly the shape native query progress reads get.
type sessionProgressResponse struct {
	ID          string          `json:"id"`
	Workload    string          `json:"workload"`
	Family      string          `json:"family"`
	Class       string          `json:"class"`
	State       string          `json:"state"`
	Done        bool            `json:"done"`
	Model       int             `json:"model,omitempty"`
	ModelFamily string          `json:"model_family,omitempty"`
	Update      *ProgressUpdate `json:"update,omitempty"`
}

func (s *Server) handleSessionProgress(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessions.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session %q", r.PathValue("id"))
		return
	}
	sess.mu.Lock()
	state := sess.state
	sess.mu.Unlock()
	latest, seen := sess.snapshotProgress()
	resp := sessionProgressResponse{
		ID: sess.id, Workload: sess.workload, Family: sess.family,
		Class: sess.class, State: sessionStateName(state),
		Done:  state == sessionCompleted,
		Model: sess.model, ModelFamily: sess.modelFamily,
	}
	if seen {
		resp.Update = &latest
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSessionDelete aborts an open session (idempotent: a terminal
// session just reports its state).
func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessions.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session %q", r.PathValue("id"))
		return
	}
	state := s.sessions.abort(sess)
	writeJSON(w, http.StatusOK, map[string]string{
		"id":    sess.id,
		"state": sessionStateName(state),
	})
}
