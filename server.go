package progressest

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
)

// Server exposes live query monitoring over HTTP — the daemon core of
// cmd/progressd. It owns one Workload and runs submitted queries on their
// own goroutines, recording the freshest ProgressUpdate of each:
//
//	POST /queries                {"query": i}  -> {"id": "q1", ...}
//	GET  /queries                              -> list of submitted queries
//	GET  /queries/{id}/progress                -> live progress JSON
//	GET  /healthz                              -> {"status": "ok"}
type Server struct {
	w    *Workload
	opts MonitorOptions
	mux  *http.ServeMux

	mu      sync.Mutex
	queries map[string]*serverQuery
	order   []*serverQuery // submission order, for stable listings
	live    int            // queries admitted and not yet finished
	nextID  int
}

// Server resource bounds: at most maxLive queries execute concurrently
// (further submissions get 429), and finished queries beyond maxKept are
// evicted oldest-first so a long-running daemon's memory stays bounded.
const (
	maxLive = 64
	maxKept = 1024
)

// serverQuery tracks one submitted query.
type serverQuery struct {
	id    string
	query int

	mu     sync.Mutex
	latest ProgressUpdate
	seen   bool
	done   bool
}

func (q *serverQuery) snapshot() (ProgressUpdate, bool, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.latest, q.seen, q.done
}

// NewServer wraps the workload in an HTTP monitoring server. The monitor
// options apply to every submitted query.
func NewServer(w *Workload, opts MonitorOptions) *Server {
	s := &Server{
		w:       w,
		opts:    opts.withDefaults(),
		mux:     http.NewServeMux(),
		queries: make(map[string]*serverQuery),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("POST /queries", s.handleSubmit)
	s.mux.HandleFunc("GET /queries", s.handleList)
	s.mux.HandleFunc("GET /queries/{id}/progress", s.handleProgress)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"queries": s.w.NumQueries(),
	})
}

// submitRequest is the POST /queries body.
type submitRequest struct {
	// Query is the workload query index to execute.
	Query int `json:"query"`
}

// queryInfo is the wire form of a submitted query's identity.
type queryInfo struct {
	ID    string `json:"id"`
	Query int    `json:"query"`
	Text  string `json:"text,omitempty"`
	Done  bool   `json:"done"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid body: %v", err)
		return
	}
	if req.Query < 0 || req.Query >= s.w.NumQueries() {
		writeError(w, http.StatusBadRequest, "query index %d out of range [0,%d)",
			req.Query, s.w.NumQueries())
		return
	}
	// Admission is atomic: the slot is claimed under the lock before the
	// query starts, so concurrent submissions cannot overshoot the cap.
	s.mu.Lock()
	if s.live >= maxLive {
		live := s.live
		s.mu.Unlock()
		writeError(w, http.StatusTooManyRequests, "%d queries already executing", live)
		return
	}
	s.live++
	s.mu.Unlock()

	m, err := s.w.Start(req.Query, s.opts)
	if err != nil {
		s.mu.Lock()
		s.live--
		s.mu.Unlock()
		writeError(w, http.StatusInternalServerError, "start: %v", err)
		return
	}
	s.mu.Lock()
	s.nextID++
	q := &serverQuery{id: fmt.Sprintf("q%d", s.nextID), query: req.Query}
	s.queries[q.id] = q
	s.order = append(s.order, q)
	// Evict the oldest finished queries beyond the retention bound.
	if len(s.order) > maxKept {
		kept := s.order[:0]
		excess := len(s.order) - maxKept
		for _, old := range s.order {
			_, _, done := old.snapshot()
			if excess > 0 && done {
				delete(s.queries, old.id)
				excess--
				continue
			}
			kept = append(kept, old)
		}
		s.order = kept
	}
	s.mu.Unlock()

	go func() {
		for u := range m.Updates {
			q.mu.Lock()
			q.latest = u
			q.seen = true
			q.done = q.done || u.Done
			q.mu.Unlock()
		}
		q.mu.Lock()
		q.done = true
		q.mu.Unlock()
		s.mu.Lock()
		s.live--
		s.mu.Unlock()
	}()

	writeJSON(w, http.StatusAccepted, queryInfo{
		ID: q.id, Query: req.Query, Text: s.w.QueryText(req.Query),
	})
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	queries := append([]*serverQuery(nil), s.order...)
	s.mu.Unlock()
	infos := make([]queryInfo, 0, len(queries))
	for _, q := range queries {
		_, _, done := q.snapshot()
		infos = append(infos, queryInfo{ID: q.id, Query: q.query, Done: done})
	}
	writeJSON(w, http.StatusOK, infos)
}

// progressResponse is the GET /queries/{id}/progress wire form.
type progressResponse struct {
	ID     string          `json:"id"`
	Query  int             `json:"query"`
	Done   bool            `json:"done"`
	Update *ProgressUpdate `json:"update,omitempty"`
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	q, ok := s.queries[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown query %q", id)
		return
	}
	latest, seen, done := q.snapshot()
	resp := progressResponse{ID: q.id, Query: q.query, Done: done}
	if seen {
		resp.Update = &latest
	}
	writeJSON(w, http.StatusOK, resp)
}
