// Benchmarks regenerating every table and figure of the paper's
// evaluation, one testing.B target per artifact, plus ablation benches for
// the design decisions called out in DESIGN.md. Each benchmark runs the
// corresponding experiment end to end (workload execution, estimator
// replay, model training where applicable) in the quick configuration;
// use `go run ./cmd/experiments -full` for the recorded full-size numbers.
package progressest_test

import (
	"fmt"
	"math/rand"
	"testing"

	"progressest"
	"progressest/internal/experiments"
	"progressest/internal/feedback"
	"progressest/internal/mart"
	"progressest/internal/progress"
	"progressest/internal/selection"
)

// benchSuite returns a fresh suite per benchmark so that the measured
// iterations include the workload runs (the dominant cost in practice).
func benchSuite() *experiments.Suite {
	cfg := experiments.Quick()
	return experiments.NewSuite(cfg)
}

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchSuite().Figure1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchSuite().Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchSuite().Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchSuite().Table3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchSuite().Table4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchSuite().Table5(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4Table6Figure5 regenerates the shared six-fold ad-hoc
// evaluation behind Figure 4, Table 6 and Figure 5.
func BenchmarkFigure4Table6Figure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		r, err := s.AdHoc()
		if err != nil {
			b.Fatal(err)
		}
		_ = r.Figure4String()
		_ = r.Table6String()
		_ = r.Figure5String()
	}
}

func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchSuite().Figure6(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchSuite().Figure7(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable7 measures one representative cell of the training-time
// table (6K examples, M=200, full feature width); the experiment itself
// sweeps the whole grid.
func BenchmarkTable7(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	nf := len(progressest.FeatureNames())
	X := make([][]float64, 6000)
	y := make([]float64, len(X))
	for i := range X {
		row := make([]float64, nf)
		for j := range row {
			row[j] = rng.Float64()
		}
		X[i] = row
		y[i] = row[0] * row[1]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mart.Train(X, y, mart.Options{Trees: 200, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchSuite().Table8(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFeatureImportance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchSuite().FeatureImportance(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModelsValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchSuite().Models(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benches (design decisions from DESIGN.md) ---

// benchExamples harvests a small shared example pool.
func benchExamples(b *testing.B) []progressest.Example {
	b.Helper()
	w, err := progressest.Open(progressest.Config{
		Dataset: progressest.TPCH, Queries: 40, Scale: 0.1, Seed: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	ex, err := w.Harvest()
	if err != nil {
		b.Fatal(err)
	}
	return ex
}

// BenchmarkAblationRegressionVsClassifier compares the paper's
// error-regression setup with a multi-class classification baseline
// (Section 4.1) including training cost.
func BenchmarkAblationRegressionVsClassifier(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchSuite().Ablation(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMARTvsRidge measures the training-cost side of the
// MART-vs-linear-model decision (Section 4.2).
func BenchmarkAblationMARTvsRidge(b *testing.B) {
	ex := benchExamples(b)
	X := make([][]float64, len(ex))
	y := make([]float64, len(ex))
	for i := range ex {
		X[i] = ex[i].Features
		y[i] = ex[i].ErrL1[progress.DNE]
	}
	b.Run("mart", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mart.Train(X, y, mart.Options{Trees: 100, Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ridge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mart.TrainRidge(X, y, 1.0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationStaticVsDynamicFeatures measures selection quality and
// cost with and without the dynamic feature suffix (Section 4.4).
func BenchmarkAblationStaticVsDynamicFeatures(b *testing.B) {
	ex := benchExamples(b)
	for _, dynamic := range []bool{false, true} {
		name := "static"
		if dynamic {
			name = "dynamic"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := selection.Train(ex, selection.Config{
					Dynamic: dynamic, Mart: mart.Options{Trees: 60, Seed: 1},
				})
				if err != nil {
					b.Fatal(err)
				}
				ev := selection.Evaluate(s, ex)
				b.ReportMetric(ev.AvgL1, "avgL1")
			}
		})
	}
}

// BenchmarkHarvestSequential and BenchmarkHarvestParallel are the paired
// benchmark for the training hot path: harvesting labelled examples from
// every query of a workload, sequentially vs. fanned out across a worker
// pool. The parallel variant produces bit-identical examples (asserted by
// TestHarvestParallelMatchesHarvest); compare ns/op for the wall-clock
// speedup.
func harvestWorkload(b *testing.B) *progressest.Workload {
	b.Helper()
	w, err := progressest.Open(progressest.Config{
		Dataset: progressest.TPCH, Queries: 24, Scale: 0.1, Seed: 6,
	})
	if err != nil {
		b.Fatal(err)
	}
	return w
}

func BenchmarkHarvestSequential(b *testing.B) {
	w := harvestWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Harvest(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHarvestParallel(b *testing.B) {
	w := harvestWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.HarvestParallel(0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOnlineVsReplay compares the cost of maintaining all candidate
// estimators incrementally while a query runs (the streaming OnlineView
// attached as exec.Observer) against executing and then replaying the
// finished trace through every estimator — the dataflow the streaming
// refactor replaces.
func BenchmarkOnlineVsReplay(b *testing.B) {
	w := harvestWorkload(b)
	b.Run("online", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := w.Start(0, progressest.MonitorOptions{UpdateEvery: 1 << 30})
			if err != nil {
				b.Fatal(err)
			}
			for range m.Updates {
			}
			if _, err := m.Wait(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("replay", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run, err := w.Run(0)
			if err != nil {
				b.Fatal(err)
			}
			for p := 0; p < run.NumPipelines(); p++ {
				for _, e := range progressest.AllEstimators() {
					if l1, _ := run.Errors(p, e); l1 < 0 {
						b.Fatal("negative error")
					}
				}
			}
		}
	})
}

// BenchmarkSelectionOverhead measures the per-pipeline runtime cost of
// estimator selection itself (feature lookup + model evaluation), the
// "low overhead" claim of the paper's Section 6.4 discussion.
func BenchmarkSelectionOverhead(b *testing.B) {
	ex := benchExamples(b)
	s, err := selection.Train(ex, selection.Config{
		Dynamic: true, Mart: mart.Options{Trees: 200, Seed: 1},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Select(ex[i%len(ex)].Features)
	}
}

// BenchmarkEstimatorReplay measures replaying all candidate estimators
// over one pipeline trace — the cost of collecting one training label
// ("the overhead for tracking multiple estimators is nearly identical to
// the overhead for computing a single one").
func BenchmarkEstimatorReplay(b *testing.B) {
	w, err := progressest.Open(progressest.Config{
		Dataset: progressest.TPCH, Queries: 1, Scale: 0.1, Seed: 9,
	})
	if err != nil {
		b.Fatal(err)
	}
	run, err := w.Run(0)
	if err != nil {
		b.Fatal(err)
	}
	pipe := 0
	for p := 0; p < run.NumPipelines(); p++ {
		if run.Observations(p) > run.Observations(pipe) {
			pipe = p
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Fresh run views would re-execute; replay estimator series on the
		// recorded trace via the public API.
		for _, e := range progressest.AllEstimators() {
			if l1, _ := run.Errors(pipe, e); l1 < 0 {
				b.Fatal("negative error")
			}
		}
	}
}

// BenchmarkDriftRecord measures the drift tracker's harvest-path cost:
// one windowed Record of a finished query's per-pipeline observed errors
// against the serving version's baseline. This runs synchronously on
// every query completion, so its ns/op (and 0 allocs/op in steady state)
// is tracked by the CI bench-smoke artifact from day one.
func BenchmarkDriftRecord(b *testing.B) {
	tr := feedback.NewDriftTracker(feedback.DriftConfig{})
	served := feedback.ServedModel{Target: "fam", Version: 1, BaselineL1: 0.05, BaselineN: 50}
	errs := []float64{0.04, 0.07, 0.05, 0.06}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Record(served, errs)
	}
}

// BenchmarkRouterLookup measures the per-query cost of resolving the
// serving model version for a family — the lock-free routing-table read
// on the admission hot path, with the drift monitor's per-target
// accounting hanging off its answer.
func BenchmarkRouterLookup(b *testing.B) {
	r := selection.NewRouter[int]()
	r.Set("", 0)
	families := make([]string, 16)
	for i := range families {
		families[i] = fmt.Sprintf("fam%02d", i)
		if i%2 == 0 {
			r.Set(families[i], i+1) // odd families fall back to the global entry
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := r.Route(families[i%len(families)]); !ok {
			b.Fatal("route missed")
		}
	}
}

// Ensure the suite configurations stay plausible: quick must stay small.
func TestBenchConfigsSane(t *testing.T) {
	q := experiments.Quick()
	if q.QueriesTPCH > 60 {
		t.Errorf("quick config too large: %+v", q)
	}
	f := experiments.Full()
	if f.QueriesTPCH <= q.QueriesTPCH || f.MartTrees != 200 {
		t.Errorf("full config should exceed quick: %+v", f)
	}
}
