package progressest

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"
)

// TestEngineShardsServeConcurrently: `-shards 4` serves concurrent
// queries spread across all replicas, and GET /engine/stats reports the
// per-shard live counts while they run.
func TestEngineShardsServeConcurrently(t *testing.T) {
	w := serverWorkload(t)
	eng := NewEngine(w, EngineConfig{Shards: 4, MaxLivePerShard: 1, QueueDepth: 8},
		MonitorOptions{UpdateEvery: 4, Pace: 15 * time.Millisecond})
	srv := httptest.NewServer(NewEngineServer(eng))
	defer srv.Close()

	var ids []string
	var shards []int
	for i := 0; i < 4; i++ {
		var info struct {
			ID    string `json:"id"`
			Shard int    `json:"shard"`
		}
		if code := doJSON(t, http.MethodPost, srv.URL+"/queries", `{"query": 0}`, &info); code != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, code)
		}
		ids = append(ids, info.ID)
		shards = append(shards, info.Shard)
	}
	sort.Ints(shards)
	for i, s := range shards {
		if s != i {
			t.Fatalf("submissions placed on shards %v, want one per shard 0..3", shards)
		}
	}

	var stats EngineStats
	if code := doJSON(t, http.MethodGet, srv.URL+"/engine/stats", "", &stats); code != http.StatusOK {
		t.Fatalf("engine stats: status %d", code)
	}
	if len(stats.Shards) != 4 || stats.QueueDepth != 8 || stats.MaxLivePerShard != 1 {
		t.Fatalf("engine stats shape: %+v", stats)
	}
	if stats.Admitted != 4 {
		t.Fatalf("admitted %d, want 4", stats.Admitted)
	}
	live := 0
	for _, sh := range stats.Shards {
		if sh.Live > 1 {
			t.Fatalf("shard %d over its live bound: %+v", sh.Shard, stats.Shards)
		}
		live += sh.Live
	}
	if live == 0 {
		t.Fatal("no query still live under pacing — stats observed nothing")
	}
	for _, id := range ids {
		waitDone(t, srv.URL, id)
	}
}

// TestEngineQueueAdmitsWhenSlotFrees: with every shard busy a submission
// waits in the bounded queue (visible in /engine/stats) and is admitted
// once the live query finishes, rather than being rejected.
func TestEngineQueueAdmitsWhenSlotFrees(t *testing.T) {
	w := serverWorkload(t)
	eng := NewEngine(w, EngineConfig{Shards: 1, MaxLivePerShard: 1, QueueDepth: 2},
		MonitorOptions{UpdateEvery: 4, Pace: 10 * time.Millisecond})
	srv := httptest.NewServer(NewEngineServer(eng))
	defer srv.Close()

	var first struct {
		ID string `json:"id"`
	}
	if code := doJSON(t, http.MethodPost, srv.URL+"/queries", `{"query": 0}`, &first); code != http.StatusAccepted {
		t.Fatalf("first submit: status %d", code)
	}
	type result struct {
		code int
		id   string
	}
	second := make(chan result, 1)
	go func() {
		var info struct {
			ID string `json:"id"`
		}
		code := doJSON(t, http.MethodPost, srv.URL+"/queries", `{"query": 1}`, &info)
		second <- result{code, info.ID}
	}()

	// The queued submission shows up in the stats before it is admitted.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var stats EngineStats
		doJSON(t, http.MethodGet, srv.URL+"/engine/stats", "", &stats)
		if stats.Queued == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("submission never appeared in the admission queue")
		}
		time.Sleep(time.Millisecond)
	}

	res := <-second
	if res.code != http.StatusAccepted {
		t.Fatalf("queued submit: status %d, want 202 after the slot freed", res.code)
	}
	waitDone(t, srv.URL, first.ID)
	waitDone(t, srv.URL, res.id)
}

// TestEngineDrainFailsQueuedSubmissions: Drain under load answers queued
// submissions with 503 immediately (no stranded requests), refuses new
// ones, and still lets the in-flight query finish.
func TestEngineDrainFailsQueuedSubmissions(t *testing.T) {
	w := serverWorkload(t)
	eng := NewEngine(w, EngineConfig{Shards: 1, MaxLivePerShard: 1, QueueDepth: 4},
		MonitorOptions{UpdateEvery: 4, Pace: 10 * time.Millisecond})
	s := NewEngineServer(eng)
	srv := httptest.NewServer(s)
	defer srv.Close()

	var first struct {
		ID string `json:"id"`
	}
	if code := doJSON(t, http.MethodPost, srv.URL+"/queries", `{"query": 0}`, &first); code != http.StatusAccepted {
		t.Fatalf("first submit: status %d", code)
	}
	queued := make(chan int, 1)
	go func() {
		queued <- doJSON(t, http.MethodPost, srv.URL+"/queries", `{"query": 1}`, nil)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var stats EngineStats
		doJSON(t, http.MethodGet, srv.URL+"/engine/stats", "", &stats)
		if stats.Queued == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second submission never queued")
		}
		time.Sleep(time.Millisecond)
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()

	select {
	case code := <-queued:
		if code != http.StatusServiceUnavailable {
			t.Fatalf("queued submission during drain: status %d, want 503", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued submission stranded by Drain")
	}
	if code := doJSON(t, http.MethodPost, srv.URL+"/queries", `{"query": 2}`, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("new submission during drain: status %d, want 503", code)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	// The in-flight query completed and was recorded.
	var resp struct {
		Done bool `json:"done"`
	}
	if code := doJSON(t, http.MethodGet, srv.URL+"/queries/"+first.ID+"/progress", "", &resp); code != http.StatusOK || !resp.Done {
		t.Fatalf("drained query: status %d done %v", code, resp.Done)
	}
}

// TestEngineFamilyRoutingEndToEnd is the acceptance e2e: after a retrain
// with family models on, a query of the family with its own trained
// model is served by that family version, while queries of other
// families fall back to the global selector — visible both on the
// Monitor and in the HTTP responses.
func TestEngineFamilyRoutingEndToEnd(t *testing.T) {
	w, err := Open(Config{Dataset: TPCH, Queries: 24, Scale: 0.08, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Batch-harvest once to fill the corpus; examples are family-tagged.
	ex, err := w.HarvestParallel(0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	for i := range ex {
		counts[ex[i].Family]++
	}
	top, topN := "", 0
	for f, n := range counts {
		if n > topN {
			top, topN = f, n
		}
	}
	if top == "" || len(counts) < 2 {
		t.Fatalf("workload yielded %d families: %v — the fixture needs at least 2", len(counts), counts)
	}
	dir := t.TempDir()
	if err := ExportExamples(dir, ex); err != nil {
		t.Fatal(err)
	}
	lrn, err := OpenLearning(LearningConfig{
		Dir:               dir,
		Selector:          SelectorConfig{Trees: 10},
		DisableBackground: true,
		DisableGate:       true,
		FamilyModels:      true,
		// Only the best-represented family qualifies for its own model.
		MinFamilyExamples: topN,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lrn.Close()
	global, err := lrn.Retrain()
	if err != nil {
		t.Fatal(err)
	}
	fams := lrn.FamilyVersions()
	if len(fams) != 1 {
		t.Fatalf("family versions %v, want exactly {%s}", fams, top)
	}
	famVersion, ok := fams[top]
	if !ok || famVersion == global.ID {
		t.Fatalf("family %s has version %d (global %d)", top, famVersion, global.ID)
	}

	eng := NewEngine(w, EngineConfig{Shards: 2, RouteByFamily: true},
		MonitorOptions{UpdateEvery: 8, Learning: lrn})
	qTop, qOther := -1, -1
	for i := 0; i < w.NumQueries(); i++ {
		if w.QueryFamily(i) == top && qTop < 0 {
			qTop = i
		}
		if w.QueryFamily(i) != top && qOther < 0 {
			qOther = i
		}
	}
	if qTop < 0 || qOther < 0 {
		t.Fatalf("query fixture lacks families: top=%d other=%d", qTop, qOther)
	}

	mTop, err := eng.Start(context.Background(), qTop)
	if err != nil {
		t.Fatal(err)
	}
	mOther, err := eng.Start(context.Background(), qOther)
	if err != nil {
		t.Fatal(err)
	}
	if mTop.ModelVersion() != famVersion || mTop.ModelFamily() != top {
		t.Fatalf("family query served by v%d (family %q), want family version v%d (%q)",
			mTop.ModelVersion(), mTop.ModelFamily(), famVersion, top)
	}
	if mOther.ModelVersion() != global.ID || mOther.ModelFamily() != "" {
		t.Fatalf("other-family query served by v%d (family %q), want global v%d",
			mOther.ModelVersion(), mOther.ModelFamily(), global.ID)
	}
	if mTop.Shard() == mOther.Shard() {
		t.Fatalf("both queries landed on shard %d despite a free replica", mTop.Shard())
	}
	for range mTop.Updates {
	}
	for range mOther.Updates {
	}
	if _, err := mTop.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := mOther.Wait(); err != nil {
		t.Fatal(err)
	}

	// The same routing is visible over HTTP, including in /models.
	srv := httptest.NewServer(NewEngineServer(eng))
	defer srv.Close()
	var info struct {
		ID          string `json:"id"`
		Family      string `json:"family"`
		Model       int    `json:"model"`
		ModelFamily string `json:"model_family"`
	}
	if code := doJSON(t, http.MethodPost, srv.URL+"/queries",
		fmt.Sprintf(`{"query": %d}`, qTop), &info); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	if info.Family != top || info.Model != famVersion || info.ModelFamily != top {
		t.Fatalf("HTTP family routing: %+v", info)
	}
	waitDone(t, srv.URL, info.ID)
	var models modelsResponse
	if code := doJSON(t, http.MethodGet, srv.URL+"/models", "", &models); code != http.StatusOK {
		t.Fatalf("GET /models: status %d", code)
	}
	if models.Families[top] != famVersion || models.Current != global.ID {
		t.Fatalf("models routing table: current %d families %v", models.Current, models.Families)
	}
}

// TestLearningModelPersistsAcrossRestart: a retrained model is restored
// after reopening the corpus directory, so a restarted daemon serves
// queries with it instead of the fixed-estimator fallback.
func TestLearningModelPersistsAcrossRestart(t *testing.T) {
	w := learningWorkload(t)
	dir := t.TempDir()
	lrn, err := OpenLearning(LearningConfig{
		Dir:               dir,
		Selector:          SelectorConfig{Trees: 10},
		DisableBackground: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := w.Start(0, MonitorOptions{UpdateEvery: 4, Learning: lrn})
	if err != nil {
		t.Fatal(err)
	}
	for range m.Updates {
	}
	if _, err := m.Wait(); err != nil {
		t.Fatal(err)
	}
	v1, err := lrn.Retrain()
	if err != nil {
		t.Fatal(err)
	}
	if err := lrn.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: the daemon resumes from the persisted version, before any
	// fresh traffic or retrain.
	lrn2, err := OpenLearning(LearningConfig{
		Dir:               dir,
		Selector:          SelectorConfig{Trees: 10},
		DisableBackground: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lrn2.Close()
	cur, ok := lrn2.Current()
	if !ok {
		t.Fatal("no model restored after restart")
	}
	if cur.Source != "restored" || cur.HoldoutL1 != v1.HoldoutL1 || cur.CorpusSize != v1.CorpusSize {
		t.Fatalf("restored version %+v, want metadata of %+v", cur, v1)
	}
	m2, err := w.Start(1, MonitorOptions{UpdateEvery: 4, Learning: lrn2})
	if err != nil {
		t.Fatal(err)
	}
	if m2.ModelVersion() != cur.ID {
		t.Fatalf("post-restart query served by v%d, want restored v%d", m2.ModelVersion(), cur.ID)
	}
	for range m2.Updates {
	}
	if _, err := m2.Wait(); err != nil {
		t.Fatal(err)
	}
}
