package progressest

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"time"

	"progressest/internal/feedback"
	"progressest/internal/mart"
	"progressest/internal/selection"
)

// LearningConfig configures the continuous-learning loop: where the
// harvested corpus lives on disk, when the background retrainer fires,
// and what it trains.
type LearningConfig struct {
	// Dir is the corpus directory (created if missing). Required.
	Dir string
	// Selector are the training hyperparameters for retrained versions.
	Selector SelectorConfig
	// MinNewExamples and MinInterval gate automatic retraining: a retrain
	// fires once the corpus grew by MinNewExamples since the last training
	// run AND MinInterval elapsed (defaults 256 examples / 1 minute).
	MinNewExamples int
	MinInterval    time.Duration
	// Poll is how often the retrain policy is evaluated. It defaults to
	// 5s, capped at MinInterval when that is shorter — a sub-5s
	// -retrain-every must not silently wait for a 5s tick.
	// DisableBackground turns the background retrainer off entirely;
	// Retrain can still be called manually (e.g. via POST /models/retrain).
	Poll              time.Duration
	DisableBackground bool
	// SeedExamples, when non-empty, is a synthetic corpus (e.g. a batch
	// Harvest) mixed into every training set so early versions trained on
	// thin live traffic keep the offline baseline.
	SeedExamples []Example
	// SeedSelector, when non-nil, is published as the first version
	// (source "seed") so queries are served by a model before the first
	// retrain completes.
	SeedSelector *Selector
	// MinObservations filters harvested pipelines with fewer counter
	// snapshots, exactly like the batch harvest (default 8).
	MinObservations int
	// MaxSegmentBytes and MaxExamples bound the on-disk corpus (defaults
	// 4 MiB per segment, 100000 examples; oldest segments are dropped).
	MaxSegmentBytes int64
	MaxExamples     int
	// FamilyQuota is a per-family retention floor: when retention or
	// compaction must shed examples, every tagged workload family keeps at
	// least this many of its newest examples on disk (quota outranks
	// MaxExamples — a corpus where every example is quota-protected stops
	// shrinking). 0 disables quotas; untagged examples are never
	// protected. With a quota set, a background compactor additionally
	// rewrites sealed segments in place of whole-segment drops,
	// downsampling the largest (family, plan-signature) groups first so a
	// burst family's bulk is shed while sparse families survive intact.
	FamilyQuota int
	// CompactInterval is how often the background compactor looks for
	// over-cap segments to rewrite (default 30s; negative disables the
	// compactor, leaving whole-segment retention only). It only runs when
	// FamilyQuota > 0 and the background loop is enabled.
	CompactInterval time.Duration
	// CorpusCacheBytes bounds the sealed-segment decode cache: immutable
	// corpus segments keep their decoded examples in memory (LRU by
	// on-disk bytes), so a warm retrain re-decodes only the active tail.
	// 0 means the 64 MiB default; negative disables caching.
	CorpusCacheBytes int64
	// ScanWorkers bounds how many corpus segments a retrain reads and
	// decodes concurrently; TrainWorkers bounds how many family selectors
	// fit concurrently per retrain cycle. Both default (at 0) to
	// GOMAXPROCS capped at 8; 1 forces the sequential path. Results are
	// bit-identical to sequential either way — parallelism only changes
	// wall-clock time.
	ScanWorkers  int
	TrainWorkers int
	// FamilyModels additionally trains one selector per workload family
	// with at least MinFamilyExamples harvested examples (default 40).
	// Queries routed by family (MonitorOptions.RouteByFamily, which
	// EngineConfig.RouteByFamily sets engine-wide) are then served by
	// their family's version, falling back to the global model for
	// families without one.
	FamilyModels      bool
	MinFamilyExamples int
	// GateTolerance is the retrain-quality gate's accepted relative
	// regression (zero means the default, 0.25; negative means strict —
	// no relative regression allowed): a freshly trained version only
	// hot-swaps in when its holdout L1 is at most (1+GateTolerance)× the
	// serving version's error on the same holdout, plus a 0.01 absolute
	// slack; otherwise it is recorded as rejected (visible in GET
	// /models) and the old version keeps serving. DisableGate publishes
	// every trained version unconditionally.
	GateTolerance float64
	DisableGate   bool
	// DisablePersist keeps trained versions in memory only. By default
	// every accepted version is serialized under Dir/models (atomic
	// temp+rename writes), and a restarted daemon restores the serving
	// global and family models from there instead of falling back to
	// fixed estimators.
	DisablePersist bool
	// DriftWindow, DriftMinSamples, DriftRatio and DriftAbsSlack tune the
	// observed-vs-predicted drift monitor: per routing target, the mean L1
	// error the serving version's estimator choices incur on the last
	// DriftWindow harvested pipelines (default 256) is compared against
	// the version's recorded holdout baseline once at least
	// DriftMinSamples observations accrued (default 32); the target counts
	// as drifted when observed > baseline*DriftRatio + DriftAbsSlack
	// (defaults 1.5 and 0.01; a negative slack means zero).
	DriftWindow     int
	DriftMinSamples int
	DriftRatio      float64
	DriftAbsSlack   float64
	// DisableDriftRetrain keeps drift tracking on (GET /models/drift,
	// DriftStatus) but never auto-retrains on a drift verdict — the
	// operator decides. By default a drifted target is retrained on its
	// own, with trigger "drift", leaving healthy targets' models alone.
	DisableDriftRetrain bool
	// CanaryWindow enables champion/challenger serving: a gate-accepted
	// version from a background retrain shadow-scores on CanaryWindow live
	// harvested pipelines before it may hot-swap, and is rejected when its
	// live error exceeds the champion's by more than the quality gate's
	// tolerance. 0 (the default) disables confirmation — accepted versions
	// hot-swap immediately. Manual retrains always bypass the canary.
	CanaryWindow int
	// CanaryMaxAge bounds how long a challenger may wait for its window
	// before being rejected for lack of traffic (default 5 minutes).
	CanaryMaxAge time.Duration
	// DriftRejectLimit is the auto-rollback breaker: after this many
	// CONSECUTIVE drift-triggered retrains of one target were rejected (by
	// the quality gate or by canary confirmation) while the target kept
	// drifting, the serving version itself is judged bad and the target is
	// rolled back to its previous accepted version (a family with no
	// earlier version is pinned to the global fallback), exactly as POST
	// /models/rollback would. 0 means the default, 3; negative disables
	// the breaker.
	DriftRejectLimit int
}

// ModelVersion is the wire-friendly description of one published selector
// version.
type ModelVersion struct {
	ID         int       `json:"id"`
	TrainedAt  time.Time `json:"trained_at"`
	CorpusSize int       `json:"corpus_size"`
	HoldoutL1  float64   `json:"holdout_l1"`
	HoldoutN   int       `json:"holdout_n"`
	Source     string    `json:"source"`
	// Family is the routing target the version was trained for ("" = the
	// global model).
	Family string `json:"family,omitempty"`
	// Decision is the retrain-quality gate's verdict: "accepted" versions
	// were hot-swapped into serving, "rejected" ones stay history-only.
	Decision string `json:"decision,omitempty"`
	// BaselineL1 is the serving version's L1 on the candidate's holdout
	// that the gate compared against (0 when there was no baseline).
	BaselineL1 float64 `json:"baseline_l1,omitempty"`
	// Current marks the version serving its routing target right now.
	Current bool `json:"current"`
}

// DriftStatus is one routing target's observed-vs-predicted standing:
// the windowed mean L1 error the serving version's estimator choices
// incur on live traffic, against the holdout error predicted for the
// version at training time.
type DriftStatus struct {
	// Family is the routing target ("" = the global model).
	Family string `json:"family"`
	// Version is the serving version the observations are accounted
	// against.
	Version int `json:"version"`
	// BaselineL1 is the version's holdout L1 (the predicted error);
	// BaselineN the holdout size it was measured on. BaselineN 0 means no
	// fair baseline exists (seed/restored models) and Drifted stays false.
	BaselineL1 float64 `json:"baseline_l1"`
	BaselineN  int     `json:"baseline_n"`
	// ObservedL1 and ObservedP90 are the mean and 90th percentile L1
	// error over the current window of harvested pipelines served by the
	// version.
	ObservedL1  float64 `json:"observed_l1"`
	ObservedP90 float64 `json:"observed_p90"`
	// Samples is the number of observations in the window (at most
	// Window); a verdict needs at least MinSamples of them.
	Samples    int `json:"samples"`
	Window     int `json:"window"`
	MinSamples int `json:"min_samples"`
	// Ratio is the configured observed/predicted inflation bound.
	Ratio float64 `json:"ratio"`
	// Drifted is the verdict: observed > baseline*Ratio + slack with a
	// fair baseline and enough samples.
	Drifted bool `json:"drifted"`
	// Since is when the current verdict first became true (zero while not
	// drifted).
	Since time.Time `json:"since"`
	// LastTrigger and LastDecision are the most recent retrain
	// provenance for this target from the decision history ("" before any
	// decision): what fired the last training run ("manual", "auto",
	// "drift", "canary", "auto-rollback") and how the quality gate ruled.
	LastTrigger  string `json:"last_trigger,omitempty"`
	LastDecision string `json:"last_decision,omitempty"`
	// RejectStreak counts consecutive gate-rejected drift retrains of this
	// target; at LearningConfig.DriftRejectLimit the auto-rollback breaker
	// trips and the streak resets.
	RejectStreak int `json:"reject_streak,omitempty"`
}

// CanaryStatus is one pending challenger in champion/challenger
// confirmation, surfaced in GET /models as "canaries".
type CanaryStatus struct {
	// Family is the routing target ("" = the global model).
	Family string `json:"family"`
	// Source is the trigger of the training run that produced the
	// challenger ("auto" or "drift").
	Source string `json:"source"`
	// Champion is the serving version id the challenger shadow-scores
	// against.
	Champion int `json:"champion"`
	// ProposedAt is when confirmation began; ExpiresAt when the challenger
	// is rejected for lack of traffic.
	ProposedAt time.Time `json:"proposed_at"`
	ExpiresAt  time.Time `json:"expires_at"`
	// Samples of Window live observations are in; ChampionL1/ChallengerL1
	// are the running mean L1 errors on exactly those queries.
	Samples      int     `json:"samples"`
	Window       int     `json:"window"`
	ChampionL1   float64 `json:"champion_l1"`
	ChallengerL1 float64 `json:"challenger_l1"`
	// HoldoutL1 is the challenger's training-time holdout error.
	HoldoutL1 float64 `json:"holdout_l1"`
}

// RetrainDecision is one entry of the retrainer's bounded decision
// history: which trigger trained which routing target, and how the
// quality gate ruled.
type RetrainDecision struct {
	At       time.Time `json:"at"`
	Trigger  string    `json:"trigger"`
	Family   string    `json:"family,omitempty"`
	Version  int       `json:"version"`
	Decision string    `json:"decision"`
	// HoldoutL1 is the trained candidate's holdout error; BaselineL1 the
	// serving version's error on the same holdout (0 when ungated);
	// ObservedL1 the drift-window mean that fired a "drift" trigger.
	HoldoutL1  float64 `json:"holdout_l1"`
	BaselineL1 float64 `json:"baseline_l1,omitempty"`
	ObservedL1 float64 `json:"observed_l1,omitempty"`
}

// HarvestStats counts the learning loop's harvesting activity.
type HarvestStats struct {
	// Queries is the number of finished queries harvested.
	Queries int `json:"queries"`
	// Examples is the number of labelled examples appended to the corpus.
	Examples int `json:"examples"`
	// Skipped counts pipelines filtered out (too few observations).
	Skipped int `json:"skipped"`
	// Errors counts failed corpus appends.
	Errors int `json:"errors"`
}

// CorpusStats describes the on-disk corpus shape and the standing of the
// sealed-segment decode cache — what the next retrain is about to pay
// for. Surfaced in GET /models as "corpus".
type CorpusStats struct {
	// Segments and Bytes are the on-disk segment count and their summed
	// intact bytes; Examples is the retained example count.
	Segments int   `json:"segments"`
	Bytes    int64 `json:"bytes"`
	Examples int   `json:"examples"`
	// Families maps each workload family to its retained example count
	// (the empty key counts untagged examples), read from the segment
	// indexes — no corpus scan.
	Families map[string]int `json:"families"`
	// CacheHits/CacheMisses are lifetime decode-cache lookups;
	// CacheBytes/CachedSegments the current footprint; CacheCapBytes the
	// configured budget (0 = caching disabled).
	CacheHits      uint64 `json:"cache_hits"`
	CacheMisses    uint64 `json:"cache_misses"`
	CacheBytes     int64  `json:"cache_bytes"`
	CacheCapBytes  int64  `json:"cache_cap_bytes"`
	CachedSegments int    `json:"cached_segments"`
	// FamilyQuota is the per-family retention floor (0 = off); the
	// compaction counters are lifetime totals for the signature-aware
	// compactor.
	FamilyQuota       int `json:"family_quota,omitempty"`
	CompactionRuns    int `json:"compaction_runs,omitempty"`
	CompactedSegments int `json:"compacted_segments,omitempty"`
	CompactionDropped int `json:"compaction_dropped,omitempty"`
}

// Learning is the continuous-learning subsystem: an on-disk corpus of
// examples harvested from finished queries, a background retrainer, and a
// versioned selector registry with atomic hot-swap. Attach it to queries
// via MonitorOptions.Learning (which both feeds the harvester and serves
// from the current version) and to the HTTP daemon via NewServer, which
// then exposes /models, /models/retrain and /models/rollback.
type Learning struct {
	store     *feedback.ExampleStore
	harv      *feedback.Harvester
	reg       *feedback.Registry
	ret       *feedback.Retrainer
	drift     *feedback.DriftTracker
	canary    *feedback.Canary    // nil when canary confirmation is disabled
	compactor *feedback.Compactor // nil when the background compactor is off
	models    *feedback.ModelDir  // nil when persistence is disabled
}

// OpenLearning opens (or creates) the corpus directory and starts the
// background retrainer (unless disabled). Close releases both.
func OpenLearning(cfg LearningConfig) (*Learning, error) {
	if cfg.Dir == "" {
		return nil, errors.New("progressest: LearningConfig.Dir is required")
	}
	store, err := feedback.OpenStore(cfg.Dir, feedback.StoreOptions{
		MaxSegmentBytes: cfg.MaxSegmentBytes,
		MaxExamples:     cfg.MaxExamples,
		FamilyQuota:     cfg.FamilyQuota,
		CacheBytes:      cfg.CorpusCacheBytes,
		ScanWorkers:     cfg.ScanWorkers,
	})
	if err != nil {
		return nil, err
	}
	reg := feedback.NewRegistry()
	if cfg.SeedSelector != nil {
		reg.Publish(cfg.SeedSelector.inner, feedback.VersionMeta{
			TrainedAt: time.Now(),
			Source:    "seed",
		})
	}
	// Restore AFTER the seed publication: persisted versions are newer
	// evidence than a seed model, so they win the routing table.
	var models *feedback.ModelDir
	if !cfg.DisablePersist {
		models, err = feedback.OpenModelDir(filepath.Join(cfg.Dir, "models"))
		if err != nil {
			store.Close()
			return nil, err
		}
		if _, err := models.Restore(reg); err != nil {
			store.Close()
			return nil, err
		}
	}
	var seed []selection.Example
	if len(cfg.SeedExamples) > 0 {
		seed = append(seed, cfg.SeedExamples...)
	}
	poll := cfg.Poll
	if poll <= 0 && cfg.MinInterval > 0 && cfg.MinInterval < 5*time.Second {
		poll = cfg.MinInterval
	}
	drift := feedback.NewDriftTracker(feedback.DriftConfig{
		Window:     cfg.DriftWindow,
		MinSamples: cfg.DriftMinSamples,
		Ratio:      cfg.DriftRatio,
		AbsSlack:   cfg.DriftAbsSlack,
	})
	var canary *feedback.Canary
	if cfg.CanaryWindow > 0 {
		canary = feedback.NewCanary(feedback.CanaryConfig{
			Window: cfg.CanaryWindow,
			MaxAge: cfg.CanaryMaxAge,
		})
	}
	ret := feedback.NewRetrainer(store, reg, feedback.RetrainerConfig{
		Selection: selectionConfig(cfg.Selector),
		Seed:      seed,
		Policy: feedback.RetrainPolicy{
			MinNewExamples: cfg.MinNewExamples,
			MinInterval:    cfg.MinInterval,
			Poll:           poll,
		},
		Gate: feedback.QualityGate{
			Disabled:  cfg.DisableGate,
			Tolerance: cfg.GateTolerance,
		},
		FamilyModels:      cfg.FamilyModels,
		MinFamilyExamples: cfg.MinFamilyExamples,
		TrainWorkers:      cfg.TrainWorkers,
		Persist:           models,
		Drift:             drift,
		DriftRetrain:      !cfg.DisableDriftRetrain,
		Canary:            canary,
		DriftRejectLimit:  cfg.DriftRejectLimit,
	})
	var compactor *feedback.Compactor
	if !cfg.DisableBackground {
		ret.Start()
		if cfg.FamilyQuota > 0 && cfg.CompactInterval >= 0 {
			compactor = feedback.NewCompactor(store, cfg.CompactInterval)
			compactor.Start()
		}
	}
	return &Learning{
		store:     store,
		harv:      feedback.NewHarvester(store, cfg.MinObservations, drift, canary),
		reg:       reg,
		ret:       ret,
		drift:     drift,
		canary:    canary,
		compactor: compactor,
		models:    models,
	}, nil
}

// CorpusSize returns the number of examples currently retained on disk.
func (l *Learning) CorpusSize() int { return l.store.Len() }

// HarvestStats returns the harvesting counters.
func (l *Learning) HarvestStats() HarvestStats {
	return HarvestStats(l.harv.Stats())
}

// CorpusStats reports the corpus shape (segments, bytes, per-family
// example counts) and the decode cache's hit/miss counters. Cheap: it
// reads the in-memory segment indexes, never the disk.
func (l *Learning) CorpusStats() CorpusStats {
	return CorpusStats(l.store.Stats())
}

// Retrain synchronously trains new selector versions on the accumulated
// corpus — the global model, plus one per sufficiently represented family
// when FamilyModels is on — and hot-swaps in every version that passes
// the quality gate. Serving is never blocked: queries keep using the
// previous versions until the atomic swap. The returned version is the
// global one; check its Decision — a rejected version did NOT replace the
// serving model.
func (l *Learning) Retrain() (ModelVersion, error) {
	v, err := l.ret.Retrain("manual")
	if err != nil {
		return ModelVersion{}, err
	}
	return l.modelVersion(v), nil
}

// Rollback atomically reverts the global model to the previously
// published version. A rollback that applied but could not persist the
// routing table reports the failure via PersistError.
func (l *Learning) Rollback() (ModelVersion, error) {
	v, _, err := l.rollback("")
	return v, err
}

// RollbackFamily atomically reverts one family's model to its previously
// published version. A family serving from the global fallback (or with
// only one version) has nothing to roll back to.
func (l *Learning) RollbackFamily(family string) (ModelVersion, error) {
	v, _, err := l.rollback(family)
	return v, err
}

// rollback reverts one routing target. persistErr reports a rollback
// that APPLIED in memory but failed to rewrite the on-disk manifest —
// the caller must surface it (a restart would resume from the previously
// persisted routing table), distinctly from err, which means the
// rollback itself did not happen.
func (l *Learning) rollback(family string) (v ModelVersion, persistErr, err error) {
	// The version about to be rolled off: the drift tracker needs its id
	// as a drop floor — if it never finished a query, the tracker's own
	// high-water mark has not seen it, and its first straggler harvest
	// would otherwise masquerade as a fresh publish.
	rolledFrom := 0
	if from := l.reg.CurrentFor(family); from != nil && from.Meta.Family == family {
		rolledFrom = from.ID
	}
	rv, err := l.reg.Rollback(family)
	if err != nil {
		return ModelVersion{}, nil, err
	}
	// An operator moving off this model line moots any pending challenger
	// for the target — it was shadow-scoring against the rolled-off model.
	l.canary.Drop(family)
	// Re-key the target's drift window to what now serves it. The bound
	// version moved BACKWARDS, which harvest-driven re-keying alone
	// cannot express (a lower id normally means a late harvest to drop);
	// without this the window would silently discard every observation
	// about the rolled-back-to model. Rolling a family back past its last
	// version tombstones its window instead — its queries route to the
	// global target now.
	if sm := l.servedFor(family); sm != nil && sm.Target == family {
		l.drift.Rebind(family, *sm, rolledFrom)
	} else {
		l.drift.Rebind(family, feedback.ServedModel{Target: family}, rolledFrom)
	}
	if l.models != nil {
		// The routing table changed; refresh the persisted manifest so a
		// restart resumes from the rolled-back-to version. The rollback IS
		// applied even when the write fails — returning it as err would
		// read as "rollback failed" and bait a retry that walks back one
		// version further than intended — so a failure travels separately
		// as persistErr (and via PersistError / GET /models) until a later
		// successful Sync rewrites the manifest and repairs the staleness.
		persistErr = l.models.Sync(l.reg)
	}
	return l.modelVersion(rv), persistErr, nil
}

// PersistError returns the most recent failure to persist the serving
// routing table (nil once a later persist succeeds, which rewrites the
// whole manifest). While non-nil, a daemon restart would resume from the
// last successfully persisted models rather than the serving ones.
func (l *Learning) PersistError() error {
	if l.models == nil {
		return nil
	}
	return l.models.LastSyncError()
}

// Current returns the serving global version; ok is false before any
// version exists.
func (l *Learning) Current() (v ModelVersion, ok bool) {
	cur := l.reg.Current()
	if cur == nil {
		return ModelVersion{}, false
	}
	return l.modelVersion(cur), true
}

// FamilyVersions returns the per-family routing table: workload family →
// id of the family-trained version currently serving it. Families falling
// back to the global model do not appear.
func (l *Learning) FamilyVersions() map[string]int {
	out := make(map[string]int)
	for f, v := range l.reg.Routed() {
		if f != "" {
			out[f] = v.ID
		}
	}
	return out
}

// Versions returns the publication history, oldest first, with the
// serving version flagged.
func (l *Learning) Versions() []ModelVersion {
	vs := l.reg.Versions()
	out := make([]ModelVersion, len(vs))
	for i, v := range vs {
		out[i] = l.modelVersion(v)
	}
	return out
}

// LastTrainingError returns the most recent background training failure,
// or nil.
func (l *Learning) LastTrainingError() error { return l.ret.LastError() }

// DriftStatus returns the observed-vs-predicted standing of every routing
// target that served at least one harvested query, sorted by target
// (global first), with the latest retrain provenance for each attached.
func (l *Learning) DriftStatus() []DriftStatus {
	states := l.drift.Statuses()
	decisions := l.ret.Decisions()
	rejects := l.ret.DriftRejects()
	cfg := l.drift.Config()
	out := make([]DriftStatus, len(states))
	for i, st := range states {
		out[i] = DriftStatus{
			Family:       st.Target,
			Version:      st.Version,
			BaselineL1:   st.BaselineL1,
			BaselineN:    st.BaselineN,
			ObservedL1:   st.ObservedL1,
			ObservedP90:  st.ObservedP90,
			Samples:      st.Samples,
			Window:       cfg.Window,
			MinSamples:   cfg.MinSamples,
			Ratio:        cfg.Ratio,
			Drifted:      st.Drifted,
			Since:        st.Since,
			RejectStreak: rejects[st.Target],
		}
		// The ring is oldest-first; the last match is the target's most
		// recent decision.
		for _, d := range decisions {
			if d.Family == st.Target {
				out[i].LastTrigger = d.Trigger
				out[i].LastDecision = d.Decision
			}
		}
	}
	return out
}

// Canaries returns the challengers currently in champion/challenger
// confirmation, sorted by family (empty when canary serving is off or
// nothing is pending).
func (l *Learning) Canaries() []CanaryStatus {
	states := l.canary.States()
	out := make([]CanaryStatus, len(states))
	for i, st := range states {
		out[i] = CanaryStatus{
			Family:       st.Target,
			Source:       st.Source,
			Champion:     st.Champion,
			ProposedAt:   st.ProposedAt,
			ExpiresAt:    st.ExpiresAt,
			Samples:      st.Samples,
			Window:       st.Window,
			ChampionL1:   st.ChampionL1,
			ChallengerL1: st.ChallengerL1,
			HoldoutL1:    st.HoldoutL1,
		}
	}
	return out
}

// Decisions returns the retrainer's bounded decision history, oldest
// first — trigger provenance (size/age, drift, manual) per trained
// routing target, surviving the registry's version pruning.
func (l *Learning) Decisions() []RetrainDecision {
	ds := l.ret.Decisions()
	out := make([]RetrainDecision, len(ds))
	for i, d := range ds {
		out[i] = RetrainDecision{
			At:         d.At,
			Trigger:    d.Trigger,
			Family:     d.Family,
			Version:    d.Version,
			Decision:   d.Decision,
			HoldoutL1:  d.HoldoutL1,
			BaselineL1: d.BaselineL1,
			ObservedL1: d.ObservedL1,
		}
	}
	return out
}

// Close drains the retrainer goroutine (waiting out a training run in
// flight, however long it takes) and closes the corpus store. Queries
// still executing afterwards keep running; only their harvest appends
// are dropped (and counted in HarvestStats.Errors). Daemons with a
// shutdown deadline should prefer Shutdown.
func (l *Learning) Close() error {
	if l.compactor != nil {
		l.compactor.Stop()
	}
	l.ret.Stop()
	return l.store.Close()
}

// Shutdown is Close bounded by ctx: the corpus is synced to disk
// immediately, then the retrainer gets until the deadline to drain. A
// training run that exceeds it is abandoned — its would-be version dies
// with the process anyway, and the store tolerates being closed under it
// (Snapshot/Append return ErrClosed) — so a SIGTERM supervisor's kill
// grace period is honored even mid-training.
func (l *Learning) Shutdown(ctx context.Context) error {
	if err := l.store.Sync(); err != nil && !errors.Is(err, feedback.ErrClosed) {
		return err
	}
	done := make(chan struct{})
	go func() {
		if l.compactor != nil {
			l.compactor.Stop()
		}
		l.ret.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
	}
	return l.store.Close()
}

func (l *Learning) modelVersion(v *feedback.Version) ModelVersion {
	return ModelVersion{
		ID:         v.ID,
		TrainedAt:  v.Meta.TrainedAt,
		CorpusSize: v.Meta.CorpusSize,
		HoldoutL1:  v.Meta.HoldoutL1,
		HoldoutN:   v.Meta.HoldoutN,
		Source:     v.Meta.Source,
		Family:     v.Meta.Family,
		Decision:   v.Meta.Decision,
		BaselineL1: v.Meta.BaselineL1,
		Current:    l.reg.IsCurrent(v),
	}
}

// servedFor resolves the serving version for a new query of the given
// routing target ("" = the global model; a family name falls back to the
// global model when the family has no trained version), pinned into the
// ServedModel form the drift join consumes: selector, version id, the
// family the version was trained for ("" when the global model
// answered), and its holdout baseline. Nil before the first published
// version.
func (l *Learning) servedFor(family string) *feedback.ServedModel {
	v := l.reg.CurrentFor(family)
	if v == nil {
		return nil
	}
	return &feedback.ServedModel{
		Target:     v.Meta.Family,
		Version:    v.ID,
		Selector:   v.Selector,
		BaselineL1: v.Meta.HoldoutL1,
		BaselineN:  v.Meta.HoldoutN,
	}
}

// IsEmptyCorpus reports whether err means there was nothing to train on.
func IsEmptyCorpus(err error) bool { return errors.Is(err, feedback.ErrEmptyCorpus) }

// IsNoRollback reports whether err means no earlier version exists.
func IsNoRollback(err error) bool { return errors.Is(err, feedback.ErrNoRollback) }

// IsUnknownFamily reports whether err means the rollback named a routing
// target the registry has never dealt with — no serving version, no
// history, no fallback pin. Distinguishes a typo'd family name (not
// found) from a real family with nothing to roll back to (conflict).
func IsUnknownFamily(err error) bool { return errors.Is(err, feedback.ErrUnknownTarget) }

// selectionConfig translates the public SelectorConfig into the internal
// training configuration, applying the paper defaults.
func selectionConfig(cfg SelectorConfig) selection.Config {
	if len(cfg.Candidates) == 0 {
		cfg.Candidates = AllEstimators()
	}
	if cfg.Trees <= 0 {
		cfg.Trees = 200
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return selection.Config{
		Kinds:   cfg.Candidates,
		Dynamic: !cfg.StaticOnly,
		Mart:    mart.Options{Trees: cfg.Trees, Seed: cfg.Seed},
	}
}

// ExportExamples appends a batch of labelled examples (e.g. a synthetic
// batch Harvest) to an on-disk corpus directory in the store's segmented
// format — the same artifact cmd/trainsel and the live harvester share.
// Retention is disabled for the append: exporting to a corpus a daemon
// keeps at its retention cap must never delete the daemon's history (the
// owner re-applies its own bounds on its next open). The store is
// single-writer — do not export into a directory a RUNNING daemon is
// appending to (a concurrent rotation fails explicitly rather than
// clobbering, but the export will error); stop the daemon or export to a
// fresh directory instead. Read-only access (ImportExamples) is always
// safe.
func ExportExamples(dir string, examples []Example) error {
	store, err := feedback.OpenStore(dir, feedback.StoreOptions{MaxExamples: -1})
	if err != nil {
		return err
	}
	if _, err := store.AppendAll(examples); err != nil {
		store.Close()
		return err
	}
	return store.Close()
}

// ErrCorpusEmpty reports a well-formed corpus directory that holds zero
// examples (e.g. a daemon started with -learn that never finished a
// query). Callers with another example source can treat it as benign.
var ErrCorpusEmpty = errors.New("corpus holds no examples")

// ImportExamples reads every example retained in an on-disk corpus
// directory written by ExportExamples or a live Learning harvester. The
// read is strictly read-only — it neither creates the directory nor
// touches its segments, so it is safe on a corpus a running daemon owns.
func ImportExamples(dir string) ([]Example, error) {
	exs, err := feedback.ReadCorpus(dir)
	if err != nil {
		return nil, err
	}
	if len(exs) == 0 {
		return nil, fmt.Errorf("progressest: %w: %s", ErrCorpusEmpty, dir)
	}
	return exs, nil
}
