package progressest

import (
	"fmt"
	"time"

	"progressest/internal/exec"
	"progressest/internal/features"
	"progressest/internal/feedback"
	"progressest/internal/pipeline"
	"progressest/internal/plan"
	"progressest/internal/progress"
	"progressest/internal/selection"
)

// MonitorOptions configures live monitoring of one query.
type MonitorOptions struct {
	// Selector, when non-nil, picks the estimator per pipeline and revises
	// the choice as dynamic features accrue (re-selecting each time a
	// driver-input marker is crossed, up to the paper's 20% cutoff).
	Selector *Selector
	// Estimator is the fixed estimator used when Selector is nil
	// (default DNE).
	Estimator Estimator
	// UpdateEvery delivers a ProgressUpdate every n-th counter snapshot
	// (default 8). The final update on completion is always delivered.
	UpdateEvery int
	// Pace, when positive, sleeps this long after each delivered update.
	// The synthetic substrate executes in-memory queries in milliseconds;
	// pacing slows a monitored query to the human-observable speed of the
	// production queries progress estimation exists for (useful for demos
	// and load tests; zero disables).
	Pace time.Duration
	// Learning, when non-nil, closes the training loop around the query:
	// its finished trace is harvested into the on-disk corpus, and — when
	// Selector is nil — the pipeline estimators are picked by the current
	// hot-swapped selector version (Monitor.ModelVersion reports which).
	Learning *Learning
	// RouteByFamily routes the query to the selector version trained for
	// its workload family (Workload.QueryFamily) when Learning has
	// published one, falling back to the global model otherwise.
	// Monitor.ModelFamily reports which target served. Without Learning
	// the flag has no effect.
	RouteByFamily bool
	// Unbatched delivers counter snapshots to the estimator path one at a
	// time instead of batched per update tick. The batched path produces
	// bit-identical updates (asserted by the equivalence suite) with less
	// per-snapshot overhead; the flag exists for paired benchmarks and
	// equivalence tests.
	Unbatched bool
}

func (o MonitorOptions) withDefaults() MonitorOptions {
	if o.UpdateEvery <= 0 {
		o.UpdateEvery = 8
	}
	return o
}

// PipelineProgress is the live state of one pipeline inside a
// ProgressUpdate.
type PipelineProgress struct {
	// Pipeline is the pipeline index in the plan's decomposition.
	Pipeline int `json:"pipeline"`
	// Started and Done delimit the pipeline's activity.
	Started bool `json:"started"`
	Done    bool `json:"done"`
	// Estimator is the estimator currently chosen for this pipeline.
	Estimator Estimator `json:"-"`
	// EstimatorName is Estimator's name (for the JSON wire format).
	EstimatorName string `json:"estimator"`
	// Estimate is that estimator's current progress estimate in [0,1].
	Estimate float64 `json:"estimate"`
	// DriverFraction is the consumed fraction of the driver inputs.
	DriverFraction float64 `json:"driver_fraction"`
}

// ProgressUpdate is one live observation of a running query.
type ProgressUpdate struct {
	// Seq increases with every delivered update.
	Seq int `json:"seq"`
	// Time is the virtual clock of the underlying counter snapshot.
	Time float64 `json:"time"`
	// Query is the whole-query progress estimate: the eq. 5 weighted
	// combination of the per-pipeline estimates.
	Query float64 `json:"query"`
	// Pipelines is the per-pipeline state, indexed by pipeline.
	Pipelines []PipelineProgress `json:"pipelines"`
	// Done is true exactly once, on the final update.
	Done bool `json:"done"`
	// TrueProgress is the true (virtual-time) progress of the query: -1
	// while the query runs (the truth is unknowable before termination)
	// and 1 on the final update. Replay the returned QueryRun for the full
	// true series.
	TrueProgress float64 `json:"true_progress"`
}

// Monitor is a handle on a query executing on its own goroutine. Updates
// delivers live ProgressUpdates while the query runs; it is conflated (a
// slow consumer sees the freshest update, not a backlog) and closed after
// the final Done update. Wait blocks until execution finishes and returns
// the completed QueryRun for offline replay.
type Monitor struct {
	// Updates delivers live progress. The channel is closed when the query
	// completes; the last value delivered has Done == true.
	Updates <-chan ProgressUpdate

	version     int
	family      string
	modelFamily string
	shard       int
	class       string
	done        chan struct{}
	run         *QueryRun
	err         error
}

// Wait blocks until the query completes and returns its QueryRun.
func (m *Monitor) Wait() (*QueryRun, error) {
	<-m.done
	return m.run, m.err
}

// ModelVersion returns the id of the hot-swapped selector version that
// serves this query, or 0 when no Learning registry version applied (no
// learning configured, an explicit Selector, or no version published
// yet). The version is pinned at Start, so a swap mid-query never mixes
// models within one execution.
func (m *Monitor) ModelVersion() int { return m.version }

// Family returns the workload family of the monitored query (see
// Workload.QueryFamily) — the key per-family model routing dispatches on.
func (m *Monitor) Family() string { return m.family }

// ModelFamily returns the routing target of the selector version serving
// this query: the query's own family when a family-trained model serves
// it, "" when the global model (or no model at all) does.
func (m *Monitor) ModelFamily() string { return m.modelFamily }

// Shard returns the engine replica executing the query, or -1 when the
// query was started directly on a Workload rather than through an Engine.
func (m *Monitor) Shard() int { return m.shard }

// Class returns the admission class the query was admitted under — its
// workload family, suffixed "|client" for a client-tagged submission —
// or "" when the query was started directly on a Workload rather than
// through an Engine.
func (m *Monitor) Class() string { return m.class }

// reselectMarkers are the driver-input fractions at which the selector
// revises its choice — derived from the dynamic-feature markers so that
// re-selection always coincides with the crossings the feature vector
// encodes (selection stops refining after the last marker, 20%).
var reselectMarkers = func() []float64 {
	out := make([]float64, len(features.Markers))
	for i, x := range features.Markers {
		out[i] = float64(x) / 100
	}
	return out
}()

// monitorObserver adapts the exec event stream into conflated
// ProgressUpdates: it maintains the streaming OnlineView, re-selects
// estimators at marker crossings, and emits an update every n-th
// snapshot. It implements exec.BatchObserver, so with batched delivery
// the engine hands it whole segments of snapshots at once and the
// per-snapshot work between two update marks collapses into one
// OnlineView advance plus one selector sweep — producing exactly the
// updates per-snapshot delivery would.
type monitorObserver struct {
	view  *progress.OnlineView
	sel   *selection.Selector
	every int
	pace  time.Duration
	// harvest, when non-nil, subscribes the learning harvester to the
	// completion event: the finished trace is labelled and appended to
	// the corpus before the final update goes out.
	harvest exec.Observer

	choice    []progress.Kind
	nextMark  []int
	seq       int
	sinceSend int
	lastTime  float64
	ch        chan ProgressUpdate

	// deliver, when non-nil, replaces the channel send — a test hook that
	// captures the exact update stream without conflation.
	deliver func(ProgressUpdate)

	one       [1]exec.Snapshot   // scratch for unbatched delivery
	obsBefore []int              // per-pipeline observation count at segment start
	spare     []PipelineProgress // recycled update buffer (see send)
}

func (m *monitorObserver) OnPipelineStart(st exec.PipelineStart) {
	m.view.OnPipelineStart(st)
	if m.sel != nil {
		// Initial pick from the static prefix (the dynamic suffix still
		// holds its neutral defaults).
		m.choice[st.Pipe] = m.sel.PickOnline(m.view.Pipelines[st.Pipe])
	}
}

func (m *monitorObserver) OnPipelineEnd(pipe int, end float64) { m.view.OnPipelineEnd(pipe, end) }
func (m *monitorObserver) OnThin()                             { m.view.OnThin() }

func (m *monitorObserver) OnDone(tr *exec.Trace) {
	m.view.OnDone(tr)
	if m.harvest != nil {
		m.harvest.OnDone(tr)
	}
}

func (m *monitorObserver) OnSnapshot(s exec.Snapshot) {
	m.one[0] = s
	m.OnSnapshots(m.one[:1])
}

// OnSnapshots implements exec.BatchObserver: the batch is consumed in
// segments bounded by the UpdateEvery mark, each segment advancing the
// view in one call, re-picking estimators once, and emitting at most one
// update. With batch size 1 this degenerates to exactly the per-snapshot
// path, so both delivery modes share one code path.
func (m *monitorObserver) OnSnapshots(batch []exec.Snapshot) {
	for len(batch) > 0 {
		n := m.every - m.sinceSend
		if n > len(batch) {
			n = len(batch)
		}
		seg := batch[:n]
		batch = batch[n:]
		if m.sel != nil {
			for pi, p := range m.view.Pipelines {
				m.obsBefore[pi] = p.NumObs()
			}
		}
		m.view.OnSnapshots(seg)
		m.lastTime = seg[n-1].Time
		if m.sel != nil {
			m.repickCrossed()
		}
		m.sinceSend += n
		if m.sinceSend >= m.every {
			m.sinceSend = 0
			m.emit(false)
		}
	}
}

// repickCrossed advances each active pipeline's marker cursor over the
// observations its segment appended, re-picking the estimator when a
// marker was crossed. Scanning every new observation's recorded fraction
// (not just the segment's final one) keeps the marker bookkeeping — and
// therefore the picks, whose dynamic features depend only on the
// first-crossing ordinals and the immutable history at them — identical
// to per-snapshot delivery. Pipeline starts and thins always flush the
// pending batch, so the active set and the history are segment-stable.
func (m *monitorObserver) repickCrossed() {
	for pi, p := range m.view.Pipelines {
		if !p.Started || p.Ended {
			continue
		}
		crossed := false
		for i := m.obsBefore[pi]; i < p.NumObs(); i++ {
			f := p.DriverFraction(i)
			for m.nextMark[pi] < len(reselectMarkers) && f >= reselectMarkers[m.nextMark[pi]] {
				m.nextMark[pi]++
				crossed = true
			}
		}
		if crossed {
			m.choice[pi] = m.sel.PickOnline(p)
		}
	}
}

// emit assembles and delivers one update.
func (m *monitorObserver) emit(done bool) {
	u := m.update(done)
	if m.deliver != nil {
		m.deliver(u)
		return
	}
	m.send(u)
	if !done && m.pace > 0 {
		time.Sleep(m.pace)
	}
}

// update assembles the current ProgressUpdate.
func (m *monitorObserver) update(done bool) ProgressUpdate {
	u := ProgressUpdate{
		Seq:          m.seq,
		Time:         m.lastTime,
		Done:         done,
		TrueProgress: -1,
	}
	m.seq++
	if done {
		// Every pipeline has completed; the weighted combination only
		// misses 1.0 by floating-point dust.
		u.Query = 1
	} else {
		u.Query = m.view.QueryEstimate(func(p int) progress.Kind { return m.choice[p] })
	}
	buf := m.spare
	m.spare = nil
	if cap(buf) < len(m.view.Pipelines) {
		buf = make([]PipelineProgress, 0, len(m.view.Pipelines))
	} else {
		buf = buf[:0]
	}
	for pi, p := range m.view.Pipelines {
		pp := PipelineProgress{
			Pipeline:      pi,
			Started:       p.Started,
			Done:          p.Ended || (done && !p.Started),
			Estimator:     m.choice[pi],
			EstimatorName: m.choice[pi].String(),
		}
		if p.Started && p.NumObs() > 0 {
			pp.Estimate = p.Estimate(m.choice[pi])
			pp.DriverFraction = p.CurrentDriverFraction()
		}
		if pp.Done {
			pp.Estimate = 1
		}
		buf = append(buf, pp)
	}
	u.Pipelines = buf
	if done {
		u.TrueProgress = 1
	}
	return u
}

// send delivers conflated: if the consumer has not drained the previous
// update, it is replaced by the fresh one. This goroutine is the only
// sender, so after the drain the buffered send always succeeds. A drained
// stale update was never received by anyone, so its Pipelines buffer is
// exclusively ours again and backs the next assembly — at steady state
// with a slow (or absent) consumer, updates allocate nothing.
func (m *monitorObserver) send(u ProgressUpdate) {
	select {
	case stale := <-m.ch:
		m.spare = stale.Pipelines
	default:
	}
	m.ch <- u
}

// newIngestMonitor prepares the live-monitor machinery for an
// externally executed query — a counter-ingestion session. Selector
// resolution, the streaming OnlineView and the harvest subscription are
// wired exactly as Start wires them, but no executor goroutine runs:
// the session delivers the exec.Observer events itself, synthesized
// from the ingested counter stream by an ingest.Runner, so the
// estimates are bit-identical to an in-process run observing the same
// counters. The caller completes the monitor with finishIngest (or
// abortIngest) once the stream ends.
func newIngestMonitor(pl *plan.Plan, pipes *pipeline.Decomposition, workloadName, family string, opts MonitorOptions) (*Monitor, *monitorObserver, error) {
	if opts.Estimator < 0 || int(opts.Estimator) >= int(progress.NumKinds) {
		return nil, nil, fmt.Errorf("progressest: estimator %v is not computable online", opts.Estimator)
	}
	var sel *selection.Selector
	var served *feedback.ServedModel
	version := 0
	modelFamily := ""
	if opts.Selector != nil {
		sel = opts.Selector.inner
	} else if opts.Learning != nil {
		target := ""
		if opts.RouteByFamily {
			target = family
		}
		if served = opts.Learning.servedFor(target); served != nil {
			sel = served.Selector
			version = served.Version
			modelFamily = served.Target
		}
	}
	if sel != nil {
		for _, k := range sel.Kinds {
			if k < 0 || int(k) >= int(progress.NumKinds) {
				return nil, nil, fmt.Errorf("progressest: selector candidate %v is not computable online", k)
			}
		}
	}
	opts = opts.withDefaults()
	view := progress.NewOnlineView(pl, pipes)
	view.Reserve = exec.DefaultTargetObservations + 1
	obs := &monitorObserver{
		view:      view,
		every:     opts.UpdateEvery,
		choice:    make([]progress.Kind, len(pipes.Pipelines)),
		nextMark:  make([]int, len(pipes.Pipelines)),
		obsBefore: make([]int, len(pipes.Pipelines)),
		ch:        make(chan ProgressUpdate, 1),
	}
	obs.sel = sel
	if opts.Learning != nil {
		// queryIndex -1: the query is not one of the bundled workload's —
		// external sessions harvest under their own workload and family
		// tags, joining drift, retraining and canary serving exactly as
		// native queries do.
		obs.harvest = opts.Learning.harv.Observer(workloadName, family, -1, served)
	}
	for pi := range obs.choice {
		obs.choice[pi] = opts.Estimator
	}
	m := &Monitor{
		Updates:     obs.ch,
		version:     version,
		family:      family,
		modelFamily: modelFamily,
		shard:       -1,
		done:        make(chan struct{}),
	}
	return m, obs, nil
}

// finishIngest publishes the completed externally-executed run behind
// the monitor: the final Done update goes out, the update stream closes
// and Wait unblocks with the QueryRun over the synthesized trace. The
// observer must already have seen the full event stream, OnDone
// included.
func (m *Monitor) finishIngest(obs *monitorObserver, tr *exec.Trace) {
	run := &QueryRun{trace: tr}
	for p := range tr.Pipes.Pipelines {
		run.views = append(run.views, progress.NewPipelineView(tr, p))
	}
	m.run = run
	obs.emit(true)
	close(obs.ch)
	close(m.done)
}

// abortIngest ends an ingest monitor without a completed run (the
// session was aborted or expired): the update stream closes with no
// final Done update and Wait unblocks with err.
func (m *Monitor) abortIngest(obs *monitorObserver, err error) {
	m.err = err
	close(obs.ch)
	close(m.done)
}

// Start plans query i and executes it on its own goroutine, streaming
// live ProgressUpdates through the returned Monitor while the query runs.
func (w *Workload) Start(i int, opts MonitorOptions) (*Monitor, error) {
	if i < 0 || i >= len(w.inner.Queries) {
		return nil, fmt.Errorf("progressest: query index %d out of range [0,%d)", i, len(w.inner.Queries))
	}
	if opts.Estimator < 0 || int(opts.Estimator) >= int(progress.NumKinds) {
		// Oracle models need the finished trace; they cannot run online.
		return nil, fmt.Errorf("progressest: estimator %v is not computable online", opts.Estimator)
	}
	// Resolve the selector: an explicit one wins; otherwise the query is
	// pinned to the learning registry's current version for its lifetime —
	// the version routed for the query's family when RouteByFamily is on,
	// else the global one.
	family := w.inner.QueryFamily(i)
	var sel *selection.Selector
	var served *feedback.ServedModel
	version := 0
	modelFamily := ""
	if opts.Selector != nil {
		sel = opts.Selector.inner
	} else if opts.Learning != nil {
		target := ""
		if opts.RouteByFamily {
			target = family
		}
		if served = opts.Learning.servedFor(target); served != nil {
			sel = served.Selector
			version = served.Version
			modelFamily = served.Target
		}
	}
	if sel != nil {
		for _, k := range sel.Kinds {
			if k < 0 || int(k) >= int(progress.NumKinds) {
				return nil, fmt.Errorf("progressest: selector candidate %v is not computable online", k)
			}
		}
	}
	opts = opts.withDefaults()
	pq, err := w.planned(i)
	if err != nil {
		return nil, err
	}
	pl, pipes := pq.plan, pq.pipes
	view := progress.NewOnlineView(pl, pipes)
	// Pre-size the per-pipeline series for the engine's observation
	// target, so feeding snapshots stays allocation-free at steady state.
	view.Reserve = exec.DefaultTargetObservations + 1
	obs := &monitorObserver{
		view:      view,
		every:     opts.UpdateEvery,
		pace:      opts.Pace,
		choice:    make([]progress.Kind, len(pipes.Pipelines)),
		nextMark:  make([]int, len(pipes.Pipelines)),
		obsBefore: make([]int, len(pipes.Pipelines)),
		ch:        make(chan ProgressUpdate, 1),
	}
	obs.sel = sel
	if opts.Learning != nil {
		// The pinned served model rides along so the harvester can join
		// the query's eventual estimator errors back to the version (and
		// routing target) that served it — the drift monitor's signal.
		obs.harvest = opts.Learning.harv.Observer(w.inner.Spec.Name, family, i, served)
	}
	for pi := range obs.choice {
		obs.choice[pi] = opts.Estimator
	}
	m := &Monitor{
		Updates:     obs.ch,
		version:     version,
		family:      family,
		modelFamily: modelFamily,
		shard:       -1,
		done:        make(chan struct{}),
	}
	execOpts := exec.Options{Observer: obs}
	if !opts.Unbatched {
		// One snapshot batch per update tick: the engine conflates
		// delivery to the granularity updates are emitted at anyway.
		execOpts.SnapshotBatch = opts.UpdateEvery
	}
	go func() {
		defer close(m.done)
		tr := exec.RunDecomposed(w.inner.DB, pl, pipes, execOpts)
		run := &QueryRun{trace: tr}
		for p := range tr.Pipes.Pipelines {
			run.views = append(run.views, progress.NewPipelineView(tr, p))
		}
		m.run = run
		// The final update replaces any stale value, then the stream ends.
		obs.emit(true)
		close(obs.ch)
	}()
	return m, nil
}
