package progressest

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"progressest/internal/exec"
	"progressest/internal/ingest"
)

// sessionWorkload opens a small workload and records one finished native
// trace to stream through the ingestion surface.
func sessionWorkload(t *testing.T) (*Workload, *exec.Trace) {
	t.Helper()
	w, err := Open(Config{Dataset: TPCH, Queries: 4, Scale: 0.08, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	run, err := w.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	return w, run.trace
}

func marshalJSON(t *testing.T, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// doRaw issues a request and returns the raw response (the caller reads
// headers; the body is closed with the response decoded into out if
// non-nil).
func doRaw(t *testing.T, method, url, body string, out any) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, url, err)
		}
	}
	return resp
}

// openSession opens a session over HTTP for the trace's shape and
// returns its id.
func openSession(t *testing.T, base string, tr *exec.Trace, workload, family string) string {
	t.Helper()
	spec := ingest.SpecFromTrace(tr, workload, family)
	var info sessionInfo
	if code := doJSON(t, http.MethodPost, base+"/sessions", marshalJSON(t, spec), &info); code != http.StatusCreated {
		t.Fatalf("open session: status %d", code)
	}
	if info.State != "open" || info.Family != family {
		t.Fatalf("opened session: %+v", info)
	}
	return info.ID
}

// streamSession streams the trace's recorded observation batches into
// the session, asserting the final batch completes it.
func streamSession(t *testing.T, base, id string, tr *exec.Trace, snapsPerBatch int) {
	t.Helper()
	for _, b := range ingest.RecordBatches(tr, snapsPerBatch) {
		var resp observeResponse
		if code := doJSON(t, http.MethodPost, base+"/sessions/"+id+"/observations", marshalJSON(t, b), &resp); code != http.StatusOK {
			t.Fatalf("observations: status %d", code)
		}
		if b.Done && resp.State != "completed" {
			t.Fatalf("final batch left session %q", resp.State)
		}
	}
}

// TestSessionHTTPLifecycle drives the full external-session surface over
// HTTP: open, stream, live progress, completion, stats accounting, and
// the error taxonomy for malformed and mis-ordered streams.
func TestSessionHTTPLifecycle(t *testing.T) {
	w, tr := sessionWorkload(t)
	server := NewServer(w, MonitorOptions{UpdateEvery: 4})
	defer server.Close()
	srv := httptest.NewServer(server)
	defer srv.Close()

	// Malformed opens reject up front.
	if code := doJSON(t, http.MethodPost, srv.URL+"/sessions", `{"family":"f","nodes":[]}`, nil); code != http.StatusBadRequest {
		t.Fatalf("empty plan: status %d", code)
	}
	if code := doJSON(t, http.MethodPost, srv.URL+"/sessions", marshalJSON(t, ingest.SpecFromTrace(tr, "ext", "")), nil); code != http.StatusBadRequest {
		t.Fatalf("missing family: status %d", code)
	}

	id := openSession(t, srv.URL, tr, "ext-engine", "ext-fam")

	// A mid-stream regression and an out-of-order snapshot reject with
	// 409 and leave the session open at its last consistent prefix.
	batches := ingest.RecordBatches(tr, 8)
	if code := doJSON(t, http.MethodPost, srv.URL+"/sessions/"+id+"/observations", marshalJSON(t, batches[0]), nil); code != http.StatusOK {
		t.Fatalf("first batch: status %d", code)
	}
	regress := ingest.Batch{Events: []ingest.Event{{Snapshot: &ingest.SnapshotEvent{
		Time: tr.TotalTime + 1, Deltas: []ingest.Delta{{Node: 0, K: -1}},
	}}}}
	if code := doJSON(t, http.MethodPost, srv.URL+"/sessions/"+id+"/observations", marshalJSON(t, regress), nil); code != http.StatusConflict {
		t.Fatalf("counter regression: status %d", code)
	}
	stale := ingest.Batch{Events: []ingest.Event{{Snapshot: &ingest.SnapshotEvent{
		Time: -1, Deltas: []ingest.Delta{{Node: 0, K: 1}},
	}}}}
	if code := doJSON(t, http.MethodPost, srv.URL+"/sessions/"+id+"/observations", marshalJSON(t, stale), nil); code != http.StatusConflict {
		t.Fatalf("out-of-order snapshot: status %d", code)
	}
	if code := doJSON(t, http.MethodPost, srv.URL+"/sessions/"+id+"/observations", `{"events":[],"bogus":1}`, nil); code != http.StatusBadRequest {
		t.Fatalf("unknown wire field: status %d", code)
	}

	// Live progress is readable mid-stream.
	var prog sessionProgressResponse
	if code := doJSON(t, http.MethodGet, srv.URL+"/sessions/"+id+"/progress", "", &prog); code != http.StatusOK {
		t.Fatalf("progress: status %d", code)
	}
	if prog.State != "open" || prog.Done {
		t.Fatalf("mid-stream progress: %+v", prog)
	}
	if prog.Update == nil || prog.Update.Query <= 0 || prog.Update.Query >= 1 {
		t.Fatalf("mid-stream estimate missing or out of range: %+v", prog.Update)
	}

	// The rest of the stream completes the session.
	for _, b := range batches[1:] {
		if code := doJSON(t, http.MethodPost, srv.URL+"/sessions/"+id+"/observations", marshalJSON(t, b), nil); code != http.StatusOK {
			t.Fatalf("batch: status %d", code)
		}
	}
	if code := doJSON(t, http.MethodGet, srv.URL+"/sessions/"+id+"/progress", "", &prog); code != http.StatusOK {
		t.Fatalf("progress: status %d", code)
	}
	if !prog.Done || prog.State != "completed" || prog.Update == nil || !prog.Update.Done || prog.Update.Query != 1 {
		t.Fatalf("completed progress: %+v", prog)
	}

	// Post-completion observations conflict; deletion is idempotent.
	if code := doJSON(t, http.MethodPost, srv.URL+"/sessions/"+id+"/observations", `{"done":true}`, nil); code != http.StatusConflict {
		t.Fatalf("post-completion batch: status %d", code)
	}
	var del map[string]string
	if code := doJSON(t, http.MethodDelete, srv.URL+"/sessions/"+id, "", &del); code != http.StatusOK || del["state"] != "completed" {
		t.Fatalf("delete completed session: %d %v", code, del)
	}
	if code := doJSON(t, http.MethodGet, srv.URL+"/sessions/nope/progress", "", nil); code != http.StatusNotFound {
		t.Fatal("unknown session did not 404")
	}

	// The listing and the engine stats account for the session.
	var infos []sessionInfo
	if code := doJSON(t, http.MethodGet, srv.URL+"/sessions", "", &infos); code != http.StatusOK || len(infos) != 1 {
		t.Fatalf("session list: %d entries", len(infos))
	}
	var st EngineStats
	if code := doJSON(t, http.MethodGet, srv.URL+"/engine/stats", "", &st); code != http.StatusOK {
		t.Fatal("engine stats failed")
	}
	if st.Ingest == nil {
		t.Fatal("engine stats carry no ingest section")
	}
	if st.Ingest.Opened != 1 || st.Ingest.Completed != 1 || st.Ingest.OpenSessions != 0 ||
		st.Ingest.RejectedBatches != 2 || st.Ingest.Observations != int64(len(tr.Snapshots)) {
		t.Fatalf("ingest stats: %+v", st.Ingest)
	}
	// The session held an engine slot and released it on completion.
	if st.Admitted != 1 {
		t.Fatalf("session was not admitted through the gate: %+v", st)
	}
}

// TestSessionTTLExpiry covers idle-session GC at the manager level: an
// open session idle past the TTL expires on sweep, releases its
// admission slot, and refuses further observations.
func TestSessionTTLExpiry(t *testing.T) {
	w, tr := sessionWorkload(t)
	eng := NewEngine(w, EngineConfig{}, MonitorOptions{UpdateEvery: 4})
	sm := newSessionManager(eng, SessionConfig{TTL: 50 * time.Millisecond})
	defer sm.stop()

	spec := ingest.SpecFromTrace(tr, "ext", "fam")
	model, err := ingest.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sm.open(context.Background(), spec, model)
	if err != nil {
		t.Fatal(err)
	}
	if n := sm.sweep(time.Now()); n != 0 {
		t.Fatalf("fresh session swept: %d", n)
	}
	if n := sm.sweep(time.Now().Add(time.Minute)); n != 1 {
		t.Fatalf("idle session not swept: %d", n)
	}
	if got := sm.stats(); got.Expired != 1 || got.OpenSessions != 0 {
		t.Fatalf("stats after expiry: %+v", got)
	}
	if _, err := s.mon.Wait(); !errors.Is(err, errSessionExpired) {
		t.Fatalf("Wait after expiry: %v", err)
	}
	if _, _, err := sm.apply(s, &ingest.Batch{Done: true}); !errors.Is(err, ingest.ErrCompleted) {
		t.Fatalf("apply after expiry: %v", err)
	}
	// The admission slot came back: the gate reports no live work.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if st := eng.Stats(); st.Shards[0].Live == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("expired session never released its admission slot")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSessionTTLJanitorHTTP proves the background janitor expires an
// idle session end to end: no sweep calls, just time passing.
func TestSessionTTLJanitorHTTP(t *testing.T) {
	w, tr := sessionWorkload(t)
	server := NewServer(w, MonitorOptions{UpdateEvery: 4})
	server.SetSessionConfig(SessionConfig{TTL: 30 * time.Millisecond})
	defer server.Close()
	srv := httptest.NewServer(server)
	defer srv.Close()

	id := openSession(t, srv.URL, tr, "ext", "fam")
	deadline := time.Now().Add(5 * time.Second)
	for {
		var prog sessionProgressResponse
		doJSON(t, http.MethodGet, srv.URL+"/sessions/"+id+"/progress", "", &prog)
		if prog.State == "expired" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("janitor never expired the idle session (state %q)", prog.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSessionIngestHarvestRetrain is the learning-loop e2e for external
// sessions: a completed ingested session harvests into the corpus under
// its own family tag (visible in GET /models), and a retrain fits a
// family model for it.
func TestSessionIngestHarvestRetrain(t *testing.T) {
	w, tr := sessionWorkload(t)
	lrn, err := OpenLearning(LearningConfig{
		Dir:               t.TempDir(),
		Selector:          SelectorConfig{Trees: 10},
		DisableBackground: true,
		DisableGate:       true,
		FamilyModels:      true,
		MinFamilyExamples: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lrn.Close()
	server := NewServer(w, MonitorOptions{UpdateEvery: 4, Learning: lrn})
	defer server.Close()
	srv := httptest.NewServer(server)
	defer srv.Close()

	const family = "external-x"
	id := openSession(t, srv.URL, tr, "ext-engine", family)
	streamSession(t, srv.URL, id, tr, 16)

	// The completed session's examples landed under its family tag...
	if got := lrn.CorpusStats().Families[family]; got == 0 {
		t.Fatalf("corpus has no %q examples: %+v", family, lrn.CorpusStats().Families)
	}
	// ...visibly in GET /models...
	var models modelsResponse
	if code := doJSON(t, http.MethodGet, srv.URL+"/models", "", &models); code != http.StatusOK {
		t.Fatal("GET /models failed")
	}
	if models.Corpus.Families[family] == 0 {
		t.Fatalf("GET /models corpus families: %+v", models.Corpus.Families)
	}
	// ...and a retrain fits a model for the external family.
	if code := doJSON(t, http.MethodPost, srv.URL+"/models/retrain", "", nil); code != http.StatusOK {
		t.Fatal("retrain failed")
	}
	if _, ok := lrn.FamilyVersions()[family]; !ok {
		t.Fatalf("no family model for %q after retrain: %v", family, lrn.FamilyVersions())
	}
}

// TestDrainingRetryAfter is the satellite regression test: 503 draining
// rejections — native submissions and session opens alike — carry the
// fixed Retry-After so well-behaved clients back off a shutting-down
// node.
func TestDrainingRetryAfter(t *testing.T) {
	w, tr := sessionWorkload(t)
	server := NewServer(w, MonitorOptions{UpdateEvery: 4})
	defer server.Close()
	srv := httptest.NewServer(server)
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := server.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	var reject map[string]string
	resp := doRaw(t, http.MethodPost, srv.URL+"/queries", `{"query":0}`, &reject)
	if resp.StatusCode != http.StatusServiceUnavailable || reject["reason"] != "draining" {
		t.Fatalf("draining submit: status %d reason %q", resp.StatusCode, reject["reason"])
	}
	if got := resp.Header.Get("Retry-After"); got != "5" {
		t.Fatalf("draining 503 Retry-After = %q, want \"5\"", got)
	}
	resp = doRaw(t, http.MethodPost, srv.URL+"/sessions", marshalJSON(t, ingest.SpecFromTrace(tr, "ext", "fam")), &reject)
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") != "5" {
		t.Fatalf("draining session open: status %d Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
}

// TestRollbackSurfacesPersistError is the satellite regression test for
// the rollback path: when the rolled-back routing table cannot be
// persisted, the rollback response says so instead of silently
// reporting success, and GET /models carries the same standing error.
func TestRollbackSurfacesPersistError(t *testing.T) {
	w := learningWorkload(t)
	dir := t.TempDir()
	lrn, err := OpenLearning(LearningConfig{
		Dir:               dir,
		Selector:          SelectorConfig{Trees: 10},
		DisableBackground: true,
		DisableGate:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lrn.Close()
	for i := 0; i < 3; i++ {
		m, err := w.Start(i, MonitorOptions{UpdateEvery: 4, Learning: lrn})
		if err != nil {
			t.Fatal(err)
		}
		for range m.Updates {
		}
		if _, err := m.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, err := lrn.Retrain(); err != nil {
			t.Fatal(err)
		}
	}

	// Break persistence: the models directory becomes a regular file, so
	// the manifest rewrite fails with ENOTDIR (root ignores file modes,
	// so chmod-based sabotage would not hold).
	modelsDir := filepath.Join(dir, "models")
	if err := os.RemoveAll(modelsDir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(modelsDir, []byte("not a dir"), 0o644); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(NewServer(w, MonitorOptions{UpdateEvery: 4, Learning: lrn}))
	defer srv.Close()
	var resp rollbackResponse
	if code := doJSON(t, http.MethodPost, srv.URL+"/models/rollback", "", &resp); code != http.StatusOK {
		t.Fatalf("rollback: status %d", code)
	}
	if resp.ID == 0 {
		t.Fatalf("rollback did not report the restored version: %+v", resp)
	}
	if resp.PersistError == "" {
		t.Fatal("rollback response hides the persistence failure")
	}
	var models modelsResponse
	if code := doJSON(t, http.MethodGet, srv.URL+"/models", "", &models); code != http.StatusOK {
		t.Fatal("GET /models failed")
	}
	if models.PersistError == "" {
		t.Fatal("GET /models hides the standing persistence failure")
	}
	if models.Current != resp.ID {
		t.Fatalf("rollback did not apply in memory: serving v%d, rollback said v%d", models.Current, resp.ID)
	}
}

// TestSessionLimit bounds concurrently open sessions: the opener beyond
// MaxSessions is rejected, and closing a session frees the slot.
func TestSessionLimit(t *testing.T) {
	w, tr := sessionWorkload(t)
	eng := NewEngine(w, EngineConfig{MaxLivePerShard: 8}, MonitorOptions{UpdateEvery: 4})
	sm := newSessionManager(eng, SessionConfig{MaxSessions: 2})
	defer sm.stop()
	spec := ingest.SpecFromTrace(tr, "ext", "fam")
	model, err := ingest.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	var open []*ingestSession
	for i := 0; i < 2; i++ {
		s, err := sm.open(context.Background(), spec, model)
		if err != nil {
			t.Fatal(err)
		}
		open = append(open, s)
	}
	if _, err := sm.open(context.Background(), spec, model); !errors.Is(err, errSessionLimit) {
		t.Fatalf("third open: %v", err)
	}
	sm.abort(open[0])
	if _, err := sm.open(context.Background(), spec, model); err != nil {
		t.Fatalf("open after abort: %v", err)
	}
}
