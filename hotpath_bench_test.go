package progressest

import (
	"testing"

	"progressest/internal/exec"
)

// snapshotCycle is the steady-state replay harness behind the paired
// hot-path benchmarks and the zero-alloc assertions: a warm
// monitorObserver plus the recorded snapshots of one real execution, fed
// in UpdateEvery-sized ticks that wrap around the recording. A synthetic
// thin keeps the view's storage inside its reservation, exactly as the
// engine's MaxObservations bound does in a long-running query — so each
// tick is one Start→Update→Done-cycle slice at steady state.
type snapshotCycle struct {
	obs      *monitorObserver
	snaps    []exec.Snapshot
	every    int
	pos      int
	retained int // mirrors the view's retained snapshot count
	batched  bool
}

// thinAt bounds the retained history just under the monitor's storage
// reservation (exec.DefaultTargetObservations+1), so steady state never
// grows the series.
const thinAt = 384

func newSnapshotCycle(t testing.TB, batched bool) *snapshotCycle {
	t.Helper()
	w, err := Open(Config{Dataset: TPCH, Queries: 2, Scale: 0.08, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	pq, err := w.planned(0)
	if err != nil {
		t.Fatal(err)
	}
	tr := exec.RunDecomposed(w.inner.DB, pq.plan, pq.pipes, exec.Options{})
	const every = 8
	if len(tr.Snapshots) < 4*every {
		t.Fatalf("recorded trace too short for cycling: %d snapshots", len(tr.Snapshots))
	}
	obs, _ := newTestObserver(t, w, 0, every)
	// Replay the pipeline starts so every pipeline that ran is live.
	for pi := range tr.Pipes.Pipelines {
		if tr.PipeSpans[pi].Start < 0 {
			continue
		}
		totals := make(map[int]int64)
		for _, d := range tr.Pipes.Pipelines[pi].Drivers {
			totals[d] = tr.DriverTotal[d]
		}
		obs.OnPipelineStart(exec.PipelineStart{
			Pipe: pi, Time: tr.PipeSpans[pi].Start,
			DriverTotalsKnown: tr.DriverTotalsKnown[pi], DriverTotals: totals,
		})
	}
	c := &snapshotCycle{obs: obs, snaps: tr.Snapshots, every: every, batched: batched}
	// Warm to steady state: past the first updates (whose buffers enter
	// the conflation recycle) and through several thins, after which every
	// buffer in the path has reached its final capacity.
	for i := 0; i < 4*thinAt/every; i++ {
		c.tick()
	}
	return c
}

// tick feeds one UpdateEvery-sized segment of snapshots — producing
// exactly one conflated ProgressUpdate — and thins when the retained
// history reaches the bound.
func (c *snapshotCycle) tick() {
	if c.pos+c.every > len(c.snaps) {
		c.pos = 0
	}
	seg := c.snaps[c.pos : c.pos+c.every]
	c.pos += c.every
	if c.batched {
		c.obs.OnSnapshots(seg)
	} else {
		for i := range seg {
			c.obs.OnSnapshot(seg[i])
		}
	}
	c.retained += c.every
	if c.retained >= thinAt {
		c.obs.OnThin()
		c.retained /= 2
	}
}

// cycleModes are the paired delivery modes under comparison.
var cycleModes = []struct {
	name    string
	batched bool
}{
	{"batched", true},
	{"unbatched", false},
}

// BenchmarkSnapshotUpdateCycle is the paired hot-path benchmark: one
// update tick (UpdateEvery snapshots fed, estimates advanced, one
// conflated ProgressUpdate assembled and sent) at steady state, batched
// vs per-snapshot delivery. CI asserts 0 allocs/op on both modes.
func BenchmarkSnapshotUpdateCycle(b *testing.B) {
	for _, mode := range cycleModes {
		b.Run(mode.name, func(b *testing.B) {
			c := newSnapshotCycle(b, mode.batched)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.tick()
			}
		})
	}
}

// BenchmarkMonitorStartToDone is the end-to-end pair: a full monitored
// query — Start, stream every update, Wait — in both delivery modes.
// Execution itself dominates; the delta is the observation path.
func BenchmarkMonitorStartToDone(b *testing.B) {
	w, err := Open(Config{Dataset: TPCH, Queries: 2, Scale: 0.08, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := w.planned(0); err != nil { // warm the plan cache
		b.Fatal(err)
	}
	for _, mode := range cycleModes {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m, err := w.Start(0, MonitorOptions{Unbatched: !mode.batched})
				if err != nil {
					b.Fatal(err)
				}
				for range m.Updates {
				}
				if _, err := m.Wait(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
