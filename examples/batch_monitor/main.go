// Batch monitor: one progress bar for a whole batch of reports. Executes
// several decision-support queries back to back and shows the combined
// batch progress under different estimators — the multi-query scenario the
// paper lists as an important extension.
package main

import (
	"fmt"
	"log"
	"strings"

	"progressest"
)

func main() {
	w, err := progressest.Open(progressest.Config{
		Dataset: progressest.TPCDS,
		Queries: 12,
		Scale:   0.15,
		Design:  progressest.PartiallyTuned,
		Seed:    8,
	})
	if err != nil {
		log.Fatal(err)
	}

	batch := []int{1, 4, 7, 9}
	fmt.Printf("batch of %d reports:\n", len(batch))
	for _, q := range batch {
		fmt.Printf("  - %s\n", w.QueryText(q))
	}

	run, err := w.RunBatch(batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nestimated work shares:")
	for i := range batch {
		fmt.Printf("  query %d: %5.1f%%\n", batch[i], 100*run.QueryWeight(i))
	}

	est, truth := run.Progress(progressest.TGNINT)
	fmt.Println("\nbatch progress (TGNINT vs true):")
	for step := 0; step <= 12; step++ {
		i := step * (len(est) - 1) / 12
		n := int(est[i] * 32)
		fmt.Printf("  [%s%s] %5.1f%%  (true %5.1f%%)\n",
			strings.Repeat("=", n), strings.Repeat(" ", 32-n), 100*est[i], 100*truth[i])
	}

	fmt.Println("\nbatch-level L1 error per estimator:")
	for _, e := range progressest.AllEstimators() {
		l1, _ := run.Errors(e)
		fmt.Printf("  %-10s %.4f\n", e, l1)
	}
}
