// Live monitor: a DBA-console-style progress bar fed by the progressd
// daemon. The example trains a selector on the workload's own history
// (harvested in parallel), starts the daemon's HTTP server in-process,
// submits a query over HTTP, and polls its live progress — what a
// monitoring dashboard pointed at progressd would display.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"progressest"
)

func bar(frac float64, width int) string {
	n := int(frac * float64(width))
	if n > width {
		n = width
	}
	return "[" + strings.Repeat("=", n) + strings.Repeat(" ", width-n) + "]"
}

func main() {
	w, err := progressest.Open(progressest.Config{
		Dataset: progressest.Real1,
		Queries: 30,
		Scale:   0.25,
		Zipf:    1,
		Design:  progressest.PartiallyTuned,
		Seed:    11,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Train a selector on this system's own history; the harvest fans the
	// queries across all CPUs.
	examples, err := w.HarvestParallel(0)
	if err != nil {
		log.Fatal(err)
	}
	sel, err := progressest.TrainSelector(examples, progressest.SelectorConfig{Trees: 100})
	if err != nil {
		log.Fatal(err)
	}

	// Start the daemon in-process on a loopback port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: progressest.NewServer(w, progressest.MonitorOptions{
		Selector:    sel,
		UpdateEvery: 8,
		// Pace execution so the in-memory query runs at the observable
		// speed of the production queries a progress bar exists for.
		Pace: 5 * time.Millisecond,
	})}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	const queryIdx = 27
	fmt.Println("monitoring:", w.QueryText(queryIdx))

	body, _ := json.Marshal(map[string]int{"query": queryIdx})
	resp, err := http.Post(base+"/queries", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(resp.Body)
		log.Fatalf("submit failed: %s: %s", resp.Status, msg)
	}
	var info struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("submitted as %s via POST %s/queries\n\n", info.ID, base)

	type progressResp struct {
		Done   bool                        `json:"done"`
		Update *progressest.ProgressUpdate `json:"update"`
	}
	var last, lastLive *progressest.ProgressUpdate
	for {
		resp, err := http.Get(base + "/queries/" + info.ID + "/progress")
		if err != nil {
			log.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(resp.Body)
			log.Fatalf("progress poll failed: %s: %s", resp.Status, msg)
		}
		var pr progressResp
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		if pr.Update != nil && (last == nil || pr.Update.Seq != last.Seq) {
			last = pr.Update
			if !last.Done {
				lastLive = last
			}
			fmt.Printf("  %s %5.1f%%  t=%8.0f", bar(last.Query, 32), 100*last.Query, last.Time)
			for _, pp := range last.Pipelines {
				if pp.Started && !pp.Done {
					fmt.Printf("   p%d %s %4.1f%%", pp.Pipeline, pp.EstimatorName, 100*pp.Estimate)
				}
			}
			fmt.Println()
		}
		if pr.Done {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	fmt.Println("\nquery done")
	if lastLive != nil {
		fmt.Printf("last in-flight estimate: %.1f%% at t=%.0f (of %.0f total — true %.1f%%)\n",
			100*lastLive.Query, lastLive.Time, last.Time, 100*lastLive.Time/last.Time)
	}
}
