// Live monitor: a DBA-console-style progress bar. Runs a long decision
// support query and replays its execution, showing what a progress dialog
// driven by a trained selector would have displayed at each moment,
// against true progress.
package main

import (
	"fmt"
	"log"
	"strings"

	"progressest"
)

func bar(frac float64, width int) string {
	n := int(frac * float64(width))
	if n > width {
		n = width
	}
	return "[" + strings.Repeat("=", n) + strings.Repeat(" ", width-n) + "]"
}

func main() {
	w, err := progressest.Open(progressest.Config{
		Dataset: progressest.Real1,
		Queries: 30,
		Scale:   0.2,
		Zipf:    1,
		Design:  progressest.PartiallyTuned,
		Seed:    11,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Train a selector on this system's own history (the first 25
	// queries), then monitor a "new" query with it.
	examples, err := w.Harvest()
	if err != nil {
		log.Fatal(err)
	}
	sel, err := progressest.TrainSelector(examples, progressest.SelectorConfig{Trees: 100})
	if err != nil {
		log.Fatal(err)
	}

	const queryIdx = 27
	fmt.Println("monitoring:", w.QueryText(queryIdx))
	run, err := w.Run(queryIdx)
	if err != nil {
		log.Fatal(err)
	}

	for p := 0; p < run.NumPipelines(); p++ {
		obs := run.Observations(p)
		if obs < 10 {
			continue
		}
		choice := sel.Pick(run.Features(p))
		fmt.Printf("\npipeline %d — selector picked %v:\n", p, choice)
		truth := run.TrueProgress(p)
		est := run.Estimates(p, choice)
		for step := 0; step <= 12; step++ {
			i := step * (obs - 1) / 12
			fmt.Printf("  %s %5.1f%%   (true %5.1f%%)\n", bar(est[i], 32), 100*est[i], 100*truth[i])
		}
		l1, _ := run.Errors(p, choice)
		fmt.Printf("  final L1 error of the displayed estimator: %.4f\n", l1)
	}
}
