// Continuous learning: the daemon improving under its own traffic. The
// example opens a workload and an on-disk learning corpus, serves a burst
// of queries with no model at all (fixed-estimator fallback), harvests
// every finished query into the corpus, retrains, and serves the next
// burst with the freshly hot-swapped selector version — then retrains
// again and shows the version history the /models endpoint would report.
package main

import (
	"fmt"
	"log"
	"os"

	"progressest"
)

func main() {
	w, err := progressest.Open(progressest.Config{
		Dataset: progressest.TPCH,
		Queries: 40,
		Scale:   0.1,
		Zipf:    1,
		Design:  progressest.PartiallyTuned,
		Seed:    7,
	})
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "progressest-corpus-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// The learning loop: corpus on disk, manual retrains for the demo
	// (progressd runs the same thing on a size/age policy in background).
	lrn, err := progressest.OpenLearning(progressest.LearningConfig{
		Dir:               dir,
		Selector:          progressest.SelectorConfig{Trees: 60},
		DisableBackground: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer lrn.Close()

	runBurst := func(from, n int) {
		for i := from; i < from+n; i++ {
			m, err := w.Start(i, progressest.MonitorOptions{UpdateEvery: 8, Learning: lrn})
			if err != nil {
				log.Fatal(err)
			}
			for range m.Updates {
			}
			if _, err := m.Wait(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  query %2d done (served by model v%d)\n", i, m.ModelVersion())
		}
	}

	fmt.Println("burst 1: no model yet — fixed-estimator serving, harvesting on")
	runBurst(0, 8)
	fmt.Printf("corpus: %d examples from %d queries\n\n", lrn.CorpusSize(), lrn.HarvestStats().Queries)

	v1, err := lrn.Retrain()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("retrained: v%d on %d examples (holdout L1 %.4f over %d)\n\n",
		v1.ID, v1.CorpusSize, v1.HoldoutL1, v1.HoldoutN)

	fmt.Println("burst 2: served by the hot-swapped selector, still harvesting")
	runBurst(8, 8)
	fmt.Printf("corpus: %d examples\n\n", lrn.CorpusSize())

	v2, err := lrn.Retrain()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("retrained again: v%d on %d examples (holdout L1 %.4f)\n\n",
		v2.ID, v2.CorpusSize, v2.HoldoutL1)

	fmt.Println("version history (what GET /models reports):")
	for _, v := range lrn.Versions() {
		marker := " "
		if v.Current {
			marker = "*"
		}
		fmt.Printf("  %s v%d  source=%-7s corpus=%3d  holdout L1=%.4f  trained %s\n",
			marker, v.ID, v.Source, v.CorpusSize, v.HoldoutL1, v.TrainedAt.Format("15:04:05"))
	}
}
