// Skew sensitivity: how data skew changes which progress estimator wins.
// Regenerates the TPC-H-like database with Zipf factors z = 0, 1, 2 (as in
// the paper's Table 4 setup) and reports, per skew level, how often each
// estimator is the best choice and what a selector trained on the *other*
// skew levels achieves.
package main

import (
	"fmt"
	"log"

	"progressest"
)

func harvest(zipf float64, seed int64) []progressest.Example {
	w, err := progressest.Open(progressest.Config{
		Dataset: progressest.TPCH,
		Queries: 60,
		Scale:   0.15,
		Zipf:    zipf,
		Design:  progressest.PartiallyTuned,
		Seed:    seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	ex, err := w.Harvest()
	if err != nil {
		log.Fatal(err)
	}
	return ex
}

func main() {
	zipfs := []float64{0, 1, 2}
	sets := make([][]progressest.Example, len(zipfs))
	for i, z := range zipfs {
		sets[i] = harvest(z, 100+int64(i))
	}

	core := progressest.CoreEstimators()
	for i, z := range zipfs {
		fmt.Printf("=== test on skew z=%v (%d pipelines), train on the other two ===\n", z, len(sets[i]))

		// How often is each estimator strictly best at this skew level?
		counts := map[progressest.Estimator]int{}
		for _, e := range sets[i] {
			counts[e.BestKind(core)]++
		}
		for _, k := range core {
			fmt.Printf("  %-4s optimal for %5.1f%%\n", k,
				100*float64(counts[k])/float64(len(sets[i])))
		}

		var train []progressest.Example
		for o := range sets {
			if o != i {
				train = append(train, sets[o]...)
			}
		}
		sel, err := progressest.TrainSelector(train, progressest.SelectorConfig{
			Candidates: core,
		})
		if err != nil {
			log.Fatal(err)
		}
		ev := progressest.EvaluateSelector(sel, sets[i])
		bestFixed := 1.0
		for _, k := range core {
			if f := progressest.EvaluateFixed(k, core, sets[i]); f.AvgL1 < bestFixed {
				bestFixed = f.AvgL1
			}
		}
		fmt.Printf("  selection: picked-optimal %.1f%%, avgL1 %.4f (best fixed %.4f, oracle %.4f)\n\n",
			100*ev.PickedOptimal, ev.AvgL1, bestFixed, ev.OracleL1)
	}
}
