// Command extengine is a minimal external-engine adapter for the
// progressd ingestion surface: it plays the role of a query executor
// that is NOT this repository's native engine, opening an estimation
// session, streaming monotone counter observations as its (simulated)
// scan advances, and reading back the live progress estimates.
//
// Run a daemon first, then the adapter:
//
//	go run ./cmd/progressd -addr :8080 &
//	go run ./examples/extengine -addr http://localhost:8080 -rows 500000
//
// The adapter's plan is a table scan with a known input total feeding a
// filter — the smallest shape that exercises the exact-denominator
// estimators. A real integration maps its own operator tree into
// ingest.Spec nodes and forwards its real GetNext/bytes counters.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"progressest/internal/ingest"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "progressd base URL")
	family := flag.String("family", "extengine-demo", "workload family (admission class + corpus tag)")
	rows := flag.Int64("rows", 250000, "simulated scan input size")
	ticks := flag.Int("ticks", 20, "observation batches to stream")
	pace := flag.Duration("pace", 150*time.Millisecond, "delay between batches")
	flag.Parse()

	spec := &ingest.Spec{
		Workload:    "extengine",
		Family:      *family,
		UpdateEvery: 1, // one estimate per streamed snapshot
		Nodes: []ingest.NodeSpec{
			{Op: "TableScan", Table: "events", EstRows: float64(*rows), RowWidth: 64, Total: rows},
			{Op: "Filter", Children: []int{0}, EstRows: float64(*rows) * 0.4},
		},
	}
	var sess struct {
		ID string `json:"id"`
	}
	if err := post(*addr+"/sessions", spec, &sess); err != nil {
		log.Fatalf("open session: %v", err)
	}
	fmt.Printf("session %s open (family %s)\n", sess.ID, *family)

	obsURL := fmt.Sprintf("%s/sessions/%s/observations", *addr, sess.ID)
	progURL := fmt.Sprintf("%s/sessions/%s/progress", *addr, sess.ID)
	var scanned, emitted int64
	for i := 1; i <= *ticks; i++ {
		// The simulated executor advances its counters; a real adapter
		// reads them off its operator instrumentation instead.
		target := *rows * int64(i) / int64(*ticks)
		dScan := target - scanned
		dOut := target*4/10 - emitted
		scanned, emitted = target, emitted+dOut
		batch := &ingest.Batch{
			Events: []ingest.Event{{Snapshot: &ingest.SnapshotEvent{
				Time: float64(i) * pace.Seconds(),
				Deltas: []ingest.Delta{
					{Node: 0, K: dScan, R: dScan * 64},
					{Node: 1, K: dOut},
				},
			}}},
			Done: i == *ticks,
		}
		if err := post(obsURL, batch, nil); err != nil {
			log.Fatalf("batch %d: %v", i, err)
		}
		var prog struct {
			State  string `json:"state"`
			Update *struct {
				Query float64 `json:"query"`
			} `json:"update"`
		}
		if err := get(progURL, &prog); err != nil {
			log.Fatalf("progress: %v", err)
		}
		if prog.Update != nil {
			fmt.Printf("  t=%2d  state=%-9s  estimate=%5.1f%%\n", i, prog.State, prog.Update.Query*100)
		}
		if !batch.Done {
			time.Sleep(*pace)
		}
	}
	fmt.Println("session completed; its counters were harvested for the learning loop")
}

func post(url string, body, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		return err
	}
	return finish(resp, out)
}

func get(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	return finish(resp, out)
}

func finish(resp *http.Response, out any) error {
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(buf.Bytes()))
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
