// Ad-hoc selection: the paper's headline experiment in miniature. Train
// the estimator-selection model on three workload families, then apply it
// to a completely different database and workload ("ad-hoc" queries) and
// compare against using any single estimator exclusively.
package main

import (
	"fmt"
	"log"

	"progressest"
)

func harvest(ds progressest.Dataset, design progressest.Design, seed int64) []progressest.Example {
	w, err := progressest.Open(progressest.Config{
		Dataset: ds, Queries: 60, Scale: 0.15, Zipf: 1, Design: design, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	ex, err := w.Harvest()
	if err != nil {
		log.Fatal(err)
	}
	return ex
}

func main() {
	// Training data: TPC-H (two designs), TPC-DS and Real-1.
	var train []progressest.Example
	train = append(train, harvest(progressest.TPCH, progressest.Untuned, 1)...)
	train = append(train, harvest(progressest.TPCH, progressest.FullyTuned, 2)...)
	train = append(train, harvest(progressest.TPCDS, progressest.PartiallyTuned, 3)...)
	train = append(train, harvest(progressest.Real1, progressest.PartiallyTuned, 4)...)
	fmt.Printf("training on %d pipelines from 4 workloads\n", len(train))

	sel, err := progressest.TrainSelector(train, progressest.SelectorConfig{})
	if err != nil {
		log.Fatal(err)
	}

	// Test data: the Real-2 snowflake workload — never seen in training,
	// different schema, different plan shapes.
	test := harvest(progressest.Real2, progressest.FullyTuned, 5)
	fmt.Printf("testing on %d ad-hoc pipelines (unseen workload)\n\n", len(test))

	ev := progressest.EvaluateSelector(sel, test)
	fmt.Printf("%-22s avgL1=%.4f  picked-optimal=%4.1f%%  >5x-tail=%4.1f%%\n",
		"estimator selection", ev.AvgL1, 100*ev.PickedOptimal, 100*ev.RatioOver5x)
	for _, e := range progressest.AllEstimators() {
		f := progressest.EvaluateFixed(e, progressest.AllEstimators(), test)
		fmt.Printf("%-22s avgL1=%.4f  picked-optimal=%4.1f%%  >5x-tail=%4.1f%%\n",
			"always "+e.String(), f.AvgL1, 100*f.PickedOptimal, 100*f.RatioOver5x)
	}
	fmt.Printf("\noracle (lower bound)   avgL1=%.4f\n", ev.OracleL1)
}
