// Quickstart: generate a TPC-H-like workload, execute one query, and
// compare every candidate progress estimator against true progress.
package main

import (
	"fmt"
	"log"

	"progressest"
)

func main() {
	// Open a small skewed TPC-H-like database with a partially tuned
	// physical design and 20 randomly parameterised queries.
	w, err := progressest.Open(progressest.Config{
		Dataset: progressest.TPCH,
		Queries: 20,
		Scale:   0.15,
		Zipf:    1,
		Design:  progressest.PartiallyTuned,
		Seed:    42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Query:", w.QueryText(3))
	run, err := w.Run(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nExecuted plan:")
	fmt.Println(run.PlanText())

	// Print a progress table for the longest pipeline.
	best, bestObs := 0, 0
	for p := 0; p < run.NumPipelines(); p++ {
		if o := run.Observations(p); o > bestObs {
			best, bestObs = p, o
		}
	}
	truth := run.TrueProgress(best)
	fmt.Printf("Pipeline %d (%d observations):\n\n", best, bestObs)
	fmt.Printf("%8s", "true")
	for _, e := range progressest.AllEstimators() {
		fmt.Printf("%10s", e)
	}
	fmt.Println()
	for step := 0; step <= 10; step++ {
		i := step * (bestObs - 1) / 10
		fmt.Printf("%7.0f%%", 100*truth[i])
		for _, e := range progressest.AllEstimators() {
			fmt.Printf("%9.0f%%", 100*run.Estimates(best, e)[i])
		}
		fmt.Println()
	}

	fmt.Println("\nPer-estimator L1 error on this pipeline:")
	for _, e := range progressest.AllEstimators() {
		l1, l2 := run.Errors(best, e)
		fmt.Printf("  %-10s L1=%.4f  L2=%.4f\n", e, l1, l2)
	}
}
