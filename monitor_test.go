package progressest_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"progressest"
)

func testWorkload(t *testing.T) *progressest.Workload {
	t.Helper()
	w, err := progressest.Open(progressest.Config{
		Dataset: progressest.TPCH, Queries: 4, Scale: 0.08, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestMonitorStreamsLiveUpdates drives the Monitor API end to end: the
// query executes on its own goroutine, updates stream while it runs, and
// the final update marks completion with every pipeline done.
func TestMonitorStreamsLiveUpdates(t *testing.T) {
	w := testWorkload(t)
	m, err := w.Start(0, progressest.MonitorOptions{UpdateEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	var updates []progressest.ProgressUpdate
	for u := range m.Updates {
		if u.Query < 0 || u.Query > 1 {
			t.Fatalf("query estimate %v out of [0,1]", u.Query)
		}
		if !u.Done && u.TrueProgress != -1 {
			t.Fatalf("true progress %v leaked before completion", u.TrueProgress)
		}
		updates = append(updates, u)
	}
	if len(updates) == 0 {
		t.Fatal("no updates delivered")
	}
	last := updates[len(updates)-1]
	if !last.Done {
		t.Fatalf("final update not marked done: %+v", last)
	}
	if last.TrueProgress != 1 || last.Query != 1 {
		t.Fatalf("final update: true %v query %v, want 1/1", last.TrueProgress, last.Query)
	}
	for _, pp := range last.Pipelines {
		if !pp.Done {
			t.Fatalf("pipeline %d not done in final update", pp.Pipeline)
		}
	}
	run, err := m.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if run.NumPipelines() != len(last.Pipelines) {
		t.Fatalf("run has %d pipelines, final update %d", run.NumPipelines(), len(last.Pipelines))
	}
}

// TestMonitorConflationUnderBatching pins the Updates contract on the
// batched hot path: a slow consumer never blocks the executing observer —
// the query runs to completion regardless of consumer pace — and every
// read observes fresh state (sequence numbers strictly increase, stale
// intermediate updates are conflated away, the final read is Done).
// Run under -race this also proves the recycled update buffers never leak
// across the channel: a delivered update is never written to again.
func TestMonitorConflationUnderBatching(t *testing.T) {
	w := testWorkload(t)
	m, err := w.Start(0, progressest.MonitorOptions{UpdateEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Consume far slower than the update rate: UpdateEvery=1 emits one
	// update per snapshot (~hundreds per query), while this loop sleeps
	// between reads. Without conflation the observer would stall on the
	// full channel and the deadline below would trip.
	lastSeq := -1
	reads := 0
	var final progressest.ProgressUpdate
	for u := range m.Updates {
		if u.Seq <= lastSeq {
			t.Fatalf("stale update: seq %d after %d", u.Seq, lastSeq)
		}
		// The received update must stay immutable while the observer keeps
		// emitting: hold the slice across the sleep and re-check it below.
		pipes := u.Pipelines
		snap := append([]progressest.PipelineProgress(nil), pipes...)
		lastSeq = u.Seq
		reads++
		time.Sleep(2 * time.Millisecond)
		for i := range pipes {
			if pipes[i] != snap[i] {
				t.Fatal("delivered update mutated after receipt")
			}
		}
		final = u
	}
	if !final.Done || final.Query != 1 {
		t.Fatalf("terminal update not observed: %+v", final)
	}
	if reads == 0 {
		t.Fatal("no updates read")
	}
	run, err := m.Wait()
	if err != nil {
		t.Fatal(err)
	}
	// The slow consumer saw a conflated subset, not the full stream: the
	// final Seq counts every emitted update.
	if final.Seq < reads-1 {
		t.Fatalf("final seq %d below read count %d", final.Seq, reads)
	}
	if run.NumPipelines() != len(final.Pipelines) {
		t.Fatalf("run has %d pipelines, final update %d", run.NumPipelines(), len(final.Pipelines))
	}
}

// TestMonitorUnbatchedMatchesBatched drives the public API in both
// delivery modes and checks the terminal state agrees (the full
// bit-identity proof lives in the in-package equivalence suite).
func TestMonitorUnbatchedMatchesBatched(t *testing.T) {
	w := testWorkload(t)
	for _, unbatched := range []bool{false, true} {
		m, err := w.Start(1, progressest.MonitorOptions{UpdateEvery: 4, Unbatched: unbatched})
		if err != nil {
			t.Fatal(err)
		}
		var last progressest.ProgressUpdate
		for u := range m.Updates {
			last = u
		}
		if !last.Done || last.Query != 1 || last.TrueProgress != 1 {
			t.Fatalf("unbatched=%v: bad terminal update %+v", unbatched, last)
		}
		if _, err := m.Wait(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMonitorOutOfRange checks index validation.
func TestMonitorOutOfRange(t *testing.T) {
	w := testWorkload(t)
	if _, err := w.Start(99, progressest.MonitorOptions{}); err == nil {
		t.Fatal("expected error for out-of-range query index")
	}
}

// TestMonitorRejectsOracleEstimators: the oracle models need the finished
// trace, so Start must refuse them instead of panicking mid-execution.
func TestMonitorRejectsOracleEstimators(t *testing.T) {
	w := testWorkload(t)
	for _, e := range []progressest.Estimator{progressest.OracleGetNext, progressest.OracleBytes} {
		if _, err := w.Start(0, progressest.MonitorOptions{Estimator: e}); err == nil {
			t.Fatalf("expected error for oracle estimator %v", e)
		}
	}
}

// TestServerServesLiveProgress smoke-tests the daemon over real HTTP: it
// submits a query, polls its progress while the query runs in-flight, and
// sees the terminal done state.
func TestServerServesLiveProgress(t *testing.T) {
	w := testWorkload(t)
	srv := httptest.NewServer(progressest.NewServer(w, progressest.MonitorOptions{UpdateEvery: 1}))
	defer srv.Close()

	// Health.
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Submit.
	body, _ := json.Marshal(map[string]int{"query": 1})
	resp, err = http.Post(srv.URL+"/queries", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	var info struct {
		ID    string `json:"id"`
		Query int    `json:"query"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info.ID == "" || info.Query != 1 {
		t.Fatalf("bad submit response: %+v", info)
	}

	// Poll until done.
	type progressResp struct {
		ID     string `json:"id"`
		Done   bool   `json:"done"`
		Update *struct {
			Query     float64 `json:"query"`
			Done      bool    `json:"done"`
			Pipelines []struct {
				Estimator string  `json:"estimator"`
				Estimate  float64 `json:"estimate"`
			} `json:"pipelines"`
		} `json:"update"`
	}
	deadline := time.Now().Add(30 * time.Second)
	var last progressResp
	for {
		if time.Now().After(deadline) {
			t.Fatal("query did not finish in time")
		}
		resp, err := http.Get(srv.URL + "/queries/" + info.ID + "/progress")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("progress status %d", resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&last); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if last.Update != nil {
			if q := last.Update.Query; q < 0 || q > 1 {
				t.Fatalf("query progress %v out of [0,1]", q)
			}
		}
		if last.Done {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if last.Update == nil || !last.Update.Done || last.Update.Query != 1 {
		t.Fatalf("terminal update not observed: %+v", last.Update)
	}
	if len(last.Update.Pipelines) == 0 || last.Update.Pipelines[0].Estimator == "" {
		t.Fatalf("pipeline estimator names missing: %+v", last.Update.Pipelines)
	}

	// Unknown id.
	resp, err = http.Get(srv.URL + "/queries/nope/progress")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// List contains the submitted query.
	resp, err = http.Get(srv.URL + "/queries")
	if err != nil {
		t.Fatal(err)
	}
	var list []struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 1 || list[0].ID != info.ID {
		t.Fatalf("list: %+v", list)
	}
}

// TestHarvestParallelMatchesHarvest checks the public parallel harvest
// yields exactly the sequential examples, in order.
func TestHarvestParallelMatchesHarvest(t *testing.T) {
	w := testWorkload(t)
	seq, err := w.Harvest()
	if err != nil {
		t.Fatal(err)
	}
	par, err := w.HarvestParallel(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) == 0 || len(par) != len(seq) {
		t.Fatalf("parallel %d examples, sequential %d", len(par), len(seq))
	}
	for i := range seq {
		if seq[i].Signature != par[i].Signature || seq[i].ErrL1 != par[i].ErrL1 {
			t.Fatalf("example %d diverges", i)
		}
		for j := range seq[i].Features {
			if seq[i].Features[j] != par[i].Features[j] {
				t.Fatalf("example %d feature %d diverges", i, j)
			}
		}
	}
}
