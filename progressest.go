// Package progressest is a reproduction of "A Statistical Approach
// Towards Robust Progress Estimation" (König, Ding, Chaudhuri, Narasayya;
// VLDB 2011): a library for robust SQL progress estimation by statistical
// selection among candidate progress estimators.
//
// The package bundles a complete substrate — synthetic decision-support
// databases, a cost-based planner with realistic cardinality-estimation
// error, and a Volcano-style execution engine instrumented with the
// GetNext/bytes counters progress estimators consume — together with the
// paper's candidate estimators (DNE, TGN, LUO, PMAX, SAFE, BATCHDNE,
// DNESEEK, TGNINT) and the MART-based estimator-selection framework.
//
// Typical use:
//
//	w, _ := progressest.Open(progressest.Config{Dataset: progressest.TPCH})
//	run, _ := w.Run(0)                     // execute one query
//	series := run.Estimates(0, progressest.DNE)
//	examples, _ := w.Harvest()             // labelled training data
//	sel, _ := progressest.TrainSelector(examples, progressest.SelectorConfig{})
//	best := sel.Pick(run.Features(0))      // chosen estimator per pipeline
package progressest

import (
	"errors"
	"fmt"
	"sync"

	"progressest/internal/catalog"
	"progressest/internal/datagen"
	"progressest/internal/exec"
	"progressest/internal/features"
	"progressest/internal/pipeline"
	"progressest/internal/plan"
	"progressest/internal/progress"
	"progressest/internal/selection"
	"progressest/internal/workload"
)

// Dataset selects one of the four database/workload families used in the
// paper's evaluation.
type Dataset = datagen.DatasetKind

// The workload families.
const (
	TPCH  Dataset = datagen.TPCHLike
	TPCDS Dataset = datagen.TPCDSLike
	Real1 Dataset = datagen.Real1Like
	Real2 Dataset = datagen.Real2Like
)

// Design selects the physical-design preset (index set).
type Design = catalog.DesignLevel

// The physical designs.
const (
	Untuned        Design = catalog.Untuned
	PartiallyTuned Design = catalog.PartiallyTuned
	FullyTuned     Design = catalog.FullyTuned
)

// Estimator identifies a progress estimator.
type Estimator = progress.Kind

// The candidate estimators (see the paper, Sections 3.4 and 5) and the
// idealised oracle models (Section 6.7).
const (
	DNE           Estimator = progress.DNE
	TGN           Estimator = progress.TGN
	LUO           Estimator = progress.LUO
	PMAX          Estimator = progress.PMAX
	SAFE          Estimator = progress.SAFE
	BATCHDNE      Estimator = progress.BATCHDNE
	DNESEEK       Estimator = progress.DNESEEK
	TGNINT        Estimator = progress.TGNINT
	OracleGetNext Estimator = progress.OracleGetNext
	OracleBytes   Estimator = progress.OracleBytes
)

// CoreEstimators returns the three previously published estimators.
func CoreEstimators() []Estimator { return progress.CoreKinds() }

// AllEstimators returns all selectable candidate estimators, including
// the paper's novel special-purpose ones.
func AllEstimators() []Estimator { return progress.ExtendedKinds() }

// Config describes a workload instance.
type Config struct {
	// Dataset picks the database family (default TPCH).
	Dataset Dataset
	// Queries is the number of queries to generate (default 100).
	Queries int
	// Scale scales base-table row counts (default 0.15).
	Scale float64
	// Zipf is the data-skew factor z (default 1).
	Zipf float64
	// Design is the physical-design preset (default PartiallyTuned).
	Design Design
	// Seed makes everything deterministic (default 1).
	Seed int64
}

// Workload is a generated database plus parameterised queries.
type Workload struct {
	inner *workload.Workload
	plans planCache
}

// planCache memoizes the physical plan and pipeline decomposition per
// query index. Planning is deterministic and execution never mutates a
// plan, so one planned query can back any number of runs. Each engine
// replica owns its own cache (replica() starts fresh), keeping the reuse
// shard-local on the serving hot path.
type planCache struct {
	mu      sync.RWMutex
	entries map[int]*plannedQuery
}

type plannedQuery struct {
	plan  *plan.Plan
	pipes *pipeline.Decomposition
}

// planned returns the cached plan+decomposition for query i, planning on
// first use.
func (w *Workload) planned(i int) (*plannedQuery, error) {
	w.plans.mu.RLock()
	pq := w.plans.entries[i]
	w.plans.mu.RUnlock()
	if pq != nil {
		return pq, nil
	}
	pl, err := w.inner.Planner.Plan(w.inner.Queries[i])
	if err != nil {
		return nil, err
	}
	pq = &plannedQuery{plan: pl, pipes: pipeline.Decompose(pl)}
	w.plans.mu.Lock()
	if prior, ok := w.plans.entries[i]; ok {
		pq = prior // a concurrent planner won; both results are identical
	} else {
		if w.plans.entries == nil {
			w.plans.entries = make(map[int]*plannedQuery)
		}
		w.plans.entries[i] = pq
	}
	w.plans.mu.Unlock()
	return pq, nil
}

// Open generates the database and queries for the configuration.
func Open(cfg Config) (*Workload, error) {
	if cfg.Queries <= 0 {
		cfg.Queries = 100
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 0.15
	}
	if cfg.Zipf < 0 {
		return nil, errors.New("progressest: negative Zipf factor")
	}
	if cfg.Zipf == 0 {
		cfg.Zipf = 1
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	w, err := workload.Build(workload.Spec{
		Name:    cfg.Dataset.String(),
		Kind:    cfg.Dataset,
		Queries: cfg.Queries,
		Scale:   cfg.Scale,
		Zipf:    cfg.Zipf,
		Design:  cfg.Design,
		Seed:    cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Workload{inner: w}, nil
}

// NumQueries returns the number of generated queries.
func (w *Workload) NumQueries() int { return len(w.inner.Queries) }

// QueryText returns a pseudo-SQL rendering of query i.
func (w *Workload) QueryText(i int) string { return w.inner.Queries[i].String() }

// QueryFamily returns the workload family of query i — queries driven by
// the same base table form one family. Families are the routing key of
// per-family model selection (EngineConfig.RouteByFamily,
// LearningConfig.FamilyModels): harvested examples carry their query's
// family, the retrainer fits one selector per sufficiently represented
// family, and the engine routes queries to their family's model.
func (w *Workload) QueryFamily(i int) string {
	if i < 0 || i >= len(w.inner.Queries) {
		return ""
	}
	return w.inner.QueryFamily(i)
}

// replica returns a lightweight execution replica for the sharded engine:
// it shares the immutable database, statistics and bound queries with w
// but owns its planner instance.
func (w *Workload) replica() *Workload {
	return &Workload{inner: w.inner.Replica()}
}

// Run plans and executes query i, capturing the counter trace.
func (w *Workload) Run(i int) (*QueryRun, error) {
	if i < 0 || i >= len(w.inner.Queries) {
		return nil, fmt.Errorf("progressest: query index %d out of range [0,%d)", i, len(w.inner.Queries))
	}
	pq, err := w.planned(i)
	if err != nil {
		return nil, err
	}
	tr := exec.RunDecomposed(w.inner.DB, pq.plan, pq.pipes, exec.Options{})
	run := &QueryRun{trace: tr}
	for p := range tr.Pipes.Pipelines {
		run.views = append(run.views, progress.NewPipelineView(tr, p))
	}
	return run, nil
}

// Example is one labelled pipeline execution: a feature vector plus the
// measured error of every candidate estimator.
type Example = selection.Example

// Harvest executes every query of the workload and returns one labelled
// Example per sufficiently long pipeline — the training data for
// TrainSelector.
func (w *Workload) Harvest() ([]Example, error) {
	res, err := w.inner.Run(workload.RunOptions{Seed: w.inner.Spec.Seed})
	if err != nil {
		return nil, err
	}
	return res.Examples, nil
}

// HarvestParallel is Harvest with the workload's queries fanned out across
// a worker pool. Each query owns its plan, execution context and trace,
// so harvesting parallelises embarrassingly; the returned examples are
// identical to Harvest's, in the same deterministic order. workers <= 0
// uses all available CPUs.
func (w *Workload) HarvestParallel(workers int) ([]Example, error) {
	res, err := w.inner.RunParallel(workload.RunOptions{Seed: w.inner.Spec.Seed}, workers)
	if err != nil {
		return nil, err
	}
	return res.Examples, nil
}

// QueryRun is one executed query with its full observation trace.
type QueryRun struct {
	trace *exec.Trace
	views []*progress.PipelineView
	query *progress.QueryView // lazily built for whole-query progress
}

// queryView lazily builds the eq. 5 whole-query combination.
func (r *QueryRun) queryView() *progress.QueryView {
	if r.query == nil {
		r.query = progress.NewQueryView(r.trace)
	}
	return r.query
}

// PlanText renders the executed physical plan.
func (r *QueryRun) PlanText() string { return r.trace.Plan.String() }

// NumPipelines returns the number of pipelines in the plan.
func (r *QueryRun) NumPipelines() int { return len(r.views) }

// Observations returns the number of counter snapshots recorded for
// pipeline p.
func (r *QueryRun) Observations(p int) int { return r.views[p].NumObs() }

// Estimates returns estimator e's progress series over pipeline p's
// observations (values in [0, 1]).
func (r *QueryRun) Estimates(p int, e Estimator) []float64 {
	return r.views[p].Series(e)
}

// TrueProgress returns the true (virtual-time) progress of pipeline p at
// each observation.
func (r *QueryRun) TrueProgress(p int) []float64 { return r.views[p].TrueSeries() }

// Errors returns estimator e's L1 and L2 progress error on pipeline p.
func (r *QueryRun) Errors(p int, e Estimator) (l1, l2 float64) {
	st := r.views[p].Errors(e)
	return st.L1, st.L2
}

// Features returns the selection feature vector of pipeline p (static
// prefix + dynamic suffix).
func (r *QueryRun) Features(p int) []float64 {
	return features.Full(r.views[p])
}

// QueryEstimates returns whole-query progress (the estimate-weighted sum
// of pipeline estimates, eq. 5 of the paper) using estimator e for every
// pipeline, over all counter snapshots of the query.
func (r *QueryRun) QueryEstimates(e Estimator) []float64 {
	return r.queryView().Series(e)
}

// QueryTrueProgress returns the true whole-query progress per snapshot.
func (r *QueryRun) QueryTrueProgress() []float64 {
	return r.queryView().TrueSeries()
}

// QueryErrors returns the L1/L2 error of a single-estimator whole-query
// progress series.
func (r *QueryRun) QueryErrors(e Estimator) (l1, l2 float64) {
	st := r.queryView().Errors(e)
	return st.L1, st.L2
}

// PipelineWeight returns pipeline p's share of the query's estimated total
// work (the eq. 5 weight).
func (r *QueryRun) PipelineWeight(p int) float64 {
	return r.queryView().Weight(p)
}

// FeatureNames returns the ordered names of the feature vector entries.
func FeatureNames() []string { return features.Names() }

// BatchRun is the combined execution of several queries, with one progress
// series for the whole batch (the multi-query extension the paper lists as
// future work, after Luo et al.'s multi-query indicators).
type BatchRun struct {
	m *progress.MultiQuery
}

// RunBatch executes the given queries back to back and returns the batch
// view. Indices must be valid query indices of the workload.
func (w *Workload) RunBatch(indices []int) (*BatchRun, error) {
	var traces []*exec.Trace
	for _, i := range indices {
		if i < 0 || i >= len(w.inner.Queries) {
			return nil, fmt.Errorf("progressest: query index %d out of range", i)
		}
		pq, err := w.planned(i)
		if err != nil {
			return nil, err
		}
		traces = append(traces, exec.RunDecomposed(w.inner.DB, pq.plan, pq.pipes, exec.Options{}))
	}
	if len(traces) == 0 {
		return nil, errors.New("progressest: empty batch")
	}
	return &BatchRun{m: progress.NewMultiQuery(traces)}, nil
}

// QueryWeight returns query q's share of the batch's estimated work.
func (b *BatchRun) QueryWeight(q int) float64 { return b.m.QueryWeight(q) }

// Progress returns the batch progress series for one estimator together
// with the true batch progress.
func (b *BatchRun) Progress(e Estimator) (est, truth []float64) {
	return b.m.SerialSeries(e)
}

// Errors returns the batch progress series' L1/L2 error for one estimator.
func (b *BatchRun) Errors(e Estimator) (l1, l2 float64) {
	st := b.m.Errors(e)
	return st.L1, st.L2
}

// SelectorConfig configures selector training.
type SelectorConfig struct {
	// Candidates is the estimator set to select among (default
	// AllEstimators()).
	Candidates []Estimator
	// StaticOnly restricts models to plan-time features; by default the
	// selector also uses dynamic execution-feedback features.
	StaticOnly bool
	// Trees is the number of MART boosting iterations (default 200, as in
	// the paper).
	Trees int
	// Seed drives stochastic boosting (default 1).
	Seed int64
}

// Selector picks the estimator with the smallest predicted error for a
// pipeline.
type Selector struct {
	inner *selection.Selector
}

// TrainSelector fits one MART error-regression model per candidate
// estimator (the paper's Section 4 framework).
func TrainSelector(examples []Example, cfg SelectorConfig) (*Selector, error) {
	s, err := selection.Train(examples, selectionConfig(cfg))
	if err != nil {
		return nil, err
	}
	return &Selector{inner: s}, nil
}

// Pick returns the estimator with the smallest predicted error for the
// feature vector.
func (s *Selector) Pick(featureVector []float64) Estimator {
	return s.inner.Select(featureVector)
}

// PredictedErrors returns the predicted L1 error per candidate.
func (s *Selector) PredictedErrors(featureVector []float64) map[Estimator]float64 {
	return s.inner.PredictErrors(featureVector)
}

// Save writes the selector to a JSON file.
func (s *Selector) Save(path string) error { return s.inner.Save(path) }

// LoadSelector reads a selector saved by Save.
func LoadSelector(path string) (*Selector, error) {
	inner, err := selection.Load(path)
	if err != nil {
		return nil, err
	}
	return &Selector{inner: inner}, nil
}

// Evaluation summarises a selector or fixed estimator on test examples.
type Evaluation = selection.Evaluation

// EvaluateSelector runs the selector over labelled test examples.
func EvaluateSelector(s *Selector, examples []Example) Evaluation {
	return selection.Evaluate(s.inner, examples)
}

// EvaluateFixed evaluates always using one estimator against the optimal
// choice among candidates.
func EvaluateFixed(e Estimator, candidates []Estimator, examples []Example) Evaluation {
	return selection.EvaluateFixed(e, candidates, examples)
}
