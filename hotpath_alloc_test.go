//go:build !race

package progressest

import (
	"testing"

	"progressest/internal/progress"
)

// The zero-alloc assertions live behind !race because testing.AllocsPerRun
// reports spurious allocations under the race detector's instrumentation.

// TestSnapshotUpdateCycleZeroAlloc asserts the tentpole property: at
// steady state, one full snapshot→estimate→update tick — including the
// synthetic thins a long-running query incurs — performs zero heap
// allocations, in both delivery modes.
func TestSnapshotUpdateCycleZeroAlloc(t *testing.T) {
	for _, mode := range cycleModes {
		t.Run(mode.name, func(t *testing.T) {
			c := newSnapshotCycle(t, mode.batched)
			if avg := testing.AllocsPerRun(200, c.tick); avg != 0 {
				t.Fatalf("%s snapshot→update cycle: %v allocs/op at steady state, want 0",
					mode.name, avg)
			}
		})
	}
}

// TestQueryEstimateZeroAlloc covers the satellite read-path fix: the live
// eq. 5 combination and the scratch-buffer series read allocate nothing
// once warm.
func TestQueryEstimateZeroAlloc(t *testing.T) {
	c := newSnapshotCycle(t, true)
	view := c.obs.view
	choose := func(int) progress.Kind { return progress.DNE }
	view.QueryEstimate(choose) // warm (already warm via ticks; belt and braces)
	if avg := testing.AllocsPerRun(100, func() {
		view.QueryEstimate(choose)
	}); avg != 0 {
		t.Fatalf("QueryEstimate: %v allocs/op, want 0", avg)
	}
	scratch := make([]float64, 0, 512)
	if avg := testing.AllocsPerRun(100, func() {
		scratch = view.Pipelines[0].AppendSeries(scratch[:0], progress.DNE)
	}); avg != 0 {
		t.Fatalf("AppendSeries into scratch: %v allocs/op, want 0", avg)
	}
}
