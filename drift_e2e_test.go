package progressest

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"progressest/internal/feedback"
)

// TestDriftDetectAutoRetrainEndToEnd is the full loop of the drift
// monitor over HTTP: a deliberately stale model — a real selector
// published for one workload family with a fabricated near-zero holdout
// baseline, so any live traffic reads as drift — serves that family's
// queries; the harvester joins each query's estimator errors back to the
// pinned version; the background retrainer's drift trigger fires and
// retrains exactly that family (trigger "drift" in the decision
// history); and GET /models/drift reflects the whole transition: drifted
// true with the stale version, then a fresh version with a reset window.
func TestDriftDetectAutoRetrainEndToEnd(t *testing.T) {
	w := learningWorkload(t)
	// Pick the family to poison and a query of another family as the
	// control.
	fam := w.QueryFamily(0)
	var famQueries, otherQueries []int
	for i := 0; i < w.NumQueries(); i++ {
		if w.QueryFamily(i) == fam {
			famQueries = append(famQueries, i)
		} else {
			otherQueries = append(otherQueries, i)
		}
	}
	if len(otherQueries) == 0 {
		t.Fatal("workload has a single family; cannot prove per-family isolation")
	}

	lrn, err := OpenLearning(LearningConfig{
		Dir:      t.TempDir(),
		Selector: SelectorConfig{Trees: 10},
		// The size/age trigger must never fire: the retrain this test
		// observes has to come from the drift verdict alone.
		MinNewExamples: 1 << 30,
		Poll:           5 * time.Millisecond,
		// Gate decisions have their own coverage; here every drift
		// retrain must hot-swap so the version transition is observable.
		DisableGate:     true,
		DisablePersist:  true,
		MinObservations: 1,
		// A few live queries must clear the family training floor.
		MinFamilyExamples: 1,
		DriftWindow:       64,
		DriftMinSamples:   3,
		DriftRatio:        1.5,
		DriftAbsSlack:     -1, // zero slack: vs. the near-zero baseline, any real error drifts
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lrn.Close()

	// The stale model: a genuinely trained selector whose recorded
	// holdout baseline promises near-perfect serving error. Live traffic
	// cannot live up to a 1e-9 promise, which is exactly the
	// observed-vs-predicted gap the monitor exists to catch.
	ex, err := w.Harvest()
	if err != nil {
		t.Fatal(err)
	}
	sel, err := TrainSelector(ex, SelectorConfig{Trees: 10})
	if err != nil {
		t.Fatal(err)
	}
	stale := lrn.reg.Publish(sel.inner, feedback.VersionMeta{
		TrainedAt: time.Now(),
		HoldoutL1: 1e-9,
		HoldoutN:  50,
		Source:    "manual",
		Family:    fam,
	})

	eng := NewEngine(w, EngineConfig{RouteByFamily: true}, MonitorOptions{UpdateEvery: 4, Learning: lrn})
	srv := httptest.NewServer(NewEngineServer(eng))
	defer srv.Close()

	runQuery := func(q int) {
		t.Helper()
		var info struct {
			ID          string `json:"id"`
			Model       int    `json:"model"`
			ModelFamily string `json:"model_family"`
		}
		if code := doJSON(t, http.MethodPost, srv.URL+"/queries", `{"query": `+strconv.Itoa(q)+`}`, &info); code != http.StatusAccepted {
			t.Fatalf("submit query %d: HTTP %d", q, code)
		}
		deadline := time.Now().Add(20 * time.Second)
		for {
			var pr struct {
				Done bool `json:"done"`
			}
			doJSON(t, http.MethodGet, srv.URL+"/queries/"+info.ID+"/progress", "", &pr)
			if pr.Done {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("query %d never finished", q)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	type driftWire struct {
		Targets []struct {
			Family       string  `json:"family"`
			Version      int     `json:"version"`
			BaselineL1   float64 `json:"baseline_l1"`
			ObservedL1   float64 `json:"observed_l1"`
			Samples      int     `json:"samples"`
			Drifted      bool    `json:"drifted"`
			LastTrigger  string  `json:"last_trigger"`
			LastDecision string  `json:"last_decision"`
		} `json:"targets"`
		Decisions []struct {
			Trigger  string `json:"trigger"`
			Family   string `json:"family"`
			Version  int    `json:"version"`
			Decision string `json:"decision"`
		} `json:"decisions"`
	}
	getDrift := func() driftWire {
		t.Helper()
		var dw driftWire
		if code := doJSON(t, http.MethodGet, srv.URL+"/models/drift", "", &dw); code != http.StatusOK {
			t.Fatalf("GET /models/drift: HTTP %d", code)
		}
		return dw
	}

	// A control query of another family first: it has no model to serve
	// it (only fam has a version), so no drift window may appear for it.
	runQuery(otherQueries[0])
	if dw := getDrift(); len(dw.Targets) != 0 {
		t.Fatalf("control query created drift state: %+v", dw.Targets)
	}

	// Serve the poisoned family until its window has MinSamples and the
	// background loop retrains it. Every query contributes >= 1 example
	// (MinObservations 1), so a handful suffices; keep cycling until the
	// transition is visible or the deadline passes.
	deadline := time.Now().Add(30 * time.Second)
	var after driftWire
	retrained := false
	for !retrained {
		if time.Now().After(deadline) {
			t.Fatalf("drift retrain never fired; last standing: %+v", after)
		}
		for _, q := range famQueries {
			runQuery(q)
		}
		after = getDrift()
		for _, d := range after.Decisions {
			if d.Trigger == "drift" {
				retrained = true
			}
		}
	}

	// The decision history pins provenance: every drift-triggered retrain
	// hit exactly the poisoned family, and no other target was trained at
	// all (the size/age trigger was disabled, so the history is pure).
	for _, d := range after.Decisions {
		if d.Trigger != "drift" {
			t.Fatalf("unexpected non-drift decision %+v (size/age trigger should be off)", d)
		}
		if d.Family != fam {
			t.Fatalf("drift retrain hit family %q, want only %q", d.Family, fam)
		}
		if d.Decision != "accepted" {
			t.Fatalf("ungated drift retrain was not accepted: %+v", d)
		}
	}

	// The registry swapped in a fresh version for fam only.
	cur := lrn.reg.CurrentFor(fam)
	if cur == nil || cur.ID == stale.ID {
		t.Fatalf("family %q still serves the stale version", fam)
	}
	if cur.Meta.Source != "drift" || cur.Meta.Family != fam {
		t.Fatalf("replacement version provenance: %+v", cur.Meta)
	}
	if lrn.reg.Current() != nil {
		t.Fatal("a global version appeared although only the family drifted")
	}

	// GET /models/drift reflects the transition: the fam target is keyed
	// to a version newer than the stale one, with drift provenance
	// attached. (The window may already hold fresh post-swap samples; it
	// must no longer be the stale version's.)
	found := false
	for _, tg := range after.Targets {
		if tg.Family != fam {
			t.Fatalf("drift window for unexpected target %q", tg.Family)
		}
		found = true
		if tg.Version == stale.ID && tg.Drifted {
			t.Fatalf("stale version still drifting after retrain: %+v", tg)
		}
		if tg.LastTrigger != "drift" || tg.LastDecision != "accepted" {
			t.Fatalf("per-target provenance: %+v", tg)
		}
	}
	if !found {
		t.Fatal("poisoned family vanished from /models/drift")
	}

	// GET /models carries the same drift standing inline.
	var models struct {
		Drift []struct {
			Family string `json:"family"`
		} `json:"drift"`
		Decisions []struct {
			Trigger string `json:"trigger"`
		} `json:"decisions"`
	}
	if code := doJSON(t, http.MethodGet, srv.URL+"/models", "", &models); code != http.StatusOK {
		t.Fatalf("GET /models: HTTP %d", code)
	}
	if len(models.Drift) == 0 || len(models.Decisions) == 0 {
		t.Fatal("GET /models does not surface drift standing and decisions")
	}
}

// TestDriftEndpointWithoutLearning: /models/drift 404s like the other
// model-lifecycle routes when continuous learning is off.
func TestDriftEndpointWithoutLearning(t *testing.T) {
	srv := httptest.NewServer(NewServer(serverWorkload(t), MonitorOptions{}))
	defer srv.Close()
	if code := doJSON(t, http.MethodGet, srv.URL+"/models/drift", "", nil); code != http.StatusNotFound {
		t.Fatalf("GET /models/drift without learning: HTTP %d, want 404", code)
	}
}
