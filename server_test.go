package progressest

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// serverWorkload builds a small, fast workload for HTTP tests.
func serverWorkload(t *testing.T) *Workload {
	t.Helper()
	w, err := Open(Config{Dataset: TPCH, Queries: 6, Scale: 0.08, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// doJSON issues a request and decodes the JSON body into out (if non-nil).
func doJSON(t *testing.T, method, url string, body string, out any) int {
	t.Helper()
	var rdr io.Reader
	if body != "" {
		rdr = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rdr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// waitDone polls a query's progress until its terminal state.
func waitDone(t *testing.T, base, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("query %s did not finish in time", id)
		}
		var resp struct {
			Done bool `json:"done"`
		}
		if code := doJSON(t, http.MethodGet, base+"/queries/"+id+"/progress", "", &resp); code != http.StatusOK {
			t.Fatalf("progress status %d", code)
		}
		if resp.Done {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

func TestServerRejectsBadRoutesAndMethods(t *testing.T) {
	w := serverWorkload(t)
	srv := httptest.NewServer(NewServer(w, MonitorOptions{}))
	defer srv.Close()

	// Unknown paths.
	for _, path := range []string{"/nope", "/queries/q1", "/models/nope"} {
		if code := doJSON(t, http.MethodGet, srv.URL+path, "", nil); code != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, code)
		}
	}
	// Wrong methods on registered paths.
	for _, c := range []struct{ method, path string }{
		{http.MethodPost, "/healthz"},
		{http.MethodDelete, "/queries"},
		{http.MethodPost, "/queries/q1/progress"},
		{http.MethodPost, "/engine/stats"},
		{http.MethodGet, "/engine/resize"},
		{http.MethodPost, "/models"},
		{http.MethodGet, "/models/retrain"},
		{http.MethodGet, "/models/rollback"},
	} {
		if code := doJSON(t, c.method, srv.URL+c.path, "", nil); code != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d, want 405", c.method, c.path, code)
		}
	}
}

func TestServerSubmitValidation(t *testing.T) {
	w := serverWorkload(t)
	srv := httptest.NewServer(NewServer(w, MonitorOptions{}))
	defer srv.Close()

	if code := doJSON(t, http.MethodPost, srv.URL+"/queries", "{not json", nil); code != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", code)
	}
	if code := doJSON(t, http.MethodPost, srv.URL+"/queries", `{"query": 999}`, nil); code != http.StatusBadRequest {
		t.Errorf("out-of-range index: status %d, want 400", code)
	}
	if code := doJSON(t, http.MethodPost, srv.URL+"/queries", `{"query": -1}`, nil); code != http.StatusBadRequest {
		t.Errorf("negative index: status %d, want 400", code)
	}
}

// TestServerAdmissionBound shrinks the live-query cap to 1 and verifies a
// second concurrent submission is rejected with 429 while the first still
// runs, then admitted once the slot frees up.
func TestServerAdmissionBound(t *testing.T) {
	w := serverWorkload(t)
	// Pacing keeps the first query alive long enough to observe the 429;
	// no queue, so a saturated engine rejects immediately.
	s := NewEngineServer(NewEngine(w, EngineConfig{Shards: 1, MaxLivePerShard: 1},
		MonitorOptions{UpdateEvery: 4, Pace: 20 * time.Millisecond}))
	srv := httptest.NewServer(s)
	defer srv.Close()

	var first struct {
		ID string `json:"id"`
	}
	if code := doJSON(t, http.MethodPost, srv.URL+"/queries", `{"query": 0}`, &first); code != http.StatusAccepted {
		t.Fatalf("first submit: status %d", code)
	}
	var errResp struct {
		Error string `json:"error"`
	}
	if code := doJSON(t, http.MethodPost, srv.URL+"/queries", `{"query": 1}`, &errResp); code != http.StatusTooManyRequests {
		t.Fatalf("second submit while full: status %d, want 429", code)
	}
	if !strings.Contains(errResp.Error, "capacity") {
		t.Fatalf("429 body: %q", errResp.Error)
	}
	waitDone(t, srv.URL, first.ID)
	if code := doJSON(t, http.MethodPost, srv.URL+"/queries", `{"query": 1}`, nil); code != http.StatusAccepted {
		t.Fatalf("submit after drain: status %d, want 202", code)
	}
}

// TestServerRetentionEvictsOldest shrinks the retention bound and checks
// finished queries are evicted oldest-first while their ids 404 afterwards.
func TestServerRetentionEvictsOldest(t *testing.T) {
	w := serverWorkload(t)
	s := NewServer(w, MonitorOptions{UpdateEvery: 16})
	s.maxKept = 2
	srv := httptest.NewServer(s)
	defer srv.Close()

	var ids []string
	for i := 0; i < 4; i++ {
		var info struct {
			ID string `json:"id"`
		}
		if code := doJSON(t, http.MethodPost, srv.URL+"/queries", `{"query": 0}`, &info); code != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, code)
		}
		waitDone(t, srv.URL, info.ID)
		ids = append(ids, info.ID)
	}
	var list []struct {
		ID string `json:"id"`
	}
	if code := doJSON(t, http.MethodGet, srv.URL+"/queries", "", &list); code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	if len(list) > 2+1 { // the submission that triggered eviction may still be listed
		t.Fatalf("retention kept %d queries, want <= 3", len(list))
	}
	// The oldest query is gone.
	if code := doJSON(t, http.MethodGet, srv.URL+"/queries/"+ids[0]+"/progress", "", nil); code != http.StatusNotFound {
		t.Fatalf("evicted query progress: status %d, want 404", code)
	}
}

func TestServerModelRoutesWithoutLearning(t *testing.T) {
	w := serverWorkload(t)
	srv := httptest.NewServer(NewServer(w, MonitorOptions{}))
	defer srv.Close()
	for _, c := range []struct{ method, path string }{
		{http.MethodGet, "/models"},
		{http.MethodPost, "/models/retrain"},
		{http.MethodPost, "/models/rollback"},
	} {
		var errResp struct {
			Error string `json:"error"`
		}
		if code := doJSON(t, c.method, srv.URL+c.path, "", &errResp); code != http.StatusNotFound {
			t.Errorf("%s %s without learning: status %d, want 404", c.method, c.path, code)
		}
		if !strings.Contains(errResp.Error, "learning") {
			t.Errorf("%s %s: unhelpful error %q", c.method, c.path, errResp.Error)
		}
	}
}

func TestServerModelRoutes(t *testing.T) {
	w := serverWorkload(t)
	lrn, err := OpenLearning(LearningConfig{
		Dir:               t.TempDir(),
		Selector:          SelectorConfig{Trees: 10},
		DisableBackground: true,
		// The route assertions below rely on every retrain swapping in.
		DisableGate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lrn.Close()
	srv := httptest.NewServer(NewServer(w, MonitorOptions{UpdateEvery: 8, Learning: lrn}))
	defer srv.Close()

	// Empty corpus: retrain must refuse, rollback has nothing to revert.
	if code := doJSON(t, http.MethodPost, srv.URL+"/models/retrain", "", nil); code != http.StatusConflict {
		t.Fatalf("retrain on empty corpus: status %d, want 409", code)
	}
	if code := doJSON(t, http.MethodPost, srv.URL+"/models/rollback", "", nil); code != http.StatusConflict {
		t.Fatalf("rollback with no versions: status %d, want 409", code)
	}
	var models modelsResponse
	if code := doJSON(t, http.MethodGet, srv.URL+"/models", "", &models); code != http.StatusOK {
		t.Fatalf("GET /models: status %d", code)
	}
	if models.Current != 0 || len(models.Versions) != 0 || models.CorpusSize != 0 {
		t.Fatalf("initial models state: %+v", models)
	}

	// Feed the corpus by running queries through the server.
	for i := 0; i < 3; i++ {
		var info struct {
			ID    string `json:"id"`
			Model int    `json:"model"`
		}
		if code := doJSON(t, http.MethodPost, srv.URL+"/queries", `{"query": 0}`, &info); code != http.StatusAccepted {
			t.Fatalf("submit: status %d", code)
		}
		if info.Model != 0 {
			t.Fatalf("model %d before any version exists", info.Model)
		}
		waitDone(t, srv.URL, info.ID)
	}

	// Retrain: a version appears and is current.
	var v1 ModelVersion
	if code := doJSON(t, http.MethodPost, srv.URL+"/models/retrain", "", &v1); code != http.StatusOK {
		t.Fatalf("retrain: status %d", code)
	}
	if v1.ID != 1 || v1.Source != "manual" || v1.CorpusSize == 0 {
		t.Fatalf("first version: %+v", v1)
	}
	if code := doJSON(t, http.MethodGet, srv.URL+"/models", "", &models); code != http.StatusOK {
		t.Fatalf("GET /models: status %d", code)
	}
	if models.Current != 1 || len(models.Versions) != 1 || !models.Versions[0].Current {
		t.Fatalf("models after retrain: %+v", models)
	}
	// The corpus shape rides along: segment count, bytes and per-family
	// example counts from the store's indexes, and the retrain just
	// read the corpus, so the decode-cache counters moved.
	if models.Corpus.Segments == 0 || models.Corpus.Bytes == 0 || models.Corpus.Examples != models.CorpusSize {
		t.Fatalf("corpus stats missing from GET /models: %+v", models.Corpus)
	}
	total := 0
	for _, n := range models.Corpus.Families {
		total += n
	}
	if total != models.Corpus.Examples {
		t.Fatalf("corpus family counts sum to %d, want %d: %+v", total, models.Corpus.Examples, models.Corpus)
	}
	if models.Corpus.CacheCapBytes == 0 {
		t.Fatalf("decode cache not enabled by default: %+v", models.Corpus)
	}
	if models.Harvest.Queries != 3 || models.Harvest.Examples == 0 {
		t.Fatalf("harvest stats: %+v", models.Harvest)
	}

	// New queries are served by the published version.
	var info struct {
		ID    string `json:"id"`
		Model int    `json:"model"`
	}
	if code := doJSON(t, http.MethodPost, srv.URL+"/queries", `{"query": 1}`, &info); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	if info.Model != 1 {
		t.Fatalf("query served by model %d, want 1", info.Model)
	}
	waitDone(t, srv.URL, info.ID)
	var prog struct {
		Model int `json:"model"`
	}
	if code := doJSON(t, http.MethodGet, srv.URL+"/queries/"+info.ID+"/progress", "", &prog); code != http.StatusOK || prog.Model != 1 {
		t.Fatalf("progress model: status %d, model %d", code, prog.Model)
	}

	// Second retrain then rollback: current walks 2 -> 1.
	var v2 ModelVersion
	if code := doJSON(t, http.MethodPost, srv.URL+"/models/retrain", "", &v2); code != http.StatusOK || v2.ID != 2 {
		t.Fatalf("second retrain: %+v", v2)
	}
	var back ModelVersion
	if code := doJSON(t, http.MethodPost, srv.URL+"/models/rollback", "", &back); code != http.StatusOK || back.ID != 1 {
		t.Fatalf("rollback: %+v", back)
	}
	if code := doJSON(t, http.MethodGet, srv.URL+"/models", "", &models); code != http.StatusOK {
		t.Fatalf("GET /models: status %d", code)
	}
	if models.Current != 1 || len(models.Versions) != 2 {
		t.Fatalf("models after rollback: current %d, %d versions", models.Current, len(models.Versions))
	}
	// Rolling back past the first version fails.
	if code := doJSON(t, http.MethodPost, srv.URL+"/models/rollback", "", nil); code != http.StatusConflict {
		t.Fatalf("rollback past first: status %d, want 409", code)
	}
	// A typo'd family is "unknown target", not "nothing to roll back to":
	// 404, so an operator fat-fingering the family name can tell the
	// difference from a real exhausted history.
	if code := doJSON(t, http.MethodPost, srv.URL+"/models/rollback", `{"family": "no-such-family"}`, nil); code != http.StatusNotFound {
		t.Fatalf("rollback of unknown family: status %d, want 404", code)
	}

	// Healthz reports the serving model and corpus size.
	var health struct {
		Model      int `json:"model"`
		CorpusSize int `json:"corpus_size"`
	}
	if code := doJSON(t, http.MethodGet, srv.URL+"/healthz", "", &health); code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
	if health.Model != 1 || health.CorpusSize == 0 {
		t.Fatalf("healthz learning fields: %+v", health)
	}
}
