package progressest

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"progressest/internal/engine"
	"progressest/internal/ingest"
)

// SessionConfig sizes the external counter-ingestion session layer (the
// POST /sessions surface).
type SessionConfig struct {
	// TTL expires an open session that has ingested nothing for this long
	// (default 2m; negative disables expiry). Progress reads do not count
	// as activity: a session is alive while its engine streams counters,
	// not while someone watches it.
	TTL time.Duration
	// MaxSessions bounds the concurrently open sessions (default 256);
	// opening beyond it is rejected like a full admission queue.
	MaxSessions int
	// MaxObservations caps the snapshots one session may ingest
	// (default ingest.DefaultMaxObservations). External engines control
	// their own cadence, so the cap rejects instead of thinning.
	MaxObservations int
	// MaxKept bounds retained terminal (completed/aborted/expired)
	// sessions for listing and progress reads (default 256); the oldest
	// are evicted first.
	MaxKept int
}

func (c SessionConfig) withDefaults() SessionConfig {
	if c.TTL == 0 {
		c.TTL = 2 * time.Minute
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 256
	}
	if c.MaxKept <= 0 {
		c.MaxKept = 256
	}
	return c
}

// Session lifecycle states.
const (
	sessionOpen = iota
	sessionCompleted
	sessionAborted
	sessionExpired
)

func sessionStateName(state int) string {
	switch state {
	case sessionOpen:
		return "open"
	case sessionCompleted:
		return "completed"
	case sessionAborted:
		return "aborted"
	default:
		return "expired"
	}
}

var (
	// errSessionLimit rejects an open beyond MaxSessions (429).
	errSessionLimit = errors.New("progressest: open session limit reached")
	// errSessionAborted and errSessionExpired are the Wait errors of
	// sessions that ended without completing.
	errSessionAborted = errors.New("progressest: session aborted")
	errSessionExpired = errors.New("progressest: session expired (idle past TTL)")
)

// ingestSession is one external estimation session: an admission slot, a
// validated plan model, the ingestion runner synthesizing the observer
// event stream, and the monitor machinery native queries use.
type ingestSession struct {
	id          string
	workload    string
	family      string
	class       string
	shard       int
	model       int    // selector version serving the session
	modelFamily string // routing target of that version

	mu       sync.Mutex
	state    int
	lastSeen time.Time
	runner   *ingest.Runner
	obs      *monitorObserver
	mon      *Monitor
	batches  int64 // successfully applied batches
	ingested int64 // successfully ingested snapshots
	rejected int64 // rejected batches

	// latest/seen mirror serverQuery: the freshest conflated update, for
	// GET /sessions/{id}/progress.
	progMu sync.Mutex
	latest ProgressUpdate
	seen   bool
}

func (s *ingestSession) snapshotProgress() (ProgressUpdate, bool) {
	s.progMu.Lock()
	defer s.progMu.Unlock()
	return s.latest, s.seen
}

// sessionManager owns the session table: admission, ingestion dispatch,
// TTL expiry and retention.
type sessionManager struct {
	eng *Engine
	cfg SessionConfig

	mu       sync.Mutex
	sessions map[string]*ingestSession
	order    []*ingestSession // open order, for stable listings + eviction
	nextID   int
	draining bool

	janitor  sync.Once
	stopOnce sync.Once
	stopCh   chan struct{}

	opened, completed, expired, aborted  atomic.Int64
	batches, observations, rejectedTotal atomic.Int64
}

func newSessionManager(e *Engine, cfg SessionConfig) *sessionManager {
	return &sessionManager{
		eng:      e,
		cfg:      cfg.withDefaults(),
		sessions: make(map[string]*ingestSession),
		stopCh:   make(chan struct{}),
	}
}

// open admits and registers a new session. The spec must already have
// passed ingest.Build (model is its validated form); admission waits in
// the engine's bounded fair queue under the session's class exactly as a
// native submission would, honoring ctx's deadline.
func (sm *sessionManager) open(ctx context.Context, spec *ingest.Spec, model *ingest.Model) (*ingestSession, error) {
	sm.mu.Lock()
	if sm.draining {
		sm.mu.Unlock()
		return nil, fmt.Errorf("progressest: open session: %w", errDrainingSessions)
	}
	openCount := 0
	for _, s := range sm.order {
		s.mu.Lock()
		if s.state == sessionOpen {
			openCount++
		}
		s.mu.Unlock()
	}
	if openCount >= sm.cfg.MaxSessions {
		sm.mu.Unlock()
		return nil, errSessionLimit
	}
	sm.mu.Unlock()

	class := spec.Family
	if spec.Client != "" {
		class = class + "|" + spec.Client
	}
	slot, err := sm.eng.gate.AdmitClass(ctx, class)
	if err != nil {
		return nil, err
	}

	opts := sm.eng.opts
	if spec.UpdateEvery > 0 {
		opts.UpdateEvery = spec.UpdateEvery
	}
	opts = opts.withDefaults()
	opts.Pace = 0 // pacing slows the executor; sessions have none
	workload := spec.Workload
	if workload == "" {
		workload = "external"
	}
	mon, obs, err := newIngestMonitor(model.Plan, model.Pipes, workload, spec.Family, opts)
	if err != nil {
		slot.Release()
		return nil, err
	}
	batch := opts.UpdateEvery
	if opts.Unbatched {
		batch = 0
	}
	runner := ingest.NewRunner(model, obs, batch, sm.cfg.MaxObservations)

	s := &ingestSession{
		workload:    workload,
		family:      spec.Family,
		class:       class,
		shard:       slot.Shard,
		model:       mon.ModelVersion(),
		modelFamily: mon.ModelFamily(),
		state:       sessionOpen,
		lastSeen:    time.Now(),
		runner:      runner,
		obs:         obs,
		mon:         mon,
	}

	sm.mu.Lock()
	if sm.draining {
		// Drain began while we were admitting; back out.
		sm.mu.Unlock()
		mon.abortIngest(obs, errDrainingSessions)
		slot.Release()
		return nil, fmt.Errorf("progressest: open session: %w", errDrainingSessions)
	}
	sm.nextID++
	s.id = fmt.Sprintf("s%d", sm.nextID)
	sm.sessions[s.id] = s
	sm.order = append(sm.order, s)
	sm.evictLocked()
	sm.mu.Unlock()
	sm.opened.Add(1)

	// The slot is held for the session's whole life — an open session IS
	// a live query from the gate's point of view, so session load and
	// native load share one capacity model.
	go func() {
		<-mon.done
		slot.Release()
	}()
	// Mirror the daemon's per-query consumer: record the freshest
	// conflated update for progress reads.
	go func() {
		for u := range mon.Updates {
			s.progMu.Lock()
			s.latest = u
			s.seen = true
			s.progMu.Unlock()
		}
	}()
	sm.startJanitor()
	return s, nil
}

// errDrainingSessions reuses the engine's draining sentinel for the
// session-open path, so the HTTP layer's IsDraining mapping (503 +
// Retry-After) covers both refusals.
var errDrainingSessions = engine.ErrDraining

// lookup returns the session by id.
func (sm *sessionManager) lookup(id string) (*ingestSession, bool) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	s, ok := sm.sessions[id]
	return s, ok
}

// list snapshots the sessions in open order.
func (sm *sessionManager) list() []*ingestSession {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	return append([]*ingestSession(nil), sm.order...)
}

// apply ingests one observation batch into the session. The returned
// count is the snapshots the batch added. A validation error leaves the
// session open at its last consistent prefix (the client may correct and
// resend); only a Done batch that fully applies completes it.
func (sm *sessionManager) apply(s *ingestSession, b *ingest.Batch) (added int, state int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != sessionOpen {
		return 0, s.state, fmt.Errorf("session is %s: %w", sessionStateName(s.state), ingest.ErrCompleted)
	}
	s.lastSeen = time.Now() // any ingest traffic proves the engine alive
	before := s.runner.Observations()
	if err := s.runner.Apply(b); err != nil {
		s.rejected++
		sm.rejectedTotal.Add(1)
		return s.runner.Observations() - before, sessionOpen, err
	}
	added = s.runner.Observations() - before
	s.batches++
	s.ingested += int64(added)
	sm.batches.Add(1)
	sm.observations.Add(int64(added))
	if !b.Done {
		return added, sessionOpen, nil
	}
	tr, err := s.runner.Finish(b.Ends)
	if err != nil {
		// Only end-time validation fails here; the events above applied,
		// so the session stays open and a corrected Done batch may follow.
		s.rejected++
		sm.rejectedTotal.Add(1)
		return added, sessionOpen, err
	}
	s.mon.finishIngest(s.obs, tr)
	s.state = sessionCompleted
	s.runner = nil
	sm.completed.Add(1)
	return added, sessionCompleted, nil
}

// abort ends an open session without completion (DELETE /sessions/{id},
// or the drain path). Terminal sessions are left as they are.
func (sm *sessionManager) abort(s *ingestSession) int {
	return sm.terminate(s, sessionAborted, errSessionAborted, &sm.aborted)
}

func (sm *sessionManager) terminate(s *ingestSession, state int, cause error, counter *atomic.Int64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != sessionOpen {
		return s.state
	}
	s.mon.abortIngest(s.obs, cause)
	s.state = state
	s.runner = nil
	counter.Add(1)
	return state
}

// sweep expires open sessions idle past the TTL, as of now. The janitor
// calls it on a timer; tests call it directly.
func (sm *sessionManager) sweep(now time.Time) int {
	if sm.cfg.TTL < 0 {
		return 0
	}
	var idle []*ingestSession
	sm.mu.Lock()
	for _, s := range sm.order {
		s.mu.Lock()
		if s.state == sessionOpen && now.Sub(s.lastSeen) > sm.cfg.TTL {
			idle = append(idle, s)
		}
		s.mu.Unlock()
	}
	sm.mu.Unlock()
	for _, s := range idle {
		sm.terminate(s, sessionExpired, errSessionExpired, &sm.expired)
	}
	return len(idle)
}

// startJanitor starts the TTL sweeper on first use.
func (sm *sessionManager) startJanitor() {
	if sm.cfg.TTL < 0 {
		return
	}
	sm.janitor.Do(func() {
		interval := sm.cfg.TTL / 2
		if interval < 10*time.Millisecond {
			interval = 10 * time.Millisecond
		}
		if interval > 30*time.Second {
			interval = 30 * time.Second
		}
		go func() {
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-sm.stopCh:
					return
				case now := <-t.C:
					sm.sweep(now)
				}
			}
		}()
	})
}

// drain refuses new sessions and aborts the open ones, releasing their
// admission slots so the engine drain behind it can finish.
func (sm *sessionManager) drain() {
	sm.mu.Lock()
	sm.draining = true
	open := append([]*ingestSession(nil), sm.order...)
	sm.mu.Unlock()
	for _, s := range open {
		sm.abort(s)
	}
}

// stop halts the janitor (idempotent).
func (sm *sessionManager) stop() {
	sm.stopOnce.Do(func() { close(sm.stopCh) })
}

// evictLocked drops the oldest terminal sessions beyond the retention
// bound. sm.mu must be held.
func (sm *sessionManager) evictLocked() {
	if len(sm.order) <= sm.cfg.MaxKept {
		return
	}
	excess := len(sm.order) - sm.cfg.MaxKept
	kept := sm.order[:0]
	for _, s := range sm.order {
		s.mu.Lock()
		terminal := s.state != sessionOpen
		s.mu.Unlock()
		if excess > 0 && terminal {
			delete(sm.sessions, s.id)
			excess--
			continue
		}
		kept = append(kept, s)
	}
	sm.order = kept
}

// stats snapshots the session-layer counters for GET /engine/stats.
func (sm *sessionManager) stats() *IngestStats {
	st := &IngestStats{
		Opened:          sm.opened.Load(),
		Completed:       sm.completed.Load(),
		Expired:         sm.expired.Load(),
		Aborted:         sm.aborted.Load(),
		Batches:         sm.batches.Load(),
		RejectedBatches: sm.rejectedTotal.Load(),
		Observations:    sm.observations.Load(),
		TTLSeconds:      sm.cfg.TTL.Seconds(),
	}
	sm.mu.Lock()
	for _, s := range sm.order {
		s.mu.Lock()
		if s.state == sessionOpen {
			st.OpenSessions++
		}
		s.mu.Unlock()
	}
	sm.mu.Unlock()
	return st
}
