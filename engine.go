package progressest

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"progressest/internal/engine"
	"progressest/internal/qos"
)

// EngineConfig sizes the sharded execution engine.
type EngineConfig struct {
	// Shards is the number of Workload replicas the pool starts with
	// (default 1, clamped into [MinShards, MaxShards]). Replicas share
	// the immutable database and query set, so extra shards cost planner
	// state, not a database copy.
	Shards int
	// MaxLivePerShard bounds the queries executing concurrently on one
	// replica (default 64); the engine-wide live bound is
	// active shards × MaxLivePerShard.
	MaxLivePerShard int
	// QueueDepth bounds the admissions waiting for a slot once every
	// replica is at capacity; 0 disables queueing, so a saturated engine
	// rejects immediately (IsSaturated).
	QueueDepth int
	// RouteByFamily serves each query with the selector version trained
	// for its workload family (falling back to the global model) when the
	// monitor options carry a Learning loop.
	RouteByFamily bool

	// MinShards and MaxShards bound runtime resizing (both default to the
	// initial pool size, i.e. a fixed pool; MinShards wins when they
	// conflict). When MaxShards > MinShards and autoscaling is not
	// disabled, a background controller grows the pool while the
	// admission queue runs hot and shrinks it back while replicas idle —
	// see the Autoscale* knobs. Resize is available either way.
	MinShards int
	MaxShards int
	// DisableAutoscale keeps the pool at its initial size unless Resize
	// (or POST /engine/resize) moves it.
	DisableAutoscale bool
	// AutoscaleInterval is the controller's poll period (default 2s).
	AutoscaleInterval time.Duration
	// AutoscaleGrowPolls is the number of consecutive polls the admission
	// queue must be more than half full (or rejecting) before one shard
	// is added (default 3); AutoscaleShrinkPolls the consecutive polls
	// with an empty queue and an idle replica before one is drained
	// (default 10). AutoscaleCooldown is the minimum gap between two
	// resizes (default 3× the interval). The hysteresis exists so one
	// bursty poll never flaps the pool.
	AutoscaleGrowPolls   int
	AutoscaleShrinkPolls int
	AutoscaleCooldown    time.Duration

	// QoSWeights maps workload families to their weighted-fair-queueing
	// admission weight (default 1 each). Queued admissions are scheduled
	// per class — the query's family, suffixed "|client" when the
	// submission carries a client tag, which inherits the family weight
	// — so under saturation every class converges to at least its weight
	// share of the admissions instead of one hot family monopolizing
	// every replica.
	QoSWeights map[string]int
	// ClassQueueDepth bounds one class's share of the admission queue
	// (default QueueDepth: no per-class tightening).
	ClassQueueDepth int
	// SLOQueueWaitP99, when positive, declares the latency SLO the
	// autoscaler defends: a sustained breach of the windowed p99 queue
	// wait counts as a hot poll, so the pool grows BEFORE the queue
	// fills and admissions start being rejected.
	SLOQueueWaitP99 time.Duration
	// DeadlineAdmission sheds a submission whose remaining deadline
	// cannot cover the predicted queue wait with an IsDeadlineShed error
	// immediately, instead of letting it occupy a queue slot it is
	// doomed to time out of.
	DeadlineAdmission bool
}

// ParseQoSWeights parses an operator weight spec of the form
// "tpch=9,tpcds=1" (the cmd/progressd -qos-weights flag) into the
// EngineConfig.QoSWeights map. Weights must be positive integers.
func ParseQoSWeights(s string) (map[string]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	out := make(map[string]int)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		name = strings.TrimSpace(name)
		w, err := strconv.Atoi(strings.TrimSpace(val))
		if !ok || name == "" || err != nil || w < 1 {
			return nil, fmt.Errorf("progressest: qos weight %q: want family=positive-integer", part)
		}
		out[name] = w
	}
	return out, nil
}

// Engine is the sharded execution engine: a pool of Workload replicas
// behind one admission gate (bounded queue, per-replica live bound,
// least-loaded dispatch), sharing one Learning loop — every replica
// harvests into the same corpus and serves from the same hot-swapped
// model registry, optionally routed per workload family. The pool is
// elastic: Resize grows and shrinks it at runtime, and an optional
// autoscaler drives Resize from the gate's own queue-depth and rejection
// signals. It is the serving core progressd wraps in HTTP.
type Engine struct {
	opts MonitorOptions
	gate *engine.Gate
	// replicas is the slot-indexed replica pool, published atomically so
	// the Start hot path never takes the resize lock. The slice only ever
	// grows (shrink marks gate slots draining, it never compacts), and a
	// slot becomes dispatchable only AFTER its replica is published, so
	// indexing the freshest slice with a granted Slot.Shard is always in
	// bounds.
	replicas atomic.Pointer[[]*Workload]
	// resizeMu serialises resizes: replica growth and the gate resize
	// must be one atomic step from other resizers' point of view.
	resizeMu sync.Mutex

	minShards, maxShards int
	sloP99               time.Duration
	deadline             bool
	scaler               *engine.Autoscaler // nil with autoscaling off
}

// NewEngine builds an engine of cfg.Shards replicas of w. The monitor
// options apply to every query the engine starts; cfg.RouteByFamily
// switches them to per-family model routing. Defaulting of the gate
// bounds (per-shard live limit, queue depth) is owned by the internal
// gate; the initial pool size is clamped into [MinShards, MaxShards].
func NewEngine(w *Workload, cfg EngineConfig, opts MonitorOptions) *Engine {
	opts = opts.withDefaults()
	// Family routing needs a model registry to route over; without a
	// Learning loop the flag would only make Stats report a capability
	// that cannot act.
	opts.RouteByFamily = (opts.RouteByFamily || cfg.RouteByFamily) && opts.Learning != nil
	shards := cfg.Shards
	if shards <= 0 {
		shards = 1
	}
	minShards := cfg.MinShards
	if minShards < 1 {
		minShards = shards
	}
	maxShards := cfg.MaxShards
	if maxShards < 1 {
		// Unset defaults to the requested pool size, NOT to MinShards —
		// `Shards: 10, MinShards: 2` means "start at 10, allowed to shrink
		// to 2", not a 2-shard pool.
		maxShards = shards
	}
	if maxShards < minShards {
		maxShards = minShards
	}
	if shards < minShards {
		shards = minShards
	}
	if shards > maxShards {
		shards = maxShards
	}
	gate := engine.NewGate(engine.Config{
		Shards:            shards,
		MaxLivePerShard:   cfg.MaxLivePerShard,
		QueueDepth:        cfg.QueueDepth,
		Weights:           cfg.QoSWeights,
		ClassQueueDepth:   cfg.ClassQueueDepth,
		DeadlineAdmission: cfg.DeadlineAdmission,
	})
	replicas := make([]*Workload, shards)
	replicas[0] = w
	for i := 1; i < shards; i++ {
		replicas[i] = w.replica()
	}
	e := &Engine{
		opts:      opts,
		gate:      gate,
		minShards: minShards,
		maxShards: maxShards,
		sloP99:    cfg.SLOQueueWaitP99,
		deadline:  cfg.DeadlineAdmission,
	}
	e.replicas.Store(&replicas)
	if !cfg.DisableAutoscale && maxShards > minShards {
		e.scaler = engine.NewAutoscaler(engine.AutoscalerConfig{
			Min:             minShards,
			Max:             maxShards,
			Interval:        cfg.AutoscaleInterval,
			GrowAfter:       cfg.AutoscaleGrowPolls,
			ShrinkAfter:     cfg.AutoscaleShrinkPolls,
			Cooldown:        cfg.AutoscaleCooldown,
			SLOQueueWaitP99: cfg.SLOQueueWaitP99,
		}, gate.Stats, func(from, to int, reason string) error {
			return e.resize(from, to, "autoscale", reason)
		})
		e.scaler.Start()
	}
	return e
}

// Workload returns the engine's primary replica (slot 0) — the handle
// for query metadata like NumQueries and QueryText. Slot 0 can be
// drained out of dispatch by a shrink, but its workload handle stays
// valid for the engine's life.
func (e *Engine) Workload() *Workload { return (*e.replicas.Load())[0] }

// NumShards returns the number of active (dispatchable) replicas right
// now; a resize changes it.
func (e *Engine) NumShards() int { return e.gate.NumShards() }

// learning returns the shared learning loop, or nil.
func (e *Engine) learning() *Learning { return e.opts.Learning }

// maxResizePool bounds any requested pool size: a replica costs real
// memory (planner state), so an absurd operator request must fail fast
// instead of allocating its way to an OOM. A configured MaxShards above
// it raises the bound.
const maxResizePool = 256

// errResizeInvalid marks a resize request refused by validation (the
// HTTP layer's 400, vs. IsDraining's 409).
var errResizeInvalid = errors.New("invalid resize")

// Resize sets the active replica count to n (operator override of the
// autoscaler; POST /engine/resize in the daemon). Grow publishes fresh
// replicas and then widens the gate, admitting queued work immediately;
// shrink marks the emptiest replicas draining — they finish their live
// queries, receive nothing new, and are reaped once empty, keeping their
// lifetime counters in Stats. n may land outside [MinShards, MaxShards]
// (the bounds steer the autoscaler, not the operator, whose override
// also restarts the controller's hysteresis) but never above
// max(256, MaxShards) — each replica costs planner state. Resizing fails
// with an IsDraining error once Drain began.
func (e *Engine) Resize(n int) error {
	return e.resize(-1, n, "operator", "operator resize request")
}

// resizeCap is the largest acceptable pool size.
func (e *Engine) resizeCap() int {
	if e.maxShards > maxResizePool {
		return e.maxShards
	}
	return maxResizePool
}

// resize applies one pool resize. expectFrom >= 0 makes it conditional
// on the active count still being expectFrom (the autoscaler's
// compare-and-swap against concurrent operator overrides); -1 applies
// unconditionally.
func (e *Engine) resize(expectFrom, n int, source, reason string) error {
	if n < 1 {
		return fmt.Errorf("progressest: %w: %d shards, need at least 1", errResizeInvalid, n)
	}
	if bound := e.resizeCap(); n > bound {
		return fmt.Errorf("progressest: %w: %d shards exceeds the pool cap %d", errResizeInvalid, n, bound)
	}
	e.resizeMu.Lock()
	defer e.resizeMu.Unlock()
	gs := e.gate.Stats()
	// Fail fast BEFORE allocating replicas — a refusal the gate would
	// issue anyway (draining, stale CAS) must not cost a pool's worth of
	// planner state. The gate re-checks both authoritatively under its
	// own lock; losing that race just means the rollback below fires.
	if gs.Draining {
		return engine.ErrDraining
	}
	if expectFrom >= 0 && gs.ActiveShards != expectFrom {
		return engine.ErrResizeConflict
	}
	// Publish replicas for every slot the gate could make dispatchable
	// BEFORE widening it, because queued waiters are granted inside
	// Resize itself. The gate grows by reactivating draining slots
	// (replica still present — pruning only touches slots observed
	// reaped, under this same mutex), then resurrecting reaped slots
	// lowest-index first (replica was reclaimed on reap, rebuild it),
	// then appending. A draining slot can reap between this snapshot
	// and the gate's commit, shifting which reaped slots the gate picks,
	// so provision the reachable SUPERSET — the first `need` reaped
	// slots with no draining discount (any commit-time pick is provably
	// within it) — rather than mirroring the gate's exact selection; the
	// prune after a successful resize reclaims whatever went unused. A
	// deep-shrunk pool growing by one still rebuilds one replica, not
	// every reclaimed slot.
	old := *e.replicas.Load()
	grew := false
	if need := n - gs.ActiveShards; need > 0 {
		size := len(old)
		if n > size {
			size = n
		}
		grown := make([]*Workload, size)
		copy(grown, old)
		left := need
		for i, sh := range gs.Shards {
			if left == 0 {
				break
			}
			if sh.State == engine.ShardReaped {
				if grown[i] == nil {
					grown[i] = old[0].replica()
					grew = true
				}
				left--
			}
		}
		for i := len(gs.Shards); left > 0 && i < len(grown); i++ {
			grown[i] = old[0].replica()
			grew = true
			left--
		}
		if grew {
			e.replicas.Store(&grown)
		}
	}
	var err error
	if expectFrom >= 0 {
		err = e.gate.ResizeFrom(expectFrom, n, source, reason)
	} else {
		err = e.gate.Resize(n, source, reason)
	}
	if err != nil {
		// None of the fresh slots became dispatchable; drop them again.
		if grew {
			e.replicas.Store(&old)
		}
		return err
	}
	e.pruneReapedLocked()
	return nil
}

// pruneReapedLocked reclaims the planner state of reaped slots — the
// point of shrinking an idle pool — by dropping their replicas from the
// published slice, and returns the gate snapshot it judged against so
// the caller need not take a second one. resizeMu must be held: it
// excludes the resize path that resurrects reaped slots, and a slot
// observed reaped here cannot be granted work (the gate only grants to
// active slots, and a granted slot has live > 0 until released, so it
// can never read as reaped). Slot 0 is never pruned: it is the engine's
// primary Workload handle and the template future replicas are cloned
// from.
func (e *Engine) pruneReapedLocked() engine.Stats {
	gs := e.gate.Stats()
	old := *e.replicas.Load()
	var pruned []*Workload
	for i, sh := range gs.Shards {
		if i == 0 || i >= len(old) || old[i] == nil || sh.State != engine.ShardReaped {
			continue
		}
		if pruned == nil {
			pruned = append([]*Workload(nil), old...)
		}
		pruned[i] = nil
	}
	if pruned != nil {
		e.replicas.Store(&pruned)
	}
	return gs
}

// Start admits query i through the gate — waiting in the bounded fair
// queue under the query family's admission class when every replica is
// at capacity — then plans and executes it on the least-loaded replica,
// streaming progress through the returned Monitor (whose Shard reports
// the placement). It fails with an IsSaturated error when the queue is
// full, an IsDeadlineShed error when deadline admission sheds it, an
// IsDraining error after Drain began, or ctx's error if it expires
// while queued.
func (e *Engine) Start(ctx context.Context, i int) (*Monitor, error) {
	return e.StartTagged(ctx, i, "")
}

// StartTagged is Start with a caller-supplied client tag: a non-empty
// client refines the admission class from the query's family to
// "family|client" (inheriting the family's weight), so fairness holds
// between a family's clients too — one flooding client cannot starve
// the rest of its own family. Monitor.Class reports the class used.
func (e *Engine) StartTagged(ctx context.Context, i int, client string) (*Monitor, error) {
	w := e.Workload()
	if n := w.NumQueries(); i < 0 || i >= n {
		return nil, fmt.Errorf("progressest: query index %d out of range [0,%d)", i, n)
	}
	class := w.QueryFamily(i)
	if client != "" {
		class = class + "|" + client
	}
	slot, err := e.gate.AdmitClass(ctx, class)
	if err != nil {
		return nil, err
	}
	m, err := (*e.replicas.Load())[slot.Shard].Start(i, e.opts)
	if err != nil {
		slot.Release()
		return nil, err
	}
	m.shard = slot.Shard
	m.class = class
	go func() {
		<-m.done
		slot.Release()
	}()
	return m, nil
}

// RetryAfterHint suggests how long a rejected client should back off
// before resubmitting: the gate-wide windowed p90 queue wait (0 before
// any admission was observed).
func (e *Engine) RetryAfterHint() time.Duration { return e.gate.QueueWaitHint() }

// Drain stops the autoscaler and admission — queued submissions fail
// immediately with an IsDraining error instead of stranding — and waits
// until every in-flight query finishes or ctx expires. New Start calls
// fail for the rest of the engine's life.
func (e *Engine) Drain(ctx context.Context) error {
	if e.scaler != nil {
		e.scaler.Stop()
	}
	return e.gate.Drain(ctx)
}

// ShardStats is one replica's live/lifetime admission counters.
type ShardStats struct {
	// Shard is the replica index.
	Shard int `json:"shard"`
	// Live is the number of queries executing on the replica right now.
	Live int `json:"live"`
	// Admitted counts the queries ever dispatched to the replica; a
	// reaped replica keeps its count.
	Admitted int64 `json:"admitted"`
	// State is the replica's pool state: "active" (dispatchable),
	// "draining" (shrink-marked: finishing live queries, receiving
	// nothing new) or "reaped" (out of the pool; counters retained).
	State string `json:"state"`
}

// ResizeEvent is one applied pool resize (the GET /engine/stats
// "resize_events" entries, newest last, bounded history).
type ResizeEvent struct {
	// At is when the resize was applied.
	At time.Time `json:"at"`
	// From and To are the active shard counts before and after.
	From int `json:"from"`
	To   int `json:"to"`
	// Source is who asked: "autoscale" or "operator".
	Source string `json:"source"`
	// Reason is the requester's rationale.
	Reason string `json:"reason,omitempty"`
}

// AutoscaleDecision is the controller's most recent poll verdict.
type AutoscaleDecision struct {
	At     time.Time `json:"at"`
	Action string    `json:"action"` // "grow", "shrink" or "hold"
	From   int       `json:"from"`
	To     int       `json:"to"`
	Reason string    `json:"reason,omitempty"`
}

// LatencyStats is one windowed latency distribution's wire form:
// nearest-rank percentiles over the most recent Samples observations,
// in milliseconds.
type LatencyStats struct {
	// Samples is the number of windowed observations behind the
	// percentiles; Total counts lifetime observations including
	// rolled-off ones.
	Samples int   `json:"samples"`
	Total   int64 `json:"total"`
	// P50MS, P90MS and P99MS are the nearest-rank percentiles.
	P50MS float64 `json:"p50_ms"`
	P90MS float64 `json:"p90_ms"`
	P99MS float64 `json:"p99_ms"`
}

func latencyStats(s qos.Summary) LatencyStats {
	const ms = float64(time.Millisecond)
	return LatencyStats{
		Samples: s.Samples,
		Total:   s.Total,
		P50MS:   float64(s.P50) / ms,
		P90MS:   float64(s.P90) / ms,
		P99MS:   float64(s.P99) / ms,
	}
}

// ClassStats is one admission class's QoS accounting in GET
// /engine/stats: its fair-queueing weight, queue occupancy, lifetime
// admission/rejection/shed counters, and windowed latency percentiles.
type ClassStats struct {
	// Class is the admission class: the workload family, optionally
	// suffixed "|client" for client-tagged submissions.
	Class string `json:"class"`
	// Weight is the class's weighted-fair-queueing weight.
	Weight int `json:"weight"`
	// Queued is the number of admissions of this class waiting right
	// now.
	Queued int `json:"queued"`
	// Admitted, Rejected and Shed are lifetime counters: grants,
	// queue-overflow rejections, and deadline-admission sheds.
	Admitted int64 `json:"admitted"`
	Rejected int64 `json:"rejected"`
	Shed     int64 `json:"shed"`
	// QueueWait is the windowed Admit-to-grant latency (fast-path
	// admissions record their ~0 wait too, so the percentiles cover all
	// admissions); Latency the windowed admission-to-done latency
	// (Admit entry to release, queue wait included).
	QueueWait LatencyStats `json:"queue_wait"`
	Latency   LatencyStats `json:"latency"`
}

// EngineStats is a point-in-time snapshot of the engine (the GET
// /engine/stats wire form).
type EngineStats struct {
	// Shards holds the per-replica counters, including draining and
	// reaped replicas (whose lifetime counters survive a shrink).
	Shards []ShardStats `json:"shards"`
	// CurrentShards is the active (dispatchable) replica count;
	// MinShards and MaxShards are the autoscaler's bounds.
	CurrentShards int `json:"current_shards"`
	MinShards     int `json:"min_shards"`
	MaxShards     int `json:"max_shards"`
	// Autoscale reports whether the load-driven controller is running.
	Autoscale bool `json:"autoscale"`
	// Queued is the number of admissions waiting for a slot; QueueDepth
	// is the queue's bound.
	Queued     int `json:"queued"`
	QueueDepth int `json:"queue_depth"`
	// MaxLivePerShard is the per-replica live bound.
	MaxLivePerShard int `json:"max_live_per_shard"`
	// Admitted and Rejected are lifetime engine-wide counters; ShedTotal
	// counts submissions deadline admission shed before they could occupy
	// a queue slot (always 0 with DeadlineAdmission off).
	Admitted  int64 `json:"admitted"`
	Rejected  int64 `json:"rejected"`
	ShedTotal int64 `json:"shed_total"`
	// QueueWait is the gate-wide windowed Admit-to-grant latency across
	// every class (the distribution the SLOQueueWaitP99 autoscaler signal
	// and Retry-After hints are computed from).
	QueueWait LatencyStats `json:"queue_wait"`
	// Classes is the per-admission-class QoS accounting, sorted by class
	// name (empty before the first admission).
	Classes []ClassStats `json:"classes,omitempty"`
	// SLOQueueWaitP99MS is the declared p99 queue-wait SLO in
	// milliseconds (0: none declared); DeadlineAdmission reports whether
	// deadline-aware shedding is on.
	SLOQueueWaitP99MS float64 `json:"slo_queue_wait_p99_ms,omitempty"`
	DeadlineAdmission bool    `json:"deadline_admission"`
	// Resizes counts applied pool resizes; ResizeEvents is the bounded
	// event history, oldest first.
	Resizes      int64         `json:"resizes"`
	ResizeEvents []ResizeEvent `json:"resize_events,omitempty"`
	// LastDecision is the autoscaler's most recent poll verdict (absent
	// before its first poll or with autoscaling off).
	LastDecision *AutoscaleDecision `json:"last_decision,omitempty"`
	// Draining is true once Drain began.
	Draining bool `json:"draining"`
	// RouteByFamily reports whether per-family model routing is on.
	RouteByFamily bool `json:"route_by_family"`
	// Ingest is the external counter-ingestion session accounting, when
	// the stats come from a Server with the session layer attached.
	Ingest *IngestStats `json:"ingest,omitempty"`
}

// IngestStats is the external estimation-session accounting inside GET
// /engine/stats: live and lifetime session counts plus ingestion volume.
type IngestStats struct {
	// OpenSessions is the number of sessions open right now (each holds
	// an engine admission slot).
	OpenSessions int `json:"open_sessions"`
	// Opened, Completed, Expired and Aborted are lifetime counters over
	// the session state machine.
	Opened    int64 `json:"opened"`
	Completed int64 `json:"completed"`
	Expired   int64 `json:"expired"`
	Aborted   int64 `json:"aborted"`
	// Batches and Observations count successfully ingested observation
	// batches and the counter snapshots they carried; RejectedBatches the
	// batches refused by validation (out-of-order times, counter
	// regressions, retention limits).
	Batches         int64 `json:"batches"`
	RejectedBatches int64 `json:"rejected_batches"`
	Observations    int64 `json:"observations"`
	// TTLSeconds is the idle-session expiry in seconds (negative:
	// disabled).
	TTLSeconds float64 `json:"ttl_seconds"`
}

// Stats snapshots the engine's admission counters.
func (e *Engine) Stats() EngineStats {
	// Opportunistically reclaim the replicas of shards reaped since the
	// last resize — a loaded shard drains first and reaps on its final
	// release, outside any resize call — reusing the prune's own gate
	// snapshot for the report. TryLock: a stats poll must never wait
	// behind a resize building replicas.
	var gs engine.Stats
	if e.resizeMu.TryLock() {
		gs = e.pruneReapedLocked()
		e.resizeMu.Unlock()
	} else {
		gs = e.gate.Stats()
	}
	st := EngineStats{
		Shards:          make([]ShardStats, len(gs.Shards)),
		CurrentShards:   gs.ActiveShards,
		MinShards:       e.minShards,
		MaxShards:       e.maxShards,
		Autoscale:       e.scaler != nil,
		Queued:          gs.Queued,
		QueueDepth:      gs.QueueDepth,
		MaxLivePerShard: gs.MaxLivePerShard,
		Admitted:        gs.Admitted,
		Rejected:        gs.Rejected,
		ShedTotal:       gs.Shed,
		QueueWait:       latencyStats(gs.QueueWait),
		Resizes:         gs.Resizes,
		Draining:        gs.Draining,
		RouteByFamily:   e.opts.RouteByFamily,

		SLOQueueWaitP99MS: float64(e.sloP99) / float64(time.Millisecond),
		DeadlineAdmission: e.deadline,
	}
	for i, sh := range gs.Shards {
		st.Shards[i] = ShardStats(sh)
	}
	for _, c := range gs.Classes {
		st.Classes = append(st.Classes, ClassStats{
			Class:     c.Class,
			Weight:    c.Weight,
			Queued:    c.Queued,
			Admitted:  c.Admitted,
			Rejected:  c.Rejected,
			Shed:      c.Shed,
			QueueWait: latencyStats(c.QueueWait),
			Latency:   latencyStats(c.Latency),
		})
	}
	for _, ev := range gs.ResizeEvents {
		st.ResizeEvents = append(st.ResizeEvents, ResizeEvent(ev))
	}
	if e.scaler != nil {
		if d, ok := e.scaler.Last(); ok {
			dec := AutoscaleDecision(d)
			st.LastDecision = &dec
		}
	}
	return st
}

// IsSaturated reports whether err means the engine rejected a query
// because every replica is at capacity and the admission queue is full —
// the HTTP layer's 429.
func IsSaturated(err error) bool { return errors.Is(err, engine.ErrSaturated) }

// IsDeadlineShed reports whether err means deadline-aware admission shed
// the query because its remaining deadline could not cover the predicted
// queue wait — the HTTP layer's 429 with reason "deadline_shed". Use
// errors.As with *engine.DeadlineShedError for the prediction behind the
// decision.
func IsDeadlineShed(err error) bool { return errors.Is(err, engine.ErrDeadlineShed) }

// IsDraining reports whether err means the engine is shutting down and no
// longer admits queries (nor resizes) — the HTTP layer's 503 (and the
// resize endpoint's 409).
func IsDraining(err error) bool { return errors.Is(err, engine.ErrDraining) }
