package progressest

import (
	"context"
	"errors"
	"fmt"

	"progressest/internal/engine"
)

// EngineConfig sizes the sharded execution engine.
type EngineConfig struct {
	// Shards is the number of Workload replicas in the pool (default 1).
	// Replicas share the immutable database and query set, so extra
	// shards cost planner state, not a database copy.
	Shards int
	// MaxLivePerShard bounds the queries executing concurrently on one
	// replica (default 64); the engine-wide live bound is
	// Shards × MaxLivePerShard.
	MaxLivePerShard int
	// QueueDepth bounds the admissions waiting for a slot once every
	// replica is at capacity; 0 disables queueing, so a saturated engine
	// rejects immediately (IsSaturated).
	QueueDepth int
	// RouteByFamily serves each query with the selector version trained
	// for its workload family (falling back to the global model) when the
	// monitor options carry a Learning loop.
	RouteByFamily bool
}

// Engine is the sharded execution engine: a pool of Workload replicas
// behind one admission gate (bounded queue, per-replica live bound,
// least-loaded dispatch), sharing one Learning loop — every replica
// harvests into the same corpus and serves from the same hot-swapped
// model registry, optionally routed per workload family. It is the
// serving core progressd wraps in HTTP.
type Engine struct {
	opts     MonitorOptions
	replicas []*Workload
	gate     *engine.Gate
}

// NewEngine builds an engine of cfg.Shards replicas of w. The monitor
// options apply to every query the engine starts; cfg.RouteByFamily
// switches them to per-family model routing. Defaulting of the gate
// bounds (shards, per-shard live limit, queue depth) is owned by the
// internal gate.
func NewEngine(w *Workload, cfg EngineConfig, opts MonitorOptions) *Engine {
	opts = opts.withDefaults()
	// Family routing needs a model registry to route over; without a
	// Learning loop the flag would only make Stats report a capability
	// that cannot act.
	opts.RouteByFamily = (opts.RouteByFamily || cfg.RouteByFamily) && opts.Learning != nil
	gate := engine.NewGate(engine.Config{
		Shards:          cfg.Shards,
		MaxLivePerShard: cfg.MaxLivePerShard,
		QueueDepth:      cfg.QueueDepth,
	})
	shards := gate.NumShards() // cfg.Shards after the gate's defaulting
	replicas := make([]*Workload, shards)
	replicas[0] = w
	for i := 1; i < shards; i++ {
		replicas[i] = w.replica()
	}
	return &Engine{opts: opts, replicas: replicas, gate: gate}
}

// Workload returns the engine's primary replica (shard 0) — the handle
// for query metadata like NumQueries and QueryText.
func (e *Engine) Workload() *Workload { return e.replicas[0] }

// NumShards returns the replica count.
func (e *Engine) NumShards() int { return len(e.replicas) }

// learning returns the shared learning loop, or nil.
func (e *Engine) learning() *Learning { return e.opts.Learning }

// Start admits query i through the gate — waiting in the bounded
// admission queue when every replica is at capacity — then plans and
// executes it on the least-loaded replica, streaming progress through the
// returned Monitor (whose Shard reports the placement). It fails with an
// IsSaturated error when the queue is full, an IsDraining error after
// Drain began, or ctx's error if it expires while queued.
func (e *Engine) Start(ctx context.Context, i int) (*Monitor, error) {
	if i < 0 || i >= e.replicas[0].NumQueries() {
		return nil, fmt.Errorf("progressest: query index %d out of range [0,%d)", i, e.replicas[0].NumQueries())
	}
	slot, err := e.gate.Admit(ctx)
	if err != nil {
		return nil, err
	}
	m, err := e.replicas[slot.Shard].Start(i, e.opts)
	if err != nil {
		slot.Release()
		return nil, err
	}
	m.shard = slot.Shard
	go func() {
		<-m.done
		slot.Release()
	}()
	return m, nil
}

// Drain stops admission — queued submissions fail immediately with an
// IsDraining error instead of stranding — and waits until every in-flight
// query finishes or ctx expires. New Start calls fail for the rest of the
// engine's life.
func (e *Engine) Drain(ctx context.Context) error { return e.gate.Drain(ctx) }

// ShardStats is one replica's live/lifetime admission counters.
type ShardStats struct {
	// Shard is the replica index.
	Shard int `json:"shard"`
	// Live is the number of queries executing on the replica right now.
	Live int `json:"live"`
	// Admitted counts the queries ever dispatched to the replica.
	Admitted int64 `json:"admitted"`
}

// EngineStats is a point-in-time snapshot of the engine (the GET
// /engine/stats wire form).
type EngineStats struct {
	// Shards holds the per-replica counters.
	Shards []ShardStats `json:"shards"`
	// Queued is the number of admissions waiting for a slot; QueueDepth
	// is the queue's bound.
	Queued     int `json:"queued"`
	QueueDepth int `json:"queue_depth"`
	// MaxLivePerShard is the per-replica live bound.
	MaxLivePerShard int `json:"max_live_per_shard"`
	// Admitted and Rejected are lifetime engine-wide counters.
	Admitted int64 `json:"admitted"`
	Rejected int64 `json:"rejected"`
	// Draining is true once Drain began.
	Draining bool `json:"draining"`
	// RouteByFamily reports whether per-family model routing is on.
	RouteByFamily bool `json:"route_by_family"`
}

// Stats snapshots the engine's admission counters.
func (e *Engine) Stats() EngineStats {
	gs := e.gate.Stats()
	st := EngineStats{
		Shards:          make([]ShardStats, len(gs.Shards)),
		Queued:          gs.Queued,
		QueueDepth:      gs.QueueDepth,
		MaxLivePerShard: gs.MaxLivePerShard,
		Admitted:        gs.Admitted,
		Rejected:        gs.Rejected,
		Draining:        gs.Draining,
		RouteByFamily:   e.opts.RouteByFamily,
	}
	for i, sh := range gs.Shards {
		st.Shards[i] = ShardStats(sh)
	}
	return st
}

// IsSaturated reports whether err means the engine rejected a query
// because every replica is at capacity and the admission queue is full —
// the HTTP layer's 429.
func IsSaturated(err error) bool { return errors.Is(err, engine.ErrSaturated) }

// IsDraining reports whether err means the engine is shutting down and no
// longer admits queries — the HTTP layer's 503.
func IsDraining(err error) bool { return errors.Is(err, engine.ErrDraining) }
