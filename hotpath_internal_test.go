package progressest

import (
	"testing"

	"progressest/internal/exec"
	"progressest/internal/progress"
)

// collectUpdates drives a monitorObserver through a synchronous execution
// of query qi, capturing the exact update stream through the deliver test
// hook (no conflation, no goroutine), in batched or per-snapshot delivery
// mode. The final Done update is included.
func collectUpdates(t testing.TB, w *Workload, qi int, sel *Selector, unbatched bool, execOpts exec.Options) []ProgressUpdate {
	t.Helper()
	const every = 4
	obs, pq := newTestObserver(t, w, qi, every)
	if sel != nil {
		obs.sel = sel.inner
	}
	var got []ProgressUpdate
	obs.deliver = func(u ProgressUpdate) {
		u.Pipelines = append([]PipelineProgress(nil), u.Pipelines...)
		got = append(got, u)
	}
	execOpts.Observer = obs
	if !unbatched {
		execOpts.SnapshotBatch = every
	}
	exec.RunDecomposed(w.inner.DB, pq.plan, pq.pipes, execOpts)
	obs.emit(true)
	return got
}

// newTestObserver builds a monitorObserver exactly as Start does, minus
// the channel plumbing.
func newTestObserver(t testing.TB, w *Workload, qi, every int) (*monitorObserver, *plannedQuery) {
	t.Helper()
	pq, err := w.planned(qi)
	if err != nil {
		t.Fatal(err)
	}
	view := progress.NewOnlineView(pq.plan, pq.pipes)
	view.Reserve = exec.DefaultTargetObservations + 1
	np := len(pq.pipes.Pipelines)
	return &monitorObserver{
		view:      view,
		every:     every,
		choice:    make([]progress.Kind, np),
		nextMark:  make([]int, np),
		obsBefore: make([]int, np),
		ch:        make(chan ProgressUpdate, 1),
	}, pq
}

// TestBatchedMonitorMatchesUnbatched is the monitor-level equivalence
// proof of the batched hot path: across every dataset family — with a
// fixed estimator and with a trained selector re-picking at marker
// crossings, and under forced thinning — the delivered update stream is
// bit-identical between batched and per-snapshot delivery.
func TestBatchedMonitorMatchesUnbatched(t *testing.T) {
	var sel *Selector
	{
		tw, err := Open(Config{Dataset: TPCH, Queries: 4, Scale: 0.08, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		examples, err := tw.Harvest()
		if err != nil {
			t.Fatal(err)
		}
		if sel, err = TrainSelector(examples, SelectorConfig{Trees: 24}); err != nil {
			t.Fatal(err)
		}
	}
	for _, ds := range []Dataset{TPCH, TPCDS, Real1, Real2} {
		t.Run(ds.String(), func(t *testing.T) {
			w, err := Open(Config{Dataset: ds, Queries: 4, Scale: 0.08, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			for qi := 0; qi < w.NumQueries(); qi++ {
				for _, s := range []*Selector{nil, sel} {
					for _, execOpts := range []exec.Options{
						{},
						{TargetObservations: 900, MaxObservations: 64}, // forces thinning
					} {
						batched := collectUpdates(t, w, qi, s, false, execOpts)
						unbatched := collectUpdates(t, w, qi, s, true, execOpts)
						assertSameUpdates(t, qi, batched, unbatched)
					}
				}
			}
		})
	}
}

func assertSameUpdates(t *testing.T, qi int, a, b []ProgressUpdate) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("query %d: %d batched updates, %d unbatched", qi, len(a), len(b))
	}
	for i := range a {
		ua, ub := a[i], b[i]
		if ua.Seq != ub.Seq || ua.Time != ub.Time || ua.Query != ub.Query ||
			ua.Done != ub.Done || ua.TrueProgress != ub.TrueProgress {
			t.Fatalf("query %d update %d diverges:\nbatched   %+v\nunbatched %+v", qi, i, ua, ub)
		}
		if len(ua.Pipelines) != len(ub.Pipelines) {
			t.Fatalf("query %d update %d: pipeline counts diverge", qi, i)
		}
		for p := range ua.Pipelines {
			if ua.Pipelines[p] != ub.Pipelines[p] {
				t.Fatalf("query %d update %d: pipeline %d diverges:\nbatched   %+v\nunbatched %+v",
					qi, i, p, ua.Pipelines[p], ub.Pipelines[p])
			}
		}
	}
}

// TestPlanCacheReusesPlans checks the per-workload plan cache: repeated
// runs of one query share the cached plan and decomposition, and an
// engine replica starts with its own empty cache.
func TestPlanCacheReusesPlans(t *testing.T) {
	w, err := Open(Config{Dataset: TPCH, Queries: 2, Scale: 0.08, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	pq1, err := w.planned(0)
	if err != nil {
		t.Fatal(err)
	}
	pq2, err := w.planned(0)
	if err != nil {
		t.Fatal(err)
	}
	if pq1 != pq2 || pq1.plan != pq2.plan || pq1.pipes != pq2.pipes {
		t.Fatal("second planning of the same query did not hit the cache")
	}
	if _, err := w.Run(0); err != nil {
		t.Fatal(err)
	}
	if pq3, _ := w.planned(0); pq3 != pq1 {
		t.Fatal("Run evicted or replaced the cached plan")
	}
	r := w.replica()
	if r.plans.entries != nil {
		t.Fatal("replica inherited the parent's plan cache")
	}
	rq, err := r.planned(0)
	if err != nil {
		t.Fatal(err)
	}
	if rq == pq1 {
		t.Fatal("replica shares the parent's cache entries")
	}
	if rq.plan.String() != pq1.plan.String() {
		t.Fatal("replica planned a different plan for the same query")
	}
}
