package progressest_test

import (
	"path/filepath"
	"testing"

	"progressest"
)

func openSmall(t *testing.T, ds progressest.Dataset) *progressest.Workload {
	t.Helper()
	w, err := progressest.Open(progressest.Config{
		Dataset: ds, Queries: 10, Scale: 0.08, Design: progressest.PartiallyTuned, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestOpenAndRun(t *testing.T) {
	w := openSmall(t, progressest.TPCH)
	if w.NumQueries() != 10 {
		t.Fatalf("NumQueries = %d", w.NumQueries())
	}
	if w.QueryText(0) == "" {
		t.Error("empty query text")
	}
	run, err := w.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if run.NumPipelines() == 0 {
		t.Fatal("no pipelines")
	}
	if run.PlanText() == "" {
		t.Error("empty plan text")
	}
	for p := 0; p < run.NumPipelines(); p++ {
		if run.Observations(p) == 0 {
			continue
		}
		truth := run.TrueProgress(p)
		est := run.Estimates(p, progressest.DNE)
		if len(truth) != len(est) {
			t.Fatalf("pipeline %d: series misaligned", p)
		}
		l1, l2 := run.Errors(p, progressest.TGN)
		if l1 < 0 || l2 < l1-1e-9 {
			t.Errorf("pipeline %d: bad errors %v/%v", p, l1, l2)
		}
		if len(run.Features(p)) != len(progressest.FeatureNames()) {
			t.Error("feature vector length mismatch")
		}
	}
	if _, err := w.Run(99); err == nil {
		t.Error("out-of-range query index should error")
	}
}

func TestHarvestTrainPickRoundTrip(t *testing.T) {
	w := openSmall(t, progressest.TPCH)
	examples, err := w.Harvest()
	if err != nil {
		t.Fatal(err)
	}
	if len(examples) == 0 {
		t.Fatal("no examples harvested")
	}
	sel, err := progressest.TrainSelector(examples, progressest.SelectorConfig{Trees: 40})
	if err != nil {
		t.Fatal(err)
	}
	pick := sel.Pick(examples[0].Features)
	inSet := false
	for _, c := range progressest.AllEstimators() {
		if c == pick {
			inSet = true
		}
	}
	if !inSet {
		t.Fatalf("picked estimator %v not a candidate", pick)
	}
	preds := sel.PredictedErrors(examples[0].Features)
	if len(preds) != len(progressest.AllEstimators()) {
		t.Fatalf("PredictedErrors returned %d entries", len(preds))
	}

	path := filepath.Join(t.TempDir(), "sel.json")
	if err := sel.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := progressest.LoadSelector(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Pick(examples[0].Features) != pick {
		t.Error("loaded selector disagrees")
	}

	ev := progressest.EvaluateSelector(sel, examples)
	if ev.N != len(examples) || ev.AvgL1 < ev.OracleL1-1e-12 {
		t.Errorf("bad evaluation %+v", ev)
	}
	fixed := progressest.EvaluateFixed(progressest.DNE, progressest.CoreEstimators(), examples)
	if fixed.N != len(examples) {
		t.Error("fixed evaluation dropped examples")
	}
}

func TestQueryLevelProgress(t *testing.T) {
	w := openSmall(t, progressest.TPCH)
	run, err := w.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	var wsum float64
	for p := 0; p < run.NumPipelines(); p++ {
		wsum += run.PipelineWeight(p)
	}
	if wsum < 0.999 || wsum > 1.001 {
		t.Errorf("pipeline weights sum to %v", wsum)
	}
	truth := run.QueryTrueProgress()
	est := run.QueryEstimates(progressest.DNE)
	if len(truth) != len(est) || len(truth) == 0 {
		t.Fatal("query-level series misaligned")
	}
	for i := 1; i < len(truth); i++ {
		if truth[i] < truth[i-1] {
			t.Fatal("true query progress not monotone")
		}
	}
	if truth[len(truth)-1] < 0.999 {
		t.Errorf("final true progress %v", truth[len(truth)-1])
	}
	for _, v := range est {
		if v < 0 || v > 1 {
			t.Fatalf("query estimate %v out of range", v)
		}
	}
	l1, l2 := run.QueryErrors(progressest.OracleGetNext)
	if l1 < 0 || l2 < l1-1e-9 {
		t.Errorf("bad query-level errors %v/%v", l1, l2)
	}
}

func TestRunBatch(t *testing.T) {
	w := openSmall(t, progressest.TPCDS)
	run, err := w.RunBatch([]int{0, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for q := 0; q < 3; q++ {
		sum += run.QueryWeight(q)
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("batch weights sum to %v", sum)
	}
	est, truth := run.Progress(progressest.DNE)
	if len(est) != len(truth) || len(est) == 0 {
		t.Fatal("batch series misaligned")
	}
	if truth[len(truth)-1] < 0.999 {
		t.Errorf("final batch truth %v", truth[len(truth)-1])
	}
	l1, l2 := run.Errors(progressest.OracleGetNext)
	if l1 < 0 || l2 < l1-1e-9 {
		t.Errorf("bad batch errors %v/%v", l1, l2)
	}
	if _, err := w.RunBatch([]int{99}); err == nil {
		t.Error("out-of-range batch index should error")
	}
	if _, err := w.RunBatch(nil); err == nil {
		t.Error("empty batch should error")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := progressest.Open(progressest.Config{Zipf: -1}); err == nil {
		t.Error("negative Zipf should error")
	}
}

func TestAllDatasetsOpen(t *testing.T) {
	for _, ds := range []progressest.Dataset{
		progressest.TPCH, progressest.TPCDS, progressest.Real1, progressest.Real2,
	} {
		w := openSmall(t, ds)
		run, err := w.Run(0)
		if err != nil {
			t.Fatalf("%v: %v", ds, err)
		}
		if run.NumPipelines() == 0 {
			t.Errorf("%v: no pipelines", ds)
		}
	}
}
