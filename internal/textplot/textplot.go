// Package textplot renders small ASCII charts so the experiment harness
// can reproduce the paper's *figures* (error-ratio curves, progress-vs-
// time traces, error bars) directly in terminal output and log files.
package textplot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one named line of a chart.
type Series struct {
	Name   string
	Values []float64
}

// markers cycle through the series of one chart.
var markers = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// Lines renders multiple series as an ASCII line chart. X is the sample
// index scaled to width; LogY plots log10 of the values (values <= 0 are
// clamped to the smallest positive value).
func Lines(series []Series, width, height int, logY bool, yLabel string) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	// Transform and find bounds.
	minV, maxV := math.Inf(1), math.Inf(-1)
	transformed := make([][]float64, len(series))
	var minPos = math.Inf(1)
	if logY {
		for _, s := range series {
			for _, v := range s.Values {
				if v > 0 && v < minPos {
					minPos = v
				}
			}
		}
		if math.IsInf(minPos, 1) {
			minPos = 1e-6
		}
	}
	for si, s := range series {
		tv := make([]float64, len(s.Values))
		for i, v := range s.Values {
			if logY {
				if v <= 0 {
					v = minPos
				}
				v = math.Log10(v)
			}
			tv[i] = v
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
		}
		transformed[si] = tv
	}
	if math.IsInf(minV, 1) {
		return "(no data)\n"
	}
	if maxV-minV < 1e-12 {
		maxV = minV + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, tv := range transformed {
		if len(tv) == 0 {
			continue
		}
		mk := markers[si%len(markers)]
		for c := 0; c < width; c++ {
			idx := c * (len(tv) - 1) / maxInt(width-1, 1)
			v := tv[idx]
			r := int((maxV - v) / (maxV - minV) * float64(height-1))
			if r < 0 {
				r = 0
			}
			if r >= height {
				r = height - 1
			}
			grid[r][c] = mk
		}
	}

	var b strings.Builder
	for r, row := range grid {
		axis := maxV - (maxV-minV)*float64(r)/float64(height-1)
		if logY {
			fmt.Fprintf(&b, "%9.3g |%s|\n", math.Pow(10, axis), row)
		} else {
			fmt.Fprintf(&b, "%9.3g |%s|\n", axis, row)
		}
	}
	b.WriteString(strings.Repeat(" ", 11) + strings.Repeat("-", width+2) + "\n")
	legend := make([]string, len(series))
	for i, s := range series {
		legend[i] = fmt.Sprintf("%c=%s", markers[i%len(markers)], s.Name)
	}
	fmt.Fprintf(&b, "%11s %s   (y: %s%s)\n", "", strings.Join(legend, "  "), yLabel,
		map[bool]string{true: ", log scale", false: ""}[logY])
	return b.String()
}

// Bars renders a labelled horizontal bar chart.
func Bars(labels []string, values []float64, width int) string {
	if len(labels) != len(values) {
		panic("textplot: labels and values must align")
	}
	if width < 10 {
		width = 10
	}
	maxV := 0.0
	maxLabel := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	if maxV <= 0 {
		maxV = 1
	}
	var b strings.Builder
	for i, v := range values {
		n := int(v / maxV * float64(width))
		fmt.Fprintf(&b, "%-*s | %-*s %.4f\n", maxLabel, labels[i], width, strings.Repeat("#", n), v)
	}
	return b.String()
}

// SortedRatios sorts a copy of xs ascending — the presentation used by the
// paper's Figure 1/4 per-query ratio curves.
func SortedRatios(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	sort.Float64s(out)
	return out
}

// Table renders rows with a header as aligned columns.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total) + "\n")
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
