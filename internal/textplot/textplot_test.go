package textplot

import (
	"strings"
	"testing"
)

func TestLinesBasic(t *testing.T) {
	out := Lines([]Series{
		{Name: "a", Values: []float64{1, 2, 3, 4, 5}},
		{Name: "b", Values: []float64{5, 4, 3, 2, 1}},
	}, 40, 8, false, "value")
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Error("chart missing series markers")
	}
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Error("chart missing legend")
	}
	if len(strings.Split(strings.TrimRight(out, "\n"), "\n")) != 10 {
		t.Errorf("unexpected line count:\n%s", out)
	}
}

func TestLinesLogScaleHandlesZeros(t *testing.T) {
	out := Lines([]Series{{Name: "r", Values: []float64{0, 1, 10, 100}}}, 30, 6, true, "ratio")
	if !strings.Contains(out, "log scale") {
		t.Error("log scale label missing")
	}
}

func TestLinesEmpty(t *testing.T) {
	if out := Lines(nil, 30, 6, false, "x"); !strings.Contains(out, "no data") {
		t.Errorf("empty chart output %q", out)
	}
}

func TestBars(t *testing.T) {
	out := Bars([]string{"DNE", "TGN"}, []float64{0.2, 0.1}, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 bars, got %d", len(lines))
	}
	if strings.Count(lines[0], "#") <= strings.Count(lines[1], "#") {
		t.Error("larger value should have a longer bar")
	}
}

func TestBarsPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched labels/values should panic")
		}
	}()
	Bars([]string{"a"}, []float64{1, 2}, 10)
}

func TestSortedRatios(t *testing.T) {
	in := []float64{3, 1, 2}
	out := SortedRatios(in)
	if out[0] != 1 || out[2] != 3 {
		t.Error("not sorted")
	}
	if in[0] != 3 {
		t.Error("input mutated")
	}
}

func TestTable(t *testing.T) {
	out := Table([]string{"est", "err"}, [][]string{{"DNE", "0.17"}, {"TGN", "0.14"}})
	if !strings.Contains(out, "est") || !strings.Contains(out, "DNE") {
		t.Errorf("table missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Errorf("want header+rule+2 rows, got %d lines", len(lines))
	}
}
