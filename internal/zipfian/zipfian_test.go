package zipfian

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUniformWhenThetaZero(t *testing.T) {
	g := New(10, 0, 1)
	counts := make([]int, 11)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[g.Next()]++
	}
	for r := 1; r <= 10; r++ {
		frac := float64(counts[r]) / draws
		if math.Abs(frac-0.1) > 0.01 {
			t.Errorf("rank %d: frequency %.4f, want ~0.1", r, frac)
		}
	}
}

func TestSkewMatchesPMF(t *testing.T) {
	for _, theta := range []float64{0.5, 1.0, 2.0} {
		g := New(100, theta, 42)
		counts := make([]int, 101)
		const draws = 200000
		for i := 0; i < draws; i++ {
			counts[g.Next()]++
		}
		for _, r := range []int64{1, 2, 5, 10, 50} {
			want := PMF(100, theta, r)
			got := float64(counts[r]) / draws
			if math.Abs(got-want) > 0.01+0.1*want {
				t.Errorf("theta=%v rank=%d: frequency %.4f, want %.4f", theta, r, got, want)
			}
		}
	}
}

func TestBoundsProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16, thetaRaw uint8) bool {
		n := int64(nRaw%1000) + 1
		theta := float64(thetaRaw%30) / 10.0
		g := New(n, theta, seed)
		for i := 0; i < 200; i++ {
			v := g.Next()
			if v < 1 || v > n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeterminism(t *testing.T) {
	a := New(1000, 1.0, 7)
	b := New(1000, 1.0, 7)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed must produce identical sequences")
		}
	}
}

func TestCDFMonotoneAndComplete(t *testing.T) {
	prev := 0.0
	for r := int64(1); r <= 50; r++ {
		c := CDF(50, 1.5, r)
		if c < prev {
			t.Fatalf("CDF not monotone at rank %d: %v < %v", r, c, prev)
		}
		prev = c
	}
	if math.Abs(CDF(50, 1.5, 50)-1.0) > 1e-12 {
		t.Errorf("CDF at n should be 1, got %v", CDF(50, 1.5, 50))
	}
}

func TestPMFSumsToOne(t *testing.T) {
	for _, theta := range []float64{0, 0.5, 1, 2} {
		var sum float64
		for r := int64(1); r <= 200; r++ {
			sum += PMF(200, theta, r)
		}
		if math.Abs(sum-1.0) > 1e-9 {
			t.Errorf("theta=%v: PMF sums to %v, want 1", theta, sum)
		}
	}
}

func TestPermutedCoversAllValues(t *testing.T) {
	p := NewPermuted(20, 1.0, 3)
	seen := make(map[int64]bool)
	for i := 0; i < 20000; i++ {
		v := p.Next()
		if v < 1 || v > 20 {
			t.Fatalf("out of range value %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 20 {
		t.Errorf("permuted generator visited %d/20 distinct values", len(seen))
	}
}

func TestPermutedDecorrelatesRankFromValue(t *testing.T) {
	// With high skew, the most frequent value under NewPermuted should
	// usually not be 1 (probability 1/N that the permutation maps rank 1
	// to value 1). Check a handful of seeds.
	hits := 0
	for seed := int64(0); seed < 10; seed++ {
		p := NewPermuted(50, 2.0, seed)
		counts := make(map[int64]int)
		for i := 0; i < 5000; i++ {
			counts[p.Next()]++
		}
		best, bestC := int64(0), -1
		for v, c := range counts {
			if c > bestC {
				best, bestC = v, c
			}
		}
		if best == 1 {
			hits++
		}
	}
	if hits > 5 {
		t.Errorf("permutation looks like identity: mode was value 1 in %d/10 seeds", hits)
	}
}

func BenchmarkNextSkewed(b *testing.B) {
	g := New(1_000_000, 1.0, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}
