// Package zipfian provides deterministic Zipfian-distributed integer
// generation, used to induce skew in synthetic data (the paper generates
// TPC-H databases with Zipf skew factors z = 0, 1, 2 to create variance in
// "per-tuple work").
//
// A Zipf distribution over ranks 1..N with parameter theta assigns rank r
// probability proportional to 1/r^theta. theta = 0 degenerates to the
// uniform distribution.
package zipfian

import (
	"fmt"
	"math"
	"math/rand"
)

// Generator draws Zipfian-distributed ranks in [1, N].
// It uses the rejection-inversion method of Hörmann and Derflinger, which
// needs O(1) setup and O(1) expected time per draw, independent of N.
type Generator struct {
	n     int64
	theta float64
	rng   *rand.Rand

	// rejection-inversion state
	hIntegralX1       float64
	hIntegralNumItems float64
	s                 float64
}

// New returns a Generator over ranks [1, n] with skew theta >= 0,
// seeded deterministically.
func New(n int64, theta float64, seed int64) *Generator {
	if n < 1 {
		panic(fmt.Sprintf("zipfian: n must be >= 1, got %d", n))
	}
	if theta < 0 {
		panic(fmt.Sprintf("zipfian: theta must be >= 0, got %v", theta))
	}
	g := &Generator{
		n:     n,
		theta: theta,
		rng:   rand.New(rand.NewSource(seed)),
	}
	g.hIntegralX1 = g.hIntegral(1.5) - 1.0
	g.hIntegralNumItems = g.hIntegral(float64(n) + 0.5)
	g.s = 2.0 - g.hIntegralInverse(g.hIntegral(2.5)-g.h(2.0))
	return g
}

// N returns the number of distinct ranks.
func (g *Generator) N() int64 { return g.n }

// Theta returns the skew parameter.
func (g *Generator) Theta() float64 { return g.theta }

// Next draws the next rank in [1, N]. Rank 1 is the most frequent.
func (g *Generator) Next() int64 {
	if g.theta == 0 {
		return 1 + g.rng.Int63n(g.n)
	}
	for {
		u := g.hIntegralNumItems + g.rng.Float64()*(g.hIntegralX1-g.hIntegralNumItems)
		x := g.hIntegralInverse(u)
		k := int64(x + 0.5)
		if k < 1 {
			k = 1
		} else if k > g.n {
			k = g.n
		}
		if float64(k)-x <= g.s || u >= g.hIntegral(float64(k)+0.5)-g.h(float64(k)) {
			return k
		}
	}
}

// h is the density-shaped function 1/x^theta.
func (g *Generator) h(x float64) float64 {
	return math.Exp(-g.theta * math.Log(x))
}

// hIntegral is the antiderivative of h.
func (g *Generator) hIntegral(x float64) float64 {
	logX := math.Log(x)
	return helper2((1.0-g.theta)*logX) * logX
}

func (g *Generator) hIntegralInverse(x float64) float64 {
	t := x * (1.0 - g.theta)
	if t < -1.0 {
		t = -1.0
	}
	return math.Exp(helper1(t) * x)
}

// helper1 computes log(1+x)/x stably near 0.
func helper1(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Log1p(x) / x
	}
	return 1.0 - x*(0.5-x*(1.0/3.0-0.25*x))
}

// helper2 computes (exp(x)-1)/x stably near 0.
func helper2(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Expm1(x) / x
	}
	return 1.0 + x*0.5*(1.0+x*(1.0/3.0)*(1.0+0.25*x))
}

// PMF returns the exact probability of rank r under Zipf(n, theta).
func PMF(n int64, theta float64, r int64) float64 {
	if r < 1 || r > n {
		return 0
	}
	return math.Pow(float64(r), -theta) / generalizedHarmonic(n, theta)
}

// CDF returns the exact cumulative probability of ranks 1..r.
func CDF(n int64, theta float64, r int64) float64 {
	if r < 1 {
		return 0
	}
	if r >= n {
		return 1
	}
	return generalizedHarmonic(r, theta) / generalizedHarmonic(n, theta)
}

// generalizedHarmonic computes H_{n,theta} = sum_{k=1..n} 1/k^theta.
func generalizedHarmonic(n int64, theta float64) float64 {
	var sum float64
	for k := int64(1); k <= n; k++ {
		sum += math.Pow(float64(k), -theta)
	}
	return sum
}

// Permuted wraps a Generator so that ranks are mapped through a fixed
// pseudo-random permutation of [1, N]. This decorrelates frequency from
// value order, matching how skewed foreign keys appear in real data
// (the hottest key is not necessarily the smallest).
type Permuted struct {
	g    *Generator
	perm []int64
}

// NewPermuted returns a permuted Zipfian generator. The permutation is
// derived deterministically from seed.
func NewPermuted(n int64, theta float64, seed int64) *Permuted {
	g := New(n, theta, seed)
	perm := make([]int64, n)
	for i := range perm {
		perm[i] = int64(i) + 1
	}
	r := rand.New(rand.NewSource(seed ^ 0x1e3779b97f4a7c15))
	r.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	return &Permuted{g: g, perm: perm}
}

// Next draws the next permuted rank in [1, N].
func (p *Permuted) Next() int64 { return p.perm[p.g.Next()-1] }

// N returns the number of distinct values.
func (p *Permuted) N() int64 { return p.g.n }
