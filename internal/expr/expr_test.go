package expr

import (
	"testing"
	"testing/quick"
)

func TestColConstAllOps(t *testing.T) {
	row := []int64{5}
	cases := []struct {
		op   CmpOp
		val  int64
		want bool
	}{
		{Eq, 5, true}, {Eq, 4, false},
		{Ne, 4, true}, {Ne, 5, false},
		{Lt, 6, true}, {Lt, 5, false},
		{Le, 5, true}, {Le, 4, false},
		{Gt, 4, true}, {Gt, 5, false},
		{Ge, 5, true}, {Ge, 6, false},
	}
	for _, c := range cases {
		p := &ColConst{Col: 0, Op: c.op, Val: c.val}
		if got := p.Eval(row); got != c.want {
			t.Errorf("5 %s %d = %v, want %v", c.op, c.val, got, c.want)
		}
	}
}

func TestBetween(t *testing.T) {
	p := &Between{Col: 0, Lo: 10, Hi: 20}
	for _, c := range []struct {
		v    int64
		want bool
	}{{9, false}, {10, true}, {15, true}, {20, true}, {21, false}} {
		if got := p.Eval([]int64{c.v}); got != c.want {
			t.Errorf("Between(%d) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestColCol(t *testing.T) {
	p := &ColCol{A: 0, B: 1, Op: Eq}
	if !p.Eval([]int64{3, 3}) || p.Eval([]int64{3, 4}) {
		t.Error("ColCol Eq misbehaves")
	}
}

func TestAndOrSemantics(t *testing.T) {
	tr := &ColConst{Col: 0, Op: Eq, Val: 1}
	fa := &ColConst{Col: 0, Op: Eq, Val: 2}
	row := []int64{1}
	if !(&And{}).Eval(row) {
		t.Error("empty And must be true")
	}
	if (&Or{}).Eval(row) {
		t.Error("empty Or must be false")
	}
	if (&And{Preds: []Predicate{tr, fa}}).Eval(row) {
		t.Error("And(true,false) must be false")
	}
	if !(&Or{Preds: []Predicate{fa, tr}}).Eval(row) {
		t.Error("Or(false,true) must be true")
	}
}

func TestShiftPreservesSemantics(t *testing.T) {
	f := func(a, b int64, delta uint8) bool {
		d := int(delta % 8)
		p := &And{Preds: []Predicate{
			&ColConst{Col: 0, Op: Lt, Val: b},
			&Or{Preds: []Predicate{
				&ColCol{A: 0, B: 1, Op: Le},
				&Between{Col: 1, Lo: -10, Hi: 10},
			}},
		}}
		shifted := Shift(p, d)
		row := make([]int64, d+2)
		row[d] = a
		row[d+1] = b
		return p.Eval([]int64{a, b}) == shifted.Eval(row)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringForms(t *testing.T) {
	p := &And{Preds: []Predicate{
		&ColConst{Col: 0, Name: "x", Op: Ge, Val: 3},
		&Between{Col: 1, Name: "y", Lo: 1, Hi: 2},
	}}
	want := "(x >= 3 AND y BETWEEN 1 AND 2)"
	if got := p.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if (&And{}).String() != "TRUE" || (&Or{}).String() != "FALSE" {
		t.Error("empty And/Or string forms wrong")
	}
}
