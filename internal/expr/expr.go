// Package expr provides the scalar predicate language used by filter and
// join operators. Rows in the execution engine are flat []int64 slices
// (possibly concatenations of several base-table rows), so predicates
// reference values by position; the planner resolves column names to
// positions when it builds the physical plan.
package expr

import (
	"fmt"
	"strings"
)

// CmpOp is a comparison operator.
type CmpOp int

// Comparison operators.
const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

// String implements fmt.Stringer.
func (op CmpOp) String() string {
	switch op {
	case Eq:
		return "="
	case Ne:
		return "<>"
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", int(op))
	}
}

// compare applies op to (a, b).
func compare(a, b int64, op CmpOp) bool {
	switch op {
	case Eq:
		return a == b
	case Ne:
		return a != b
	case Lt:
		return a < b
	case Le:
		return a <= b
	case Gt:
		return a > b
	case Ge:
		return a >= b
	default:
		panic(fmt.Sprintf("expr: unknown CmpOp %d", int(op)))
	}
}

// Predicate evaluates to a boolean over one row.
type Predicate interface {
	Eval(row []int64) bool
	String() string
}

// ColConst compares a column against a constant: row[Col] Op Val.
type ColConst struct {
	Col  int
	Name string // column name for display / selectivity estimation
	Op   CmpOp
	Val  int64
}

// Eval implements Predicate.
func (p *ColConst) Eval(row []int64) bool { return compare(row[p.Col], p.Val, p.Op) }

// String implements Predicate.
func (p *ColConst) String() string {
	name := p.Name
	if name == "" {
		name = fmt.Sprintf("$%d", p.Col)
	}
	return fmt.Sprintf("%s %s %d", name, p.Op, p.Val)
}

// Between checks lo <= row[Col] <= hi.
type Between struct {
	Col    int
	Name   string
	Lo, Hi int64
}

// Eval implements Predicate.
func (p *Between) Eval(row []int64) bool { return row[p.Col] >= p.Lo && row[p.Col] <= p.Hi }

// String implements Predicate.
func (p *Between) String() string {
	name := p.Name
	if name == "" {
		name = fmt.Sprintf("$%d", p.Col)
	}
	return fmt.Sprintf("%s BETWEEN %d AND %d", name, p.Lo, p.Hi)
}

// ColCol compares two columns of the (joined) row: row[A] Op row[B].
type ColCol struct {
	A, B int
	Op   CmpOp
}

// Eval implements Predicate.
func (p *ColCol) Eval(row []int64) bool { return compare(row[p.A], row[p.B], p.Op) }

// String implements Predicate.
func (p *ColCol) String() string { return fmt.Sprintf("$%d %s $%d", p.A, p.Op, p.B) }

// And is the conjunction of predicates; an empty And is true.
type And struct {
	Preds []Predicate
}

// Eval implements Predicate.
func (p *And) Eval(row []int64) bool {
	for _, q := range p.Preds {
		if !q.Eval(row) {
			return false
		}
	}
	return true
}

// String implements Predicate.
func (p *And) String() string {
	if len(p.Preds) == 0 {
		return "TRUE"
	}
	parts := make([]string, len(p.Preds))
	for i, q := range p.Preds {
		parts[i] = q.String()
	}
	return "(" + strings.Join(parts, " AND ") + ")"
}

// Or is the disjunction of predicates; an empty Or is false.
type Or struct {
	Preds []Predicate
}

// Eval implements Predicate.
func (p *Or) Eval(row []int64) bool {
	for _, q := range p.Preds {
		if q.Eval(row) {
			return true
		}
	}
	return false
}

// String implements Predicate.
func (p *Or) String() string {
	if len(p.Preds) == 0 {
		return "FALSE"
	}
	parts := make([]string, len(p.Preds))
	for i, q := range p.Preds {
		parts[i] = q.String()
	}
	return "(" + strings.Join(parts, " OR ") + ")"
}

// Shift returns a copy of p with all column positions offset by delta.
// Join operators use it to rebase predicates onto concatenated rows.
func Shift(p Predicate, delta int) Predicate {
	switch q := p.(type) {
	case *ColConst:
		c := *q
		c.Col += delta
		return &c
	case *Between:
		c := *q
		c.Col += delta
		return &c
	case *ColCol:
		c := *q
		c.A += delta
		c.B += delta
		return &c
	case *And:
		out := &And{Preds: make([]Predicate, len(q.Preds))}
		for i, sub := range q.Preds {
			out.Preds[i] = Shift(sub, delta)
		}
		return out
	case *Or:
		out := &Or{Preds: make([]Predicate, len(q.Preds))}
		for i, sub := range q.Preds {
			out.Preds[i] = Shift(sub, delta)
		}
		return out
	default:
		panic(fmt.Sprintf("expr: Shift of unknown predicate type %T", p))
	}
}
