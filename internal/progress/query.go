package progress

import "progressest/internal/exec"

// QueryView combines per-pipeline estimates into whole-query progress,
// following eq. 5 of the paper: the query's progress is the weighted sum
// of the pipelines' estimated progress, each weighted by its share of the
// estimated total work (driver-node E_i for driver-based estimators; we
// use the pipeline's total estimated GetNext count, which reduces to the
// same weights for single-driver pipelines and remains well-defined for
// every estimator kind).
type QueryView struct {
	Trace *exec.Trace
	Views []*PipelineView

	weights []float64 // per pipeline, normalised
}

// NewQueryView builds the pipeline views and work weights of a trace.
func NewQueryView(tr *exec.Trace) *QueryView {
	q := &QueryView{Trace: tr}
	var total float64
	for p := range tr.Pipes.Pipelines {
		v := NewPipelineView(tr, p)
		q.Views = append(q.Views, v)
		var w float64
		for _, id := range v.Pipe.Nodes {
			w += v.E0[id]
		}
		q.weights = append(q.weights, w)
		total += w
	}
	if total > 0 {
		for i := range q.weights {
			q.weights[i] /= total
		}
	}
	return q
}

// Weight returns pipeline p's share of the estimated total work.
func (q *QueryView) Weight(p int) float64 { return q.weights[p] }

// EstimateAt returns the whole-query progress estimate at global snapshot
// index obs, using estimator kind (or a per-pipeline choice function) for
// each pipeline: completed pipelines contribute their full weight, the
// active pipeline contributes its partial estimate, and future pipelines
// contribute zero.
func (q *QueryView) EstimateAt(obs int, choose func(p int) Kind) float64 {
	t := q.Trace.Snapshots[obs].Time
	var sum float64
	for p, v := range q.Views {
		span := q.Trace.PipeSpans[p]
		switch {
		case span.End <= span.Start:
			// Degenerate pipeline (no activity): count as done.
			sum += q.weights[p]
		case t >= span.End:
			sum += q.weights[p]
		case t < span.Start:
			// not started
		default:
			// Active: use the estimator's value at the nearest pipeline
			// observation at or before obs.
			ord := v.ordinalAtOrBefore(obs)
			if ord < 0 {
				continue
			}
			sum += q.weights[p] * v.Estimate(choose(p), ord)
		}
	}
	return clamp01(sum)
}

// Series returns the whole-query progress series over all snapshots for a
// single estimator kind.
func (q *QueryView) Series(kind Kind) []float64 {
	out := make([]float64, len(q.Trace.Snapshots))
	for i := range out {
		out[i] = q.EstimateAt(i, func(int) Kind { return kind })
	}
	return out
}

// TrueSeries returns the true whole-query progress (virtual time).
func (q *QueryView) TrueSeries() []float64 {
	out := make([]float64, len(q.Trace.Snapshots))
	for i := range out {
		out[i] = q.Trace.TrueProgress(i)
	}
	return out
}

// Errors returns the error statistics of a single-estimator query series.
func (q *QueryView) Errors(kind Kind) ErrorStats {
	est := q.Series(kind)
	truth := q.TrueSeries()
	dev := make([]float64, len(est))
	for i := range est {
		dev[i] = est[i] - truth[i]
	}
	return errorStatsOf(dev, est, truth)
}

// ordinalAtOrBefore maps a global snapshot index to the pipeline-local
// observation ordinal at or before it, or -1. The pipeline's observations
// are the contiguous snapshot range [obsLo, obsHi), so the mapping is a
// clamped subtraction.
func (v *PipelineView) ordinalAtOrBefore(obs int) int {
	if obs >= v.obsHi {
		obs = v.obsHi - 1
	}
	if obs < v.obsLo {
		return -1
	}
	return obs - v.obsLo
}
