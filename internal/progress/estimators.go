package progress

import (
	"math"

	"progressest/internal/plan"
	"progressest/internal/stats"
)

// Series returns the estimator's progress estimate at every observation of
// the pipeline. Results are cached on the view, so replaying all
// estimators over one trace costs a single pass each.
func (v *PipelineView) Series(kind Kind) []float64 {
	if v.cache == nil {
		v.cache = make(map[Kind][]float64)
	}
	if s, ok := v.cache[kind]; ok {
		return s
	}
	var s []float64
	switch kind {
	case DNE:
		s = v.ratioSeries(v.Pipe.Drivers)
	case TGN:
		s = v.ratioSeries(v.Pipe.Nodes)
	case BATCHDNE:
		s = v.ratioSeries(v.batchDrivers)
	case DNESEEK:
		s = v.ratioSeries(v.seekDrivers)
	case TGNINT:
		s = v.tgnintSeries()
	case LUO:
		s = v.luoSeries(false)
	case OracleBytes:
		s = v.luoSeries(true)
	case PMAX:
		s, _ = v.worstCaseSeries()
	case SAFE:
		_, s = v.worstCaseSeries()
	case OracleGetNext:
		s = v.oracleGetNextSeries()
	default:
		panic("progress: unknown estimator kind " + kind.String())
	}
	v.cache[kind] = s
	return s
}

// Estimate returns the estimator's value at observation ordinal i.
func (v *PipelineView) Estimate(kind Kind, i int) float64 { return v.Series(kind)[i] }

// ratioSeries computes sum(K)/sum(refined E) over a node set — the shape
// shared by DNE (eq. 4), TGN (eq. 3), BATCHDNE (eq. 6) and DNESEEK (eq. 7).
func (v *PipelineView) ratioSeries(ids []int) []float64 {
	out := make([]float64, len(v.Obs))
	for i := range v.Obs {
		k, e := v.sums(ids, v.snap(i))
		if e <= 0 {
			out[i] = 1
			continue
		}
		out[i] = clamp01(k / e)
	}
	return out
}

// tgnintSeries computes the cardinality-interpolation estimator (eq. 8):
//
//	TGNINT = sum(K) / (sum(K) + (1 - DNE) * sum(E))
func (v *PipelineView) tgnintSeries() []float64 {
	out := make([]float64, len(v.Obs))
	for i := range v.Obs {
		s := v.snap(i)
		k, e := v.sums(v.Pipe.Nodes, s)
		dk, de := v.sums(v.Pipe.Drivers, s)
		dne := 1.0
		if de > 0 {
			dne = clamp01(dk / de)
		}
		den := k + (1-dne)*e
		if den <= 0 {
			out[i] = 1
			continue
		}
		out[i] = clamp01(k / den)
	}
	return out
}

// luoSeries computes the bytes-processed estimator of Luo et al.: bytes
// read at the driver nodes plus bytes written at the pipeline's top node,
// over the estimated total, where the output total is refined by
// interpolation between the optimizer estimate and the scaled-up observed
// count (Section 3.3, eq. 2). Spill I/O inside the pipeline counts as
// bytes processed. With oracle=true, true totals replace all estimates
// (the idealised bytes-processed model of Section 6.7).
func (v *PipelineView) luoSeries(oracle bool) []float64 {
	top := v.topNode()
	out := make([]float64, len(v.Obs))
	spillNodes := v.spillNodes()

	// True totals for the oracle variant.
	var trueTotal float64
	if oracle {
		for _, d := range v.Pipe.Drivers {
			trueTotal += float64(v.Trace.N[d]) * v.Width[d]
		}
		trueTotal += float64(v.Trace.N[top]) * v.Width[top]
		for _, id := range spillNodes {
			trueTotal += float64(v.Trace.FinalR[id] + v.Trace.FinalW[id])
		}
	}

	for i := range v.Obs {
		s := v.snap(i)
		var done float64
		for _, d := range v.Pipe.Drivers {
			done += float64(s.K[d]) * v.Width[d]
		}
		done += float64(s.K[top]) * v.Width[top]
		for _, id := range spillNodes {
			done += float64(s.R[id] + s.W[id])
		}

		var total float64
		if oracle {
			total = trueTotal
		} else {
			alpha := v.DriverFraction(i)
			for _, d := range v.Pipe.Drivers {
				total += v.refinedE(d, s) * v.Width[d]
			}
			// Interpolated output estimate (eq. 2).
			eTop := v.refinedE(top, s)
			if alpha > 0 {
				scaled := float64(s.K[top]) / alpha
				eTop = alpha*scaled + (1-alpha)*eTop
			}
			total += eTop * v.Width[top]
		}
		if total <= 0 {
			out[i] = 1
			continue
		}
		out[i] = clamp01(done / total)
	}
	return out
}

// worstCaseSeries computes PMAX and SAFE together. Both are built from
// bounds on the remaining work: each remaining driver tuple triggers at
// least 1 and at most m GetNext calls, where m is the largest per-tuple
// fan-out observed so far.
func (v *PipelineView) worstCaseSeries() (pmax, safe []float64) {
	n := len(v.Obs)
	pmax = make([]float64, n)
	safe = make([]float64, n)
	m := 1.0
	var prevK, prevDK float64
	for i := 0; i < n; i++ {
		s := v.snap(i)
		k, _ := v.sums(v.Pipe.Nodes, s)
		dk, de := v.sums(v.Pipe.Drivers, s)
		if ddk := dk - prevDK; ddk > 0 {
			if fanout := (k - prevK) / ddk; fanout > m {
				m = fanout
			}
		}
		prevK, prevDK = k, dk
		remaining := de - dk
		if remaining < 0 {
			remaining = 0
		}
		loDen := k + remaining*m
		hiDen := k + remaining
		lo, hi := 1.0, 1.0
		if loDen > 0 {
			lo = clamp01(k / loDen)
		}
		if hiDen > 0 {
			hi = clamp01(k / hiDen)
		}
		pmax[i] = lo
		safe[i] = clamp01(math.Sqrt(lo * hi))
	}
	return pmax, safe
}

// UnrefinedTGNSeries computes the TGN estimator *without* any online
// refinement of cardinality estimates: sum(K) over the raw plan-time
// sum(E_i^0), clamped to [0,1]. It exists to quantify how much the
// Section 3.3 refinement techniques contribute (the paper's concluding
// outlook points at online cardinality refinement as the main lever for
// further progress-estimation gains).
func (v *PipelineView) UnrefinedTGNSeries() []float64 {
	var e0 float64
	for _, id := range v.Pipe.Nodes {
		e0 += v.Trace.Plan.Node(id).EstRows
	}
	out := make([]float64, len(v.Obs))
	for i := range v.Obs {
		s := v.snap(i)
		var k float64
		for _, id := range v.Pipe.Nodes {
			k += float64(s.K[id])
		}
		if e0 <= 0 {
			out[i] = 1
			continue
		}
		out[i] = clamp01(k / e0)
	}
	return out
}

// UnrefinedTGNErrors returns the error statistics of the unrefined TGN
// series.
func (v *PipelineView) UnrefinedTGNErrors() ErrorStats {
	est := v.UnrefinedTGNSeries()
	truth := v.TrueSeries()
	dev := make([]float64, len(est))
	for i := range est {
		dev[i] = est[i] - truth[i]
	}
	return errorStatsOf(dev, est, truth)
}

// oracleGetNextSeries is the idealised GetNext model: sum(K)/sum(N) with
// true totals (Section 6.7).
func (v *PipelineView) oracleGetNextSeries() []float64 {
	var total float64
	for _, id := range v.Pipe.Nodes {
		total += float64(v.Trace.N[id])
	}
	out := make([]float64, len(v.Obs))
	for i := range v.Obs {
		s := v.snap(i)
		var k float64
		for _, id := range v.Pipe.Nodes {
			k += float64(s.K[id])
		}
		if total <= 0 {
			out[i] = 1
			continue
		}
		out[i] = clamp01(k / total)
	}
	return out
}

// topNode returns the pipeline's output node: the member whose parent is
// outside the pipeline (or the plan root).
func (v *PipelineView) topNode() int {
	inPipe := make(map[int]bool, len(v.Pipe.Nodes))
	for _, id := range v.Pipe.Nodes {
		inPipe[id] = true
	}
	childOf := make(map[int]bool)
	for _, id := range v.Pipe.Nodes {
		for _, c := range v.Trace.Plan.Node(id).Children {
			if inPipe[c.ID] {
				childOf[c.ID] = true
			}
		}
	}
	for _, id := range v.Pipe.Nodes {
		if !childOf[id] {
			return id
		}
	}
	return v.Pipe.Nodes[len(v.Pipe.Nodes)-1]
}

// spillNodes returns pipeline members that can incur spill I/O.
func (v *PipelineView) spillNodes() []int {
	var out []int
	for _, id := range v.Pipe.Nodes {
		op := v.Trace.Plan.Node(id).Op
		if op == plan.HashJoin || op == plan.Sort {
			out = append(out, id)
		}
	}
	return out
}

// ErrorStats aggregates the deviation of an estimator from true progress
// over a pipeline's observations, in the paper's metrics.
type ErrorStats struct {
	L1    float64 // mean absolute deviation
	L2    float64 // root mean squared deviation
	Ratio float64 // mean max(est/true, true/est)
}

// Errors computes the estimator's error statistics against true pipeline
// progress (measured in virtual time, as the paper measures wall time).
func (v *PipelineView) Errors(kind Kind) ErrorStats {
	est := v.Series(kind)
	truth := v.TrueSeries()
	dev := make([]float64, len(est))
	for i := range est {
		dev[i] = est[i] - truth[i]
	}
	return errorStatsOf(dev, est, truth)
}

// errorStatsOf bundles the three error metrics.
func errorStatsOf(dev, est, truth []float64) ErrorStats {
	return ErrorStats{
		L1:    stats.L1Error(dev),
		L2:    stats.L2Error(dev),
		Ratio: stats.RatioError(est, truth),
	}
}

// ErrorStatsFrom computes error statistics for an externally composed
// progress series (used by online estimator revision, which splices the
// series of two estimators).
func ErrorStatsFrom(dev, est, truth []float64) ErrorStats {
	return errorStatsOf(dev, est, truth)
}

// AllErrors computes error statistics for every selectable estimator.
func (v *PipelineView) AllErrors() map[Kind]ErrorStats {
	out := make(map[Kind]ErrorStats, NumKinds)
	for _, k := range Kinds() {
		out[k] = v.Errors(k)
	}
	return out
}

// Best returns the estimator with the smallest L1 error among kinds.
func Best(errs map[Kind]ErrorStats, kinds []Kind) (Kind, float64) {
	best := kinds[0]
	bestErr := math.Inf(1)
	for _, k := range kinds {
		if e, ok := errs[k]; ok && e.L1 < bestErr {
			best, bestErr = k, e.L1
		}
	}
	return best, bestErr
}
