package progress

import (
	"math"

	"progressest/internal/exec"
	"progressest/internal/stats"
)

// The per-snapshot estimator primitives live on PipeContext so that the
// offline replay path (PipelineView.Series) and the streaming path
// (OnlineView) evaluate bit-identical arithmetic: an online consumer that
// sees the same snapshot computes exactly the value a later replay would.

// ratioAt computes sum(K)/sum(refined E) over a node set at one snapshot —
// the shape shared by DNE (eq. 4), TGN (eq. 3), BATCHDNE (eq. 6) and
// DNESEEK (eq. 7).
func (c *PipeContext) ratioAt(ids []int, s *exec.Snapshot) float64 {
	k, e := c.sums(ids, s)
	if e <= 0 {
		return 1
	}
	return clamp01(k / e)
}

// driverFractionAt is alpha_Pj (eq. 1) at one snapshot.
func (c *PipeContext) driverFractionAt(s *exec.Snapshot) float64 {
	k, e := c.sums(c.Pipe.Drivers, s)
	if e <= 0 {
		return 1
	}
	return clamp01(k / e)
}

// tgnintAt computes the cardinality-interpolation estimator (eq. 8) at one
// snapshot:
//
//	TGNINT = sum(K) / (sum(K) + (1 - DNE) * sum(E))
func (c *PipeContext) tgnintAt(s *exec.Snapshot) float64 {
	k, e := c.sums(c.Pipe.Nodes, s)
	dk, de := c.sums(c.Pipe.Drivers, s)
	dne := 1.0
	if de > 0 {
		dne = clamp01(dk / de)
	}
	den := k + (1-dne)*e
	if den <= 0 {
		return 1
	}
	return clamp01(k / den)
}

// luoAt computes the bytes-processed estimator of Luo et al. at one
// snapshot: bytes read at the driver nodes plus bytes written at the
// pipeline's top node, over the estimated total, where the output total is
// refined by interpolation between the optimizer estimate and the
// scaled-up observed count (Section 3.3, eq. 2). Spill I/O inside the
// pipeline counts as bytes processed.
func (c *PipeContext) luoAt(s *exec.Snapshot) float64 {
	done := c.luoDoneAt(s)
	var total float64
	alpha := c.driverFractionAt(s)
	for _, d := range c.Pipe.Drivers {
		total += c.refinedE(d, s) * c.Width[d]
	}
	// Interpolated output estimate (eq. 2).
	eTop := c.refinedE(c.top, s)
	if alpha > 0 {
		scaled := float64(s.K[c.top]) / alpha
		eTop = alpha*scaled + (1-alpha)*eTop
	}
	total += eTop * c.Width[c.top]
	if total <= 0 {
		return 1
	}
	return clamp01(done / total)
}

// luoDoneAt is the bytes-processed numerator at one snapshot.
func (c *PipeContext) luoDoneAt(s *exec.Snapshot) float64 {
	var done float64
	for _, d := range c.Pipe.Drivers {
		done += float64(s.K[d]) * c.Width[d]
	}
	done += float64(s.K[c.top]) * c.Width[c.top]
	for _, id := range c.spill {
		done += float64(s.R[id] + s.W[id])
	}
	return done
}

// worstState carries the running fan-out bound PMAX and SAFE maintain
// across a pipeline's observations. The zero value is not valid; use
// newWorstState.
type worstState struct {
	m            float64
	prevK, prevD float64
}

func newWorstState() worstState { return worstState{m: 1} }

// worstAt advances the worst-case estimators by one snapshot, returning
// the PMAX and SAFE values. Both are built from bounds on the remaining
// work: each remaining driver tuple triggers at least 1 and at most m
// GetNext calls, where m is the largest per-tuple fan-out observed so far.
func (c *PipeContext) worstAt(s *exec.Snapshot, st *worstState) (pmax, safe float64) {
	k, _ := c.sums(c.Pipe.Nodes, s)
	dk, de := c.sums(c.Pipe.Drivers, s)
	return worstStep(st, k, dk, de)
}

// worstStep is the snapshot-independent core of worstAt, shared with the
// online view's thinning rebuild (which replays it over stored sums).
func worstStep(st *worstState, k, dk, de float64) (pmax, safe float64) {
	if ddk := dk - st.prevD; ddk > 0 {
		if fanout := (k - st.prevK) / ddk; fanout > st.m {
			st.m = fanout
		}
	}
	st.prevK, st.prevD = k, dk
	remaining := de - dk
	if remaining < 0 {
		remaining = 0
	}
	loDen := k + remaining*st.m
	hiDen := k + remaining
	lo, hi := 1.0, 1.0
	if loDen > 0 {
		lo = clamp01(k / loDen)
	}
	if hiDen > 0 {
		hi = clamp01(k / hiDen)
	}
	return lo, clamp01(math.Sqrt(lo * hi))
}

// Series returns the estimator's progress estimate at every observation of
// the pipeline. Results are cached on the view, so replaying all
// estimators over one trace costs a single pass each.
func (v *PipelineView) Series(kind Kind) []float64 {
	if v.cache == nil {
		v.cache = make(map[Kind][]float64)
	}
	if s, ok := v.cache[kind]; ok {
		return s
	}
	var s []float64
	switch kind {
	case DNE:
		s = v.ratioSeries(v.Pipe.Drivers)
	case TGN:
		s = v.ratioSeries(v.Pipe.Nodes)
	case BATCHDNE:
		s = v.ratioSeries(v.batchDrivers)
	case DNESEEK:
		s = v.ratioSeries(v.seekDrivers)
	case TGNINT:
		s = v.perSnapshotSeries(v.tgnintAt)
	case LUO:
		s = v.perSnapshotSeries(v.luoAt)
	case OracleBytes:
		s = v.oracleBytesSeries()
	case PMAX:
		s, _ = v.worstCaseSeries()
	case SAFE:
		_, s = v.worstCaseSeries()
	case OracleGetNext:
		s = v.oracleGetNextSeries()
	default:
		panic("progress: unknown estimator kind " + kind.String())
	}
	v.cache[kind] = s
	return s
}

// Estimate returns the estimator's value at observation ordinal i.
func (v *PipelineView) Estimate(kind Kind, i int) float64 { return v.Series(kind)[i] }

// EstimateAt is an alias for Estimate, satisfying the observation-source
// interface shared with the streaming view (features.Source).
func (v *PipelineView) EstimateAt(kind Kind, i int) float64 { return v.Series(kind)[i] }

// perSnapshotSeries replays a per-snapshot estimator over the pipeline's
// observations.
func (v *PipelineView) perSnapshotSeries(f func(*exec.Snapshot) float64) []float64 {
	out := make([]float64, v.NumObs())
	for i := range out {
		out[i] = f(v.snap(i))
	}
	return out
}

func (v *PipelineView) ratioSeries(ids []int) []float64 {
	out := make([]float64, v.NumObs())
	for i := range out {
		out[i] = v.ratioAt(ids, v.snap(i))
	}
	return out
}

// oracleBytesSeries is the idealised bytes-processed model: true totals
// replace all estimates (Section 6.7). It needs the finished trace, so it
// exists only on the offline view.
func (v *PipelineView) oracleBytesSeries() []float64 {
	var trueTotal float64
	for _, d := range v.Pipe.Drivers {
		trueTotal += float64(v.Trace.N[d]) * v.Width[d]
	}
	trueTotal += float64(v.Trace.N[v.top]) * v.Width[v.top]
	for _, id := range v.spill {
		trueTotal += float64(v.Trace.FinalR[id] + v.Trace.FinalW[id])
	}
	out := make([]float64, v.NumObs())
	for i := range out {
		if trueTotal <= 0 {
			out[i] = 1
			continue
		}
		out[i] = clamp01(v.luoDoneAt(v.snap(i)) / trueTotal)
	}
	return out
}

// worstCaseSeries computes PMAX and SAFE together.
func (v *PipelineView) worstCaseSeries() (pmax, safe []float64) {
	n := v.NumObs()
	pmax = make([]float64, n)
	safe = make([]float64, n)
	st := newWorstState()
	for i := 0; i < n; i++ {
		pmax[i], safe[i] = v.worstAt(v.snap(i), &st)
	}
	return pmax, safe
}

// UnrefinedTGNSeries computes the TGN estimator *without* any online
// refinement of cardinality estimates: sum(K) over the raw plan-time
// sum(E_i^0), clamped to [0,1]. It exists to quantify how much the
// Section 3.3 refinement techniques contribute (the paper's concluding
// outlook points at online cardinality refinement as the main lever for
// further progress-estimation gains).
func (v *PipelineView) UnrefinedTGNSeries() []float64 {
	var e0 float64
	for _, id := range v.Pipe.Nodes {
		e0 += v.Trace.Plan.Node(id).EstRows
	}
	out := make([]float64, v.NumObs())
	for i := range out {
		s := v.snap(i)
		var k float64
		for _, id := range v.Pipe.Nodes {
			k += float64(s.K[id])
		}
		if e0 <= 0 {
			out[i] = 1
			continue
		}
		out[i] = clamp01(k / e0)
	}
	return out
}

// UnrefinedTGNErrors returns the error statistics of the unrefined TGN
// series.
func (v *PipelineView) UnrefinedTGNErrors() ErrorStats {
	est := v.UnrefinedTGNSeries()
	truth := v.TrueSeries()
	dev := make([]float64, len(est))
	for i := range est {
		dev[i] = est[i] - truth[i]
	}
	return errorStatsOf(dev, est, truth)
}

// oracleGetNextSeries is the idealised GetNext model: sum(K)/sum(N) with
// true totals (Section 6.7).
func (v *PipelineView) oracleGetNextSeries() []float64 {
	var total float64
	for _, id := range v.Pipe.Nodes {
		total += float64(v.Trace.N[id])
	}
	out := make([]float64, v.NumObs())
	for i := range out {
		s := v.snap(i)
		var k float64
		for _, id := range v.Pipe.Nodes {
			k += float64(s.K[id])
		}
		if total <= 0 {
			out[i] = 1
			continue
		}
		out[i] = clamp01(k / total)
	}
	return out
}

// ErrorStats aggregates the deviation of an estimator from true progress
// over a pipeline's observations, in the paper's metrics.
type ErrorStats struct {
	L1    float64 // mean absolute deviation
	L2    float64 // root mean squared deviation
	Ratio float64 // mean max(est/true, true/est)
}

// Errors computes the estimator's error statistics against true pipeline
// progress (measured in virtual time, as the paper measures wall time).
func (v *PipelineView) Errors(kind Kind) ErrorStats {
	est := v.Series(kind)
	truth := v.TrueSeries()
	dev := make([]float64, len(est))
	for i := range est {
		dev[i] = est[i] - truth[i]
	}
	return errorStatsOf(dev, est, truth)
}

// errorStatsOf bundles the three error metrics.
func errorStatsOf(dev, est, truth []float64) ErrorStats {
	return ErrorStats{
		L1:    stats.L1Error(dev),
		L2:    stats.L2Error(dev),
		Ratio: stats.RatioError(est, truth),
	}
}

// ErrorStatsFrom computes error statistics for an externally composed
// progress series (used by online estimator revision, which splices the
// series of two estimators).
func ErrorStatsFrom(dev, est, truth []float64) ErrorStats {
	return errorStatsOf(dev, est, truth)
}

// AllErrors computes error statistics for every selectable estimator.
func (v *PipelineView) AllErrors() map[Kind]ErrorStats {
	out := make(map[Kind]ErrorStats, NumKinds)
	for _, k := range Kinds() {
		out[k] = v.Errors(k)
	}
	return out
}

// Best returns the estimator with the smallest L1 error among kinds.
func Best(errs map[Kind]ErrorStats, kinds []Kind) (Kind, float64) {
	best := kinds[0]
	bestErr := math.Inf(1)
	for _, k := range kinds {
		if e, ok := errs[k]; ok && e.L1 < bestErr {
			best, bestErr = k, e.L1
		}
	}
	return best, bestErr
}
