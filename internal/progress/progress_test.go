package progress

import (
	"math"
	"testing"

	"progressest/internal/catalog"
	"progressest/internal/datagen"
	"progressest/internal/exec"
	"progressest/internal/optimizer"
	"progressest/internal/pipeline"
	"progressest/internal/plan"
)

// manualTrace builds a tiny scan->filter trace with hand-set counters for
// exact arithmetic checks.
func manualTrace() *exec.Trace {
	scan := &plan.Node{Op: plan.TableScan, TableName: "t", EstRows: 100, RowWidth: 10, OutCols: 1}
	filt := &plan.Node{Op: plan.Filter, Children: []*plan.Node{scan}, EstRows: 50, RowWidth: 10, OutCols: 1}
	p := plan.Finalize(filt)
	pipes := pipeline.Decompose(p)

	mk := func(t float64, k0, k1 int64) exec.Snapshot {
		return exec.Snapshot{Time: t, K: []int64{k0, k1}, R: make([]int64, 2), W: make([]int64, 2)}
	}
	tr := &exec.Trace{
		Plan:  p,
		Pipes: pipes,
		Snapshots: []exec.Snapshot{
			mk(10, 25, 10),
			mk(20, 50, 20),
			mk(30, 75, 40),
			mk(40, 100, 80),
		},
		N:                 []int64{100, 80},
		FinalR:            make([]int64, 2),
		FinalW:            make([]int64, 2),
		PipeSpans:         []exec.Span{{Start: 0, End: 40}},
		TotalTime:         40,
		DriverTotalsKnown: []bool{true},
		DriverTotal:       []int64{100, 0},
	}
	return tr
}

func TestDNEExactArithmetic(t *testing.T) {
	v := NewPipelineView(manualTrace(), 0)
	s := v.Series(DNE)
	want := []float64{0.25, 0.5, 0.75, 1.0}
	for i := range want {
		if math.Abs(s[i]-want[i]) > 1e-12 {
			t.Errorf("DNE[%d] = %v, want %v", i, s[i], want[i])
		}
	}
}

func TestTGNExactArithmetic(t *testing.T) {
	v := NewPipelineView(manualTrace(), 0)
	s := v.Series(TGN)
	// E0 = [100 (exact driver), 50]; bounds refinement lifts E1 to K1 when
	// K1 exceeds it: at obs 3, K1=80 > 50, so E1=80.
	want := []float64{
		(25.0 + 10) / (100 + 50),
		(50.0 + 20) / (100 + 50),
		(75.0 + 40) / (100 + 50),
		(100.0 + 80) / (100 + 80),
	}
	for i := range want {
		if math.Abs(s[i]-want[i]) > 1e-12 {
			t.Errorf("TGN[%d] = %v, want %v", i, s[i], want[i])
		}
	}
}

func TestTGNINTExact(t *testing.T) {
	v := NewPipelineView(manualTrace(), 0)
	s := v.Series(TGNINT)
	// TGNINT = K / (K + (1-DNE)*E) with K,E summed over the pipeline.
	es := []float64{150, 150, 150, 180}
	ks := []float64{35, 70, 115, 180}
	dnes := []float64{0.25, 0.5, 0.75, 1.0}
	for i := range ks {
		want := ks[i] / (ks[i] + (1-dnes[i])*es[i])
		if math.Abs(s[i]-want) > 1e-12 {
			t.Errorf("TGNINT[%d] = %v, want %v", i, s[i], want)
		}
	}
	if s[3] != 1 {
		t.Errorf("TGNINT should reach 1 when drivers are consumed, got %v", s[3])
	}
}

func TestOracleGetNextExact(t *testing.T) {
	v := NewPipelineView(manualTrace(), 0)
	s := v.Series(OracleGetNext)
	// Totals: N = 100+80 = 180.
	want := []float64{35.0 / 180, 70.0 / 180, 115.0 / 180, 1.0}
	for i := range want {
		if math.Abs(s[i]-want[i]) > 1e-12 {
			t.Errorf("OracleGetNext[%d] = %v, want %v", i, s[i], want[i])
		}
	}
}

func TestSafeIsGeometricMeanOfBounds(t *testing.T) {
	v := NewPipelineView(manualTrace(), 0)
	pmax := v.Series(PMAX)
	safe := v.Series(SAFE)
	for i := range pmax {
		if safe[i] < pmax[i]-1e-12 {
			t.Errorf("SAFE[%d]=%v should be >= PMAX[%d]=%v", i, safe[i], i, pmax[i])
		}
		if safe[i] > 1 || pmax[i] > 1 || safe[i] < 0 || pmax[i] < 0 {
			t.Errorf("bounds estimators out of range at %d", i)
		}
	}
}

func TestBatchAndSeekVariantsEqualDNEWithoutThoseOps(t *testing.T) {
	// The paper notes BATCHDNE and DNESEEK produce identical estimates to
	// DNE for pipelines without BatchSort/IndexSeek operators.
	v := NewPipelineView(manualTrace(), 0)
	dne := v.Series(DNE)
	for i := range dne {
		if v.Series(BATCHDNE)[i] != dne[i] {
			t.Errorf("BATCHDNE differs from DNE at %d without batch sorts", i)
		}
		if v.Series(DNESEEK)[i] != dne[i] {
			t.Errorf("DNESEEK differs from DNE at %d without seeks", i)
		}
	}
}

func TestErrorStatsOrdering(t *testing.T) {
	v := NewPipelineView(manualTrace(), 0)
	for _, k := range Kinds() {
		e := v.Errors(k)
		if e.L2 < e.L1-1e-9 {
			t.Errorf("%v: L2 %v < L1 %v", k, e.L2, e.L1)
		}
		if e.L1 < 0 || e.Ratio < 1 {
			t.Errorf("%v: invalid error stats %+v", k, e)
		}
	}
}

// realViews builds views for all pipelines of a realistic query.
func realViews(t *testing.T, level catalog.DesignLevel) []*PipelineView {
	t.Helper()
	db := datagen.GenTPCH(datagen.Params{Scale: 0.08, Zipf: 1, Seed: 4})
	if err := db.ApplyDesign(datagen.Designs(datagen.TPCHLike)[level]); err != nil {
		t.Fatal(err)
	}
	spec := &optimizer.QuerySpec{
		First: optimizer.TableTerm{Table: "orders", Filters: []optimizer.FilterSpec{
			{Column: "o_orderdate", IsRange: true, Lo: 1, Hi: 1600},
		}},
		Joins: []optimizer.JoinTerm{{
			Right:     optimizer.TableTerm{Table: "lineitem"},
			LeftTable: "orders", LeftCol: "o_orderkey", RightCol: "l_orderkey",
		}},
		Group: &optimizer.GroupSpec{
			Cols: []optimizer.ColRef{{Table: "lineitem", Column: "l_returnflag"}},
			Aggs: []optimizer.AggRef{{Func: plan.AggCount}},
		},
	}
	pl, err := optimizer.NewPlanner(db, optimizer.BuildStats(db)).Plan(spec)
	if err != nil {
		t.Fatal(err)
	}
	tr := exec.Run(db, pl, exec.Options{})
	var views []*PipelineView
	for i := range tr.Pipes.Pipelines {
		v := NewPipelineView(tr, i)
		if v.NumObs() >= 5 {
			views = append(views, v)
		}
	}
	if len(views) == 0 {
		t.Fatal("no pipelines with enough observations")
	}
	return views
}

func TestAllEstimatorsInRangeOnRealQuery(t *testing.T) {
	for _, lvl := range []catalog.DesignLevel{catalog.Untuned, catalog.FullyTuned} {
		for _, v := range realViews(t, lvl) {
			for _, k := range []Kind{DNE, TGN, LUO, PMAX, SAFE, BATCHDNE, DNESEEK, TGNINT, OracleGetNext, OracleBytes} {
				for i, val := range v.Series(k) {
					if val < 0 || val > 1 || math.IsNaN(val) {
						t.Fatalf("%v/%v: estimate %v out of range at obs %d", lvl, k, val, i)
					}
				}
			}
		}
	}
}

func TestDNEMonotoneWithKnownDrivers(t *testing.T) {
	for _, v := range realViews(t, catalog.Untuned) {
		if !v.DriverKnown {
			continue
		}
		s := v.Series(DNE)
		for i := 1; i < len(s); i++ {
			if s[i] < s[i-1]-1e-9 {
				t.Fatalf("DNE not monotone at obs %d: %v -> %v", i, s[i-1], s[i])
			}
		}
	}
}

func TestOracleGetNextBeatsPracticalEstimatorsOnAverage(t *testing.T) {
	// Section 6.7: the idealised GetNext model has much lower error than
	// practical estimators. Check it on aggregate over real pipelines.
	var oracleSum, bestPracticalSum float64
	n := 0
	for _, lvl := range []catalog.DesignLevel{catalog.Untuned, catalog.PartiallyTuned, catalog.FullyTuned} {
		for _, v := range realViews(t, lvl) {
			errs := v.AllErrors()
			oracleSum += v.Errors(OracleGetNext).L1
			_, best := Best(errs, CoreKinds())
			bestPracticalSum += best
			n++
		}
	}
	if n == 0 {
		t.Fatal("no pipelines")
	}
	if oracleSum/float64(n) > bestPracticalSum/float64(n)+0.05 {
		t.Errorf("oracle L1 %.4f should not be much worse than best practical %.4f",
			oracleSum/float64(n), bestPracticalSum/float64(n))
	}
}

func TestBestSelectsMinimum(t *testing.T) {
	errs := map[Kind]ErrorStats{
		DNE: {L1: 0.3}, TGN: {L1: 0.1}, LUO: {L1: 0.2},
	}
	k, e := Best(errs, CoreKinds())
	if k != TGN || e != 0.1 {
		t.Errorf("Best = %v/%v, want TGN/0.1", k, e)
	}
}

// Ensure estimators behave on a trace with spills: the extra GetNext calls
// must not push estimates out of range.
func TestEstimatorsWithSpills(t *testing.T) {
	db := datagen.GenTPCH(datagen.Params{Scale: 0.08, Zipf: 1, Seed: 4})
	if err := db.ApplyDesign(datagen.Designs(datagen.TPCHLike)[catalog.Untuned]); err != nil {
		t.Fatal(err)
	}
	spec := &optimizer.QuerySpec{
		First: optimizer.TableTerm{Table: "orders"},
		Joins: []optimizer.JoinTerm{{
			Right:     optimizer.TableTerm{Table: "lineitem"},
			LeftTable: "orders", LeftCol: "o_orderkey", RightCol: "l_orderkey",
		}},
	}
	pl, err := optimizer.NewPlanner(db, optimizer.BuildStats(db)).Plan(spec)
	if err != nil {
		t.Fatal(err)
	}
	if pl.CountOp(plan.HashJoin) == 0 {
		t.Skip("no hash join in plan")
	}
	tr := exec.Run(db, pl, exec.Options{MemBudgetRows: 200})
	for i := range tr.Pipes.Pipelines {
		v := NewPipelineView(tr, i)
		if v.NumObs() < 3 {
			continue
		}
		for _, k := range Kinds() {
			for _, val := range v.Series(k) {
				if val < 0 || val > 1 || math.IsNaN(val) {
					t.Fatalf("%v out of range with spills: %v", k, val)
				}
			}
		}
	}
}
