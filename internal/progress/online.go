package progress

import (
	"progressest/internal/exec"
	"progressest/internal/pipeline"
	"progressest/internal/plan"
)

// OnlineView is the streaming counterpart of the per-pipeline replay
// views: it implements exec.Observer, consumes counter snapshots one at a
// time while the query runs, and maintains every candidate estimator's
// current estimate incrementally — O(pipeline nodes + estimators) work per
// snapshot instead of the O(snapshots·pipelines) span scans of a full
// replay. After the run completes, each pipeline's accumulated series is
// exactly the series an offline PipelineView would compute from the
// finished trace (the estimator primitives are shared, so the arithmetic
// is bit-identical).
type OnlineView struct {
	exec.BaseObserver

	Plan      *plan.Plan
	Pipes     *pipeline.Decomposition
	Pipelines []*OnlinePipeline

	// Trace is the finished trace, set by OnDone.
	Trace *exec.Trace

	// Reserve, when positive, pre-sizes each pipeline's observation
	// storage for this many observations at pipeline start: all
	// per-observation series are carved from one slab, so feeding
	// snapshots allocates nothing until the reservation is exceeded
	// (and then only the amortized growth the append built-in performs).
	// The live monitor reserves the engine's target observation count.
	Reserve int

	snapCount int // retained snapshots seen so far (mirrors the trace sink)
	done      bool

	wbuf []float64 // QueryEstimate weight scratch, reused across calls
}

// NewOnlineView prepares a streaming view for one execution of the plan.
// Pass it as exec.Options.Observer.
func NewOnlineView(p *plan.Plan, pipes *pipeline.Decomposition) *OnlineView {
	o := &OnlineView{
		Plan:      p,
		Pipes:     pipes,
		Pipelines: make([]*OnlinePipeline, 0, len(pipes.Pipelines)),
		wbuf:      make([]float64, len(pipes.Pipelines)),
	}
	for _, pl := range pipes.Pipelines {
		o.Pipelines = append(o.Pipelines, &OnlinePipeline{pipe: pl, plan: p})
	}
	return o
}

// Done reports whether the observed execution has completed.
func (o *OnlineView) Done() bool { return o.done }

// OnPipelineStart implements exec.Observer: it freezes the pipeline's
// static context from the driver totals known at start.
func (o *OnlineView) OnPipelineStart(st exec.PipelineStart) {
	p := o.Pipelines[st.Pipe]
	p.PipeContext = NewPipeContext(o.Plan, p.pipe, st.DriverTotalsKnown,
		func(node int) int64 { return st.DriverTotals[node] })
	p.Started = true
	p.StartTime = st.Time
	p.worst = newWorstState()
	if p.lastSig == nil {
		p.lastSig = make([]int64, 3*len(p.pipe.Nodes))
	}
	p.reserve(o.Reserve)
}

// OnSnapshot implements exec.Observer: every started, still-active
// pipeline appends its current estimates.
func (o *OnlineView) OnSnapshot(s exec.Snapshot) {
	g := o.snapCount
	o.snapCount++
	for _, p := range o.Pipelines {
		if p.Started && !p.Ended {
			p.feed(&s, g)
		}
	}
}

// OnSnapshots implements exec.BatchObserver: one call folds a whole
// delivery batch into the per-pipeline state, observation by observation
// — the arithmetic is the per-snapshot path's, so the accumulated series
// are bit-identical to unbatched delivery.
func (o *OnlineView) OnSnapshots(batch []exec.Snapshot) {
	for i := range batch {
		o.OnSnapshot(batch[i])
	}
}

// OnThin implements exec.Observer: the engine dropped the even 0-based
// ordinals of the retained snapshots, so every pipeline drops the same
// ones and rebuilds the history-dependent estimator state.
func (o *OnlineView) OnThin() {
	o.snapCount /= 2
	for _, p := range o.Pipelines {
		if p.Started {
			p.thin()
		}
	}
}

// OnPipelineEnd implements exec.Observer: estimates recorded after the
// span's final activity are discarded, leaving exactly the observations an
// offline replay attributes to the pipeline.
func (o *OnlineView) OnPipelineEnd(pi int, end float64) {
	p := o.Pipelines[pi]
	p.Ended = true
	p.EndTime = end
	if end <= p.StartTime {
		// Degenerate span (a single activity instant): the offline replay
		// attributes no observations to it.
		p.truncate(0)
		return
	}
	n := len(p.times)
	for n > 0 && p.times[n-1] > end {
		n--
	}
	p.truncate(n)
}

// OnDone implements exec.Observer.
func (o *OnlineView) OnDone(tr *exec.Trace) {
	o.Trace = tr
	o.done = true
}

// QueryEstimate combines the current per-pipeline estimates into a live
// whole-query estimate in the spirit of eq. 5: each pipeline weighted by
// its share of the estimated total work. Pipelines that have not started
// contribute zero; their weights use plan-time estimates until their
// driver totals become known at start. choose picks the estimator per
// pipeline.
// QueryEstimate is not safe for concurrent calls on one view (the weight
// scratch is reused across calls); the monitor invokes it only from the
// executing goroutine.
func (o *OnlineView) QueryEstimate(choose func(p int) Kind) float64 {
	var total, sum float64
	weights := o.wbuf
	if len(weights) != len(o.Pipelines) {
		weights = make([]float64, len(o.Pipelines))
		o.wbuf = weights
	}
	for i, p := range o.Pipelines {
		var w float64
		for _, id := range p.pipe.Nodes {
			if p.PipeContext != nil {
				w += p.E0[id]
			} else {
				w += o.Plan.Node(id).EstRows
			}
		}
		weights[i] = w
		total += w
	}
	if total <= 0 {
		return 0
	}
	for i, p := range o.Pipelines {
		switch {
		case p.Ended || (o.done && !p.Started):
			// Completed — or degenerate (never active) in a finished run.
			sum += weights[i] / total
		case !p.Started || p.NumObs() == 0:
			// Not started yet: contributes zero.
		default:
			sum += weights[i] / total * p.Estimate(choose(i))
		}
	}
	return clamp01(sum)
}

// OnlinePipeline is the incremental estimator state of one pipeline: the
// static PipeContext (frozen at pipeline start) plus the accumulated
// per-observation estimates of every candidate estimator.
type OnlinePipeline struct {
	*PipeContext

	Started bool
	Ended   bool
	// StartTime and EndTime bound the pipeline's activity span (EndTime is
	// valid once Ended).
	StartTime float64
	EndTime   float64

	// StaticCache holds the pipeline's static feature vector, computed
	// once at pipeline start by the features package.
	StaticCache []float64

	// FeatBuf is the reusable scratch the features package assembles the
	// full online feature vector into, so a selector re-pick allocates
	// nothing at steady state. Owned by features.OnlineFull; callers must
	// consume the returned vector before the next pick on this pipeline.
	FeatBuf []float64

	pipe *pipeline.Pipeline
	plan *plan.Plan

	times []float64           // snapshot virtual times, one per observation
	est   [NumKinds][]float64 // per-kind estimate series
	fracs []float64           // driver fraction per observation
	gidx  []int               // retained global snapshot index per observation

	// Per-observation sums needed to rebuild the worst-case (PMAX/SAFE)
	// state after thinning.
	kNodes, kDrivers, eDrivers []float64

	worst worstState

	// lastSig caches the previous snapshot's K/R/W values over the
	// pipeline's nodes; when unchanged, the previous estimates are reused
	// verbatim (they are pure functions of these counters).
	lastSig []int64
	valid   bool // lastSig corresponds to the last appended observation
}

// NumObs returns the number of observations recorded for the pipeline.
func (p *OnlinePipeline) NumObs() int { return len(p.times) }

// Estimate returns estimator kind's current (latest) value, or 0 before
// the first observation.
func (p *OnlinePipeline) Estimate(kind Kind) float64 {
	s := p.est[kind]
	if len(s) == 0 {
		return 0
	}
	return s[len(s)-1]
}

// EstimateAt returns estimator kind's value at observation ordinal i.
func (p *OnlinePipeline) EstimateAt(kind Kind, i int) float64 { return p.est[kind][i] }

// AppendSeries appends estimator kind's accumulated series to dst and
// returns the extended slice — the alloc-free counterpart of Series for
// callers that reuse a scratch buffer across reads.
func (p *OnlinePipeline) AppendSeries(dst []float64, kind Kind) []float64 {
	return append(dst, p.est[kind]...)
}

// Series returns a copy of estimator kind's accumulated series.
func (p *OnlinePipeline) Series(kind Kind) []float64 {
	return p.AppendSeries(nil, kind)
}

// DriverFraction returns the consumed driver-input fraction at observation
// ordinal i.
func (p *OnlinePipeline) DriverFraction(i int) float64 { return p.fracs[i] }

// CurrentDriverFraction returns the latest driver fraction (0 before the
// first observation).
func (p *OnlinePipeline) CurrentDriverFraction() float64 {
	if len(p.fracs) == 0 {
		return 0
	}
	return p.fracs[len(p.fracs)-1]
}

// TimeSinceStart returns the virtual time elapsed since the pipeline's
// start at observation ordinal i.
func (p *OnlinePipeline) TimeSinceStart(i int) float64 { return p.times[i] - p.StartTime }

// reserve pre-sizes every per-observation series for n observations,
// carving them all from one slab so pipeline start costs one allocation
// (plus one for the index column) instead of thirteen. Subsequent feeds
// append within capacity — allocation-free until n is exceeded.
func (p *OnlinePipeline) reserve(n int) {
	if n <= 0 || cap(p.times) >= n {
		return
	}
	slab := make([]float64, (5+int(NumKinds))*n)
	off := 0
	carve := func(old []float64) []float64 {
		s := slab[off : off+len(old) : off+n]
		copy(s, old)
		off += n
		return s
	}
	p.times = carve(p.times)
	p.fracs = carve(p.fracs)
	p.kNodes = carve(p.kNodes)
	p.kDrivers = carve(p.kDrivers)
	p.eDrivers = carve(p.eDrivers)
	for k := range p.est {
		p.est[k] = carve(p.est[k])
	}
	p.gidx = append(make([]int, 0, n), p.gidx...)
}

// feed appends the estimates for one snapshot.
func (p *OnlinePipeline) feed(s *exec.Snapshot, g int) {
	if p.unchanged(s) {
		// Counters identical to the previous observation: every estimator
		// is a pure function of them (and of state that only moves when
		// they move), so the previous values repeat exactly.
		n := len(p.times) - 1
		p.times = append(p.times, s.Time)
		p.fracs = append(p.fracs, p.fracs[n])
		p.kNodes = append(p.kNodes, p.kNodes[n])
		p.kDrivers = append(p.kDrivers, p.kDrivers[n])
		p.eDrivers = append(p.eDrivers, p.eDrivers[n])
		for k := range p.est {
			p.est[k] = append(p.est[k], p.est[k][n])
		}
		p.gidx = append(p.gidx, g)
		return
	}
	p.times = append(p.times, s.Time)
	p.fracs = append(p.fracs, p.driverFractionAt(s))
	k, _ := p.sums(p.Pipe.Nodes, s)
	dk, de := p.sums(p.Pipe.Drivers, s)
	p.kNodes = append(p.kNodes, k)
	p.kDrivers = append(p.kDrivers, dk)
	p.eDrivers = append(p.eDrivers, de)
	p.est[DNE] = append(p.est[DNE], p.ratioAt(p.Pipe.Drivers, s))
	p.est[TGN] = append(p.est[TGN], p.ratioAt(p.Pipe.Nodes, s))
	p.est[BATCHDNE] = append(p.est[BATCHDNE], p.ratioAt(p.batchDrivers, s))
	p.est[DNESEEK] = append(p.est[DNESEEK], p.ratioAt(p.seekDrivers, s))
	p.est[TGNINT] = append(p.est[TGNINT], p.tgnintAt(s))
	p.est[LUO] = append(p.est[LUO], p.luoAt(s))
	pmax, safe := worstStep(&p.worst, k, dk, de)
	p.est[PMAX] = append(p.est[PMAX], pmax)
	p.est[SAFE] = append(p.est[SAFE], safe)
	p.gidx = append(p.gidx, g)
	p.remember(s)
}

// unchanged reports whether the snapshot's counters over the pipeline's
// nodes equal the previously remembered ones.
func (p *OnlinePipeline) unchanged(s *exec.Snapshot) bool {
	if !p.valid {
		return false
	}
	for i, id := range p.Pipe.Nodes {
		j := 3 * i
		if p.lastSig[j] != s.K[id] || p.lastSig[j+1] != s.R[id] || p.lastSig[j+2] != s.W[id] {
			return false
		}
	}
	return true
}

func (p *OnlinePipeline) remember(s *exec.Snapshot) {
	if p.lastSig == nil {
		p.lastSig = make([]int64, 3*len(p.Pipe.Nodes))
	}
	for i, id := range p.Pipe.Nodes {
		j := 3 * i
		p.lastSig[j], p.lastSig[j+1], p.lastSig[j+2] = s.K[id], s.R[id], s.W[id]
	}
	p.valid = true
}

// thin mirrors the engine's history thinning: observations whose retained
// global index is even are dropped, remaining indices are remapped, and
// the history-dependent worst-case series is rebuilt over what remains.
func (p *OnlinePipeline) thin() {
	w := 0
	for r := 0; r < len(p.times); r++ {
		if p.gidx[r]%2 != 1 {
			continue
		}
		p.times[w] = p.times[r]
		p.fracs[w] = p.fracs[r]
		p.kNodes[w] = p.kNodes[r]
		p.kDrivers[w] = p.kDrivers[r]
		p.eDrivers[w] = p.eDrivers[r]
		for k := range p.est {
			p.est[k][w] = p.est[k][r]
		}
		p.gidx[w] = (p.gidx[r] - 1) / 2
		w++
	}
	p.truncate(w)
	p.rebuildWorst()
	// The last retained observation may no longer be the last fed
	// snapshot, so the pure-function shortcut must re-verify.
	p.valid = false
}

// rebuildWorst recomputes the PMAX/SAFE series: after thinning, the
// fan-out bound m derives from the deltas of the retained observations,
// exactly as an offline replay over the thinned trace would compute it.
func (p *OnlinePipeline) rebuildWorst() {
	st := newWorstState()
	for i := range p.times {
		p.est[PMAX][i], p.est[SAFE][i] = worstStep(&st, p.kNodes[i], p.kDrivers[i], p.eDrivers[i])
	}
	p.worst = st
}

// truncate drops observations at ordinal n and beyond.
func (p *OnlinePipeline) truncate(n int) {
	p.times = p.times[:n]
	p.fracs = p.fracs[:n]
	p.kNodes = p.kNodes[:n]
	p.kDrivers = p.kDrivers[:n]
	p.eDrivers = p.eDrivers[:n]
	for k := range p.est {
		p.est[k] = p.est[k][:n]
	}
	p.gidx = p.gidx[:n]
}
