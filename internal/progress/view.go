package progress

import (
	"math"

	"progressest/internal/exec"
	"progressest/internal/pipeline"
	"progressest/internal/plan"
)

// PipeContext is the static per-pipeline evaluation context shared by the
// offline replay path (PipelineView) and the streaming path (OnlineView):
// the driver-node sets, exact driver totals where known, and structural
// upper bounds used for online estimate refinement (Section 3.3). It is
// fully determined at pipeline start and never changes afterwards.
type PipeContext struct {
	Plan *plan.Plan
	Pipe *pipeline.Pipeline

	// E0 is the optimizer estimate per node (indexed by node ID), with
	// exact totals substituted for driver nodes when known.
	E0 []float64
	// UB is the structural upper bound on N_i per node (+Inf if none).
	UB []float64
	// Width is the logical row width per node.
	Width []float64

	// DriverKnown reports whether all driver totals were known at
	// pipeline start.
	DriverKnown bool

	batchDrivers []int // drivers + BatchSort members (eq. 6)
	seekDrivers  []int // drivers + IndexSeek members (eq. 7)
	top          int   // the pipeline's output node
	spill        []int // members that can incur spill I/O
}

// NewPipeContext prepares the static evaluation context of a pipeline.
// driverTotal returns the exact input size of a driver node; it is only
// consulted when known is true.
func NewPipeContext(p *plan.Plan, pipe *pipeline.Pipeline, known bool, driverTotal func(node int) int64) *PipeContext {
	nodes := p.Nodes()
	c := &PipeContext{
		Plan:  p,
		Pipe:  pipe,
		E0:    make([]float64, len(nodes)),
		UB:    make([]float64, len(nodes)),
		Width: make([]float64, len(nodes)),
	}
	for _, n := range nodes {
		c.E0[n.ID] = n.EstRows
		c.UB[n.ID] = math.Inf(1)
		c.Width[n.ID] = n.RowWidth
	}
	c.DriverKnown = known
	// Exact totals for driver nodes when known (the common case for scans
	// and completed blocking operators).
	if known {
		for _, d := range pipe.Drivers {
			t := float64(driverTotal(d))
			c.E0[d] = t
			c.UB[d] = t
		}
	}
	// Structural upper bounds: a streaming unary operator cannot emit more
	// rows than its input's bound.
	var bound func(n *plan.Node) float64
	bound = func(n *plan.Node) float64 {
		if !pipe.Contains(n.ID) {
			return math.Inf(1)
		}
		switch n.Op {
		case plan.Filter, plan.Project, plan.BatchSort, plan.StreamAgg:
			b := bound(n.Children[0])
			if b < c.UB[n.ID] {
				c.UB[n.ID] = b
			}
		case plan.Top:
			b := bound(n.Children[0])
			if float64(n.TopN) < b {
				b = float64(n.TopN)
			}
			if b < c.UB[n.ID] {
				c.UB[n.ID] = b
			}
		default:
			for _, ch := range n.Children {
				bound(ch)
			}
		}
		return c.UB[n.ID]
	}
	bound(p.Root)

	// Extended driver sets for the batch/seek estimator variants.
	c.batchDrivers = append([]int(nil), pipe.Drivers...)
	c.seekDrivers = append([]int(nil), pipe.Drivers...)
	for _, id := range pipe.Nodes {
		switch p.Node(id).Op {
		case plan.BatchSort:
			if !pipe.IsDriver(id) {
				c.batchDrivers = append(c.batchDrivers, id)
			}
		case plan.IndexSeek:
			if !pipe.IsDriver(id) {
				c.seekDrivers = append(c.seekDrivers, id)
			}
		}
	}
	c.top = c.findTopNode()
	for _, id := range pipe.Nodes {
		op := p.Node(id).Op
		if op == plan.HashJoin || op == plan.Sort {
			c.spill = append(c.spill, id)
		}
	}
	return c
}

// findTopNode returns the pipeline's output node: the member whose parent
// is outside the pipeline (or the plan root).
func (c *PipeContext) findTopNode() int {
	inPipe := make(map[int]bool, len(c.Pipe.Nodes))
	for _, id := range c.Pipe.Nodes {
		inPipe[id] = true
	}
	childOf := make(map[int]bool)
	for _, id := range c.Pipe.Nodes {
		for _, ch := range c.Plan.Node(id).Children {
			if inPipe[ch.ID] {
				childOf[ch.ID] = true
			}
		}
	}
	for _, id := range c.Pipe.Nodes {
		if !childOf[id] {
			return id
		}
	}
	return c.Pipe.Nodes[len(c.Pipe.Nodes)-1]
}

// refinedE returns the bounds-refined estimate E_i(t) (Section 3.3,
// following [6]): the initial estimate clamped to [K_i(t), UB_i].
func (c *PipeContext) refinedE(id int, s *exec.Snapshot) float64 {
	e := c.E0[id]
	if k := float64(s.K[id]); k > e {
		e = k
	}
	if ub := c.UB[id]; e > ub {
		e = ub
	}
	return e
}

// sums returns sum of K and of refined E over the given node set.
func (c *PipeContext) sums(ids []int, s *exec.Snapshot) (k, e float64) {
	for _, id := range ids {
		k += float64(s.K[id])
		e += c.refinedE(id, s)
	}
	return k, e
}

// PipelineView is the per-pipeline offline evaluation context shared by
// all estimators: the static PipeContext plus the observation prefix of a
// finished trace belonging to the pipeline.
type PipelineView struct {
	*PipeContext
	Trace *exec.Trace

	// obsLo and obsHi bound the half-open global snapshot index range
	// falling within the pipeline's span (the observations are one
	// contiguous run because snapshot times are strictly increasing).
	obsLo, obsHi int

	cache map[Kind][]float64
}

// NewPipelineView prepares the evaluation context for pipeline p of the
// trace.
func NewPipelineView(tr *exec.Trace, p int) *PipelineView {
	pipe := tr.Pipes.Pipelines[p]
	v := &PipelineView{
		Trace: tr,
		PipeContext: NewPipeContext(tr.Plan, pipe, tr.DriverTotalsKnown[p],
			func(node int) int64 { return tr.DriverTotal[node] }),
	}
	v.obsLo, v.obsHi = tr.ObsRange(p)
	return v
}

// NumObs returns the number of observations within the pipeline.
func (v *PipelineView) NumObs() int { return v.obsHi - v.obsLo }

// ObsIndex maps an observation ordinal to its global snapshot index.
func (v *PipelineView) ObsIndex(i int) int { return v.obsLo + i }

// snap returns the snapshot of observation ordinal i.
func (v *PipelineView) snap(i int) *exec.Snapshot {
	return &v.Trace.Snapshots[v.obsLo+i]
}

// DriverFraction returns alpha_Pj (eq. 1): the consumed fraction of the
// driver-node inputs at observation ordinal i.
func (v *PipelineView) DriverFraction(i int) float64 {
	return v.driverFractionAt(v.snap(i))
}

// TimeSinceStart returns the virtual time elapsed since the pipeline's
// span start at observation ordinal i (the online-observable part of true
// pipeline progress).
func (v *PipelineView) TimeSinceStart(i int) float64 {
	return v.snap(i).Time - v.Trace.PipeSpans[v.Pipe.ID].Start
}

// TrueSeries returns the true pipeline progress at each observation.
func (v *PipelineView) TrueSeries() []float64 {
	out := make([]float64, v.NumObs())
	pid := v.Pipe.ID
	for i := range out {
		out[i] = v.Trace.TruePipelineProgress(pid, v.obsLo+i)
	}
	return out
}

// TimeFractionSeries returns, per observation, the fraction of the
// pipeline's span elapsed (identical to TrueSeries; exposed for feature
// computation readability).
func (v *PipelineView) TimeFractionSeries() []float64 { return v.TrueSeries() }

// MarkerObservation returns the first observation ordinal t{x} at which
// the consumed driver-input fraction reaches frac (Section 4.4.2), or -1
// if the pipeline never reaches it within the recorded observations.
func (v *PipelineView) MarkerObservation(frac float64) int {
	for i := 0; i < v.NumObs(); i++ {
		if v.DriverFraction(i) >= frac {
			return i
		}
	}
	return -1
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	if math.IsNaN(x) {
		return 0
	}
	return x
}
