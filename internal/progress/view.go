package progress

import (
	"math"

	"progressest/internal/exec"
	"progressest/internal/pipeline"
	"progressest/internal/plan"
)

// PipelineView is the per-pipeline evaluation context shared by all
// estimators: the observation prefix belonging to the pipeline, the
// driver-node set, exact driver totals where known, and structural upper
// bounds used for online estimate refinement (Section 3.3).
type PipelineView struct {
	Trace *exec.Trace
	Pipe  *pipeline.Pipeline

	// Obs are the snapshot indices falling within the pipeline's span.
	Obs []int

	// E0 is the optimizer estimate per node (indexed by node ID), with
	// exact totals substituted for driver nodes when known.
	E0 []float64
	// UB is the structural upper bound on N_i per node (+Inf if none).
	UB []float64
	// Width is the logical row width per node.
	Width []float64

	// DriverKnown reports whether all driver totals were known at
	// pipeline start.
	DriverKnown bool

	batchDrivers []int // drivers + BatchSort members (eq. 6)
	seekDrivers  []int // drivers + IndexSeek members (eq. 7)

	cache map[Kind][]float64
}

// NewPipelineView prepares the evaluation context for pipeline p of the
// trace.
func NewPipelineView(tr *exec.Trace, p int) *PipelineView {
	pipe := tr.Pipes.Pipelines[p]
	nodes := tr.Plan.Nodes()
	v := &PipelineView{
		Trace: tr,
		Pipe:  pipe,
		Obs:   tr.PipelineObservations(p),
		E0:    make([]float64, len(nodes)),
		UB:    make([]float64, len(nodes)),
		Width: make([]float64, len(nodes)),
	}
	for _, n := range nodes {
		v.E0[n.ID] = n.EstRows
		v.UB[n.ID] = math.Inf(1)
		v.Width[n.ID] = n.RowWidth
	}
	v.DriverKnown = tr.DriverTotalsKnown[p]
	// Exact totals for driver nodes when known (the common case for scans
	// and completed blocking operators).
	for _, d := range pipe.Drivers {
		if t := tr.DriverTotal[d]; t > 0 || v.DriverKnown {
			if v.DriverKnown {
				v.E0[d] = float64(tr.DriverTotal[d])
				v.UB[d] = float64(tr.DriverTotal[d])
			}
		}
	}
	// Structural upper bounds: a streaming unary operator cannot emit more
	// rows than its input's bound.
	var bound func(n *plan.Node) float64
	bound = func(n *plan.Node) float64 {
		if !pipe.Contains(n.ID) {
			return math.Inf(1)
		}
		switch n.Op {
		case plan.Filter, plan.Project, plan.BatchSort, plan.StreamAgg:
			b := bound(n.Children[0])
			if b < v.UB[n.ID] {
				v.UB[n.ID] = b
			}
		case plan.Top:
			b := bound(n.Children[0])
			if float64(n.TopN) < b {
				b = float64(n.TopN)
			}
			if b < v.UB[n.ID] {
				v.UB[n.ID] = b
			}
		default:
			for _, c := range n.Children {
				bound(c)
			}
		}
		return v.UB[n.ID]
	}
	bound(tr.Plan.Root)

	// Extended driver sets for the batch/seek estimator variants.
	v.batchDrivers = append([]int(nil), pipe.Drivers...)
	v.seekDrivers = append([]int(nil), pipe.Drivers...)
	for _, id := range pipe.Nodes {
		switch tr.Plan.Node(id).Op {
		case plan.BatchSort:
			if !pipe.IsDriver(id) {
				v.batchDrivers = append(v.batchDrivers, id)
			}
		case plan.IndexSeek:
			if !pipe.IsDriver(id) {
				v.seekDrivers = append(v.seekDrivers, id)
			}
		}
	}
	return v
}

// NumObs returns the number of observations within the pipeline.
func (v *PipelineView) NumObs() int { return len(v.Obs) }

// snap returns the snapshot of observation ordinal i.
func (v *PipelineView) snap(i int) *exec.Snapshot {
	return &v.Trace.Snapshots[v.Obs[i]]
}

// refinedE returns the bounds-refined estimate E_i(t) (Section 3.3,
// following [6]): the initial estimate clamped to [K_i(t), UB_i].
func (v *PipelineView) refinedE(id int, s *exec.Snapshot) float64 {
	e := v.E0[id]
	if k := float64(s.K[id]); k > e {
		e = k
	}
	if ub := v.UB[id]; e > ub {
		e = ub
	}
	return e
}

// sums returns sum of K and of refined E over the given node set.
func (v *PipelineView) sums(ids []int, s *exec.Snapshot) (k, e float64) {
	for _, id := range ids {
		k += float64(s.K[id])
		e += v.refinedE(id, s)
	}
	return k, e
}

// DriverFraction returns alpha_Pj (eq. 1): the consumed fraction of the
// driver-node inputs at observation ordinal i.
func (v *PipelineView) DriverFraction(i int) float64 {
	k, e := v.sums(v.Pipe.Drivers, v.snap(i))
	if e <= 0 {
		return 1
	}
	return clamp01(k / e)
}

// TrueSeries returns the true pipeline progress at each observation.
func (v *PipelineView) TrueSeries() []float64 {
	out := make([]float64, len(v.Obs))
	pid := v.Pipe.ID
	for i, oi := range v.Obs {
		out[i] = v.Trace.TruePipelineProgress(pid, oi)
	}
	return out
}

// TimeFractionSeries returns, per observation, the fraction of the
// pipeline's span elapsed (identical to TrueSeries; exposed for feature
// computation readability).
func (v *PipelineView) TimeFractionSeries() []float64 { return v.TrueSeries() }

// MarkerObservation returns the first observation ordinal t{x} at which
// the consumed driver-input fraction reaches frac (Section 4.4.2), or -1
// if the pipeline never reaches it within the recorded observations.
func (v *PipelineView) MarkerObservation(frac float64) int {
	for i := range v.Obs {
		if v.DriverFraction(i) >= frac {
			return i
		}
	}
	return -1
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	if math.IsNaN(x) {
		return 0
	}
	return x
}
