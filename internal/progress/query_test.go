package progress

import (
	"math"
	"testing"

	"progressest/internal/catalog"
	"progressest/internal/datagen"
	"progressest/internal/exec"
	"progressest/internal/optimizer"
	"progressest/internal/plan"
)

func queryView(t *testing.T) *QueryView {
	t.Helper()
	db := datagen.GenTPCH(datagen.Params{Scale: 0.08, Zipf: 1, Seed: 21})
	if err := db.ApplyDesign(datagen.Designs(datagen.TPCHLike)[catalog.Untuned]); err != nil {
		t.Fatal(err)
	}
	spec := &optimizer.QuerySpec{
		First: optimizer.TableTerm{Table: "orders", Filters: []optimizer.FilterSpec{
			{Column: "o_orderdate", IsRange: true, Lo: 1, Hi: 1800},
		}},
		Joins: []optimizer.JoinTerm{{
			Right:     optimizer.TableTerm{Table: "lineitem"},
			LeftTable: "orders", LeftCol: "o_orderkey", RightCol: "l_orderkey",
		}},
		Group: &optimizer.GroupSpec{
			Cols: []optimizer.ColRef{{Table: "lineitem", Column: "l_returnflag"}},
			Aggs: []optimizer.AggRef{{Func: plan.AggCount}},
		},
	}
	pl, err := optimizer.NewPlanner(db, optimizer.BuildStats(db)).Plan(spec)
	if err != nil {
		t.Fatal(err)
	}
	tr := exec.Run(db, pl, exec.Options{})
	return NewQueryView(tr)
}

func TestQueryWeightsNormalised(t *testing.T) {
	q := queryView(t)
	var sum float64
	for p := range q.Views {
		w := q.Weight(p)
		if w < 0 || w > 1 {
			t.Fatalf("weight %v out of range", w)
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %v", sum)
	}
}

func TestQuerySeriesBoundedAndTerminal(t *testing.T) {
	q := queryView(t)
	for _, k := range []Kind{DNE, TGN, LUO, TGNINT, OracleGetNext} {
		s := q.Series(k)
		for i, v := range s {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("%v: query progress %v at obs %d", k, v, i)
			}
		}
		if last := s[len(s)-1]; last < 0.98 {
			t.Errorf("%v: final query progress %v, want ~1", k, last)
		}
	}
}

func TestQueryTrueSeriesMonotone(t *testing.T) {
	q := queryView(t)
	truth := q.TrueSeries()
	for i := 1; i < len(truth); i++ {
		if truth[i] < truth[i-1] {
			t.Fatalf("true progress not monotone at %d", i)
		}
	}
	if truth[len(truth)-1] < 0.999 {
		t.Errorf("final true progress %v", truth[len(truth)-1])
	}
}

func TestQueryOracleBeatsWorstEstimator(t *testing.T) {
	q := queryView(t)
	oracle := q.Errors(OracleGetNext).L1
	worst := 0.0
	for _, k := range CoreKinds() {
		if e := q.Errors(k).L1; e > worst {
			worst = e
		}
	}
	if oracle > worst+1e-9 {
		t.Errorf("query-level oracle L1 %.4f should not exceed worst estimator %.4f", oracle, worst)
	}
}

func TestPerPipelineChoiceFunction(t *testing.T) {
	q := queryView(t)
	// A mixed choice (alternating estimators per pipeline) must still
	// produce bounded progress.
	mixed := func(p int) Kind {
		if p%2 == 0 {
			return DNE
		}
		return TGN
	}
	for i := range q.Trace.Snapshots {
		v := q.EstimateAt(i, mixed)
		if v < 0 || v > 1 {
			t.Fatalf("mixed estimate %v at obs %d", v, i)
		}
	}
}

func TestOrdinalAtOrBefore(t *testing.T) {
	q := queryView(t)
	for _, v := range q.Views {
		if v.NumObs() == 0 {
			continue
		}
		// The last global snapshot is at or after every pipeline obs.
		last := len(q.Trace.Snapshots) - 1
		if got := v.ordinalAtOrBefore(last); got > v.NumObs()-1 {
			t.Fatalf("ordinal out of range: %d", got)
		}
		// Before the first pipeline observation: -1.
		if v.ObsIndex(0) > 0 {
			if got := v.ordinalAtOrBefore(v.ObsIndex(0) - 1); got != -1 {
				t.Errorf("expected -1 before first obs, got %d", got)
			}
		}
		// Exactly at each observation index: that ordinal.
		for ord := 0; ord < v.NumObs(); ord++ {
			if got := v.ordinalAtOrBefore(v.ObsIndex(ord)); got != ord {
				t.Fatalf("ordinalAtOrBefore(%d) = %d, want %d", v.ObsIndex(ord), got, ord)
			}
		}
	}
}
