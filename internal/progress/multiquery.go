package progress

import "progressest/internal/exec"

// MultiQuery estimates the combined progress of several queries, the
// extension direction of Luo et al.'s multi-query progress indicators that
// the paper lists as future work. Queries execute independently (our
// engine runs them serially on a shared virtual clock domain per query);
// the combined estimate weighs each query by its estimated total work, and
// queries that have finished contribute their full weight.
//
// This models the "batch of reports" scenario: a DBA submits N
// long-running queries and wants one progress bar for the batch.
type MultiQuery struct {
	Queries []*QueryView

	weights []float64
}

// NewMultiQuery combines the traces of independently executed queries.
func NewMultiQuery(traces []*exec.Trace) *MultiQuery {
	m := &MultiQuery{}
	var total float64
	for _, tr := range traces {
		qv := NewQueryView(tr)
		m.Queries = append(m.Queries, qv)
		w := tr.Plan.TotalEstRows()
		if w <= 0 {
			w = 1
		}
		m.weights = append(m.weights, w)
		total += w
	}
	for i := range m.weights {
		m.weights[i] /= total
	}
	return m
}

// QueryWeight returns query q's share of the batch's estimated work.
func (m *MultiQuery) QueryWeight(q int) float64 { return m.weights[q] }

// BatchProgress returns the combined batch progress when each query q has
// independently reached progress fraction perQuery[q] (pass 1 for finished
// queries, 0 for queued ones).
func (m *MultiQuery) BatchProgress(perQuery []float64) float64 {
	var sum float64
	for q, f := range perQuery {
		sum += m.weights[q] * clamp01(f)
	}
	return clamp01(sum)
}

// SerialSeries replays the batch as if the queries executed back to back
// (the engine's execution model) and returns the batch progress at every
// observation of every query, using estimator kind throughout, together
// with the matching true batch progress.
func (m *MultiQuery) SerialSeries(kind Kind) (est, truth []float64) {
	done := 0.0
	var totalTime float64
	for _, qv := range m.Queries {
		totalTime += qv.Trace.TotalTime
	}
	var elapsed float64
	for q, qv := range m.Queries {
		qSeries := qv.Series(kind)
		for i := range qv.Trace.Snapshots {
			est = append(est, clamp01(done+m.weights[q]*qSeries[i]))
			truth = append(truth, clamp01((elapsed+qv.Trace.Snapshots[i].Time)/totalTime))
		}
		done += m.weights[q]
		elapsed += qv.Trace.TotalTime
	}
	return est, truth
}

// Errors returns the error statistics of the serial batch series for one
// estimator.
func (m *MultiQuery) Errors(kind Kind) ErrorStats {
	est, truth := m.SerialSeries(kind)
	dev := make([]float64, len(est))
	for i := range est {
		dev[i] = est[i] - truth[i]
	}
	return errorStatsOf(dev, est, truth)
}
