package progress

import (
	"math"
	"testing"

	"progressest/internal/catalog"
	"progressest/internal/datagen"
	"progressest/internal/exec"
	"progressest/internal/optimizer"
)

func multiQueryFixture(t *testing.T, n int) *MultiQuery {
	t.Helper()
	db := datagen.GenTPCH(datagen.Params{Scale: 0.08, Zipf: 1, Seed: 31})
	if err := db.ApplyDesign(datagen.Designs(datagen.TPCHLike)[catalog.PartiallyTuned]); err != nil {
		t.Fatal(err)
	}
	planner := optimizer.NewPlanner(db, optimizer.BuildStats(db))
	var traces []*exec.Trace
	for i := 0; i < n; i++ {
		spec := &optimizer.QuerySpec{
			First: optimizer.TableTerm{Table: "orders", Filters: []optimizer.FilterSpec{
				{Column: "o_orderdate", IsRange: true, Lo: 1, Hi: int64(600 * (i + 1))},
			}},
			Joins: []optimizer.JoinTerm{{
				Right:     optimizer.TableTerm{Table: "lineitem"},
				LeftTable: "orders", LeftCol: "o_orderkey", RightCol: "l_orderkey",
			}},
		}
		pl, err := planner.Plan(spec)
		if err != nil {
			t.Fatal(err)
		}
		traces = append(traces, exec.Run(db, pl, exec.Options{}))
	}
	return NewMultiQuery(traces)
}

func TestMultiQueryWeightsNormalised(t *testing.T) {
	m := multiQueryFixture(t, 3)
	var sum float64
	for q := range m.Queries {
		w := m.QueryWeight(q)
		if w <= 0 || w > 1 {
			t.Fatalf("weight %v", w)
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %v", sum)
	}
	// The query with the wider date range does more work.
	if m.QueryWeight(0) >= m.QueryWeight(2) {
		t.Errorf("weights should grow with query size: %v vs %v",
			m.QueryWeight(0), m.QueryWeight(2))
	}
}

func TestBatchProgressConvexCombination(t *testing.T) {
	m := multiQueryFixture(t, 3)
	if got := m.BatchProgress([]float64{0, 0, 0}); got != 0 {
		t.Errorf("all-zero batch progress = %v", got)
	}
	if got := m.BatchProgress([]float64{1, 1, 1}); math.Abs(got-1) > 1e-9 {
		t.Errorf("all-done batch progress = %v", got)
	}
	half := m.BatchProgress([]float64{0.5, 0.5, 0.5})
	if math.Abs(half-0.5) > 1e-9 {
		t.Errorf("uniform half progress = %v", half)
	}
	// Out-of-range inputs are clamped.
	if got := m.BatchProgress([]float64{2, -1, 0.5}); got < 0 || got > 1 {
		t.Errorf("clamping failed: %v", got)
	}
}

func TestSerialSeriesMonotoneTruth(t *testing.T) {
	m := multiQueryFixture(t, 3)
	est, truth := m.SerialSeries(DNE)
	if len(est) != len(truth) || len(est) == 0 {
		t.Fatal("misaligned series")
	}
	for i := 1; i < len(truth); i++ {
		if truth[i] < truth[i-1]-1e-12 {
			t.Fatalf("batch truth not monotone at %d", i)
		}
	}
	if truth[len(truth)-1] < 0.999 {
		t.Errorf("final batch truth %v", truth[len(truth)-1])
	}
	for _, v := range est {
		if v < 0 || v > 1 {
			t.Fatalf("batch estimate %v out of range", v)
		}
	}
}

func TestMultiQueryOracleErrors(t *testing.T) {
	m := multiQueryFixture(t, 2)
	oracle := m.Errors(OracleGetNext)
	if oracle.L1 < 0 || oracle.L2 < oracle.L1-1e-9 {
		t.Fatalf("bad oracle stats %+v", oracle)
	}
	worst := 0.0
	for _, k := range CoreKinds() {
		if e := m.Errors(k).L1; e > worst {
			worst = e
		}
	}
	if oracle.L1 > worst+1e-9 {
		t.Errorf("batch oracle %.4f should not exceed worst estimator %.4f", oracle.L1, worst)
	}
}
