// Package progress implements the candidate progress estimators the
// selection framework chooses among: the three main prior estimators
// (DNE, TGN, LUO — Section 3.4), the worst-case-optimal estimators from
// the hardness line of work (PMAX, SAFE), the paper's three novel
// special-purpose estimators (BATCHDNE, DNESEEK, TGNINT — Section 5), and
// the two idealised models with oracle cardinalities used to validate the
// GetNext and Bytes-Processed models (Section 6.7).
//
// All estimators are pure functions over a prefix of an execution Trace,
// so a single execution can be replayed through every estimator — which is
// how training labels are collected at negligible overhead.
package progress

import "fmt"

// Kind identifies a progress estimator.
type Kind int

// The candidate estimators.
const (
	// DNE is the DriverNode estimator (eq. 4): progress of a pipeline is
	// the consumed fraction of its driver-node inputs.
	DNE Kind = iota
	// TGN is the Total GetNext estimator (eq. 3): executed GetNext calls
	// over estimated total GetNext calls, with bounds-refined estimates.
	TGN
	// LUO is the bytes-processed estimator of Luo et al.: bytes read at
	// the driver nodes plus bytes written at the pipeline output, over the
	// interpolation-refined total.
	LUO
	// PMAX assumes every remaining driver tuple triggers the maximum
	// per-tuple work observed so far (ratio error bounded by mu).
	PMAX
	// SAFE is the worst-case-optimal (in ratio error) estimator: the
	// geometric mean of lower and upper bounds on true progress.
	SAFE
	// BATCHDNE extends DNE's driver set with batch-sort nodes (eq. 6),
	// fixing DNE's overestimate on partially blocking nested iterations.
	BATCHDNE
	// DNESEEK extends DNE's driver set with index-seek nodes (eq. 7),
	// capturing skewed per-tuple work in nested iterations.
	DNESEEK
	// TGNINT applies Luo-style cardinality interpolation to the TGN
	// estimator (eq. 8).
	TGNINT

	// NumKinds is the number of selectable estimators.
	NumKinds

	// OracleGetNext is the idealised GetNext model using true totals N_i
	// (not selectable; used to validate the model, Section 6.7).
	OracleGetNext
	// OracleBytes is the idealised bytes-processed model with true totals.
	OracleBytes

	// TotalKinds counts all kinds including the oracle models; use it to
	// size arrays indexed by Kind.
	TotalKinds = int(OracleBytes) + 1
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case DNE:
		return "DNE"
	case TGN:
		return "TGN"
	case LUO:
		return "LUO"
	case PMAX:
		return "PMAX"
	case SAFE:
		return "SAFE"
	case BATCHDNE:
		return "BATCHDNE"
	case DNESEEK:
		return "DNESEEK"
	case TGNINT:
		return "TGNINT"
	case OracleGetNext:
		return "ORACLE-GETNEXT"
	case OracleBytes:
		return "ORACLE-BYTES"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Kinds returns all selectable estimator kinds in index order.
func Kinds() []Kind {
	out := make([]Kind, NumKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// AllKinds returns the selectable kinds plus the oracle models.
func AllKinds() []Kind {
	return append(Kinds(), OracleGetNext, OracleBytes)
}

// CoreKinds returns the three previously proposed estimators the paper's
// first experiments select among.
func CoreKinds() []Kind { return []Kind{DNE, TGN, LUO} }

// ExtendedKinds returns the core estimators plus the paper's novel ones
// (the six-way selection of Figure 5's right half).
func ExtendedKinds() []Kind {
	return []Kind{DNE, TGN, LUO, BATCHDNE, DNESEEK, TGNINT}
}
