package progress_test

import (
	"testing"

	"progressest/internal/datagen"
	"progressest/internal/exec"
	"progressest/internal/features"
	"progressest/internal/pipeline"
	"progressest/internal/progress"
	"progressest/internal/workload"
)

// runOnline executes query qi of the workload with a streaming OnlineView
// attached and returns both the view and the finished trace.
func runOnline(t *testing.T, w *workload.Workload, qi int, opts exec.Options) (*progress.OnlineView, *exec.Trace) {
	t.Helper()
	pl, err := w.Planner.Plan(w.Queries[qi])
	if err != nil {
		t.Fatalf("plan query %d: %v", qi, err)
	}
	ov := progress.NewOnlineView(pl, pipeline.Decompose(pl))
	opts.Observer = ov
	tr := exec.Run(w.DB, pl, opts)
	if !ov.Done() {
		t.Fatalf("query %d: OnDone never fired", qi)
	}
	return ov, tr
}

// TestOnlineMatchesOfflineAllKinds is the equivalence proof of the
// streaming refactor: for several queries across all four dataset
// families, the estimates the OnlineView accumulated incrementally while
// the query ran are identical — bit for bit — to the series an offline
// PipelineView replays from the finished trace, for every candidate
// estimator.
func TestOnlineMatchesOfflineAllKinds(t *testing.T) {
	kinds := []datagen.DatasetKind{
		datagen.TPCHLike, datagen.TPCDSLike, datagen.Real1Like, datagen.Real2Like,
	}
	for _, kind := range kinds {
		t.Run(kind.String(), func(t *testing.T) {
			w, err := workload.Build(workload.Spec{
				Name: kind.String(), Kind: kind, Queries: 6, Scale: 0.08, Zipf: 1, Seed: 7,
			})
			if err != nil {
				t.Fatal(err)
			}
			for qi := range w.Queries {
				ov, tr := runOnline(t, w, qi, exec.Options{})
				assertOnlineEqualsOffline(t, ov, tr, qi)
			}
		})
	}
}

// TestOnlineMatchesOfflineUnderThinning forces aggressive trace thinning
// so the OnlineView's history rebuild (dropping even ordinals and
// recomputing the fan-out bound of PMAX/SAFE) is exercised.
func TestOnlineMatchesOfflineUnderThinning(t *testing.T) {
	w, err := workload.Build(workload.Spec{
		Name: "tpch", Kind: datagen.TPCHLike, Queries: 4, Scale: 0.08, Zipf: 1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for qi := range w.Queries {
		ov, tr := runOnline(t, w, qi, exec.Options{TargetObservations: 900, MaxObservations: 64})
		if len(tr.Snapshots) > 64+1 {
			t.Fatalf("query %d: thinning did not bound snapshots: %d", qi, len(tr.Snapshots))
		}
		assertOnlineEqualsOffline(t, ov, tr, qi)
	}
}

func assertOnlineEqualsOffline(t *testing.T, ov *progress.OnlineView, tr *exec.Trace, qi int) {
	t.Helper()
	for p := range tr.Pipes.Pipelines {
		v := progress.NewPipelineView(tr, p)
		op := ov.Pipelines[p]
		if op.NumObs() != v.NumObs() {
			t.Fatalf("query %d pipeline %d: online %d obs, offline %d obs",
				qi, p, op.NumObs(), v.NumObs())
		}
		for _, kind := range progress.Kinds() {
			offline := v.Series(kind)
			online := op.Series(kind)
			for i := range offline {
				if online[i] != offline[i] {
					t.Fatalf("query %d pipeline %d %v obs %d: online %v != offline %v",
						qi, p, kind, i, online[i], offline[i])
				}
			}
		}
		// The static context the online view froze at pipeline start must
		// agree with what the offline view derives from the finished trace.
		if v.NumObs() > 0 {
			if op.DriverKnown != v.DriverKnown {
				t.Fatalf("query %d pipeline %d: DriverKnown online %v offline %v",
					qi, p, op.DriverKnown, v.DriverKnown)
			}
			for id := range v.E0 {
				if op.E0[id] != v.E0[id] || op.UB[id] != v.UB[id] {
					t.Fatalf("query %d pipeline %d node %d: context diverges", qi, p, id)
				}
			}
		}
	}
}

// TestOnlineBatchedDeliveryMatches checks the zero-alloc hot path's
// delivery conflation: an OnlineView fed through batched OnSnapshots
// calls (exec.Options.SnapshotBatch) accumulates bit-identical series —
// and an identical trace — to one fed snapshot by snapshot, across every
// dataset family and under forced thinning.
func TestOnlineBatchedDeliveryMatches(t *testing.T) {
	kinds := []datagen.DatasetKind{
		datagen.TPCHLike, datagen.TPCDSLike, datagen.Real1Like, datagen.Real2Like,
	}
	for _, kind := range kinds {
		t.Run(kind.String(), func(t *testing.T) {
			w, err := workload.Build(workload.Spec{
				Name: kind.String(), Kind: kind, Queries: 6, Scale: 0.08, Zipf: 1, Seed: 7,
			})
			if err != nil {
				t.Fatal(err)
			}
			for qi := range w.Queries {
				for _, opts := range []exec.Options{
					{SnapshotBatch: 8},
					{SnapshotBatch: 8, TargetObservations: 900, MaxObservations: 64}, // thinning
				} {
					plain, trPlain := runOnline(t, w, qi, exec.Options{
						TargetObservations: opts.TargetObservations,
						MaxObservations:    opts.MaxObservations,
					})
					batched, trBatch := runOnline(t, w, qi, opts)
					if len(trPlain.Snapshots) != len(trBatch.Snapshots) {
						t.Fatalf("query %d: trace lengths diverge: %d vs %d",
							qi, len(trPlain.Snapshots), len(trBatch.Snapshots))
					}
					for p := range trPlain.Pipes.Pipelines {
						a, b := plain.Pipelines[p], batched.Pipelines[p]
						if a.NumObs() != b.NumObs() {
							t.Fatalf("query %d pipeline %d: %d obs unbatched, %d batched",
								qi, p, a.NumObs(), b.NumObs())
						}
						for _, k := range progress.Kinds() {
							sa, sb := a.Series(k), b.Series(k)
							for i := range sa {
								if sa[i] != sb[i] {
									t.Fatalf("query %d pipeline %d %v obs %d: unbatched %v != batched %v",
										qi, p, k, i, sa[i], sb[i])
								}
							}
						}
					}
				}
			}
		})
	}
}

// TestOnlineFeaturesConvergeToOffline checks the feature split: the online
// static prefix plus the dynamic suffix computed from the completed online
// view equals the offline Full vector.
func TestOnlineFeaturesConvergeToOffline(t *testing.T) {
	w, err := workload.Build(workload.Spec{
		Name: "real1", Kind: datagen.Real1Like, Queries: 5, Scale: 0.1, Zipf: 1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for qi := range w.Queries {
		ov, tr := runOnline(t, w, qi, exec.Options{})
		for p := range tr.Pipes.Pipelines {
			v := progress.NewPipelineView(tr, p)
			if v.NumObs() < 8 {
				continue
			}
			offline := features.Full(v)
			online := features.OnlineFull(ov.Pipelines[p])
			if len(online) != len(offline) {
				t.Fatalf("feature width: online %d offline %d", len(online), len(offline))
			}
			for i := range offline {
				if online[i] != offline[i] {
					t.Fatalf("query %d pipeline %d feature %d (%s): online %v != offline %v",
						qi, p, i, features.Names()[i], online[i], offline[i])
				}
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no pipelines checked")
	}
}

// TestOnlineQueryEstimate sanity-checks the live eq. 5 combination: it is
// within [0,1] throughout and reaches 1 once every pipeline has ended.
func TestOnlineQueryEstimate(t *testing.T) {
	w, err := workload.Build(workload.Spec{
		Name: "tpch", Kind: datagen.TPCHLike, Queries: 2, Scale: 0.08, Zipf: 1, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ov, _ := runOnline(t, w, 0, exec.Options{})
	q := ov.QueryEstimate(func(int) progress.Kind { return progress.DNE })
	if q != 1 {
		t.Errorf("completed query estimate %v, want 1", q)
	}
}
