package engine

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGateResizeTransitions is the table-driven grow/shrink suite over an
// idle gate: each case applies a sequence of resizes and checks the
// resulting active count, total slot count (slots are never compacted,
// and regrowth resurrects reaped slots before appending new ones) and the
// recorded event history.
func TestGateResizeTransitions(t *testing.T) {
	cases := []struct {
		name       string
		start      int
		resizes    []int
		wantActive int
		wantSlots  int
		wantEvents int
	}{
		{"grow appends slots", 1, []int{3}, 3, 3, 1},
		{"shrink reaps idle shards in place", 4, []int{2}, 2, 4, 1},
		{"regrow resurrects reaped slots", 4, []int{2, 4}, 4, 4, 2},
		{"regrow past old size appends the rest", 2, []int{1, 4}, 4, 4, 2},
		{"resize to current size is a no-op", 3, []int{3}, 3, 3, 0},
		{"stepwise walk", 1, []int{2, 3, 2, 1}, 1, 3, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := NewGate(Config{Shards: tc.start, MaxLivePerShard: 2, QueueDepth: 4})
			for _, n := range tc.resizes {
				if err := g.Resize(n, "operator", "test"); err != nil {
					t.Fatalf("resize to %d: %v", n, err)
				}
			}
			st := g.Stats()
			if st.ActiveShards != tc.wantActive {
				t.Fatalf("active %d, want %d", st.ActiveShards, tc.wantActive)
			}
			if len(st.Shards) != tc.wantSlots {
				t.Fatalf("slots %d, want %d", len(st.Shards), tc.wantSlots)
			}
			if int(st.Resizes) != tc.wantEvents || len(st.ResizeEvents) != tc.wantEvents {
				t.Fatalf("resizes %d (%d events), want %d", st.Resizes, len(st.ResizeEvents), tc.wantEvents)
			}
			// Events chain: each From is the previous To, starting at the
			// initial size.
			prev := tc.start
			for i, ev := range st.ResizeEvents {
				if ev.From != prev || ev.Source != "operator" {
					t.Fatalf("event %d: %+v, want From %d Source operator", i, ev, prev)
				}
				prev = ev.To
			}
			// Admissions after the walk respect the final active set.
			var slots []*Slot
			for i := 0; i < tc.wantActive*2; i++ {
				s, err := g.Admit(context.Background())
				if err != nil {
					t.Fatalf("admit %d after walk: %v", i, err)
				}
				slots = append(slots, s)
			}
			st = g.Stats()
			for _, sh := range st.Shards {
				switch sh.State {
				case ShardActive:
					if sh.Live != 2 {
						t.Fatalf("active shard %d live %d, want 2", sh.Shard, sh.Live)
					}
				default:
					if sh.Live != 0 {
						t.Fatalf("%s shard %d has %d live", sh.State, sh.Shard, sh.Live)
					}
				}
			}
			for _, s := range slots {
				s.Release()
			}
		})
	}
}

// TestGateShrinkDrainsLoadedShardAndKeepsCounters: a shrink with live
// work marks the victim draining (not reaped), stops dispatching to it,
// reaps it on its last release, and keeps its lifetime Admitted count in
// Stats afterwards.
func TestGateShrinkDrainsLoadedShardAndKeepsCounters(t *testing.T) {
	g := NewGate(Config{Shards: 2, MaxLivePerShard: 3})
	a, _ := g.Admit(nil) // shard 0
	b, _ := g.Admit(nil) // shard 1
	if a.Shard != 0 || b.Shard != 1 {
		t.Fatalf("spread %d,%d, want 0,1", a.Shard, b.Shard)
	}
	if err := g.Resize(1, "operator", "test"); err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	// Both have 1 live; the tie breaks to the highest index, so shard 1
	// drains and shard 0 stays the survivor.
	if st.Shards[1].State != ShardDraining || st.Shards[0].State != ShardActive {
		t.Fatalf("states %s/%s, want active/draining", st.Shards[0].State, st.Shards[1].State)
	}
	// New admissions avoid the draining shard entirely.
	c, _ := g.Admit(nil)
	d, _ := g.Admit(nil)
	if c.Shard != 0 || d.Shard != 0 {
		t.Fatalf("post-shrink admissions on shards %d,%d, want 0,0", c.Shard, d.Shard)
	}
	// Its last release reaps it; the lifetime counter survives.
	b.Release()
	st = g.Stats()
	if st.Shards[1].State != ShardReaped {
		t.Fatalf("drained shard state %s, want reaped", st.Shards[1].State)
	}
	if st.Shards[1].Admitted != 1 || st.Shards[1].Live != 0 {
		t.Fatalf("reaped shard counters %+v, want lifetime admitted 1", st.Shards[1])
	}
	if st.ActiveShards != 1 {
		t.Fatalf("active %d, want 1", st.ActiveShards)
	}
	// Engine-wide admitted equals the per-shard sum, reaped included.
	var sum int64
	for _, sh := range st.Shards {
		sum += sh.Admitted
	}
	if sum != st.Admitted {
		t.Fatalf("shard admitted sum %d != engine admitted %d", sum, st.Admitted)
	}
	a.Release()
	c.Release()
	d.Release()
}

// TestGateShrinkWhileQueuedNeverStrandsWaiter: shrinking under a full
// queue leaves every waiter dispatchable — releases on the surviving
// shard admit them all, and none lands on a draining shard.
func TestGateShrinkWhileQueuedNeverStrandsWaiter(t *testing.T) {
	g := NewGate(Config{Shards: 2, MaxLivePerShard: 1, QueueDepth: 4})
	a, _ := g.Admit(nil)
	b, _ := g.Admit(nil)
	granted := make(chan int, 3)
	for i := 0; i < 3; i++ {
		go func() {
			s, err := g.Admit(context.Background())
			if err != nil {
				t.Errorf("queued admit: %v", err)
				granted <- -1
				return
			}
			granted <- s.Shard
			time.Sleep(time.Millisecond)
			s.Release()
		}()
	}
	waitQueued(t, g, 3)
	if err := g.Resize(1, "operator", "test"); err != nil {
		t.Fatal(err)
	}
	// Free both original slots; the waiters must all be admitted — on the
	// surviving active shard only — despite the shrink.
	a.Release()
	b.Release()
	for i := 0; i < 3; i++ {
		select {
		case s := <-granted:
			if s != 0 {
				t.Fatalf("waiter %d granted shard %d, want surviving shard 0", i, s)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("waiter %d stranded by shrink", i)
		}
	}
	if st := g.Stats(); st.Queued != 0 {
		t.Fatalf("queue not drained: %+v", st)
	}
}

// TestGateGrowDuringSaturationAdmitsQueuedWork: growing a saturated gate
// dispatches queued waiters onto the fresh capacity inside Resize itself,
// with no release required.
func TestGateGrowDuringSaturationAdmitsQueuedWork(t *testing.T) {
	g := NewGate(Config{Shards: 1, MaxLivePerShard: 1, QueueDepth: 4})
	held, _ := g.Admit(nil)
	granted := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			s, err := g.Admit(context.Background())
			if err != nil {
				t.Errorf("queued admit: %v", err)
				granted <- -1
				return
			}
			granted <- s.Shard
		}()
	}
	waitQueued(t, g, 2)
	if err := g.Resize(3, "autoscale", "test burst"); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for i := 0; i < 2; i++ {
		select {
		case s := <-granted:
			if s < 1 || s > 2 {
				t.Fatalf("waiter granted shard %d, want a fresh shard 1 or 2", s)
			}
			seen[s] = true
		case <-time.After(5 * time.Second):
			t.Fatal("queued waiter not admitted by grow")
		}
	}
	if len(seen) != 2 {
		t.Fatalf("both waiters on one shard: %v", seen)
	}
	st := g.Stats()
	if st.Queued != 0 || st.ActiveShards != 3 {
		t.Fatalf("post-grow stats: %+v", st)
	}
	held.Release()
}

// TestGateResizeDuringDrainRejected: once Drain began, Resize fails with
// ErrDraining — both while live work still drains and after it finished —
// and changes nothing.
func TestGateResizeDuringDrainRejected(t *testing.T) {
	g := NewGate(Config{Shards: 2, MaxLivePerShard: 1})
	a, _ := g.Admit(nil)
	done := make(chan error, 1)
	go func() { done <- g.Drain(context.Background()) }()
	// Wait for the drain flag, then resize against live work.
	deadline := time.Now().Add(5 * time.Second)
	for !g.Stats().Draining {
		if time.Now().After(deadline) {
			t.Fatal("drain never started")
		}
		time.Sleep(100 * time.Microsecond)
	}
	if err := g.Resize(4, "operator", "test"); !errors.Is(err, ErrDraining) {
		t.Fatalf("resize during drain: %v, want ErrDraining", err)
	}
	a.Release()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := g.Resize(4, "operator", "test"); !errors.Is(err, ErrDraining) {
		t.Fatalf("resize after drain: %v, want ErrDraining", err)
	}
	st := g.Stats()
	if st.ActiveShards != 2 || st.Resizes != 0 {
		t.Fatalf("rejected resize left a mark: %+v", st)
	}
}

// TestGateResizeValidation: a resize below one shard is refused without
// touching the pool.
func TestGateResizeValidation(t *testing.T) {
	g := NewGate(Config{Shards: 2})
	for _, n := range []int{0, -1} {
		if err := g.Resize(n, "operator", "test"); err == nil {
			t.Fatalf("resize to %d succeeded", n)
		}
	}
	if st := g.Stats(); st.ActiveShards != 2 || st.Resizes != 0 {
		t.Fatalf("invalid resize left a mark: %+v", st)
	}
}

// TestGateResizeFromRefusesStaleSnapshot: a conditional resize computed
// against an outdated active count (an operator override landed in
// between) is skipped with ErrResizeConflict instead of reverting the
// override; a matching one applies.
func TestGateResizeFromRefusesStaleSnapshot(t *testing.T) {
	g := NewGate(Config{Shards: 3, MaxLivePerShard: 2})
	// The controller observed 3 and decided to grow to 4, but an operator
	// slammed the pool to 8 first.
	if err := g.Resize(8, "operator", "override"); err != nil {
		t.Fatal(err)
	}
	if err := g.ResizeFrom(3, 4, "autoscale", "stale decision"); !errors.Is(err, ErrResizeConflict) {
		t.Fatalf("stale conditional resize: %v, want ErrResizeConflict", err)
	}
	st := g.Stats()
	if st.ActiveShards != 8 || st.Resizes != 1 {
		t.Fatalf("stale resize touched the pool: %+v", st)
	}
	// With a fresh observation the conditional resize applies.
	if err := g.ResizeFrom(8, 4, "autoscale", "fresh decision"); err != nil {
		t.Fatal(err)
	}
	if st := g.Stats(); st.ActiveShards != 4 {
		t.Fatalf("fresh conditional resize did not apply: %+v", st)
	}
}

// TestGateStatsNeverTornUnderResize: Stats snapshots the shard slice
// under the same lock Resize mutates it with, so every snapshot taken
// concurrently with a resize storm is internally consistent — the active
// count always equals the per-shard states, the slot count never shrinks,
// and the engine-wide admitted counter always equals the per-shard sum.
func TestGateStatsNeverTornUnderResize(t *testing.T) {
	g := NewGate(Config{Shards: 2, MaxLivePerShard: 4, QueueDepth: 8})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = g.Resize(1+rng.Intn(8), "operator", "storm")
		}
	}()
	// A little live traffic so shard states churn through all three
	// lifecycle states, not just active/reaped.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if s, err := g.Admit(context.Background()); err == nil {
				time.Sleep(50 * time.Microsecond)
				s.Release()
			}
		}
	}()
	deadline := time.Now().Add(300 * time.Millisecond)
	lastSlots := 0
	for time.Now().Before(deadline) {
		st := g.Stats()
		active, queuedSum := 0, int64(0)
		for _, sh := range st.Shards {
			if sh.State == ShardActive {
				active++
			}
			if sh.Live < 0 {
				t.Fatalf("negative live: %+v", sh)
			}
			queuedSum += sh.Admitted
		}
		if active != st.ActiveShards {
			t.Fatalf("torn snapshot: ActiveShards %d but %d active states in %+v", st.ActiveShards, active, st.Shards)
		}
		if len(st.Shards) < lastSlots {
			t.Fatalf("slot count shrank %d -> %d", lastSlots, len(st.Shards))
		}
		lastSlots = len(st.Shards)
		if queuedSum != st.Admitted {
			t.Fatalf("torn counters: shard sum %d != admitted %d", queuedSum, st.Admitted)
		}
	}
	close(stop)
	wg.Wait()
}

// TestGateResizeSoak hammers Admit/Release from many goroutines while a
// resizer walks the pool up and down, under -race: the per-shard live
// bound must hold in every observed snapshot, every admission must
// eventually land (no stranded waiters), and after the storm the gate is
// exactly empty with lifetime counters intact.
func TestGateResizeSoak(t *testing.T) {
	const (
		maxLive = 3
		workers = 24
		perGoro = 30
		maxPool = 6
		minPool = 1
	)
	g := NewGate(Config{Shards: 2, MaxLivePerShard: maxLive, QueueDepth: workers})
	stopResize := make(chan struct{})
	var resizeWg sync.WaitGroup
	resizeWg.Add(1)
	go func() {
		defer resizeWg.Done()
		rng := rand.New(rand.NewSource(7))
		for {
			select {
			case <-stopResize:
				return
			default:
			}
			_ = g.Resize(minPool+rng.Intn(maxPool-minPool+1), "autoscale", "soak")
			time.Sleep(200 * time.Microsecond)
		}
	}()

	var over atomic.Bool
	var admitted atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perGoro; i++ {
				s, err := g.Admit(context.Background())
				if err != nil {
					if errors.Is(err, ErrSaturated) {
						time.Sleep(200 * time.Microsecond)
						i--
						continue
					}
					t.Errorf("admit: %v", err)
					return
				}
				// live ≤ maxLive per shard at every observation — including
				// on shards that were drained out from under the slot.
				for _, sh := range g.Stats().Shards {
					if sh.Live > maxLive || sh.Live < 0 {
						over.Store(true)
					}
				}
				admitted.Add(1)
				time.Sleep(30 * time.Microsecond)
				s.Release()
			}
		}()
	}
	wg.Wait()
	close(stopResize)
	resizeWg.Wait()
	if over.Load() {
		t.Fatal("per-shard live bound violated during resize soak")
	}
	if got := admitted.Load(); got != workers*perGoro {
		t.Fatalf("admitted %d, want %d — some admissions stranded", got, workers*perGoro)
	}
	st := g.Stats()
	if st.Queued != 0 {
		t.Fatalf("%d waiters stranded after soak", st.Queued)
	}
	var sum int64
	for _, sh := range st.Shards {
		if sh.Live != 0 {
			t.Fatalf("shard %d still has %d live after all releases (%s)", sh.Shard, sh.Live, sh.State)
		}
		sum += sh.Admitted
	}
	if sum != st.Admitted {
		t.Fatalf("lifetime counters lost by reaping: shard sum %d != admitted %d", sum, st.Admitted)
	}
	// The pool is still usable at whatever size the storm left it.
	s, err := g.Admit(context.Background())
	if err != nil {
		t.Fatalf("admit after soak: %v", err)
	}
	s.Release()
}
