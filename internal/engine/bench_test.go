package engine

import (
	"context"
	"errors"
	"testing"
	"time"
)

// BenchmarkGateAdmit pairs the admission hot path on a fixed pool
// against the same pool under a concurrent resize storm — the cost the
// adaptive pool adds to every Admit/Release is the difference between
// the two. Tracked in the CI bench-smoke artifact.
func BenchmarkGateAdmit(b *testing.B) {
	run := func(b *testing.B, g *Gate) {
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				s, err := g.Admit(context.Background())
				if err != nil {
					if errors.Is(err, ErrSaturated) {
						continue
					}
					b.Fatal(err)
				}
				s.Release()
			}
		})
	}
	b.Run("fixed", func(b *testing.B) {
		g := NewGate(Config{Shards: 4, MaxLivePerShard: 64, QueueDepth: 64})
		b.ReportAllocs()
		run(b, g)
	})
	b.Run("adaptive", func(b *testing.B) {
		g := NewGate(Config{Shards: 4, MaxLivePerShard: 64, QueueDepth: 64})
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			n := 4
			for {
				select {
				case <-stop:
					return
				case <-time.After(100 * time.Microsecond):
				}
				if n = n + 1; n > 6 {
					n = 3
				}
				_ = g.Resize(n, "autoscale", "bench")
			}
		}()
		b.ReportAllocs()
		run(b, g)
		close(stop)
		<-done
	})
}
