package engine

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// scalerHarness drives an Autoscaler deterministically: a fake clock, a
// mutable fabricated Stats snapshot, and a resize recorder that mirrors
// the applied size back into the snapshot (like the real gate would).
type scalerHarness struct {
	mu      sync.Mutex
	now     time.Time
	st      Stats
	applied []int
	fail    error
}

func newScalerHarness(active int) *scalerHarness {
	h := &scalerHarness{now: time.Unix(1000, 0)}
	h.setLoad(active, 0, 8, 0)
	return h
}

// setLoad fabricates a snapshot: active shards each carrying `livePer`
// live queries, a queue of `queued` over `depth`, and a lifetime
// rejection counter.
func (h *scalerHarness) setLoad(active, queued, depth int, rejected int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.st = Stats{
		ActiveShards: active,
		Queued:       queued,
		QueueDepth:   depth,
		Rejected:     rejected,
	}
	for i := 0; i < active; i++ {
		h.st.Shards = append(h.st.Shards, ShardStats{Shard: i, Live: 1, State: ShardActive})
	}
}

// idleShard zeroes one active shard's live count, making the pool idle.
func (h *scalerHarness) idleShard() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.st.Shards[0].Live = 0
}

func (h *scalerHarness) stats() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.st
}

func (h *scalerHarness) resize(from, n int, reason string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.fail != nil {
		return h.fail
	}
	// Mirror Gate.ResizeFrom: a decision computed against a stale active
	// count must not apply.
	if from != h.st.ActiveShards {
		return ErrResizeConflict
	}
	h.applied = append(h.applied, n)
	h.st.ActiveShards = n
	h.st.Shards = h.st.Shards[:0]
	for i := 0; i < n; i++ {
		h.st.Shards = append(h.st.Shards, ShardStats{Shard: i, Live: 1, State: ShardActive})
	}
	return nil
}

func (h *scalerHarness) clockNow() time.Time {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.now
}

func (h *scalerHarness) advance(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.now = h.now.Add(d)
}

func (h *scalerHarness) resized() []int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]int(nil), h.applied...)
}

func newTestScaler(h *scalerHarness, cfg AutoscalerConfig) *Autoscaler {
	cfg.Now = h.clockNow
	return NewAutoscaler(cfg, h.stats, h.resize)
}

// hotTicks runs n polls with a saturated queue, advancing the clock by
// the poll interval before each.
func hotTicks(h *scalerHarness, a *Autoscaler, n int) {
	for i := 0; i < n; i++ {
		h.advance(a.cfg.Interval)
		st := h.stats()
		h.setLoad(st.ActiveShards, st.QueueDepth, st.QueueDepth, st.Rejected)
		a.tick()
	}
}

// idleTicks runs n polls with an empty queue and one idle shard.
func idleTicks(h *scalerHarness, a *Autoscaler, n int) {
	for i := 0; i < n; i++ {
		h.advance(a.cfg.Interval)
		st := h.stats()
		h.setLoad(st.ActiveShards, 0, st.QueueDepth, st.Rejected)
		h.idleShard()
		a.tick()
	}
}

// TestAutoscalerHysteresisNoFlapOnSingleHotPoll: one hot poll — or hot
// polls separated by a cold one — never grows the pool; only the
// configured consecutive streak does.
func TestAutoscalerHysteresisNoFlapOnSingleHotPoll(t *testing.T) {
	h := newScalerHarness(1)
	a := newTestScaler(h, AutoscalerConfig{Min: 1, Max: 4, GrowAfter: 3, Cooldown: time.Nanosecond})
	hotTicks(h, a, 2)
	if got := h.resized(); len(got) != 0 {
		t.Fatalf("resized %v after 2/3 hot polls", got)
	}
	// A cold poll breaks the streak: two more hot polls still don't fire.
	h.advance(a.cfg.Interval)
	st := h.stats()
	h.setLoad(st.ActiveShards, 0, st.QueueDepth, st.Rejected)
	a.tick()
	hotTicks(h, a, 2)
	if got := h.resized(); len(got) != 0 {
		t.Fatalf("resized %v across a broken streak", got)
	}
	if d, ok := a.Last(); !ok || d.Action != "hold" {
		t.Fatalf("last decision %+v, want hold", d)
	}
	// The third consecutive hot poll fires exactly one grow.
	hotTicks(h, a, 1)
	if got := h.resized(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("resized %v, want [2]", got)
	}
	d, _ := a.Last()
	if d.Action != "grow" || d.From != 1 || d.To != 2 || d.Reason == "" {
		t.Fatalf("grow decision %+v", d)
	}
}

// TestAutoscalerIdleShrinks: the configured streak of idle polls drains
// one shard, and the streak resets after the resize.
func TestAutoscalerIdleShrinks(t *testing.T) {
	h := newScalerHarness(3)
	a := newTestScaler(h, AutoscalerConfig{Min: 1, Max: 4, ShrinkAfter: 2, Cooldown: time.Nanosecond})
	idleTicks(h, a, 1)
	if got := h.resized(); len(got) != 0 {
		t.Fatalf("resized %v after a single idle poll", got)
	}
	idleTicks(h, a, 1)
	if got := h.resized(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("resized %v, want [2]", got)
	}
	d, _ := a.Last()
	if d.Action != "shrink" || d.From != 3 || d.To != 2 {
		t.Fatalf("shrink decision %+v", d)
	}
	// The streak restarted: one more idle poll is not enough again.
	idleTicks(h, a, 1)
	if got := h.resized(); len(got) != 1 {
		t.Fatalf("resized %v right after a shrink — streak did not reset", got)
	}
}

// TestAutoscalerClampsAtBounds: a hot pool at Max and an idle pool at Min
// hold, with the bound surfaced in the decision's reason.
func TestAutoscalerClampsAtBounds(t *testing.T) {
	h := newScalerHarness(2)
	a := newTestScaler(h, AutoscalerConfig{Min: 2, Max: 2, GrowAfter: 1, ShrinkAfter: 1, Cooldown: time.Nanosecond})
	hotTicks(h, a, 3)
	if got := h.resized(); len(got) != 0 {
		t.Fatalf("grew %v beyond max", got)
	}
	if d, _ := a.Last(); d.Action != "hold" || d.Reason == "" {
		t.Fatalf("at-max decision %+v, want reasoned hold", d)
	}
	idleTicks(h, a, 3)
	if got := h.resized(); len(got) != 0 {
		t.Fatalf("shrank %v below min", got)
	}
	if d, _ := a.Last(); d.Action != "hold" || d.Reason == "" {
		t.Fatalf("at-min decision %+v, want reasoned hold", d)
	}
}

// TestAutoscalerCooldownBetweenResizes: a sustained hot signal steps the
// pool one shard per cooldown window, not one per poll.
func TestAutoscalerCooldownBetweenResizes(t *testing.T) {
	h := newScalerHarness(1)
	a := newTestScaler(h, AutoscalerConfig{
		Min: 1, Max: 8, GrowAfter: 1,
		Interval: time.Second, Cooldown: 10 * time.Second,
	})
	// First fire needs the cooldown budget too (lastResize starts at the
	// zero time, so it is long since cooled).
	hotTicks(h, a, 1)
	if got := h.resized(); len(got) != 1 {
		t.Fatalf("resized %v, want one grow", got)
	}
	// 9 more hot polls land inside the cooldown: held, with the cooldown
	// surfaced as the reason.
	hotTicks(h, a, 9)
	if got := h.resized(); len(got) != 1 {
		t.Fatalf("resized %v during cooldown", got)
	}
	if d, _ := a.Last(); d.Action != "hold" || d.Reason == "" {
		t.Fatalf("cooldown decision %+v, want reasoned hold", d)
	}
	// The next poll crosses the 10s mark: one more grow.
	hotTicks(h, a, 1)
	if got := h.resized(); len(got) != 2 || got[1] != 3 {
		t.Fatalf("resized %v, want second grow to 3", got)
	}
}

// TestAutoscalerRejectionsCountAsHot: with QueueDepth 0 the queue can
// never fill; rejections since the previous poll are the saturation
// signal.
func TestAutoscalerRejectionsCountAsHot(t *testing.T) {
	h := newScalerHarness(1)
	a := newTestScaler(h, AutoscalerConfig{Min: 1, Max: 2, GrowAfter: 2, Cooldown: time.Nanosecond})
	rejected := int64(0)
	for i := 0; i < 2; i++ {
		h.advance(a.cfg.Interval)
		rejected += 5
		st := h.stats()
		h.setLoad(st.ActiveShards, 0, 0, rejected)
		a.tick()
	}
	if got := h.resized(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("resized %v, want [2] from rejection signal", got)
	}
}

// TestAutoscalerOperatorOverrideRestartsHysteresis: a pool size change
// the controller did not make (POST /engine/resize) resets the streaks
// and the cooldown, so the override is not immediately fought.
func TestAutoscalerOperatorOverrideRestartsHysteresis(t *testing.T) {
	h := newScalerHarness(1)
	a := newTestScaler(h, AutoscalerConfig{
		Min: 1, Max: 8, GrowAfter: 3,
		Interval: time.Second, Cooldown: time.Second,
	})
	hotTicks(h, a, 2) // streak at 2/3
	// Operator slams the pool to 6 between polls.
	st := h.stats()
	h.setLoad(6, st.QueueDepth, st.QueueDepth, st.Rejected)
	// Still hot, but the streak restarted: two more hot polls must not
	// resize (2/3 again), the third may.
	hotTicks(h, a, 2)
	if got := h.resized(); len(got) != 0 {
		t.Fatalf("resized %v right after an operator override", got)
	}
	hotTicks(h, a, 1)
	if got := h.resized(); len(got) != 1 || got[0] != 7 {
		t.Fatalf("resized %v, want [7] (grow from the operator's 6)", got)
	}
}

// TestAutoscalerHoldsWhileDraining: a draining gate is never resized and
// the decision state is left untouched.
func TestAutoscalerHoldsWhileDraining(t *testing.T) {
	h := newScalerHarness(1)
	a := newTestScaler(h, AutoscalerConfig{Min: 1, Max: 4, GrowAfter: 1, Cooldown: time.Nanosecond})
	h.mu.Lock()
	h.st.Draining = true
	h.st.Queued, h.st.QueueDepth = 8, 8
	h.mu.Unlock()
	h.advance(a.cfg.Interval)
	a.tick()
	if got := h.resized(); len(got) != 0 {
		t.Fatalf("resized %v while draining", got)
	}
	if _, ok := a.Last(); ok {
		t.Fatal("draining tick recorded a decision")
	}
}

// TestAutoscalerResizeFailureHolds: a failing resize is reported as a
// hold with the error in the reason, and the streak keeps retrying.
func TestAutoscalerResizeFailureHolds(t *testing.T) {
	h := newScalerHarness(1)
	h.fail = errors.New("boom")
	a := newTestScaler(h, AutoscalerConfig{Min: 1, Max: 4, GrowAfter: 1, Cooldown: time.Nanosecond})
	hotTicks(h, a, 1)
	d, ok := a.Last()
	if !ok || d.Action != "hold" || d.To != 1 {
		t.Fatalf("failed-resize decision %+v, want hold at 1", d)
	}
	if d.Reason == "" {
		t.Fatal("failed resize lost its reason")
	}
}

// TestAutoscalerStartStop: the background loop polls a real gate and
// stops cleanly; Stop without Start is safe.
func TestAutoscalerStartStop(t *testing.T) {
	// Queue depth 1, so a single queued waiter already reads as "more
	// than half full" to the controller.
	g := NewGate(Config{Shards: 1, MaxLivePerShard: 1, QueueDepth: 1})
	a := NewAutoscaler(AutoscalerConfig{
		Min: 1, Max: 3, Interval: time.Millisecond, GrowAfter: 1, Cooldown: time.Nanosecond,
	}, g.Stats, func(from, to int, reason string) error { return g.ResizeFrom(from, to, "autoscale", reason) })
	held, _ := g.Admit(nil)
	queued := make(chan struct{})
	go func() {
		s, err := g.Admit(context.Background())
		if err == nil {
			defer s.Release()
		}
		close(queued)
	}()
	waitQueued(t, g, 1)
	a.Start()
	a.Start() // idempotent
	select {
	case <-queued:
	case <-time.After(5 * time.Second):
		t.Fatal("autoscaler never grew the saturated pool")
	}
	a.Stop()
	a.Stop() // idempotent
	held.Release()
	if st := g.Stats(); st.ActiveShards < 2 {
		t.Fatalf("pool still at %d shards", st.ActiveShards)
	}
	// Stop without Start on a fresh controller returns immediately.
	NewAutoscaler(AutoscalerConfig{}, g.Stats, func(int, int, string) error { return nil }).Stop()
}
