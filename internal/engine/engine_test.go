package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGateLeastLoadedDispatch: a burst of admissions with no releases
// spreads evenly across shards, lowest index first.
func TestGateLeastLoadedDispatch(t *testing.T) {
	g := NewGate(Config{Shards: 4, MaxLivePerShard: 2})
	var shards []int
	for i := 0; i < 8; i++ {
		s, err := g.Admit(context.Background())
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		shards = append(shards, s.Shard)
	}
	want := []int{0, 1, 2, 3, 0, 1, 2, 3}
	for i := range want {
		if shards[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", shards, want)
		}
	}
	st := g.Stats()
	for _, sh := range st.Shards {
		if sh.Live != 2 || sh.Admitted != 2 {
			t.Fatalf("shard %d: live %d admitted %d, want 2/2", sh.Shard, sh.Live, sh.Admitted)
		}
	}
	// Full + no queue: immediate rejection.
	if _, err := g.Admit(context.Background()); !errors.Is(err, ErrSaturated) {
		t.Fatalf("admit when saturated: %v, want ErrSaturated", err)
	}
	if st := g.Stats(); st.Rejected != 1 {
		t.Fatalf("rejected %d, want 1", st.Rejected)
	}
}

// TestGateReleaseRebalances: releasing a slot makes its shard the
// least-loaded target of the next admission.
func TestGateReleaseRebalances(t *testing.T) {
	g := NewGate(Config{Shards: 2, MaxLivePerShard: 4})
	a, _ := g.Admit(nil)
	b, _ := g.Admit(nil)
	if a.Shard != 0 || b.Shard != 1 {
		t.Fatalf("initial spread %d,%d", a.Shard, b.Shard)
	}
	a.Release()
	a.Release() // idempotent
	c, _ := g.Admit(nil)
	if c.Shard != 0 {
		t.Fatalf("post-release admission went to shard %d, want 0", c.Shard)
	}
	if st := g.Stats(); st.Shards[0].Live != 1 || st.Shards[1].Live != 1 {
		t.Fatalf("double release corrupted live counts: %+v", st.Shards)
	}
}

// TestGateQueueFIFO: queued admissions are dispatched oldest-first as
// slots free up, and the queue bound rejects the overflow.
func TestGateQueueFIFO(t *testing.T) {
	g := NewGate(Config{Shards: 1, MaxLivePerShard: 1, QueueDepth: 2})
	first, err := g.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	order := make(chan int, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := g.Admit(context.Background())
			if err != nil {
				t.Errorf("queued admit %d: %v", i, err)
				return
			}
			order <- i
			// Hold briefly so the second waiter provably waits for THIS
			// release, not the original one.
			time.Sleep(5 * time.Millisecond)
			s.Release()
		}(i)
		// Make waiter i enqueue before waiter i+1.
		waitQueued(t, g, i+1)
	}
	if _, err := g.Admit(context.Background()); !errors.Is(err, ErrSaturated) {
		t.Fatalf("overflow admit: %v, want ErrSaturated", err)
	}
	first.Release()
	wg.Wait()
	if a, b := <-order, <-order; a != 0 || b != 1 {
		t.Fatalf("dispatch order %d,%d, want FIFO 0,1", a, b)
	}
}

// waitQueued spins until the gate reports n queued waiters.
func waitQueued(t *testing.T, g *Gate, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for g.Stats().Queued < n {
		if time.Now().After(deadline) {
			t.Fatalf("never reached %d queued waiters", n)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestGateDrainRejectsQueuedWork: Drain fails every queued waiter with
// ErrDraining immediately (no stranded requests), rejects new admissions,
// and returns once live work releases.
func TestGateDrainRejectsQueuedWork(t *testing.T) {
	g := NewGate(Config{Shards: 2, MaxLivePerShard: 1, QueueDepth: 8})
	a, _ := g.Admit(nil)
	b, _ := g.Admit(nil)

	queuedErr := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func() {
			_, err := g.Admit(context.Background())
			queuedErr <- err
		}()
	}
	waitQueued(t, g, 3)

	done := make(chan error, 1)
	go func() { done <- g.Drain(context.Background()) }()

	// All queued waiters fail promptly, well before the live slots end.
	for i := 0; i < 3; i++ {
		select {
		case err := <-queuedErr:
			if !errors.Is(err, ErrDraining) {
				t.Fatalf("queued waiter: %v, want ErrDraining", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("queued waiter stranded by Drain")
		}
	}
	// New admissions are refused.
	if _, err := g.Admit(context.Background()); !errors.Is(err, ErrDraining) {
		t.Fatalf("admit while draining: %v, want ErrDraining", err)
	}
	// Drain only returns once the live slots release.
	select {
	case <-done:
		t.Fatal("Drain returned with slots still live")
	case <-time.After(10 * time.Millisecond):
	}
	a.Release()
	b.Release()
	if err := <-done; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestGateDrainDeadline: a live slot that never releases bounds Drain by
// its context.
func TestGateDrainDeadline(t *testing.T) {
	g := NewGate(Config{Shards: 1, MaxLivePerShard: 1})
	if _, err := g.Admit(nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := g.Drain(ctx); err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain past deadline: %v", err)
	}
}

// TestGateAdmitContextCancel: a waiter abandoning the queue neither
// leaks capacity nor corrupts the queue; a grant racing the cancellation
// is released, never lost.
func TestGateAdmitContextCancel(t *testing.T) {
	g := NewGate(Config{Shards: 1, MaxLivePerShard: 1, QueueDepth: 4})
	slot, _ := g.Admit(nil)
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := g.Admit(ctx)
		errCh <- err
	}()
	waitQueued(t, g, 1)
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: %v", err)
	}
	if st := g.Stats(); st.Queued != 0 {
		t.Fatalf("cancelled waiter still queued: %+v", st)
	}
	// Capacity intact: release + admit works.
	slot.Release()
	next, err := g.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	next.Release()
	if st := g.Stats(); st.Shards[0].Live != 0 {
		t.Fatalf("leaked capacity: %+v", st.Shards)
	}
}

// TestGateConcurrentAdmission hammers a small gate from many goroutines
// under -race: the per-shard live bound must never be exceeded, every
// admission must eventually land, and the final live count must be zero.
func TestGateConcurrentAdmission(t *testing.T) {
	const (
		shards   = 4
		maxLive  = 3
		workers  = 32
		perGoros = 25
	)
	g := NewGate(Config{Shards: shards, MaxLivePerShard: maxLive, QueueDepth: workers})
	var over atomic.Bool
	var admitted atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perGoros; i++ {
				s, err := g.Admit(context.Background())
				if err != nil {
					// Saturation is legal under burst; retry.
					if errors.Is(err, ErrSaturated) {
						time.Sleep(200 * time.Microsecond)
						i--
						continue
					}
					t.Errorf("admit: %v", err)
					return
				}
				if live := g.Stats().Shards[s.Shard].Live; live > maxLive {
					over.Store(true)
				}
				admitted.Add(1)
				time.Sleep(50 * time.Microsecond)
				s.Release()
			}
		}()
	}
	wg.Wait()
	if over.Load() {
		t.Fatal("per-shard live bound exceeded")
	}
	if got := admitted.Load(); got != workers*perGoros {
		t.Fatalf("admitted %d, want %d", got, workers*perGoros)
	}
	st := g.Stats()
	for _, sh := range st.Shards {
		if sh.Live != 0 {
			t.Fatalf("shard %d still has %d live after all releases", sh.Shard, sh.Live)
		}
		if sh.Admitted == 0 {
			t.Fatalf("shard %d never admitted anything — dispatch is unfair: %+v", sh.Shard, st.Shards)
		}
	}
}
