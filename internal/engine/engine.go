// Package engine is the sharded execution core of progressd: a pool of
// workload replicas ("shards") behind one admission gate with a bounded
// wait queue, least-loaded dispatch, a draining shutdown path and
// runtime resizing — the pool grows and shrinks while admissions flow.
// The gate is execution-agnostic — it hands out shard slots and the
// caller runs whatever work the slot admits, releasing it on completion —
// so the admission logic is unit-testable without a database, a trained
// model or an HTTP layer.
//
// Admission is QoS-aware: waiters queue under named classes (workload
// families, optionally per client) scheduled by the internal/qos
// weighted fair queue instead of one global FIFO, every admission's
// queue wait and admission-to-done latency land in per-class windows,
// and with deadline admission enabled a request whose remaining
// deadline cannot cover the predicted queue wait is shed immediately
// (ErrDeadlineShed) instead of queueing to die.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"progressest/internal/qos"
)

// Config sizes the gate.
type Config struct {
	// Shards is the number of workload replicas behind the gate
	// (default 1). The pool can be resized at runtime (Resize).
	Shards int
	// MaxLivePerShard bounds the queries executing concurrently on one
	// shard (default 64).
	MaxLivePerShard int
	// QueueDepth bounds the admissions waiting for a slot once every
	// shard is at capacity; 0 disables queueing, so a saturated gate
	// rejects immediately.
	QueueDepth int

	// Weights maps admission classes (workload families; "family|client"
	// names inherit the family weight) to their fair-queueing weight.
	// Classes absent here weigh 1. With a single class — or no Weights
	// at all — scheduling degenerates to the old global FIFO.
	Weights map[string]int
	// ClassQueueDepth bounds one class's share of the admission queue
	// (default QueueDepth: no per-class tightening).
	ClassQueueDepth int
	// LatencyWindow is the per-class latency window size (default 512).
	LatencyWindow int
	// DeadlineAdmission sheds an admission whose ctx deadline cannot
	// cover the predicted queue wait with ErrDeadlineShed instead of
	// letting it occupy a queue slot it is doomed to time out of.
	DeadlineAdmission bool
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.MaxLivePerShard <= 0 {
		c.MaxLivePerShard = 64
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	return c
}

// ErrSaturated is returned by Admit when every shard is at capacity and
// the wait queue (shared or the class's bounded share of it) is full.
var ErrSaturated = errors.New("engine: all shards at capacity and the admission queue is full")

// ErrDraining is returned by Admit once Drain has begun: the gate admits
// nothing new, and already queued admissions fail rather than strand.
// Resize fails with it too — a draining pool has no future to size.
var ErrDraining = errors.New("engine: draining, not accepting new queries")

// ErrResizeConflict is returned by ResizeFrom when the pool size changed
// between the caller's observation and the resize — the decision was made
// against a stale snapshot and must not be applied.
var ErrResizeConflict = errors.New("engine: pool size changed concurrently; resize skipped")

// ErrDeadlineShed is the sentinel behind DeadlineShedError: the
// admission was refused because its remaining deadline cannot cover the
// predicted queue wait.
var ErrDeadlineShed = errors.New("engine: deadline cannot cover the predicted queue wait")

// DeadlineShedError reports one deadline-aware admission shed, carrying
// what the decision was made from (the HTTP layer's Retry-After hint).
type DeadlineShedError struct {
	// Class is the admission class the request was judged under.
	Class string
	// Predicted is the queue wait the scheduler predicted; Remaining
	// was the request's remaining deadline budget at admission.
	Predicted time.Duration
	Remaining time.Duration
}

func (e *DeadlineShedError) Error() string {
	return fmt.Sprintf("engine: shed class %q admission: predicted queue wait %s exceeds remaining deadline %s",
		e.Class, e.Predicted, e.Remaining)
}

func (e *DeadlineShedError) Unwrap() error { return ErrDeadlineShed }

// Shard lifecycle states reported in ShardStats.State.
const (
	// ShardActive shards receive dispatches.
	ShardActive = "active"
	// ShardDraining shards were shrink-marked: they finish their live
	// queries but receive nothing new, and are reaped when empty. A grow
	// reactivates them first — their live work is capacity already paid
	// for.
	ShardDraining = "draining"
	// ShardReaped shards left the pool; their lifetime counters survive
	// in Stats, and a later grow resurrects their slot before appending
	// a new one.
	ShardReaped = "reaped"
)

// shardState is one replica slot's admission bookkeeping. Slots are
// identified by their index in the gate's slice, which is stable for the
// gate's life: shrink never compacts the slice, it only marks slots
// draining/reaped, so a Slot.Shard handed out earlier always refers to
// the same replica.
type shardState struct {
	live     int
	admitted int64
	draining bool
	reaped   bool
}

func (s *shardState) state() string {
	switch {
	case s.reaped:
		return ShardReaped
	case s.draining:
		return ShardDraining
	default:
		return ShardActive
	}
}

// Slot is one admitted unit of work, pinned to a shard. Release it
// exactly when the work finishes; Release is idempotent.
type Slot struct {
	// Shard is the replica index the admission was dispatched to.
	Shard int

	g    *Gate
	cls  *qos.Class
	at   time.Time // Admit entry (admission-to-done accounting)
	once sync.Once
}

// Release frees the slot, recording its class's admission-to-done
// latency and dispatching the next scheduled admission if one waits.
func (s *Slot) Release() {
	s.once.Do(func() { s.g.release(s.Shard, s.cls, s.at) })
}

// maxResizeEvents bounds the retained resize history.
const maxResizeEvents = 32

// ResizeEvent records one applied pool resize.
type ResizeEvent struct {
	// At is when the resize was applied.
	At time.Time `json:"at"`
	// From and To are the active shard counts before and after.
	From int `json:"from"`
	To   int `json:"to"`
	// Source is who asked: "autoscale" or "operator".
	Source string `json:"source"`
	// Reason is the requester's rationale (the autoscaler's trigger, or
	// the operator endpoint).
	Reason string `json:"reason,omitempty"`
}

// Gate is the admission gate in front of the shard pool. Admissions are
// dispatched to the least-loaded active shard; when every active shard is
// at its per-shard live bound they wait in a bounded queue scheduled by
// weighted fair queueing across admission classes (FIFO within a class).
// The pool is resizable at runtime: grow makes fresh slots dispatchable
// (admitting queued work immediately), shrink marks shards draining and
// reaps them once their live count hits zero.
type Gate struct {
	cfg Config

	mu       sync.Mutex
	shards   []shardState
	sched    *qos.Sched
	admitted int64
	rejected int64
	shed     int64
	draining bool
	resizes  int64
	events   []ResizeEvent
}

// NewGate builds a gate for cfg.
func NewGate(cfg Config) *Gate {
	cfg = cfg.withDefaults()
	return &Gate{
		cfg:    cfg,
		shards: make([]shardState, cfg.Shards),
		sched: qos.New(qos.Options{
			Weights:    cfg.Weights,
			TotalDepth: cfg.QueueDepth,
			ClassDepth: cfg.ClassQueueDepth,
			Window:     cfg.LatencyWindow,
		}),
	}
}

// NumShards returns the number of active (dispatchable) shards.
func (g *Gate) NumShards() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.activeLocked()
}

func (g *Gate) activeLocked() int {
	n := 0
	for i := range g.shards {
		if !g.shards[i].draining && !g.shards[i].reaped {
			n++
		}
	}
	return n
}

// leastLoadedLocked returns the active shard with the fewest live queries
// that still has capacity, or -1 when all are full. Draining and reaped
// shards never receive dispatches. Ties break to the lowest index, which
// keeps dispatch deterministic (and spreads a burst round-robin across
// idle shards).
func (g *Gate) leastLoadedLocked() int {
	best := -1
	for s := range g.shards {
		sh := &g.shards[s]
		if sh.draining || sh.reaped || sh.live >= g.cfg.MaxLivePerShard {
			continue
		}
		if best < 0 || sh.live < g.shards[best].live {
			best = s
		}
	}
	return best
}

func (g *Gate) grantLocked(shard int) {
	g.shards[shard].live++
	g.shards[shard].admitted++
	g.admitted++
}

// dispatchLocked grants scheduled admissions while active capacity
// remains — the shared tail of release and grow. The fair queue decides
// WHO goes next; the least-loaded scan decides WHERE.
func (g *Gate) dispatchLocked() {
	for g.sched.Len() > 0 {
		s := g.leastLoadedLocked()
		if s < 0 {
			break
		}
		w := g.sched.Next(time.Now())
		g.grantLocked(s)
		w.C <- s
	}
}

// Admit claims a slot under the default admission class — AdmitClass
// with class "". A single-class gate schedules exactly like the old
// global FIFO.
func (g *Gate) Admit(ctx context.Context) (*Slot, error) {
	return g.AdmitClass(ctx, "")
}

// AdmitClass claims a slot on the least-loaded active shard for one
// admission of the named class. When every active shard is at capacity
// the admission waits in the bounded fair queue until the scheduler
// grants it a freed slot, its queue (class or shared) overflows
// (ErrSaturated), the gate starts draining (ErrDraining), deadline
// admission sheds it (ErrDeadlineShed — the request never occupies a
// queue slot) or ctx expires. A nil ctx never expires. The entry
// timestamp is taken before the fast path, so queue-wait percentiles
// are exact over all admissions, contended or not.
func (g *Gate) AdmitClass(ctx context.Context, class string) (*Slot, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	t0 := time.Now()
	g.mu.Lock()
	if g.draining {
		g.rejected++
		g.mu.Unlock()
		return nil, ErrDraining
	}
	cls := g.sched.Lookup(class)
	if s := g.leastLoadedLocked(); s >= 0 {
		g.grantLocked(s)
		g.sched.FastAdmit(cls, time.Since(t0))
		g.mu.Unlock()
		return &Slot{Shard: s, g: g, cls: cls, at: t0}, nil
	}
	// Deadline-aware admission: a request that would queue but whose
	// remaining deadline cannot cover the predicted wait is dead on
	// arrival — shed it now, before it consumes a queue slot another
	// request could actually use.
	if g.cfg.DeadlineAdmission {
		if dl, ok := ctx.Deadline(); ok {
			remaining := dl.Sub(t0)
			pred := g.sched.PredictWait(cls)
			if remaining <= 0 || pred > remaining {
				cls.Shed()
				g.shed++
				g.mu.Unlock()
				return nil, &DeadlineShedError{Class: class, Predicted: pred, Remaining: remaining}
			}
		}
	}
	w := qos.NewWaiter()
	if err := g.sched.Enqueue(cls, w, t0); err != nil {
		g.rejected++
		g.mu.Unlock()
		return nil, fmt.Errorf("%w (%v)", ErrSaturated, err)
	}
	g.mu.Unlock()

	select {
	case s, ok := <-w.C:
		if !ok {
			return nil, ErrDraining
		}
		return &Slot{Shard: s, g: g, cls: cls, at: t0}, nil
	case <-ctx.Done():
		g.mu.Lock()
		if g.sched.Remove(w) {
			g.rejected++
			g.mu.Unlock()
			return nil, ctx.Err()
		}
		g.mu.Unlock()
		// The waiter was granted (or drained) concurrently with the
		// cancellation; the channel op below never blocks, because the
		// dispatcher sends before releasing the lock and the drain path
		// closes the channel. A granted slot is released so the abandoned
		// admission cannot leak capacity.
		if s, ok := <-w.C; ok {
			(&Slot{Shard: s, g: g, cls: cls, at: t0}).Release()
		}
		return nil, ctx.Err()
	}
}

// release frees one slot, records the admission-to-done latency, reaps
// the shard if a shrink marked it draining and this was its last live
// query, and dispatches scheduled admissions while capacity remains.
func (g *Gate) release(shard int, cls *qos.Class, at time.Time) {
	g.mu.Lock()
	sh := &g.shards[shard]
	sh.live--
	if sh.draining && !sh.reaped && sh.live == 0 {
		sh.reaped = true
	}
	if cls != nil {
		cls.RecordDone(time.Since(at))
	}
	g.dispatchLocked()
	g.mu.Unlock()
}

// Resize sets the number of active shards to n. Grow reactivates draining
// shards first (their live work is capacity already paid for), then
// resurrects reaped slots, and only appends brand-new slots for the
// remainder — so a caller owning per-slot replicas must provision every
// slot this could activate (len(Stats().Shards) existing slots plus the
// appended tail up to n) BEFORE calling Resize, because fresh capacity
// admits queued work immediately, inside this call. Shrink marks the emptiest
// active shards draining (ties to the highest index, so slot 0 — the
// primary replica — is the last to go); a draining shard finishes its
// live queries, receives nothing new, and is reaped when empty, keeping
// its lifetime counters in Stats. Resizing a draining gate fails with
// ErrDraining; n == current active count is a recorded no-op-free
// success.
func (g *Gate) Resize(n int, source, reason string) error {
	return g.resizeChecked(-1, n, source, reason)
}

// ResizeFrom is Resize guarded by the caller's observed active count: it
// applies only while the pool is still `from` shards, failing with
// ErrResizeConflict otherwise. The autoscaler uses it so a decision
// computed from a stats snapshot can never revert an operator resize
// that landed between the snapshot and the actuation.
func (g *Gate) ResizeFrom(from, n int, source, reason string) error {
	return g.resizeChecked(from, n, source, reason)
}

func (g *Gate) resizeChecked(expectFrom, n int, source, reason string) error {
	if n < 1 {
		return fmt.Errorf("engine: resize to %d shards: need at least 1", n)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.draining {
		return ErrDraining
	}
	from := g.activeLocked()
	if expectFrom >= 0 && from != expectFrom {
		return ErrResizeConflict
	}
	switch {
	case n == from:
		return nil
	case n > from:
		// Grow order — reactivate draining, resurrect reaped
		// lowest-index first, append — is a contract: the caller owning
		// per-slot replicas provisions a superset of the slots this
		// order can activate before calling (see
		// progressest.Engine.resize, which also covers a draining slot
		// reaping between its snapshot and this commit).
		need := n - from
		for i := range g.shards {
			if need == 0 {
				break
			}
			if g.shards[i].draining && !g.shards[i].reaped {
				g.shards[i].draining = false
				need--
			}
		}
		for i := range g.shards {
			if need == 0 {
				break
			}
			if g.shards[i].reaped {
				g.shards[i].reaped = false
				g.shards[i].draining = false
				need--
			}
		}
		for ; need > 0; need-- {
			g.shards = append(g.shards, shardState{})
		}
		// A grow under saturation is exactly when it matters: the queued
		// work spreads onto the fresh capacity right now.
		g.dispatchLocked()
	default:
		for mark := from - n; mark > 0; mark-- {
			pick := -1
			for i := range g.shards {
				s := &g.shards[i]
				if s.draining || s.reaped {
					continue
				}
				if pick < 0 || s.live < g.shards[pick].live ||
					(s.live == g.shards[pick].live && i > pick) {
					pick = i
				}
			}
			g.shards[pick].draining = true
			if g.shards[pick].live == 0 {
				g.shards[pick].reaped = true
			}
		}
	}
	g.resizes++
	g.events = append(g.events, ResizeEvent{
		At: time.Now(), From: from, To: n, Source: source, Reason: reason,
	})
	if len(g.events) > maxResizeEvents {
		g.events = append(g.events[:0], g.events[len(g.events)-maxResizeEvents:]...)
	}
	return nil
}

// Drain stops admission: new Admit calls and every already queued waiter
// — across every class — fail with ErrDraining immediately, so a
// shutdown under load cannot strand queued requests; then Drain waits
// until every live slot releases or ctx expires.
func (g *Gate) Drain(ctx context.Context) error {
	g.mu.Lock()
	g.draining = true
	g.rejected += int64(g.sched.Drain(func(w *qos.Waiter) { close(w.C) }))
	g.mu.Unlock()
	for {
		g.mu.Lock()
		live := 0
		for i := range g.shards {
			live += g.shards[i].live
		}
		g.mu.Unlock()
		if live == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("engine: drain: %d queries still live: %w", live, ctx.Err())
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// QueueWaitHint returns the gate-wide windowed p90 queue wait — the
// serving layer's Retry-After suggestion for rejected admissions.
func (g *Gate) QueueWaitHint() time.Duration {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.sched.WaitSummary().P90
}

// ShardStats is one shard's live/lifetime counters. Reaped shards keep
// reporting their lifetime Admitted count — shrinking never erases
// history.
type ShardStats struct {
	Shard    int    `json:"shard"`
	Live     int    `json:"live"`
	Admitted int64  `json:"admitted"`
	State    string `json:"state"`
}

// Stats is a point-in-time snapshot of the gate. The whole snapshot —
// shard slice, active count, counters, per-class QoS accounting and
// resize history — is taken under the same lock Resize mutates them
// with, so a concurrent resize can never yield a torn view (e.g. an
// ActiveShards count disagreeing with the per-shard states).
type Stats struct {
	Shards          []ShardStats  `json:"shards"`
	ActiveShards    int           `json:"active_shards"`
	Queued          int           `json:"queued"`
	QueueDepth      int           `json:"queue_depth"`
	MaxLivePerShard int           `json:"max_live_per_shard"`
	Admitted        int64         `json:"admitted"`
	Rejected        int64         `json:"rejected"`
	Shed            int64         `json:"shed"`
	Resizes         int64         `json:"resizes"`
	ResizeEvents    []ResizeEvent `json:"resize_events,omitempty"`
	Draining        bool          `json:"draining"`

	// Classes is the per-admission-class QoS accounting, sorted by
	// class name; QueueWait summarizes the gate-wide windowed queue wait
	// (the autoscaler's SLO signal reads its P99).
	Classes   []qos.ClassStats `json:"-"`
	QueueWait qos.Summary      `json:"-"`
}

// Stats snapshots the gate's counters.
func (g *Gate) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	agg := g.sched.WaitSummary()
	st := Stats{
		Shards:          make([]ShardStats, len(g.shards)),
		ActiveShards:    g.activeLocked(),
		Queued:          g.sched.Len(),
		QueueDepth:      g.cfg.QueueDepth,
		MaxLivePerShard: g.cfg.MaxLivePerShard,
		Admitted:        g.admitted,
		Rejected:        g.rejected,
		Shed:            g.shed,
		Resizes:         g.resizes,
		ResizeEvents:    append([]ResizeEvent(nil), g.events...),
		Draining:        g.draining,
		Classes:         g.sched.Stats(),
		QueueWait:       agg,
	}
	for s := range g.shards {
		st.Shards[s] = ShardStats{
			Shard:    s,
			Live:     g.shards[s].live,
			Admitted: g.shards[s].admitted,
			State:    g.shards[s].state(),
		}
	}
	return st
}
