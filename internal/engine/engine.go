// Package engine is the sharded execution core of progressd: a pool of
// workload replicas ("shards") behind one admission gate with a bounded
// wait queue, least-loaded dispatch, a draining shutdown path and
// runtime resizing — the pool grows and shrinks while admissions flow.
// The gate is execution-agnostic — it hands out shard slots and the
// caller runs whatever work the slot admits, releasing it on completion —
// so the admission logic is unit-testable without a database, a trained
// model or an HTTP layer.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Config sizes the gate.
type Config struct {
	// Shards is the number of workload replicas behind the gate
	// (default 1). The pool can be resized at runtime (Resize).
	Shards int
	// MaxLivePerShard bounds the queries executing concurrently on one
	// shard (default 64).
	MaxLivePerShard int
	// QueueDepth bounds the admissions waiting for a slot once every
	// shard is at capacity; 0 disables queueing, so a saturated gate
	// rejects immediately.
	QueueDepth int
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.MaxLivePerShard <= 0 {
		c.MaxLivePerShard = 64
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	return c
}

// ErrSaturated is returned by Admit when every shard is at capacity and
// the wait queue is full.
var ErrSaturated = errors.New("engine: all shards at capacity and the admission queue is full")

// ErrDraining is returned by Admit once Drain has begun: the gate admits
// nothing new, and already queued admissions fail rather than strand.
// Resize fails with it too — a draining pool has no future to size.
var ErrDraining = errors.New("engine: draining, not accepting new queries")

// ErrResizeConflict is returned by ResizeFrom when the pool size changed
// between the caller's observation and the resize — the decision was made
// against a stale snapshot and must not be applied.
var ErrResizeConflict = errors.New("engine: pool size changed concurrently; resize skipped")

// Shard lifecycle states reported in ShardStats.State.
const (
	// ShardActive shards receive dispatches.
	ShardActive = "active"
	// ShardDraining shards were shrink-marked: they finish their live
	// queries but receive nothing new, and are reaped when empty. A grow
	// reactivates them first — their live work is capacity already paid
	// for.
	ShardDraining = "draining"
	// ShardReaped shards left the pool; their lifetime counters survive
	// in Stats, and a later grow resurrects their slot before appending
	// a new one.
	ShardReaped = "reaped"
)

// shardState is one replica slot's admission bookkeeping. Slots are
// identified by their index in the gate's slice, which is stable for the
// gate's life: shrink never compacts the slice, it only marks slots
// draining/reaped, so a Slot.Shard handed out earlier always refers to
// the same replica.
type shardState struct {
	live     int
	admitted int64
	draining bool
	reaped   bool
}

func (s *shardState) state() string {
	switch {
	case s.reaped:
		return ShardReaped
	case s.draining:
		return ShardDraining
	default:
		return ShardActive
	}
}

// Slot is one admitted unit of work, pinned to a shard. Release it
// exactly when the work finishes; Release is idempotent.
type Slot struct {
	// Shard is the replica index the admission was dispatched to.
	Shard int

	g    *Gate
	once sync.Once
}

// Release frees the slot, dispatching the oldest queued admission if one
// waits.
func (s *Slot) Release() {
	s.once.Do(func() { s.g.release(s.Shard) })
}

// waiter is one queued admission; the dispatcher sends the granted shard
// on ch (buffered, so dispatch never blocks), and Drain closes it.
type waiter struct {
	ch chan int
}

// maxResizeEvents bounds the retained resize history.
const maxResizeEvents = 32

// ResizeEvent records one applied pool resize.
type ResizeEvent struct {
	// At is when the resize was applied.
	At time.Time `json:"at"`
	// From and To are the active shard counts before and after.
	From int `json:"from"`
	To   int `json:"to"`
	// Source is who asked: "autoscale" or "operator".
	Source string `json:"source"`
	// Reason is the requester's rationale (the autoscaler's trigger, or
	// the operator endpoint).
	Reason string `json:"reason,omitempty"`
}

// Gate is the admission gate in front of the shard pool. Admissions are
// dispatched to the least-loaded active shard; when every active shard is
// at its per-shard live bound they wait in a bounded FIFO queue. The pool
// is resizable at runtime: grow makes fresh slots dispatchable (admitting
// queued work immediately), shrink marks shards draining and reaps them
// once their live count hits zero.
type Gate struct {
	cfg Config

	mu       sync.Mutex
	shards   []shardState
	waiters  []*waiter
	admitted int64
	rejected int64
	draining bool
	resizes  int64
	events   []ResizeEvent
}

// NewGate builds a gate for cfg.
func NewGate(cfg Config) *Gate {
	cfg = cfg.withDefaults()
	return &Gate{
		cfg:    cfg,
		shards: make([]shardState, cfg.Shards),
	}
}

// NumShards returns the number of active (dispatchable) shards.
func (g *Gate) NumShards() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.activeLocked()
}

func (g *Gate) activeLocked() int {
	n := 0
	for i := range g.shards {
		if !g.shards[i].draining && !g.shards[i].reaped {
			n++
		}
	}
	return n
}

// leastLoadedLocked returns the active shard with the fewest live queries
// that still has capacity, or -1 when all are full. Draining and reaped
// shards never receive dispatches. Ties break to the lowest index, which
// keeps dispatch deterministic (and spreads a burst round-robin across
// idle shards).
func (g *Gate) leastLoadedLocked() int {
	best := -1
	for s := range g.shards {
		sh := &g.shards[s]
		if sh.draining || sh.reaped || sh.live >= g.cfg.MaxLivePerShard {
			continue
		}
		if best < 0 || sh.live < g.shards[best].live {
			best = s
		}
	}
	return best
}

func (g *Gate) grantLocked(shard int) {
	g.shards[shard].live++
	g.shards[shard].admitted++
	g.admitted++
}

// dispatchLocked grants queued admissions while active capacity remains —
// the shared tail of release and grow.
func (g *Gate) dispatchLocked() {
	for len(g.waiters) > 0 {
		s := g.leastLoadedLocked()
		if s < 0 {
			break
		}
		w := g.waiters[0]
		g.waiters = g.waiters[1:]
		g.grantLocked(s)
		w.ch <- s
	}
}

// Admit claims a slot on the least-loaded active shard. When every active
// shard is at capacity it waits in the bounded FIFO queue until a slot
// frees, the queue overflows (ErrSaturated), the gate starts draining
// (ErrDraining) or ctx expires. A nil ctx never expires.
func (g *Gate) Admit(ctx context.Context) (*Slot, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	g.mu.Lock()
	if g.draining {
		g.rejected++
		g.mu.Unlock()
		return nil, ErrDraining
	}
	if s := g.leastLoadedLocked(); s >= 0 {
		g.grantLocked(s)
		g.mu.Unlock()
		return &Slot{Shard: s, g: g}, nil
	}
	if len(g.waiters) >= g.cfg.QueueDepth {
		g.rejected++
		g.mu.Unlock()
		return nil, ErrSaturated
	}
	w := &waiter{ch: make(chan int, 1)}
	g.waiters = append(g.waiters, w)
	g.mu.Unlock()

	select {
	case s, ok := <-w.ch:
		if !ok {
			return nil, ErrDraining
		}
		return &Slot{Shard: s, g: g}, nil
	case <-ctx.Done():
		g.mu.Lock()
		for i, q := range g.waiters {
			if q == w {
				g.waiters = append(g.waiters[:i], g.waiters[i+1:]...)
				g.rejected++
				g.mu.Unlock()
				return nil, ctx.Err()
			}
		}
		g.mu.Unlock()
		// The waiter was granted (or drained) concurrently with the
		// cancellation; the channel op below never blocks, because the
		// dispatcher sends before releasing the lock and the drain path
		// closes the channel. A granted slot is released so the abandoned
		// admission cannot leak capacity.
		if s, ok := <-w.ch; ok {
			(&Slot{Shard: s, g: g}).Release()
		}
		return nil, ctx.Err()
	}
}

// release frees one slot, reaps the shard if a shrink marked it draining
// and this was its last live query, and dispatches queued admissions
// while capacity remains.
func (g *Gate) release(shard int) {
	g.mu.Lock()
	sh := &g.shards[shard]
	sh.live--
	if sh.draining && !sh.reaped && sh.live == 0 {
		sh.reaped = true
	}
	g.dispatchLocked()
	g.mu.Unlock()
}

// Resize sets the number of active shards to n. Grow reactivates draining
// shards first (their live work is capacity already paid for), then
// resurrects reaped slots, and only appends brand-new slots for the
// remainder — so a caller owning per-slot replicas must provision every
// slot this could activate (len(Stats().Shards) existing slots plus the
// appended tail up to n) BEFORE calling Resize, because fresh capacity
// admits queued work immediately, inside this call. Shrink marks the emptiest
// active shards draining (ties to the highest index, so slot 0 — the
// primary replica — is the last to go); a draining shard finishes its
// live queries, receives nothing new, and is reaped when empty, keeping
// its lifetime counters in Stats. Resizing a draining gate fails with
// ErrDraining; n == current active count is a recorded no-op-free
// success.
func (g *Gate) Resize(n int, source, reason string) error {
	return g.resizeChecked(-1, n, source, reason)
}

// ResizeFrom is Resize guarded by the caller's observed active count: it
// applies only while the pool is still `from` shards, failing with
// ErrResizeConflict otherwise. The autoscaler uses it so a decision
// computed from a stats snapshot can never revert an operator resize
// that landed between the snapshot and the actuation.
func (g *Gate) ResizeFrom(from, n int, source, reason string) error {
	return g.resizeChecked(from, n, source, reason)
}

func (g *Gate) resizeChecked(expectFrom, n int, source, reason string) error {
	if n < 1 {
		return fmt.Errorf("engine: resize to %d shards: need at least 1", n)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.draining {
		return ErrDraining
	}
	from := g.activeLocked()
	if expectFrom >= 0 && from != expectFrom {
		return ErrResizeConflict
	}
	switch {
	case n == from:
		return nil
	case n > from:
		// Grow order — reactivate draining, resurrect reaped
		// lowest-index first, append — is a contract: the caller owning
		// per-slot replicas provisions a superset of the slots this
		// order can activate before calling (see
		// progressest.Engine.resize, which also covers a draining slot
		// reaping between its snapshot and this commit).
		need := n - from
		for i := range g.shards {
			if need == 0 {
				break
			}
			if g.shards[i].draining && !g.shards[i].reaped {
				g.shards[i].draining = false
				need--
			}
		}
		for i := range g.shards {
			if need == 0 {
				break
			}
			if g.shards[i].reaped {
				g.shards[i].reaped = false
				g.shards[i].draining = false
				need--
			}
		}
		for ; need > 0; need-- {
			g.shards = append(g.shards, shardState{})
		}
		// A grow under saturation is exactly when it matters: the queued
		// work spreads onto the fresh capacity right now.
		g.dispatchLocked()
	default:
		for mark := from - n; mark > 0; mark-- {
			pick := -1
			for i := range g.shards {
				s := &g.shards[i]
				if s.draining || s.reaped {
					continue
				}
				if pick < 0 || s.live < g.shards[pick].live ||
					(s.live == g.shards[pick].live && i > pick) {
					pick = i
				}
			}
			g.shards[pick].draining = true
			if g.shards[pick].live == 0 {
				g.shards[pick].reaped = true
			}
		}
	}
	g.resizes++
	g.events = append(g.events, ResizeEvent{
		At: time.Now(), From: from, To: n, Source: source, Reason: reason,
	})
	if len(g.events) > maxResizeEvents {
		g.events = append(g.events[:0], g.events[len(g.events)-maxResizeEvents:]...)
	}
	return nil
}

// Drain stops admission: new Admit calls and every already queued waiter
// fail with ErrDraining immediately — a shutdown under load cannot strand
// queued requests — then Drain waits until every live slot releases or
// ctx expires.
func (g *Gate) Drain(ctx context.Context) error {
	g.mu.Lock()
	g.draining = true
	for _, w := range g.waiters {
		close(w.ch)
		g.rejected++
	}
	g.waiters = nil
	g.mu.Unlock()
	for {
		g.mu.Lock()
		live := 0
		for i := range g.shards {
			live += g.shards[i].live
		}
		g.mu.Unlock()
		if live == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("engine: drain: %d queries still live: %w", live, ctx.Err())
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// ShardStats is one shard's live/lifetime counters. Reaped shards keep
// reporting their lifetime Admitted count — shrinking never erases
// history.
type ShardStats struct {
	Shard    int    `json:"shard"`
	Live     int    `json:"live"`
	Admitted int64  `json:"admitted"`
	State    string `json:"state"`
}

// Stats is a point-in-time snapshot of the gate. The whole snapshot —
// shard slice, active count, counters and resize history — is taken
// under the same lock Resize mutates them with, so a concurrent resize
// can never yield a torn view (e.g. an ActiveShards count disagreeing
// with the per-shard states).
type Stats struct {
	Shards          []ShardStats  `json:"shards"`
	ActiveShards    int           `json:"active_shards"`
	Queued          int           `json:"queued"`
	QueueDepth      int           `json:"queue_depth"`
	MaxLivePerShard int           `json:"max_live_per_shard"`
	Admitted        int64         `json:"admitted"`
	Rejected        int64         `json:"rejected"`
	Resizes         int64         `json:"resizes"`
	ResizeEvents    []ResizeEvent `json:"resize_events,omitempty"`
	Draining        bool          `json:"draining"`
}

// Stats snapshots the gate's counters.
func (g *Gate) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	st := Stats{
		Shards:          make([]ShardStats, len(g.shards)),
		ActiveShards:    g.activeLocked(),
		Queued:          len(g.waiters),
		QueueDepth:      g.cfg.QueueDepth,
		MaxLivePerShard: g.cfg.MaxLivePerShard,
		Admitted:        g.admitted,
		Rejected:        g.rejected,
		Resizes:         g.resizes,
		ResizeEvents:    append([]ResizeEvent(nil), g.events...),
		Draining:        g.draining,
	}
	for s := range g.shards {
		st.Shards[s] = ShardStats{
			Shard:    s,
			Live:     g.shards[s].live,
			Admitted: g.shards[s].admitted,
			State:    g.shards[s].state(),
		}
	}
	return st
}
