// Package engine is the sharded execution core of progressd: a fixed pool
// of workload replicas ("shards") behind one admission gate with a
// bounded wait queue, least-loaded dispatch and a draining shutdown path.
// The gate is execution-agnostic — it hands out shard slots and the
// caller runs whatever work the slot admits, releasing it on completion —
// so the admission logic is unit-testable without a database, a trained
// model or an HTTP layer.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Config sizes the gate.
type Config struct {
	// Shards is the number of workload replicas behind the gate
	// (default 1).
	Shards int
	// MaxLivePerShard bounds the queries executing concurrently on one
	// shard (default 64).
	MaxLivePerShard int
	// QueueDepth bounds the admissions waiting for a slot once every
	// shard is at capacity; 0 disables queueing, so a saturated gate
	// rejects immediately.
	QueueDepth int
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.MaxLivePerShard <= 0 {
		c.MaxLivePerShard = 64
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	return c
}

// ErrSaturated is returned by Admit when every shard is at capacity and
// the wait queue is full.
var ErrSaturated = errors.New("engine: all shards at capacity and the admission queue is full")

// ErrDraining is returned by Admit once Drain has begun: the gate admits
// nothing new, and already queued admissions fail rather than strand.
var ErrDraining = errors.New("engine: draining, not accepting new queries")

// Slot is one admitted unit of work, pinned to a shard. Release it
// exactly when the work finishes; Release is idempotent.
type Slot struct {
	// Shard is the replica index the admission was dispatched to.
	Shard int

	g    *Gate
	once sync.Once
}

// Release frees the slot, dispatching the oldest queued admission if one
// waits.
func (s *Slot) Release() {
	s.once.Do(func() { s.g.release(s.Shard) })
}

// waiter is one queued admission; the dispatcher sends the granted shard
// on ch (buffered, so dispatch never blocks), and Drain closes it.
type waiter struct {
	ch chan int
}

// Gate is the admission gate in front of the shard pool. Admissions are
// dispatched to the least-loaded shard; when every shard is at its
// per-shard live bound they wait in a bounded FIFO queue.
type Gate struct {
	cfg Config

	mu            sync.Mutex
	live          []int
	shardAdmitted []int64
	waiters       []*waiter
	admitted      int64
	rejected      int64
	draining      bool
}

// NewGate builds a gate for cfg.
func NewGate(cfg Config) *Gate {
	cfg = cfg.withDefaults()
	return &Gate{
		cfg:           cfg,
		live:          make([]int, cfg.Shards),
		shardAdmitted: make([]int64, cfg.Shards),
	}
}

// NumShards returns the defaulted shard count the gate dispatches over.
func (g *Gate) NumShards() int { return len(g.live) }

// leastLoadedLocked returns the shard with the fewest live queries that
// still has capacity, or -1 when all are full. Ties break to the lowest
// index, which keeps dispatch deterministic (and spreads a burst round-
// robin across idle shards).
func (g *Gate) leastLoadedLocked() int {
	best := -1
	for s, n := range g.live {
		if n >= g.cfg.MaxLivePerShard {
			continue
		}
		if best < 0 || n < g.live[best] {
			best = s
		}
	}
	return best
}

func (g *Gate) grantLocked(shard int) {
	g.live[shard]++
	g.shardAdmitted[shard]++
	g.admitted++
}

// Admit claims a slot on the least-loaded shard. When every shard is at
// capacity it waits in the bounded FIFO queue until a slot frees, the
// queue overflows (ErrSaturated), the gate starts draining (ErrDraining)
// or ctx expires. A nil ctx never expires.
func (g *Gate) Admit(ctx context.Context) (*Slot, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	g.mu.Lock()
	if g.draining {
		g.rejected++
		g.mu.Unlock()
		return nil, ErrDraining
	}
	if s := g.leastLoadedLocked(); s >= 0 {
		g.grantLocked(s)
		g.mu.Unlock()
		return &Slot{Shard: s, g: g}, nil
	}
	if len(g.waiters) >= g.cfg.QueueDepth {
		g.rejected++
		g.mu.Unlock()
		return nil, ErrSaturated
	}
	w := &waiter{ch: make(chan int, 1)}
	g.waiters = append(g.waiters, w)
	g.mu.Unlock()

	select {
	case s, ok := <-w.ch:
		if !ok {
			return nil, ErrDraining
		}
		return &Slot{Shard: s, g: g}, nil
	case <-ctx.Done():
		g.mu.Lock()
		for i, q := range g.waiters {
			if q == w {
				g.waiters = append(g.waiters[:i], g.waiters[i+1:]...)
				g.rejected++
				g.mu.Unlock()
				return nil, ctx.Err()
			}
		}
		g.mu.Unlock()
		// The waiter was granted (or drained) concurrently with the
		// cancellation; the channel op below never blocks, because the
		// dispatcher sends before releasing the lock and the drain path
		// closes the channel. A granted slot is released so the abandoned
		// admission cannot leak capacity.
		if s, ok := <-w.ch; ok {
			(&Slot{Shard: s, g: g}).Release()
		}
		return nil, ctx.Err()
	}
}

// release frees one slot and dispatches queued admissions while capacity
// remains.
func (g *Gate) release(shard int) {
	g.mu.Lock()
	g.live[shard]--
	for len(g.waiters) > 0 {
		s := g.leastLoadedLocked()
		if s < 0 {
			break
		}
		w := g.waiters[0]
		g.waiters = g.waiters[1:]
		g.grantLocked(s)
		w.ch <- s
	}
	g.mu.Unlock()
}

// Drain stops admission: new Admit calls and every already queued waiter
// fail with ErrDraining immediately — a shutdown under load cannot strand
// queued requests — then Drain waits until every live slot releases or
// ctx expires.
func (g *Gate) Drain(ctx context.Context) error {
	g.mu.Lock()
	g.draining = true
	for _, w := range g.waiters {
		close(w.ch)
		g.rejected++
	}
	g.waiters = nil
	g.mu.Unlock()
	for {
		g.mu.Lock()
		live := 0
		for _, n := range g.live {
			live += n
		}
		g.mu.Unlock()
		if live == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("engine: drain: %d queries still live: %w", live, ctx.Err())
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// ShardStats is one shard's live/lifetime counters.
type ShardStats struct {
	Shard    int   `json:"shard"`
	Live     int   `json:"live"`
	Admitted int64 `json:"admitted"`
}

// Stats is a point-in-time snapshot of the gate.
type Stats struct {
	Shards          []ShardStats `json:"shards"`
	Queued          int          `json:"queued"`
	QueueDepth      int          `json:"queue_depth"`
	MaxLivePerShard int          `json:"max_live_per_shard"`
	Admitted        int64        `json:"admitted"`
	Rejected        int64        `json:"rejected"`
	Draining        bool         `json:"draining"`
}

// Stats snapshots the gate's counters.
func (g *Gate) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	st := Stats{
		Shards:          make([]ShardStats, len(g.live)),
		Queued:          len(g.waiters),
		QueueDepth:      g.cfg.QueueDepth,
		MaxLivePerShard: g.cfg.MaxLivePerShard,
		Admitted:        g.admitted,
		Rejected:        g.rejected,
		Draining:        g.draining,
	}
	for s := range g.live {
		st.Shards[s] = ShardStats{Shard: s, Live: g.live[s], Admitted: g.shardAdmitted[s]}
	}
	return st
}
