package engine

import (
	"fmt"
	"sync"
	"time"
)

// AutoscalerConfig tunes the load-driven grow/shrink control loop.
type AutoscalerConfig struct {
	// Min and Max bound the active shard count the controller steers
	// between (defaults 1 and Min).
	Min int
	Max int
	// Interval is the poll period (default 2s).
	Interval time.Duration
	// GrowAfter is the number of CONSECUTIVE hot polls — admission queue
	// more than half full, or rejections since the previous poll — before
	// one shard is added (default 3). One hot poll never resizes: a
	// transient burst the queue absorbs on its own is not a trend.
	GrowAfter int
	// ShrinkAfter is the number of consecutive idle polls — an empty
	// queue and at least one active shard with zero live queries — before
	// one shard is drained (default 10; idling a replica is cheap, so the
	// controller is slower to give capacity back than to add it).
	ShrinkAfter int
	// Cooldown is the minimum gap between two applied resizes (default
	// 3×Interval), so one sustained signal steps the pool one shard at a
	// time instead of slamming to the bound.
	Cooldown time.Duration
	// SLOQueueWaitP99 is the operator-declared latency SLO: when
	// positive, a poll observing the gate's windowed p99 queue wait
	// above it counts as hot — so a sustained breach grows the pool
	// BEFORE the queue fills and admissions start being rejected.
	// 0 disables the signal.
	SLOQueueWaitP99 time.Duration
	// Now is the clock (default time.Now; tests inject a fake).
	Now func() time.Time
}

func (c AutoscalerConfig) withDefaults() AutoscalerConfig {
	if c.Min < 1 {
		c.Min = 1
	}
	if c.Max < c.Min {
		c.Max = c.Min
	}
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.GrowAfter <= 0 {
		c.GrowAfter = 3
	}
	if c.ShrinkAfter <= 0 {
		c.ShrinkAfter = 10
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 3 * c.Interval
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Decision is the controller's verdict for one poll tick — the freshest
// one is surfaced in GET /engine/stats so an operator can see WHY the
// pool last moved (or held).
type Decision struct {
	At     time.Time `json:"at"`
	Action string    `json:"action"` // "grow", "shrink" or "hold"
	From   int       `json:"from"`
	To     int       `json:"to"`
	Reason string    `json:"reason,omitempty"`
}

// Autoscaler is the control loop that resizes the shard pool from the
// gate's own admission signals, with hysteresis on both sides so a
// single hot or idle poll never flaps the pool. It observes through a
// stats func and acts through a resize func, so it is unit-testable with
// a fake clock and fabricated load.
type Autoscaler struct {
	cfg   AutoscalerConfig
	stats func() Stats
	// resize actuates one decision; `from` is the active count the
	// decision was computed from, so the actuator can refuse a stale one
	// (Gate.ResizeFrom) instead of reverting a concurrent operator
	// override.
	resize func(from, to int, reason string) error

	mu           sync.Mutex
	hot, idle    int
	lastRejected int64
	lastActive   int
	lastResize   time.Time
	primed       bool // at least one tick completed (override detection)

	// lastMu guards only the published decision, so Last() — the
	// /engine/stats path — never waits out a tick that is mid-resize
	// under mu.
	lastMu  sync.Mutex
	last    Decision
	decided bool

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewAutoscaler wires a controller to its observation and actuation
// functions. Call Start to launch the background loop.
func NewAutoscaler(cfg AutoscalerConfig, stats func() Stats, resize func(from, to int, reason string) error) *Autoscaler {
	return &Autoscaler{
		cfg:    cfg.withDefaults(),
		stats:  stats,
		resize: resize,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// Interval returns the defaulted poll period.
func (a *Autoscaler) Interval() time.Duration { return a.cfg.Interval }

// Bounds returns the defaulted [min, max] active-shard range.
func (a *Autoscaler) Bounds() (min, max int) { return a.cfg.Min, a.cfg.Max }

// Last returns the most recent poll decision; ok is false before the
// first tick. It never blocks behind an in-flight tick or resize.
func (a *Autoscaler) Last() (d Decision, ok bool) {
	a.lastMu.Lock()
	defer a.lastMu.Unlock()
	return a.last, a.decided
}

// tick evaluates one poll: update the hot/idle streaks from the current
// stats, and resize by one shard when a streak crosses its threshold
// inside the bounds and outside the cooldown.
func (a *Autoscaler) tick() {
	st := a.stats()
	now := a.cfg.Now()
	a.mu.Lock()
	defer a.mu.Unlock()
	if st.Draining {
		return
	}
	active := st.ActiveShards
	// The pool moved without us (operator override via POST
	// /engine/resize): restart the hysteresis from the new size instead
	// of immediately fighting the override with a stale streak.
	if a.primed && active != a.lastActive {
		a.hot, a.idle = 0, 0
		a.lastResize = now
	}
	a.primed = true
	a.lastActive = active

	rejected := st.Rejected - a.lastRejected
	a.lastRejected = st.Rejected
	// Hot: the queue is more than half full, admissions were rejected
	// since the last poll (the only saturation signal when QueueDepth is
	// 0 and the queue cannot fill), or the windowed p99 queue wait
	// breaches the declared SLO — the leading indicator that fires
	// while the queue still absorbs the load, so capacity arrives
	// before anything is shed.
	sloBreach := a.cfg.SLOQueueWaitP99 > 0 && st.QueueWait.P99 > a.cfg.SLOQueueWaitP99
	hot := rejected > 0 || (st.QueueDepth > 0 && 2*st.Queued > st.QueueDepth) || sloBreach
	idle := false
	if !hot && st.Queued == 0 {
		for _, sh := range st.Shards {
			if sh.State == ShardActive && sh.Live == 0 {
				idle = true
				break
			}
		}
	}
	switch {
	case hot:
		a.hot++
		a.idle = 0
	case idle:
		a.idle++
		a.hot = 0
	default:
		a.hot, a.idle = 0, 0
	}

	d := Decision{At: now, Action: "hold", From: active, To: active}
	cooled := now.Sub(a.lastResize) >= a.cfg.Cooldown
	switch {
	case a.hot >= a.cfg.GrowAfter && active < a.cfg.Max && cooled:
		d.Action, d.To = "grow", active+1
		sloNote := ""
		if sloBreach {
			sloNote = fmt.Sprintf(", p99 queue wait %s over the %s SLO",
				st.QueueWait.P99.Truncate(time.Microsecond), a.cfg.SLOQueueWaitP99)
		}
		d.Reason = fmt.Sprintf("queue hot for %d polls (%d queued / depth %d, %d rejected since last poll%s)",
			a.hot, st.Queued, st.QueueDepth, rejected, sloNote)
	case a.idle >= a.cfg.ShrinkAfter && active > a.cfg.Min && cooled:
		d.Action, d.To = "shrink", active-1
		d.Reason = fmt.Sprintf("idle shard for %d polls", a.idle)
	case a.hot >= a.cfg.GrowAfter && active >= a.cfg.Max:
		d.Reason = fmt.Sprintf("hot, but already at max %d shards", a.cfg.Max)
	case a.idle >= a.cfg.ShrinkAfter && active <= a.cfg.Min:
		d.Reason = fmt.Sprintf("idle, but already at min %d shards", a.cfg.Min)
	case (a.hot >= a.cfg.GrowAfter || a.idle >= a.cfg.ShrinkAfter) && !cooled:
		d.Reason = fmt.Sprintf("cooling down since last resize (%s of %s)",
			now.Sub(a.lastResize).Truncate(time.Millisecond), a.cfg.Cooldown)
	}
	if d.Action != "hold" {
		if err := a.resize(d.From, d.To, d.Reason); err != nil {
			d.Action, d.To = "hold", active
			d.Reason = fmt.Sprintf("resize failed: %v", err)
		} else {
			a.hot, a.idle = 0, 0
			a.lastResize = now
			a.lastActive = d.To
		}
	}
	a.lastMu.Lock()
	a.last, a.decided = d, true
	a.lastMu.Unlock()
}

// Start launches the background poll loop. It is idempotent.
func (a *Autoscaler) Start() {
	a.startOnce.Do(func() {
		go func() {
			defer close(a.done)
			ticker := time.NewTicker(a.cfg.Interval)
			defer ticker.Stop()
			for {
				select {
				case <-a.stop:
					return
				case <-ticker.C:
					a.tick()
				}
			}
		}()
	})
}

// Stop drains the background loop and waits for it to exit. It is
// idempotent and safe without Start.
func (a *Autoscaler) Stop() {
	a.stopOnce.Do(func() { close(a.stop) })
	a.startOnce.Do(func() { close(a.done) }) // never started: nothing to drain
	<-a.done
}
