package engine

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestGateWFQFairness: a saturating heavy family never starves a light
// one — under a 9:1 weight split the light class still lands its weight
// share of the grants, FIFO within each class.
func TestGateWFQFairness(t *testing.T) {
	g := NewGate(Config{
		Shards: 1, MaxLivePerShard: 1, QueueDepth: 64,
		Weights: map[string]int{"heavy": 9, "light": 1},
	})
	blocker, err := g.AdmitClass(context.Background(), "heavy")
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	// Enqueue one at a time (waiting for the queue to grow) so the
	// enqueue order — and with it the virtual start tags — is
	// deterministic.
	queued := 0
	admit := func(class string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := g.AdmitClass(context.Background(), class)
			if err != nil {
				t.Errorf("admit %s: %v", class, err)
				return
			}
			mu.Lock()
			order = append(order, class)
			mu.Unlock()
			s.Release()
		}()
		queued++
		waitQueued(t, g, queued)
	}
	for i := 0; i < 27; i++ {
		admit("heavy")
	}
	for i := 0; i < 3; i++ {
		admit("light")
	}
	blocker.Release()
	wg.Wait()

	if len(order) != 30 {
		t.Fatalf("granted %d of 30", len(order))
	}
	light := func(prefix int) int {
		n := 0
		for _, c := range order[:prefix] {
			if c == "light" {
				n++
			}
		}
		return n
	}
	// Weight share 1/10: the light class holds it in every grant window
	// instead of waiting out the 27 queued heavy admissions.
	if got := light(10); got < 1 {
		t.Fatalf("light got %d of the first 10 grants, want >= 1 (order %v)", got, order)
	}
	if got := light(20); got < 2 {
		t.Fatalf("light got %d of the first 20 grants, want >= 2 (order %v)", got, order)
	}
	if got := light(30); got != 3 {
		t.Fatalf("light got %d of 30 grants, want all 3", got)
	}
	st := g.Stats()
	if st.Rejected != 0 || st.Queued != 0 {
		t.Fatalf("stats %+v, want no rejections and an empty queue", st)
	}
}

// TestGateFastPathRecordsWait: an uncontended admission still lands its
// (near-zero) queue wait in the class and aggregate windows, so the
// percentiles cover ALL admissions, and its release records the
// admission-to-done latency.
func TestGateFastPathRecordsWait(t *testing.T) {
	g := NewGate(Config{Shards: 1, MaxLivePerShard: 2})
	s, err := g.AdmitClass(context.Background(), "tpch")
	if err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.QueueWait.Samples != 1 {
		t.Fatalf("aggregate wait samples %d, want 1 (fast path must record)", st.QueueWait.Samples)
	}
	if len(st.Classes) != 1 || st.Classes[0].Class != "tpch" {
		t.Fatalf("classes %+v, want exactly tpch", st.Classes)
	}
	cs := st.Classes[0]
	if cs.Admitted != 1 || cs.QueueWait.Samples != 1 || cs.QueueWait.P99 > time.Second {
		t.Fatalf("class stats %+v, want one ~0 wait sample", cs)
	}
	if cs.Latency.Samples != 0 {
		t.Fatalf("latency samples %d before release", cs.Latency.Samples)
	}
	s.Release()
	if cs := g.Stats().Classes[0]; cs.Latency.Samples != 1 {
		t.Fatalf("latency samples %d after release, want 1", cs.Latency.Samples)
	}
}

// TestGateDeadlineShed: once observed waits say the queue costs more
// than the request's remaining deadline, the admission is shed with
// ErrDeadlineShed — without ever occupying a queue slot — while a
// request with budget still queues.
func TestGateDeadlineShed(t *testing.T) {
	g := NewGate(Config{Shards: 1, MaxLivePerShard: 1, QueueDepth: 8, DeadlineAdmission: true})
	blocker, err := g.AdmitClass(context.Background(), "f")
	if err != nil {
		t.Fatal(err)
	}
	// Prime the class window with a real contended wait: before any
	// evidence the predictor is deliberately optimistic and never sheds.
	primed := make(chan error, 1)
	go func() {
		s, err := g.AdmitClass(context.Background(), "f")
		if err == nil {
			s.Release()
		}
		primed <- err
	}()
	waitQueued(t, g, 1)
	time.Sleep(30 * time.Millisecond)
	blocker.Release()
	if err := <-primed; err != nil {
		t.Fatal(err)
	}

	// Saturate again and ask with a 2ms budget: predicted (~30ms) wins.
	blocker2, err := g.AdmitClass(context.Background(), "f")
	if err != nil {
		t.Fatal(err)
	}
	defer blocker2.Release()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	_, err = g.AdmitClass(ctx, "f")
	if !errors.Is(err, ErrDeadlineShed) {
		t.Fatalf("short-deadline admit: %v, want ErrDeadlineShed", err)
	}
	var shed *DeadlineShedError
	if !errors.As(err, &shed) {
		t.Fatalf("error %T does not carry the shed details", err)
	}
	if shed.Class != "f" || shed.Predicted < 20*time.Millisecond || shed.Remaining > 2*time.Millisecond {
		t.Fatalf("shed details %+v", shed)
	}
	st := g.Stats()
	if st.Shed != 1 || st.Queued != 0 {
		t.Fatalf("shed %d queued %d, want 1 and 0 (shed requests must not occupy the queue)", st.Shed, st.Queued)
	}
	if cs := st.Classes[0]; cs.Shed != 1 {
		t.Fatalf("class shed %d, want 1", cs.Shed)
	}

	// A roomy deadline still queues: shedding is a refusal of doomed
	// work, not a ban on deadlines.
	ok := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s, err := g.AdmitClass(ctx, "f")
		if err == nil {
			s.Release()
		}
		ok <- err
	}()
	waitQueued(t, g, 1)
	blocker2.Release()
	if err := <-ok; err != nil {
		t.Fatalf("roomy-deadline admit: %v", err)
	}
}

// TestGateDrainResizeStormAcrossClasses: a resize under multi-class
// saturation dispatches onto the fresh capacity in fair order, and the
// following drain fails every still-queued waiter — nobody strands.
func TestGateDrainResizeStormAcrossClasses(t *testing.T) {
	g := NewGate(Config{
		Shards: 2, MaxLivePerShard: 1, QueueDepth: 32,
		Weights: map[string]int{"a": 4, "b": 2},
	})
	hold := make(chan struct{})
	var blockers []*Slot
	for i := 0; i < 2; i++ {
		s, err := g.AdmitClass(context.Background(), "a")
		if err != nil {
			t.Fatal(err)
		}
		blockers = append(blockers, s)
	}

	granted := make(chan struct{}, 16)
	results := make(chan error, 16)
	classes := []string{"a", "b", "c"}
	for i := 0; i < 12; i++ {
		go func(class string) {
			s, err := g.AdmitClass(context.Background(), class)
			if err == nil {
				granted <- struct{}{}
				<-hold
				s.Release()
			}
			results <- err
		}(classes[i%3])
	}
	waitQueued(t, g, 12)

	// Grow 2 -> 4: exactly two queued waiters dispatch onto the fresh
	// slots, inside Resize itself.
	if err := g.Resize(4, "operator", "storm"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		select {
		case <-granted:
		case <-time.After(5 * time.Second):
			t.Fatal("grow did not dispatch onto fresh capacity")
		}
	}
	if st := g.Stats(); st.Queued != 10 {
		t.Fatalf("queued %d after grow, want 10", st.Queued)
	}

	// Drain: the 10 still-queued waiters fail with ErrDraining now, the
	// 4 held slots release when we let go.
	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- g.Drain(ctx)
	}()
	failed := 0
	for i := 0; i < 10; i++ {
		select {
		case err := <-results:
			if !errors.Is(err, ErrDraining) {
				t.Fatalf("queued waiter got %v, want ErrDraining", err)
			}
			failed++
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d queued waiters failed; the rest stranded", failed)
		}
	}
	close(hold)
	for _, b := range blockers {
		b.Release()
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	for i := 0; i < 2; i++ { // the two granted-then-released waiters
		if err := <-results; err != nil {
			t.Fatalf("granted waiter got %v", err)
		}
	}
	if st := g.Stats(); st.Queued != 0 {
		t.Fatalf("queued %d after drain", st.Queued)
	}
}

// sloTick runs one autoscaler poll with a mostly-empty queue, zero
// rejections, and the fabricated gate-wide p99 queue wait.
func sloTick(h *scalerHarness, a *Autoscaler, p99 time.Duration) {
	h.advance(a.cfg.Interval)
	st := h.stats()
	h.setLoad(st.ActiveShards, 1, 64, st.Rejected)
	h.mu.Lock()
	h.st.QueueWait.P99 = p99
	h.mu.Unlock()
	a.tick()
}

// TestAutoscalerSLOBreachGrows: a sustained p99 queue-wait breach counts
// as hot and grows the pool with ZERO rejections and a near-empty queue
// — capacity arrives before anything bounces — while a poll back under
// the SLO breaks the streak like any cold poll.
func TestAutoscalerSLOBreachGrows(t *testing.T) {
	h := newScalerHarness(1)
	a := newTestScaler(h, AutoscalerConfig{
		Min: 1, Max: 4, GrowAfter: 3, Cooldown: time.Nanosecond,
		SLOQueueWaitP99: 50 * time.Millisecond,
	})
	sloTick(h, a, 80*time.Millisecond)
	sloTick(h, a, 80*time.Millisecond)
	if got := h.resized(); len(got) != 0 {
		t.Fatalf("resized %v after 2/3 breached polls", got)
	}
	// Back under the SLO: the hysteresis streak restarts.
	sloTick(h, a, 10*time.Millisecond)
	sloTick(h, a, 80*time.Millisecond)
	sloTick(h, a, 80*time.Millisecond)
	if got := h.resized(); len(got) != 0 {
		t.Fatalf("resized %v across a broken streak", got)
	}
	sloTick(h, a, 80*time.Millisecond)
	if got := h.resized(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("resized %v, want [2] from the SLO signal", got)
	}
	d, _ := a.Last()
	if d.Action != "grow" || !strings.Contains(d.Reason, "SLO") {
		t.Fatalf("grow decision %+v, want an SLO-attributed reason", d)
	}
	if st := h.stats(); st.Rejected != 0 {
		t.Fatalf("%d rejections before the SLO grow, want 0", st.Rejected)
	}
}

// TestAutoscalerSLODisabledByDefault: without a declared SLO, even an
// enormous p99 queue wait is not a hot signal on its own.
func TestAutoscalerSLODisabledByDefault(t *testing.T) {
	h := newScalerHarness(1)
	a := newTestScaler(h, AutoscalerConfig{Min: 1, Max: 4, GrowAfter: 1, Cooldown: time.Nanosecond})
	for i := 0; i < 3; i++ {
		sloTick(h, a, time.Hour)
	}
	if got := h.resized(); len(got) != 0 {
		t.Fatalf("resized %v with no SLO declared", got)
	}
}
