// Package storage implements the in-memory storage substrate the execution
// engine runs over: heap tables of integer-typed rows, plus sorted
// secondary indexes supporting ordered scans, equality seeks and range
// seeks. It plays the role SQL Server's storage engine plays in the paper:
// the source of tuples whose flow the GetNext counters observe.
package storage

import (
	"fmt"
	"sort"

	"progressest/internal/catalog"
)

// Row is one tuple. All values are int64; the catalog's column widths are
// used when accounting logical bytes read/written.
type Row = []int64

// Table is a heap table plus any materialised indexes.
type Table struct {
	Meta    *catalog.Table
	Rows    []Row
	indexes map[string]*Index // keyed by column name
}

// NewTable creates an empty table for the given metadata.
func NewTable(meta *catalog.Table) *Table {
	return &Table{Meta: meta, indexes: make(map[string]*Index)}
}

// NumRows returns the table cardinality.
func (t *Table) NumRows() int { return len(t.Rows) }

// Append adds a row. The row length must match the table's column count.
func (t *Table) Append(r Row) {
	if len(r) != len(t.Meta.Columns) {
		panic(fmt.Sprintf("storage: row width %d != table %s width %d",
			len(r), t.Meta.Name, len(t.Meta.Columns)))
	}
	t.Rows = append(t.Rows, r)
}

// Index is a sorted secondary index over one column: entries ordered by
// (key, rowID), supporting ordered scans and logarithmic seeks.
type Index struct {
	Meta   catalog.Index
	Column int // ordinal of the indexed column
	keys   []int64
	rowIDs []int32
}

// BuildIndex materialises an index over the named column and registers it
// with the table. Building is idempotent per column.
func (t *Table) BuildIndex(meta catalog.Index) (*Index, error) {
	col := t.Meta.ColumnIndex(meta.Column)
	if col < 0 {
		return nil, fmt.Errorf("storage: table %s has no column %q", t.Meta.Name, meta.Column)
	}
	if ix, ok := t.indexes[meta.Column]; ok {
		return ix, nil
	}
	ix := &Index{Meta: meta, Column: col}
	n := len(t.Rows)
	ix.keys = make([]int64, n)
	ix.rowIDs = make([]int32, n)
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		ka, kb := t.Rows[order[a]][col], t.Rows[order[b]][col]
		if ka != kb {
			return ka < kb
		}
		return order[a] < order[b]
	})
	for i, id := range order {
		ix.keys[i] = t.Rows[id][col]
		ix.rowIDs[i] = id
	}
	t.indexes[meta.Column] = ix
	return ix, nil
}

// IndexOn returns the index over the named column, or nil.
func (t *Table) IndexOn(column string) *Index {
	return t.indexes[column]
}

// Len returns the number of index entries.
func (ix *Index) Len() int { return len(ix.keys) }

// SeekEqual returns the positions [lo, hi) of entries with the given key.
func (ix *Index) SeekEqual(key int64) (lo, hi int) {
	lo = sort.Search(len(ix.keys), func(i int) bool { return ix.keys[i] >= key })
	hi = sort.Search(len(ix.keys), func(i int) bool { return ix.keys[i] > key })
	return lo, hi
}

// SeekRange returns the positions [lo, hi) of entries with loKey <= key <= hiKey.
func (ix *Index) SeekRange(loKey, hiKey int64) (lo, hi int) {
	lo = sort.Search(len(ix.keys), func(i int) bool { return ix.keys[i] >= loKey })
	hi = sort.Search(len(ix.keys), func(i int) bool { return ix.keys[i] > hiKey })
	return lo, hi
}

// Entry returns the (key, rowID) pair at position i in index order.
func (ix *Index) Entry(i int) (key int64, rowID int32) {
	return ix.keys[i], ix.rowIDs[i]
}

// Database is a set of populated tables.
type Database struct {
	Schema *catalog.Schema
	Design *catalog.PhysicalDesign
	tables map[string]*Table
}

// NewDatabase creates an empty database for a schema.
func NewDatabase(schema *catalog.Schema) *Database {
	db := &Database{Schema: schema, tables: make(map[string]*Table)}
	for _, tm := range schema.Tables {
		db.tables[tm.Name] = NewTable(tm)
	}
	return db
}

// Table returns the named table, or nil.
func (db *Database) Table(name string) *Table { return db.tables[name] }

// MustTable returns the named table or panics.
func (db *Database) MustTable(name string) *Table {
	t := db.tables[name]
	if t == nil {
		panic(fmt.Sprintf("storage: database has no table %q", name))
	}
	return t
}

// ApplyDesign builds every index in the physical design and remembers the
// design for optimizer consultation.
func (db *Database) ApplyDesign(design *catalog.PhysicalDesign) error {
	if err := design.Validate(db.Schema); err != nil {
		return err
	}
	for _, ixm := range design.Indexes {
		if _, err := db.MustTable(ixm.Table).BuildIndex(ixm); err != nil {
			return err
		}
	}
	db.Design = design
	return nil
}

// TotalRows returns the sum of all table cardinalities (a convenient
// "data size" figure for experiment reporting).
func (db *Database) TotalRows() int {
	n := 0
	for _, t := range db.tables {
		n += t.NumRows()
	}
	return n
}
