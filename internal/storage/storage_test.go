package storage

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"progressest/internal/catalog"
)

func testMeta() *catalog.Table {
	return &catalog.Table{Name: "t", Columns: []catalog.Column{
		{Name: "k", Width: 8}, {Name: "v", Width: 8},
	}}
}

func TestAppendAndWidthCheck(t *testing.T) {
	tbl := NewTable(testMeta())
	tbl.Append(Row{1, 10})
	tbl.Append(Row{2, 20})
	if tbl.NumRows() != 2 {
		t.Fatalf("NumRows = %d, want 2", tbl.NumRows())
	}
	defer func() {
		if recover() == nil {
			t.Error("appending a short row should panic")
		}
	}()
	tbl.Append(Row{1})
}

func TestIndexSeekEqual(t *testing.T) {
	tbl := NewTable(testMeta())
	for i := 0; i < 100; i++ {
		tbl.Append(Row{int64(i % 10), int64(i)})
	}
	ix, err := tbl.BuildIndex(catalog.Index{Name: "ix_k", Table: "t", Column: "k"})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := ix.SeekEqual(3)
	if hi-lo != 10 {
		t.Errorf("SeekEqual(3) matched %d rows, want 10", hi-lo)
	}
	for i := lo; i < hi; i++ {
		key, rowID := ix.Entry(i)
		if key != 3 {
			t.Errorf("entry key = %d, want 3", key)
		}
		if tbl.Rows[rowID][0] != 3 {
			t.Errorf("row %d has key %d, want 3", rowID, tbl.Rows[rowID][0])
		}
	}
	lo, hi = ix.SeekEqual(99)
	if hi != lo {
		t.Errorf("SeekEqual(missing) matched %d rows, want 0", hi-lo)
	}
}

func TestIndexSeekRange(t *testing.T) {
	tbl := NewTable(testMeta())
	for i := 0; i < 50; i++ {
		tbl.Append(Row{int64(i), int64(i)})
	}
	ix, err := tbl.BuildIndex(catalog.Index{Name: "ix", Table: "t", Column: "k"})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := ix.SeekRange(10, 19)
	if hi-lo != 10 {
		t.Errorf("SeekRange(10,19) matched %d rows, want 10", hi-lo)
	}
	lo, hi = ix.SeekRange(100, 200)
	if hi-lo != 0 {
		t.Errorf("empty range matched %d rows", hi-lo)
	}
	lo, hi = ix.SeekRange(-5, 1000)
	if hi-lo != 50 {
		t.Errorf("full range matched %d rows, want 50", hi-lo)
	}
}

func TestIndexOrderedProperty(t *testing.T) {
	f := func(vals []int16) bool {
		tbl := NewTable(testMeta())
		for i, v := range vals {
			tbl.Append(Row{int64(v), int64(i)})
		}
		ix, err := tbl.BuildIndex(catalog.Index{Name: "ix", Table: "t", Column: "k"})
		if err != nil {
			return false
		}
		if ix.Len() != len(vals) {
			return false
		}
		var prev int64 = -1 << 62
		for i := 0; i < ix.Len(); i++ {
			k, id := ix.Entry(i)
			if k < prev {
				return false
			}
			if tbl.Rows[id][0] != k {
				return false
			}
			prev = k
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSeekMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tbl := NewTable(testMeta())
	for i := 0; i < 1000; i++ {
		tbl.Append(Row{rng.Int63n(50), int64(i)})
	}
	ix, _ := tbl.BuildIndex(catalog.Index{Name: "ix", Table: "t", Column: "k"})
	for key := int64(-1); key <= 51; key++ {
		lo, hi := ix.SeekEqual(key)
		want := 0
		for _, r := range tbl.Rows {
			if r[0] == key {
				want++
			}
		}
		if hi-lo != want {
			t.Errorf("key %d: index found %d rows, scan found %d", key, hi-lo, want)
		}
	}
}

func TestBuildIndexIdempotent(t *testing.T) {
	tbl := NewTable(testMeta())
	tbl.Append(Row{1, 1})
	a, _ := tbl.BuildIndex(catalog.Index{Name: "ix", Table: "t", Column: "k"})
	b, _ := tbl.BuildIndex(catalog.Index{Name: "ix2", Table: "t", Column: "k"})
	if a != b {
		t.Error("rebuilding an index on the same column should reuse it")
	}
	if _, err := tbl.BuildIndex(catalog.Index{Name: "bad", Table: "t", Column: "ghost"}); err == nil {
		t.Error("expected error for unknown column")
	}
}

func TestDatabaseApplyDesign(t *testing.T) {
	schema := &catalog.Schema{Name: "s", Tables: []*catalog.Table{testMeta()}}
	db := NewDatabase(schema)
	db.MustTable("t").Append(Row{7, 70})
	design := &catalog.PhysicalDesign{
		Level:   catalog.FullyTuned,
		Indexes: []catalog.Index{{Name: "ix", Table: "t", Column: "k"}},
	}
	if err := db.ApplyDesign(design); err != nil {
		t.Fatal(err)
	}
	if db.MustTable("t").IndexOn("k") == nil {
		t.Error("index not built by ApplyDesign")
	}
	if db.TotalRows() != 1 {
		t.Errorf("TotalRows = %d, want 1", db.TotalRows())
	}
	bad := &catalog.PhysicalDesign{Indexes: []catalog.Index{{Name: "x", Table: "nope", Column: "k"}}}
	if err := db.ApplyDesign(bad); err == nil {
		t.Error("expected validation error")
	}
}

func TestIndexStableOnDuplicates(t *testing.T) {
	tbl := NewTable(testMeta())
	for i := 0; i < 20; i++ {
		tbl.Append(Row{5, int64(i)})
	}
	ix, _ := tbl.BuildIndex(catalog.Index{Name: "ix", Table: "t", Column: "k"})
	ids := make([]int, 0, 20)
	lo, hi := ix.SeekEqual(5)
	for i := lo; i < hi; i++ {
		_, id := ix.Entry(i)
		ids = append(ids, int(id))
	}
	if !sort.IntsAreSorted(ids) {
		t.Error("duplicate keys should keep rowIDs in insertion order")
	}
}
