package features

import (
	"math"
	"strings"
	"testing"

	"progressest/internal/catalog"
	"progressest/internal/datagen"
	"progressest/internal/exec"
	"progressest/internal/optimizer"
	"progressest/internal/plan"
	"progressest/internal/progress"
)

func pipelineViews(t *testing.T, level catalog.DesignLevel) []*progress.PipelineView {
	t.Helper()
	db := datagen.GenTPCH(datagen.Params{Scale: 0.08, Zipf: 1, Seed: 11})
	if err := db.ApplyDesign(datagen.Designs(datagen.TPCHLike)[level]); err != nil {
		t.Fatal(err)
	}
	spec := &optimizer.QuerySpec{
		First: optimizer.TableTerm{Table: "orders", Filters: []optimizer.FilterSpec{
			{Column: "o_orderdate", IsRange: true, Lo: 1, Hi: 1600},
		}},
		Joins: []optimizer.JoinTerm{{
			Right:     optimizer.TableTerm{Table: "lineitem"},
			LeftTable: "orders", LeftCol: "o_orderkey", RightCol: "l_orderkey",
		}},
		Group: &optimizer.GroupSpec{
			Cols: []optimizer.ColRef{{Table: "lineitem", Column: "l_returnflag"}},
			Aggs: []optimizer.AggRef{{Func: plan.AggCount}},
		},
	}
	pl, err := optimizer.NewPlanner(db, optimizer.BuildStats(db)).Plan(spec)
	if err != nil {
		t.Fatal(err)
	}
	tr := exec.Run(db, pl, exec.Options{})
	var views []*progress.PipelineView
	for i := range tr.Pipes.Pipelines {
		v := progress.NewPipelineView(tr, i)
		if v.NumObs() >= 5 {
			views = append(views, v)
		}
	}
	if len(views) == 0 {
		t.Fatal("no usable pipelines")
	}
	return views
}

func TestNamesMatchVectorLengths(t *testing.T) {
	names := Names()
	if len(names) != NumTotal {
		t.Fatalf("Names() has %d entries, NumTotal = %d", len(names), NumTotal)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate feature name %q", n)
		}
		seen[n] = true
	}
	// The paper says the full vector is about 200 doubles.
	if NumTotal < 150 || NumTotal > 260 {
		t.Errorf("NumTotal = %d, expected roughly 200", NumTotal)
	}
}

func TestVectorsHaveDeclaredLengths(t *testing.T) {
	for _, v := range pipelineViews(t, catalog.FullyTuned) {
		s := Static(v.PipeContext)
		if len(s) != NumStatic {
			t.Fatalf("Static length %d, want %d", len(s), NumStatic)
		}
		d := Dynamic(v)
		if len(d) != NumTotal-NumStatic {
			t.Fatalf("Dynamic length %d, want %d", len(d), NumTotal-NumStatic)
		}
		f := Full(v)
		if len(f) != NumTotal {
			t.Fatalf("Full length %d, want %d", len(f), NumTotal)
		}
		for i, x := range f {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatalf("feature %d (%s) is %v", i, Names()[i], x)
			}
		}
	}
}

func TestStaticEncodesOperatorMix(t *testing.T) {
	names := Names()
	idxCount := map[string]int{}
	for i, n := range names {
		idxCount[n] = i
	}
	foundSeek := false
	for _, v := range pipelineViews(t, catalog.FullyTuned) {
		s := Static(v.PipeContext)
		// Count features must equal actual node counts per op.
		counts := map[plan.OpType]float64{}
		for _, id := range v.Pipe.Nodes {
			counts[v.Trace.Plan.Node(id).Op]++
		}
		for op, want := range counts {
			got := s[idxCount["Count_"+op.String()]]
			if got != want {
				t.Errorf("Count_%v = %v, want %v", op, got, want)
			}
		}
		if counts[plan.IndexSeek] > 0 {
			foundSeek = true
		}
		// SelAt over all ops sums to 1.
		var sum float64
		for op := plan.OpType(0); op < plan.NumOpTypes; op++ {
			sum += s[idxCount["SelAt_"+op.String()]]
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("SelAt sums to %v, want 1", sum)
		}
		// SelAtDN within [0,1].
		dn := s[idxCount["SelAtDN"]]
		if dn < 0 || dn > 1 {
			t.Errorf("SelAtDN = %v", dn)
		}
	}
	if !foundSeek {
		t.Error("fully tuned plan should contain an index seek pipeline")
	}
}

func TestSelBelowAboveRelationship(t *testing.T) {
	// In a scan->filter pipeline, the scan lies below the filter: the
	// scan's E contributes to SelBelow_Filter, and the filter's E to
	// SelAbove_TableScan.
	names := Names()
	idx := map[string]int{}
	for i, n := range names {
		idx[n] = i
	}
	for _, v := range pipelineViews(t, catalog.Untuned) {
		hasFilter := false
		for _, id := range v.Pipe.Nodes {
			if v.Trace.Plan.Node(id).Op == plan.Filter {
				hasFilter = true
			}
		}
		if !hasFilter {
			continue
		}
		s := Static(v.PipeContext)
		if s[idx["SelBelow_Filter"]] <= 0 {
			t.Error("SelBelow_Filter should be positive when a filter has inputs in the pipeline")
		}
		return
	}
	t.Skip("no filter pipeline found")
}

func TestSemiJoinFeaturesPresent(t *testing.T) {
	db := datagen.GenTPCH(datagen.Params{Scale: 0.08, Zipf: 1, Seed: 12})
	if err := db.ApplyDesign(datagen.Designs(datagen.TPCHLike)[catalog.PartiallyTuned]); err != nil {
		t.Fatal(err)
	}
	spec := &optimizer.QuerySpec{
		First: optimizer.TableTerm{Table: "orders"},
		Exists: []optimizer.JoinTerm{{
			Right:     optimizer.TableTerm{Table: "lineitem"},
			LeftTable: "orders", LeftCol: "o_orderkey", RightCol: "l_orderkey",
		}},
	}
	pl, err := optimizer.NewPlanner(db, optimizer.BuildStats(db)).Plan(spec)
	if err != nil {
		t.Fatal(err)
	}
	if pl.CountOp(plan.SemiJoin) != 1 {
		t.Fatalf("want semi join:\n%s", pl)
	}
	tr := exec.Run(db, pl, exec.Options{})
	idx := map[string]int{}
	for i, n := range Names() {
		idx[n] = i
	}
	found := false
	for p := range tr.Pipes.Pipelines {
		v := progress.NewPipelineView(tr, p)
		s := Static(v.PipeContext)
		if s[idx["Count_SemiJoin"]] > 0 {
			found = true
			if s[idx["SelAt_SemiJoin"]] <= 0 {
				t.Error("SemiJoin present but SelAt_SemiJoin is zero")
			}
		}
	}
	if !found {
		t.Error("no pipeline carries the semi-join feature")
	}
}

func TestDynamicFeaturesBounded(t *testing.T) {
	for _, v := range pipelineViews(t, catalog.PartiallyTuned) {
		d := Dynamic(v)
		off := 0
		// Pairwise diffs are absolute differences of values in [0,1].
		for i := 0; i < len(diffPairs)*len(Markers); i++ {
			if d[off+i] < 0 || d[off+i] > 1 {
				t.Errorf("diff feature %d = %v out of [0,1]", i, d[off+i])
			}
		}
		off += len(diffPairs) * len(Markers)
		for i := off; i < len(d); i++ {
			if d[i] < 0 || d[i] > 10 {
				t.Errorf("correlation feature %d = %v out of [0,10]", i, d[i])
			}
		}
	}
}

func TestCorrelationNamesWellFormed(t *testing.T) {
	for _, n := range Names()[NumStatic:] {
		if !strings.Contains(n, "vs") && !strings.HasPrefix(n, "Cor_") {
			t.Errorf("dynamic feature name %q unexpected", n)
		}
	}
}

func TestDeterministicFeatures(t *testing.T) {
	va := pipelineViews(t, catalog.FullyTuned)
	vb := pipelineViews(t, catalog.FullyTuned)
	if len(va) != len(vb) {
		t.Fatal("pipeline counts differ")
	}
	for i := range va {
		fa, fb := Full(va[i]), Full(vb[i])
		for j := range fa {
			if fa[j] != fb[j] {
				t.Fatalf("feature %d differs across identical runs", j)
			}
		}
	}
}
