// Package features computes the inputs to the estimator-selection models:
// static features derived from the execution plan and optimizer estimates
// (Section 4.3) and dynamic features derived from execution feedback
// during the first part of a pipeline's run (Section 4.4). The complete
// vector is about 200 doubles, matching the paper's reported footprint.
package features

import (
	"fmt"
	"math"

	"progressest/internal/plan"
	"progressest/internal/progress"
)

// Markers are the driver-input fractions x (in percent) at which dynamic
// features are sampled; estimator selection stops refining after 20% of
// the driver input has been consumed (Section 6, "Dynamic Features").
var Markers = []int{1, 2, 5, 10, 20}

// CorK is the number of time-correlation observations per marker (the
// paper uses i = 1..4).
const CorK = 4

// corKinds are the estimators whose time correlation is measured.
var corKinds = []progress.Kind{
	progress.DNE, progress.TGN, progress.LUO,
	progress.BATCHDNE, progress.DNESEEK, progress.TGNINT,
}

// diffPairs are the estimator pairs whose differences at the markers are
// features (DNEvsTGN_x, DNEvsTGNINT_x, TGNvsTGNINT_x).
var diffPairs = [][2]progress.Kind{
	{progress.DNE, progress.TGN},
	{progress.DNE, progress.TGNINT},
	{progress.TGN, progress.TGNINT},
}

// opTypes enumerated in feature order.
var opTypes = func() []plan.OpType {
	out := make([]plan.OpType, plan.NumOpTypes)
	for i := range out {
		out[i] = plan.OpType(i)
	}
	return out
}()

// Names returns the full ordered feature-name list (static then dynamic).
func Names() []string {
	var names []string
	for _, op := range opTypes {
		names = append(names,
			"Count_"+op.String(),
			"Card_"+op.String(),
			"SelAt_"+op.String(),
			"SelAbove_"+op.String(),
			"SelBelow_"+op.String(),
		)
	}
	names = append(names,
		"SelAtDN",
		"NumNodes",
		"NumDrivers",
		"LogTotalE",
		"DriverKnown",
		"DriverShareOfNodes",
	)
	for _, p := range diffPairs {
		for _, x := range Markers {
			names = append(names, fmt.Sprintf("%svs%s_%d", p[0], p[1], x))
		}
	}
	for _, k := range corKinds {
		for i := 1; i <= CorK; i++ {
			for _, x := range Markers {
				names = append(names, fmt.Sprintf("Cor_%s_%d_%d", k, i, x))
			}
		}
	}
	return names
}

// NumStatic is the length of the static prefix of the feature vector.
var NumStatic = 5*len(opTypes) + 6

// NumTotal is the full feature-vector length.
var NumTotal = NumStatic + len(diffPairs)*len(Markers) + len(corKinds)*CorK*len(Markers)

// Static computes the static features of a pipeline: per-operator counts
// and cardinalities, the relative-cardinality encodings SelAt/SelAbove/
// SelBelow, and the driver-node share SelAtDN. The context is fully
// determined at pipeline start, so in the streaming path this prefix is
// computed once and cached (see OnlineStatic).
func Static(v *progress.PipeContext) []float64 {
	p := v.Plan
	pipe := v.Pipe

	inPipe := make(map[int]bool, len(pipe.Nodes))
	var totalE float64
	for _, id := range pipe.Nodes {
		inPipe[id] = true
		totalE += v.E0[id]
	}
	if totalE <= 0 {
		totalE = 1
	}

	// hasOpBelow[id][op]: some strict descendant of id within the pipeline
	// has operator op. hasOpAbove[id][op]: some strict ancestor within the
	// pipeline has op.
	type opSet [plan.NumOpTypes]bool
	below := make(map[int]*opSet, len(pipe.Nodes))
	above := make(map[int]*opSet, len(pipe.Nodes))
	for _, id := range pipe.Nodes {
		below[id] = &opSet{}
		above[id] = &opSet{}
	}
	var walkBelow func(n *plan.Node) *opSet
	walkBelow = func(n *plan.Node) *opSet {
		acc := &opSet{}
		for _, c := range n.Children {
			sub := walkBelow(c)
			if inPipe[c.ID] {
				for op, v := range sub {
					if v {
						acc[op] = true
					}
				}
				acc[c.Op] = true
			}
		}
		if s, ok := below[n.ID]; ok {
			*s = *acc
		}
		return acc
	}
	walkBelow(p.Root)
	var walkAbove func(n *plan.Node, anc opSet)
	walkAbove = func(n *plan.Node, anc opSet) {
		if s, ok := above[n.ID]; ok {
			*s = anc
		}
		next := anc
		if inPipe[n.ID] {
			next[n.Op] = true
		} else {
			next = opSet{}
		}
		for _, c := range n.Children {
			walkAbove(c, next)
		}
	}
	walkAbove(p.Root, opSet{})

	out := make([]float64, 0, NumStatic)
	for _, op := range opTypes {
		var count, card, selAt, selAbove, selBelow float64
		for _, id := range pipe.Nodes {
			n := p.Node(id)
			e := v.E0[id]
			if n.Op == op {
				count++
				card += e
				selAt += e
			}
			if below[id][op] {
				selAbove += e // nodes fed by a subtree containing op
			}
			if above[id][op] {
				selBelow += e // nodes inside the input subtree of an op node
			}
		}
		// Cardinalities enter in log scale so that the feature transfers
		// across databases of different sizes (the paper's ad-hoc
		// generalisation requirement).
		out = append(out, count, logp1(card), selAt/totalE, selAbove/totalE, selBelow/totalE)
	}

	var driverE float64
	for _, d := range pipe.Drivers {
		driverE += v.E0[d]
	}
	known := 0.0
	if v.DriverKnown {
		known = 1
	}
	out = append(out,
		driverE/totalE,
		float64(len(pipe.Nodes)),
		float64(len(pipe.Drivers)),
		logp1(totalE),
		known,
		float64(len(pipe.Drivers))/float64(len(pipe.Nodes)),
	)
	return out
}

// Source is the observation stream the dynamic features are computed
// from. Both the offline replay view (progress.PipelineView) and the
// streaming view (progress.OnlinePipeline) implement it; in the streaming
// case the features evolve as observations arrive, and unreached markers
// take their neutral defaults.
type Source interface {
	// NumObs is the number of observations recorded so far.
	NumObs() int
	// DriverFraction is the consumed driver-input fraction at ordinal i.
	DriverFraction(i int) float64
	// TimeSinceStart is the virtual time since the pipeline's span start
	// at ordinal i. Only ratios of these enter the features, so any
	// monotone affine rescaling (such as the offline span fraction)
	// produces the same values.
	TimeSinceStart(i int) float64
	// EstimateAt is estimator kind's value at ordinal i.
	EstimateAt(kind progress.Kind, i int) float64
}

// markerObservation returns the first ordinal where the driver fraction
// reaches frac, or -1.
func markerObservation(v Source, frac float64) int {
	n := v.NumObs()
	for i := 0; i < n; i++ {
		if v.DriverFraction(i) >= frac {
			return i
		}
	}
	return -1
}

// Dynamic computes the dynamic features from the observation prefix up to
// the 20% driver-input marker: pairwise estimator differences at each
// marker, and time-correlation features quantifying how well each
// estimator tracks elapsed time.
func Dynamic(v Source) []float64 {
	return AppendDynamic(make([]float64, 0, NumTotal-NumStatic), v)
}

// AppendDynamic appends the dynamic features to dst and returns the
// extended slice — the alloc-free form the streaming hot path uses with a
// reusable scratch buffer.
func AppendDynamic(dst []float64, v Source) []float64 {
	out := dst

	// Marker observations: first ordinal where the driver fraction reaches
	// x%. The marker list is small and fixed, so the ordinals live on the
	// stack.
	var markerArr [8]int
	markerObs := markerArr[:0]
	for _, x := range Markers {
		markerObs = append(markerObs, markerObservation(v, float64(x)/100))
	}

	for _, pr := range diffPairs {
		for mi := range Markers {
			o := markerObs[mi]
			if o < 0 {
				out = append(out, 0)
				continue
			}
			d := v.EstimateAt(pr[0], o) - v.EstimateAt(pr[1], o)
			if d < 0 {
				d = -d
			}
			out = append(out, d)
		}
	}

	for _, k := range corKinds {
		for i := 1; i <= CorK; i++ {
			for mi, x := range Markers {
				o := markerObs[mi]
				if o < 0 {
					out = append(out, 1) // neutral: looks perfectly linear
					continue
				}
				// Sub-marker at fraction (i/k)*x of the driver input.
				oSub := markerObservation(v, float64(x)/100*float64(i)/CorK)
				so := v.EstimateAt(k, o)
				if oSub < 0 || v.TimeSinceStart(o) <= 0 || so <= 0 {
					out = append(out, 1)
					continue
				}
				timeRatio := v.TimeSinceStart(oSub) / v.TimeSinceStart(o)
				estRatio := v.EstimateAt(k, oSub) / so
				if estRatio <= 0 {
					out = append(out, 1)
					continue
				}
				c := timeRatio / estRatio
				if c > 10 {
					c = 10
				}
				out = append(out, c)
			}
		}
	}
	return out
}

// Full returns static ++ dynamic features of a replayed pipeline.
func Full(v *progress.PipelineView) []float64 {
	return append(Static(v.PipeContext), Dynamic(v)...)
}

// OnlineStatic returns the static feature prefix of a live pipeline,
// computing it on first use and caching it on the view (the static
// context never changes after pipeline start).
func OnlineStatic(v *progress.OnlinePipeline) []float64 {
	if v.StaticCache == nil {
		v.StaticCache = Static(v.PipeContext)
	}
	return v.StaticCache
}

// OnlineFull returns the current full feature vector of a live pipeline:
// the cached static prefix plus the dynamic suffix over the observations
// seen so far. Markers not yet reached contribute their neutral defaults,
// so the vector is well-formed from the very first observation onwards and
// converges to the offline Full vector as the pipeline completes.
//
// The vector is assembled into the pipeline's FeatBuf scratch, so at
// steady state a re-pick allocates nothing; the returned slice is only
// valid until the next OnlineFull call on the same pipeline.
func OnlineFull(v *progress.OnlinePipeline) []float64 {
	st := OnlineStatic(v)
	if cap(v.FeatBuf) < NumTotal {
		v.FeatBuf = make([]float64, 0, NumTotal)
	}
	out := append(v.FeatBuf[:0], st...)
	out = AppendDynamic(out, v)
	v.FeatBuf = out
	return out
}

func logp1(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Log1p(x)
}
