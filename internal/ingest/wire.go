// Package ingest turns the daemon into progress-estimation-as-a-service:
// an external executor opens an estimation session by describing its
// plan and pipeline shape, streams batched GetNext/bytes counter
// observations, and reads back the same ProgressUpdate stream native
// queries get. A session synthesizes the exec.Observer event stream —
// pipeline starts, counter snapshots, pipeline ends, completion — from
// the ingested counters, so the OnlineView/selector machinery downstream
// runs unchanged and its estimates are bit-identical to an in-process
// run observing the same counters.
package ingest

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Spec is the session-open wire form (POST /sessions): the external
// query's plan shape, pipeline decomposition and driver-input totals,
// plus the routing metadata (workload, family, client) the admission
// gate and the learning loop key on.
type Spec struct {
	// Workload names the external engine or workload; harvested examples
	// record it as their workload tag.
	Workload string `json:"workload"`
	// Family is the session's workload family: its admission class, its
	// model-routing key, and the corpus tag its harvested examples carry.
	Family string `json:"family"`
	// Client optionally refines the admission class to "family|client",
	// exactly as a tagged native submission would.
	Client string `json:"client,omitempty"`
	// DeadlineMS optionally bounds the admission wait in milliseconds
	// (deadline-aware admission sheds sessions it cannot serve in time).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// UpdateEvery overrides the ProgressUpdate granularity: one update
	// per n-th ingested snapshot (0 = the server's default).
	UpdateEvery int `json:"update_every,omitempty"`
	// Nodes is the plan's operator tree in depth-first children-before-
	// parent order (the root is last); positions are the node IDs that
	// observation deltas address.
	Nodes []NodeSpec `json:"nodes"`
	// Pipelines optionally declares the pipeline decomposition
	// explicitly. When omitted it is derived from the operator semantics,
	// exactly as for a native plan.
	Pipelines []PipelineSpec `json:"pipelines,omitempty"`
}

// NodeSpec is one plan operator on the wire.
type NodeSpec struct {
	// Op is the operator name (TableScan, IndexScan, IndexSeek, Filter,
	// Project, HashJoin, MergeJoin, NestedLoopJoin, SemiJoin, Sort,
	// BatchSort, HashAgg, StreamAgg, Top).
	Op string `json:"op"`
	// Children are the node's input positions; they must precede the
	// node in the Nodes list (depth-first order).
	Children []int `json:"children,omitempty"`
	// Table is the scanned table's name, for scan/seek operators.
	Table string `json:"table,omitempty"`
	// EstRows is the optimizer's output-cardinality estimate E_i.
	EstRows float64 `json:"est_rows"`
	// RowWidth is the logical bytes per output row.
	RowWidth float64 `json:"row_width,omitempty"`
	// TopN is Top's row limit; BatchSize BatchSort's batch size.
	TopN      int64 `json:"top_n,omitempty"`
	BatchSize int   `json:"batch_size,omitempty"`
	// Total, when set, is the node's exact driver-input size, known
	// before its pipeline starts (a scan's table size, a blocking
	// operator's buffered output size). A pipeline whose drivers all
	// carry totals gets the exact-denominator estimators; one missing
	// total falls the pipeline back to plan-time cardinalities.
	Total *int64 `json:"total,omitempty"`
}

// PipelineSpec is one explicitly declared pipeline.
type PipelineSpec struct {
	// Nodes are the member node positions; Drivers the subset that are
	// driver nodes (the paper's DNodes).
	Nodes   []int `json:"nodes"`
	Drivers []int `json:"drivers,omitempty"`
}

// Batch is the observation-batch wire form (POST
// /sessions/{id}/observations): an ordered event stream plus an
// optional completion marker.
type Batch struct {
	// Events apply in order; times must be non-decreasing across events
	// and strictly increasing between snapshots.
	Events []Event `json:"events,omitempty"`
	// Done completes the session after the events apply: remaining
	// pipelines end, the trace is finalized and harvested.
	Done bool `json:"done,omitempty"`
	// Ends optionally carries exact pipeline end times with Done;
	// pipelines without one end at their last observed activity.
	Ends []PipeEnd `json:"ends,omitempty"`
}

// Event is one wire event: exactly one of Start or Snapshot is set.
type Event struct {
	Start    *StartEvent    `json:"start,omitempty"`
	Snapshot *SnapshotEvent `json:"snapshot,omitempty"`
}

// StartEvent marks a pipeline's first activity. Explicit starts are
// optional — a snapshot whose deltas touch a not-yet-started pipeline
// starts it implicitly at the snapshot's time — but carrying the exact
// start keeps replayed streams bit-identical to native execution.
type StartEvent struct {
	Pipeline int     `json:"pipeline"`
	Time     float64 `json:"time"`
}

// SnapshotEvent is one counter observation: the deltas since the
// previous snapshot, for the nodes whose counters advanced. Deltas must
// be non-negative — the counters are monotone by definition, and a
// regression is rejected rather than silently clamped.
type SnapshotEvent struct {
	Time   float64 `json:"time"`
	Deltas []Delta `json:"deltas,omitempty"`
}

// Delta is one node's counter advance: GetNext calls (K), logical bytes
// read (R) and written (W).
type Delta struct {
	Node int   `json:"node"`
	K    int64 `json:"k,omitempty"`
	R    int64 `json:"r,omitempty"`
	W    int64 `json:"w,omitempty"`
}

// PipeEnd is one pipeline's exact end time, carried with Done.
type PipeEnd struct {
	Pipeline int     `json:"pipeline"`
	Time     float64 `json:"time"`
}

// MaxBatchBytes bounds one observation batch's wire size: a session
// streams many small batches, so an oversized body is a client bug (or
// abuse), not a use case.
const MaxBatchBytes = 8 << 20

// ErrBatchTooLarge rejects an observation batch above the wire bound.
var ErrBatchTooLarge = errors.New("ingest: observation batch exceeds wire size bound")

// DecodeBatch strictly decodes one observation batch: unknown fields
// and trailing garbage are errors, so a client schema drift fails loudly
// instead of silently dropping counters.
func DecodeBatch(data []byte) (*Batch, error) {
	if len(data) > MaxBatchBytes {
		return nil, fmt.Errorf("%w: %d bytes", ErrBatchTooLarge, len(data))
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var b Batch
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("ingest: invalid batch: %w", err)
	}
	if err := checkTrailing(dec); err != nil {
		return nil, err
	}
	for i, ev := range b.Events {
		if (ev.Start == nil) == (ev.Snapshot == nil) {
			return nil, fmt.Errorf("%w: event %d must set exactly one of start/snapshot", ErrInvalid, i)
		}
	}
	return &b, nil
}

// DecodeSpec strictly decodes a session-open spec from r.
func DecodeSpec(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(io.LimitReader(r, MaxBatchBytes))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("ingest: invalid spec: %w", err)
	}
	if err := checkTrailing(dec); err != nil {
		return nil, err
	}
	return &s, nil
}

func checkTrailing(dec *json.Decoder) error {
	if _, err := dec.Token(); err != io.EOF {
		return fmt.Errorf("%w: trailing data after body", ErrInvalid)
	}
	return nil
}
