package ingest

import (
	"testing"

	"progressest/internal/exec"
)

// FuzzDecodeBatch fuzzes the observation-batch wire decoder and the
// runner behind it: whatever bytes arrive, decoding either fails cleanly
// or yields a batch the session state machine processes without panics,
// and the monotone-counter invariants hold on every accepted prefix.
func FuzzDecodeBatch(f *testing.F) {
	f.Add([]byte(`{"events":[{"snapshot":{"time":1,"deltas":[{"node":0,"k":5,"r":40}]}}]}`))
	f.Add([]byte(`{"events":[{"start":{"pipeline":0,"time":0.5}},{"snapshot":{"time":1,"deltas":[{"node":0,"k":5}]}}],"done":true,"ends":[{"pipeline":0,"time":1}]}`))
	f.Add([]byte(`{"done":true}`))
	f.Add([]byte(`{"events":[{"snapshot":{"time":-1,"deltas":[{"node":0,"k":-3}]}}]}`))
	f.Add([]byte(`{"events":[{}]}`))
	f.Add([]byte(`[]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBatch(data)
		if err != nil {
			return
		}
		for _, ev := range b.Events {
			if (ev.Start == nil) == (ev.Snapshot == nil) {
				t.Fatal("decoder accepted an event without exactly one of start/snapshot")
			}
		}
		model, err := Build(testSpec())
		if err != nil {
			t.Fatal(err)
		}
		r := NewRunner(model, exec.BaseObserver{}, 0, 64)
		if err := r.Apply(b); err != nil {
			return
		}
		// Every accepted snapshot kept the counters monotone; the
		// synthesized trace must finalize cleanly.
		tr, err := r.Finish(nil)
		if err != nil {
			t.Fatalf("Finish after clean Apply: %v", err)
		}
		for i, k := range tr.N {
			if k < 0 || tr.FinalR[i] < 0 || tr.FinalW[i] < 0 {
				t.Fatalf("node %d: negative final counter after accepted stream", i)
			}
		}
		for i := 1; i < len(tr.Snapshots); i++ {
			if tr.Snapshots[i].Time <= tr.Snapshots[i-1].Time {
				t.Fatalf("retained snapshots out of order at %d", i)
			}
		}
	})
}
