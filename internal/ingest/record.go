package ingest

import (
	"progressest/internal/exec"
)

// SpecFromTrace serializes a finished trace's plan, decomposition and
// at-start driver totals into the session-open wire form — the bridge a
// native (or natively recorded) execution uses to present itself as an
// external engine. The equivalence suite round-trips traces through it
// to prove ingested estimates bit-identical to in-process ones.
func SpecFromTrace(tr *exec.Trace, workload, family string) *Spec {
	spec := &Spec{Workload: workload, Family: family}
	for _, n := range tr.Plan.Nodes() {
		ns := NodeSpec{
			Op:        n.Op.String(),
			Table:     n.TableName,
			EstRows:   n.EstRows,
			RowWidth:  n.RowWidth,
			TopN:      n.TopN,
			BatchSize: n.BatchSize,
		}
		for _, c := range n.Children {
			ns.Children = append(ns.Children, c.ID)
		}
		spec.Nodes = append(spec.Nodes, ns)
	}
	// Totals only for the drivers of pipelines whose totals were fully
	// known at start: partial knowability is not reconstructible from a
	// trace, and the estimators never consult partial totals anyway.
	for pi, p := range tr.Pipes.Pipelines {
		ps := PipelineSpec{
			Nodes:   append([]int(nil), p.Nodes...),
			Drivers: append([]int(nil), p.Drivers...),
		}
		spec.Pipelines = append(spec.Pipelines, ps)
		if pi < len(tr.DriverTotalsKnown) && tr.DriverTotalsKnown[pi] {
			for _, d := range p.Drivers {
				t := tr.DriverTotal[d]
				spec.Nodes[d].Total = &t
			}
		}
	}
	return spec
}

// recorder converts an exec event stream into wire events.
type recorder struct {
	exec.BaseObserver
	nodes   int
	prev    []int64 // previous cumulative K/R/W rows
	events  []Event
	ends    []PipeEnd
	started []bool
}

func (rec *recorder) OnPipelineStart(st exec.PipelineStart) {
	rec.events = append(rec.events, Event{Start: &StartEvent{Pipeline: st.Pipe, Time: st.Time}})
	for len(rec.started) <= st.Pipe {
		rec.started = append(rec.started, false)
	}
	rec.started[st.Pipe] = true
}

func (rec *recorder) OnSnapshot(s exec.Snapshot) {
	ev := &SnapshotEvent{Time: s.Time}
	n := rec.nodes
	for id := 0; id < n; id++ {
		dk := s.K[id] - rec.prev[3*id]
		dr := s.R[id] - rec.prev[3*id+1]
		dw := s.W[id] - rec.prev[3*id+2]
		if dk != 0 || dr != 0 || dw != 0 {
			ev.Deltas = append(ev.Deltas, Delta{Node: id, K: dk, R: dr, W: dw})
			rec.prev[3*id] = s.K[id]
			rec.prev[3*id+1] = s.R[id]
			rec.prev[3*id+2] = s.W[id]
		}
	}
	rec.events = append(rec.events, Event{Snapshot: ev})
}

func (rec *recorder) OnPipelineEnd(pipe int, end float64) {
	rec.ends = append(rec.ends, PipeEnd{Pipeline: pipe, Time: end})
}

// RecordBatches converts a finished trace's event stream into
// observation batches of at most snapsPerBatch snapshots each
// (start events ride along in order), the last batch carrying the
// completion marker and the exact pipeline end times. Streaming the
// result through a Runner reproduces the trace's event stream — and
// therefore its estimates — bit-identically.
func RecordBatches(tr *exec.Trace, snapsPerBatch int) []Batch {
	if snapsPerBatch <= 0 {
		snapsPerBatch = 64
	}
	rec := &recorder{nodes: tr.Plan.NumNodes()}
	rec.prev = make([]int64, 3*rec.nodes)
	exec.Replay(tr, rec, 0)

	var out []Batch
	var cur Batch
	snaps := 0
	for _, ev := range rec.events {
		cur.Events = append(cur.Events, ev)
		if ev.Snapshot != nil {
			if snaps++; snaps >= snapsPerBatch {
				out = append(out, cur)
				cur = Batch{}
				snaps = 0
			}
		}
	}
	cur.Done = true
	cur.Ends = rec.ends
	out = append(out, cur)
	return out
}
