package ingest

import (
	"errors"
	"fmt"

	"progressest/internal/exec"
	"progressest/internal/pipeline"
	"progressest/internal/plan"
)

// The validation error taxonomy, for the HTTP layer's status mapping.
var (
	// ErrInvalid marks a malformed spec or batch (addressing errors,
	// unknown operators, structural violations) — the client request is
	// wrong regardless of session state.
	ErrInvalid = errors.New("ingest: invalid")
	// ErrOutOfOrder marks an event whose time moves backwards relative
	// to the session's already-ingested stream.
	ErrOutOfOrder = errors.New("ingest: out-of-order observation")
	// ErrRegression marks a counter regression: a negative delta would
	// move a monotone counter backwards.
	ErrRegression = errors.New("ingest: counter regression")
	// ErrCompleted rejects observations after the session completed.
	ErrCompleted = errors.New("ingest: session already completed")
	// ErrLimit rejects observations beyond the session's retention cap.
	ErrLimit = errors.New("ingest: observation limit exceeded")
)

// DefaultMaxObservations caps the snapshots one session retains (the
// synthesized trace must be held for completion-time harvest). External
// engines control their own snapshot cadence, so unlike the native
// executor there is no thinning backstop — the cap rejects instead.
const DefaultMaxObservations = 65536

// opByName maps wire operator names to plan operators.
var opByName = func() map[string]plan.OpType {
	m := make(map[string]plan.OpType, int(plan.NumOpTypes))
	for op := plan.OpType(0); op < plan.NumOpTypes; op++ {
		m[op.String()] = op
	}
	return m
}()

// maxSpecNodes bounds a session plan's size; real plans have tens of
// nodes, and every retained snapshot costs 3 int64s per node.
const maxSpecNodes = 1024

// Model is a validated session spec: the reconstructed plan, its
// pipeline decomposition, and the per-node driver totals declared
// knowable at session open.
type Model struct {
	Plan  *plan.Plan
	Pipes *pipeline.Decomposition

	// Total[n] is node n's declared exact input size, -1 when unknown.
	Total []int64
	// Known[p] reports whether every driver of pipeline p carries a
	// total — the condition for the exact-denominator estimators,
	// matching the native executor's at-start knowability rule.
	Known []bool
}

// Build validates the spec and reconstructs the plan and decomposition
// the estimator machinery runs on.
func Build(spec *Spec) (*Model, error) {
	if len(spec.Nodes) == 0 {
		return nil, fmt.Errorf("%w: spec has no nodes", ErrInvalid)
	}
	if len(spec.Nodes) > maxSpecNodes {
		return nil, fmt.Errorf("%w: %d nodes exceeds the bound %d", ErrInvalid, len(spec.Nodes), maxSpecNodes)
	}
	nodes := make([]*plan.Node, len(spec.Nodes))
	used := make([]bool, len(spec.Nodes)) // position referenced as a child
	for i, ns := range spec.Nodes {
		op, ok := opByName[ns.Op]
		if !ok {
			return nil, fmt.Errorf("%w: node %d has unknown operator %q", ErrInvalid, i, ns.Op)
		}
		if ns.EstRows < 0 || ns.RowWidth < 0 {
			return nil, fmt.Errorf("%w: node %d has negative cardinality or width", ErrInvalid, i)
		}
		if ns.Total != nil && *ns.Total < 0 {
			return nil, fmt.Errorf("%w: node %d has negative total", ErrInvalid, i)
		}
		n := &plan.Node{
			Op:           op,
			TableName:    ns.Table,
			EstRows:      ns.EstRows,
			RowWidth:     ns.RowWidth,
			TopN:         ns.TopN,
			BatchSize:    ns.BatchSize,
			SeekOuterCol: -1,
		}
		for _, c := range ns.Children {
			if c < 0 || c >= i {
				return nil, fmt.Errorf("%w: node %d child %d must precede it (depth-first order)", ErrInvalid, i, c)
			}
			if used[c] {
				return nil, fmt.Errorf("%w: node %d is a child of two nodes", ErrInvalid, c)
			}
			used[c] = true
			n.Children = append(n.Children, nodes[c])
		}
		nodes[i] = n
	}
	for i := 0; i < len(nodes)-1; i++ {
		if !used[i] {
			return nil, fmt.Errorf("%w: node %d is unreachable from the root (the last node)", ErrInvalid, i)
		}
	}
	pl := plan.Finalize(nodes[len(nodes)-1])
	// Finalize numbers depth-first children-before-parent; when the wire
	// order differs, deltas would address different nodes than the spec
	// declared — reject rather than silently renumber.
	for i, n := range nodes {
		if n.ID != i {
			return nil, fmt.Errorf("%w: nodes are not in depth-first children-before-parent order (node at position %d numbered %d)", ErrInvalid, i, n.ID)
		}
	}

	var pipes *pipeline.Decomposition
	if len(spec.Pipelines) > 0 {
		ps := make([]*pipeline.Pipeline, len(spec.Pipelines))
		for i, pspec := range spec.Pipelines {
			ps[i] = &pipeline.Pipeline{
				ID:      i,
				Nodes:   append([]int(nil), pspec.Nodes...),
				Drivers: append([]int(nil), pspec.Drivers...),
			}
		}
		var err error
		if pipes, err = pipeline.FromPipelines(pl, ps); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrInvalid, err)
		}
	} else {
		pipes = pipeline.Decompose(pl)
	}

	m := &Model{
		Plan:  pl,
		Pipes: pipes,
		Total: make([]int64, pl.NumNodes()),
		Known: make([]bool, len(pipes.Pipelines)),
	}
	for i := range m.Total {
		m.Total[i] = -1
	}
	for i, ns := range spec.Nodes {
		if ns.Total != nil {
			m.Total[i] = *ns.Total
		}
	}
	for pi, p := range pipes.Pipelines {
		known := len(p.Drivers) > 0
		for _, d := range p.Drivers {
			if m.Total[d] < 0 {
				known = false
			}
		}
		m.Known[pi] = known
	}
	return m, nil
}

// Runner is one session's ingestion state machine: it validates the
// incoming event stream, maintains the cumulative counters, synthesizes
// the exec.Observer events the estimator machinery consumes, and
// retains the snapshots so completion can hand a full exec.Trace to the
// harvest path. Callers must serialize Apply/Finish.
type Runner struct {
	model *Model
	obs   exec.Observer
	bo    exec.BatchObserver // non-nil when delivering batched
	batch int

	maxObs int

	clock    float64 // last event time
	lastSnap float64 // last snapshot time (starts may share it)
	k, r, w  []int64 // cumulative counters
	started  []bool
	startAt  []float64
	lastAct  []float64 // last time a pipeline's counters advanced

	snaps     []exec.Snapshot // retained history (copied rows)
	delivered int             // snaps delivered to the observer
	finished  bool
}

// NewRunner builds the session runner. Events are delivered to obs; a
// positive batch > 1 delivers snapshots through OnSnapshots when obs
// implements exec.BatchObserver (the live monitor's delivery mode).
// maxObs caps retained snapshots (0 = DefaultMaxObservations).
func NewRunner(m *Model, obs exec.Observer, batch, maxObs int) *Runner {
	n := m.Plan.NumNodes()
	r := &Runner{
		model:   m,
		obs:     obs,
		batch:   batch,
		maxObs:  maxObs,
		k:       make([]int64, n),
		r:       make([]int64, n),
		w:       make([]int64, n),
		started: make([]bool, len(m.Pipes.Pipelines)),
		startAt: make([]float64, len(m.Pipes.Pipelines)),
		lastAct: make([]float64, len(m.Pipes.Pipelines)),
	}
	if batch > 1 {
		r.bo, _ = obs.(exec.BatchObserver)
	}
	if r.maxObs <= 0 {
		r.maxObs = DefaultMaxObservations
	}
	for pi := range r.startAt {
		r.startAt[pi] = -1
		r.lastAct[pi] = -1
	}
	return r
}

// Observations returns the number of retained snapshots.
func (r *Runner) Observations() int { return len(r.snaps) }

// Finished reports whether Finish ran.
func (r *Runner) Finished() bool { return r.finished }

// Apply validates and ingests one observation batch's events. On error
// nothing of the failing event (or any later one) applies; the session
// stays at the last consistent prefix and the client may correct and
// resend from there.
func (r *Runner) Apply(b *Batch) error {
	if r.finished {
		return ErrCompleted
	}
	for i := range b.Events {
		ev := &b.Events[i]
		var err error
		switch {
		case ev.Start != nil:
			err = r.applyStart(ev.Start)
		case ev.Snapshot != nil:
			err = r.applySnapshot(ev.Snapshot)
		default:
			err = fmt.Errorf("%w: empty event", ErrInvalid)
		}
		if err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
	}
	return nil
}

func (r *Runner) applyStart(st *StartEvent) error {
	pi := st.Pipeline
	if pi < 0 || pi >= len(r.started) {
		return fmt.Errorf("%w: unknown pipeline %d", ErrInvalid, pi)
	}
	if r.started[pi] {
		return fmt.Errorf("%w: pipeline %d started twice", ErrInvalid, pi)
	}
	if st.Time < r.clock {
		return fmt.Errorf("%w: start of pipeline %d at %v, stream already at %v", ErrOutOfOrder, pi, st.Time, r.clock)
	}
	r.clock = st.Time
	r.startPipeline(pi, st.Time)
	return nil
}

func (r *Runner) applySnapshot(s *SnapshotEvent) error {
	if s.Time < r.clock || (len(r.snaps) > 0 && s.Time <= r.lastSnap) {
		return fmt.Errorf("%w: snapshot at %v, stream already at %v", ErrOutOfOrder, s.Time, r.clock)
	}
	if len(r.snaps) >= r.maxObs {
		return fmt.Errorf("%w: %d snapshots", ErrLimit, r.maxObs)
	}
	n := r.model.Plan.NumNodes()
	// Validate the whole delta set before mutating anything, so a
	// rejected snapshot leaves the counters at the last consistent state.
	for _, d := range s.Deltas {
		if d.Node < 0 || d.Node >= n {
			return fmt.Errorf("%w: unknown node %d", ErrInvalid, d.Node)
		}
		if d.K < 0 || d.R < 0 || d.W < 0 {
			return fmt.Errorf("%w: node %d delta (%d,%d,%d)", ErrRegression, d.Node, d.K, d.R, d.W)
		}
	}
	for _, d := range s.Deltas {
		r.k[d.Node] += d.K
		r.r[d.Node] += d.R
		r.w[d.Node] += d.W
		if d.K != 0 || d.R != 0 || d.W != 0 {
			pi := r.model.Pipes.PipelineOf(d.Node).ID
			if !r.started[pi] {
				// Implicit start at the snapshot's time: the external
				// engine did not track the exact first-activity instant.
				r.startPipeline(pi, s.Time)
			}
			r.lastAct[pi] = s.Time
		}
	}
	r.clock = s.Time
	r.lastSnap = s.Time

	row := make([]int64, 3*n)
	copy(row[:n], r.k)
	copy(row[n:2*n], r.r)
	copy(row[2*n:], r.w)
	snap := exec.Snapshot{Time: s.Time, K: row[:n:n], R: row[n : 2*n : 2*n], W: row[2*n : 3*n : 3*n]}
	r.snaps = append(r.snaps, snap)
	if r.bo != nil {
		if len(r.snaps)-r.delivered >= r.batch {
			r.flush()
		}
	} else {
		r.obs.OnSnapshot(snap)
		r.delivered = len(r.snaps)
	}
	return nil
}

// startPipeline fires the start event, flushing pending snapshots first
// (the live engine's contract: a start never lands mid-batch).
func (r *Runner) startPipeline(pi int, t float64) {
	r.started[pi] = true
	r.startAt[pi] = t
	r.lastAct[pi] = t
	r.flush()
	st := exec.PipelineStart{Pipe: pi, Time: t, DriverTotalsKnown: r.model.Known[pi]}
	if st.DriverTotalsKnown {
		drivers := r.model.Pipes.Pipelines[pi].Drivers
		st.DriverTotals = make(map[int]int64, len(drivers))
		for _, d := range drivers {
			st.DriverTotals[d] = r.model.Total[d]
		}
	}
	r.obs.OnPipelineStart(st)
}

func (r *Runner) flush() {
	if r.bo == nil {
		return
	}
	if n := len(r.snaps); n > r.delivered {
		r.bo.OnSnapshots(r.snaps[r.delivered:n])
		r.delivered = n
	}
}

// Finish completes the session: pipeline ends fire (explicit end times
// when supplied, the pipeline's last observed activity otherwise), the
// trace is synthesized from the retained history, and OnDone delivers
// it — the event the harvest path keys on. Returns the trace.
func (r *Runner) Finish(ends []PipeEnd) (*exec.Trace, error) {
	if r.finished {
		return nil, ErrCompleted
	}
	end := append([]float64(nil), r.lastAct...)
	for _, e := range ends {
		if e.Pipeline < 0 || e.Pipeline >= len(r.started) {
			return nil, fmt.Errorf("%w: unknown pipeline %d", ErrInvalid, e.Pipeline)
		}
		if !r.started[e.Pipeline] {
			return nil, fmt.Errorf("%w: end for pipeline %d, which never started", ErrInvalid, e.Pipeline)
		}
		if e.Time < r.startAt[e.Pipeline] || e.Time > r.clock {
			return nil, fmt.Errorf("%w: end of pipeline %d at %v outside [%v, %v]", ErrOutOfOrder, e.Pipeline, e.Time, r.startAt[e.Pipeline], r.clock)
		}
		end[e.Pipeline] = e.Time
	}
	r.finished = true
	r.flush()

	tr := &exec.Trace{
		Plan:              r.model.Plan,
		Pipes:             r.model.Pipes,
		Snapshots:         r.snaps,
		N:                 r.k,
		FinalR:            r.r,
		FinalW:            r.w,
		TotalTime:         r.clock,
		PipeSpans:         make([]exec.Span, len(r.started)),
		DriverTotalsKnown: make([]bool, len(r.started)),
		DriverTotal:       make([]int64, r.model.Plan.NumNodes()),
	}
	for pi := range r.started {
		if !r.started[pi] {
			tr.PipeSpans[pi] = exec.Span{Start: -1, End: -1}
			continue
		}
		tr.PipeSpans[pi] = exec.Span{Start: r.startAt[pi], End: end[pi]}
		// Knowability is an at-start property; pipelines that never
		// started report unknown, as the native executor's traces do.
		tr.DriverTotalsKnown[pi] = r.model.Known[pi]
		if r.model.Known[pi] {
			for _, d := range r.model.Pipes.Pipelines[pi].Drivers {
				tr.DriverTotal[d] = r.model.Total[d]
			}
		}
	}
	for pi := range r.started {
		if r.started[pi] {
			r.obs.OnPipelineEnd(pi, tr.PipeSpans[pi].End)
		}
	}
	r.obs.OnDone(tr)
	return tr, nil
}
