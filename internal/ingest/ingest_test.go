package ingest

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"progressest/internal/exec"
)

// testSpec is a minimal two-node session plan: a TableScan with a known
// total feeding a Filter, one pipeline.
func testSpec() *Spec {
	total := int64(100)
	return &Spec{
		Workload: "ext",
		Family:   "fam",
		Nodes: []NodeSpec{
			{Op: "TableScan", Table: "t", EstRows: 100, RowWidth: 8, Total: &total},
			{Op: "Filter", Children: []int{0}, EstRows: 50, RowWidth: 8},
		},
	}
}

func mustBuild(t *testing.T, spec *Spec) *Model {
	t.Helper()
	m, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// eventCounter counts the observer events a Runner synthesizes.
type eventCounter struct {
	exec.BaseObserver
	starts, snaps, ends, done int
}

func (c *eventCounter) OnPipelineStart(exec.PipelineStart) { c.starts++ }
func (c *eventCounter) OnSnapshot(exec.Snapshot)           { c.snaps++ }
func (c *eventCounter) OnPipelineEnd(int, float64)         { c.ends++ }
func (c *eventCounter) OnDone(*exec.Trace)                 { c.done++ }

func snapEv(time float64, deltas ...Delta) Event {
	return Event{Snapshot: &SnapshotEvent{Time: time, Deltas: deltas}}
}

func TestBuildValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"no nodes", func(s *Spec) { s.Nodes = nil }},
		{"unknown op", func(s *Spec) { s.Nodes[0].Op = "FlumeShuffle" }},
		{"negative est_rows", func(s *Spec) { s.Nodes[0].EstRows = -1 }},
		{"negative total", func(s *Spec) { n := int64(-5); s.Nodes[0].Total = &n }},
		{"child after parent", func(s *Spec) { s.Nodes[0].Children = []int{1} }},
		{"unreachable node", func(s *Spec) { s.Nodes[1].Children = nil }},
		{"child used twice", func(s *Spec) { s.Nodes[1].Children = []int{0, 0} }},
		{"pipeline out of range", func(s *Spec) {
			s.Pipelines = []PipelineSpec{{Nodes: []int{0, 1, 7}, Drivers: []int{0}}}
		}},
		{"driver not a member", func(s *Spec) {
			s.Pipelines = []PipelineSpec{{Nodes: []int{0, 1}, Drivers: []int{2}}}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := testSpec()
			tc.mutate(spec)
			if _, err := Build(spec); !errors.Is(err, ErrInvalid) {
				t.Fatalf("want ErrInvalid, got %v", err)
			}
		})
	}
}

func TestBuildRejectsNonDFSOrder(t *testing.T) {
	// HashJoin visiting child 1 before child 0 renumbers the nodes, so
	// observation deltas would address the wrong counters — reject.
	spec := &Spec{
		Family: "fam",
		Nodes: []NodeSpec{
			{Op: "TableScan", Table: "a", EstRows: 10},
			{Op: "TableScan", Table: "b", EstRows: 10},
			{Op: "HashJoin", Children: []int{1, 0}, EstRows: 10},
		},
	}
	if _, err := Build(spec); !errors.Is(err, ErrInvalid) {
		t.Fatalf("want ErrInvalid for non-DFS order, got %v", err)
	}
}

func TestBuildKnowability(t *testing.T) {
	m := mustBuild(t, testSpec())
	if len(m.Known) == 0 || !m.Known[0] {
		t.Fatalf("pipeline 0 should have known driver totals: %v", m.Known)
	}
	spec := testSpec()
	spec.Nodes[0].Total = nil
	m = mustBuild(t, spec)
	if m.Known[0] {
		t.Fatal("pipeline 0 without driver totals must be unknown")
	}
}

func TestRunnerRejectsOutOfOrder(t *testing.T) {
	r := NewRunner(mustBuild(t, testSpec()), &eventCounter{}, 0, 0)
	if err := r.Apply(&Batch{Events: []Event{snapEv(2, Delta{Node: 0, K: 5})}}); err != nil {
		t.Fatal(err)
	}
	// Time moving backwards and a duplicate timestamp both reject.
	for _, tm := range []float64{1, 2} {
		err := r.Apply(&Batch{Events: []Event{snapEv(tm, Delta{Node: 0, K: 1})}})
		if !errors.Is(err, ErrOutOfOrder) {
			t.Fatalf("snapshot at %v: want ErrOutOfOrder, got %v", tm, err)
		}
	}
	// The rejected events left no trace; the stream continues cleanly.
	if r.Observations() != 1 {
		t.Fatalf("rejected snapshots were retained: %d", r.Observations())
	}
	if err := r.Apply(&Batch{Events: []Event{snapEv(3, Delta{Node: 0, K: 1})}}); err != nil {
		t.Fatal(err)
	}
}

func TestRunnerRejectsRegression(t *testing.T) {
	obs := &eventCounter{}
	r := NewRunner(mustBuild(t, testSpec()), obs, 0, 0)
	if err := r.Apply(&Batch{Events: []Event{snapEv(1, Delta{Node: 0, K: 5, R: 40})}}); err != nil {
		t.Fatal(err)
	}
	err := r.Apply(&Batch{Events: []Event{snapEv(2, Delta{Node: 0, K: -1})}})
	if !errors.Is(err, ErrRegression) {
		t.Fatalf("want ErrRegression, got %v", err)
	}
	// A batch that fails mid-way applies nothing of the failing event:
	// the first (valid) delta set must not have leaked into the counters.
	err = r.Apply(&Batch{Events: []Event{snapEv(3, Delta{Node: 0, K: 2}, Delta{Node: 1, R: -8})}})
	if !errors.Is(err, ErrRegression) {
		t.Fatalf("want ErrRegression, got %v", err)
	}
	if r.Observations() != 1 || obs.snaps != 1 {
		t.Fatalf("rejected snapshot partially applied: %d retained, %d delivered", r.Observations(), obs.snaps)
	}
	tr, err := r.Finish(nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.N[0] != 5 || tr.FinalR[0] != 40 {
		t.Fatalf("final counters polluted by rejected deltas: K=%d R=%d", tr.N[0], tr.FinalR[0])
	}
}

func TestRunnerRejectsUnknownNodeAndPipeline(t *testing.T) {
	r := NewRunner(mustBuild(t, testSpec()), &eventCounter{}, 0, 0)
	if err := r.Apply(&Batch{Events: []Event{snapEv(1, Delta{Node: 9, K: 1})}}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("unknown node: want ErrInvalid, got %v", err)
	}
	if err := r.Apply(&Batch{Events: []Event{{Start: &StartEvent{Pipeline: 4, Time: 1}}}}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("unknown pipeline: want ErrInvalid, got %v", err)
	}
	if err := r.Apply(&Batch{Events: []Event{{Start: &StartEvent{Pipeline: 0, Time: 1}}}}); err != nil {
		t.Fatal(err)
	}
	if err := r.Apply(&Batch{Events: []Event{{Start: &StartEvent{Pipeline: 0, Time: 2}}}}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("double start: want ErrInvalid, got %v", err)
	}
}

func TestRunnerObservationLimit(t *testing.T) {
	r := NewRunner(mustBuild(t, testSpec()), &eventCounter{}, 0, 2)
	for i := 0; i < 2; i++ {
		if err := r.Apply(&Batch{Events: []Event{snapEv(float64(i+1), Delta{Node: 0, K: 1})}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Apply(&Batch{Events: []Event{snapEv(3, Delta{Node: 0, K: 1})}}); !errors.Is(err, ErrLimit) {
		t.Fatalf("want ErrLimit, got %v", err)
	}
}

func TestRunnerCompletion(t *testing.T) {
	obs := &eventCounter{}
	r := NewRunner(mustBuild(t, testSpec()), obs, 0, 0)
	if err := r.Apply(&Batch{Events: []Event{snapEv(1, Delta{Node: 0, K: 5})}}); err != nil {
		t.Fatal(err)
	}
	// An end before the pipeline's start, or in the future, rejects —
	// and a rejected Finish leaves the session completable.
	if _, err := r.Finish([]PipeEnd{{Pipeline: 0, Time: 99}}); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("future end: want ErrOutOfOrder, got %v", err)
	}
	if _, err := r.Finish([]PipeEnd{{Pipeline: 1, Time: 1}}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("unknown pipeline end: want ErrInvalid, got %v", err)
	}
	tr, err := r.Finish([]PipeEnd{{Pipeline: 0, Time: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if obs.starts != 1 || obs.ends != 1 || obs.done != 1 {
		t.Fatalf("event counts after completion: %+v", obs)
	}
	if tr.PipeSpans[0].End != 1 || !tr.DriverTotalsKnown[0] || tr.DriverTotal[0] != 100 {
		t.Fatalf("synthesized trace: spans %v known %v totals %v", tr.PipeSpans, tr.DriverTotalsKnown, tr.DriverTotal)
	}
	if err := r.Apply(&Batch{Events: []Event{snapEv(2)}}); !errors.Is(err, ErrCompleted) {
		t.Fatalf("post-completion batch: want ErrCompleted, got %v", err)
	}
	if _, err := r.Finish(nil); !errors.Is(err, ErrCompleted) {
		t.Fatalf("double Finish: want ErrCompleted, got %v", err)
	}
}

func TestDecodeBatchStrict(t *testing.T) {
	if _, err := DecodeBatch([]byte(`{"events":[],"bogus":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := DecodeBatch([]byte(`{"done":true} trailing`)); !errors.Is(err, ErrInvalid) {
		t.Fatalf("trailing garbage: want ErrInvalid, got %v", err)
	}
	both := `{"events":[{"start":{"pipeline":0,"time":1},"snapshot":{"time":1}}]}`
	if _, err := DecodeBatch([]byte(both)); !errors.Is(err, ErrInvalid) {
		t.Fatalf("start+snapshot event: want ErrInvalid, got %v", err)
	}
	if _, err := DecodeBatch([]byte(`{"events":[{}]}`)); !errors.Is(err, ErrInvalid) {
		t.Fatalf("empty event: want ErrInvalid, got %v", err)
	}
	huge := []byte(`{"done":` + strings.Repeat(" ", MaxBatchBytes) + `true}`)
	if _, err := DecodeBatch(huge); !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("oversized batch: want ErrBatchTooLarge, got %v", err)
	}
	b, err := DecodeBatch([]byte(`{"events":[{"snapshot":{"time":1,"deltas":[{"node":0,"k":3}]}}],"done":true,"ends":[{"pipeline":0,"time":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Events) != 1 || !b.Done || len(b.Ends) != 1 {
		t.Fatalf("decoded batch: %+v", b)
	}
}

// TestSpecJSONRoundTrip proves the wire encoding loses nothing Build
// consumes: a spec round-tripped through JSON builds an identical model.
func TestSpecJSONRoundTrip(t *testing.T) {
	spec := testSpec()
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec2, err := DecodeSpec(strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	m1, m2 := mustBuild(t, spec), mustBuild(t, spec2)
	if m1.Plan.String() != m2.Plan.String() {
		t.Fatalf("plans diverge after round-trip:\n%s\nvs\n%s", m1.Plan, m2.Plan)
	}
	for i := range m1.Total {
		if m1.Total[i] != m2.Total[i] {
			t.Fatalf("node %d total diverges: %d vs %d", i, m1.Total[i], m2.Total[i])
		}
	}
}
