package selection_test

import (
	"testing"

	"progressest/internal/catalog"
	"progressest/internal/datagen"
	"progressest/internal/exec"
	"progressest/internal/mart"
	"progressest/internal/progress"
	"progressest/internal/selection"
	"progressest/internal/workload"
)

// onlineFixture trains static+dynamic selectors on the shared pool and
// returns pipeline views from a freshly executed workload.
func onlineFixture(t *testing.T) (*selection.OnlineMonitor, []*progress.PipelineView) {
	t.Helper()
	ex := pool(t)
	static, err := selection.Train(ex, selection.Config{
		Kinds: progress.ExtendedKinds(), Dynamic: false, Mart: fastOpts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	dynamic, err := selection.Train(ex, selection.Config{
		Kinds: progress.ExtendedKinds(), Dynamic: true, Mart: fastOpts(),
	})
	if err != nil {
		t.Fatal(err)
	}

	w, err := workload.Build(workload.Spec{
		Name: "online-test", Kind: datagen.TPCHLike, Queries: 10,
		Scale: 0.08, Zipf: 1, Design: catalog.PartiallyTuned, Seed: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	var views []*progress.PipelineView
	for _, q := range w.Queries {
		pl, err := w.Planner.Plan(q)
		if err != nil {
			t.Fatal(err)
		}
		tr := exec.Run(w.DB, pl, exec.Options{})
		for p := range tr.Pipes.Pipelines {
			v := progress.NewPipelineView(tr, p)
			if v.NumObs() >= 8 {
				views = append(views, v)
			}
		}
	}
	if len(views) == 0 {
		t.Fatal("no pipelines to monitor")
	}
	return &selection.OnlineMonitor{Static: static, Dynamic: dynamic}, views
}

func TestOnlineMonitorCompositeSeries(t *testing.T) {
	m, views := onlineFixture(t)
	for _, v := range views {
		out := m.Monitor(v)
		if len(out.Series) != v.NumObs() {
			t.Fatalf("composite series length %d, want %d", len(out.Series), v.NumObs())
		}
		for i, val := range out.Series {
			if val < 0 || val > 1 {
				t.Fatalf("composite progress %v at obs %d", val, i)
			}
		}
		// Before the revision point the composite equals the initial
		// estimator's series; after, the revised one's.
		initial := v.Series(out.Initial)
		revised := v.Series(out.Revised)
		for i := range out.Series {
			want := initial[i]
			if out.RevisedAt >= 0 && i >= out.RevisedAt {
				want = revised[i]
			}
			if out.Series[i] != want {
				t.Fatalf("composite diverges from expected splice at obs %d", i)
			}
		}
		if out.Err.L1 < 0 || out.Err.L2 < out.Err.L1-1e-9 {
			t.Fatalf("bad composite error stats %+v", out.Err)
		}
	}
}

func TestOnlineMonitorWithoutDynamicNeverRevises(t *testing.T) {
	m, views := onlineFixture(t)
	m.Dynamic = nil
	for _, v := range views {
		out := m.Monitor(v)
		if out.Revised != out.Initial || out.RevisedAt != -1 {
			t.Fatal("monitor without a dynamic model must not revise")
		}
		// Composite must then be exactly the initial estimator's error.
		if want := v.Errors(out.Initial).L1; out.Err.L1 != want {
			t.Fatalf("composite L1 %v != initial estimator's %v", out.Err.L1, want)
		}
	}
}

func TestOnlineMonitorCustomMarker(t *testing.T) {
	m, views := onlineFixture(t)
	m.ReviseAtDriverFraction = 0.05
	early := 0
	for _, v := range views {
		out := m.Monitor(v)
		if out.RevisedAt >= 0 {
			early++
			// The 5% marker must be no later than the 20% marker.
			if m20 := v.MarkerObservation(0.20); m20 >= 0 && out.RevisedAt > m20 {
				t.Fatalf("5%% revision at obs %d after 20%% marker %d", out.RevisedAt, m20)
			}
		}
	}
	if early == 0 {
		t.Error("no pipeline reached the 5% marker")
	}
}

func BenchmarkOnlineMonitor(b *testing.B) {
	ex := examplePool
	if ex == nil {
		b.Skip("pool not built (run tests first)")
	}
	static, err := selection.Train(ex, selection.Config{Dynamic: false, Mart: mart.Options{Trees: 40, Seed: 1}})
	if err != nil {
		b.Fatal(err)
	}
	dynamic, err := selection.Train(ex, selection.Config{Dynamic: true, Mart: mart.Options{Trees: 40, Seed: 1}})
	if err != nil {
		b.Fatal(err)
	}
	m := &selection.OnlineMonitor{Static: static, Dynamic: dynamic}

	w, err := workload.Build(workload.Spec{
		Name: "bench", Kind: datagen.TPCHLike, Queries: 1,
		Scale: 0.08, Zipf: 1, Design: catalog.PartiallyTuned, Seed: 501,
	})
	if err != nil {
		b.Fatal(err)
	}
	pl, err := w.Planner.Plan(w.Queries[0])
	if err != nil {
		b.Fatal(err)
	}
	tr := exec.Run(w.DB, pl, exec.Options{})
	v := progress.NewPipelineView(tr, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Monitor(v)
	}
}
