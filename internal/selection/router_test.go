package selection

import (
	"reflect"
	"sync"
	"testing"
)

func TestRouterFallback(t *testing.T) {
	r := NewRouter[int]()
	if _, _, ok := r.Route("lineitem"); ok {
		t.Fatal("empty router routed something")
	}
	r.Set("", 1)
	v, servedBy, ok := r.Route("lineitem")
	if !ok || v != 1 || servedBy != "" {
		t.Fatalf("fallback route: v=%d servedBy=%q ok=%v", v, servedBy, ok)
	}
	r.Set("lineitem", 2)
	if v, servedBy, _ := r.Route("lineitem"); v != 2 || servedBy != "lineitem" {
		t.Fatalf("family route: v=%d servedBy=%q", v, servedBy)
	}
	// Other families still fall back.
	if v, servedBy, _ := r.Route("orders"); v != 1 || servedBy != "" {
		t.Fatalf("unrelated family route: v=%d servedBy=%q", v, servedBy)
	}
	// Exact lookup does not fall back.
	if _, ok := r.Get("orders"); ok {
		t.Fatal("Get fell back to global")
	}
	r.Set("customer", 3)
	r.Delete("lineitem")
	if v, servedBy, _ := r.Route("lineitem"); v != 1 || servedBy != "" {
		t.Fatalf("route after delete: v=%d servedBy=%q", v, servedBy)
	}
	snap := r.Snapshot()
	if !reflect.DeepEqual(snap, map[string]int{"": 1, "customer": 3}) {
		t.Fatalf("snapshot %v", snap)
	}
	// Deleting a missing family is a no-op.
	r.Delete("nope")
}

// TestRouterConcurrentReads hammers Route from many goroutines while
// entries churn; under -race this proves the copy-on-write swap is
// data-race-free and readers never observe a torn table.
func TestRouterConcurrentReads(t *testing.T) {
	r := NewRouter[int]()
	r.Set("", -1)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, ok := r.Route("f1"); !ok {
					t.Error("route lost the global fallback mid-swap")
					return
				}
			}
		}()
	}
	for i := 0; i < 500; i++ {
		r.Set("f1", i)
		if i%3 == 0 {
			r.Delete("f1")
		}
		if i%7 == 0 {
			r.Set("f2", i)
		}
	}
	close(stop)
	wg.Wait()
}
