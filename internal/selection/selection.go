// Package selection implements the paper's core contribution: a
// statistical estimator-selection framework (Section 4). For each
// candidate progress estimator a MART regression model predicts the
// estimation error that estimator would incur on a pipeline, from static
// (and optionally dynamic) features; the framework then selects the
// estimator with the smallest predicted error. Selection is per pipeline;
// whole-query progress is the estimate-weighted sum of pipeline estimates
// (eq. 5).
package selection

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"progressest/internal/atomicio"
	"progressest/internal/features"
	"progressest/internal/mart"
	"progressest/internal/progress"
)

// Example is one labelled training/test instance: the feature vector of a
// pipeline execution plus the measured error of every candidate estimator
// on it.
type Example struct {
	// Features is the full vector (static prefix + dynamic suffix).
	Features []float64
	// ErrL1[k] / ErrL2[k] are the L1/L2 progress errors of estimator k,
	// including the oracle models at the tail indices.
	ErrL1 [progress.TotalKinds]float64
	ErrL2 [progress.TotalKinds]float64

	// Workload tags the source workload (used for leave-one-out splits).
	Workload string
	// Signature identifies the pipeline's operator shape; the selectivity
	// sensitivity experiment groups recurring pipelines by it.
	Signature string
	// Family tags the query's workload family (the routing key of
	// per-family model selection); "" on examples harvested before family
	// tagging existed.
	Family string
	// Meta carries free-form provenance (query/pipeline ids, GetNext
	// totals) for the sensitivity experiments.
	Meta map[string]float64
}

// BestKind returns the estimator with the smallest L1 error among kinds.
func (e *Example) BestKind(kinds []progress.Kind) progress.Kind {
	best := kinds[0]
	for _, k := range kinds[1:] {
		if e.ErrL1[k] < e.ErrL1[best] {
			best = k
		}
	}
	return best
}

// Config controls training of a Selector.
type Config struct {
	// Kinds is the candidate estimator set (e.g. progress.CoreKinds()).
	Kinds []progress.Kind
	// Dynamic selects whether models see the dynamic feature suffix.
	Dynamic bool
	// Mart are the boosting hyperparameters (paper defaults: M=200 trees,
	// 30 leaves).
	Mart mart.Options
	// MaxTrainExamples caps the training-set size by deterministic
	// systematic sampling (0 = unlimited). Training time scales linearly
	// in the example count (Table 7), so large experiment suites cap it.
	MaxTrainExamples int
}

// Selector is a trained estimator-selection module.
type Selector struct {
	Kinds   []progress.Kind
	Dynamic bool
	Models  map[progress.Kind]*mart.Model
}

// featureSlice truncates the vector to the static prefix for static-only
// selectors.
func featureSlice(full []float64, dynamic bool) []float64 {
	if dynamic || len(full) <= features.NumStatic {
		return full
	}
	return full[:features.NumStatic]
}

// Train fits one error-regression model per candidate estimator.
func Train(examples []Example, cfg Config) (*Selector, error) {
	if len(examples) == 0 {
		return nil, errors.New("selection: no training examples")
	}
	if len(cfg.Kinds) == 0 {
		cfg.Kinds = progress.CoreKinds()
	}
	if cfg.MaxTrainExamples > 0 && len(examples) > cfg.MaxTrainExamples {
		stride := (len(examples) + cfg.MaxTrainExamples - 1) / cfg.MaxTrainExamples
		sampled := make([]Example, 0, cfg.MaxTrainExamples)
		for i := 0; i < len(examples); i += stride {
			sampled = append(sampled, examples[i])
		}
		examples = sampled
	}
	X := make([][]float64, len(examples))
	for i := range examples {
		X[i] = featureSlice(examples[i].Features, cfg.Dynamic)
	}
	s := &Selector{
		Kinds:   append([]progress.Kind(nil), cfg.Kinds...),
		Dynamic: cfg.Dynamic,
		Models:  make(map[progress.Kind]*mart.Model, len(cfg.Kinds)),
	}
	y := make([]float64, len(examples))
	for _, k := range cfg.Kinds {
		for i := range examples {
			y[i] = examples[i].ErrL1[k]
		}
		m, err := mart.Train(X, y, cfg.Mart)
		if err != nil {
			return nil, fmt.Errorf("selection: training model for %v: %w", k, err)
		}
		s.Models[k] = m
	}
	return s, nil
}

// PredictErrors returns the predicted L1 error per candidate estimator.
func (s *Selector) PredictErrors(full []float64) map[progress.Kind]float64 {
	x := featureSlice(full, s.Dynamic)
	out := make(map[progress.Kind]float64, len(s.Kinds))
	for _, k := range s.Kinds {
		out[k] = s.Models[k].Predict(x)
	}
	return out
}

// PickOnline selects the estimator for a live pipeline from its current
// online feature vector: the static prefix (cached at pipeline start) plus
// the dynamic suffix over the observations seen so far. As execution
// feedback accrues and markers are crossed, repeated calls let the dynamic
// model revise the choice mid-flight (Section 4.4); before any dynamic
// evidence exists the vector carries the neutral marker defaults, so the
// pick degrades gracefully to a static-feature decision.
func (s *Selector) PickOnline(v *progress.OnlinePipeline) progress.Kind {
	return s.Select(features.OnlineFull(v))
}

// Select returns the estimator with the smallest predicted error.
func (s *Selector) Select(full []float64) progress.Kind {
	x := featureSlice(full, s.Dynamic)
	best := s.Kinds[0]
	bestErr := s.Models[best].Predict(x)
	for _, k := range s.Kinds[1:] {
		if e := s.Models[k].Predict(x); e < bestErr {
			best, bestErr = k, e
		}
	}
	return best
}

// SaveFormat is the current on-disk format version of Save. Format 0
// denotes legacy files written before versioning; they load fine.
const SaveFormat = 1

// persisted is the JSON form of a Selector.
type persisted struct {
	Format  int                    `json:"format"`
	Kinds   []int                  `json:"kinds"`
	Dynamic bool                   `json:"dynamic"`
	Models  map[string]*mart.Model `json:"models"`
}

// Save writes the selector to path as JSON. The write is atomic under
// crashes (see atomicio.WriteFile), so a reader (or a restart) only ever
// sees the old complete file or the new complete file, never a torn one.
func (s *Selector) Save(path string) error {
	p := persisted{Format: SaveFormat, Dynamic: s.Dynamic, Models: map[string]*mart.Model{}}
	for _, k := range s.Kinds {
		p.Kinds = append(p.Kinds, int(k))
		p.Models[k.String()] = s.Models[k]
	}
	data, err := json.Marshal(p)
	if err != nil {
		return fmt.Errorf("selection: marshal: %w", err)
	}
	if err := atomicio.WriteFile(path, data); err != nil {
		return fmt.Errorf("selection: save: %w", err)
	}
	return nil
}

// Load reads a selector saved by Save.
func Load(path string) (*Selector, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("selection: load: %w", err)
	}
	var p persisted
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("selection: unmarshal: %w", err)
	}
	if p.Format > SaveFormat {
		return nil, fmt.Errorf("selection: %s uses selector format %d, but this build only understands formats <= %d — upgrade progressest or retrain the model with this version",
			path, p.Format, SaveFormat)
	}
	s := &Selector{Dynamic: p.Dynamic, Models: map[progress.Kind]*mart.Model{}}
	for _, ki := range p.Kinds {
		if ki < 0 || ki >= progress.TotalKinds {
			return nil, fmt.Errorf("selection: invalid estimator kind %d in %s", ki, path)
		}
		k := progress.Kind(ki)
		s.Kinds = append(s.Kinds, k)
		m, ok := p.Models[k.String()]
		if !ok || m == nil {
			return nil, fmt.Errorf("selection: model for %v missing", k)
		}
		s.Models[k] = m
	}
	return s, nil
}
