package selection_test

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"progressest/internal/catalog"
	"progressest/internal/datagen"
	"progressest/internal/features"
	"progressest/internal/mart"
	"progressest/internal/progress"
	"progressest/internal/selection"
	"progressest/internal/workload"
)

// Shared example pool (built once; workload execution is the slow part).
var (
	examplesOnce sync.Once
	examplePool  []selection.Example
)

func pool(t *testing.T) []selection.Example {
	t.Helper()
	examplesOnce.Do(func() {
		for _, kind := range []datagen.DatasetKind{datagen.TPCHLike, datagen.TPCDSLike} {
			for _, lvl := range []catalog.DesignLevel{catalog.Untuned, catalog.FullyTuned} {
				res, err := workload.BuildAndRun(workload.Spec{
					Name: kind.String(), Kind: kind, Queries: 30,
					Scale: 0.1, Zipf: 1, Design: lvl, Seed: 100 + int64(lvl),
				}, workload.RunOptions{Seed: int64(lvl)})
				if err != nil {
					panic(err)
				}
				examplePool = append(examplePool, res.Examples...)
			}
		}
	})
	if len(examplePool) < 40 {
		t.Fatalf("example pool too small: %d", len(examplePool))
	}
	return examplePool
}

func fastOpts() mart.Options { return mart.Options{Trees: 60, Seed: 1} }

func TestTrainAndSelectBasics(t *testing.T) {
	ex := pool(t)
	s, err := selection.Train(ex, selection.Config{Kinds: progress.CoreKinds(), Mart: fastOpts()})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ex[:20] {
		k := s.Select(ex[i].Features)
		found := false
		for _, c := range s.Kinds {
			if c == k {
				found = true
			}
		}
		if !found {
			t.Fatalf("selected %v not in candidate set", k)
		}
		preds := s.PredictErrors(ex[i].Features)
		if len(preds) != len(s.Kinds) {
			t.Fatalf("PredictErrors returned %d entries", len(preds))
		}
		// The selected kind must have the minimum predicted error.
		for _, c := range s.Kinds {
			if preds[c] < preds[k] {
				t.Fatalf("Select returned %v but %v has lower predicted error", k, c)
			}
		}
	}
}

func TestSelectionBeatsWorstEstimatorInSample(t *testing.T) {
	ex := pool(t)
	s, err := selection.Train(ex, selection.Config{Kinds: progress.CoreKinds(), Dynamic: true, Mart: fastOpts()})
	if err != nil {
		t.Fatal(err)
	}
	ev := selection.Evaluate(s, ex)
	worst := 0.0
	for _, k := range progress.CoreKinds() {
		if f := selection.EvaluateFixed(k, progress.CoreKinds(), ex); f.AvgL1 > worst {
			worst = f.AvgL1
		}
	}
	if ev.AvgL1 >= worst {
		t.Errorf("in-sample selection (%.4f) should beat the worst fixed estimator (%.4f)",
			ev.AvgL1, worst)
	}
	if ev.OracleL1 > ev.AvgL1+1e-12 {
		t.Errorf("oracle (%.4f) cannot exceed selection (%.4f)", ev.OracleL1, ev.AvgL1)
	}
}

func TestStaticSelectorIgnoresDynamicSuffix(t *testing.T) {
	ex := pool(t)
	s, err := selection.Train(ex, selection.Config{Kinds: progress.CoreKinds(), Dynamic: false, Mart: fastOpts()})
	if err != nil {
		t.Fatal(err)
	}
	// Perturbing dynamic features must not change a static selector's
	// choice.
	e := ex[0]
	perturbed := append([]float64(nil), e.Features...)
	for i := features.NumStatic; i < len(perturbed); i++ {
		perturbed[i] += 123.456
	}
	if s.Select(e.Features) != s.Select(perturbed) {
		t.Error("static selector should ignore dynamic features")
	}
}

func TestDynamicSelectorUsesDynamicSuffix(t *testing.T) {
	ex := pool(t)
	s, err := selection.Train(ex, selection.Config{Kinds: progress.ExtendedKinds(), Dynamic: true, Mart: fastOpts()})
	if err != nil {
		t.Fatal(err)
	}
	// At least one dynamic feature should matter across a trained model's
	// importance vector.
	var dynImportance float64
	for _, m := range s.Models {
		imp := m.FeatureImportance()
		for i := features.NumStatic; i < len(imp); i++ {
			dynImportance += imp[i]
		}
	}
	if dynImportance == 0 {
		t.Error("dynamic selector never split on a dynamic feature")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	ex := pool(t)
	s, err := selection.Train(ex, selection.Config{Kinds: progress.ExtendedKinds(), Dynamic: true, Mart: fastOpts()})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "selector.json")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := selection.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Dynamic != s.Dynamic || len(loaded.Kinds) != len(s.Kinds) {
		t.Fatal("selector metadata lost in round trip")
	}
	for i := range ex[:30] {
		if s.Select(ex[i].Features) != loaded.Select(ex[i].Features) {
			t.Fatal("loaded selector selects differently")
		}
	}
}

// TestSaveIsAtomicAndVersioned: Save leaves no temp droppings, embeds the
// format version, refuses files from a future format with a friendly
// message, and still accepts legacy (unversioned) files.
func TestSaveIsAtomicAndVersioned(t *testing.T) {
	ex := pool(t)
	s, err := selection.Train(ex, selection.Config{Kinds: progress.CoreKinds(), Mart: fastOpts()})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "selector.json")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	// Overwrite in place (the hot-swap pattern): must succeed and leave
	// exactly one file behind.
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("save left temp files behind: %d entries", len(entries))
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var head struct {
		Format int `json:"format"`
	}
	if err := json.Unmarshal(data, &head); err != nil {
		t.Fatal(err)
	}
	if head.Format != selection.SaveFormat {
		t.Fatalf("saved format %d, want %d", head.Format, selection.SaveFormat)
	}

	// A future format must be rejected with a friendly error.
	future := bytes.Replace(data,
		[]byte(`"format":1`), []byte(`"format":99`), 1)
	futurePath := filepath.Join(dir, "future.json")
	if err := os.WriteFile(futurePath, future, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := selection.Load(futurePath); err == nil || !strings.Contains(err.Error(), "format 99") {
		t.Fatalf("future format: err = %v, want friendly mismatch error", err)
	}

	// A legacy file without the field (format 0) still loads.
	legacy := bytes.Replace(data, []byte(`"format":1,`), nil, 1)
	legacyPath := filepath.Join(dir, "legacy.json")
	if err := os.WriteFile(legacyPath, legacy, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := selection.Load(legacyPath); err != nil {
		t.Fatalf("legacy file rejected: %v", err)
	}
}

func TestEvaluateFixedIdentities(t *testing.T) {
	ex := pool(t)
	kinds := progress.CoreKinds()
	// Sum of strict-optimal shares is 1.
	shares := selection.OptimalShare(kinds, ex)
	var sum float64
	for _, v := range shares {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("optimal shares sum to %v", sum)
	}
	// Almost-optimal shares are each >= strict shares.
	almost := selection.AlmostOptimalShare(kinds, ex)
	for _, k := range kinds {
		if almost[k] < shares[k]-1e-9 {
			t.Errorf("%v: almost-optimal %v < strict %v", k, almost[k], shares[k])
		}
	}
	// Significantly-best shares sum to <= 1.
	sig := selection.SignificantlyBestShare(kinds, ex)
	sum = 0
	for _, v := range sig {
		sum += v
	}
	if sum > 1.001 {
		t.Errorf("significantly-best shares sum to %v > 1", sum)
	}
}

func TestEvaluationTailMonotone(t *testing.T) {
	ex := pool(t)
	for _, k := range progress.CoreKinds() {
		ev := selection.EvaluateFixed(k, progress.CoreKinds(), ex)
		if ev.RatioOver2x < ev.RatioOver5x || ev.RatioOver5x < ev.RatioOver10x {
			t.Errorf("%v: tail fractions not monotone: %v %v %v",
				k, ev.RatioOver2x, ev.RatioOver5x, ev.RatioOver10x)
		}
	}
}

func TestTrainRejectsEmptyInput(t *testing.T) {
	if _, err := selection.Train(nil, selection.Config{}); err == nil {
		t.Error("empty training set should error")
	}
}

func TestBestKind(t *testing.T) {
	var e selection.Example
	e.ErrL1[progress.DNE] = 0.5
	e.ErrL1[progress.TGN] = 0.1
	e.ErrL1[progress.LUO] = 0.3
	if got := e.BestKind(progress.CoreKinds()); got != progress.TGN {
		t.Errorf("BestKind = %v, want TGN", got)
	}
}

func TestSyntheticSeparableSelection(t *testing.T) {
	// A fully learnable synthetic task: feature 0 decides which estimator
	// is good. The selector must recover this rule out of sample.
	rng := rand.New(rand.NewSource(42))
	mk := func(n int) []selection.Example {
		out := make([]selection.Example, n)
		for i := range out {
			f := make([]float64, features.NumStatic)
			for j := range f {
				f[j] = rng.Float64()
			}
			var e selection.Example
			e.Features = f
			if f[0] > 0.5 {
				e.ErrL1[progress.DNE] = 0.05
				e.ErrL1[progress.TGN] = 0.40
			} else {
				e.ErrL1[progress.DNE] = 0.40
				e.ErrL1[progress.TGN] = 0.05
			}
			e.ErrL1[progress.LUO] = 0.25
			out[i] = e
		}
		return out
	}
	s, err := selection.Train(mk(500), selection.Config{Kinds: progress.CoreKinds(), Mart: fastOpts()})
	if err != nil {
		t.Fatal(err)
	}
	test := mk(200)
	ev := selection.Evaluate(s, test)
	if ev.PickedOptimal < 0.95 {
		t.Errorf("separable task: picked optimal only %.2f", ev.PickedOptimal)
	}
	if ev.AvgL1 > 0.08 {
		t.Errorf("separable task: avg L1 %.4f", ev.AvgL1)
	}
}
