package selection

import (
	"sync"
	"sync/atomic"
)

// Router is the serving-side routing table of the per-family model layer:
// it keys values (selector versions, in the registry's case) by workload
// family, with the empty family "" acting as the global fallback. Reads
// are lock-free — one atomic load plus a map lookup — so routing sits on
// the query-admission hot path without contending with publishes; writes
// copy the table (they are rare: a publish or rollback per retrain).
type Router[T any] struct {
	mu    sync.Mutex // serialises writers
	table atomic.Pointer[map[string]T]
}

// NewRouter returns an empty router: every Route falls through to the
// global entry, and fails until one is set.
func NewRouter[T any]() *Router[T] {
	r := &Router[T]{}
	empty := map[string]T{}
	r.table.Store(&empty)
	return r
}

// Set publishes v as the serving value for family ("" sets the global
// fallback), replacing any previous entry.
func (r *Router[T]) Set(family string, v T) {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := *r.table.Load()
	next := make(map[string]T, len(old)+1)
	for k, val := range old {
		next[k] = val
	}
	next[family] = v
	r.table.Store(&next)
}

// Delete removes family's own entry, so the family falls back to the
// global value again. Deleting "" removes the global fallback.
func (r *Router[T]) Delete(family string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := *r.table.Load()
	if _, ok := old[family]; !ok {
		return
	}
	next := make(map[string]T, len(old))
	for k, val := range old {
		if k != family {
			next[k] = val
		}
	}
	r.table.Store(&next)
}

// Get returns family's own entry, without falling back.
func (r *Router[T]) Get(family string) (T, bool) {
	v, ok := (*r.table.Load())[family]
	return v, ok
}

// Route resolves the serving value for family: the family's own entry
// when one exists, else the global fallback. servedBy reports which key
// answered ("" = global); ok is false when neither exists.
func (r *Router[T]) Route(family string) (v T, servedBy string, ok bool) {
	t := *r.table.Load()
	if v, ok := t[family]; ok {
		return v, family, true
	}
	v, ok = t[""]
	return v, "", ok
}

// Snapshot returns a copy of the exact routing table (global under "").
func (r *Router[T]) Snapshot() map[string]T {
	t := *r.table.Load()
	out := make(map[string]T, len(t))
	for k, v := range t {
		out[k] = v
	}
	return out
}
