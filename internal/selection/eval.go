package selection

import (
	"math"

	"progressest/internal/progress"
)

// nearOptimalAbs / nearOptimalRel define the paper's "almost optimal"
// tolerance (Section 6.6): an estimator counts as optimal if its error is
// within 0.01 absolute or 1% relative of the best.
const (
	nearOptimalAbs = 0.01
	nearOptimalRel = 0.01
)

// Evaluation summarises a selector (or fixed estimator) on a test set.
type Evaluation struct {
	// PickedOptimal is the fraction of pipelines where the technique's
	// choice is (near-)optimal among the candidate set.
	PickedOptimal float64
	// AvgL1 and AvgL2 are the mean progress errors of the chosen
	// estimators.
	AvgL1, AvgL2 float64
	// RatioOver2x/5x/10x are the fractions of pipelines whose error
	// exceeds the per-pipeline minimum by the given factor (Table 6).
	RatioOver2x, RatioOver5x, RatioOver10x float64
	// OracleL1 is the mean of the per-pipeline minimum errors (the
	// theoretical "oracle selection" lower bound).
	OracleL1 float64
	// N is the number of test examples.
	N int
}

// isNearOptimal reports whether err is within tolerance of best.
func isNearOptimal(err, best float64) bool {
	return err <= best+nearOptimalAbs || (best > 0 && err <= best*(1+nearOptimalRel))
}

// ratioStats accumulates the shared tail metrics.
func evaluateChoices(examples []Example, kinds []progress.Kind,
	choose func(e *Example) progress.Kind) Evaluation {
	var ev Evaluation
	if len(examples) == 0 {
		return ev
	}
	for i := range examples {
		e := &examples[i]
		best := math.Inf(1)
		for _, k := range kinds {
			if e.ErrL1[k] < best {
				best = e.ErrL1[k]
			}
		}
		chosen := choose(e)
		errL1 := e.ErrL1[chosen]
		ev.AvgL1 += errL1
		ev.AvgL2 += e.ErrL2[chosen]
		ev.OracleL1 += best
		if isNearOptimal(errL1, best) {
			ev.PickedOptimal++
		}
		if best <= 0 {
			best = 1e-9
		}
		ratio := errL1 / best
		if ratio > 2 {
			ev.RatioOver2x++
		}
		if ratio > 5 {
			ev.RatioOver5x++
		}
		if ratio > 10 {
			ev.RatioOver10x++
		}
	}
	n := float64(len(examples))
	ev.PickedOptimal /= n
	ev.AvgL1 /= n
	ev.AvgL2 /= n
	ev.OracleL1 /= n
	ev.RatioOver2x /= n
	ev.RatioOver5x /= n
	ev.RatioOver10x /= n
	ev.N = len(examples)
	return ev
}

// Evaluate runs the selector over the test examples.
func Evaluate(s *Selector, examples []Example) Evaluation {
	return evaluateChoices(examples, s.Kinds, func(e *Example) progress.Kind {
		return s.Select(e.Features)
	})
}

// EvaluateFixed evaluates always choosing one estimator, against the
// optimum over kinds (the per-estimator rows of Tables 2-6).
func EvaluateFixed(k progress.Kind, kinds []progress.Kind, examples []Example) Evaluation {
	return evaluateChoices(examples, kinds, func(*Example) progress.Kind { return k })
}

// OptimalShare returns, per estimator, the fraction of examples where it
// is the strict-minimum-error choice among kinds (the "% optimal" columns
// of Tables 2-5).
func OptimalShare(kinds []progress.Kind, examples []Example) map[progress.Kind]float64 {
	out := make(map[progress.Kind]float64, len(kinds))
	if len(examples) == 0 {
		return out
	}
	for i := range examples {
		best := examples[i].BestKind(kinds)
		out[best]++
	}
	for k := range out {
		out[k] /= float64(len(examples))
	}
	return out
}

// AlmostOptimalShare returns, per estimator, the fraction of examples
// where it is near-optimal (Table 8, column 1).
func AlmostOptimalShare(kinds []progress.Kind, examples []Example) map[progress.Kind]float64 {
	out := make(map[progress.Kind]float64, len(kinds))
	if len(examples) == 0 {
		return out
	}
	for i := range examples {
		e := &examples[i]
		best := math.Inf(1)
		for _, k := range kinds {
			if e.ErrL1[k] < best {
				best = e.ErrL1[k]
			}
		}
		for _, k := range kinds {
			if isNearOptimal(e.ErrL1[k], best) {
				out[k]++
			}
		}
	}
	for k := range out {
		out[k] /= float64(len(examples))
	}
	return out
}

// SignificantlyBestShare returns, per estimator, the fraction of examples
// where it beats every alternative by more than the near-optimal tolerance
// (Table 8, column 2: "significantly outperforms all others").
func SignificantlyBestShare(kinds []progress.Kind, examples []Example) map[progress.Kind]float64 {
	out := make(map[progress.Kind]float64, len(kinds))
	if len(examples) == 0 {
		return out
	}
	for i := range examples {
		e := &examples[i]
		for _, k := range kinds {
			wins := true
			for _, other := range kinds {
				if other == k {
					continue
				}
				// k must be strictly better than `other` by both margins.
				if e.ErrL1[other] <= e.ErrL1[k]+nearOptimalAbs ||
					e.ErrL1[other] <= e.ErrL1[k]*(1+nearOptimalRel) {
					wins = false
					break
				}
			}
			if wins {
				out[k]++
			}
		}
	}
	for k := range out {
		out[k] /= float64(len(examples))
	}
	return out
}
