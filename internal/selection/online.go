package selection

import (
	"progressest/internal/features"
	"progressest/internal/progress"
)

// OnlineMonitor implements the online revision of estimator choices
// described in Section 4.4: a static selector picks an estimator from
// plan-time features before the query starts; once enough of the driver
// input has been consumed to compute the dynamic features (20% by
// default), a dynamic selector revises the choice. The monitor produces
// the composite progress series a progress dialog would actually have
// displayed.
type OnlineMonitor struct {
	// Static picks the initial estimator from plan-time features.
	Static *Selector
	// Dynamic revises the choice once dynamic features are available.
	Dynamic *Selector
	// ReviseAtDriverFraction is the driver-input fraction at which the
	// choice is revised (default 0.20, the last marker the paper uses).
	ReviseAtDriverFraction float64
}

// OnlineResult is the outcome of monitoring one pipeline.
type OnlineResult struct {
	// Initial and Revised are the static-time and revised choices (equal
	// if the dynamic model agreed or revision never triggered).
	Initial, Revised progress.Kind
	// RevisedAt is the observation ordinal where the revision took
	// effect, or -1.
	RevisedAt int
	// Series is the composite progress series shown to the user.
	Series []float64
	// Err is the composite series' error against true pipeline progress.
	Err progress.ErrorStats
}

// Monitor replays the pipeline through the online policy.
func (m *OnlineMonitor) Monitor(v *progress.PipelineView) OnlineResult {
	frac := m.ReviseAtDriverFraction
	if frac <= 0 {
		frac = 0.20
	}
	full := features.Full(v)
	res := OnlineResult{RevisedAt: -1}
	res.Initial = m.Static.Select(full)
	res.Revised = res.Initial
	if m.Dynamic != nil {
		if at := v.MarkerObservation(frac); at >= 0 {
			if choice := m.Dynamic.Select(full); choice != res.Initial {
				res.Revised = choice
				res.RevisedAt = at
			} else {
				res.RevisedAt = at
			}
		}
	}

	initialSeries := v.Series(res.Initial)
	res.Series = append([]float64(nil), initialSeries...)
	if res.RevisedAt >= 0 && res.Revised != res.Initial {
		revised := v.Series(res.Revised)
		copy(res.Series[res.RevisedAt:], revised[res.RevisedAt:])
	}

	truth := v.TrueSeries()
	dev := make([]float64, len(res.Series))
	for i := range dev {
		dev[i] = res.Series[i] - truth[i]
	}
	res.Err = progress.ErrorStatsFrom(dev, res.Series, truth)
	return res
}
