package catalog

import "testing"

func sampleSchema() *Schema {
	return &Schema{
		Name: "test",
		Tables: []*Table{
			{Name: "orders", Columns: []Column{
				{Name: "o_orderkey", Width: 8},
				{Name: "o_custkey", Width: 8},
				{Name: "o_totalprice", Width: 8},
			}},
			{Name: "customer", Columns: []Column{
				{Name: "c_custkey", Width: 8},
				{Name: "c_name", Width: 32},
			}},
		},
	}
}

func TestColumnIndexAndRowWidth(t *testing.T) {
	s := sampleSchema()
	c := s.MustTable("customer")
	if got := c.ColumnIndex("c_name"); got != 1 {
		t.Errorf("ColumnIndex = %d, want 1", got)
	}
	if got := c.ColumnIndex("missing"); got != -1 {
		t.Errorf("ColumnIndex(missing) = %d, want -1", got)
	}
	if got := c.RowWidth(); got != 40 {
		t.Errorf("RowWidth = %d, want 40", got)
	}
}

func TestTableLookup(t *testing.T) {
	s := sampleSchema()
	if s.Table("orders") == nil {
		t.Error("Table(orders) = nil")
	}
	if s.Table("nope") != nil {
		t.Error("Table(nope) should be nil")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustTable on missing table should panic")
		}
	}()
	s.MustTable("nope")
}

func TestPhysicalDesign(t *testing.T) {
	s := sampleSchema()
	d := &PhysicalDesign{
		Level: PartiallyTuned,
		Indexes: []Index{
			{Name: "pk_orders", Table: "orders", Column: "o_orderkey", Unique: true},
			{Name: "ix_cust", Table: "orders", Column: "o_custkey"},
		},
	}
	if err := d.Validate(s); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !d.HasIndex("orders", "o_custkey") {
		t.Error("HasIndex(orders.o_custkey) = false")
	}
	if d.HasIndex("orders", "o_totalprice") {
		t.Error("HasIndex(orders.o_totalprice) = true")
	}
	if ix := d.Find("orders", "o_orderkey"); ix == nil || !ix.Unique {
		t.Error("Find should return the unique pk index")
	}
}

func TestValidateCatchesBadIndexes(t *testing.T) {
	s := sampleSchema()
	bad1 := &PhysicalDesign{Indexes: []Index{{Name: "x", Table: "ghost", Column: "c"}}}
	if bad1.Validate(s) == nil {
		t.Error("expected error for unknown table")
	}
	bad2 := &PhysicalDesign{Indexes: []Index{{Name: "x", Table: "orders", Column: "ghost"}}}
	if bad2.Validate(s) == nil {
		t.Error("expected error for unknown column")
	}
}

func TestDesignLevelString(t *testing.T) {
	cases := map[DesignLevel]string{
		Untuned:        "untuned",
		PartiallyTuned: "partially-tuned",
		FullyTuned:     "fully-tuned",
		DesignLevel(9): "DesignLevel(9)",
	}
	for lvl, want := range cases {
		if got := lvl.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(lvl), got, want)
		}
	}
}
