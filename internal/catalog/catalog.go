// Package catalog defines schema metadata: tables, columns, indexes and
// physical-design presets. The paper evaluates progress estimation under
// three physical designs produced by the Database Tuning Advisor
// ("untuned", "partially tuned", "fully tuned"); here a physical design is
// simply the set of indexes materialised over a schema, which in turn
// drives the optimizer's choice of access paths and join algorithms.
package catalog

import "fmt"

// Column describes one column of a table. Width is the (logical) byte
// width of the column, used to account bytes read/written for the
// bytes-processed model of progress.
type Column struct {
	Name  string
	Width int
}

// Table is the metadata of one base table.
type Table struct {
	Name    string
	Columns []Column
}

// ColumnIndex returns the ordinal of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// RowWidth returns the total byte width of one row.
func (t *Table) RowWidth() int {
	w := 0
	for _, c := range t.Columns {
		w += c.Width
	}
	return w
}

// Index describes a secondary (or primary) index over a single column.
type Index struct {
	Name   string
	Table  string
	Column string
	// Unique marks primary-key-like indexes whose seeks return at most one
	// row.
	Unique bool
}

// Schema is a set of tables.
type Schema struct {
	Name   string
	Tables []*Table
}

// Table returns the named table, or nil.
func (s *Schema) Table(name string) *Table {
	for _, t := range s.Tables {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// MustTable returns the named table or panics; used when the schema is a
// compile-time constant of the workload generator.
func (s *Schema) MustTable(name string) *Table {
	t := s.Table(name)
	if t == nil {
		panic(fmt.Sprintf("catalog: schema %q has no table %q", s.Name, name))
	}
	return t
}

// DesignLevel identifies one of the paper's three physical-design presets.
type DesignLevel int

const (
	// Untuned materialises only the indexes required by integrity
	// constraints (primary keys).
	Untuned DesignLevel = iota
	// PartiallyTuned adds indexes on roughly half of the frequently
	// joined/filtered columns (DTA under a 50% space budget in the paper).
	PartiallyTuned
	// FullyTuned adds indexes on all frequently joined and filtered
	// columns, pushing plans towards index seeks and nested-loop joins.
	FullyTuned
)

// String implements fmt.Stringer.
func (d DesignLevel) String() string {
	switch d {
	case Untuned:
		return "untuned"
	case PartiallyTuned:
		return "partially-tuned"
	case FullyTuned:
		return "fully-tuned"
	default:
		return fmt.Sprintf("DesignLevel(%d)", int(d))
	}
}

// PhysicalDesign is the set of indexes materialised for a schema.
type PhysicalDesign struct {
	Level   DesignLevel
	Indexes []Index
}

// HasIndex reports whether an index exists on table.column.
func (d *PhysicalDesign) HasIndex(table, column string) bool {
	return d.Find(table, column) != nil
}

// Find returns the index on table.column, or nil.
func (d *PhysicalDesign) Find(table, column string) *Index {
	for i := range d.Indexes {
		ix := &d.Indexes[i]
		if ix.Table == table && ix.Column == column {
			return ix
		}
	}
	return nil
}

// Validate checks that every index references an existing table and column.
func (d *PhysicalDesign) Validate(s *Schema) error {
	for _, ix := range d.Indexes {
		t := s.Table(ix.Table)
		if t == nil {
			return fmt.Errorf("catalog: index %q references unknown table %q", ix.Name, ix.Table)
		}
		if t.ColumnIndex(ix.Column) < 0 {
			return fmt.Errorf("catalog: index %q references unknown column %s.%s", ix.Name, ix.Table, ix.Column)
		}
	}
	return nil
}
