// Package pipeline decomposes a physical plan into pipelines (called
// segments in Luo et al.): maximal subtrees of concurrently executing
// nodes (Section 3.2). Blocking operators (Sort, HashAgg) and the build
// side of a hash join end a pipeline; the blocking node itself belongs to
// the pipeline it feeds, where it acts as a driver node. Leaf nodes act as
// driver nodes unless they sit on the inner side of a nested-loop join
// (those are re-opened per outer row and their input size says nothing
// about pipeline progress).
package pipeline

import (
	"fmt"

	"progressest/internal/plan"
)

// Pipeline is one pipeline: the member node IDs and the subset that are
// driver nodes (the paper's DNodes(Pj)).
type Pipeline struct {
	ID      int
	Nodes   []int
	Drivers []int
}

// Contains reports whether node id belongs to the pipeline.
func (p *Pipeline) Contains(id int) bool {
	for _, n := range p.Nodes {
		if n == id {
			return true
		}
	}
	return false
}

// IsDriver reports whether node id is a driver node of the pipeline.
func (p *Pipeline) IsDriver(id int) bool {
	for _, n := range p.Drivers {
		if n == id {
			return true
		}
	}
	return false
}

// Decomposition is the set of pipelines of a plan plus a node->pipeline
// lookup.
type Decomposition struct {
	Pipelines []*Pipeline
	byNode    []int // node ID -> pipeline ID
}

// PipelineOf returns the pipeline containing node id.
func (d *Decomposition) PipelineOf(id int) *Pipeline {
	return d.Pipelines[d.byNode[id]]
}

// FromPipelines builds a Decomposition from an explicitly supplied
// pipeline set — the counter-ingestion path, where an external engine
// declares its own decomposition instead of deriving one from the plan's
// operator semantics. It validates what Decompose guarantees by
// construction: every plan node belongs to exactly one pipeline, and
// every driver is a member of its pipeline.
func FromPipelines(p *plan.Plan, pipes []*Pipeline) (*Decomposition, error) {
	if len(pipes) == 0 {
		return nil, fmt.Errorf("pipeline: no pipelines")
	}
	d := &Decomposition{byNode: make([]int, p.NumNodes())}
	for i := range d.byNode {
		d.byNode[i] = -1
	}
	for i, pl := range pipes {
		if pl.ID != i {
			return nil, fmt.Errorf("pipeline: pipeline at position %d has id %d", i, pl.ID)
		}
		if len(pl.Nodes) == 0 {
			return nil, fmt.Errorf("pipeline: pipeline %d has no nodes", i)
		}
		for _, id := range pl.Nodes {
			if id < 0 || id >= p.NumNodes() {
				return nil, fmt.Errorf("pipeline: pipeline %d names node %d, plan has %d nodes", i, id, p.NumNodes())
			}
			if d.byNode[id] >= 0 {
				return nil, fmt.Errorf("pipeline: node %d belongs to pipelines %d and %d", id, d.byNode[id], i)
			}
			d.byNode[id] = i
		}
		for _, dr := range pl.Drivers {
			if !pl.Contains(dr) {
				return nil, fmt.Errorf("pipeline: driver %d is not a member of pipeline %d", dr, i)
			}
		}
		d.Pipelines = append(d.Pipelines, pl)
	}
	for id, pid := range d.byNode {
		if pid < 0 {
			return nil, fmt.Errorf("pipeline: node %d not assigned to any pipeline", id)
		}
	}
	return d, nil
}

// Decompose splits the plan into pipelines.
func Decompose(p *plan.Plan) *Decomposition {
	d := &Decomposition{byNode: make([]int, p.NumNodes())}
	for i := range d.byNode {
		d.byNode[i] = -1
	}

	newPipe := func() *Pipeline {
		pl := &Pipeline{ID: len(d.Pipelines)}
		d.Pipelines = append(d.Pipelines, pl)
		return pl
	}

	// visit adds node n to pipeline pl. innerNL marks that n lies on the
	// inner side of a nested-loop join (its leaves are not drivers).
	var visit func(n *plan.Node, pl *Pipeline, innerNL bool)
	visit = func(n *plan.Node, pl *Pipeline, innerNL bool) {
		pl.Nodes = append(pl.Nodes, n.ID)
		d.byNode[n.ID] = pl.ID

		switch {
		case n.Op.IsBlocking():
			// Sort/HashAgg: member and driver of pl; input subtree forms a
			// fresh pipeline.
			if !innerNL {
				pl.Drivers = append(pl.Drivers, n.ID)
			}
			for _, c := range n.Children {
				visit(c, newPipe(), false)
			}
		case n.Op == plan.HashJoin || n.Op == plan.SemiJoin:
			// Probe child continues pl; build child starts a new pipeline.
			visit(n.Children[0], pl, innerNL)
			visit(n.Children[1], newPipe(), false)
		case n.Op == plan.NestedLoopJoin:
			visit(n.Children[0], pl, innerNL)
			visit(n.Children[1], pl, true)
		case len(n.Children) == 0:
			// Leaf: driver unless on the inner side of a nested loop.
			if !innerNL {
				pl.Drivers = append(pl.Drivers, n.ID)
			}
		default:
			// Streaming unary ops (Filter, Project, BatchSort, StreamAgg,
			// Top) and MergeJoin: children stay in the same pipeline.
			for _, c := range n.Children {
				visit(c, pl, innerNL)
			}
		}
	}
	visit(p.Root, newPipe(), false)

	for id, pid := range d.byNode {
		if pid < 0 {
			panic(fmt.Sprintf("pipeline: node %d not assigned", id))
		}
	}
	return d
}
