package pipeline

import (
	"testing"

	"progressest/internal/plan"
)

// mini plan builders (IDs assigned by Finalize).
func scan(table string) *plan.Node {
	return &plan.Node{Op: plan.TableScan, TableName: table, EstRows: 100, RowWidth: 8, OutCols: 1}
}

func TestSingleScanIsOnePipeline(t *testing.T) {
	p := plan.Finalize(scan("t"))
	d := Decompose(p)
	if len(d.Pipelines) != 1 {
		t.Fatalf("want 1 pipeline, got %d", len(d.Pipelines))
	}
	pl := d.Pipelines[0]
	if len(pl.Drivers) != 1 || pl.Drivers[0] != p.Root.ID {
		t.Errorf("scan should be its own driver: %+v", pl)
	}
}

func TestHashJoinSplitsBuildSide(t *testing.T) {
	probe, build := scan("probe"), scan("build")
	hj := &plan.Node{Op: plan.HashJoin, Children: []*plan.Node{probe, build}}
	p := plan.Finalize(hj)
	d := Decompose(p)
	if len(d.Pipelines) != 2 {
		t.Fatalf("want 2 pipelines, got %d", len(d.Pipelines))
	}
	// Probe and join share a pipeline; build is alone.
	if d.PipelineOf(probe.ID) != d.PipelineOf(hj.ID) {
		t.Error("probe and hash join should share a pipeline")
	}
	if d.PipelineOf(build.ID) == d.PipelineOf(hj.ID) {
		t.Error("build side should be a separate pipeline")
	}
	if !d.PipelineOf(build.ID).IsDriver(build.ID) {
		t.Error("build scan should drive its pipeline")
	}
	if !d.PipelineOf(probe.ID).IsDriver(probe.ID) {
		t.Error("probe scan should drive the probe pipeline")
	}
}

func TestNestedLoopInnerNotDriver(t *testing.T) {
	outer := scan("outer")
	inner := &plan.Node{Op: plan.IndexSeek, TableName: "inner", SeekOuterCol: 0}
	nlj := &plan.Node{Op: plan.NestedLoopJoin, Children: []*plan.Node{outer, inner}}
	p := plan.Finalize(nlj)
	d := Decompose(p)
	if len(d.Pipelines) != 1 {
		t.Fatalf("nested loop should be one pipeline, got %d", len(d.Pipelines))
	}
	pl := d.Pipelines[0]
	if !pl.IsDriver(outer.ID) {
		t.Error("outer scan should be the driver")
	}
	if pl.IsDriver(inner.ID) {
		t.Error("inner seek must not be a driver")
	}
	if !pl.Contains(inner.ID) {
		t.Error("inner seek belongs to the same pipeline")
	}
}

func TestSortDrivesParentPipeline(t *testing.T) {
	s := scan("t")
	srt := &plan.Node{Op: plan.Sort, Children: []*plan.Node{s}, SortCols: []int{0}}
	top := &plan.Node{Op: plan.Top, Children: []*plan.Node{srt}, TopN: 5}
	p := plan.Finalize(top)
	d := Decompose(p)
	if len(d.Pipelines) != 2 {
		t.Fatalf("want 2 pipelines, got %d", len(d.Pipelines))
	}
	// Sort belongs to the pipeline containing Top, as its driver.
	if d.PipelineOf(srt.ID) != d.PipelineOf(top.ID) {
		t.Error("sort should belong to the pipeline it feeds")
	}
	if !d.PipelineOf(srt.ID).IsDriver(srt.ID) {
		t.Error("sort should drive the emission pipeline")
	}
	// Scan is alone in its pipeline, driving it.
	if d.PipelineOf(s.ID) == d.PipelineOf(srt.ID) {
		t.Error("sort input should be a separate pipeline")
	}
	if !d.PipelineOf(s.ID).IsDriver(s.ID) {
		t.Error("scan should drive the input pipeline")
	}
}

func TestSemiJoinSplitsBuildSide(t *testing.T) {
	probe, build := scan("probe"), scan("build")
	sj := &plan.Node{Op: plan.SemiJoin, Children: []*plan.Node{probe, build}}
	p := plan.Finalize(sj)
	d := Decompose(p)
	if len(d.Pipelines) != 2 {
		t.Fatalf("want 2 pipelines, got %d", len(d.Pipelines))
	}
	if d.PipelineOf(probe.ID) != d.PipelineOf(sj.ID) {
		t.Error("probe and semi join should share a pipeline")
	}
	if d.PipelineOf(build.ID) == d.PipelineOf(sj.ID) {
		t.Error("semi-join build side should be a separate pipeline")
	}
}

func TestMergeJoinBothSidesDrivers(t *testing.T) {
	l, r := scan("l"), scan("r")
	mj := &plan.Node{Op: plan.MergeJoin, Children: []*plan.Node{l, r}}
	p := plan.Finalize(mj)
	d := Decompose(p)
	if len(d.Pipelines) != 1 {
		t.Fatalf("merge join should be one pipeline, got %d", len(d.Pipelines))
	}
	pl := d.Pipelines[0]
	if !pl.IsDriver(l.ID) || !pl.IsDriver(r.ID) {
		t.Error("both merge-join inputs should be drivers")
	}
}

func TestComplexPlanDecomposition(t *testing.T) {
	// HashAgg over HashJoin(Filter(scan), Sort(scan)).
	probeScan := scan("a")
	filter := &plan.Node{Op: plan.Filter, Children: []*plan.Node{probeScan}}
	buildScan := scan("b")
	srt := &plan.Node{Op: plan.Sort, Children: []*plan.Node{buildScan}, SortCols: []int{0}}
	hj := &plan.Node{Op: plan.HashJoin, Children: []*plan.Node{filter, srt}}
	agg := &plan.Node{Op: plan.HashAgg, Children: []*plan.Node{hj}, GroupCols: []int{0}}
	p := plan.Finalize(agg)
	d := Decompose(p)

	// Pipelines: [agg emission], [probe scan+filter+hj], [sort emission],
	// [build scan].
	if len(d.Pipelines) != 4 {
		t.Fatalf("want 4 pipelines, got %d", len(d.Pipelines))
	}
	if d.PipelineOf(hj.ID) != d.PipelineOf(filter.ID) ||
		d.PipelineOf(filter.ID) != d.PipelineOf(probeScan.ID) {
		t.Error("probe chain should share one pipeline")
	}
	if d.PipelineOf(srt.ID) == d.PipelineOf(buildScan.ID) {
		t.Error("sort emission and its input should be separate pipelines")
	}
	if d.PipelineOf(agg.ID) == d.PipelineOf(hj.ID) {
		t.Error("hash agg emission should be separate from its input")
	}
	if !d.PipelineOf(agg.ID).IsDriver(agg.ID) {
		t.Error("hash agg drives its emission pipeline")
	}
	// Every node assigned exactly once.
	seen := map[int]bool{}
	for _, pl := range d.Pipelines {
		for _, id := range pl.Nodes {
			if seen[id] {
				t.Errorf("node %d in multiple pipelines", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != p.NumNodes() {
		t.Errorf("assigned %d nodes, plan has %d", len(seen), p.NumNodes())
	}
}
