// Package atomicio provides the one crash-safe file-write sequence the
// persistence layers share (selector files, the model manifest): bytes go
// to a temp file in the destination directory, are fsynced, and the file
// is renamed over the destination — so a reader (or a restart) only ever
// sees the old complete file or the new complete file, never a torn one.
package atomicio

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with data (mode 0644).
func WriteFile(path string, data []byte) error {
	return writeFile(path, data, true)
}

// WriteFileLazy atomically replaces path with data like WriteFile, but
// skips every fsync: after a power loss the file may be missing, empty
// or the previous version. It is only for DERIVED artifacts a reader
// validates and can rebuild from primary state — segment sidecar
// indexes, caches — where the rename's torn-file-free guarantee is what
// matters and a durability barrier per write would tax the hot path that
// produces them.
func WriteFileLazy(path string, data []byte) error {
	return writeFile(path, data, false)
}

func writeFile(path string, data []byte, durable bool) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("atomicio: %w", err)
	}
	if durable {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return fmt.Errorf("atomicio: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	if !durable {
		return nil
	}
	// The rename itself lives in the directory, so the directory must be
	// fsynced too — otherwise a power loss can forget the rename while
	// keeping later directory updates (e.g. a garbage collection that
	// already deleted the files the surviving old state references).
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return fmt.Errorf("atomicio: sync dir: %w", err)
	}
	if err := d.Close(); err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	return nil
}
