package datagen

import (
	"progressest/internal/catalog"
	"progressest/internal/storage"
)

// Base row counts for the TPC-DS-like star schema.
const (
	tpcdsDates     = 1200
	tpcdsItems     = 6000
	tpcdsCustomers = 12000
	tpcdsStores    = 60
	tpcdsPromos    = 120
	tpcdsSales     = 60000
)

// TPCDSSchema returns the TPC-DS-like star schema: a store_sales fact
// table with five dimension tables.
func TPCDSSchema() *catalog.Schema {
	return &catalog.Schema{
		Name: "tpcds",
		Tables: []*catalog.Table{
			{Name: "date_dim", Columns: []catalog.Column{
				{Name: "d_date_sk", Width: 8}, {Name: "d_year", Width: 8},
				{Name: "d_moy", Width: 8}, {Name: "d_dom", Width: 8},
			}},
			{Name: "item", Columns: []catalog.Column{
				{Name: "i_item_sk", Width: 8}, {Name: "i_category", Width: 8},
				{Name: "i_brand", Width: 8}, {Name: "i_price", Width: 8},
			}},
			{Name: "customer", Columns: []catalog.Column{
				{Name: "c_customer_sk", Width: 8}, {Name: "c_birth_year", Width: 8},
				{Name: "c_nation", Width: 8},
			}},
			{Name: "store", Columns: []catalog.Column{
				{Name: "s_store_sk", Width: 8}, {Name: "s_state", Width: 8},
			}},
			{Name: "promotion", Columns: []catalog.Column{
				{Name: "p_promo_sk", Width: 8}, {Name: "p_channel", Width: 8},
			}},
			{Name: "store_sales", Columns: []catalog.Column{
				{Name: "ss_sold_date_sk", Width: 8}, {Name: "ss_item_sk", Width: 8},
				{Name: "ss_customer_sk", Width: 8}, {Name: "ss_store_sk", Width: 8},
				{Name: "ss_promo_sk", Width: 8}, {Name: "ss_quantity", Width: 8},
				{Name: "ss_sales_price", Width: 8},
			}},
		},
	}
}

// GenTPCDS generates the TPC-DS-like database. Sales fact foreign keys are
// Zipf-skewed: popular items/customers account for most sales, which is
// also what TPC-DS's comparability constraints produce.
func GenTPCDS(p Params) *storage.Database {
	db := storage.NewDatabase(TPCDSSchema())
	seed := p.Seed + 1000

	nDates := scaled(tpcdsDates, p.Scale)
	dates := db.MustTable("date_dim")
	for i := 1; i <= nDates; i++ {
		year := 1998 + (i-1)/365
		moy := 1 + ((i-1)/30)%12
		dom := 1 + (i-1)%30
		dates.Append(storage.Row{int64(i), int64(year), int64(moy), int64(dom)})
	}

	nItems := scaled(tpcdsItems, p.Scale)
	items := db.MustTable("item")
	cat := uniform(1, 10, seed+1)
	brand := uniform(1, 100, seed+2)
	price := uniform(100, 30000, seed+3)
	for i := 1; i <= nItems; i++ {
		items.Append(storage.Row{int64(i), cat(), brand(), price()})
	}

	nCust := scaled(tpcdsCustomers, p.Scale)
	cust := db.MustTable("customer")
	birth := uniform(1930, 2005, seed+4)
	nation := uniform(1, 25, seed+5)
	for i := 1; i <= nCust; i++ {
		cust.Append(storage.Row{int64(i), birth(), nation()})
	}

	nStores := scaled(tpcdsStores, p.Scale)
	stores := db.MustTable("store")
	state := uniform(1, 50, seed+6)
	for i := 1; i <= nStores; i++ {
		stores.Append(storage.Row{int64(i), state()})
	}

	nPromos := scaled(tpcdsPromos, p.Scale)
	promos := db.MustTable("promotion")
	channel := uniform(1, 4, seed+7)
	for i := 1; i <= nPromos; i++ {
		promos.Append(storage.Row{int64(i), channel()})
	}

	nSales := scaled(tpcdsSales, p.Scale)
	sales := db.MustTable("store_sales")
	z := p.Zipf
	if z == 0 {
		// The paper's TPC-DS database is used as-is (no skew knob), but the
		// TPC-DS spec itself mandates skewed fact keys; default to mild skew.
		z = 0.8
	}
	sDate := fkGen(nDates, z/2, seed+8)
	sItem := fkGen(nItems, z, seed+9)
	sCust := fkGen(nCust, z, seed+10)
	sStore := fkGen(nStores, z/2, seed+11)
	sPromo := fkGen(nPromos, z, seed+12)
	qty := uniform(1, 100, seed+13)
	sp := uniform(100, 30000, seed+14)
	for i := 0; i < nSales; i++ {
		sales.Append(storage.Row{sDate(), sItem(), sCust(), sStore(), sPromo(), qty(), sp()})
	}
	return db
}

func tpcdsDesigns() map[catalog.DesignLevel]*catalog.PhysicalDesign {
	pks := []catalog.Index{
		pk("date_dim", "d_date_sk"),
		pk("item", "i_item_sk"),
		pk("customer", "c_customer_sk"),
		pk("store", "s_store_sk"),
		pk("promotion", "p_promo_sk"),
	}
	partial := append(append([]catalog.Index{}, pks...),
		ix("store_sales", "ss_item_sk"),
		ix("store_sales", "ss_sold_date_sk"),
	)
	full := append(append([]catalog.Index{}, partial...),
		ix("store_sales", "ss_customer_sk"),
		ix("store_sales", "ss_store_sk"),
		ix("item", "i_category"),
		ix("date_dim", "d_year"),
	)
	return map[catalog.DesignLevel]*catalog.PhysicalDesign{
		catalog.Untuned:        {Level: catalog.Untuned, Indexes: pks},
		catalog.PartiallyTuned: {Level: catalog.PartiallyTuned, Indexes: partial},
		catalog.FullyTuned:     {Level: catalog.FullyTuned, Indexes: full},
	}
}
