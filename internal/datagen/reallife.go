package datagen

import (
	"progressest/internal/catalog"
	"progressest/internal/storage"
)

// Real-1: a Sales decision-support database. The paper describes it as a
// 9GB reporting database whose queries join 5-8 tables with nested
// sub-queries; we model a retail sales schema with two fact tables
// (sales, returns) over product/store/customer/employee/time dimensions,
// with correlated columns (product price drives sale amount) so that the
// independence assumption in the optimizer produces realistic estimation
// errors.
const (
	real1Products  = 5000
	real1Stores    = 150
	real1Customers = 15000
	real1Employees = 900
	real1Dates     = 1100
	real1Sales     = 55000
	real1Returns   = 5500
)

// Real1Schema returns the Sales schema.
func Real1Schema() *catalog.Schema {
	return &catalog.Schema{
		Name: "real1_sales",
		Tables: []*catalog.Table{
			{Name: "products", Columns: []catalog.Column{
				{Name: "pr_id", Width: 8}, {Name: "pr_category", Width: 8},
				{Name: "pr_supplier", Width: 8}, {Name: "pr_price", Width: 8},
			}},
			{Name: "stores", Columns: []catalog.Column{
				{Name: "st_id", Width: 8}, {Name: "st_region", Width: 8},
				{Name: "st_size", Width: 8},
			}},
			{Name: "customers", Columns: []catalog.Column{
				{Name: "cu_id", Width: 8}, {Name: "cu_segment", Width: 8},
				{Name: "cu_region", Width: 8},
			}},
			{Name: "employees", Columns: []catalog.Column{
				{Name: "em_id", Width: 8}, {Name: "em_store", Width: 8},
				{Name: "em_role", Width: 8},
			}},
			{Name: "dates", Columns: []catalog.Column{
				{Name: "dt_id", Width: 8}, {Name: "dt_year", Width: 8},
				{Name: "dt_quarter", Width: 8},
			}},
			{Name: "sales", Columns: []catalog.Column{
				{Name: "sa_id", Width: 8}, {Name: "sa_product", Width: 8},
				{Name: "sa_store", Width: 8}, {Name: "sa_customer", Width: 8},
				{Name: "sa_employee", Width: 8}, {Name: "sa_date", Width: 8},
				{Name: "sa_amount", Width: 8}, {Name: "sa_qty", Width: 8},
			}},
			{Name: "returns", Columns: []catalog.Column{
				{Name: "re_sale", Width: 8}, {Name: "re_product", Width: 8},
				{Name: "re_customer", Width: 8}, {Name: "re_reason", Width: 8},
			}},
		},
	}
}

// GenReal1 generates the Sales database. Fact foreign keys are skewed
// (hot products/customers) regardless of the Zipf parameter, because the
// paper's real workloads run on naturally skewed data; p.Zipf adds to the
// base skew.
func GenReal1(p Params) *storage.Database {
	db := storage.NewDatabase(Real1Schema())
	seed := p.Seed + 2000
	baseZ := 0.9 + p.Zipf/2

	nProd := scaled(real1Products, p.Scale)
	prods := db.MustTable("products")
	cat := uniform(1, 40, seed+1)
	sup := uniform(1, 300, seed+2)
	price := uniform(100, 50000, seed+3)
	for i := 1; i <= nProd; i++ {
		prods.Append(storage.Row{int64(i), cat(), sup(), price()})
	}

	nStores := scaled(real1Stores, p.Scale)
	stores := db.MustTable("stores")
	region := uniform(1, 12, seed+4)
	size := uniform(1, 5, seed+5)
	for i := 1; i <= nStores; i++ {
		stores.Append(storage.Row{int64(i), region(), size()})
	}

	nCust := scaled(real1Customers, p.Scale)
	custs := db.MustTable("customers")
	seg := uniform(1, 8, seed+6)
	cregion := uniform(1, 12, seed+7)
	for i := 1; i <= nCust; i++ {
		custs.Append(storage.Row{int64(i), seg(), cregion()})
	}

	nEmp := scaled(real1Employees, p.Scale)
	emps := db.MustTable("employees")
	estore := fkGen(nStores, baseZ, seed+8)
	role := uniform(1, 6, seed+9)
	for i := 1; i <= nEmp; i++ {
		emps.Append(storage.Row{int64(i), estore(), role()})
	}

	nDates := scaled(real1Dates, p.Scale)
	dates := db.MustTable("dates")
	for i := 1; i <= nDates; i++ {
		dates.Append(storage.Row{int64(i), int64(2005 + (i-1)/365), int64(1 + ((i-1)/91)%4)})
	}

	nSales := scaled(real1Sales, p.Scale)
	salesT := db.MustTable("sales")
	sProd := fkGen(nProd, baseZ, seed+10)
	sStore := fkGen(nStores, baseZ/2, seed+11)
	sCust := fkGen(nCust, baseZ, seed+12)
	sEmp := fkGen(nEmp, baseZ/2, seed+13)
	sDate := uniform(1, int64(nDates), seed+14)
	qty := uniform(1, 20, seed+15)
	noise := uniform(-50, 50, seed+16)
	for i := 1; i <= nSales; i++ {
		prod := sProd()
		q := qty()
		// amount correlates with product price: breaks the optimizer's
		// independence assumption for predicates on amount after a join.
		amount := prods.Rows[prod-1][3]*q/10 + noise()
		salesT.Append(storage.Row{int64(i), prod, sStore(), sCust(), sEmp(), sDate(), amount, q})
	}

	nRet := scaled(real1Returns, p.Scale)
	rets := db.MustTable("returns")
	rSale := fkGen(nSales, baseZ, seed+17)
	reason := uniform(1, 10, seed+18)
	for i := 0; i < nRet; i++ {
		sale := rSale()
		rets.Append(storage.Row{sale, salesT.Rows[sale-1][1], salesT.Rows[sale-1][3], reason()})
	}
	return db
}

func real1Designs() map[catalog.DesignLevel]*catalog.PhysicalDesign {
	pks := []catalog.Index{
		pk("products", "pr_id"),
		pk("stores", "st_id"),
		pk("customers", "cu_id"),
		pk("employees", "em_id"),
		pk("dates", "dt_id"),
		pk("sales", "sa_id"),
	}
	partial := append(append([]catalog.Index{}, pks...),
		ix("sales", "sa_product"),
		ix("sales", "sa_date"),
		ix("returns", "re_sale"),
	)
	full := append(append([]catalog.Index{}, partial...),
		ix("sales", "sa_customer"),
		ix("sales", "sa_store"),
		ix("products", "pr_category"),
		ix("customers", "cu_segment"),
		ix("employees", "em_store"),
	)
	return map[catalog.DesignLevel]*catalog.PhysicalDesign{
		catalog.Untuned:        {Level: catalog.Untuned, Indexes: pks},
		catalog.PartiallyTuned: {Level: catalog.PartiallyTuned, Indexes: partial},
		catalog.FullyTuned:     {Level: catalog.FullyTuned, Indexes: full},
	}
}

// Real-2: a larger snowflake decision-support database whose typical query
// joins ~12 tables (the paper's second proprietary workload, 12GB, 632
// queries). We model a transactions fact with six direct dimensions, each
// of which snowflakes into further tables.
const (
	real2Accounts   = 9000
	real2Branches   = 220
	real2Cities     = 90
	real2Regions2   = 12
	real2Products2  = 4000
	real2Categories = 60
	real2Depts      = 12
	real2Channels   = 6
	real2Currencies = 30
	real2Dates2     = 1500
	real2Months     = 60
	real2Txns       = 70000
)

// Real2Schema returns the snowflake schema.
func Real2Schema() *catalog.Schema {
	return &catalog.Schema{
		Name: "real2_snowflake",
		Tables: []*catalog.Table{
			{Name: "regions2", Columns: []catalog.Column{
				{Name: "rg_id", Width: 8}, {Name: "rg_zone", Width: 8},
			}},
			{Name: "cities", Columns: []catalog.Column{
				{Name: "ci_id", Width: 8}, {Name: "ci_region", Width: 8},
				{Name: "ci_pop", Width: 8},
			}},
			{Name: "branches", Columns: []catalog.Column{
				{Name: "br_id", Width: 8}, {Name: "br_city", Width: 8},
				{Name: "br_tier", Width: 8},
			}},
			{Name: "accounts", Columns: []catalog.Column{
				{Name: "ac_id", Width: 8}, {Name: "ac_branch", Width: 8},
				{Name: "ac_type", Width: 8}, {Name: "ac_open_month", Width: 8},
			}},
			{Name: "departments", Columns: []catalog.Column{
				{Name: "dp_id", Width: 8}, {Name: "dp_division", Width: 8},
			}},
			{Name: "categories", Columns: []catalog.Column{
				{Name: "ca_id", Width: 8}, {Name: "ca_dept", Width: 8},
			}},
			{Name: "products2", Columns: []catalog.Column{
				{Name: "pd_id", Width: 8}, {Name: "pd_category", Width: 8},
				{Name: "pd_price", Width: 8}, {Name: "pd_margin", Width: 8},
			}},
			{Name: "channels", Columns: []catalog.Column{
				{Name: "ch_id", Width: 8}, {Name: "ch_kind", Width: 8},
			}},
			{Name: "currencies", Columns: []catalog.Column{
				{Name: "cy_id", Width: 8}, {Name: "cy_zone", Width: 8},
			}},
			{Name: "months", Columns: []catalog.Column{
				{Name: "mo_id", Width: 8}, {Name: "mo_year", Width: 8},
			}},
			{Name: "dates2", Columns: []catalog.Column{
				{Name: "dt_id", Width: 8}, {Name: "dt_month", Width: 8},
				{Name: "dt_dow", Width: 8},
			}},
			{Name: "transactions", Columns: []catalog.Column{
				{Name: "tx_id", Width: 8}, {Name: "tx_account", Width: 8},
				{Name: "tx_product", Width: 8}, {Name: "tx_channel", Width: 8},
				{Name: "tx_currency", Width: 8}, {Name: "tx_date", Width: 8},
				{Name: "tx_amount", Width: 8}, {Name: "tx_units", Width: 8},
			}},
		},
	}
}

// GenReal2 generates the snowflake database with naturally skewed fact
// keys and correlated snowflake dimensions.
func GenReal2(p Params) *storage.Database {
	db := storage.NewDatabase(Real2Schema())
	seed := p.Seed + 3000
	baseZ := 1.0 + p.Zipf/2

	nReg := scaled(real2Regions2, p.Scale)
	regs := db.MustTable("regions2")
	zone := uniform(1, 4, seed+1)
	for i := 1; i <= nReg; i++ {
		regs.Append(storage.Row{int64(i), zone()})
	}

	nCity := scaled(real2Cities, p.Scale)
	cities := db.MustTable("cities")
	cityReg := fkGen(nReg, baseZ/2, seed+2)
	pop := uniform(10, 9000, seed+3)
	for i := 1; i <= nCity; i++ {
		cities.Append(storage.Row{int64(i), cityReg(), pop()})
	}

	nBr := scaled(real2Branches, p.Scale)
	brs := db.MustTable("branches")
	brCity := fkGen(nCity, baseZ/2, seed+4)
	tier := uniform(1, 4, seed+5)
	for i := 1; i <= nBr; i++ {
		brs.Append(storage.Row{int64(i), brCity(), tier()})
	}

	nMo := scaled(real2Months, p.Scale)
	mos := db.MustTable("months")
	for i := 1; i <= nMo; i++ {
		mos.Append(storage.Row{int64(i), int64(2004 + (i-1)/12)})
	}

	nAcc := scaled(real2Accounts, p.Scale)
	accs := db.MustTable("accounts")
	accBr := fkGen(nBr, baseZ, seed+6)
	accType := uniform(1, 8, seed+7)
	accMo := uniform(1, int64(nMo), seed+8)
	for i := 1; i <= nAcc; i++ {
		accs.Append(storage.Row{int64(i), accBr(), accType(), accMo()})
	}

	nDp := scaled(real2Depts, p.Scale)
	dps := db.MustTable("departments")
	div := uniform(1, 3, seed+9)
	for i := 1; i <= nDp; i++ {
		dps.Append(storage.Row{int64(i), div()})
	}

	nCa := scaled(real2Categories, p.Scale)
	cas := db.MustTable("categories")
	caDp := fkGen(nDp, baseZ/2, seed+10)
	for i := 1; i <= nCa; i++ {
		cas.Append(storage.Row{int64(i), caDp()})
	}

	nPd := scaled(real2Products2, p.Scale)
	pds := db.MustTable("products2")
	pdCa := fkGen(nCa, baseZ/2, seed+11)
	pdPrice := uniform(50, 80000, seed+12)
	pdMargin := uniform(1, 60, seed+13)
	for i := 1; i <= nPd; i++ {
		pds.Append(storage.Row{int64(i), pdCa(), pdPrice(), pdMargin()})
	}

	nCh := scaled(real2Channels, p.Scale)
	chs := db.MustTable("channels")
	kind := uniform(1, 3, seed+14)
	for i := 1; i <= nCh; i++ {
		chs.Append(storage.Row{int64(i), kind()})
	}

	nCy := scaled(real2Currencies, p.Scale)
	cys := db.MustTable("currencies")
	cyZone := uniform(1, 4, seed+15)
	for i := 1; i <= nCy; i++ {
		cys.Append(storage.Row{int64(i), cyZone()})
	}

	nDt := scaled(real2Dates2, p.Scale)
	dts := db.MustTable("dates2")
	for i := 1; i <= nDt; i++ {
		dts.Append(storage.Row{int64(i), int64(1 + (i-1)*nMo/nDt), int64(1 + (i-1)%7)})
	}

	nTx := scaled(real2Txns, p.Scale)
	txs := db.MustTable("transactions")
	txAcc := fkGen(nAcc, baseZ, seed+16)
	txPd := fkGen(nPd, baseZ, seed+17)
	txCh := fkGen(nCh, baseZ/2, seed+18)
	txCy := fkGen(nCy, baseZ, seed+19)
	txDt := uniform(1, int64(nDt), seed+20)
	units := uniform(1, 30, seed+21)
	noise := uniform(-100, 100, seed+22)
	for i := 1; i <= nTx; i++ {
		pd := txPd()
		u := units()
		amount := pds.Rows[pd-1][2]*u/10 + noise()
		txs.Append(storage.Row{int64(i), txAcc(), pd, txCh(), txCy(), txDt(), amount, u})
	}
	return db
}

func real2Designs() map[catalog.DesignLevel]*catalog.PhysicalDesign {
	pks := []catalog.Index{
		pk("regions2", "rg_id"),
		pk("cities", "ci_id"),
		pk("branches", "br_id"),
		pk("accounts", "ac_id"),
		pk("departments", "dp_id"),
		pk("categories", "ca_id"),
		pk("products2", "pd_id"),
		pk("channels", "ch_id"),
		pk("currencies", "cy_id"),
		pk("months", "mo_id"),
		pk("dates2", "dt_id"),
		pk("transactions", "tx_id"),
	}
	partial := append(append([]catalog.Index{}, pks...),
		ix("transactions", "tx_account"),
		ix("transactions", "tx_product"),
		ix("accounts", "ac_branch"),
	)
	full := append(append([]catalog.Index{}, partial...),
		ix("transactions", "tx_date"),
		ix("transactions", "tx_currency"),
		ix("products2", "pd_category"),
		ix("branches", "br_city"),
		ix("cities", "ci_region"),
		ix("categories", "ca_dept"),
	)
	return map[catalog.DesignLevel]*catalog.PhysicalDesign{
		catalog.Untuned:        {Level: catalog.Untuned, Indexes: pks},
		catalog.PartiallyTuned: {Level: catalog.PartiallyTuned, Indexes: partial},
		catalog.FullyTuned:     {Level: catalog.FullyTuned, Indexes: full},
	}
}
