package datagen

import (
	"testing"

	"progressest/internal/catalog"
	"progressest/internal/stats"
)

func TestGenerateAllKinds(t *testing.T) {
	for _, kind := range []DatasetKind{TPCHLike, TPCDSLike, Real1Like, Real2Like} {
		db := Generate(kind, Params{Scale: 0.1, Zipf: 1, Seed: 1})
		if db.TotalRows() == 0 {
			t.Errorf("%v: empty database", kind)
		}
		for _, tm := range db.Schema.Tables {
			if db.MustTable(tm.Name).NumRows() == 0 {
				t.Errorf("%v: table %s is empty", kind, tm.Name)
			}
		}
	}
}

func TestScaleChangesSize(t *testing.T) {
	small := GenTPCH(Params{Scale: 0.1, Seed: 1})
	large := GenTPCH(Params{Scale: 0.5, Seed: 1})
	if small.TotalRows() >= large.TotalRows() {
		t.Errorf("scale 0.1 (%d rows) should be smaller than 0.5 (%d rows)",
			small.TotalRows(), large.TotalRows())
	}
	// Tiny dimension tables are scale-independent.
	if small.MustTable("region").NumRows() != 5 || small.MustTable("nation").NumRows() != 25 {
		t.Error("region/nation should have fixed sizes")
	}
}

func TestDeterminism(t *testing.T) {
	a := GenTPCH(Params{Scale: 0.1, Zipf: 1, Seed: 9})
	b := GenTPCH(Params{Scale: 0.1, Zipf: 1, Seed: 9})
	ra, rb := a.MustTable("lineitem").Rows, b.MustTable("lineitem").Rows
	if len(ra) != len(rb) {
		t.Fatalf("row counts differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		for j := range ra[i] {
			if ra[i][j] != rb[i][j] {
				t.Fatalf("row %d col %d differs", i, j)
			}
		}
	}
}

func TestForeignKeysValid(t *testing.T) {
	db := GenTPCH(Params{Scale: 0.1, Zipf: 2, Seed: 3})
	nCust := int64(db.MustTable("customer").NumRows())
	for _, r := range db.MustTable("orders").Rows {
		if r[1] < 1 || r[1] > nCust {
			t.Fatalf("o_custkey %d out of range [1,%d]", r[1], nCust)
		}
	}
	nOrd := int64(db.MustTable("orders").NumRows())
	nPart := int64(db.MustTable("part").NumRows())
	for _, r := range db.MustTable("lineitem").Rows {
		if r[0] < 1 || r[0] > nOrd {
			t.Fatalf("l_orderkey %d out of range", r[0])
		}
		if r[1] < 1 || r[1] > nPart {
			t.Fatalf("l_partkey %d out of range", r[1])
		}
	}
}

// fkSkewCV computes the coefficient of variation of foreign-key
// frequencies, a scale-free skew measure.
func fkSkewCV(rows [][]int64, col int) float64 {
	counts := make(map[int64]float64)
	for _, r := range rows {
		counts[r[col]]++
	}
	vals := make([]float64, 0, len(counts))
	for _, c := range counts {
		vals = append(vals, c)
	}
	return stats.StdDev(vals) / stats.Mean(vals)
}

func TestZipfParameterInducesSkew(t *testing.T) {
	flat := GenTPCH(Params{Scale: 0.2, Zipf: 0, Seed: 4})
	skewed := GenTPCH(Params{Scale: 0.2, Zipf: 2, Seed: 4})
	cvFlat := fkSkewCV(flat.MustTable("lineitem").Rows, 1)
	cvSkew := fkSkewCV(skewed.MustTable("lineitem").Rows, 1)
	if cvSkew < 2*cvFlat {
		t.Errorf("z=2 skew CV %.3f should far exceed z=0 CV %.3f", cvSkew, cvFlat)
	}
}

func TestDesignsValidateAgainstSchemas(t *testing.T) {
	for _, kind := range []DatasetKind{TPCHLike, TPCDSLike, Real1Like, Real2Like} {
		db := Generate(kind, Params{Scale: 0.05, Seed: 1})
		designs := Designs(kind)
		if len(designs) != 3 {
			t.Fatalf("%v: want 3 design levels, got %d", kind, len(designs))
		}
		for lvl, d := range designs {
			if err := d.Validate(db.Schema); err != nil {
				t.Errorf("%v/%v: %v", kind, lvl, err)
			}
		}
		// Designs must be strictly increasing in index count.
		u := len(designs[catalog.Untuned].Indexes)
		p := len(designs[catalog.PartiallyTuned].Indexes)
		f := len(designs[catalog.FullyTuned].Indexes)
		if !(u < p && p < f) {
			t.Errorf("%v: index counts should increase: %d, %d, %d", kind, u, p, f)
		}
	}
}

func TestApplyDesignBuildsIndexes(t *testing.T) {
	db := GenTPCDS(Params{Scale: 0.05, Seed: 2})
	if err := db.ApplyDesign(Designs(TPCDSLike)[catalog.FullyTuned]); err != nil {
		t.Fatal(err)
	}
	if db.MustTable("store_sales").IndexOn("ss_item_sk") == nil {
		t.Error("fully tuned design should index ss_item_sk")
	}
}

func TestReal1AmountCorrelatesWithPrice(t *testing.T) {
	db := GenReal1(Params{Scale: 0.2, Seed: 5})
	prods := db.MustTable("products")
	var prices, amounts []float64
	for _, r := range db.MustTable("sales").Rows[:2000] {
		prices = append(prices, float64(prods.Rows[r[1]-1][3]))
		amounts = append(amounts, float64(r[6]))
	}
	if corr := stats.Pearson(prices, amounts); corr < 0.5 {
		t.Errorf("sale amount should correlate with product price, got r=%.3f", corr)
	}
}

func TestDatasetKindString(t *testing.T) {
	names := map[DatasetKind]string{
		TPCHLike: "tpch-like", TPCDSLike: "tpcds-like",
		Real1Like: "real1-sales", Real2Like: "real2-snowflake",
		DatasetKind(99): "unknown-dataset",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(k), got, want)
		}
	}
}
