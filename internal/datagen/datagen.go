// Package datagen generates the synthetic databases the experiments run
// over. It replaces the paper's TPC-H/TPC-DS dbgen tools (including the
// Microsoft "TPC-H with skew" generator [1] used to induce Zipfian
// variance in per-tuple work) and the two proprietary customer databases
// ("Real-1" Sales, 9GB and "Real-2", 12GB), which are not available.
//
// All generation is deterministic given (scale, skew, seed). Row counts
// are scaled down from the paper's multi-GB databases so that thousands of
// queries execute in seconds inside the simulated engine; what matters for
// progress estimation is the *distribution* of per-tuple work and the
// *error structure* of optimizer estimates, both of which are preserved by
// the Zipfian foreign keys and correlated columns below.
package datagen

import (
	"math/rand"

	"progressest/internal/catalog"
	"progressest/internal/storage"
	"progressest/internal/zipfian"
)

// Params controls database generation.
type Params struct {
	// Scale multiplies base-table row counts; 1.0 stands in for the paper's
	// 10GB databases.
	Scale float64
	// Zipf is the skew factor z (0 = uniform) applied to foreign keys and
	// selected value columns, mirroring the skewed TPC-H generator.
	Zipf float64
	// Seed makes generation deterministic.
	Seed int64
}

// scaled returns max(1, round(n*scale)).
func scaled(n int, scale float64) int {
	v := int(float64(n)*scale + 0.5)
	if v < 1 {
		v = 1
	}
	return v
}

// fkGen returns a foreign-key generator over [1, n]: Zipfian with the
// configured skew (through a value permutation so hot keys are spread
// across the domain), or uniform when z = 0.
func fkGen(n int, z float64, seed int64) func() int64 {
	if n < 1 {
		n = 1
	}
	if z == 0 {
		r := rand.New(rand.NewSource(seed))
		return func() int64 { return 1 + r.Int63n(int64(n)) }
	}
	p := zipfian.NewPermuted(int64(n), z, seed)
	return p.Next
}

// uniform returns a uniform generator over [lo, hi].
func uniform(lo, hi int64, seed int64) func() int64 {
	r := rand.New(rand.NewSource(seed))
	span := hi - lo + 1
	return func() int64 { return lo + r.Int63n(span) }
}

// DatasetKind names the database families used in the evaluation.
type DatasetKind int

// The database families of Section 6.
const (
	TPCHLike DatasetKind = iota
	TPCDSLike
	Real1Like
	Real2Like
)

// String implements fmt.Stringer.
func (k DatasetKind) String() string {
	switch k {
	case TPCHLike:
		return "tpch-like"
	case TPCDSLike:
		return "tpcds-like"
	case Real1Like:
		return "real1-sales"
	case Real2Like:
		return "real2-snowflake"
	default:
		return "unknown-dataset"
	}
}

// Generate builds the database of the given kind.
func Generate(kind DatasetKind, p Params) *storage.Database {
	switch kind {
	case TPCHLike:
		return GenTPCH(p)
	case TPCDSLike:
		return GenTPCDS(p)
	case Real1Like:
		return GenReal1(p)
	case Real2Like:
		return GenReal2(p)
	default:
		panic("datagen: unknown dataset kind")
	}
}

// Designs returns the physical-design presets (untuned, partially tuned,
// fully tuned) for the given dataset kind, mirroring the paper's DTA
// configurations: "untuned" has only primary-key indexes, "fully tuned"
// adds indexes on all join and frequent filter columns (pushing plans
// towards index seeks, nested-loop joins and batch sorts — see Table 1),
// and "partially tuned" sits in between.
func Designs(kind DatasetKind) map[catalog.DesignLevel]*catalog.PhysicalDesign {
	switch kind {
	case TPCHLike:
		return tpchDesigns()
	case TPCDSLike:
		return tpcdsDesigns()
	case Real1Like:
		return real1Designs()
	case Real2Like:
		return real2Designs()
	default:
		panic("datagen: unknown dataset kind")
	}
}

// pk builds a unique index descriptor for a primary-key column.
func pk(table, column string) catalog.Index {
	return catalog.Index{Name: "pk_" + table, Table: table, Column: column, Unique: true}
}

// ix builds a non-unique secondary index descriptor.
func ix(table, column string) catalog.Index {
	return catalog.Index{Name: "ix_" + table + "_" + column, Table: table, Column: column}
}
