package datagen

import (
	"progressest/internal/catalog"
	"progressest/internal/storage"
)

// Base (scale = 1.0) row counts for the TPC-H-like schema. These are
// scaled down ~15x from TPC-H SF1 so a 1000-query workload executes in
// seconds; relative table sizes match TPC-H.
const (
	tpchRegions   = 5
	tpchNations   = 25
	tpchSuppliers = 700
	tpchCustomers = 10000
	tpchParts     = 14000
	tpchPartsupp  = 4 * tpchParts
	tpchOrders    = 10000
	tpchLineAvg   = 4 // average lineitems per order
)

// TPCHSchema returns the TPC-H-like schema metadata.
func TPCHSchema() *catalog.Schema {
	return &catalog.Schema{
		Name: "tpch",
		Tables: []*catalog.Table{
			{Name: "region", Columns: []catalog.Column{
				{Name: "r_regionkey", Width: 8}, {Name: "r_name", Width: 24},
			}},
			{Name: "nation", Columns: []catalog.Column{
				{Name: "n_nationkey", Width: 8}, {Name: "n_regionkey", Width: 8},
				{Name: "n_name", Width: 24},
			}},
			{Name: "supplier", Columns: []catalog.Column{
				{Name: "s_suppkey", Width: 8}, {Name: "s_nationkey", Width: 8},
				{Name: "s_acctbal", Width: 8},
			}},
			{Name: "customer", Columns: []catalog.Column{
				{Name: "c_custkey", Width: 8}, {Name: "c_nationkey", Width: 8},
				{Name: "c_mktsegment", Width: 8}, {Name: "c_acctbal", Width: 8},
			}},
			{Name: "part", Columns: []catalog.Column{
				{Name: "p_partkey", Width: 8}, {Name: "p_brand", Width: 8},
				{Name: "p_type", Width: 8}, {Name: "p_size", Width: 8},
				{Name: "p_retailprice", Width: 8},
			}},
			{Name: "partsupp", Columns: []catalog.Column{
				{Name: "ps_partkey", Width: 8}, {Name: "ps_suppkey", Width: 8},
				{Name: "ps_availqty", Width: 8}, {Name: "ps_supplycost", Width: 8},
			}},
			{Name: "orders", Columns: []catalog.Column{
				{Name: "o_orderkey", Width: 8}, {Name: "o_custkey", Width: 8},
				{Name: "o_orderdate", Width: 8}, {Name: "o_orderpriority", Width: 8},
				{Name: "o_totalprice", Width: 8},
			}},
			{Name: "lineitem", Columns: []catalog.Column{
				{Name: "l_orderkey", Width: 8}, {Name: "l_partkey", Width: 8},
				{Name: "l_suppkey", Width: 8}, {Name: "l_quantity", Width: 8},
				{Name: "l_extendedprice", Width: 8}, {Name: "l_discount", Width: 8},
				{Name: "l_shipdate", Width: 8}, {Name: "l_returnflag", Width: 8},
			}},
		},
	}
}

// GenTPCH generates the TPC-H-like database. The skew parameter z is
// applied to the foreign keys o_custkey, l_partkey and l_suppkey (this is
// what the skewed TPC-H generator does, inducing variance in per-tuple
// join work) and to the number of lineitems per order.
func GenTPCH(p Params) *storage.Database {
	db := storage.NewDatabase(TPCHSchema())
	seed := p.Seed

	regions := db.MustTable("region")
	for i := 1; i <= tpchRegions; i++ {
		regions.Append(storage.Row{int64(i), int64(i)})
	}

	nations := db.MustTable("nation")
	for i := 1; i <= tpchNations; i++ {
		nations.Append(storage.Row{int64(i), int64(1 + (i-1)%tpchRegions), int64(i)})
	}

	nSupp := scaled(tpchSuppliers, p.Scale)
	supp := db.MustTable("supplier")
	suppNation := uniform(1, tpchNations, seed+1)
	suppBal := uniform(-999, 9999, seed+2)
	for i := 1; i <= nSupp; i++ {
		supp.Append(storage.Row{int64(i), suppNation(), suppBal()})
	}

	nCust := scaled(tpchCustomers, p.Scale)
	cust := db.MustTable("customer")
	custNation := uniform(1, tpchNations, seed+3)
	custSeg := uniform(1, 5, seed+4)
	custBal := uniform(-999, 9999, seed+5)
	for i := 1; i <= nCust; i++ {
		cust.Append(storage.Row{int64(i), custNation(), custSeg(), custBal()})
	}

	nPart := scaled(tpchParts, p.Scale)
	part := db.MustTable("part")
	brand := uniform(1, 25, seed+6)
	ptype := uniform(1, 150, seed+7)
	psize := uniform(1, 50, seed+8)
	pprice := uniform(900, 2100, seed+9)
	for i := 1; i <= nPart; i++ {
		part.Append(storage.Row{int64(i), brand(), ptype(), psize(), pprice()})
	}

	psupp := db.MustTable("partsupp")
	psSupp := fkGen(nSupp, p.Zipf, seed+10)
	psQty := uniform(1, 9999, seed+11)
	psCost := uniform(1, 1000, seed+12)
	for i := 1; i <= nPart; i++ {
		for j := 0; j < 4; j++ {
			psupp.Append(storage.Row{int64(i), psSupp(), psQty(), psCost()})
		}
	}

	nOrd := scaled(tpchOrders, p.Scale)
	orders := db.MustTable("orders")
	ordCust := fkGen(nCust, p.Zipf, seed+13)
	ordDate := uniform(1, 2406, seed+14) // days in [1992-01-01, 1998-08-02]
	ordPrio := uniform(1, 5, seed+15)
	ordPrice := uniform(1000, 500000, seed+16)
	for i := 1; i <= nOrd; i++ {
		orders.Append(storage.Row{int64(i), ordCust(), ordDate(), ordPrio(), ordPrice()})
	}

	line := db.MustTable("lineitem")
	linePart := fkGen(nPart, p.Zipf, seed+17)
	lineSupp := fkGen(nSupp, p.Zipf, seed+18)
	lineQty := uniform(1, 50, seed+19)
	linePrice := uniform(900, 105000, seed+20)
	lineDisc := uniform(0, 10, seed+21)
	lineFlag := uniform(1, 3, seed+22)
	// Lineitems per order: 1..7, skew-dependent so that skewed databases
	// also have variance in fan-out from orders into lineitem.
	lineCnt := fkGen(2*tpchLineAvg-1, p.Zipf, seed+23)
	shipDelta := uniform(1, 120, seed+24)
	for o := 1; o <= nOrd; o++ {
		cnt := int(lineCnt())
		odate := orders.Rows[o-1][2]
		for j := 0; j < cnt; j++ {
			line.Append(storage.Row{
				int64(o), linePart(), lineSupp(), lineQty(),
				linePrice(), lineDisc(), odate + shipDelta(), lineFlag(),
			})
		}
	}
	return db
}

// tpchDesigns mirrors the paper's three DTA configurations for TPC-H.
func tpchDesigns() map[catalog.DesignLevel]*catalog.PhysicalDesign {
	pks := []catalog.Index{
		pk("region", "r_regionkey"),
		pk("nation", "n_nationkey"),
		pk("supplier", "s_suppkey"),
		pk("customer", "c_custkey"),
		pk("part", "p_partkey"),
		pk("orders", "o_orderkey"),
		ix("partsupp", "ps_partkey"),
		ix("lineitem", "l_orderkey"),
	}
	partial := append(append([]catalog.Index{}, pks...),
		ix("orders", "o_custkey"),
		ix("lineitem", "l_partkey"),
		ix("orders", "o_orderdate"),
	)
	full := append(append([]catalog.Index{}, partial...),
		ix("lineitem", "l_suppkey"),
		ix("lineitem", "l_shipdate"),
		ix("customer", "c_nationkey"),
		ix("supplier", "s_nationkey"),
		ix("partsupp", "ps_suppkey"),
		ix("part", "p_size"),
		ix("part", "p_brand"),
	)
	return map[catalog.DesignLevel]*catalog.PhysicalDesign{
		catalog.Untuned:        {Level: catalog.Untuned, Indexes: pks},
		catalog.PartiallyTuned: {Level: catalog.PartiallyTuned, Indexes: partial},
		catalog.FullyTuned:     {Level: catalog.FullyTuned, Indexes: full},
	}
}
