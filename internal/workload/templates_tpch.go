package workload

import (
	"math/rand"

	"progressest/internal/expr"
	"progressest/internal/optimizer"
	"progressest/internal/plan"
	"progressest/internal/storage"
)

// genTPCHQuery samples one TPC-H-like query: the template family covers
// the plan shapes of the benchmark's decision-support queries (scan-heavy
// single-table aggregation, 2-5 way joins, selective point lookups with
// Top, FK-FK joins through partsupp).
func genTPCHQuery(rng *rand.Rand, db *storage.Database) *optimizer.QuerySpec {
	switch rng.Intn(10) {
	case 9:
		// Q4-like: orders in a date range WHERE EXISTS a late lineitem.
		oLo, oHi := span(rng, 1, 2406, 0.1, 0.4)
		sLo, sHi := span(rng, 1, 2500, 0.3, 0.8)
		return &optimizer.QuerySpec{
			First: optimizer.TableTerm{Table: "orders", Filters: []optimizer.FilterSpec{
				{Column: "o_orderdate", IsRange: true, Lo: oLo, Hi: oHi},
			}},
			Exists: []optimizer.JoinTerm{{
				Right: optimizer.TableTerm{Table: "lineitem", Filters: []optimizer.FilterSpec{
					{Column: "l_shipdate", IsRange: true, Lo: sLo, Hi: sHi},
				}},
				LeftTable: "orders", LeftCol: "o_orderkey", RightCol: "l_orderkey",
			}},
			Group: &optimizer.GroupSpec{
				Cols: []optimizer.ColRef{{Table: "orders", Column: "o_orderpriority"}},
				Aggs: []optimizer.AggRef{{Func: plan.AggCount}},
			},
		}
	case 0:
		// Q1-like pricing summary: big lineitem scan + aggregation.
		lo, hi := span(rng, 1, 2500, 0.4, 0.95)
		return &optimizer.QuerySpec{
			First: optimizer.TableTerm{Table: "lineitem", Filters: []optimizer.FilterSpec{
				{Column: "l_shipdate", IsRange: true, Lo: lo, Hi: hi},
			}},
			Group: &optimizer.GroupSpec{
				Cols: []optimizer.ColRef{{Table: "lineitem", Column: "l_returnflag"}},
				Aggs: []optimizer.AggRef{
					{Func: plan.AggSum, Col: optimizer.ColRef{Table: "lineitem", Column: "l_extendedprice"}},
					{Func: plan.AggSum, Col: optimizer.ColRef{Table: "lineitem", Column: "l_quantity"}},
					{Func: plan.AggCount},
				},
			},
		}
	case 1:
		// Orders-lineitem join over a date range, grouped by priority.
		lo, hi := span(rng, 1, 2406, 0.15, 0.7)
		return &optimizer.QuerySpec{
			First: optimizer.TableTerm{Table: "orders", Filters: []optimizer.FilterSpec{
				{Column: "o_orderdate", IsRange: true, Lo: lo, Hi: hi},
			}},
			Joins: []optimizer.JoinTerm{{
				Right:     optimizer.TableTerm{Table: "lineitem"},
				LeftTable: "orders", LeftCol: "o_orderkey", RightCol: "l_orderkey",
			}},
			Group: &optimizer.GroupSpec{
				Cols: []optimizer.ColRef{{Table: "orders", Column: "o_orderpriority"}},
				Aggs: []optimizer.AggRef{{Func: plan.AggCount}},
			},
		}
	case 2:
		// Q3-like: customer segment -> orders -> lineitem.
		seg := 1 + rng.Int63n(5)
		lo, hi := span(rng, 1, 2406, 0.2, 0.8)
		return &optimizer.QuerySpec{
			First: optimizer.TableTerm{Table: "customer", Filters: []optimizer.FilterSpec{
				{Column: "c_mktsegment", Op: expr.Eq, Val: seg},
			}},
			Joins: []optimizer.JoinTerm{
				{Right: optimizer.TableTerm{Table: "orders", Filters: []optimizer.FilterSpec{
					{Column: "o_orderdate", IsRange: true, Lo: lo, Hi: hi},
				}}, LeftTable: "customer", LeftCol: "c_custkey", RightCol: "o_custkey"},
				{Right: optimizer.TableTerm{Table: "lineitem"},
					LeftTable: "orders", LeftCol: "o_orderkey", RightCol: "l_orderkey"},
			},
			Group: &optimizer.GroupSpec{
				Cols: []optimizer.ColRef{{Table: "customer", Column: "c_nationkey"}},
				Aggs: []optimizer.AggRef{
					{Func: plan.AggSum, Col: optimizer.ColRef{Table: "lineitem", Column: "l_extendedprice"}},
				},
			},
		}
	case 3:
		// Part-lineitem join on the skewed FK with a size filter.
		szLo, szHi := span(rng, 1, 50, 0.1, 0.5)
		return &optimizer.QuerySpec{
			First: optimizer.TableTerm{Table: "part", Filters: []optimizer.FilterSpec{
				{Column: "p_size", IsRange: true, Lo: szLo, Hi: szHi},
			}},
			Joins: []optimizer.JoinTerm{{
				Right:     optimizer.TableTerm{Table: "lineitem"},
				LeftTable: "part", LeftCol: "p_partkey", RightCol: "l_partkey",
			}},
			Group: &optimizer.GroupSpec{
				Cols: []optimizer.ColRef{{Table: "part", Column: "p_brand"}},
				Aggs: []optimizer.AggRef{
					{Func: plan.AggSum, Col: optimizer.ColRef{Table: "lineitem", Column: "l_quantity"}},
					{Func: plan.AggCount},
				},
			},
		}
	case 4:
		// Q2-ish: region -> nation -> supplier -> partsupp chain.
		region := 1 + rng.Int63n(5)
		return &optimizer.QuerySpec{
			First: optimizer.TableTerm{Table: "nation", Filters: []optimizer.FilterSpec{
				{Column: "n_regionkey", Op: expr.Eq, Val: region},
			}},
			Joins: []optimizer.JoinTerm{
				{Right: optimizer.TableTerm{Table: "supplier"},
					LeftTable: "nation", LeftCol: "n_nationkey", RightCol: "s_nationkey"},
				{Right: optimizer.TableTerm{Table: "partsupp"},
					LeftTable: "supplier", LeftCol: "s_suppkey", RightCol: "ps_suppkey"},
			},
			Group: &optimizer.GroupSpec{
				Cols: []optimizer.ColRef{{Table: "supplier", Column: "s_suppkey"}},
				Aggs: []optimizer.AggRef{
					{Func: plan.AggMin, Col: optimizer.ColRef{Table: "partsupp", Column: "ps_supplycost"}},
				},
			},
			TopN: 20 + rng.Int63n(80),
		}
	case 5:
		// Customer-orders join with balance filter, ordered Top.
		bal := rng.Int63n(5000)
		return &optimizer.QuerySpec{
			First: optimizer.TableTerm{Table: "customer", Filters: []optimizer.FilterSpec{
				{Column: "c_acctbal", Op: expr.Ge, Val: bal},
			}},
			Joins: []optimizer.JoinTerm{{
				Right:     optimizer.TableTerm{Table: "orders"},
				LeftTable: "customer", LeftCol: "c_custkey", RightCol: "o_custkey",
			}},
			Group: &optimizer.GroupSpec{
				Cols: []optimizer.ColRef{{Table: "customer", Column: "c_custkey"}},
				Aggs: []optimizer.AggRef{
					{Func: plan.AggSum, Col: optimizer.ColRef{Table: "orders", Column: "o_totalprice"}},
				},
			},
			OrderBy: &optimizer.ColRef{Table: "customer", Column: "c_custkey"},
			TopN:    50 + rng.Int63n(200),
		}
	case 6:
		// Q6-like selective lineitem scan.
		dLo, dHi := span(rng, 0, 10, 0.2, 0.5)
		qLo, qHi := span(rng, 1, 50, 0.2, 0.6)
		return &optimizer.QuerySpec{
			First: optimizer.TableTerm{Table: "lineitem", Filters: []optimizer.FilterSpec{
				{Column: "l_discount", IsRange: true, Lo: dLo, Hi: dHi},
				{Column: "l_quantity", IsRange: true, Lo: qLo, Hi: qHi},
			}},
			Group: &optimizer.GroupSpec{
				Cols: []optimizer.ColRef{{Table: "lineitem", Column: "l_returnflag"}},
				Aggs: []optimizer.AggRef{
					{Func: plan.AggSum, Col: optimizer.ColRef{Table: "lineitem", Column: "l_extendedprice"}},
				},
			},
		}
	case 7:
		// Partsupp-part FK-FK flavoured join grouped by type.
		costLo, costHi := span(rng, 1, 1000, 0.2, 0.7)
		return &optimizer.QuerySpec{
			First: optimizer.TableTerm{Table: "partsupp", Filters: []optimizer.FilterSpec{
				{Column: "ps_supplycost", IsRange: true, Lo: costLo, Hi: costHi},
			}},
			Joins: []optimizer.JoinTerm{{
				Right:     optimizer.TableTerm{Table: "part"},
				LeftTable: "partsupp", LeftCol: "ps_partkey", RightCol: "p_partkey",
			}},
			Group: &optimizer.GroupSpec{
				Cols: []optimizer.ColRef{{Table: "part", Column: "p_type"}},
				Aggs: []optimizer.AggRef{
					{Func: plan.AggSum, Col: optimizer.ColRef{Table: "partsupp", Column: "ps_availqty"}},
				},
			},
		}
	default:
		// 5-way chain: nation -> customer -> orders -> lineitem (-> part).
		region := 1 + rng.Int63n(5)
		lo, hi := span(rng, 1, 2406, 0.3, 0.9)
		q := &optimizer.QuerySpec{
			First: optimizer.TableTerm{Table: "nation", Filters: []optimizer.FilterSpec{
				{Column: "n_regionkey", Op: expr.Eq, Val: region},
			}},
			Joins: []optimizer.JoinTerm{
				{Right: optimizer.TableTerm{Table: "customer"},
					LeftTable: "nation", LeftCol: "n_nationkey", RightCol: "c_nationkey"},
				{Right: optimizer.TableTerm{Table: "orders", Filters: []optimizer.FilterSpec{
					{Column: "o_orderdate", IsRange: true, Lo: lo, Hi: hi},
				}}, LeftTable: "customer", LeftCol: "c_custkey", RightCol: "o_custkey"},
				{Right: optimizer.TableTerm{Table: "lineitem"},
					LeftTable: "orders", LeftCol: "o_orderkey", RightCol: "l_orderkey"},
			},
			Group: &optimizer.GroupSpec{
				Cols: []optimizer.ColRef{{Table: "nation", Column: "n_name"}},
				Aggs: []optimizer.AggRef{
					{Func: plan.AggSum, Col: optimizer.ColRef{Table: "lineitem", Column: "l_extendedprice"}},
					{Func: plan.AggCount},
				},
			},
		}
		if rng.Intn(2) == 0 {
			q.Joins = append(q.Joins, optimizer.JoinTerm{
				Right:     optimizer.TableTerm{Table: "part"},
				LeftTable: "lineitem", LeftCol: "l_partkey", RightCol: "p_partkey",
			})
		}
		return q
	}
}
