package workload

import (
	"math/rand"

	"progressest/internal/expr"
	"progressest/internal/optimizer"
	"progressest/internal/plan"
	"progressest/internal/storage"
)

// genReal1Query samples one query shaped like the paper's "Real-1" Sales
// reporting workload: 5-8 table joins over the sales/returns facts with
// correlated-value filters.
func genReal1Query(rng *rand.Rand, db *storage.Database) *optimizer.QuerySpec {
	nDates := int64(db.MustTable("dates").NumRows())
	switch rng.Intn(6) {
	case 5:
		// Nested sub-query (the paper describes Real-1 as featuring
		// these): customers of a segment who EXISTS-returned something,
		// joined to their sales.
		seg := 1 + rng.Int63n(8)
		reason := 1 + rng.Int63n(10)
		return &optimizer.QuerySpec{
			First: optimizer.TableTerm{Table: "customers", Filters: []optimizer.FilterSpec{
				{Column: "cu_segment", Op: expr.Eq, Val: seg},
			}},
			Exists: []optimizer.JoinTerm{{
				Right: optimizer.TableTerm{Table: "returns", Filters: []optimizer.FilterSpec{
					{Column: "re_reason", Op: expr.Le, Val: reason},
				}},
				LeftTable: "customers", LeftCol: "cu_id", RightCol: "re_customer",
			}},
			Joins: []optimizer.JoinTerm{{
				Right:     optimizer.TableTerm{Table: "sales"},
				LeftTable: "customers", LeftCol: "cu_id", RightCol: "sa_customer",
			}},
			Group: &optimizer.GroupSpec{
				Cols: []optimizer.ColRef{{Table: "customers", Column: "cu_region"}},
				Aggs: []optimizer.AggRef{
					{Func: plan.AggSum, Col: optimizer.ColRef{Table: "sales", Column: "sa_amount"}},
				},
			},
		}
	case 0:
		// Sales by product category across regions: 5-way.
		catLo, catHi := span(rng, 1, 40, 0.1, 0.4)
		lo, hi := span(rng, 1, nDates, 0.2, 0.7)
		return &optimizer.QuerySpec{
			First: optimizer.TableTerm{Table: "sales", Filters: []optimizer.FilterSpec{
				{Column: "sa_date", IsRange: true, Lo: lo, Hi: hi},
			}},
			Joins: []optimizer.JoinTerm{
				{Right: optimizer.TableTerm{Table: "products", Filters: []optimizer.FilterSpec{
					{Column: "pr_category", IsRange: true, Lo: catLo, Hi: catHi},
				}}, LeftTable: "sales", LeftCol: "sa_product", RightCol: "pr_id"},
				{Right: optimizer.TableTerm{Table: "stores"},
					LeftTable: "sales", LeftCol: "sa_store", RightCol: "st_id"},
				{Right: optimizer.TableTerm{Table: "customers"},
					LeftTable: "sales", LeftCol: "sa_customer", RightCol: "cu_id"},
			},
			Group: &optimizer.GroupSpec{
				Cols: []optimizer.ColRef{{Table: "stores", Column: "st_region"}},
				Aggs: []optimizer.AggRef{
					{Func: plan.AggSum, Col: optimizer.ColRef{Table: "sales", Column: "sa_amount"}},
					{Func: plan.AggCount},
				},
			},
		}
	case 1:
		// High-value sales: correlated amount filter (independence errors).
		amt := 5000 + rng.Int63n(50000)
		return &optimizer.QuerySpec{
			First: optimizer.TableTerm{Table: "sales", Filters: []optimizer.FilterSpec{
				{Column: "sa_amount", Op: expr.Ge, Val: amt},
			}},
			Joins: []optimizer.JoinTerm{
				{Right: optimizer.TableTerm{Table: "products"},
					LeftTable: "sales", LeftCol: "sa_product", RightCol: "pr_id"},
				{Right: optimizer.TableTerm{Table: "employees"},
					LeftTable: "sales", LeftCol: "sa_employee", RightCol: "em_id"},
				{Right: optimizer.TableTerm{Table: "stores"},
					LeftTable: "employees", LeftCol: "em_store", RightCol: "st_id"},
			},
			Group: &optimizer.GroupSpec{
				Cols: []optimizer.ColRef{{Table: "products", Column: "pr_category"}},
				Aggs: []optimizer.AggRef{
					{Func: plan.AggSum, Col: optimizer.ColRef{Table: "sales", Column: "sa_amount"}},
				},
			},
		}
	case 2:
		// Returns analysis: returns -> sales -> products -> customers.
		reason := 1 + rng.Int63n(10)
		return &optimizer.QuerySpec{
			First: optimizer.TableTerm{Table: "returns", Filters: []optimizer.FilterSpec{
				{Column: "re_reason", Op: expr.Eq, Val: reason},
			}},
			Joins: []optimizer.JoinTerm{
				{Right: optimizer.TableTerm{Table: "sales"},
					LeftTable: "returns", LeftCol: "re_sale", RightCol: "sa_id"},
				{Right: optimizer.TableTerm{Table: "products"},
					LeftTable: "sales", LeftCol: "sa_product", RightCol: "pr_id"},
				{Right: optimizer.TableTerm{Table: "customers"},
					LeftTable: "sales", LeftCol: "sa_customer", RightCol: "cu_id"},
			},
			Group: &optimizer.GroupSpec{
				Cols: []optimizer.ColRef{{Table: "customers", Column: "cu_segment"}},
				Aggs: []optimizer.AggRef{{Func: plan.AggCount}},
			},
		}
	case 3:
		// Segment report over a date window, 6-way.
		seg := 1 + rng.Int63n(8)
		lo, hi := span(rng, 1, nDates, 0.3, 0.8)
		return &optimizer.QuerySpec{
			First: optimizer.TableTerm{Table: "customers", Filters: []optimizer.FilterSpec{
				{Column: "cu_segment", Op: expr.Eq, Val: seg},
			}},
			Joins: []optimizer.JoinTerm{
				{Right: optimizer.TableTerm{Table: "sales", Filters: []optimizer.FilterSpec{
					{Column: "sa_date", IsRange: true, Lo: lo, Hi: hi},
				}}, LeftTable: "customers", LeftCol: "cu_id", RightCol: "sa_customer"},
				{Right: optimizer.TableTerm{Table: "products"},
					LeftTable: "sales", LeftCol: "sa_product", RightCol: "pr_id"},
				{Right: optimizer.TableTerm{Table: "stores"},
					LeftTable: "sales", LeftCol: "sa_store", RightCol: "st_id"},
				{Right: optimizer.TableTerm{Table: "dates"},
					LeftTable: "sales", LeftCol: "sa_date", RightCol: "dt_id"},
			},
			Group: &optimizer.GroupSpec{
				Cols: []optimizer.ColRef{{Table: "dates", Column: "dt_quarter"}},
				Aggs: []optimizer.AggRef{
					{Func: plan.AggSum, Col: optimizer.ColRef{Table: "sales", Column: "sa_qty"}},
				},
			},
		}
	default:
		// Store-size drill-down with Top.
		sz := 1 + rng.Int63n(5)
		return &optimizer.QuerySpec{
			First: optimizer.TableTerm{Table: "stores", Filters: []optimizer.FilterSpec{
				{Column: "st_size", Op: expr.Eq, Val: sz},
			}},
			Joins: []optimizer.JoinTerm{
				{Right: optimizer.TableTerm{Table: "sales"},
					LeftTable: "stores", LeftCol: "st_id", RightCol: "sa_store"},
				{Right: optimizer.TableTerm{Table: "products"},
					LeftTable: "sales", LeftCol: "sa_product", RightCol: "pr_id"},
			},
			Group: &optimizer.GroupSpec{
				Cols: []optimizer.ColRef{{Table: "products", Column: "pr_supplier"}},
				Aggs: []optimizer.AggRef{
					{Func: plan.AggSum, Col: optimizer.ColRef{Table: "sales", Column: "sa_amount"}},
				},
			},
			OrderBy: &optimizer.ColRef{Table: "products", Column: "pr_supplier"},
			TopN:    20 + rng.Int63n(100),
		}
	}
}

// genReal2Query samples one query shaped like the paper's "Real-2"
// workload: deep snowflake joins, typically around 12 tables. Queries
// start either from the fact table (scan-heavy plans) or from a filtered
// dimension (index-nested-loop-heavy plans), so the workload exercises a
// broad operator mix despite its fixed schema.
func genReal2Query(rng *rand.Rand, db *storage.Database) *optimizer.QuerySpec {
	nDates := int64(db.MustTable("dates2").NumRows())
	nMonths := int64(db.MustTable("months").NumRows())

	accountArm := []optimizer.JoinTerm{
		{Right: optimizer.TableTerm{Table: "accounts"},
			LeftTable: "transactions", LeftCol: "tx_account", RightCol: "ac_id"},
		{Right: optimizer.TableTerm{Table: "branches"},
			LeftTable: "accounts", LeftCol: "ac_branch", RightCol: "br_id"},
		{Right: optimizer.TableTerm{Table: "cities"},
			LeftTable: "branches", LeftCol: "br_city", RightCol: "ci_id"},
		{Right: optimizer.TableTerm{Table: "regions2"},
			LeftTable: "cities", LeftCol: "ci_region", RightCol: "rg_id"},
	}
	productArm := []optimizer.JoinTerm{
		{Right: optimizer.TableTerm{Table: "products2"},
			LeftTable: "transactions", LeftCol: "tx_product", RightCol: "pd_id"},
		{Right: optimizer.TableTerm{Table: "categories"},
			LeftTable: "products2", LeftCol: "pd_category", RightCol: "ca_id"},
		{Right: optimizer.TableTerm{Table: "departments"},
			LeftTable: "categories", LeftCol: "ca_dept", RightCol: "dp_id"},
	}
	dateArm := []optimizer.JoinTerm{
		{Right: optimizer.TableTerm{Table: "dates2"},
			LeftTable: "transactions", LeftCol: "tx_date", RightCol: "dt_id"},
		{Right: optimizer.TableTerm{Table: "months"},
			LeftTable: "dates2", LeftCol: "dt_month", RightCol: "mo_id"},
	}

	groupChoices := []optimizer.ColRef{
		{Table: "regions2", Column: "rg_zone"},
		{Table: "departments", Column: "dp_division"},
		{Table: "branches", Column: "br_tier"},
		{Table: "categories", Column: "ca_id"},
	}
	aggs := []optimizer.AggRef{
		{Func: plan.AggSum, Col: optimizer.ColRef{Table: "transactions", Column: "tx_amount"}},
		{Func: plan.AggCount},
	}

	switch rng.Intn(4) {
	case 0:
		// Fact-first with a date filter: full snowflake.
		lo, hi := span(rng, 1, nDates, 0.2, 0.7)
		joins := append(append([]optimizer.JoinTerm{}, accountArm...), productArm...)
		if rng.Intn(2) == 0 {
			joins = append(joins, optimizer.JoinTerm{
				Right:     optimizer.TableTerm{Table: "channels"},
				LeftTable: "transactions", LeftCol: "tx_channel", RightCol: "ch_id"})
		}
		if rng.Intn(2) == 0 {
			joins = append(joins, optimizer.JoinTerm{
				Right:     optimizer.TableTerm{Table: "currencies"},
				LeftTable: "transactions", LeftCol: "tx_currency", RightCol: "cy_id"})
		}
		if rng.Intn(2) == 0 {
			joins = append(joins, dateArm...)
		}
		return &optimizer.QuerySpec{
			First: optimizer.TableTerm{Table: "transactions", Filters: []optimizer.FilterSpec{
				{Column: "tx_date", IsRange: true, Lo: lo, Hi: hi},
			}},
			Joins: joins,
			Group: &optimizer.GroupSpec{Cols: []optimizer.ColRef{pick(rng, groupChoices)}, Aggs: aggs},
		}
	case 1:
		// Fact-first with a correlated amount filter (independence errors).
		amt := 1000 + rng.Int63n(100000)
		joins := append(append([]optimizer.JoinTerm{}, productArm...), accountArm...)
		return &optimizer.QuerySpec{
			First: optimizer.TableTerm{Table: "transactions", Filters: []optimizer.FilterSpec{
				{Column: "tx_amount", Op: expr.Ge, Val: amt},
			}},
			Joins: joins,
			Group: &optimizer.GroupSpec{Cols: []optimizer.ColRef{pick(rng, groupChoices)}, Aggs: aggs},
		}
	case 2:
		// Dimension-first: filtered accounts into the fact table (drives
		// index nested loops under tuned designs), then product snowflake.
		acType := 1 + rng.Int63n(8)
		moLo, moHi := span(rng, 1, nMonths, 0.1, 0.5)
		return &optimizer.QuerySpec{
			First: optimizer.TableTerm{Table: "accounts", Filters: []optimizer.FilterSpec{
				{Column: "ac_type", Op: expr.Eq, Val: acType},
				{Column: "ac_open_month", IsRange: true, Lo: moLo, Hi: moHi},
			}},
			Joins: append([]optimizer.JoinTerm{
				{Right: optimizer.TableTerm{Table: "transactions"},
					LeftTable: "accounts", LeftCol: "ac_id", RightCol: "tx_account"},
			}, productArm...),
			Group: &optimizer.GroupSpec{
				Cols: []optimizer.ColRef{{Table: "departments", Column: "dp_division"}},
				Aggs: aggs,
			},
		}
	default:
		// Product-first: filtered products into the fact, then accounts
		// snowflake and optional channel arm (~10-12 way).
		prLo, prHi := span(rng, 50, 80000, 0.1, 0.4)
		joins := append([]optimizer.JoinTerm{
			{Right: optimizer.TableTerm{Table: "categories"},
				LeftTable: "products2", LeftCol: "pd_category", RightCol: "ca_id"},
			{Right: optimizer.TableTerm{Table: "departments"},
				LeftTable: "categories", LeftCol: "ca_dept", RightCol: "dp_id"},
			{Right: optimizer.TableTerm{Table: "transactions"},
				LeftTable: "products2", LeftCol: "pd_id", RightCol: "tx_product"},
		}, accountArm...)
		if rng.Intn(2) == 0 {
			joins = append(joins, optimizer.JoinTerm{
				Right:     optimizer.TableTerm{Table: "channels"},
				LeftTable: "transactions", LeftCol: "tx_channel", RightCol: "ch_id"})
		}
		return &optimizer.QuerySpec{
			First: optimizer.TableTerm{Table: "products2", Filters: []optimizer.FilterSpec{
				{Column: "pd_price", IsRange: true, Lo: prLo, Hi: prHi},
			}},
			Joins: joins,
			Group: &optimizer.GroupSpec{
				Cols: []optimizer.ColRef{{Table: "regions2", Column: "rg_zone"}},
				Aggs: aggs,
			},
		}
	}
}
