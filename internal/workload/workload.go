// Package workload generates and runs the six evaluation workloads of
// Section 6: randomly parameterised queries from template families over
// the TPC-H-like, TPC-DS-like and two real-life-like databases, executed
// under configurable physical designs, data sizes and skew factors. The
// runner turns every executed pipeline into a labelled selection.Example
// (features + per-estimator errors), the unit of the paper's evaluation.
package workload

import (
	"fmt"
	"math/rand"

	"progressest/internal/catalog"
	"progressest/internal/datagen"
	"progressest/internal/optimizer"
	"progressest/internal/storage"
)

// Spec configures one workload instance.
type Spec struct {
	// Name tags examples for leave-one-workload-out splits.
	Name string
	// Kind picks the database family and its query templates.
	Kind datagen.DatasetKind
	// Queries is the number of queries to generate.
	Queries int
	// Scale and Zipf parameterise the database (Section 6 varies both).
	Scale float64
	Zipf  float64
	// Design is the physical-design level.
	Design catalog.DesignLevel
	// Seed drives data generation and query parameter binding.
	Seed int64
}

// Workload is a generated database plus its query specs, ready to run.
type Workload struct {
	Spec    Spec
	DB      *storage.Database
	Stats   *optimizer.Stats
	Planner *optimizer.Planner
	Queries []*optimizer.QuerySpec
}

// Build generates the database, applies the physical design, computes
// optimizer statistics, and binds query parameters.
func Build(spec Spec) (*Workload, error) {
	if spec.Scale <= 0 {
		spec.Scale = 0.15
	}
	if spec.Queries <= 0 {
		spec.Queries = 100
	}
	db := datagen.Generate(spec.Kind, datagen.Params{
		Scale: spec.Scale, Zipf: spec.Zipf, Seed: spec.Seed,
	})
	design, ok := datagen.Designs(spec.Kind)[spec.Design]
	if !ok {
		return nil, fmt.Errorf("workload: no design level %v for %v", spec.Design, spec.Kind)
	}
	if err := db.ApplyDesign(design); err != nil {
		return nil, err
	}
	stats := optimizer.BuildStats(db)
	w := &Workload{
		Spec:    spec,
		DB:      db,
		Stats:   stats,
		Planner: optimizer.NewPlanner(db, stats),
	}
	rng := rand.New(rand.NewSource(spec.Seed ^ 0x5ca1ab1e))
	gen := templatesFor(spec.Kind)
	for i := 0; i < spec.Queries; i++ {
		w.Queries = append(w.Queries, gen(rng, db))
	}
	return w, nil
}

// QueryFamily returns the routing family of query i: queries driven by
// the same base table form one family. The driver table dominates a
// query's pipeline shapes and counter profile (which estimators it favors
// — see the template commentary in templates_*.go), so it is the natural
// granularity for per-family selection models; examples harvested from a
// query carry its family, and the serving layer routes queries to their
// family's model.
func (w *Workload) QueryFamily(i int) string {
	return w.Queries[i].First.Table
}

// Replica returns a lightweight execution replica of the workload for the
// sharded engine: it shares the immutable database, statistics and bound
// query specs with the original, but owns its planner instance, so
// per-replica planner tuning never bleeds across shards.
func (w *Workload) Replica() *Workload {
	cp := *w
	cp.Planner = optimizer.NewPlanner(cp.DB, cp.Stats)
	return &cp
}

// queryGen binds one random query spec.
type queryGen func(rng *rand.Rand, db *storage.Database) *optimizer.QuerySpec

// templatesFor returns the template sampler of a dataset kind.
func templatesFor(kind datagen.DatasetKind) queryGen {
	switch kind {
	case datagen.TPCHLike:
		return genTPCHQuery
	case datagen.TPCDSLike:
		return genTPCDSQuery
	case datagen.Real1Like:
		return genReal1Query
	case datagen.Real2Like:
		return genReal2Query
	default:
		panic("workload: unknown dataset kind")
	}
}

// pick returns a uniformly random element.
func pick[T any](rng *rand.Rand, xs []T) T { return xs[rng.Intn(len(xs))] }

// span returns a random [lo,hi] sub-range of [min,max] whose width is a
// random fraction between fracLo and fracHi of the domain.
func span(rng *rand.Rand, min, max int64, fracLo, fracHi float64) (int64, int64) {
	domain := max - min + 1
	frac := fracLo + rng.Float64()*(fracHi-fracLo)
	width := int64(float64(domain) * frac)
	if width < 1 {
		width = 1
	}
	lo := min + rng.Int63n(domain-width+1)
	return lo, lo + width - 1
}
