package workload

import (
	"math/rand"

	"progressest/internal/expr"
	"progressest/internal/optimizer"
	"progressest/internal/plan"
	"progressest/internal/storage"
)

// genTPCDSQuery samples one TPC-DS-like star-join query over the
// store_sales fact table.
func genTPCDSQuery(rng *rand.Rand, db *storage.Database) *optimizer.QuerySpec {
	nDates := int64(db.MustTable("date_dim").NumRows())
	switch rng.Intn(6) {
	case 0:
		// Sales by item category in a date window.
		lo, hi := span(rng, 1, nDates, 0.1, 0.5)
		cat := 1 + rng.Int63n(10)
		return &optimizer.QuerySpec{
			First: optimizer.TableTerm{Table: "store_sales", Filters: []optimizer.FilterSpec{
				{Column: "ss_sold_date_sk", IsRange: true, Lo: lo, Hi: hi},
			}},
			Joins: []optimizer.JoinTerm{{
				Right: optimizer.TableTerm{Table: "item", Filters: []optimizer.FilterSpec{
					{Column: "i_category", Op: expr.Eq, Val: cat},
				}},
				LeftTable: "store_sales", LeftCol: "ss_item_sk", RightCol: "i_item_sk",
			}},
			Group: &optimizer.GroupSpec{
				Cols: []optimizer.ColRef{{Table: "item", Column: "i_brand"}},
				Aggs: []optimizer.AggRef{
					{Func: plan.AggSum, Col: optimizer.ColRef{Table: "store_sales", Column: "ss_sales_price"}},
				},
			},
		}
	case 1:
		// Customer demographics cut.
		byLo, byHi := span(rng, 1930, 2005, 0.1, 0.4)
		return &optimizer.QuerySpec{
			First: optimizer.TableTerm{Table: "customer", Filters: []optimizer.FilterSpec{
				{Column: "c_birth_year", IsRange: true, Lo: byLo, Hi: byHi},
			}},
			Joins: []optimizer.JoinTerm{{
				Right:     optimizer.TableTerm{Table: "store_sales"},
				LeftTable: "customer", LeftCol: "c_customer_sk", RightCol: "ss_customer_sk",
			}},
			Group: &optimizer.GroupSpec{
				Cols: []optimizer.ColRef{{Table: "customer", Column: "c_nation"}},
				Aggs: []optimizer.AggRef{
					{Func: plan.AggSum, Col: optimizer.ColRef{Table: "store_sales", Column: "ss_quantity"}},
					{Func: plan.AggCount},
				},
			},
		}
	case 2:
		// Store performance by state.
		qLo, qHi := span(rng, 1, 100, 0.2, 0.7)
		return &optimizer.QuerySpec{
			First: optimizer.TableTerm{Table: "store_sales", Filters: []optimizer.FilterSpec{
				{Column: "ss_quantity", IsRange: true, Lo: qLo, Hi: qHi},
			}},
			Joins: []optimizer.JoinTerm{{
				Right:     optimizer.TableTerm{Table: "store"},
				LeftTable: "store_sales", LeftCol: "ss_store_sk", RightCol: "s_store_sk",
			}},
			Group: &optimizer.GroupSpec{
				Cols: []optimizer.ColRef{{Table: "store", Column: "s_state"}},
				Aggs: []optimizer.AggRef{
					{Func: plan.AggSum, Col: optimizer.ColRef{Table: "store_sales", Column: "ss_sales_price"}},
				},
			},
		}
	case 3:
		// Promotion effectiveness: 3-way star.
		ch := 1 + rng.Int63n(4)
		lo, hi := span(rng, 1, nDates, 0.2, 0.6)
		return &optimizer.QuerySpec{
			First: optimizer.TableTerm{Table: "store_sales", Filters: []optimizer.FilterSpec{
				{Column: "ss_sold_date_sk", IsRange: true, Lo: lo, Hi: hi},
			}},
			Joins: []optimizer.JoinTerm{
				{Right: optimizer.TableTerm{Table: "promotion", Filters: []optimizer.FilterSpec{
					{Column: "p_channel", Op: expr.Eq, Val: ch},
				}}, LeftTable: "store_sales", LeftCol: "ss_promo_sk", RightCol: "p_promo_sk"},
				{Right: optimizer.TableTerm{Table: "item"},
					LeftTable: "store_sales", LeftCol: "ss_item_sk", RightCol: "i_item_sk"},
			},
			Group: &optimizer.GroupSpec{
				Cols: []optimizer.ColRef{{Table: "item", Column: "i_category"}},
				Aggs: []optimizer.AggRef{
					{Func: plan.AggSum, Col: optimizer.ColRef{Table: "store_sales", Column: "ss_sales_price"}},
					{Func: plan.AggCount},
				},
			},
		}
	case 4:
		// Date-dimension driven: year/month report.
		year := 1998 + rng.Int63n(3)
		return &optimizer.QuerySpec{
			First: optimizer.TableTerm{Table: "date_dim", Filters: []optimizer.FilterSpec{
				{Column: "d_year", Op: expr.Eq, Val: year},
			}},
			Joins: []optimizer.JoinTerm{{
				Right:     optimizer.TableTerm{Table: "store_sales"},
				LeftTable: "date_dim", LeftCol: "d_date_sk", RightCol: "ss_sold_date_sk",
			}},
			Group: &optimizer.GroupSpec{
				Cols: []optimizer.ColRef{{Table: "date_dim", Column: "d_moy"}},
				Aggs: []optimizer.AggRef{
					{Func: plan.AggSum, Col: optimizer.ColRef{Table: "store_sales", Column: "ss_sales_price"}},
				},
			},
		}
	default:
		// 4-way star: date + item + customer.
		lo, hi := span(rng, 1, nDates, 0.1, 0.4)
		catLo, catHi := span(rng, 1, 10, 0.2, 0.6)
		return &optimizer.QuerySpec{
			First: optimizer.TableTerm{Table: "store_sales", Filters: []optimizer.FilterSpec{
				{Column: "ss_sold_date_sk", IsRange: true, Lo: lo, Hi: hi},
			}},
			Joins: []optimizer.JoinTerm{
				{Right: optimizer.TableTerm{Table: "item", Filters: []optimizer.FilterSpec{
					{Column: "i_category", IsRange: true, Lo: catLo, Hi: catHi},
				}}, LeftTable: "store_sales", LeftCol: "ss_item_sk", RightCol: "i_item_sk"},
				{Right: optimizer.TableTerm{Table: "customer"},
					LeftTable: "store_sales", LeftCol: "ss_customer_sk", RightCol: "c_customer_sk"},
			},
			Group: &optimizer.GroupSpec{
				Cols: []optimizer.ColRef{
					{Table: "item", Column: "i_category"},
					{Table: "customer", Column: "c_nation"},
				},
				Aggs: []optimizer.AggRef{{Func: plan.AggCount}},
			},
		}
	}
}
