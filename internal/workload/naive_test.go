package workload

import (
	"testing"

	"progressest/internal/catalog"
	"progressest/internal/datagen"
	"progressest/internal/exec"
	"progressest/internal/expr"
	"progressest/internal/optimizer"
	"progressest/internal/storage"
)

// naiveFilter evaluates one FilterSpec against a base-table row.
func naiveFilter(f *optimizer.FilterSpec, v int64) bool {
	if f.IsRange {
		return v >= f.Lo && v <= f.Hi
	}
	switch f.Op {
	case expr.Eq:
		return v == f.Val
	case expr.Ne:
		return v != f.Val
	case expr.Lt:
		return v < f.Val
	case expr.Le:
		return v <= f.Val
	case expr.Gt:
		return v > f.Val
	case expr.Ge:
		return v >= f.Val
	default:
		return false
	}
}

// naiveRows returns a table's rows surviving the term's filters.
func naiveRows(db *storage.Database, term *optimizer.TableTerm) [][]int64 {
	tbl := db.MustTable(term.Table)
	var out [][]int64
	for _, r := range tbl.Rows {
		keep := true
		for i := range term.Filters {
			f := &term.Filters[i]
			col := tbl.Meta.ColumnIndex(f.Column)
			if !naiveFilter(f, r[col]) {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, r)
		}
	}
	return out
}

// naiveResultCount evaluates a QuerySpec by brute force and returns the
// final result cardinality (group count, Top-truncated).
func naiveResultCount(db *storage.Database, q *optimizer.QuerySpec) int64 {
	// Current relation: rows are concatenations, with a positional schema
	// of (table, column) pairs.
	type colRef struct{ table, column string }
	var schema []colRef
	addTable := func(name string) {
		for _, c := range db.MustTable(name).Meta.Columns {
			schema = append(schema, colRef{name, c.Name})
		}
	}
	pos := func(table, column string) int {
		for i, c := range schema {
			if c.table == table && c.column == column {
				return i
			}
		}
		panic("naive: column not found " + table + "." + column)
	}

	rows := naiveRows(db, &q.First)
	addTable(q.First.Table)
	for ji := range q.Joins {
		j := &q.Joins[ji]
		leftPos := pos(j.LeftTable, j.LeftCol)
		rightTbl := db.MustTable(j.Right.Table)
		rightCol := rightTbl.Meta.ColumnIndex(j.RightCol)
		ht := make(map[int64][][]int64)
		for _, r := range naiveRows(db, &j.Right) {
			ht[r[rightCol]] = append(ht[r[rightCol]], r)
		}
		var joined [][]int64
		for _, l := range rows {
			for _, r := range ht[l[leftPos]] {
				row := make([]int64, 0, len(l)+len(r))
				row = append(row, l...)
				row = append(row, r...)
				joined = append(joined, row)
			}
		}
		rows = joined
		addTable(j.Right.Table)
	}

	// Semi joins (EXISTS): keep rows whose key appears in the filtered
	// right table.
	for ei := range q.Exists {
		j := &q.Exists[ei]
		leftPos := pos(j.LeftTable, j.LeftCol)
		rightTbl := db.MustTable(j.Right.Table)
		rightCol := rightTbl.Meta.ColumnIndex(j.RightCol)
		keys := make(map[int64]bool)
		for _, r := range naiveRows(db, &j.Right) {
			keys[r[rightCol]] = true
		}
		var kept [][]int64
		for _, l := range rows {
			if keys[l[leftPos]] {
				kept = append(kept, l)
			}
		}
		rows = kept
	}

	var count int64
	if q.Group != nil {
		groups := make(map[[2]int64]bool)
		var cols [2]int
		for i, c := range q.Group.Cols {
			cols[i] = pos(c.Table, c.Column)
		}
		for _, r := range rows {
			var key [2]int64
			for i := range q.Group.Cols {
				key[i] = r[cols[i]]
			}
			groups[key] = true
		}
		count = int64(len(groups))
	} else {
		count = int64(len(rows))
	}
	if q.TopN > 0 && count > q.TopN {
		count = q.TopN
	}
	return count
}

// TestEngineMatchesNaiveEvaluationProperty executes randomly generated
// queries from every template family under every physical design and
// checks the engine's result cardinality against brute-force evaluation —
// an end-to-end correctness property over the planner + all operators.
func TestEngineMatchesNaiveEvaluationProperty(t *testing.T) {
	for _, kind := range []datagen.DatasetKind{
		datagen.TPCHLike, datagen.TPCDSLike, datagen.Real1Like, datagen.Real2Like,
	} {
		for _, lvl := range []catalog.DesignLevel{
			catalog.Untuned, catalog.PartiallyTuned, catalog.FullyTuned,
		} {
			w, err := Build(Spec{
				Name: "prop", Kind: kind, Queries: 15,
				Scale: 0.05, Zipf: 1, Design: lvl, Seed: 900 + int64(lvl),
			})
			if err != nil {
				t.Fatal(err)
			}
			for qi, q := range w.Queries {
				pl, err := w.Planner.Plan(q)
				if err != nil {
					t.Fatalf("%v/%v query %d: %v", kind, lvl, qi, err)
				}
				tr := exec.Run(w.DB, pl, exec.Options{})
				got := tr.N[pl.Root.ID]
				want := naiveResultCount(w.DB, q)
				if got != want {
					t.Errorf("%v/%v query %d: engine returned %d rows, naive %d\nquery: %s\nplan:\n%s",
						kind, lvl, qi, got, want, q, pl)
				}
			}
		}
	}
}

// TestEngineMatchesNaiveWithSpills re-checks a subset under severe memory
// pressure: spilling must never change results.
func TestEngineMatchesNaiveWithSpills(t *testing.T) {
	w, err := Build(Spec{
		Name: "spill", Kind: datagen.TPCHLike, Queries: 10,
		Scale: 0.05, Zipf: 1.5, Design: catalog.Untuned, Seed: 901,
	})
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range w.Queries {
		pl, err := w.Planner.Plan(q)
		if err != nil {
			t.Fatal(err)
		}
		tr := exec.Run(w.DB, pl, exec.Options{MemBudgetRows: 50})
		got := tr.N[pl.Root.ID]
		want := naiveResultCount(w.DB, q)
		if got != want {
			t.Errorf("query %d under spills: engine %d rows, naive %d", qi, got, want)
		}
	}
}

// TestEmptyResultQueries injects filters that eliminate all rows: the
// engine must terminate cleanly with zero-output pipelines.
func TestEmptyResultQueries(t *testing.T) {
	db := datagen.GenTPCH(datagen.Params{Scale: 0.05, Zipf: 0, Seed: 902})
	if err := db.ApplyDesign(datagen.Designs(datagen.TPCHLike)[catalog.PartiallyTuned]); err != nil {
		t.Fatal(err)
	}
	planner := optimizer.NewPlanner(db, optimizer.BuildStats(db))
	spec := &optimizer.QuerySpec{
		First: optimizer.TableTerm{Table: "orders", Filters: []optimizer.FilterSpec{
			{Column: "o_orderdate", IsRange: true, Lo: -100, Hi: -1}, // impossible
		}},
		Joins: []optimizer.JoinTerm{{
			Right:     optimizer.TableTerm{Table: "lineitem"},
			LeftTable: "orders", LeftCol: "o_orderkey", RightCol: "l_orderkey",
		}},
	}
	pl, err := planner.Plan(spec)
	if err != nil {
		t.Fatal(err)
	}
	tr := exec.Run(db, pl, exec.Options{})
	if tr.N[pl.Root.ID] != 0 {
		t.Errorf("impossible filter produced %d rows", tr.N[pl.Root.ID])
	}
	if tr.TotalTime <= 0 {
		t.Error("even an empty query consumes time")
	}
}
