package workload

import (
	"reflect"
	"testing"

	"progressest/internal/datagen"
)

// TestRunParallelMatchesSequential proves the parallel harvest is a pure
// speedup: with the memory-contention budgets drawn up front in query
// order, fanning the queries across workers yields exactly the examples —
// same values, same order — the sequential runner produces.
func TestRunParallelMatchesSequential(t *testing.T) {
	w, err := Build(Spec{
		Name: "tpch", Kind: datagen.TPCHLike, Queries: 10, Scale: 0.08, Zipf: 1, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := RunOptions{Seed: 4}
	seq, err := w.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	par, err := w.RunParallel(opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Examples) != len(seq.Examples) {
		t.Fatalf("parallel %d examples, sequential %d", len(par.Examples), len(seq.Examples))
	}
	if len(seq.Examples) == 0 {
		t.Fatal("no examples harvested")
	}
	for i := range seq.Examples {
		if !reflect.DeepEqual(par.Examples[i], seq.Examples[i]) {
			t.Fatalf("example %d diverges between parallel and sequential", i)
		}
	}
	if par.NumQueries != seq.NumQueries || par.NumPipelines != seq.NumPipelines {
		t.Fatalf("counts diverge: parallel %d/%d sequential %d/%d",
			par.NumQueries, par.NumPipelines, seq.NumQueries, seq.NumPipelines)
	}
	if !reflect.DeepEqual(par.OpPipelineShare, seq.OpPipelineShare) {
		t.Fatal("operator shares diverge")
	}
}
