package workload

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"

	"progressest/internal/exec"
	"progressest/internal/features"
	"progressest/internal/plan"
	"progressest/internal/progress"
	"progressest/internal/selection"
)

// RunOptions controls workload execution and example harvesting.
type RunOptions struct {
	// MinObservations drops pipelines with fewer counter snapshots
	// (too short for meaningful progress estimation); default 8.
	MinObservations int
	// Exec are the engine options; MemBudgetRows == 0 enables the default
	// randomised memory-contention policy (some queries spill, some do
	// not, as in a loaded server).
	Exec exec.Options
	// Seed drives the memory-contention policy.
	Seed int64
}

func (o RunOptions) withDefaults() RunOptions {
	if o.MinObservations <= 0 {
		o.MinObservations = 8
	}
	return o
}

// Result is the harvest of one workload run.
type Result struct {
	// Examples holds one labelled instance per usable pipeline.
	Examples []selection.Example
	// OpPipelineShare is, per operator, the fraction of pipelines whose
	// plan contains it (Table 1).
	OpPipelineShare map[plan.OpType]float64
	// NumQueries and NumPipelines count executed queries and total
	// (pre-filter) pipelines.
	NumQueries   int
	NumPipelines int
}

// queryResult is the harvest of one executed query.
type queryResult struct {
	examples     []selection.Example
	opCount      map[plan.OpType]int
	numPipelines int
}

// perQueryExecOptions draws the engine options for every query up front,
// consuming the memory-contention RNG in query order. Precomputing the
// whole sequence makes the per-query work order-independent, so the
// parallel runner produces bit-identical results to the sequential one.
func (w *Workload) perQueryExecOptions(opts RunOptions) []exec.Options {
	memRng := rand.New(rand.NewSource(opts.Seed ^ 0x0ddba11))
	out := make([]exec.Options, len(w.Queries))
	for qi := range w.Queries {
		execOpts := opts.Exec
		if execOpts.MemBudgetRows == 0 {
			// Memory-contention policy: a third of queries run with ample
			// memory, the rest under a randomised budget.
			if memRng.Intn(3) > 0 {
				execOpts.MemBudgetRows = 300 + memRng.Intn(3700)
			}
		}
		out[qi] = execOpts
	}
	return out
}

// HarvestTrace converts one finished execution trace into labelled
// training examples: for every pipeline with at least minObs counter
// snapshots it builds the full feature vector and replays the trace to
// measure every candidate estimator's true L1/L2 error post-hoc. This is
// the single harvest implementation — the batch runner and the streaming
// feedback harvester both call it, so online-collected examples are
// bit-identical to a batch harvest of the same traces. family tags each
// example with the query's workload family (the per-family model routing
// key; see Workload.QueryFamily). minObs <= 0 uses the default (8).
func HarvestTrace(tr *exec.Trace, workloadName, family string, queryIndex int, minObs int) []selection.Example {
	if minObs <= 0 {
		minObs = RunOptions{}.withDefaults().MinObservations
	}
	var out []selection.Example
	for p := range tr.Pipes.Pipelines {
		pipe := tr.Pipes.Pipelines[p]
		v := progress.NewPipelineView(tr, p)
		if v.NumObs() < minObs {
			continue
		}
		ex := selection.Example{
			Features:  features.Full(v),
			Workload:  workloadName,
			Signature: pipelineSignature(tr, p),
			Family:    family,
			Meta: map[string]float64{
				"query":    float64(queryIndex),
				"pipeline": float64(p),
			},
		}
		var totalGN float64
		for _, id := range pipe.Nodes {
			totalGN += float64(tr.N[id])
		}
		ex.Meta["getnext_total"] = totalGN
		for _, k := range progress.AllKinds() {
			e := v.Errors(k)
			ex.ErrL1[k] = e.L1
			ex.ErrL2[k] = e.L2
		}
		out = append(out, ex)
	}
	return out
}

// runQuery plans, executes and harvests one query. It only reads shared
// workload state (database, statistics, planner thresholds), so distinct
// queries can run concurrently.
func (w *Workload) runQuery(qi int, execOpts exec.Options, minObs int) (*queryResult, error) {
	pl, err := w.Planner.Plan(w.Queries[qi])
	if err != nil {
		return nil, fmt.Errorf("workload %s query %d: %w", w.Spec.Name, qi, err)
	}
	tr := exec.Run(w.DB, pl, execOpts)

	qr := &queryResult{opCount: make(map[plan.OpType]int)}
	for p := range tr.Pipes.Pipelines {
		qr.numPipelines++
		pipe := tr.Pipes.Pipelines[p]
		seen := make(map[plan.OpType]bool)
		for _, id := range pipe.Nodes {
			op := tr.Plan.Node(id).Op
			if !seen[op] {
				seen[op] = true
				qr.opCount[op]++
			}
		}
	}
	qr.examples = HarvestTrace(tr, w.Spec.Name, w.QueryFamily(qi), qi, minObs)
	return qr, nil
}

// merge folds per-query harvests (in query order) into one Result.
func merge(results []*queryResult) *Result {
	res := &Result{OpPipelineShare: make(map[plan.OpType]float64)}
	opCount := make(map[plan.OpType]int)
	for _, qr := range results {
		res.Examples = append(res.Examples, qr.examples...)
		for op, c := range qr.opCount {
			opCount[op] += c
		}
		res.NumPipelines += qr.numPipelines
		res.NumQueries++
	}
	if res.NumPipelines > 0 {
		for op, c := range opCount {
			res.OpPipelineShare[op] = float64(c) / float64(res.NumPipelines)
		}
	}
	return res
}

// Run executes every query of the workload and harvests per-pipeline
// training examples: the full feature vector plus the measured L1/L2 error
// of every candidate estimator (replayed over the shared counter trace).
func (w *Workload) Run(opts RunOptions) (*Result, error) {
	opts = opts.withDefaults()
	execOpts := w.perQueryExecOptions(opts)
	results := make([]*queryResult, len(w.Queries))
	for qi := range w.Queries {
		qr, err := w.runQuery(qi, execOpts[qi], opts.MinObservations)
		if err != nil {
			return nil, err
		}
		results[qi] = qr
	}
	return merge(results), nil
}

// RunParallel is Run with the queries fanned out across a worker pool.
// Harvesting is the training hot path and embarrassingly parallel — each
// query owns its plan, execution context and trace, while the database,
// statistics and planner are only read — so the speedup is near-linear.
// Results are merged in query order and are identical to Run's.
// workers <= 0 uses GOMAXPROCS.
func (w *Workload) RunParallel(opts RunOptions, workers int) (*Result, error) {
	opts = opts.withDefaults()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	execOpts := w.perQueryExecOptions(opts)
	results := make([]*queryResult, len(w.Queries))
	errs := make([]error, len(w.Queries))

	next := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for qi := range next {
				results[qi], errs[qi] = w.runQuery(qi, execOpts[qi], opts.MinObservations)
			}
		}()
	}
	for qi := range w.Queries {
		next <- qi
	}
	close(next)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return merge(results), nil
}

// pipelineSignature summarises a pipeline's operator shape: the sorted
// multiset of (operator, table) pairs of its members. Instances of the
// same query template produce equal signatures, which is what the
// selectivity-sensitivity experiment (Table 2) groups by.
func pipelineSignature(tr *exec.Trace, p int) string {
	pipe := tr.Pipes.Pipelines[p]
	parts := make([]string, 0, len(pipe.Nodes))
	for _, id := range pipe.Nodes {
		n := tr.Plan.Node(id)
		parts = append(parts, n.Op.String()+":"+n.TableName)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// BuildAndRun is the convenience composition of Build and Run.
func BuildAndRun(spec Spec, opts RunOptions) (*Result, error) {
	w, err := Build(spec)
	if err != nil {
		return nil, err
	}
	return w.Run(opts)
}
