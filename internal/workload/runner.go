package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"progressest/internal/exec"
	"progressest/internal/features"
	"progressest/internal/plan"
	"progressest/internal/progress"
	"progressest/internal/selection"
)

// RunOptions controls workload execution and example harvesting.
type RunOptions struct {
	// MinObservations drops pipelines with fewer counter snapshots
	// (too short for meaningful progress estimation); default 8.
	MinObservations int
	// Exec are the engine options; MemBudgetRows == 0 enables the default
	// randomised memory-contention policy (some queries spill, some do
	// not, as in a loaded server).
	Exec exec.Options
	// Seed drives the memory-contention policy.
	Seed int64
}

func (o RunOptions) withDefaults() RunOptions {
	if o.MinObservations <= 0 {
		o.MinObservations = 8
	}
	return o
}

// Result is the harvest of one workload run.
type Result struct {
	// Examples holds one labelled instance per usable pipeline.
	Examples []selection.Example
	// OpPipelineShare is, per operator, the fraction of pipelines whose
	// plan contains it (Table 1).
	OpPipelineShare map[plan.OpType]float64
	// NumQueries and NumPipelines count executed queries and total
	// (pre-filter) pipelines.
	NumQueries   int
	NumPipelines int
}

// Run executes every query of the workload and harvests per-pipeline
// training examples: the full feature vector plus the measured L1/L2 error
// of every candidate estimator (replayed over the shared counter trace).
func (w *Workload) Run(opts RunOptions) (*Result, error) {
	opts = opts.withDefaults()
	res := &Result{OpPipelineShare: make(map[plan.OpType]float64)}
	memRng := rand.New(rand.NewSource(opts.Seed ^ 0x0ddba11))

	opCount := make(map[plan.OpType]int)
	for qi, spec := range w.Queries {
		pl, err := w.Planner.Plan(spec)
		if err != nil {
			return nil, fmt.Errorf("workload %s query %d: %w", w.Spec.Name, qi, err)
		}
		execOpts := opts.Exec
		if execOpts.MemBudgetRows == 0 {
			// Memory-contention policy: a third of queries run with ample
			// memory, the rest under a randomised budget.
			if memRng.Intn(3) > 0 {
				execOpts.MemBudgetRows = 300 + memRng.Intn(3700)
			}
		}
		tr := exec.Run(w.DB, pl, execOpts)

		for p := range tr.Pipes.Pipelines {
			res.NumPipelines++
			pipe := tr.Pipes.Pipelines[p]
			seen := make(map[plan.OpType]bool)
			for _, id := range pipe.Nodes {
				op := tr.Plan.Node(id).Op
				if !seen[op] {
					seen[op] = true
					opCount[op]++
				}
			}

			v := progress.NewPipelineView(tr, p)
			if v.NumObs() < opts.MinObservations {
				continue
			}
			ex := selection.Example{
				Features:  features.Full(v),
				Workload:  w.Spec.Name,
				Signature: pipelineSignature(tr, p),
				Meta: map[string]float64{
					"query":    float64(qi),
					"pipeline": float64(p),
				},
			}
			var totalGN float64
			for _, id := range pipe.Nodes {
				totalGN += float64(tr.N[id])
			}
			ex.Meta["getnext_total"] = totalGN
			for _, k := range progress.AllKinds() {
				e := v.Errors(k)
				ex.ErrL1[k] = e.L1
				ex.ErrL2[k] = e.L2
			}
			res.Examples = append(res.Examples, ex)
		}
		res.NumQueries++
	}
	if res.NumPipelines > 0 {
		for op, c := range opCount {
			res.OpPipelineShare[op] = float64(c) / float64(res.NumPipelines)
		}
	}
	return res, nil
}

// pipelineSignature summarises a pipeline's operator shape: the sorted
// multiset of (operator, table) pairs of its members. Instances of the
// same query template produce equal signatures, which is what the
// selectivity-sensitivity experiment (Table 2) groups by.
func pipelineSignature(tr *exec.Trace, p int) string {
	pipe := tr.Pipes.Pipelines[p]
	parts := make([]string, 0, len(pipe.Nodes))
	for _, id := range pipe.Nodes {
		n := tr.Plan.Node(id)
		parts = append(parts, n.Op.String()+":"+n.TableName)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// BuildAndRun is the convenience composition of Build and Run.
func BuildAndRun(spec Spec, opts RunOptions) (*Result, error) {
	w, err := Build(spec)
	if err != nil {
		return nil, err
	}
	return w.Run(opts)
}
