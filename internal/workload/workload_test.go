package workload

import (
	"testing"
	"time"

	"progressest/internal/catalog"
	"progressest/internal/datagen"
	"progressest/internal/plan"
	"progressest/internal/progress"
)

func smallSpec(kind datagen.DatasetKind, n int) Spec {
	return Spec{
		Name:    kind.String(),
		Kind:    kind,
		Queries: n,
		Scale:   0.08,
		Zipf:    1,
		Design:  catalog.PartiallyTuned,
		Seed:    7,
	}
}

func TestBuildAndRunAllKinds(t *testing.T) {
	for _, kind := range []datagen.DatasetKind{
		datagen.TPCHLike, datagen.TPCDSLike, datagen.Real1Like, datagen.Real2Like,
	} {
		res, err := BuildAndRun(smallSpec(kind, 12), RunOptions{Seed: 1})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if res.NumQueries != 12 {
			t.Errorf("%v: ran %d queries, want 12", kind, res.NumQueries)
		}
		if len(res.Examples) == 0 {
			t.Errorf("%v: no examples harvested", kind)
		}
		for i := range res.Examples {
			ex := &res.Examples[i]
			if len(ex.Features) == 0 {
				t.Fatalf("%v: example %d has no features", kind, i)
			}
			if ex.Workload != kind.String() {
				t.Errorf("%v: workload tag %q", kind, ex.Workload)
			}
			for _, k := range progress.Kinds() {
				if ex.ErrL1[k] < 0 || ex.ErrL1[k] > 1 || ex.ErrL2[k] < ex.ErrL1[k]-1e-9 {
					t.Fatalf("%v: example %d has bad errors for %v: L1=%v L2=%v",
						kind, i, k, ex.ErrL1[k], ex.ErrL2[k])
				}
			}
			if ex.Meta["getnext_total"] <= 0 {
				t.Errorf("%v: example %d missing getnext_total", kind, i)
			}
		}
	}
}

func TestDeterministicExamples(t *testing.T) {
	a, err := BuildAndRun(smallSpec(datagen.TPCHLike, 8), RunOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildAndRun(smallSpec(datagen.TPCHLike, 8), RunOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Examples) != len(b.Examples) {
		t.Fatalf("example counts differ: %d vs %d", len(a.Examples), len(b.Examples))
	}
	for i := range a.Examples {
		for j := range a.Examples[i].Features {
			if a.Examples[i].Features[j] != b.Examples[i].Features[j] {
				t.Fatalf("feature %d of example %d differs", j, i)
			}
		}
		for _, k := range progress.Kinds() {
			if a.Examples[i].ErrL1[k] != b.Examples[i].ErrL1[k] {
				t.Fatalf("error label differs at example %d", i)
			}
		}
	}
}

func TestOpShareReflectsDesign(t *testing.T) {
	// Fully tuned designs should show more index seeks than untuned ones
	// (the effect paper Table 1 documents).
	spec := smallSpec(datagen.TPCHLike, 25)
	spec.Design = catalog.Untuned
	untuned, err := BuildAndRun(spec, RunOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	spec.Design = catalog.FullyTuned
	tuned, err := BuildAndRun(spec, RunOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if tuned.OpPipelineShare[plan.IndexSeek] <= untuned.OpPipelineShare[plan.IndexSeek] {
		t.Errorf("index-seek share should grow with tuning: untuned %.3f vs tuned %.3f",
			untuned.OpPipelineShare[plan.IndexSeek], tuned.OpPipelineShare[plan.IndexSeek])
	}
}

func TestQueriesAreDiverse(t *testing.T) {
	w, err := Build(smallSpec(datagen.TPCHLike, 40))
	if err != nil {
		t.Fatal(err)
	}
	tables := map[string]bool{}
	joins := map[int]bool{}
	for _, q := range w.Queries {
		tables[q.First.Table] = true
		joins[len(q.Joins)] = true
	}
	if len(tables) < 4 {
		t.Errorf("only %d distinct first tables in 40 queries", len(tables))
	}
	if len(joins) < 3 {
		t.Errorf("only %d distinct join counts", len(joins))
	}
}

func TestReal2QueriesAreDeep(t *testing.T) {
	w, err := Build(smallSpec(datagen.Real2Like, 30))
	if err != nil {
		t.Fatal(err)
	}
	maxJoins := 0
	for _, q := range w.Queries {
		if len(q.Joins) > maxJoins {
			maxJoins = len(q.Joins)
		}
		if len(q.Joins) < 4 {
			t.Errorf("real2 query has only %d joins", len(q.Joins))
		}
	}
	if maxJoins < 9 {
		t.Errorf("real2 should reach ~10-12 tables, max joins seen %d", maxJoins)
	}
}

func TestRunThroughput(t *testing.T) {
	// Guardrail: a 20-query workload must execute in a few seconds, or
	// the full experiment suite becomes intractable.
	start := time.Now()
	if _, err := BuildAndRun(smallSpec(datagen.TPCHLike, 20), RunOptions{Seed: 9}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 30*time.Second {
		t.Errorf("20 queries took %v", d)
	}
}
