package mart

import (
	"errors"
	"fmt"
	"math"
)

// Ridge is a linear least-squares model with L2 regularisation. It serves
// as the linear-model baseline the paper compared MART against (Section
// 4.2 reports that linear models were significantly less accurate because
// they need input normalisation and cannot capture the non-linear
// dependence between features and estimator errors); the ablation
// benchmarks quantify this on our data.
type Ridge struct {
	Weights []float64 `json:"weights"`
	Bias    float64   `json:"bias"`
	// Normalisation applied to inputs (linear models need it; MART does
	// not — one of the paper's reasons for choosing MART).
	Mean  []float64 `json:"mean"`
	Scale []float64 `json:"scale"`
}

// TrainRidge fits ridge regression with regularisation strength lambda by
// solving the normal equations with Cholesky decomposition.
func TrainRidge(X [][]float64, y []float64, lambda float64) (*Ridge, error) {
	if len(X) == 0 {
		return nil, errors.New("mart: empty training set")
	}
	if len(X) != len(y) {
		return nil, fmt.Errorf("mart: %d rows but %d labels", len(X), len(y))
	}
	n, d := len(X), len(X[0])

	// Standardise features.
	mean := make([]float64, d)
	scale := make([]float64, d)
	for j := 0; j < d; j++ {
		var s float64
		for i := 0; i < n; i++ {
			s += X[i][j]
		}
		mean[j] = s / float64(n)
		var v float64
		for i := 0; i < n; i++ {
			dd := X[i][j] - mean[j]
			v += dd * dd
		}
		scale[j] = sqrt(v / float64(n))
		if scale[j] < 1e-12 {
			scale[j] = 1
		}
	}
	var ymean float64
	for _, v := range y {
		ymean += v
	}
	ymean /= float64(n)

	// A = Z'Z + lambda*I, b = Z'(y - ymean) on standardised Z.
	a := make([][]float64, d)
	for j := range a {
		a[j] = make([]float64, d)
	}
	b := make([]float64, d)
	z := make([]float64, d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			z[j] = (X[i][j] - mean[j]) / scale[j]
		}
		yc := y[i] - ymean
		for j := 0; j < d; j++ {
			b[j] += z[j] * yc
			for k := j; k < d; k++ {
				a[j][k] += z[j] * z[k]
			}
		}
	}
	for j := 0; j < d; j++ {
		a[j][j] += lambda
		for k := 0; k < j; k++ {
			a[j][k] = a[k][j]
		}
	}
	w, err := choleskySolve(a, b)
	if err != nil {
		return nil, err
	}
	return &Ridge{Weights: w, Bias: ymean, Mean: mean, Scale: scale}, nil
}

// Predict returns the ridge model output for one feature vector.
func (r *Ridge) Predict(x []float64) float64 {
	out := r.Bias
	for j, w := range r.Weights {
		out += w * (x[j] - r.Mean[j]) / r.Scale[j]
	}
	return out
}

// PredictAll predicts for many rows.
func (r *Ridge) PredictAll(X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, x := range X {
		out[i] = r.Predict(x)
	}
	return out
}

// choleskySolve solves A w = b for symmetric positive-definite A.
func choleskySolve(a [][]float64, b []float64) ([]float64, error) {
	d := len(a)
	l := make([][]float64, d)
	for i := range l {
		l[i] = make([]float64, d)
	}
	for i := 0; i < d; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i][j]
			for k := 0; k < j; k++ {
				sum -= l[i][k] * l[j][k]
			}
			if i == j {
				if sum <= 0 {
					return nil, errors.New("mart: matrix not positive definite")
				}
				l[i][i] = sqrt(sum)
			} else {
				l[i][j] = sum / l[j][j]
			}
		}
	}
	// Forward substitution: L z = b.
	z := make([]float64, d)
	for i := 0; i < d; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l[i][k] * z[k]
		}
		z[i] = sum / l[i][i]
	}
	// Back substitution: L' w = z.
	w := make([]float64, d)
	for i := d - 1; i >= 0; i-- {
		sum := z[i]
		for k := i + 1; k < d; k++ {
			sum -= l[k][i] * w[k]
		}
		w[i] = sum / l[i][i]
	}
	return w, nil
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// Newton iterations are plenty here, but use the stdlib for clarity.
	return math.Sqrt(x)
}
