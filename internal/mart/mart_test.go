package mart

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

// synth builds a nonlinear regression problem MART should crack easily
// but a linear model cannot: y = step(x0) + x1*x2 + noise.
func synth(n int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x := []float64{rng.Float64()*2 - 1, rng.Float64(), rng.Float64(), rng.Float64()}
		X[i] = x
		step := 0.0
		if x[0] > 0.3 {
			step = 2.0
		}
		y[i] = step + x[1]*x[2] + rng.NormFloat64()*0.05
	}
	return X, y
}

func TestTrainReducesError(t *testing.T) {
	X, y := synth(2000, 1)
	m, err := Train(X, y, Options{Trees: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mse := MSE(m.PredictAll(X), y)
	// Variance of y is ~1; the model must explain most of it.
	if mse > 0.05 {
		t.Errorf("training MSE %v too high", mse)
	}
}

func TestGeneralisation(t *testing.T) {
	X, y := synth(4000, 2)
	Xtest, ytest := synth(1000, 99)
	m, err := Train(X, y, Options{Trees: 150, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	mse := MSE(m.PredictAll(Xtest), ytest)
	if mse > 0.1 {
		t.Errorf("test MSE %v too high", mse)
	}
}

func TestMoreTreesMonotoneTrainingError(t *testing.T) {
	X, y := synth(1000, 3)
	prev := math.Inf(1)
	for _, trees := range []int{5, 25, 100} {
		m, err := Train(X, y, Options{Trees: trees, Subsample: 1, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		mse := MSE(m.PredictAll(X), y)
		if mse > prev+1e-9 {
			t.Errorf("training error should not increase with more trees: %v -> %v", prev, mse)
		}
		prev = mse
	}
}

func TestMARTBeatsRidgeOnNonlinearData(t *testing.T) {
	// The paper's stated reason for choosing MART over linear models.
	X, y := synth(3000, 5)
	Xt, yt := synth(800, 50)
	m, err := Train(X, y, Options{Trees: 150, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	r, err := TrainRidge(X, y, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	mMSE := MSE(m.PredictAll(Xt), yt)
	rMSE := MSE(r.PredictAll(Xt), yt)
	if mMSE >= rMSE {
		t.Errorf("MART (%v) should beat ridge (%v) on nonlinear data", mMSE, rMSE)
	}
}

func TestRidgeRecoversLinearModel(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 2000
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		X[i] = x
		y[i] = 3*x[0] - 2*x[1] + 0.5 + rng.NormFloat64()*0.01
	}
	r, err := TrainRidge(X, y, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if mse := MSE(r.PredictAll(X), y); mse > 0.001 {
		t.Errorf("ridge MSE %v on linear data", mse)
	}
}

func TestConstantLabels(t *testing.T) {
	X, _ := synth(100, 7)
	y := make([]float64, len(X))
	for i := range y {
		y[i] = 7.5
	}
	m, err := Train(X, y, Options{Trees: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range X[:10] {
		if math.Abs(m.Predict(x)-7.5) > 1e-9 {
			t.Errorf("constant label model predicts %v", m.Predict(x))
		}
	}
}

func TestFeatureImportanceIdentifiesSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 2000
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		// Feature 2 carries all the signal; 0,1,3 are noise.
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		X[i] = x
		y[i] = math.Sin(6 * x[2])
	}
	m, err := Train(X, y, Options{Trees: 50, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	imp := m.FeatureImportance()
	if imp[2] < 0.9 {
		t.Errorf("importance of the signal feature = %v, want > 0.9 (all: %v)", imp[2], imp)
	}
	var sum float64
	for _, v := range imp {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("importances sum to %v", sum)
	}
}

func TestErrorsOnBadInput(t *testing.T) {
	if _, err := Train(nil, nil, Options{}); err == nil {
		t.Error("empty training set should error")
	}
	if _, err := Train([][]float64{{1}}, []float64{1, 2}, Options{}); err == nil {
		t.Error("mismatched labels should error")
	}
	if _, err := Train([][]float64{{1, 2}, {1}}, []float64{1, 2}, Options{}); err == nil {
		t.Error("ragged rows should error")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	X, y := synth(500, 9)
	m, err := Train(X, y, Options{Trees: 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range X[:50] {
		if math.Abs(m.Predict(x)-loaded.Predict(x)) > 1e-12 {
			t.Fatal("loaded model predicts differently")
		}
	}
}

func TestDeterministicTraining(t *testing.T) {
	X, y := synth(800, 10)
	a, _ := Train(X, y, Options{Trees: 30, Seed: 11})
	b, _ := Train(X, y, Options{Trees: 30, Seed: 11})
	for _, x := range X[:20] {
		if a.Predict(x) != b.Predict(x) {
			t.Fatal("same seed must give identical models")
		}
	}
}

func TestPredictionWithinLabelRangeProperty(t *testing.T) {
	// Regression trees average labels, so predictions on training points
	// must stay within [min(y), max(y)] (shrinkage keeps partial sums
	// inside too for LS loss started at the mean — allow small slack).
	X, y := synth(600, 12)
	m, err := Train(X, y, Options{Trees: 60, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range y {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	f := func(i uint16) bool {
		x := X[int(i)%len(X)]
		p := m.Predict(x)
		return p >= lo-0.5 && p <= hi+0.5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMonotoneTransformInvariance(t *testing.T) {
	// Quantile binning is rank-based, so applying a strictly monotone
	// transform to a (positive) feature must leave the fitted tree
	// structure — and hence predictions at corresponding points —
	// unchanged. This is the "no normalisation needed" property the paper
	// cites as a reason for choosing MART (Section 4.2).
	X, y := synth(800, 14)
	for i := range X {
		for j := range X[i] {
			X[i][j] += 2 // ensure positivity for the transform
		}
	}
	Xt := make([][]float64, len(X))
	for i := range X {
		row := make([]float64, len(X[i]))
		for j, v := range X[i] {
			row[j] = math.Exp(v) // strictly monotone
		}
		Xt[i] = row
	}
	a, err := Train(X, y, Options{Trees: 40, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(Xt, y, Options{Trees: 40, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	for i := range X[:100] {
		pa, pb := a.Predict(X[i]), b.Predict(Xt[i])
		if math.Abs(pa-pb) > 1e-9 {
			t.Fatalf("monotone transform changed prediction: %v vs %v", pa, pb)
		}
	}
}

func TestGreedySelectFindsSignalFirst(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 800
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		X[i] = x
		y[i] = 4 * x[1] * x[1] // only feature 1 matters
	}
	steps, err := GreedySelect(X, y, []string{"a", "b", "c"}, 2, Options{Trees: 20, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 2 {
		t.Fatalf("want 2 steps, got %d", len(steps))
	}
	if steps[0].Feature != 1 || steps[0].Name != "b" {
		t.Errorf("first selected feature = %+v, want feature 1 (b)", steps[0])
	}
	if steps[1].MSE > steps[0].MSE+1e-9 {
		t.Errorf("MSE should not increase across greedy steps: %v -> %v", steps[0].MSE, steps[1].MSE)
	}
}

func BenchmarkTrain6K200(b *testing.B) {
	X, y := synth(6000, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(X, y, Options{Trees: 200, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
