package mart

import (
	"encoding/json"
	"fmt"
	"os"
)

// MarshalJSON-based persistence: models are plain JSON documents so they
// can be inspected, diffed and shipped alongside a running system (the
// paper notes retrained models must be cheap to deploy).

// Save writes the model to path as JSON.
func (m *Model) Save(path string) error {
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("mart: marshal: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("mart: save: %w", err)
	}
	return nil
}

// Load reads a model saved by Save.
func Load(path string) (*Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("mart: load: %w", err)
	}
	var m Model
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("mart: unmarshal: %w", err)
	}
	return &m, nil
}

// Encode returns the JSON encoding of the model.
func (m *Model) Encode() ([]byte, error) { return json.Marshal(m) }

// Decode parses a model from its JSON encoding.
func Decode(data []byte) (*Model, error) {
	var m Model
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("mart: decode: %w", err)
	}
	return &m, nil
}
