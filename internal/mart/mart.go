// Package mart implements Multiple Additive Regression Trees: stochastic
// gradient boosting (Friedman 2001) with least-squares loss and binary
// regression trees as the base learner — the statistical model the paper
// uses to predict per-estimator progress-estimation errors (Section 4.2).
//
// As in the paper, trees have a bounded number of leaves (30 by default)
// and the model is the sum of M boosted trees (M=200 by default). Features
// are pre-binned into quantile histograms so training scales to the
// paper's largest configuration (60K examples, M=1000) in seconds, and —
// like the paper emphasises — no input normalisation is required and
// non-linear feature/error dependencies are handled natively.
package mart

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
)

// Options are the training hyperparameters.
type Options struct {
	// Trees is the number of boosting iterations M (default 200).
	Trees int
	// MaxLeaves bounds the leaf count per tree (default 30, as in §6).
	MaxLeaves int
	// LearningRate is the shrinkage applied to each tree (default 0.1).
	LearningRate float64
	// Subsample is the row fraction sampled per boosting iteration
	// (stochastic gradient boosting; default 0.7).
	Subsample float64
	// MinLeaf is the minimum number of training rows per leaf (default 5).
	MinLeaf int
	// Bins is the number of histogram bins per feature (default 64).
	Bins int
	// Seed drives the row subsampling.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Trees <= 0 {
		o.Trees = 200
	}
	if o.MaxLeaves <= 1 {
		o.MaxLeaves = 30
	}
	if o.LearningRate <= 0 {
		o.LearningRate = 0.1
	}
	if o.Subsample <= 0 || o.Subsample > 1 {
		o.Subsample = 0.7
	}
	if o.MinLeaf <= 0 {
		o.MinLeaf = 5
	}
	if o.Bins <= 1 || o.Bins > 64 {
		o.Bins = 64
	}
	return o
}

// node is one node of a regression tree in array form.
type node struct {
	Feature   int     `json:"f"`
	Threshold float64 `json:"t"`
	Left      int     `json:"l"` // -1 for leaf
	Right     int     `json:"r"`
	Value     float64 `json:"v"` // leaf value (already shrunk)

	// thresholdBin is the bin index of Threshold, used only while
	// training (predictBinned); not serialised.
	thresholdBin int
}

// tree is one regression tree.
type tree struct {
	Nodes []node `json:"nodes"`
}

func (t *tree) predict(x []float64) float64 {
	i := 0
	for {
		n := &t.Nodes[i]
		if n.Left < 0 {
			return n.Value
		}
		if x[n.Feature] <= n.Threshold {
			i = n.Left
		} else {
			i = n.Right
		}
	}
}

// Model is a trained MART model.
type Model struct {
	Bias       float64   `json:"bias"`
	Trees      []tree    `json:"trees"`
	NumFeature int       `json:"num_features"`
	Names      []string  `json:"names,omitempty"`
	Importance []float64 `json:"importance"`
}

// Predict returns the model output for one feature vector.
func (m *Model) Predict(x []float64) float64 {
	if len(x) != m.NumFeature {
		panic(fmt.Sprintf("mart: feature vector length %d, model expects %d", len(x), m.NumFeature))
	}
	out := m.Bias
	for i := range m.Trees {
		out += m.Trees[i].predict(x)
	}
	return out
}

// PredictAll predicts for many rows.
func (m *Model) PredictAll(X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, x := range X {
		out[i] = m.Predict(x)
	}
	return out
}

// FeatureImportance returns the total squared-error reduction attributed
// to each feature across all trees, normalised to sum to 1 (0 if the
// model never split).
func (m *Model) FeatureImportance() []float64 {
	out := make([]float64, len(m.Importance))
	var sum float64
	for _, v := range m.Importance {
		sum += v
	}
	if sum <= 0 {
		return out
	}
	for i, v := range m.Importance {
		out[i] = v / sum
	}
	return out
}

// Train fits a MART model to (X, y). All rows must have equal length.
func Train(X [][]float64, y []float64, opts Options) (*Model, error) {
	if len(X) == 0 {
		return nil, errors.New("mart: empty training set")
	}
	if len(X) != len(y) {
		return nil, fmt.Errorf("mart: %d rows but %d labels", len(X), len(y))
	}
	opts = opts.withDefaults()
	nf := len(X[0])
	for i, row := range X {
		if len(row) != nf {
			return nil, fmt.Errorf("mart: row %d has %d features, want %d", i, len(row), nf)
		}
	}

	b := newBinner(X, opts.Bins)
	pool := newHistPool(nf, opts.Bins)
	m := &Model{NumFeature: nf, Importance: make([]float64, nf)}
	var bias float64
	for _, v := range y {
		bias += v
	}
	bias /= float64(len(y))
	m.Bias = bias

	// Current model output per row.
	f := make([]float64, len(y))
	for i := range f {
		f[i] = bias
	}
	resid := make([]float64, len(y))
	rng := rand.New(rand.NewSource(opts.Seed + 1))
	perm := make([]int, len(y))
	for i := range perm {
		perm[i] = i
	}

	for t := 0; t < opts.Trees; t++ {
		for i := range y {
			resid[i] = y[i] - f[i]
		}
		// Stochastic subsample of rows.
		rows := perm
		if opts.Subsample < 1 {
			rng.Shuffle(len(perm), func(a, c int) { perm[a], perm[c] = perm[c], perm[a] })
			n := int(opts.Subsample * float64(len(perm)))
			if n < 2 {
				n = len(perm)
			}
			rows = perm[:n]
		}
		tr := fitTree(b, resid, rows, opts, m.Importance, pool)
		// Apply shrinkage and update the running model on ALL rows.
		for i := range tr.Nodes {
			if tr.Nodes[i].Left < 0 {
				tr.Nodes[i].Value *= opts.LearningRate
			}
		}
		for i := range f {
			f[i] += tr.predictBinned(b, i)
		}
		m.Trees = append(m.Trees, *tr)
	}
	return m, nil
}

// MSE returns the mean squared error of predictions against labels.
func MSE(pred, y []float64) float64 {
	if len(pred) == 0 {
		return 0
	}
	var sum float64
	for i := range pred {
		d := pred[i] - y[i]
		sum += d * d
	}
	return sum / float64(len(pred))
}

// --- feature binning ---

// binner holds the quantile-binned design matrix in row-major form (one
// contiguous bin vector per row, so a single pass over a leaf's rows fills
// the histograms of every feature) plus the raw threshold value at each
// bin's upper edge.
type binner struct {
	rows       [][]uint8   // [row][feature]
	thresholds [][]float64 // [feature][binIdx] upper edge value
	numRows    int
}

func newBinner(X [][]float64, nbins int) *binner {
	nf := len(X[0])
	b := &binner{
		rows:       make([][]uint8, len(X)),
		thresholds: make([][]float64, nf),
		numRows:    len(X),
	}
	flat := make([]uint8, len(X)*nf)
	for ri := range X {
		b.rows[ri] = flat[ri*nf : (ri+1)*nf]
	}
	vals := make([]float64, len(X))
	for fi := 0; fi < nf; fi++ {
		for ri := range X {
			vals[ri] = X[ri][fi]
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		// Candidate thresholds at quantile boundaries, deduplicated.
		var ths []float64
		for q := 1; q < nbins; q++ {
			v := sorted[q*(len(sorted)-1)/nbins]
			if len(ths) == 0 || v > ths[len(ths)-1] {
				ths = append(ths, v)
			}
		}
		// Drop a trailing threshold equal to the max (right side empty).
		for len(ths) > 0 && ths[len(ths)-1] >= sorted[len(sorted)-1] {
			ths = ths[:len(ths)-1]
		}
		b.thresholds[fi] = ths
		// Bin index of v is the smallest b with v <= ths[b] (len(ths) for
		// values above every threshold).
		for ri := range X {
			v := vals[ri]
			lo, hi := 0, len(ths)
			for lo < hi {
				mid := (lo + hi) / 2
				if v <= ths[mid] {
					hi = mid
				} else {
					lo = mid + 1
				}
			}
			b.rows[ri][fi] = uint8(lo)
		}
	}
	return b
}

// predictBinned evaluates a tree for training row ri using bin indices
// (exact for thresholds that are bin edges).
func (t *tree) predictBinned(b *binner, ri int) float64 {
	i := 0
	bins := b.rows[ri]
	for {
		n := &t.Nodes[i]
		if n.Left < 0 {
			return n.Value
		}
		// Threshold is thresholds[f][binIdx]; row goes left iff its bin
		// index <= binIdx of the threshold.
		if int(bins[n.Feature]) <= n.thresholdBin {
			i = n.Left
		} else {
			i = n.Right
		}
	}
}

// --- tree fitting (leaf-wise best-first growth) ---

type leafCand struct {
	rows []int // training row indices in this leaf

	bestGain    float64
	bestFeature int
	bestBin     int
	sum         float64
	nodeIdx     int // position in tree.Nodes
}

// histPool is scratch space for per-leaf histograms: one (sum, count) pair
// per (feature, bin), reused across leaves of all trees.
type histPool struct {
	sums [][64]float64
	cnts [][64]int32
	bins int
}

func newHistPool(nf, bins int) *histPool {
	if bins > 64 {
		bins = 64
	}
	return &histPool{
		sums: make([][64]float64, nf),
		cnts: make([][64]int32, nf),
		bins: bins,
	}
}

func (h *histPool) reset() {
	for i := range h.sums {
		h.sums[i] = [64]float64{}
		h.cnts[i] = [64]int32{}
	}
}

func fitTree(b *binner, resid []float64, rows []int, opts Options, importance []float64, pool *histPool) *tree {
	t := &tree{}
	root := &leafCand{rows: rows}
	for _, r := range rows {
		root.sum += resid[r]
	}
	t.Nodes = append(t.Nodes, node{Left: -1, Right: -1, Value: mean(root.sum, len(root.rows))})
	root.nodeIdx = 0
	findBestSplit(b, resid, root, opts, pool)

	leaves := []*leafCand{root}
	numLeaves := 1
	for numLeaves < opts.MaxLeaves {
		// Pick the leaf with the highest gain.
		bi, bg := -1, 1e-12
		for i, lf := range leaves {
			if lf != nil && lf.bestGain > bg {
				bi, bg = i, lf.bestGain
			}
		}
		if bi < 0 {
			break
		}
		lf := leaves[bi]
		leftRows, rightRows := partition(b, lf)
		importance[lf.bestFeature] += lf.bestGain

		var lsum, rsum float64
		for _, r := range leftRows {
			lsum += resid[r]
		}
		for _, r := range rightRows {
			rsum += resid[r]
		}
		li := len(t.Nodes)
		t.Nodes = append(t.Nodes, node{Left: -1, Right: -1, Value: mean(lsum, len(leftRows))})
		ri := len(t.Nodes)
		t.Nodes = append(t.Nodes, node{Left: -1, Right: -1, Value: mean(rsum, len(rightRows))})

		parent := &t.Nodes[lf.nodeIdx]
		parent.Feature = lf.bestFeature
		parent.Threshold = b.thresholds[lf.bestFeature][lf.bestBin]
		parent.thresholdBin = lf.bestBin
		parent.Left = li
		parent.Right = ri
		parent.Value = 0

		left := &leafCand{rows: leftRows, sum: lsum, nodeIdx: li}
		right := &leafCand{rows: rightRows, sum: rsum, nodeIdx: ri}
		findBestSplit(b, resid, left, opts, pool)
		findBestSplit(b, resid, right, opts, pool)
		leaves[bi] = left
		leaves = append(leaves, right)
		numLeaves++
	}
	return t
}

func mean(sum float64, n int) float64 {
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// findBestSplit computes the best (feature, bin) split of the leaf by the
// squared-error-reduction criterion. Histograms for all features fill in
// one cache-friendly pass over the leaf's (row-major) bin vectors.
func findBestSplit(b *binner, resid []float64, lf *leafCand, opts Options, pool *histPool) {
	lf.bestGain = 0
	n := len(lf.rows)
	if n < 2*opts.MinLeaf {
		return
	}
	parentScore := lf.sum * lf.sum / float64(n)

	pool.reset()
	nf := len(b.thresholds)
	for _, r := range lf.rows {
		bins := b.rows[r]
		rv := resid[r]
		for fi := 0; fi < nf; fi++ {
			bin := bins[fi]
			pool.sums[fi][bin] += rv
			pool.cnts[fi][bin]++
		}
	}
	for fi := 0; fi < nf; fi++ {
		ths := b.thresholds[fi]
		if len(ths) == 0 {
			continue
		}
		// Prefix scan over bins: split at bin => rows with bin <= split go
		// left.
		var lsum float64
		var lcnt int
		sums, cnts := &pool.sums[fi], &pool.cnts[fi]
		for bin := 0; bin < len(ths); bin++ {
			lsum += sums[bin]
			lcnt += int(cnts[bin])
			rcnt := n - lcnt
			if lcnt < opts.MinLeaf || rcnt < opts.MinLeaf {
				continue
			}
			rsum := lf.sum - lsum
			gain := lsum*lsum/float64(lcnt) + rsum*rsum/float64(rcnt) - parentScore
			if gain > lf.bestGain {
				lf.bestGain = gain
				lf.bestFeature = fi
				lf.bestBin = bin
			}
		}
	}
}

// partition splits the leaf's rows by its best split.
func partition(b *binner, lf *leafCand) (left, right []int) {
	fi, bin := lf.bestFeature, uint8(lf.bestBin)
	for _, r := range lf.rows {
		if b.rows[r][fi] <= bin {
			left = append(left, r)
		} else {
			right = append(right, r)
		}
	}
	return left, right
}
