package mart

// GreedyStep records one step of greedy forward feature selection: the
// feature chosen and the training MSE of the model built from all features
// selected so far.
type GreedyStep struct {
	Feature int
	Name    string
	MSE     float64
}

// GreedySelect runs the greedy forward feature-selection procedure of
// Section 6.5: repeatedly add the feature that, together with the features
// already selected, yields the lowest-MSE MART model. It returns the
// selection order with per-step MSE. names may be nil. steps is capped at
// the number of features.
func GreedySelect(X [][]float64, y []float64, names []string, steps int, opts Options) ([]GreedyStep, error) {
	if len(X) == 0 {
		return nil, nil
	}
	nf := len(X[0])
	if steps > nf {
		steps = nf
	}
	selected := make([]int, 0, steps)
	inSet := make([]bool, nf)
	var out []GreedyStep

	sub := make([][]float64, len(X))
	for step := 0; step < steps; step++ {
		bestF, bestMSE := -1, 0.0
		for f := 0; f < nf; f++ {
			if inSet[f] {
				continue
			}
			cols := append(append([]int(nil), selected...), f)
			for i, row := range X {
				v := make([]float64, len(cols))
				for j, c := range cols {
					v[j] = row[c]
				}
				sub[i] = v
			}
			m, err := Train(sub, y, opts)
			if err != nil {
				return nil, err
			}
			mse := MSE(m.PredictAll(sub), y)
			if bestF < 0 || mse < bestMSE {
				bestF, bestMSE = f, mse
			}
		}
		selected = append(selected, bestF)
		inSet[bestF] = true
		name := ""
		if names != nil {
			name = names[bestF]
		}
		out = append(out, GreedyStep{Feature: bestF, Name: name, MSE: bestMSE})
	}
	return out, nil
}
