// Package stats provides the small set of statistical helpers used across
// the progress-estimation library: norms of error vectors (the paper's L1
// and L2 progress-error metrics), quantiles, correlation, and online
// accumulation of mean/variance.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than two
// values.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// LpError computes the paper's progress-error metric over a vector of
// per-observation deviations d_t = estimate_t - truth_t:
//
//	( (1/n) * sum |d_t|^p )^(1/p)
//
// so p=1 is the mean absolute error and p=2 the root mean squared error.
func LpError(deviations []float64, p float64) float64 {
	if len(deviations) == 0 {
		return 0
	}
	var sum float64
	for _, d := range deviations {
		sum += math.Pow(math.Abs(d), p)
	}
	return math.Pow(sum/float64(len(deviations)), 1/p)
}

// L1Error is LpError with p = 1 (average absolute deviation).
func L1Error(deviations []float64) float64 {
	if len(deviations) == 0 {
		return 0
	}
	var sum float64
	for _, d := range deviations {
		sum += math.Abs(d)
	}
	return sum / float64(len(deviations))
}

// L2Error is LpError with p = 2 (root mean squared deviation).
func L2Error(deviations []float64) float64 {
	if len(deviations) == 0 {
		return 0
	}
	var sum float64
	for _, d := range deviations {
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(deviations)))
}

// RatioError returns max(est/true, true/est) averaged over observation
// pairs, the worst-case metric studied in the SAFE/PMAX line of work.
// Pairs where either value is <= 0 are skipped (they occur only at the very
// first observation of a query).
func RatioError(estimates, truths []float64) float64 {
	n := 0
	var sum float64
	for i := range estimates {
		e, tr := estimates[i], truths[i]
		if e <= 0 || tr <= 0 {
			continue
		}
		r := e / tr
		if r < 1 {
			r = 1 / r
		}
		sum += r
		n++
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Pearson returns the Pearson correlation coefficient of xs and ys, or 0
// when either input is (near-)constant.
func Pearson(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx < 1e-300 || syy < 1e-300 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Online accumulates count, mean and variance incrementally using
// Welford's algorithm. The zero value is ready to use.
type Online struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (o *Online) Add(x float64) {
	o.n++
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N returns the number of observations added.
func (o *Online) N() int { return o.n }

// Mean returns the running mean.
func (o *Online) Mean() float64 { return o.mean }

// Variance returns the running population variance.
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n)
}

// CoefVariation returns the coefficient of variation (stddev/mean), or 0
// when the mean is (near-)zero. Progress-estimator analysis uses it as a
// scale-free measure of variance in per-tuple work.
func (o *Online) CoefVariation() float64 {
	if math.Abs(o.mean) < 1e-300 {
		return 0
	}
	return math.Sqrt(o.Variance()) / math.Abs(o.mean)
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
