package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !almostEq(got, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Variance(xs); !almostEq(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEq(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestEmptyInputs(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || L1Error(nil) != 0 || L2Error(nil) != 0 {
		t.Error("empty inputs must yield 0")
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("Quantile of empty slice must be 0")
	}
}

func TestLpMatchesSpecialisations(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				continue
			}
			xs = append(xs, x)
		}
		if len(xs) == 0 {
			return true
		}
		return almostEq(LpError(xs, 1), L1Error(xs), 1e-9) &&
			almostEq(LpError(xs, 2), L2Error(xs), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestL2AtLeastL1(t *testing.T) {
	// RMS >= mean absolute value (power-mean inequality).
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				continue
			}
			xs = append(xs, x)
		}
		return L2Error(xs) >= L1Error(xs)-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRatioError(t *testing.T) {
	if got := RatioError([]float64{0.5}, []float64{0.25}); !almostEq(got, 2, 1e-12) {
		t.Errorf("RatioError = %v, want 2", got)
	}
	if got := RatioError([]float64{0.25}, []float64{0.5}); !almostEq(got, 2, 1e-12) {
		t.Errorf("RatioError symmetric = %v, want 2", got)
	}
	if got := RatioError([]float64{0, 0.5}, []float64{0.1, 0.5}); !almostEq(got, 1, 1e-12) {
		t.Errorf("RatioError skipping zeros = %v, want 1", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// input must not be mutated
	shuffled := []float64{5, 1, 4, 2, 3}
	Quantile(shuffled, 0.5)
	if shuffled[0] != 5 {
		t.Error("Quantile mutated its input")
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); !almostEq(got, 1, 1e-12) {
		t.Errorf("perfect correlation = %v, want 1", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); !almostEq(got, -1, 1e-12) {
		t.Errorf("perfect anticorrelation = %v, want -1", got)
	}
	if got := Pearson(xs, []float64{3, 3, 3, 3, 3}); got != 0 {
		t.Errorf("constant series correlation = %v, want 0", got)
	}
}

func TestOnlineMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	var o Online
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 7
		o.Add(xs[i])
	}
	if !almostEq(o.Mean(), Mean(xs), 1e-9) {
		t.Errorf("online mean %v != batch %v", o.Mean(), Mean(xs))
	}
	if !almostEq(o.Variance(), Variance(xs), 1e-9) {
		t.Errorf("online variance %v != batch %v", o.Variance(), Variance(xs))
	}
	if o.N() != 1000 {
		t.Errorf("N = %d, want 1000", o.N())
	}
}

func TestClamp(t *testing.T) {
	if Clamp(-1, 0, 1) != 0 || Clamp(2, 0, 1) != 1 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}
