// Package plan defines physical execution plans: the tree of operator
// nodes the engine executes and progress estimators observe. It mirrors
// the paper's notation (Section 3.1): Nodes(Q) enumerates plan nodes,
// Op(i) is the physical operator at node i, and Descendants(i) is the set
// of nodes below i.
package plan

import (
	"fmt"
	"strings"

	"progressest/internal/expr"
)

// OpType identifies a physical operator. The taxonomy matches the
// operators the paper's Table 1 reports on (nested loop / merge / hash
// joins, index seeks, batch sorts, stream aggregates) plus the usual
// scan/filter/sort/top plumbing.
type OpType int

// Physical operators.
const (
	TableScan OpType = iota
	IndexScan
	IndexSeek
	Filter
	Project
	HashJoin
	MergeJoin
	NestedLoopJoin
	// SemiJoin is a hash semi join implementing EXISTS sub-queries: it
	// emits each probe row at most once, when the build side contains a
	// matching key.
	SemiJoin
	Sort
	BatchSort
	HashAgg
	StreamAgg
	Top
	NumOpTypes // number of operator types; useful for feature vectors
)

// String implements fmt.Stringer.
func (op OpType) String() string {
	switch op {
	case TableScan:
		return "TableScan"
	case IndexScan:
		return "IndexScan"
	case IndexSeek:
		return "IndexSeek"
	case Filter:
		return "Filter"
	case Project:
		return "Project"
	case HashJoin:
		return "HashJoin"
	case MergeJoin:
		return "MergeJoin"
	case NestedLoopJoin:
		return "NestedLoopJoin"
	case SemiJoin:
		return "SemiJoin"
	case Sort:
		return "Sort"
	case BatchSort:
		return "BatchSort"
	case HashAgg:
		return "HashAgg"
	case StreamAgg:
		return "StreamAgg"
	case Top:
		return "Top"
	default:
		return fmt.Sprintf("OpType(%d)", int(op))
	}
}

// IsJoin reports whether the operator combines two inputs.
func (op OpType) IsJoin() bool {
	return op == HashJoin || op == MergeJoin || op == NestedLoopJoin || op == SemiJoin
}

// IsBlocking reports whether the operator fully consumes its (left) input
// before producing output, ending the input's pipeline. BatchSort is only
// partially blocking and therefore not included (Section 5.1 treats it as
// part of the surrounding pipeline).
func (op OpType) IsBlocking() bool {
	return op == Sort || op == HashAgg
}

// AggFunc is an aggregate function for HashAgg/StreamAgg.
type AggFunc int

// Aggregate functions.
const (
	AggCount AggFunc = iota
	AggSum
	AggMin
	AggMax
)

// String implements fmt.Stringer.
func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return fmt.Sprintf("AggFunc(%d)", int(f))
	}
}

// AggSpec is one aggregate expression: Func applied to column Col of the
// input row (Col ignored for AggCount).
type AggSpec struct {
	Func AggFunc
	Col  int
}

// Node is one physical operator in a plan tree. A single struct with
// operator-specific optional fields keeps plan construction, feature
// extraction and tree walking simple.
type Node struct {
	ID       int
	Op       OpType
	Children []*Node

	// Output schema: number of columns and display names (positional).
	OutCols  int
	ColNames []string

	// Scan / seek operators.
	TableName   string
	IndexColumn string // indexed column (IndexScan order / IndexSeek key)
	// Constant seek range for standalone IndexSeek drivers.
	SeekLo, SeekHi int64
	// For an IndexSeek on the inner side of a nested-loop join: the column
	// position of the *outer* row that supplies the seek key. -1 when the
	// seek uses the constant range above.
	SeekOuterCol int

	// Filter predicate (Filter) or residual join predicate.
	Pred expr.Predicate

	// Project column positions.
	ProjCols []int

	// Equijoin columns for HashJoin/MergeJoin: positions within the left
	// (outer/probe) and right (inner/build) child rows.
	JoinLeftCol, JoinRightCol int

	// Sort / BatchSort key positions; BatchSize for BatchSort.
	SortCols  []int
	BatchSize int

	// Aggregation.
	GroupCols []int
	Aggs      []AggSpec

	// Top.
	TopN int64

	// Optimizer state.
	EstRows  float64 // E_i at plan time (refined online by estimators)
	RowWidth float64 // logical bytes per output row
}

// A Plan is a rooted operator tree with nodes numbered 0..NumNodes-1 in
// depth-first (children before parent) order.
type Plan struct {
	Root  *Node
	nodes []*Node
}

// Finalize numbers the nodes, collects them, and returns the plan.
// It must be called once after the tree is built.
func Finalize(root *Node) *Plan {
	p := &Plan{Root: root}
	var visit func(n *Node)
	visit = func(n *Node) {
		for _, c := range n.Children {
			visit(c)
		}
		n.ID = len(p.nodes)
		p.nodes = append(p.nodes, n)
	}
	visit(root)
	return p
}

// Nodes returns all nodes in ID order.
func (p *Plan) Nodes() []*Node { return p.nodes }

// NumNodes returns the node count.
func (p *Plan) NumNodes() int { return len(p.nodes) }

// Node returns the node with the given ID.
func (p *Plan) Node(id int) *Node { return p.nodes[id] }

// Parent returns the parent of node n, or nil for the root.
func (p *Plan) Parent(n *Node) *Node {
	for _, cand := range p.nodes {
		for _, c := range cand.Children {
			if c == n {
				return cand
			}
		}
	}
	return nil
}

// Descendants returns the IDs of all nodes strictly below id.
func (p *Plan) Descendants(id int) []int {
	var out []int
	var visit func(n *Node)
	visit = func(n *Node) {
		for _, c := range n.Children {
			out = append(out, c.ID)
			visit(c)
		}
	}
	visit(p.nodes[id])
	return out
}

// TotalEstRows returns the sum of E_i over all nodes (the denominator of
// the TGN estimator at plan time).
func (p *Plan) TotalEstRows() float64 {
	var sum float64
	for _, n := range p.nodes {
		sum += n.EstRows
	}
	return sum
}

// String renders the plan as an indented tree.
func (p *Plan) String() string {
	var b strings.Builder
	var visit func(n *Node, depth int)
	visit = func(n *Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		fmt.Fprintf(&b, "#%d %s", n.ID, n.Op)
		if n.TableName != "" {
			fmt.Fprintf(&b, " %s", n.TableName)
		}
		if n.IndexColumn != "" {
			fmt.Fprintf(&b, " [%s]", n.IndexColumn)
		}
		if n.Pred != nil {
			fmt.Fprintf(&b, " %s", n.Pred)
		}
		fmt.Fprintf(&b, " (est=%.0f)\n", n.EstRows)
		for _, c := range n.Children {
			visit(c, depth+1)
		}
	}
	visit(p.Root, 0)
	return b.String()
}

// CountOp returns the number of nodes with the given operator type, the
// Count_op plan-encoding feature of Section 4.3.
func (p *Plan) CountOp(op OpType) int {
	cnt := 0
	for _, n := range p.nodes {
		if n.Op == op {
			cnt++
		}
	}
	return cnt
}
