package plan

import (
	"strings"
	"testing"
)

// buildSample constructs HashAgg(HashJoin(Filter(Scan a), Scan b)).
func buildSample() (*Plan, map[string]*Node) {
	scanA := &Node{Op: TableScan, TableName: "a", EstRows: 100, RowWidth: 16}
	filt := &Node{Op: Filter, Children: []*Node{scanA}, EstRows: 40, RowWidth: 16}
	scanB := &Node{Op: TableScan, TableName: "b", EstRows: 50, RowWidth: 8}
	join := &Node{Op: HashJoin, Children: []*Node{filt, scanB}, EstRows: 60, RowWidth: 24}
	agg := &Node{Op: HashAgg, Children: []*Node{join}, GroupCols: []int{0}, EstRows: 5, RowWidth: 8}
	return Finalize(agg), map[string]*Node{
		"scanA": scanA, "filt": filt, "scanB": scanB, "join": join, "agg": agg,
	}
}

func TestFinalizeNumbersDepthFirst(t *testing.T) {
	p, n := buildSample()
	if p.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d", p.NumNodes())
	}
	// Children numbered before parents; root last.
	if p.Root != n["agg"] || n["agg"].ID != 4 {
		t.Errorf("root should be the aggregate with the last ID, got %d", n["agg"].ID)
	}
	if n["scanA"].ID >= n["filt"].ID || n["filt"].ID >= n["join"].ID {
		t.Error("left chain must be numbered bottom-up")
	}
	for i, node := range p.Nodes() {
		if node.ID != i {
			t.Errorf("Nodes()[%d].ID = %d", i, node.ID)
		}
		if p.Node(i) != node {
			t.Errorf("Node(%d) mismatch", i)
		}
	}
}

func TestParentAndDescendants(t *testing.T) {
	p, n := buildSample()
	if p.Parent(n["scanA"]) != n["filt"] {
		t.Error("Parent(scanA) should be the filter")
	}
	if p.Parent(n["agg"]) != nil {
		t.Error("root has no parent")
	}
	desc := p.Descendants(n["join"].ID)
	if len(desc) != 3 {
		t.Fatalf("join should have 3 descendants, got %v", desc)
	}
	seen := map[int]bool{}
	for _, id := range desc {
		seen[id] = true
	}
	if !seen[n["scanA"].ID] || !seen[n["filt"].ID] || !seen[n["scanB"].ID] {
		t.Errorf("Descendants(join) = %v", desc)
	}
	if leaf := p.Descendants(n["scanA"].ID); len(leaf) != 0 {
		t.Errorf("leaf descendants = %v", leaf)
	}
}

func TestTotalEstRowsAndCountOp(t *testing.T) {
	p, _ := buildSample()
	if got := p.TotalEstRows(); got != 255 {
		t.Errorf("TotalEstRows = %v, want 255", got)
	}
	if p.CountOp(TableScan) != 2 || p.CountOp(HashJoin) != 1 || p.CountOp(Sort) != 0 {
		t.Error("CountOp wrong")
	}
}

func TestOpTypePredicates(t *testing.T) {
	for _, op := range []OpType{HashJoin, MergeJoin, NestedLoopJoin} {
		if !op.IsJoin() {
			t.Errorf("%v should be a join", op)
		}
	}
	for _, op := range []OpType{TableScan, Filter, Sort, BatchSort} {
		if op.IsJoin() {
			t.Errorf("%v should not be a join", op)
		}
	}
	if !Sort.IsBlocking() || !HashAgg.IsBlocking() {
		t.Error("Sort and HashAgg are blocking")
	}
	// BatchSort is only partially blocking (Section 5.1) — it must stay in
	// its pipeline.
	if BatchSort.IsBlocking() {
		t.Error("BatchSort must not be treated as fully blocking")
	}
	if StreamAgg.IsBlocking() {
		t.Error("StreamAgg streams")
	}
}

func TestStringForms(t *testing.T) {
	p, _ := buildSample()
	s := p.String()
	for _, want := range []string{"HashAgg", "HashJoin", "TableScan a", "TableScan b", "est="} {
		if !strings.Contains(s, want) {
			t.Errorf("plan rendering missing %q:\n%s", want, s)
		}
	}
	if OpType(99).String() == "" || AggFunc(99).String() == "" {
		t.Error("unknown enums should still render")
	}
	names := map[AggFunc]string{AggCount: "count", AggSum: "sum", AggMin: "min", AggMax: "max"}
	for f, want := range names {
		if f.String() != want {
			t.Errorf("AggFunc(%d) = %q, want %q", int(f), f.String(), want)
		}
	}
}
