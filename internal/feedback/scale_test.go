package feedback

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"progressest/internal/selection"
)

// scaleFamilies are the families the scale tests spread examples over.
var scaleFamilies = []string{"alpha", "beta", "gamma"}

// buildScaleCorpus writes n family-tagged examples into dir through a
// store with tiny segments, so the corpus spans several sealed segments
// plus an active tail. It returns the appended examples in order.
func buildScaleCorpus(t testing.TB, dir string, n int) []selection.Example {
	t.Helper()
	s, err := OpenStore(dir, StoreOptions{MaxSegmentBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]selection.Example, n)
	for i := range want {
		want[i] = familyExample(i, scaleFamilies[i%len(scaleFamilies)], false)
		if err := s.Append(want[i]); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Segments(); got < 3 {
		t.Fatalf("corpus spans %d segments, want >= 3 (shrink MaxSegmentBytes?)", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return want
}

// filterFamily mirrors SnapshotFamily's contract on a full snapshot.
func filterFamily(exs []selection.Example, family string) []selection.Example {
	var out []selection.Example
	for _, ex := range exs {
		if ex.Family == family {
			out = append(out, ex)
		}
	}
	return out
}

// sameExamples compares element-wise, treating nil and empty as equal
// (SnapshotFamily pre-sizes its result; the filter oracle does not).
func sameExamples(a, b []selection.Example) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

// sidecarPaths returns the index files present in dir, sorted.
func sidecarPaths(t *testing.T, dir string) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "seg-*.idx"))
	if err != nil {
		t.Fatal(err)
	}
	return paths
}

// TestSealedSegmentsGetSidecars: every sealed (non-last) segment carries a
// valid sidecar after rotation, and the sidecar content matches what a
// from-scratch rebuild of the segment produces.
func TestSealedSegmentsGetSidecars(t *testing.T) {
	dir := t.TempDir()
	buildScaleCorpus(t, dir, 60)
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	idxs := sidecarPaths(t, dir)
	if len(idxs) != len(segs)-1 {
		t.Fatalf("%d sidecars for %d segments, want one per sealed segment (%d)", len(idxs), len(segs), len(segs)-1)
	}
	for _, seg := range segs[:len(segs)-1] {
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		ix, ok := loadSegIndex(seg, data)
		if !ok {
			t.Fatalf("sidecar for %s fails validation", seg)
		}
		rebuilt, err := buildSegIndex(data, seg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ix, rebuilt) {
			t.Fatalf("sealed sidecar diverges from rebuild for %s:\n got %+v\nwant %+v", seg, ix, rebuilt)
		}
	}
}

// TestIndexRobustness: a missing, truncated, bit-flipped or stale sidecar
// must never change what the store reads — open falls back to a full
// rescan, returns the exact same corpus, and rewrites the sidecar.
func TestIndexRobustness(t *testing.T) {
	corrupt := map[string]func(t *testing.T, segPath string){
		"missing": func(t *testing.T, segPath string) {
			if err := os.Remove(indexPath(segPath)); err != nil {
				t.Fatal(err)
			}
		},
		"truncated": func(t *testing.T, segPath string) {
			b, err := os.ReadFile(indexPath(segPath))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(indexPath(segPath), b[:len(b)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"bitflip": func(t *testing.T, segPath string) {
			b, err := os.ReadFile(indexPath(segPath))
			if err != nil {
				t.Fatal(err)
			}
			b[len(b)/2] ^= 0x40
			if err := os.WriteFile(indexPath(segPath), b, 0o644); err != nil {
				t.Fatal(err)
			}
		},
		// An older binary (no index support) appended a record to a
		// segment a newer binary had sealed: the prefix CRC still
		// matches, only the watermark probe catches it.
		"stale-grown": func(t *testing.T, segPath string) {
			ex := familyExample(9999, "late", false)
			payload, err := encodeExample(&ex)
			if err != nil {
				t.Fatal(err)
			}
			f, err := os.OpenFile(segPath, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(appendRecord(nil, payload)); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, breakIt := range corrupt {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			want := buildScaleCorpus(t, dir, 60)
			segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
			victim := segs[1] // a sealed, non-first segment
			breakIt(t, victim)

			s, err := OpenStore(dir, StoreOptions{MaxSegmentBytes: 2048})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			got, err := s.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if name == "stale-grown" {
				// The late append IS part of the corpus now — the index
				// must not hide it. Rebuild the expectation from the
				// segments on disk, in segment order.
				want = nil
				for _, seg := range segs {
					data, err := os.ReadFile(seg)
					if err != nil {
						t.Fatal(err)
					}
					exs, _, _, _, err := scanRecords(data, seg, true)
					if err != nil {
						t.Fatal(err)
					}
					want = append(want, exs...)
				}
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: snapshot diverges after sidecar damage: got %d examples, want %d", name, len(got), len(want))
			}
			for _, fam := range append([]string{""}, scaleFamilies...) {
				byFam, err := s.SnapshotFamily(fam)
				if err != nil {
					t.Fatal(err)
				}
				if !sameExamples(byFam, filterFamily(want, fam)) {
					t.Fatalf("%s: SnapshotFamily(%q) diverges after sidecar damage", name, fam)
				}
			}
			// The open rebuilt and rewrote the sidecar: it must validate
			// against the segment now.
			data, err := os.ReadFile(victim)
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := loadSegIndex(victim, data); !ok {
				t.Fatalf("%s: sidecar not repaired on open", name)
			}
		})
	}
}

// TestSnapshotFamilyMatchesFilter: the indexed per-family read is
// indistinguishable from filtering a full snapshot, for every family
// including the untagged "" slice and an absent one.
func TestSnapshotFamilyMatchesFilter(t *testing.T) {
	dir := t.TempDir()
	buildScaleCorpus(t, dir, 60)
	s, err := OpenStore(dir, StoreOptions{MaxSegmentBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Grow the live tail too, so the test covers the undecoded-tail path.
	if _, err := s.AppendAll(familyExamples(7, 500, "alpha", false)); err != nil {
		t.Fatal(err)
	}
	full, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{"alpha", "beta", "gamma", "", "absent"} {
		got, err := s.SnapshotFamily(fam)
		if err != nil {
			t.Fatal(err)
		}
		if !sameExamples(got, filterFamily(full, fam)) {
			t.Fatalf("SnapshotFamily(%q) = %d examples, want %d (filter of full snapshot)",
				fam, len(got), len(filterFamily(full, fam)))
		}
	}
}

// TestSnapshotScanWorkersEquivalent: the parallel segment scan assembles
// the exact sequential result for every worker count.
func TestSnapshotScanWorkersEquivalent(t *testing.T) {
	dir := t.TempDir()
	want := buildScaleCorpus(t, dir, 90)
	for _, workers := range []int{1, 2, 4, 16} {
		s, err := OpenStore(dir, StoreOptions{MaxSegmentBytes: 2048, ScanWorkers: workers})
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("ScanWorkers=%d snapshot diverges from append order", workers)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDecodeCacheWarmSnapshots: a second snapshot serves every sealed
// segment from the cache; disabling the cache keeps misses growing; and
// retention evicts the dropped segment's entry.
func TestDecodeCacheWarmSnapshots(t *testing.T) {
	dir := t.TempDir()
	buildScaleCorpus(t, dir, 60)
	s, err := OpenStore(dir, StoreOptions{MaxSegmentBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	cold := s.Stats()
	if cold.CacheHits != 0 || cold.CacheMisses == 0 {
		t.Fatalf("cold snapshot: hits=%d misses=%d, want 0 hits and >0 misses", cold.CacheHits, cold.CacheMisses)
	}
	if _, err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	warm := s.Stats()
	if warm.CacheMisses != cold.CacheMisses {
		t.Fatalf("warm snapshot re-decoded sealed segments: misses %d -> %d", cold.CacheMisses, warm.CacheMisses)
	}
	if wantHits := uint64(cold.Segments - 1); warm.CacheHits != wantHits {
		t.Fatalf("warm snapshot hits = %d, want %d (every sealed segment)", warm.CacheHits, wantHits)
	}
	if warm.CachedSegments == 0 || warm.CacheBytes == 0 || warm.CacheCapBytes != defaultCacheBytes {
		t.Fatalf("cache footprint not reported: %+v", warm)
	}
}

func TestDecodeCacheDisabled(t *testing.T) {
	dir := t.TempDir()
	buildScaleCorpus(t, dir, 60)
	s, err := OpenStore(dir, StoreOptions{MaxSegmentBytes: 2048, CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 2; i++ {
		if _, err := s.Snapshot(); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.CacheHits != 0 || st.CacheMisses != 0 || st.CacheCapBytes != 0 {
		t.Fatalf("disabled cache still counting: %+v", st)
	}
}

// TestCorpusStatsShape: Stats reports the segment count, byte total and
// per-family example counts without touching the disk.
func TestCorpusStatsShape(t *testing.T) {
	dir := t.TempDir()
	want := buildScaleCorpus(t, dir, 60)
	s, err := OpenStore(dir, StoreOptions{MaxSegmentBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st := s.Stats()
	if st.Segments != s.Segments() || st.Examples != len(want) {
		t.Fatalf("Stats = %+v, want %d segments / %d examples", st, s.Segments(), len(want))
	}
	wantFams := make(map[string]int)
	for _, ex := range want {
		wantFams[ex.Family]++
	}
	if !reflect.DeepEqual(st.Families, wantFams) {
		t.Fatalf("Stats.Families = %v, want %v", st.Families, wantFams)
	}
	var diskBytes int64
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	for _, seg := range segs {
		fi, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		diskBytes += fi.Size()
	}
	if st.Bytes != diskBytes {
		t.Fatalf("Stats.Bytes = %d, disk holds %d", st.Bytes, diskBytes)
	}
}

// versionKey strips the wall-clock from a version for bit-identity
// comparison across two independently trained registries.
type versionKey struct {
	ID         int
	Family     string
	Source     string
	Decision   string
	CorpusSize int
	HoldoutL1  float64
	HoldoutN   int
	BaselineL1 float64
	Current    bool
}

func registryKeys(reg *Registry) []versionKey {
	vs := reg.Versions()
	out := make([]versionKey, len(vs))
	for i, v := range vs {
		out[i] = versionKey{
			ID:         v.ID,
			Family:     v.Meta.Family,
			Source:     v.Meta.Source,
			Decision:   v.Meta.Decision,
			CorpusSize: v.Meta.CorpusSize,
			HoldoutL1:  v.Meta.HoldoutL1,
			HoldoutN:   v.Meta.HoldoutN,
			BaselineL1: v.Meta.BaselineL1,
			Current:    reg.IsCurrent(v),
		}
	}
	return out
}

// TestRetrainFamiliesParallelMatchesSequential: a parallel-fit retrain
// publishes the exact version sequence — ids, metrics, gate decisions,
// selectors, routing — a sequential retrain of the same corpus does.
func TestRetrainFamiliesParallelMatchesSequential(t *testing.T) {
	run := func(workers int) (*Registry, *Retrainer) {
		t.Helper()
		store, err := OpenStore(t.TempDir(), StoreOptions{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { store.Close() })
		// Mixed truthful/inverted families so the models differ and the
		// second round exercises the gate against real baselines.
		if _, err := store.AppendAll(familyExamples(30, 0, "alpha", false)); err != nil {
			t.Fatal(err)
		}
		if _, err := store.AppendAll(familyExamples(30, 100, "beta", true)); err != nil {
			t.Fatal(err)
		}
		if _, err := store.AppendAll(familyExamples(30, 200, "gamma", false)); err != nil {
			t.Fatal(err)
		}
		if _, err := store.AppendAll(familyExamples(30, 300, "delta", true)); err != nil {
			t.Fatal(err)
		}
		reg := NewRegistry()
		ret := NewRetrainer(store, reg, RetrainerConfig{
			Selection:         fastConfig(),
			FamilyModels:      true,
			MinFamilyExamples: 20,
			TrainWorkers:      workers,
		})
		if _, err := ret.Retrain("manual"); err != nil {
			t.Fatal(err)
		}
		// Second round on a grown corpus: families now have serving
		// baselines, so the gate path runs too.
		if _, err := store.AppendAll(familyExamples(10, 400, "alpha", false)); err != nil {
			t.Fatal(err)
		}
		if _, err := store.AppendAll(familyExamples(10, 500, "beta", true)); err != nil {
			t.Fatal(err)
		}
		if _, err := ret.Retrain("manual"); err != nil {
			t.Fatal(err)
		}
		return reg, ret
	}

	seqReg, seqRet := run(1)
	parReg, parRet := run(4)

	seqKeys, parKeys := registryKeys(seqReg), registryKeys(parReg)
	if !reflect.DeepEqual(seqKeys, parKeys) {
		t.Fatalf("parallel retrain diverges from sequential:\n seq %+v\n par %+v", seqKeys, parKeys)
	}
	seqVs, parVs := seqReg.Versions(), parReg.Versions()
	for i := range seqVs {
		if !reflect.DeepEqual(seqVs[i].Selector, parVs[i].Selector) {
			t.Fatalf("version %d: parallel selector differs from sequential", seqVs[i].ID)
		}
	}
	// Decision histories match too (modulo wall-clock).
	seqDs, parDs := seqRet.Decisions(), parRet.Decisions()
	if len(seqDs) != len(parDs) {
		t.Fatalf("decision count: seq %d, par %d", len(seqDs), len(parDs))
	}
	for i := range seqDs {
		seqDs[i].At, parDs[i].At = time.Time{}, time.Time{}
		if seqDs[i] != parDs[i] {
			t.Fatalf("decision %d diverges:\n seq %+v\n par %+v", i, seqDs[i], parDs[i])
		}
	}
}

// TestTickTrainsWhenDue: the shared background tick still runs the
// size/age retrain (it replaced the Start loop's direct calls).
func TestTickTrainsWhenDue(t *testing.T) {
	store, err := OpenStore(t.TempDir(), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if _, err := store.AppendAll(familyExamples(30, 0, "alpha", false)); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	ret := NewRetrainer(store, reg, RetrainerConfig{
		Selection: fastConfig(),
		Policy:    RetrainPolicy{MinNewExamples: 1, MinInterval: time.Nanosecond},
	})
	ret.tick()
	if reg.Current() == nil {
		t.Fatal("tick with a due policy did not train")
	}
	if got := reg.Current().Meta.Source; got != "auto" {
		t.Fatalf("tick trained with source %q, want auto", got)
	}
}

// TestStoreOptionsDefaults pins the new knobs' zero-value behavior.
func TestStoreOptionsDefaults(t *testing.T) {
	o := StoreOptions{}.withDefaults()
	if o.CacheBytes != defaultCacheBytes {
		t.Fatalf("default CacheBytes = %d, want %d", o.CacheBytes, int64(defaultCacheBytes))
	}
	if o.ScanWorkers < 1 {
		t.Fatalf("default ScanWorkers = %d, want >= 1", o.ScanWorkers)
	}
	o = StoreOptions{CacheBytes: -1, ScanWorkers: -3}.withDefaults()
	if o.CacheBytes > 0 || o.ScanWorkers != 1 {
		t.Fatalf("negative knobs not clamped: %+v", o)
	}
}

// TestDecodeCacheEviction exercises the LRU bound directly.
func TestDecodeCacheEviction(t *testing.T) {
	c := newDecodeCache(100)
	exs := func(n int) []selection.Example { return make([]selection.Example, n) }
	c.put("a", exs(1), 40)
	c.put("b", exs(2), 40)
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted under budget")
	}
	c.put("c", exs(3), 40) // over budget: evicts b (a was just used)
	if _, ok := c.get("b"); ok {
		t.Fatal("LRU victim b survived")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("recently used a evicted")
	}
	c.put("huge", exs(4), 1000) // larger than the whole budget: not admitted
	if _, ok := c.get("huge"); ok {
		t.Fatal("oversized entry admitted")
	}
	c.remove("a")
	if _, ok := c.get("a"); ok {
		t.Fatal("removed entry still served")
	}
	_, _, size, entries := c.stats()
	if size != 40 || entries != 1 {
		t.Fatalf("cache footprint after eviction: size=%d entries=%d, want 40/1", size, entries)
	}
}
