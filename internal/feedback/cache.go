package feedback

import (
	"container/list"
	"sync"

	"progressest/internal/selection"
)

// decodeCache memoises the decoded examples of SEALED segments, which are
// immutable — the only way a sealed segment's content changes is
// retention deleting it, which evicts the entry. Bounded in bytes (the
// on-disk segment size stands in for the decoded footprint) with
// least-recently-used eviction, so a corpus larger than the budget keeps
// its hottest segments decoded and a warm Snapshot re-decodes only the
// active tail. Cached slices are handed out SHARED: every consumer of
// Snapshot/SnapshotFamily treats examples as read-only (training and
// evaluation never mutate them), and the assembly step always copies the
// slice headers into a fresh top-level slice, so the cache's backing
// arrays are never appended over.
type decodeCache struct {
	mu    sync.Mutex
	cap   int64
	size  int64
	lru   *list.List // front = most recently used
	byKey map[string]*list.Element

	hits, misses uint64
}

type cacheEntry struct {
	key   string
	bytes int64
	exs   []selection.Example
}

func newDecodeCache(capBytes int64) *decodeCache {
	return &decodeCache{cap: capBytes, lru: list.New(), byKey: make(map[string]*list.Element)}
}

// get returns the cached decode for a segment and records the hit/miss.
func (c *decodeCache) get(key string) ([]selection.Example, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).exs, true
}

// put caches one sealed segment's decode, evicting least-recently-used
// entries until the byte budget holds. A segment larger than the whole
// budget is not cached at all — admitting it would just evict everything
// else for a single entry the next put removes.
func (c *decodeCache) put(key string, exs []selection.Example, bytes int64) {
	if bytes > c.cap {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		ent := el.Value.(*cacheEntry)
		c.size += bytes - ent.bytes
		ent.exs, ent.bytes = exs, bytes
		c.lru.MoveToFront(el)
	} else {
		c.byKey[key] = c.lru.PushFront(&cacheEntry{key: key, bytes: bytes, exs: exs})
		c.size += bytes
	}
	for c.size > c.cap && c.lru.Len() > 1 {
		c.evictOldestLocked()
	}
}

// remove drops a segment's entry (retention deleted the file).
func (c *decodeCache) remove(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.removeLocked(el)
	}
}

func (c *decodeCache) evictOldestLocked() {
	if el := c.lru.Back(); el != nil {
		c.removeLocked(el)
	}
}

func (c *decodeCache) removeLocked(el *list.Element) {
	ent := el.Value.(*cacheEntry)
	c.lru.Remove(el)
	delete(c.byKey, ent.key)
	c.size -= ent.bytes
}

// stats returns the lifetime hit/miss counters and the current footprint.
func (c *decodeCache) stats() (hits, misses uint64, size int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.size, c.lru.Len()
}
