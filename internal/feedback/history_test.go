package feedback

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestModelDirPersistsVersionHistory: the manifest carries up to
// maxPersistHistory earlier versions per routing target, and a restored
// registry can Rollback without ever having trained — the operator
// escape hatch survives a restart.
func TestModelDirPersistsVersionHistory(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(filepath.Join(dir, "corpus"), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	md, err := OpenModelDir(filepath.Join(dir, "models"))
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	ret := NewRetrainer(store, reg, RetrainerConfig{
		Selection: fastConfig(),
		Gate:      QualityGate{Disabled: true},
		Persist:   md,
	})
	if _, err := store.AppendAll(trainable(40, 0)); err != nil {
		t.Fatal(err)
	}
	v1, err := ret.Retrain("manual")
	if err != nil {
		t.Fatal(err)
	}
	// Grow the corpus so v2 is distinguishable by CorpusSize after the
	// restore renumbers version IDs.
	if _, err := store.AppendAll(trainable(20, 100)); err != nil {
		t.Fatal(err)
	}
	v2, err := ret.Retrain("manual")
	if err != nil {
		t.Fatal(err)
	}
	if v1.Meta.CorpusSize == v2.Meta.CorpusSize {
		t.Fatal("test needs distinguishable versions")
	}

	// The manifest on disk records the earlier version as history.
	raw, err := os.ReadFile(filepath.Join(dir, "models", "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Targets []struct {
			Family  string `json:"family"`
			History []struct {
				CorpusSize int `json:"corpus_size"`
			} `json:"history"`
		} `json:"targets"`
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if len(m.Targets) != 1 || m.Targets[0].Family != "" {
		t.Fatalf("manifest targets = %+v, want the global target only", m.Targets)
	}
	hist := m.Targets[0].History
	if len(hist) != 1 || hist[0].CorpusSize != v1.Meta.CorpusSize {
		t.Fatalf("manifest history = %+v, want one entry with corpus size %d", hist, v1.Meta.CorpusSize)
	}

	// "Restart": a fresh registry restored from disk serves v2 and can
	// still roll back to v1 — the history entries were republished.
	md2, err := OpenModelDir(filepath.Join(dir, "models"))
	if err != nil {
		t.Fatal(err)
	}
	reg2 := NewRegistry()
	if _, err := md2.Restore(reg2); err != nil {
		t.Fatal(err)
	}
	cur := reg2.Current()
	if cur == nil || cur.Meta.CorpusSize != v2.Meta.CorpusSize || !cur.Meta.TrainedAt.Equal(v2.Meta.TrainedAt) {
		t.Fatalf("restored current = %+v, want v2 (corpus %d)", cur, v2.Meta.CorpusSize)
	}
	back, err := reg2.Rollback("")
	if err != nil {
		t.Fatalf("rollback after restore: %v", err)
	}
	if back.Meta.CorpusSize != v1.Meta.CorpusSize || !back.Meta.TrainedAt.Equal(v1.Meta.TrainedAt) {
		t.Fatalf("rolled back to %+v, want v1 (corpus %d)", back.Meta, v1.Meta.CorpusSize)
	}

	// Syncing the rolled-back state and restoring again serves v1: the
	// rollback itself survives the next restart.
	if err := md2.Sync(reg2); err != nil {
		t.Fatal(err)
	}
	reg3 := NewRegistry()
	if _, err := md2.Restore(reg3); err != nil {
		t.Fatal(err)
	}
	if cur := reg3.Current(); cur == nil || cur.Meta.CorpusSize != v1.Meta.CorpusSize {
		t.Fatalf("post-rollback restart serves %+v, want v1 (corpus %d)", cur, v1.Meta.CorpusSize)
	}
}
