package feedback

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"

	"progressest/internal/selection"
)

// sigExample is familyExample with a plan signature, so compaction's
// (family, signature) grouping has something to group by.
func sigExample(i int, family, sig string) selection.Example {
	e := familyExample(i, family, false)
	e.Signature = sig
	return e
}

// TestPlanCompaction pins the planner's contract: largest groups are
// downsampled first, no tagged family is cut below its quota, untagged
// records have no floor, and survivors stay spread across the segment
// (alternating ordinals drop before contiguous ones).
func TestPlanCompaction(t *testing.T) {
	// 8 burst records (one signature), 2 sparse, 2 untagged.
	fams := []string{"b", "b", "s", "b", "b", "", "b", "b", "s", "b", "b", ""}
	sigs := []string{"x", "x", "r", "x", "x", "u", "x", "x", "r", "x", "x", "u"}
	totals := map[string]int{"b": 8, "s": 2, "": 2}

	drop := planCompaction(fams, sigs, totals, 2, 6)
	dropped := map[string]int{}
	for i, d := range drop {
		if d {
			dropped[fams[i]]++
		}
	}
	// burst budget 8-2=6 covers all of needed; sparse is at quota and
	// untagged is a smaller group, so neither is touched.
	if dropped["b"] != 6 || dropped["s"] != 0 || dropped[""] != 0 {
		t.Fatalf("dropped per family = %v, want b:6 only", dropped)
	}
	// The 2 burst survivors must not be adjacent members of the group:
	// alternating ordinals are dropped first.
	var kept []int
	for i, d := range drop {
		if fams[i] == "b" && !d {
			kept = append(kept, i)
		}
	}
	if len(kept) != 2 {
		t.Fatalf("burst survivors %v, want 2", kept)
	}

	// Quota floor beats need: with everything quota-protected nothing
	// drops even when needed is huge.
	drop = planCompaction(fams, sigs, totals, 100, 1000)
	for i, d := range drop {
		if d && fams[i] != "" {
			t.Fatalf("quota-protected record %d dropped", i)
		}
	}

	// needed <= 0 is a no-op.
	for _, d := range planCompaction(fams, sigs, totals, 0, 0) {
		if d {
			t.Fatal("planCompaction dropped records with needed=0")
		}
	}
}

// TestCompactionShedsBurstPreservesSparse is the headline lifecycle
// property: a sparse family interleaved with a 3× burst across every
// segment blocks whole-segment retention entirely (each segment holds
// quota-protected records), the signature-aware compactor then sheds the
// burst's bulk record-by-record, and the sparse family survives intact —
// with enough examples that its own drift retrain still trains on them.
func TestCompactionShedsBurstPreservesSparse(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir, StoreOptions{
		MaxSegmentBytes: 2048, MaxExamples: 150, FamilyQuota: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	var sparse []int
	for i := 0; i < 400; i++ {
		fam, sig := "burst", "hot-"+string(rune('a'+i%3))
		if i%4 == 3 {
			fam, sig = "sparse", "rare"
			sparse = append(sparse, i)
		}
		if err := store.Append(sigExample(i, fam, sig)); err != nil {
			t.Fatal(err)
		}
	}
	// Quota blocked every whole-segment delete: the corpus is far over
	// its 150 cap.
	if store.Len() != 400 {
		t.Fatalf("retention deleted quota-protected segments: %d examples left", store.Len())
	}

	dropped, err := store.Compact()
	if err != nil {
		t.Fatal(err)
	}
	// Compaction sheds exactly the burst's budget (300-100) and stops at
	// the quota floor, even though the cap would want 250 gone.
	if dropped != 200 || store.Len() != 200 {
		t.Fatalf("compaction dropped %d (corpus %d), want 200 (corpus 200)", dropped, store.Len())
	}
	st := store.Stats()
	if st.Families["sparse"] != 100 || st.Families["burst"] != 100 {
		t.Fatalf("family counts after compaction = %v, want sparse:100 burst:100", st.Families)
	}
	if st.CompactionRuns == 0 || st.CompactionDropped != 200 {
		t.Fatalf("compaction counters = %+v", st)
	}

	// Every sparse example survived, in order.
	got, err := store.SnapshotFamily("sparse")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(sparse) {
		t.Fatalf("sparse family has %d examples, want %d", len(got), len(sparse))
	}
	for i := range got {
		if int(got[i].Meta["query"]) != sparse[i] {
			t.Fatalf("sparse example %d is query %v, want %d", i, got[i].Meta["query"], sparse[i])
		}
	}

	// The sparse family's drift retrain still finds them: after the burst,
	// a drifted "sparse" target trains on its full 100-example slice.
	reg := NewRegistry()
	drift := NewDriftTracker(DriftConfig{Window: 16, MinSamples: 4})
	r := NewRetrainer(store, reg, RetrainerConfig{
		Selection: fastConfig(), FamilyModels: true, MinFamilyExamples: 10,
		Drift: drift, DriftRetrain: true,
	})
	if _, err := r.Retrain("manual"); err != nil {
		t.Fatal(err)
	}
	vs := reg.CurrentFor("sparse")
	if vs == nil || vs.Meta.Family != "sparse" {
		t.Fatalf("sparse family model missing after burst: %+v", vs)
	}
	drift.Record(ServedModel{
		Target: "sparse", Version: vs.ID, Selector: vs.Selector,
		BaselineL1: vs.Meta.HoldoutL1, BaselineN: vs.Meta.HoldoutN,
	}, repeat(0.9, 8))
	r.retrainDrifted()
	ns := reg.CurrentFor("sparse")
	if ns == nil || ns.ID == vs.ID || ns.Meta.Source != "drift" {
		t.Fatalf("sparse drift retrain did not run: %+v", ns)
	}
	if ns.Meta.CorpusSize != 100 {
		t.Fatalf("sparse drift retrain saw %d examples, want the full 100", ns.Meta.CorpusSize)
	}
}

// TestCompactionByteCompatible: a compacted segment is a byte-for-byte
// valid segment in the original format — the reopened store (fresh
// scan + sidecar validation) sees exactly the survivors the compacting
// store kept, and the rewritten sidecars pass loadSegIndex against the
// rewritten files.
func TestCompactionByteCompatible(t *testing.T) {
	dir := t.TempDir()
	opts := StoreOptions{MaxSegmentBytes: 2048, MaxExamples: 30, FamilyQuota: 12}
	store, err := OpenStore(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		fam, sig := "a", "heavy"
		if i%5 == 4 {
			fam, sig = "b", "light"
		}
		if err := store.Append(sigExample(i, fam, sig)); err != nil {
			t.Fatal(err)
		}
	}
	before, err := store.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Compact(); err != nil {
		t.Fatal(err)
	}
	after, err := store.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Survivors are a subsequence of the pre-compaction corpus.
	j := 0
	for i := range after {
		for j < len(before) && before[j].Meta["query"] != after[i].Meta["query"] {
			j++
		}
		if j == len(before) {
			t.Fatalf("example %v not in (or out of order with) the original corpus", after[i].Meta["query"])
		}
		j++
	}
	// Every b example is quota-protected.
	if n := store.Stats().Families["b"]; n != 12 {
		t.Fatalf("family b has %d examples, want all 12", n)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Rewritten sidecars must validate against the rewritten segments.
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	validated := 0
	for _, p := range segs {
		if _, err := os.Stat(indexPath(p)); err != nil {
			continue // unsealed tail has no sidecar
		}
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if ix, ok := loadSegIndex(p, data); !ok || ix == nil {
			t.Fatalf("sidecar for %s does not validate after compaction", p)
		}
		validated++
	}
	if validated == 0 {
		t.Fatal("no sealed segment sidecars to validate")
	}

	// A fresh open sees exactly the compacted corpus.
	store2, err := OpenStore(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	reopened, err := store2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(reopened) != len(after) {
		t.Fatalf("reopened corpus has %d examples, compacting store kept %d", len(reopened), len(after))
	}
	for i := range after {
		if reopened[i].Meta["query"] != after[i].Meta["query"] || reopened[i].Family != after[i].Family {
			t.Fatalf("reopened example %d = %v/%s, want %v/%s",
				i, reopened[i].Meta["query"], reopened[i].Family, after[i].Meta["query"], after[i].Family)
		}
	}
}

// TestCompactorBackground: the background loop compacts an over-cap
// store without being asked, and Stop drains it.
func TestCompactorBackground(t *testing.T) {
	store, err := OpenStore(t.TempDir(), StoreOptions{
		MaxSegmentBytes: 2048, MaxExamples: 30, FamilyQuota: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	for i := 0; i < 60; i++ {
		fam, sig := "a", "heavy"
		if i%5 == 4 {
			fam, sig = "b", "light"
		}
		if err := store.Append(sigExample(i, fam, sig)); err != nil {
			t.Fatal(err)
		}
	}
	c := NewCompactor(store, time.Millisecond)
	c.Start()
	defer c.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for store.Stats().CompactionRuns == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if st := store.Stats(); st.CompactionRuns == 0 {
		t.Fatalf("background compactor never ran: %+v", st)
	}
	if err := c.LastError(); err != nil {
		t.Fatal(err)
	}
	if n := store.Stats().Families["b"]; n != 12 {
		t.Fatalf("background compaction lost quota-protected examples: b=%d", n)
	}
}

// segImage builds a valid segment image (header + CRC-framed records)
// from encoded examples — the fuzz seed shape.
func segImage(t testing.TB, exs []selection.Example) []byte {
	t.Helper()
	img := segmentHeader()
	for i := range exs {
		payload, err := encodeExample(&exs[i])
		if err != nil {
			t.Fatal(err)
		}
		var hdr [recHeaderSize]byte
		binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
		img = append(img, hdr[:]...)
		img = append(img, payload...)
	}
	return img
}

// FuzzCompactSegmentImage fuzzes the compacted-segment format: for any
// byte blob that parses as a segment, planning + survivor byte-copy must
// yield an image that (a) still parses with exactly the kept records,
// (b) keeps the original format version, and (c) decodes to exactly the
// kept examples in order — the invariants the sealed-segment reader,
// sidecar index and decode cache rely on.
func FuzzCompactSegmentImage(f *testing.F) {
	seed := []selection.Example{
		sigExample(1, "a", "x"), sigExample(2, "a", "x"), sigExample(3, "b", "y"),
		sigExample(4, "", ""), sigExample(5, "a", "z"),
	}
	f.Add(segImage(f, seed), 1, 3)
	f.Add(segImage(f, seed[:2]), 0, 100)
	f.Add(segImage(f, nil), 2, 1)
	f.Add([]byte("PESTCORP\x02\x00\x00\x00"), 1, 1)
	f.Fuzz(func(t *testing.T, data []byte, quota, needed int) {
		ix, err := buildSegIndex(data, "fuzz")
		if err != nil {
			return // not a segment: compaction never sees it
		}
		data = data[:ix.good]
		fams := make([]string, len(ix.offsets))
		sigs := make([]string, len(ix.offsets))
		for i, off := range ix.offsets {
			_, payload, ok := recordAt(data, off)
			if !ok {
				t.Fatalf("index offset %d does not address an intact record", off)
			}
			ex, err := decodeExample(payload, ix.format)
			if err != nil {
				return // CRC-valid but undecodable: CompactOnce errors out, never rewrites
			}
			fams[i], sigs[i] = ex.Family, ex.Signature
		}
		totals := map[string]int{}
		for _, fam := range fams {
			totals[fam]++
		}
		drop := planCompaction(fams, sigs, totals, quota, needed)

		img := append([]byte(nil), data[:segHeaderSize]...)
		kept := 0
		for i, off := range ix.offsets {
			if !drop[i] {
				img = append(img, data[off:ix.recordEnd(i)]...)
				kept++
			}
		}
		nix, err := buildSegIndex(img, "fuzz-compacted")
		if err != nil {
			t.Fatalf("compacted image does not parse: %v", err)
		}
		if len(nix.offsets) != kept {
			t.Fatalf("compacted image has %d records, want %d", len(nix.offsets), kept)
		}
		if nix.format != ix.format {
			t.Fatalf("compaction changed the format: %d -> %d", ix.format, nix.format)
		}
		if nix.good != int64(len(img)) {
			t.Fatalf("compacted image has %d trailing junk bytes", int64(len(img))-nix.good)
		}
		got, count, _, _, err := scanRecords(img, "fuzz-compacted", true)
		if err != nil || count != kept {
			t.Fatalf("compacted image scan: %d records, err %v; want %d", count, err, kept)
		}
		// Quota invariant: no tagged family that planCompaction was allowed
		// to touch dropped below its floor (families already under quota
		// must not shrink at all).
		keptFams := map[string]int{}
		for i := range got {
			keptFams[got[i].Family]++
		}
		if quota > 0 {
			for fam, n := range totals {
				if fam == "" {
					continue
				}
				floor := min(n, quota)
				if keptFams[fam] < floor {
					t.Fatalf("family %q cut to %d, floor %d", fam, keptFams[fam], floor)
				}
			}
		}
		// Survivors decode to exactly the kept originals, in order.
		j := 0
		for i := range fams {
			if drop[i] {
				continue
			}
			if got[j].Family != fams[i] || got[j].Signature != sigs[i] {
				t.Fatalf("survivor %d is %s/%s, want %s/%s", j, got[j].Family, got[j].Signature, fams[i], sigs[i])
			}
			j++
		}
	})
}
