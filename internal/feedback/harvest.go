package feedback

import (
	"sync"

	"progressest/internal/exec"
	"progressest/internal/workload"
)

// HarvestStats counts the harvester's lifetime activity.
type HarvestStats struct {
	// Queries is the number of finished queries harvested.
	Queries int `json:"queries"`
	// Examples is the number of labelled examples appended to the store.
	Examples int `json:"examples"`
	// Skipped counts pipelines filtered out (too few observations).
	Skipped int `json:"skipped"`
	// Errors counts failed store appends (e.g. harvesting after Close).
	Errors int `json:"errors"`
}

// Harvester turns finished query executions into corpus examples. It
// reuses workload.HarvestTrace — the exact conversion the batch training
// path applies — so an online-harvested corpus is bit-identical to a
// batch harvest of the same traces. When wired with a DriftTracker it
// additionally closes the observed-vs-predicted loop: each harvested
// example's errors are replayed through the selector version that served
// the query, and the served estimator's error is recorded against that
// version's routing target.
type Harvester struct {
	store *ExampleStore
	// minObs filters pipelines with too few counter snapshots (<= 0 uses
	// the batch default, 8).
	minObs int
	// drift, when non-nil, receives the observed serving errors of every
	// harvested query that was served by a pinned model version.
	drift *DriftTracker
	// canary, when non-nil, shadow-scores pending challengers on the same
	// harvested examples (champion/challenger confirmation, see canary.go).
	canary *Canary

	mu      sync.Mutex
	stats   HarvestStats
	lastErr error
}

// NewHarvester wires a harvester to its corpus store. drift and canary
// may be nil (no observed-error tracking / no canary confirmation).
func NewHarvester(store *ExampleStore, minObs int, drift *DriftTracker, canary *Canary) *Harvester {
	return &Harvester{store: store, minObs: minObs, drift: drift, canary: canary}
}

// HarvestTrace labels one finished trace and appends its examples to the
// store, each tagged with the query's workload family (the per-family
// retrain grouping key). It returns the number of examples durably
// appended — on a partial failure the prefix written before the error is
// still counted, so the stats stay consistent with the corpus.
func (h *Harvester) HarvestTrace(tr *exec.Trace, workloadName, family string, queryIndex int) (int, error) {
	return h.harvestServed(tr, workloadName, family, queryIndex, nil)
}

// harvestServed is HarvestTrace plus the drift join: with a non-nil
// served model, the errors the serving selector's choices incur on the
// freshly harvested examples are recorded into the drift tracker under
// the version's routing target. The join uses exactly the examples that
// land in the corpus — the drift verdict and the retrainer's training
// set always agree on what was observed.
func (h *Harvester) harvestServed(tr *exec.Trace, workloadName, family string, queryIndex int, served *ServedModel) (int, error) {
	exs := workload.HarvestTrace(tr, workloadName, family, queryIndex, h.minObs)
	n, err := h.store.AppendAll(exs)
	h.mu.Lock()
	h.stats.Queries++
	h.stats.Skipped += len(tr.Pipes.Pipelines) - len(exs)
	h.stats.Examples += n
	if err != nil {
		h.stats.Errors++
		h.lastErr = err
	}
	h.mu.Unlock()
	// Only the examples DURABLY appended feed the drift window (on a
	// partial failure that is the prefix): a verdict built from evidence
	// the corpus never stored would trigger retrains on a corpus that
	// lacks the very traffic that drifted.
	if served != nil && served.Selector != nil && n > 0 && (h.drift != nil || h.canary.enabled()) {
		obs := make([]float64, n)
		for i := 0; i < n; i++ {
			obs[i] = exs[i].ErrL1[served.Selector.Select(exs[i].Features)]
		}
		if h.drift != nil {
			h.drift.Record(*served, obs)
		}
		// The challenger replays exactly the queries the champion served —
		// obs already holds the champion's per-example error.
		h.canary.Observe(served.Target, served.Version, exs[:n], obs)
	}
	return n, err
}

// Stats returns a snapshot of the lifetime counters.
func (h *Harvester) Stats() HarvestStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stats
}

// Observer returns an exec.Observer that harvests the query's trace on
// its completion event. Install it (or chain it after other observers) in
// exec.Options to subscribe a live execution to the corpus; the OnDone
// callback runs synchronously on the executing goroutine, after the
// query's last snapshot. served, when non-nil, is the model version
// pinned to the query at start — its observed errors feed the drift
// tracker.
func (h *Harvester) Observer(workloadName, family string, queryIndex int, served *ServedModel) exec.Observer {
	return &harvestObserver{h: h, workload: workloadName, family: family, query: queryIndex, served: served}
}

// harvestObserver subscribes to the completion event of one execution.
type harvestObserver struct {
	exec.BaseObserver
	h        *Harvester
	workload string
	family   string
	query    int
	served   *ServedModel
}

func (o *harvestObserver) OnDone(tr *exec.Trace) {
	// Append errors are recorded in the harvester's stats; the executing
	// query must not fail because the corpus is unavailable.
	_, _ = o.h.harvestServed(tr, o.workload, o.family, o.query, o.served)
}
