package feedback

import (
	"sync"

	"progressest/internal/exec"
	"progressest/internal/workload"
)

// HarvestStats counts the harvester's lifetime activity.
type HarvestStats struct {
	// Queries is the number of finished queries harvested.
	Queries int `json:"queries"`
	// Examples is the number of labelled examples appended to the store.
	Examples int `json:"examples"`
	// Skipped counts pipelines filtered out (too few observations).
	Skipped int `json:"skipped"`
	// Errors counts failed store appends (e.g. harvesting after Close).
	Errors int `json:"errors"`
}

// Harvester turns finished query executions into corpus examples. It
// reuses workload.HarvestTrace — the exact conversion the batch training
// path applies — so an online-harvested corpus is bit-identical to a
// batch harvest of the same traces.
type Harvester struct {
	store *ExampleStore
	// minObs filters pipelines with too few counter snapshots (<= 0 uses
	// the batch default, 8).
	minObs int

	mu      sync.Mutex
	stats   HarvestStats
	lastErr error
}

// NewHarvester wires a harvester to its corpus store.
func NewHarvester(store *ExampleStore, minObs int) *Harvester {
	return &Harvester{store: store, minObs: minObs}
}

// HarvestTrace labels one finished trace and appends its examples to the
// store, each tagged with the query's workload family (the per-family
// retrain grouping key). It returns the number of examples durably
// appended — on a partial failure the prefix written before the error is
// still counted, so the stats stay consistent with the corpus.
func (h *Harvester) HarvestTrace(tr *exec.Trace, workloadName, family string, queryIndex int) (int, error) {
	exs := workload.HarvestTrace(tr, workloadName, family, queryIndex, h.minObs)
	n, err := h.store.AppendAll(exs)
	h.mu.Lock()
	h.stats.Queries++
	h.stats.Skipped += len(tr.Pipes.Pipelines) - len(exs)
	h.stats.Examples += n
	if err != nil {
		h.stats.Errors++
		h.lastErr = err
	}
	h.mu.Unlock()
	return n, err
}

// Stats returns a snapshot of the lifetime counters.
func (h *Harvester) Stats() HarvestStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stats
}

// Observer returns an exec.Observer that harvests the query's trace on
// its completion event. Install it (or chain it after other observers) in
// exec.Options to subscribe a live execution to the corpus; the OnDone
// callback runs synchronously on the executing goroutine, after the
// query's last snapshot.
func (h *Harvester) Observer(workloadName, family string, queryIndex int) exec.Observer {
	return &harvestObserver{h: h, workload: workloadName, family: family, query: queryIndex}
}

// harvestObserver subscribes to the completion event of one execution.
type harvestObserver struct {
	exec.BaseObserver
	h        *Harvester
	workload string
	family   string
	query    int
}

func (o *harvestObserver) OnDone(tr *exec.Trace) {
	// Append errors are recorded in the harvester's stats; the executing
	// query must not fail because the corpus is unavailable.
	_, _ = o.h.HarvestTrace(tr, o.workload, o.family, o.query)
}
