package feedback

import (
	"testing"

	"progressest/internal/selection"
)

// benchCorpusN sizes the benchmark corpora: large enough that decode cost
// dominates file-system noise, small enough for the CI bench-smoke run.
const benchCorpusN = 2000

// BenchmarkSnapshotColdWarm contrasts a full-corpus decode (cache off)
// with a cache-primed snapshot that only re-decodes the active tail.
func BenchmarkSnapshotColdWarm(b *testing.B) {
	dir := b.TempDir()
	buildScaleCorpus(b, dir, benchCorpusN)

	b.Run("cold", func(b *testing.B) {
		s, err := OpenStore(dir, StoreOptions{MaxSegmentBytes: 2048, CacheBytes: -1})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Snapshot(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		s, err := OpenStore(dir, StoreOptions{MaxSegmentBytes: 2048})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		if _, err := s.Snapshot(); err != nil { // prime the cache
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Snapshot(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSnapshotFamily contrasts the index-guided per-family read with
// what a drift retrain used to pay: decode everything, filter after.
// Cache off on both sides so the index's I/O saving is what's measured.
func BenchmarkSnapshotFamily(b *testing.B) {
	dir := b.TempDir()
	buildScaleCorpus(b, dir, benchCorpusN)
	s, err := OpenStore(dir, StoreOptions{MaxSegmentBytes: 2048, CacheBytes: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()

	b.Run("indexed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := s.SnapshotFamily("alpha"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fullscan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			full, err := s.Snapshot()
			if err != nil {
				b.Fatal(err)
			}
			var out []selection.Example
			for _, ex := range full {
				if ex.Family == "alpha" {
					out = append(out, ex)
				}
			}
			if len(out) == 0 {
				b.Fatal("filter found nothing")
			}
		}
	})
}

// BenchmarkRetrainFamiliesSeqPar contrasts sequential and parallel family
// fitting on one corpus (a fresh registry per iteration, so the
// skip-unchanged heuristic never hides the training cost).
func BenchmarkRetrainFamiliesSeqPar(b *testing.B) {
	store, err := OpenStore(b.TempDir(), StoreOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	fams := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	for i, f := range fams {
		if _, err := store.AppendAll(familyExamples(60, i*1000, f, i%2 == 1)); err != nil {
			b.Fatal(err)
		}
	}
	run := func(b *testing.B, workers int) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ret := NewRetrainer(store, NewRegistry(), RetrainerConfig{
				Selection:         fastConfig(),
				FamilyModels:      true,
				MinFamilyExamples: 20,
				TrainWorkers:      workers,
			})
			if _, err := ret.Retrain("manual"); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("seq", func(b *testing.B) { run(b, 1) })
	b.Run("par", func(b *testing.B) { run(b, 8) })
}
