package feedback

import (
	"sort"
	"sync"
	"time"

	"progressest/internal/selection"
)

// Champion/challenger serving: with a Canary wired into the Retrainer, a
// gate-accepted candidate from a background (non-manual) training run
// does NOT hot-swap immediately. It becomes a pending challenger that
// shadow-scores on live traffic: every harvest that feeds the serving
// champion's drift window (the existing DriftTracker join) also replays
// the same examples through the challenger's selector, accumulating the
// L1 error each would have incurred on exactly the queries the champion
// actually served. Once a confirmation window of observations accrues,
// the challenger is promoted (atomic hot-swap, decision "accepted") only
// if its live error stays within the quality gate's tolerance of the
// champion's; otherwise it is recorded as rejected — holdout numbers
// said it was fine, live traffic disagreed. A challenger that cannot
// collect its window before MaxAge (traffic dried up) is rejected on
// expiry; the champion was serving the whole time, so nothing regressed.
// Manual retrains bypass the canary: an operator asking for a retrain
// gets the immediate swap (and the returned version) they asked for.

// CanaryConfig tunes champion/challenger confirmation.
type CanaryConfig struct {
	// Window is how many live observations confirm a challenger. <= 0
	// disables canary serving entirely (gate-accepted versions hot-swap
	// immediately, as without a Canary).
	Window int
	// MaxAge bounds how long a challenger may wait for its window
	// (default 5 minutes). On expiry it is rejected without judgement on
	// quality — there was not enough traffic to tell.
	MaxAge time.Duration
}

func (c CanaryConfig) withDefaults() CanaryConfig {
	if c.MaxAge <= 0 {
		c.MaxAge = 5 * time.Minute
	}
	return c
}

// canaryState is one pending challenger.
type canaryState struct {
	fit        *targetFit
	meta       VersionMeta
	source     string
	observedL1 float64 // drift-window mean that fired the trigger, if any
	champion   int     // serving version the challenger must beat
	proposedAt time.Time
	champSum   float64
	chalSum    float64
	n          int
}

// Canary tracks pending challengers, one per routing target; a newer
// proposal for the same target replaces the older one (the older
// candidate is stale the moment a fresher training run completes).
// Observe is called from the harvest path and take from the retrainer's
// tick, so all state is guarded by its own lock.
type Canary struct {
	cfg CanaryConfig

	mu      sync.Mutex
	pending map[string]*canaryState
}

// NewCanary creates a canary controller. A nil *Canary is a valid "off"
// value everywhere.
func NewCanary(cfg CanaryConfig) *Canary {
	return &Canary{cfg: cfg.withDefaults(), pending: make(map[string]*canaryState)}
}

// enabled reports whether canary confirmation applies (nil-safe).
func (c *Canary) enabled() bool { return c != nil && c.cfg.Window > 0 }

// Window returns the configured confirmation window (0 when disabled).
func (c *Canary) Window() int {
	if c == nil {
		return 0
	}
	return c.cfg.Window
}

// propose registers a challenger for its target, replacing any pending
// one.
func (c *Canary) propose(f *targetFit, meta VersionMeta, source string, observedL1 float64, champion int, now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pending[meta.Family] = &canaryState{
		fit:        f,
		meta:       meta,
		source:     source,
		observedL1: observedL1,
		champion:   champion,
		proposedAt: now,
	}
}

// Observe shadow-scores the target's pending challenger on a harvest
// batch: exs are the examples harvested from queries the serving version
// answered, champErrs the L1 error the champion's estimator choices
// incurred on each (the same values fed to the drift window). The
// challenger replays each example through its own selector. Observations
// are only credited while the champion the challenger was proposed
// against is still the one serving — evidence against a different
// champion would corrupt the comparison — and accumulation stops at the
// confirmation window.
func (c *Canary) Observe(target string, championVersion int, exs []selection.Example, champErrs []float64) {
	if !c.enabled() || len(exs) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.pending[target]
	if st == nil || st.champion != championVersion || st.fit.sel == nil {
		return
	}
	for i := range exs {
		if st.n >= c.cfg.Window {
			break
		}
		k := st.fit.sel.Select(exs[i].Features)
		st.chalSum += exs[i].ErrL1[k]
		st.champSum += champErrs[i]
		st.n++
	}
}

// resolvable reports whether any pending challenger is ready for a
// verdict (window full or expired). Nil-safe; cheap enough for every
// poll tick.
func (c *Canary) resolvable(now time.Time) bool {
	if !c.enabled() {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, st := range c.pending {
		if st.n >= c.cfg.Window || now.Sub(st.proposedAt) >= c.cfg.MaxAge {
			return true
		}
	}
	return false
}

// take removes and returns every challenger ready for a verdict, sorted
// by target for deterministic resolution order.
func (c *Canary) take(now time.Time) []*canaryState {
	if !c.enabled() {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var due []*canaryState
	for target, st := range c.pending {
		if st.n >= c.cfg.Window || now.Sub(st.proposedAt) >= c.cfg.MaxAge {
			due = append(due, st)
			delete(c.pending, target)
		}
	}
	sort.Slice(due, func(i, j int) bool { return due[i].meta.Family < due[j].meta.Family })
	return due
}

// Drop discards the target's pending challenger, if any — a rollback or
// pin means the operator (or the auto-rollback) moved off this model
// line and the challenger's comparison is moot. Nil-safe.
func (c *Canary) Drop(target string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.pending, target)
}

// CanaryState is one pending challenger's public standing, surfaced in
// GET /models.
type CanaryState struct {
	// Target is the routing target ("" = the global model).
	Target string
	// Source is the trigger of the training run that produced the
	// challenger ("auto" or "drift").
	Source string
	// Champion is the serving version id the challenger shadow-scores
	// against.
	Champion int
	// ProposedAt is when the challenger entered confirmation; ExpiresAt
	// when it will be rejected for lack of traffic.
	ProposedAt time.Time
	ExpiresAt  time.Time
	// Samples of Window observations are in; ChampionL1/ChallengerL1 are
	// the running mean live errors (0 until the first observation).
	Samples      int
	Window       int
	ChampionL1   float64
	ChallengerL1 float64
	// HoldoutL1 is the challenger's training-time holdout error.
	HoldoutL1 float64
}

// States returns the pending challengers sorted by target. Nil-safe.
func (c *Canary) States() []CanaryState {
	if !c.enabled() {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]CanaryState, 0, len(c.pending))
	for target, st := range c.pending {
		cs := CanaryState{
			Target:     target,
			Source:     st.source,
			Champion:   st.champion,
			ProposedAt: st.proposedAt,
			ExpiresAt:  st.proposedAt.Add(c.cfg.MaxAge),
			Samples:    st.n,
			Window:     c.cfg.Window,
			HoldoutL1:  st.meta.HoldoutL1,
		}
		if st.n > 0 {
			cs.ChampionL1 = st.champSum / float64(st.n)
			cs.ChallengerL1 = st.chalSum / float64(st.n)
		}
		out = append(out, cs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Target < out[j].Target })
	return out
}
