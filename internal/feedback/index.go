package feedback

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
	"strings"

	"progressest/internal/progress"
)

// Sidecar index file layout (seg-XXXXXXXX.idx next to seg-XXXXXXXX.log):
//
//	magic "PESTCIDX" | uint32 index format version
//	uint32 segment format | uint64 good bytes | uint32 segment CRC
//	uint32 record count | count × uint64 record start offsets
//	uint32 nFamilies | per family (sorted): uint32 len | name bytes |
//	                   uint32 nRecords | nRecords × uint32 record ordinals
//	uint32 index CRC (CRC-32 IEEE of everything before it)
//
// All integers are little-endian. The index is pure derived state: it is
// written when a segment seals (atomically, via internal/atomicio, and
// without fsync — a crash at worst loses a file the next open rebuilds),
// and NEVER trusted blindly on open. Validation checks the index's own
// CRC, that the segment CRC matches the segment's good-byte prefix on
// disk, and that no intact record exists past the recorded watermark (a
// segment that grew after seal — e.g. an older binary appended to it —
// makes the sidecar stale, and a stale index silently hiding records
// would be corpus loss). Any failure falls back to a full rescan of the
// segment, which rewrites the sidecar.
const (
	idxMagic      = "PESTCIDX"
	idxFormat     = 1
	idxHeaderSize = len(idxMagic) + 4
)

// segIndex is the in-memory form of one sealed segment's sidecar: the
// byte offset of every record and, per workload family, the ordinals of
// its records. It is immutable once built (sealed segments never change),
// so Snapshot/SnapshotFamily read it without the store lock.
type segIndex struct {
	format   int
	good     int64  // byte watermark of the last intact record
	segCRC   uint32 // CRC-32 of the segment's [0, good) prefix
	offsets  []int64
	families map[string][]int32
}

// indexPath returns the sidecar path for a segment file.
func indexPath(segPath string) string {
	return strings.TrimSuffix(segPath, ".log") + ".idx"
}

// recordEnd returns the exclusive end offset of record ord.
func (ix *segIndex) recordEnd(ord int) int64 {
	if ord+1 < len(ix.offsets) {
		return ix.offsets[ord+1]
	}
	return ix.good
}

// encode serialises the index for its sidecar file.
func (ix *segIndex) encode() []byte {
	size := idxHeaderSize + 4 + 8 + 4 + 4 + 8*len(ix.offsets) + 4
	fams := make([]string, 0, len(ix.families))
	for f, ords := range ix.families {
		fams = append(fams, f)
		size += 4 + len(f) + 4 + 4*len(ords)
	}
	sort.Strings(fams)
	buf := make([]byte, 0, size+4)
	buf = append(buf, idxMagic...)
	buf = putUint32(buf, idxFormat)
	buf = putUint32(buf, uint32(ix.format))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(ix.good))
	buf = putUint32(buf, ix.segCRC)
	buf = putUint32(buf, uint32(len(ix.offsets)))
	for _, off := range ix.offsets {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(off))
	}
	buf = putUint32(buf, uint32(len(fams)))
	for _, f := range fams {
		buf = putString(buf, f)
		ords := ix.families[f]
		buf = putUint32(buf, uint32(len(ords)))
		for _, o := range ords {
			buf = putUint32(buf, uint32(o))
		}
	}
	buf = putUint32(buf, crc32.ChecksumIEEE(buf))
	return buf
}

// decodeSegIndex parses and self-validates a sidecar image: magic, format
// range, trailing CRC, and internal consistency (ascending in-bounds
// offsets, ordinals that address real records, families that exactly
// partition the records). It does NOT validate against the segment file —
// that is loadSegIndex's job.
func decodeSegIndex(b []byte, path string) (*segIndex, error) {
	if len(b) < idxHeaderSize+4 || string(b[:len(idxMagic)]) != idxMagic {
		return nil, fmt.Errorf("feedback: %s is not a segment index (bad magic)", path)
	}
	if v := binary.LittleEndian.Uint32(b[len(idxMagic):]); v != idxFormat {
		return nil, fmt.Errorf("feedback: %s uses index format %d; this build understands %d", path, v, idxFormat)
	}
	body, tail := b[:len(b)-4], b[len(b)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("feedback: %s: index checksum mismatch", path)
	}
	r := reader{b: body[idxHeaderSize:]}
	ix := &segIndex{
		format: int(r.uint32()),
		good:   int64(r.uint64()),
		segCRC: r.uint32(),
	}
	if ix.format < minFormat || ix.format > storeFormat {
		return nil, fmt.Errorf("feedback: %s: index records segment format %d", path, ix.format)
	}
	count := r.uint32()
	if r.err == nil && int64(count) > ix.good/recHeaderSize {
		return nil, fmt.Errorf("feedback: %s: index record count %d exceeds segment capacity", path, count)
	}
	ix.offsets = make([]int64, count)
	prev := int64(segHeaderSize) - 1
	for i := range ix.offsets {
		off := int64(r.uint64())
		if r.err == nil && (off <= prev || off+recHeaderSize > ix.good) {
			return nil, fmt.Errorf("feedback: %s: index offset %d out of order or out of bounds", path, off)
		}
		ix.offsets[i] = off
		prev = off
	}
	nf := r.uint32()
	if r.err == nil && nf > count+1 {
		return nil, fmt.Errorf("feedback: %s: index family count %d exceeds record count", path, nf)
	}
	ix.families = make(map[string][]int32, nf)
	indexed := 0
	for i := uint32(0); i < nf && r.err == nil; i++ {
		f := r.string()
		n := r.uint32()
		if r.err != nil {
			break
		}
		if _, dup := ix.families[f]; dup || n > count {
			return nil, fmt.Errorf("feedback: %s: index family %q malformed", path, f)
		}
		ords := make([]int32, n)
		for j := range ords {
			o := r.uint32()
			if r.err == nil && o >= count {
				return nil, fmt.Errorf("feedback: %s: index ordinal %d out of range", path, o)
			}
			ords[j] = int32(o)
		}
		ix.families[f] = ords
		indexed += len(ords)
	}
	if r.err != nil {
		return nil, fmt.Errorf("feedback: %s: truncated index: %w", path, r.err)
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("feedback: %s: trailing bytes in index", path)
	}
	if indexed != int(count) {
		return nil, fmt.Errorf("feedback: %s: index families cover %d of %d records", path, indexed, count)
	}
	return ix, nil
}

// buildSegIndex scans a segment image and builds its index from scratch —
// the open-time fallback for a missing, corrupt or stale sidecar, and the
// recovery path for the tail segment. It walks records exactly like
// scanRecords (torn or corrupt trailing records end the segment, never
// error) but decodes only each record's family tag, so a rebuild costs
// one CRC pass plus a cheap field skip per record — no example
// materialisation.
func buildSegIndex(data []byte, path string) (*segIndex, error) {
	if len(data) < segHeaderSize || string(data[:len(segMagic)]) != segMagic {
		return nil, fmt.Errorf("feedback: %s is not a corpus segment (bad magic)", path)
	}
	format := int(binary.LittleEndian.Uint32(data[len(segMagic):segHeaderSize]))
	if format < minFormat || format > storeFormat {
		return nil, fmt.Errorf("feedback: %s uses corpus format %d; this build understands formats %d..%d — retrain or migrate the corpus",
			path, format, minFormat, storeFormat)
	}
	ix := &segIndex{format: format, families: make(map[string][]int32)}
	off := segHeaderSize
	good := off
	for off < len(data) {
		n, payload, ok := recordAt(data, int64(off))
		if !ok {
			break
		}
		fam, err := decodeFamily(payload, format)
		if err != nil {
			return nil, fmt.Errorf("feedback: %s: %w", path, err)
		}
		ix.families[fam] = append(ix.families[fam], int32(len(ix.offsets)))
		ix.offsets = append(ix.offsets, int64(off))
		off += recHeaderSize + n
		good = off
	}
	ix.good = int64(good)
	ix.segCRC = crc32.ChecksumIEEE(data[:good])
	return ix, nil
}

// recordAt validates the record framed at off: header in bounds, payload
// in bounds, CRC intact. It returns the payload length and slice; ok is
// false for a torn or corrupt record.
func recordAt(data []byte, off int64) (n int, payload []byte, ok bool) {
	if off < 0 || off+recHeaderSize > int64(len(data)) {
		return 0, nil, false
	}
	n = int(binary.LittleEndian.Uint32(data[off:]))
	sum := binary.LittleEndian.Uint32(data[off+4:])
	if off+recHeaderSize+int64(n) > int64(len(data)) {
		return 0, nil, false
	}
	payload = data[off+recHeaderSize : off+recHeaderSize+int64(n)]
	if crc32.ChecksumIEEE(payload) != sum {
		return 0, nil, false
	}
	return n, payload, true
}

// loadSegIndex reads and validates a sealed segment's sidecar against the
// segment image actually on disk. ok is false — caller rebuilds — when
// the sidecar is missing, fails self-validation, records a different
// segment format, claims a watermark past the file, mismatches the
// segment prefix's CRC, or is STALE: an intact record sits right at the
// watermark, meaning the segment grew after the index was written.
func loadSegIndex(segPath string, data []byte) (*segIndex, bool) {
	raw, err := os.ReadFile(indexPath(segPath))
	if err != nil {
		return nil, false
	}
	ix, err := decodeSegIndex(raw, indexPath(segPath))
	if err != nil {
		return nil, false
	}
	if ix.good > int64(len(data)) {
		return nil, false
	}
	segFormat := int(binary.LittleEndian.Uint32(data[len(segMagic):segHeaderSize]))
	if ix.format != segFormat {
		return nil, false
	}
	if crc32.ChecksumIEEE(data[:ix.good]) != ix.segCRC {
		return nil, false
	}
	// Stale-growth check: appends land exactly at the watermark, so one
	// intact record there means the index no longer covers the segment.
	if _, _, ok := recordAt(data, ix.good); ok {
		return nil, false
	}
	return ix, true
}

// decodeFamily extracts just the family tag from a record payload,
// skipping every other field without materialising it. It shares
// decodeExample's structural validation of the prefix it walks — in
// particular the estimator-kind count, so estimator-set/version skew
// still surfaces at open time even when no full decode happens.
func decodeFamily(b []byte, format int) (string, error) {
	r := reader{b: b}
	nf := r.uint32()
	if nf > uint32(len(b)) {
		return "", errCorruptFeatureCount
	}
	r.skip(int(nf) * 8)
	nk := r.uint32()
	if r.err == nil && nk != uint32(progress.TotalKinds) {
		return "", fmt.Errorf("corpus written with %d estimator kinds; this build has %d — the corpus must be re-harvested", nk, progress.TotalKinds)
	}
	r.skip(2 * progress.TotalKinds * 8)
	r.skipString() // workload
	r.skipString() // signature
	fam := ""
	if format >= 2 {
		fam = r.string()
	}
	if r.err != nil {
		return "", fmt.Errorf("corrupt example: %w", r.err)
	}
	return fam, nil
}
