package feedback

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"progressest/internal/progress"
	"progressest/internal/selection"
)

// familyExample builds one learnable example tagged with a family. With
// inverted set, the label rule is flipped — a selector trained on
// inverted examples systematically mispicks on truthful ones, which is
// what the per-family and quality-gate tests lean on.
func familyExample(i int, family string, inverted bool) selection.Example {
	var e selection.Example
	e.Features = make([]float64, 6)
	e.Features[0] = float64(i % 2)
	for j := 1; j < len(e.Features); j++ {
		e.Features[j] = float64(i) / 100
	}
	good, bad := progress.DNE, progress.TGN
	if (e.Features[0] > 0.5) == inverted {
		good, bad = bad, good
	}
	e.ErrL1[good] = 0.05
	e.ErrL1[bad] = 0.40
	e.ErrL1[progress.LUO] = 0.25
	e.Workload = "synthetic"
	e.Family = family
	e.Meta = map[string]float64{"query": float64(i)}
	return e
}

func familyExamples(n, from int, family string, inverted bool) []selection.Example {
	out := make([]selection.Example, n)
	for i := range out {
		out[i] = familyExample(from+i, family, inverted)
	}
	return out
}

// poisonedCorpus builds n examples whose hash-holdout members (see
// isHoldout) follow the truthful rule while the training-side members are
// inverted — so a candidate trained on it learns the inversion and fails
// the truthful holdout. Inversion only flips labels, never features, so
// holdout membership is unchanged by it.
func poisonedCorpus(n, from int) []selection.Example {
	out := make([]selection.Example, 0, n)
	for i := from; len(out) < n; i++ {
		probe := familyExample(i, "", false)
		out = append(out, familyExample(i, "", !isHoldout(&probe)))
	}
	return out
}

// picksRight counts how often sel picks each probe's true best estimator.
func picksRight(sel *selection.Selector, probe []selection.Example) int {
	right := 0
	for i := range probe {
		if sel.Select(probe[i].Features) == probe[i].BestKind(progress.CoreKinds()) {
			right++
		}
	}
	return right
}

// TestRetrainerFamilyModels: families with enough examples get their own
// published model routed under their family; thin families and unseen
// families fall back to the global model.
func TestRetrainerFamilyModels(t *testing.T) {
	store, err := OpenStore(t.TempDir(), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	reg := NewRegistry()
	ret := NewRetrainer(store, reg, RetrainerConfig{
		Selection:         fastConfig(),
		Gate:              QualityGate{Disabled: true},
		FamilyModels:      true,
		MinFamilyExamples: 20,
	})
	// Family "alpha" follows the truthful rule, family "beta" the
	// inverted one — so their family models must disagree, which proves
	// each was trained on its own slice. "thin" stays below the
	// threshold.
	if _, err := store.AppendAll(familyExamples(30, 0, "alpha", false)); err != nil {
		t.Fatal(err)
	}
	if _, err := store.AppendAll(familyExamples(30, 100, "beta", true)); err != nil {
		t.Fatal(err)
	}
	if _, err := store.AppendAll(familyExamples(5, 200, "thin", false)); err != nil {
		t.Fatal(err)
	}
	global, err := ret.Retrain("manual")
	if err != nil {
		t.Fatal(err)
	}
	if global.Meta.Family != "" {
		t.Fatalf("Retrain returned family %q, want the global version", global.Meta.Family)
	}

	alpha := reg.CurrentFor("alpha")
	beta := reg.CurrentFor("beta")
	if alpha == nil || alpha.Meta.Family != "alpha" {
		t.Fatalf("alpha routed to %+v", alpha)
	}
	if beta == nil || beta.Meta.Family != "beta" {
		t.Fatalf("beta routed to %+v", beta)
	}
	// Fallbacks: the thin family and an unseen one serve the global model.
	if v := reg.CurrentFor("thin"); v != global {
		t.Fatalf("thin family routed to %+v, want global fallback", v)
	}
	if v := reg.CurrentFor("unseen"); v != global {
		t.Fatalf("unseen family routed to %+v, want global fallback", v)
	}
	if routed := reg.Routed(); len(routed) != 3 {
		t.Fatalf("routing table has %d entries, want 3 (global+alpha+beta): %v", len(routed), routed)
	}

	// Each family model learned ITS family's rule.
	probeTrue := familyExamples(20, 1000, "alpha", false)
	probeInv := familyExamples(20, 1000, "beta", true)
	if n := picksRight(alpha.Selector, probeTrue); n < 16 {
		t.Fatalf("alpha model got %d/20 truthful picks", n)
	}
	if n := picksRight(beta.Selector, probeInv); n < 16 {
		t.Fatalf("beta model got %d/20 inverted picks", n)
	}
	// And they genuinely disagree: the beta model is bad on alpha's rule.
	if n := picksRight(beta.Selector, probeTrue); n > 8 {
		t.Fatalf("beta model agrees with alpha's rule (%d/20) — family slices leaked", n)
	}
}

// TestSplitHoldoutStableUnderShift: holdout membership is a property of
// the example, not its corpus position — retention dropping a prefix of
// the corpus must not move rows the serving model trained on into the
// holdout its successor is gated on.
func TestSplitHoldoutStableUnderShift(t *testing.T) {
	exs := familyExamples(60, 0, "", false)
	key := func(e *selection.Example) float64 { return e.Features[1] } // unique per example
	_, h1, in1 := splitHoldout(exs)
	_, h2, in2 := splitHoldout(exs[13:]) // retention dropped a 13-example prefix
	if in1 || in2 {
		t.Fatal("splits of a 60/47-example corpus should be out-of-sample")
	}
	if len(h1) == 0 || len(h1) == len(exs) {
		t.Fatalf("degenerate split: %d of %d held out", len(h1), len(exs))
	}
	members := make(map[float64]bool, len(h1))
	for i := range h1 {
		members[key(&h1[i])] = true
	}
	for i := range h2 {
		if !members[key(&h2[i])] {
			t.Fatalf("example %v joined the holdout only after the shift", key(&h2[i]))
		}
	}
	surviving := 0
	for i := 13; i < len(exs); i++ {
		if members[key(&exs[i])] {
			surviving++
		}
	}
	if len(h2) != surviving {
		t.Fatalf("shifted holdout has %d members, want the %d surviving originals", len(h2), surviving)
	}
}

// TestRetrainerSkipsUnchangedFamilies: a retrain cycle must not re-train
// (and re-publish) a family that received no new examples, while families
// with fresh evidence and the global model still advance.
func TestRetrainerSkipsUnchangedFamilies(t *testing.T) {
	store, err := OpenStore(t.TempDir(), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	reg := NewRegistry()
	ret := NewRetrainer(store, reg, RetrainerConfig{
		Selection:         fastConfig(),
		Gate:              QualityGate{Disabled: true},
		FamilyModels:      true,
		MinFamilyExamples: 20,
	})
	if _, err := store.AppendAll(familyExamples(30, 0, "alpha", false)); err != nil {
		t.Fatal(err)
	}
	if _, err := store.AppendAll(familyExamples(30, 100, "beta", true)); err != nil {
		t.Fatal(err)
	}
	g1, err := ret.Retrain("manual")
	if err != nil {
		t.Fatal(err)
	}
	alpha1, beta1 := reg.CurrentFor("alpha"), reg.CurrentFor("beta")
	// Only beta grows before the next cycle.
	if _, err := store.AppendAll(familyExamples(25, 200, "beta", true)); err != nil {
		t.Fatal(err)
	}
	g2, err := ret.Retrain("manual")
	if err != nil {
		t.Fatal(err)
	}
	if g2.ID == g1.ID {
		t.Fatal("global model did not advance")
	}
	if v := reg.CurrentFor("alpha"); v != alpha1 {
		t.Fatalf("unchanged family alpha was retrained: v%d -> v%d", alpha1.ID, v.ID)
	}
	if v := reg.CurrentFor("beta"); v == beta1 {
		t.Fatal("grown family beta was not retrained")
	}
}

// TestRegistryPruneProtectsRollbackTargets: the history budget prunes
// gate-rejected versions first and never evicts a serving version or its
// rollback candidate — so heavy per-family retraining cannot erode
// rollback below one step per target.
func TestRegistryPruneProtectsRollbackTargets(t *testing.T) {
	r := NewRegistry()
	families := []string{"", "alpha", "beta", "gamma"}
	// Far more publications than the budget: per cycle, one accepted
	// version per target plus one rejected record.
	for cycle := 0; cycle < 30; cycle++ {
		for _, f := range families {
			r.Publish(&selection.Selector{}, VersionMeta{Source: "auto", Family: f})
		}
		r.Record(&selection.Selector{}, VersionMeta{Source: "auto", Family: "alpha"})
	}
	hist := r.Versions()
	if len(hist) > maxVersions {
		t.Fatalf("history %d versions, budget %d", len(hist), maxVersions)
	}
	for _, v := range hist {
		if v.Meta.Decision == DecisionRejected {
			t.Fatalf("rejected version %d survived pruning while accepted history was evicted", v.ID)
		}
	}
	// Every target still serves and can roll back one step.
	for _, f := range families {
		cur, ok := r.router.Get(f)
		if !ok {
			t.Fatalf("target %q lost its serving version", f)
		}
		back, err := r.Rollback(f)
		if err != nil {
			t.Fatalf("target %q cannot roll back after pruning: %v", f, err)
		}
		if back == cur || back.Meta.Family != f {
			t.Fatalf("target %q rolled back to %+v", f, back)
		}
	}
}

// TestQualityGateRejectsRegression: a candidate trained on a poisoned
// corpus must not replace a good serving version; the rejection is
// recorded in the history, and the serving pointer stays put.
func TestQualityGateRejectsRegression(t *testing.T) {
	store, err := OpenStore(t.TempDir(), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	reg := NewRegistry()

	// Baseline: a selector trained on the truthful rule, published as
	// serving. HoldoutN > 0 marks it holdout-evaluated, so the gate
	// treats it as a fair baseline.
	baseSel, err := selection.Train(familyExamples(60, 0, "", false), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	baseline := reg.Publish(baseSel, VersionMeta{Source: "auto", HoldoutL1: 0.05, HoldoutN: 12})

	// Poisoned corpus: the holdout slice keeps the truthful rule, the
	// training slice is inverted — so the candidate learns the inversion
	// and fails the truthful holdout the gate evaluates both selectors
	// on.
	if _, err := store.AppendAll(poisonedCorpus(15, 0)); err != nil {
		t.Fatal(err)
	}
	ret := NewRetrainer(store, reg, RetrainerConfig{
		Selection: fastConfig(),
		Gate:      QualityGate{Tolerance: 0.25},
	})
	v, err := ret.Retrain("manual")
	if err != nil {
		t.Fatal(err)
	}
	if v.Meta.Decision != DecisionRejected {
		t.Fatalf("poisoned retrain decision %q, want rejected (cand L1 %.3f vs baseline %.3f)",
			v.Meta.Decision, v.Meta.HoldoutL1, v.Meta.BaselineL1)
	}
	if v.Meta.BaselineL1 <= 0 || v.Meta.HoldoutL1 <= v.Meta.BaselineL1 {
		t.Fatalf("gate metadata inconsistent: %+v", v.Meta)
	}
	if reg.Current() != baseline {
		t.Fatal("rejected version replaced the serving one")
	}
	if reg.IsCurrent(v) {
		t.Fatal("rejected version claims to be current")
	}
	// The rejection is visible in the history.
	hist := reg.Versions()
	if len(hist) != 2 || hist[1] != v {
		t.Fatalf("history %v", hist)
	}

	// Recovery: once the corpus is dominated by truthful examples again,
	// the next retrain passes the gate and swaps in.
	if _, err := store.AppendAll(familyExamples(480, 500, "", false)); err != nil {
		t.Fatal(err)
	}
	v2, err := ret.Retrain("manual")
	if err != nil {
		t.Fatal(err)
	}
	if v2.Meta.Decision != DecisionAccepted || reg.Current() != v2 {
		t.Fatalf("recovered retrain: decision %q current %v", v2.Meta.Decision, reg.Current())
	}
}

// TestFamilyFirstModelUngatedAndRollbackFallsBack: a family's first
// model publishes even when the global fallback looks better on the
// family holdout (the global baseline is in-sample-biased there), and
// rolling the family back past that first model removes the route so the
// family serves from the global model again.
func TestFamilyFirstModelUngatedAndRollbackFallsBack(t *testing.T) {
	store, err := OpenStore(t.TempDir(), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	reg := NewRegistry()
	// Strong global baseline trained on the truthful rule.
	baseSel, err := selection.Train(familyExamples(60, 0, "", false), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	reg.Publish(baseSel, VersionMeta{Source: "seed"})
	// The family's observed corpus follows the INVERTED rule, so its
	// candidate loses to the global baseline on the family holdout — yet
	// it must still publish: there is no family-serving version to gate
	// against.
	if _, err := store.AppendAll(familyExamples(30, 0, "alpha", true)); err != nil {
		t.Fatal(err)
	}
	ret := NewRetrainer(store, reg, RetrainerConfig{
		Selection:         fastConfig(),
		Gate:              QualityGate{Tolerance: -1}, // strict
		FamilyModels:      true,
		MinFamilyExamples: 20,
	})
	if _, err := ret.Retrain("manual"); err != nil {
		t.Fatal(err)
	}
	famV := reg.CurrentFor("alpha")
	if famV == nil || famV.Meta.Family != "alpha" || famV.Meta.Decision != DecisionAccepted {
		t.Fatalf("first family model gated away: %+v", famV)
	}
	// Rolling back past the only family version falls back to global.
	back, err := reg.Rollback("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if back.Meta.Family != "" {
		t.Fatalf("family rollback fell back to %+v, want the global model", back)
	}
	if v := reg.CurrentFor("alpha"); v == nil || v.Meta.Family != "" {
		t.Fatalf("alpha still routed to %+v after fallback rollback", v)
	}
	// With nothing family-specific left, a further rollback of the
	// family fails (the global model keeps serving).
	if _, err := reg.Rollback("alpha"); err == nil {
		t.Fatal("rollback of an unrouted family should fail")
	}
	// The fallback is pinned: even with fresh family examples, the
	// BACKGROUND loop must not quietly re-publish the model the operator
	// just rejected...
	if _, err := store.AppendAll(familyExamples(10, 400, "alpha", true)); err != nil {
		t.Fatal(err)
	}
	if _, err := ret.Retrain("auto"); err != nil {
		t.Fatal(err)
	}
	if v := reg.CurrentFor("alpha"); v == nil || v.Meta.Family != "" {
		t.Fatalf("auto retrain overrode the operator's fallback pin: %+v", v)
	}
	// ...while an explicit manual retrain re-publishes and clears it.
	if _, err := ret.Retrain("manual"); err != nil {
		t.Fatal(err)
	}
	if v := reg.CurrentFor("alpha"); v == nil || v.Meta.Family != "alpha" {
		t.Fatalf("manual retrain did not re-publish the family model: %+v", v)
	}
	if reg.FallbackPinned("alpha") {
		t.Fatal("publish did not clear the fallback pin")
	}
}

// TestQualityGateStrictTolerance: a negative Tolerance means strict —
// withDefaults must not silently replace it with the lenient default.
func TestQualityGateStrictTolerance(t *testing.T) {
	if g := (QualityGate{Tolerance: -1}).withDefaults(); g.Tolerance != 0 {
		t.Fatalf("strict tolerance resolved to %v, want 0", g.Tolerance)
	}
	if g := (QualityGate{}).withDefaults(); g.Tolerance != 0.25 {
		t.Fatalf("unset tolerance resolved to %v, want the 0.25 default", g.Tolerance)
	}
	if g := (QualityGate{Tolerance: 0.1}).withDefaults(); g.Tolerance != 0.1 {
		t.Fatalf("explicit tolerance resolved to %v, want 0.1", g.Tolerance)
	}
}

// TestQualityGateDisabled: with the gate off, even a regressing candidate
// hot-swaps (the pre-gate behavior, still available for operators).
func TestQualityGateDisabled(t *testing.T) {
	store, err := OpenStore(t.TempDir(), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	reg := NewRegistry()
	baseSel, err := selection.Train(familyExamples(60, 0, "", false), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	reg.Publish(baseSel, VersionMeta{Source: "auto", HoldoutL1: 0.05, HoldoutN: 12})
	if _, err := store.AppendAll(poisonedCorpus(15, 0)); err != nil {
		t.Fatal(err)
	}
	ret := NewRetrainer(store, reg, RetrainerConfig{
		Selection: fastConfig(),
		Gate:      QualityGate{Disabled: true},
	})
	v, err := ret.Retrain("manual")
	if err != nil {
		t.Fatal(err)
	}
	if v.Meta.Decision != DecisionAccepted || reg.Current() != v {
		t.Fatalf("gate-off retrain: decision %q, current %v", v.Meta.Decision, reg.Current())
	}
}

// TestQualityGateExemptsSeedBaseline: a seed selector (HoldoutN == 0) was
// trained on the full corpus, holdout rows included, so its error there
// is in-sample-optimistic — the first retrain must publish ungated
// rather than lose to that unfair baseline.
func TestQualityGateExemptsSeedBaseline(t *testing.T) {
	store, err := OpenStore(t.TempDir(), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	reg := NewRegistry()
	baseSel, err := selection.Train(familyExamples(60, 0, "", false), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	reg.Publish(baseSel, VersionMeta{Source: "seed"}) // HoldoutN 0: not holdout-evaluated
	// Even a candidate that would LOSE to the seed on the holdout
	// publishes — the comparison would not be apples to apples.
	if _, err := store.AppendAll(poisonedCorpus(15, 0)); err != nil {
		t.Fatal(err)
	}
	ret := NewRetrainer(store, reg, RetrainerConfig{
		Selection: fastConfig(),
		Gate:      QualityGate{Tolerance: -1}, // strict — would reject if gated
	})
	v, err := ret.Retrain("manual")
	if err != nil {
		t.Fatal(err)
	}
	if v.Meta.Decision != DecisionAccepted || reg.Current() != v {
		t.Fatalf("retrain against seed baseline: decision %q, current %+v", v.Meta.Decision, reg.Current())
	}
}

// TestModelDirPersistRestore: a retrain persists the serving global and
// family models; a fresh registry restored from the same directory routes
// identically and keeps the training metadata the gate compares against.
func TestModelDirPersistRestore(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(filepath.Join(dir, "corpus"), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	md, err := OpenModelDir(filepath.Join(dir, "models"))
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	ret := NewRetrainer(store, reg, RetrainerConfig{
		Selection:         fastConfig(),
		Gate:              QualityGate{Disabled: true},
		FamilyModels:      true,
		MinFamilyExamples: 20,
		Persist:           md,
	})
	if _, err := store.AppendAll(familyExamples(30, 0, "alpha", false)); err != nil {
		t.Fatal(err)
	}
	if _, err := store.AppendAll(familyExamples(30, 100, "beta", true)); err != nil {
		t.Fatal(err)
	}
	if _, err := ret.Retrain("manual"); err != nil {
		t.Fatal(err)
	}
	orig := reg.Routed()
	if len(orig) != 3 {
		t.Fatalf("routed %d targets, want 3", len(orig))
	}

	// "Restart": a fresh registry restores from disk alone.
	md2, err := OpenModelDir(filepath.Join(dir, "models"))
	if err != nil {
		t.Fatal(err)
	}
	reg2 := NewRegistry()
	n, err := md2.Restore(reg2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("restored %d targets, want 3", n)
	}
	for family, want := range orig {
		got := reg2.CurrentFor(family)
		if got == nil || got.Meta.Family != family {
			t.Fatalf("family %q restored to %+v", family, got)
		}
		if got.Meta.Source != "restored" {
			t.Fatalf("restored source %q", got.Meta.Source)
		}
		if got.Meta.HoldoutL1 != want.Meta.HoldoutL1 || got.Meta.HoldoutN != want.Meta.HoldoutN ||
			got.Meta.CorpusSize != want.Meta.CorpusSize {
			t.Fatalf("family %q lost metadata: got %+v want %+v", family, got.Meta, want.Meta)
		}
		// The selector itself survived the round trip.
		probe := familyExamples(20, 1000, family, family == "beta")
		if a, b := picksRight(want.Selector, probe), picksRight(got.Selector, probe); a != b {
			t.Fatalf("family %q restored selector picks %d/20, original %d/20", family, b, a)
		}
	}

	// Restoring into an empty dir is a clean no-op.
	mdEmpty, err := OpenModelDir(filepath.Join(dir, "empty"))
	if err != nil {
		t.Fatal(err)
	}
	if n, err := mdEmpty.Restore(NewRegistry()); err != nil || n != 0 {
		t.Fatalf("empty restore: n=%d err=%v", n, err)
	}
}

// TestModelDirPersistsFallbackPin: the pin set by rolling a family back
// to the global model survives the Sync/Restore cycle — a restarted
// daemon's background retrainer must keep honoring it.
func TestModelDirPersistsFallbackPin(t *testing.T) {
	dir := t.TempDir()
	md, err := OpenModelDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	sel, err := selection.Train(familyExamples(30, 0, "", false), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	reg.Publish(sel, VersionMeta{Source: "seed"})
	reg.Publish(sel, VersionMeta{Source: "auto", Family: "alpha"})
	if _, err := reg.Rollback("alpha"); err != nil { // falls back to global, pins
		t.Fatal(err)
	}
	if err := md.Sync(reg); err != nil {
		t.Fatal(err)
	}

	md2, err := OpenModelDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg2 := NewRegistry()
	if _, err := md2.Restore(reg2); err != nil {
		t.Fatal(err)
	}
	if !reg2.FallbackPinned("alpha") {
		t.Fatal("fallback pin lost across restart")
	}
	if v := reg2.CurrentFor("alpha"); v == nil || v.Meta.Family != "" {
		t.Fatalf("alpha restored to %+v, want the global fallback", v)
	}
	// A publish for the family clears the restored pin too.
	reg2.Publish(sel, VersionMeta{Source: "manual", Family: "alpha"})
	if reg2.FallbackPinned("alpha") {
		t.Fatal("publish did not clear the restored pin")
	}
}

// TestModelDirSyncSkipsUnchanged: a Sync with an unchanged routing table
// must not rewrite the (potentially multi-MB) selector files.
func TestModelDirSyncSkipsUnchanged(t *testing.T) {
	dir := t.TempDir()
	md, err := OpenModelDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	sel, err := selection.Train(familyExamples(30, 0, "", false), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	reg.Publish(sel, VersionMeta{Source: "manual"})
	if err := md.Sync(reg); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "global-v1.json")
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := md.Sync(reg); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if !after.ModTime().Equal(before.ModTime()) {
		t.Fatal("unchanged selector file was rewritten")
	}
	// A new version commits under a fresh name (the manifest rename is
	// the file-set's commit point). The superseded file is NOT collected
	// yet — it is now the target's persisted rollback history.
	reg.Publish(sel, VersionMeta{Source: "manual"})
	if err := md.Sync(reg); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "global-v2.json")); err != nil {
		t.Fatalf("new version file missing: %v", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("rollback-history selector file was collected: %v", err)
	}
	// Two more versions push v1 off the bounded history chain; only then
	// is its file garbage-collected.
	reg.Publish(sel, VersionMeta{Source: "manual"})
	reg.Publish(sel, VersionMeta{Source: "manual"})
	if err := md.Sync(reg); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("selector file beyond the history depth was not garbage-collected")
	}
	for _, keep := range []string{"global-v2.json", "global-v3.json", "global-v4.json"} {
		if _, err := os.Stat(filepath.Join(dir, keep)); err != nil {
			t.Fatalf("%s missing: %v", keep, err)
		}
	}
}

// TestStoreFamilyRoundTripAndV1Compat: family tags survive the v2 record
// format, and a v1-format segment written by an older build still reads
// (family empty), with fresh appends landing in a new v2 segment.
func TestStoreFamilyRoundTripAndV1Compat(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.AppendAll(familyExamples(5, 0, "lineitem", false)); err != nil {
		t.Fatal(err)
	}
	got, err := store.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 || got[0].Family != "lineitem" {
		t.Fatalf("family lost in round trip: %d examples, family %q", len(got), got[0].Family)
	}
	store.Close()

	// Rewrite the segment as a v1 file: v1 records are v2 records minus
	// the family field, so re-encode without it under a v1 header.
	names, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if len(names) != 1 {
		t.Fatalf("segments: %v", names)
	}
	v1 := segmentHeader()
	v1[len(segMagic)] = 1 // format byte (little-endian uint32)
	for i := range got {
		ex := got[i]
		ex.Family = ""
		payload, err := encodeExample(&ex)
		if err != nil {
			t.Fatal(err)
		}
		// encodeExample writes v2 (with an empty family length field);
		// strip it by re-encoding manually is overkill — a v1 record is
		// the v2 bytes with the 4-byte empty-family length removed before
		// the meta count. Locate it from the tail: meta section length is
		// deterministic.
		v1 = appendRecord(v1, stripEmptyFamily(t, payload, &ex))
	}
	if err := os.WriteFile(names[0], v1, 0o644); err != nil {
		t.Fatal(err)
	}

	store2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatalf("open over v1 segment: %v", err)
	}
	defer store2.Close()
	back, err := store2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 5 {
		t.Fatalf("v1 segment read %d examples, want 5", len(back))
	}
	for i := range back {
		if back[i].Family != "" {
			t.Fatalf("v1 example %d conjured family %q", i, back[i].Family)
		}
		if back[i].Workload != got[i].Workload || back[i].Signature != got[i].Signature {
			t.Fatalf("v1 example %d mangled", i)
		}
	}
	// Fresh appends must go to a NEW v2 segment, never mixing formats.
	if store2.Segments() != 2 {
		t.Fatalf("old-format tail not sealed: %d segments", store2.Segments())
	}
	if _, err := store2.AppendAll(familyExamples(2, 50, "orders", false)); err != nil {
		t.Fatal(err)
	}
	all, err := store2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 7 || all[5].Family != "orders" {
		t.Fatalf("mixed-format corpus read back %d examples, tail family %q", len(all), all[5].Family)
	}
}

// stripEmptyFamily removes the empty family length field from a v2
// payload, yielding the v1 encoding of the same example.
func stripEmptyFamily(t *testing.T, payload []byte, ex *selection.Example) []byte {
	t.Helper()
	if ex.Family != "" {
		t.Fatal("stripEmptyFamily needs an empty family")
	}
	// Meta section: 4 (count) + per key 4+len+8. Family field: the 4 zero
	// bytes immediately before it.
	metaLen := 4
	for k := range ex.Meta {
		metaLen += 4 + len(k) + 8
	}
	cut := len(payload) - metaLen - 4
	out := append([]byte(nil), payload[:cut]...)
	return append(out, payload[cut+4:]...)
}

// appendRecord frames one payload in the segment record format.
func appendRecord(buf, payload []byte) []byte {
	rec := make([]byte, recHeaderSize)
	binary.LittleEndian.PutUint32(rec[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:], crc32.ChecksumIEEE(payload))
	return append(append(buf, rec...), payload...)
}
