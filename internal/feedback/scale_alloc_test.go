//go:build !race

package feedback

import (
	"testing"
)

// TestSnapshotWarmAllocBounded: once the decode cache is primed, a
// Snapshot allocates for the active tail and the assembly copy only —
// nowhere near the full-corpus decode a cold store pays. Guarded against
// the cold path itself (same corpus, cache disabled) instead of a brittle
// absolute count. Excluded under -race: AllocsPerRun is meaningless with
// the race runtime's extra allocations.
func TestSnapshotWarmAllocBounded(t *testing.T) {
	dir := t.TempDir()
	buildScaleCorpus(t, dir, 120)

	warm, err := OpenStore(dir, StoreOptions{MaxSegmentBytes: 2048, ScanWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	if _, err := warm.Snapshot(); err != nil { // prime the cache
		t.Fatal(err)
	}
	warmAllocs := testing.AllocsPerRun(10, func() {
		if _, err := warm.Snapshot(); err != nil {
			t.Fatal(err)
		}
	})

	cold, err := OpenStore(dir, StoreOptions{MaxSegmentBytes: 2048, ScanWorkers: 1, CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()
	coldAllocs := testing.AllocsPerRun(10, func() {
		if _, err := cold.Snapshot(); err != nil {
			t.Fatal(err)
		}
	})

	if warmAllocs*4 > coldAllocs {
		t.Fatalf("warm snapshot allocates %.0f, cold %.0f — cache not saving the re-decode", warmAllocs, coldAllocs)
	}
}
