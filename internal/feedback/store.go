// Package feedback closes the paper's training loop at serving time: it
// persists the labelled examples harvested from queries the daemon
// actually executes (the ExampleStore), converts finished execution
// traces into those examples as they complete (the Harvester), retrains
// the Section 4 estimator-selection models in the background once enough
// fresh evidence accrues (the Retrainer), and hot-swaps the resulting
// selector versions into the serving path without blocking a single
// progress request (the Registry). The corpus substrate is deliberately
// separate from the serving path — progressd keeps answering from the
// current selector while a new one trains.
package feedback

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"

	"progressest/internal/atomicio"
	"progressest/internal/progress"
	"progressest/internal/selection"
)

// Segment file layout:
//
//	header:  magic "PESTCORP" | uint32 format version
//	record:  uint32 payload length | uint32 CRC-32 (IEEE) of payload | payload
//
// All integers are little-endian. The payload is the compact binary
// encoding of one selection.Example (see encodeExample). Appends only ever
// extend the tail segment, so a crash can at worst leave one torn record
// at the end of the newest file; the recovery scan keeps every record up
// to the first corruption and truncates the torn tail.
// Format history: v1 had no family tag; v2 appends the example's workload
// family after the signature. Both decode; new segments are written at
// storeFormat, and a reopened store seals an old-format tail segment so a
// single segment never mixes formats.
const (
	segMagic      = "PESTCORP"
	storeFormat   = 2
	minFormat     = 1
	segHeaderSize = len(segMagic) + 4
	recHeaderSize = 8
)

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("feedback: store closed")

// StoreOptions bound the on-disk corpus.
type StoreOptions struct {
	// MaxSegmentBytes rotates the active segment once it exceeds this many
	// bytes (default 4 MiB).
	MaxSegmentBytes int64
	// MaxExamples bounds retention: once the corpus exceeds this many
	// examples, the oldest whole segments are deleted (default 100000; the
	// active segment is never deleted). Negative disables retention
	// entirely — required when appending to a corpus someone else bounds,
	// so an "append" can never delete another owner's history.
	MaxExamples int
	// CacheBytes bounds the sealed-segment decode cache: immutable
	// segments keep their decoded examples in memory (LRU by on-disk
	// bytes), so a warm Snapshot re-decodes only the active tail. 0 means
	// the 64 MiB default; negative disables caching entirely.
	CacheBytes int64
	// ScanWorkers bounds how many segments Snapshot/SnapshotFamily read
	// and decode concurrently (assembly stays in segment order, so the
	// result is bit-identical to a sequential scan). 0 means GOMAXPROCS
	// capped at 8; 1 forces the sequential path.
	ScanWorkers int
	// FamilyQuota protects each tagged family's newest examples from
	// retention and compaction: while a family retains no more than this
	// many examples, none of them may be dropped, no matter how far
	// another family's burst pushes the corpus past MaxExamples. The
	// quota outranks the cap — a corpus whose every example is
	// quota-protected stays over MaxExamples rather than starve a family.
	// Untagged ("") examples carry no quota. 0 or negative disables
	// quotas, restoring whole-oldest-segment retention.
	FamilyQuota int
}

// defaultCacheBytes is the decode-cache budget when CacheBytes is 0.
const defaultCacheBytes = 64 << 20

func (o StoreOptions) withDefaults() StoreOptions {
	if o.MaxSegmentBytes <= 0 {
		o.MaxSegmentBytes = 4 << 20
	}
	if o.MaxExamples == 0 {
		o.MaxExamples = 100000
	}
	if o.CacheBytes == 0 {
		o.CacheBytes = defaultCacheBytes
	}
	if o.ScanWorkers == 0 {
		o.ScanWorkers = min(runtime.GOMAXPROCS(0), 8)
	}
	if o.ScanWorkers < 1 {
		o.ScanWorkers = 1
	}
	if o.FamilyQuota < 0 {
		o.FamilyQuota = 0
	}
	return o
}

// segment is one corpus file's bookkeeping. Examples live on disk only —
// the store never mirrors the corpus in memory; Snapshot decodes it on
// demand (retrains are rare, serving-path memory is precious), with the
// bounded decodeCache softening that for immutable sealed segments.
type segment struct {
	index  int
	path   string
	count  int
	bytes  int64
	format int
	// idx is the sealed segment's in-memory sidecar index (non-nil iff
	// the segment is sealed). Immutable once set.
	idx *segIndex
	// Active-tail bookkeeping, maintained incrementally on append so
	// sealing builds the sidecar without re-reading the file: per-record
	// start offsets and family tags, plus the running CRC of the
	// good-byte prefix.
	offsets []int64
	fams    []string
	crc     uint32
	// gen counts in-place rewrites of this segment (compaction). It
	// qualifies the decode-cache key, so a reader that captured a view of
	// the pre-compaction image can never install its decode under the key
	// the post-compaction image lives at.
	gen int
}

// sealed reports whether the segment stopped accepting appends.
func (seg *segment) sealed() bool { return seg.idx != nil }

// cacheKey returns the decode-cache key for the segment's CURRENT image.
// Generation 0 (never compacted) keys by bare path.
func (seg *segment) cacheKey() string {
	if seg.gen == 0 {
		return seg.path
	}
	return seg.path + "#" + fmt.Sprint(seg.gen)
}

// forEachFamilyCount calls fn with each family present in the segment and
// its record count, whether the segment is sealed (sidecar) or the active
// tail (incremental bookkeeping).
func (seg *segment) forEachFamilyCount(fn func(family string, n int)) {
	if seg.idx != nil {
		for f, ords := range seg.idx.families {
			fn(f, len(ords))
		}
		return
	}
	counts := make(map[string]int, 4)
	for _, f := range seg.fams {
		counts[f]++
	}
	for f, n := range counts {
		fn(f, n)
	}
}

// sealLocked freezes the active-tail bookkeeping into a sidecar index
// and writes it next to the segment. The write is atomic but unsynced
// (atomicio.WriteFileLazy) and best-effort: the index is derived state a
// future open validates and rebuilds, so losing it can never lose
// corpus, while an fsync per rotation would tax the append path.
func (seg *segment) sealLocked() {
	fams := make(map[string][]int32, 4)
	for ord, f := range seg.fams {
		fams[f] = append(fams[f], int32(ord))
	}
	seg.idx = &segIndex{
		format:   seg.format,
		good:     seg.bytes,
		segCRC:   seg.crc,
		offsets:  seg.offsets,
		families: fams,
	}
	seg.offsets, seg.fams = nil, nil
	_ = atomicio.WriteFileLazy(indexPath(seg.path), seg.idx.encode())
}

// ExampleStore is an append-only, segmented, crash-safe on-disk corpus of
// labelled selection examples. Appends go to the tail segment; rotation
// caps segment size; retention drops the oldest segments. All methods are
// safe for concurrent use.
type ExampleStore struct {
	dir  string
	opts StoreOptions
	// cache memoises sealed segments' decoded examples (nil when
	// disabled). It has its own lock; snapshot reads never hold s.mu.
	cache *decodeCache

	mu       sync.Mutex
	segments []*segment
	active   *os.File // open handle on the tail segment
	total    int
	appended int // lifetime appends, monotonic: retention never lowers it
	closed   bool
	// famCounts tracks retained examples per family, maintained
	// incrementally on append, retention delete and compaction — the
	// quota checks and Stats read it instead of walking segment indexes.
	famCounts map[string]int
	// Compaction lifetime counters (under mu).
	compactRuns    int
	compactedSegs  int
	compactDropped int
}

// OpenStore opens (or creates) the corpus directory, recovering from any
// torn tail record left by a crash: the scan keeps every intact record
// and truncates the tail segment to the last good offset.
func OpenStore(dir string, opts StoreOptions) (*ExampleStore, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("feedback: open store: %w", err)
	}
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil {
		return nil, fmt.Errorf("feedback: scan store: %w", err)
	}
	sort.Strings(names)
	// Identify real segment files first: the tail (crash-recovery
	// semantics, reopened for append) must be the last PARSED segment,
	// not whatever foreign seg-*.log file happens to sort last.
	type segFile struct {
		name string
		idx  int
	}
	var files []segFile
	for _, name := range names {
		var idx int
		if _, err := fmt.Sscanf(filepath.Base(name), "seg-%08d.log", &idx); err != nil {
			continue // foreign file; leave it alone
		}
		files = append(files, segFile{name, idx})
	}
	s := &ExampleStore{dir: dir, opts: opts, famCounts: make(map[string]int)}
	if opts.CacheBytes > 0 {
		s.cache = newDecodeCache(opts.CacheBytes)
	}
	for i, f := range files {
		var seg *segment
		if i == len(files)-1 {
			seg, err = readTailSegment(f.name, f.idx)
		} else {
			seg, err = readSealedSegment(f.name, f.idx)
		}
		if err != nil {
			return nil, err
		}
		s.segments = append(s.segments, seg)
		s.total += seg.count
		seg.forEachFamilyCount(func(fam string, n int) { s.famCounts[fam] += n })
	}
	s.appended = s.total
	switch tail := s.tail(); {
	case tail == nil:
		if err := s.newSegmentLocked(1); err != nil {
			return nil, err
		}
	case tail.format != storeFormat:
		// Seal the old-format tail: a segment must never mix record
		// formats, so fresh appends go to a new current-format segment.
		if err := s.newSegmentLocked(tail.index + 1); err != nil {
			return nil, err
		}
	default:
		f, err := os.OpenFile(tail.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("feedback: reopen tail segment: %w", err)
		}
		s.active = f
	}
	s.enforceRetentionLocked()
	return s, nil
}

// ReadCorpus reads every example retained in a corpus directory without
// opening it for writing: nothing is created, truncated or appended, so
// it is safe on a corpus a live daemon owns, and a mistyped path errors
// instead of conjuring an empty store there. A torn tail record is
// skipped (not repaired).
func ReadCorpus(dir string) ([]selection.Example, error) {
	info, err := os.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("feedback: read corpus: %w", err)
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("feedback: read corpus: %s is not a directory", dir)
	}
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil {
		return nil, fmt.Errorf("feedback: read corpus: %w", err)
	}
	sort.Strings(names)
	var out []selection.Example
	found := false
	for _, name := range names {
		var idx int
		if _, err := fmt.Sscanf(filepath.Base(name), "seg-%08d.log", &idx); err != nil {
			continue
		}
		found = true
		data, err := os.ReadFile(name)
		if os.IsNotExist(err) {
			continue // a live owner's retention deleted it after the glob
		}
		if err != nil {
			return nil, fmt.Errorf("feedback: read corpus: %w", err)
		}
		exs, _, _, _, err := scanRecords(data, name, true) // read-only: never truncates
		if err != nil {
			return nil, err
		}
		out = append(out, exs...)
	}
	if !found {
		return nil, fmt.Errorf("feedback: %s contains no corpus segments", dir)
	}
	return out, nil
}

// readSealedSegment validates one sealed segment file and returns its
// bookkeeping WITHOUT materialising the examples. The fast path loads
// and validates the sidecar index (see loadSegIndex) — one file read and
// a CRC pass, no per-record scan; a missing, corrupt or stale sidecar
// falls back to a full rescan that rebuilds and rewrites it, so the two
// paths always agree on count, watermark and family layout. Corruption
// inside a sealed segment keeps the intact prefix and ignores the
// remainder, exactly as before sidecars existed.
func readSealedSegment(path string, index int) (*segment, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("feedback: read segment: %w", err)
	}
	ix, ok := loadSegIndex(path, data)
	if !ok {
		if ix, err = buildSegIndex(data, path); err != nil {
			return nil, err
		}
		_ = atomicio.WriteFileLazy(indexPath(path), ix.encode())
	}
	return &segment{
		index:  index,
		path:   path,
		count:  len(ix.offsets),
		bytes:  ix.good,
		format: ix.format,
		idx:    ix,
	}, nil
}

// readTailSegment recovers the tail segment with crash semantics: a torn
// or corrupt record at the end is truncated away so the segment can keep
// growing. The scan also rebuilds the tail's incremental index state
// (per-record offsets, family tags, running CRC), so a later seal writes
// its sidecar without re-reading the file.
func readTailSegment(path string, index int) (*segment, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("feedback: read segment: %w", err)
	}
	seg := &segment{index: index, path: path, format: storeFormat}
	if len(data) < segHeaderSize {
		// A crash between create and header write; rewrite from scratch.
		if err := os.WriteFile(path, segmentHeader(), 0o644); err != nil {
			return nil, fmt.Errorf("feedback: reset torn segment: %w", err)
		}
		seg.bytes = int64(segHeaderSize)
		seg.crc = crc32.ChecksumIEEE(segmentHeader())
		return seg, nil
	}
	ix, err := buildSegIndex(data, path)
	if err != nil {
		return nil, err
	}
	seg.count = len(ix.offsets)
	seg.bytes = ix.good
	seg.format = ix.format
	seg.crc = ix.segCRC
	seg.offsets = ix.offsets
	seg.fams = make([]string, len(ix.offsets))
	for f, ords := range ix.families {
		for _, o := range ords {
			seg.fams[o] = f
		}
	}
	if good := int(ix.good); good < len(data) {
		if err := os.Truncate(path, int64(good)); err != nil {
			return nil, fmt.Errorf("feedback: truncate torn tail: %w", err)
		}
	}
	return seg, nil
}

// scanRecords validates a segment image's header and walks its records,
// returning the record count, the byte offset of the end of the last
// intact record and the segment's format version. With decode set it also
// materialises the examples; with it clear only the FIRST record is
// decoded — a cheap sanity check that catches estimator-set/version skew
// at open time — and the rest are verified by CRC alone. Torn or corrupt
// trailing records are ignored (never an error): the caller decides
// whether to truncate them away.
func scanRecords(data []byte, path string, decode bool) ([]selection.Example, int, int, int, error) {
	if len(data) < segHeaderSize || string(data[:len(segMagic)]) != segMagic {
		return nil, 0, 0, 0, fmt.Errorf("feedback: %s is not a corpus segment (bad magic)", path)
	}
	format := int(binary.LittleEndian.Uint32(data[len(segMagic):segHeaderSize]))
	if format < minFormat || format > storeFormat {
		return nil, 0, 0, 0, fmt.Errorf("feedback: %s uses corpus format %d; this build understands formats %d..%d — retrain or migrate the corpus",
			path, format, minFormat, storeFormat)
	}
	var examples []selection.Example
	count := 0
	off := segHeaderSize
	good := off
	for off < len(data) {
		if off+recHeaderSize > len(data) {
			break // torn record header
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if off+recHeaderSize+n > len(data) {
			break // torn payload
		}
		payload := data[off+recHeaderSize : off+recHeaderSize+n]
		if crc32.ChecksumIEEE(payload) != sum {
			break // corrupt record; everything after it is suspect
		}
		if decode || count == 0 {
			ex, err := decodeExample(payload, format)
			if err != nil {
				return nil, 0, 0, 0, fmt.Errorf("feedback: %s: %w", path, err)
			}
			if decode {
				examples = append(examples, ex)
			}
		}
		count++
		off += recHeaderSize + n
		good = off
	}
	return examples, count, good, format, nil
}

func segmentHeader() []byte {
	h := make([]byte, segHeaderSize)
	copy(h, segMagic)
	binary.LittleEndian.PutUint32(h[len(segMagic):], storeFormat)
	return h
}

// newSegmentLocked creates and activates segment #index. O_EXCL makes a
// concurrent writer on the same directory an explicit error instead of a
// silent truncation of its segment — the store is single-writer.
func (s *ExampleStore) newSegmentLocked(index int) error {
	path := filepath.Join(s.dir, fmt.Sprintf("seg-%08d.log", index))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("feedback: create segment: %w", err)
	}
	if _, err := f.Write(segmentHeader()); err != nil {
		f.Close()
		// Remove the orphan: leaving it would make every rotation retry
		// fail on O_EXCL (EEXIST) until the process restarts.
		os.Remove(path)
		return fmt.Errorf("feedback: write segment header: %w", err)
	}
	if s.active != nil {
		s.active.Sync()
		s.active.Close()
	}
	// The outgoing tail is sealed from here on: freeze its incremental
	// bookkeeping into the sidecar index that family-sliced and warm
	// snapshots read.
	if prev := s.tail(); prev != nil && !prev.sealed() {
		prev.sealLocked()
	}
	s.active = f
	s.segments = append(s.segments, &segment{
		index:  index,
		path:   path,
		bytes:  int64(segHeaderSize),
		format: storeFormat,
		crc:    crc32.ChecksumIEEE(segmentHeader()),
	})
	return nil
}

// tail returns the newest segment, or nil when none exists.
func (s *ExampleStore) tail() *segment {
	if len(s.segments) == 0 {
		return nil
	}
	return s.segments[len(s.segments)-1]
}

// enforceRetentionLocked deletes old whole segments while the corpus
// exceeds the example bound, oldest first. The active segment always
// survives; a negative bound disables retention. With family quotas on, a
// segment whose deletion would push any tagged family below its quota is
// SKIPPED rather than blocking retention outright — newer all-abundant
// segments behind it are still deletable, and the compactor reclaims the
// skipped segment's abundant records in place.
func (s *ExampleStore) enforceRetentionLocked() {
	if s.opts.MaxExamples < 0 {
		return
	}
	for i := 0; s.total > s.opts.MaxExamples && i < len(s.segments)-1; {
		old := s.segments[i]
		if !s.deletableLocked(old) {
			i++
			continue
		}
		s.dropSegmentLocked(i)
	}
}

// deletableLocked reports whether dropping the whole segment keeps every
// tagged family at or above its retention quota.
func (s *ExampleStore) deletableLocked(seg *segment) bool {
	quota := s.opts.FamilyQuota
	if quota <= 0 {
		return true
	}
	ok := true
	seg.forEachFamilyCount(func(fam string, n int) {
		if fam != "" && s.famCounts[fam]-n < quota {
			ok = false
		}
	})
	return ok
}

// dropSegmentLocked removes segment i from disk and bookkeeping.
func (s *ExampleStore) dropSegmentLocked(i int) {
	old := s.segments[i]
	os.Remove(old.path)
	os.Remove(indexPath(old.path))
	if s.cache != nil {
		s.cache.remove(old.cacheKey())
	}
	s.total -= old.count
	old.forEachFamilyCount(func(fam string, n int) {
		if s.famCounts[fam] -= n; s.famCounts[fam] <= 0 {
			delete(s.famCounts, fam)
		}
	})
	s.segments = append(s.segments[:i], s.segments[i+1:]...)
}

// Append encodes and durably appends one example to the tail segment,
// rotating and enforcing retention as needed.
func (s *ExampleStore) Append(ex selection.Example) error {
	_, err := s.AppendAll([]selection.Example{ex})
	return err
}

// AppendAll appends a batch of examples under one lock acquisition. It
// returns the number of examples durably appended, which on error can be
// smaller than the batch — the prefix written before the failure IS in
// the corpus, so counters fed from the return value stay truthful.
func (s *ExampleStore) AppendAll(exs []selection.Example) (int, error) {
	if len(exs) == 0 {
		return 0, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	for i := range exs {
		payload, err := encodeExample(&exs[i])
		if err != nil {
			return i, err
		}
		rec := make([]byte, recHeaderSize+len(payload))
		binary.LittleEndian.PutUint32(rec, uint32(len(payload)))
		binary.LittleEndian.PutUint32(rec[4:], crc32.ChecksumIEEE(payload))
		copy(rec[recHeaderSize:], payload)
		tail := s.segments[len(s.segments)-1]
		if _, err := s.active.Write(rec); err != nil {
			// A short write leaves a torn record mid-segment; anything
			// appended after it would be silently discarded by the next
			// recovery scan. Roll the file back to the last good offset;
			// if even that fails, seal the segment and move on so future
			// appends land in a clean file. (The tracked offsets/CRC cover
			// exactly the good prefix, so the sidecar written by that seal
			// stays truthful about the torn remainder.)
			if terr := s.active.Truncate(tail.bytes); terr != nil {
				_ = s.newSegmentLocked(tail.index + 1)
			}
			return i, fmt.Errorf("feedback: append: %w", err)
		}
		tail.offsets = append(tail.offsets, tail.bytes)
		tail.fams = append(tail.fams, exs[i].Family)
		tail.crc = crc32.Update(tail.crc, crc32.IEEETable, rec)
		tail.bytes += int64(len(rec))
		tail.count++
		s.total++
		s.appended++
		s.famCounts[exs[i].Family]++
		if tail.bytes >= s.opts.MaxSegmentBytes {
			if err := s.newSegmentLocked(tail.index + 1); err != nil {
				return i + 1, err
			}
		}
	}
	s.enforceRetentionLocked()
	return len(exs), nil
}

// Len returns the number of examples currently retained.
func (s *ExampleStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Appended returns the number of examples appended since the store was
// opened (plus those recovered at open). Unlike Len it is monotonic —
// retention dropping old segments never lowers it — so growth policies
// keep firing even once the corpus is pinned at its retention cap.
func (s *ExampleStore) Appended() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appended
}

// Segments returns the number of on-disk segment files.
func (s *ExampleStore) Segments() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.segments)
}

// segView is one segment's snapshot-capture state: everything a reader
// needs, lifted out of the store lock. For sealed segments idx is the
// immutable sidecar index; the active tail has idx nil.
type segView struct {
	path  string
	key   string // decode-cache key for the image this view captured
	limit int64  // good bytes at capture time; later appends are excluded
	count int
	idx   *segIndex
}

// captureViews snapshots the segment list under the lock; the files are
// read and decoded outside it, so a large snapshot never stalls
// query-completion appends or the health probes.
func (s *ExampleStore) captureViews() ([]segView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	views := make([]segView, len(s.segments))
	for i, seg := range s.segments {
		views[i] = segView{path: seg.path, key: seg.cacheKey(), limit: seg.bytes, count: seg.count, idx: seg.idx}
	}
	return views, nil
}

// forEachView runs fn over every view, fanning out across ScanWorkers
// goroutines when more than one segment needs work. Results land in
// caller-owned per-view slots, so assembly order is the segment order no
// matter how the workers interleave; errors are joined in segment order,
// so the leading one matches what a sequential scan reports first.
func (s *ExampleStore) forEachView(views []segView, fn func(int, segView) error) error {
	workers := s.opts.ScanWorkers
	if workers > len(views) {
		workers = len(views)
	}
	errs := make([]error, len(views))
	if workers <= 1 {
		for i, v := range views {
			errs[i] = fn(i, v)
		}
	} else {
		work := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range work {
					errs[i] = fn(i, views[i])
				}
			}()
		}
		for i := range views {
			work <- i
		}
		close(work)
		wg.Wait()
	}
	return errors.Join(errs...)
}

// decodeView reads and decodes one segment view, serving sealed segments
// from the decode cache when possible (and populating it on a miss). A
// segment deleted by retention after the capture yields nil, nil.
func (s *ExampleStore) decodeView(v segView) ([]selection.Example, error) {
	if v.idx != nil && s.cache != nil {
		if exs, ok := s.cache.get(v.key); ok {
			return exs, nil
		}
	}
	// Writes go straight to the file (no userspace buffering), so a
	// plain read sees every record appended so far; the watermark
	// bounds the view to the capture instant.
	data, err := os.ReadFile(v.path)
	if os.IsNotExist(err) {
		return nil, nil // retention dropped this segment after the capture
	}
	if err != nil {
		return nil, fmt.Errorf("feedback: snapshot: %w", err)
	}
	if int64(len(data)) > v.limit {
		data = data[:v.limit]
	}
	exs, _, _, _, err := scanRecords(data, v.path, true)
	if err != nil {
		return nil, err
	}
	if v.idx != nil && s.cache != nil {
		// The key is generation-qualified: if compaction replaced the
		// image after this view was captured, this put lands under the
		// retired key and can never shadow the new image's decode.
		s.cache.put(v.key, exs, int64(len(data)))
	}
	return exs, nil
}

// assemble concatenates per-segment decode results in segment order,
// sized exactly from what the reads actually returned — segments dropped
// by retention mid-snapshot contribute nothing, so the output is never
// over-allocated from a stale pre-capture total.
func assemble(parts [][]selection.Example) []selection.Example {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]selection.Example, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// Snapshot decodes the retained corpus in append order. The store keeps
// no unbounded in-memory mirror — segments are read and decoded on
// demand, concurrently across ScanWorkers, with sealed (immutable)
// segments served from the bounded decode cache — so a warm snapshot
// costs one decode of the active tail plus slice copies. The returned
// slice is the caller's; the examples themselves may share backing
// arrays with the cache and other snapshots and must be treated as
// read-only (training and evaluation never mutate them).
func (s *ExampleStore) Snapshot() ([]selection.Example, error) {
	views, err := s.captureViews()
	if err != nil {
		return nil, err
	}
	parts := make([][]selection.Example, len(views))
	err = s.forEachView(views, func(i int, v segView) error {
		exs, err := s.decodeView(v)
		parts[i] = exs
		return err
	})
	if err != nil {
		return nil, err
	}
	return assemble(parts), nil
}

// SnapshotFamily decodes only the examples of one workload family, in
// the same order Snapshot would yield them. Sealed segments use their
// sidecar index: a segment holding none of the family's records is
// skipped without touching the disk, and one that does either filters
// the cached decode or decodes exactly the family's records off its
// offsets — so a family-targeted retrain reads O(family), not O(corpus).
// The active tail (index-less) is scanned and filtered. The read-only
// sharing contract matches Snapshot's.
//
// The family is matched exactly; use Snapshot for the global ("") target,
// which trains on every example regardless of tag.
func (s *ExampleStore) SnapshotFamily(family string) ([]selection.Example, error) {
	views, err := s.captureViews()
	if err != nil {
		return nil, err
	}
	parts := make([][]selection.Example, len(views))
	err = s.forEachView(views, func(i int, v segView) error {
		exs, err := s.decodeViewFamily(v, family)
		parts[i] = exs
		return err
	})
	if err != nil {
		return nil, err
	}
	return assemble(parts), nil
}

// decodeViewFamily extracts one family's examples from a segment view.
func (s *ExampleStore) decodeViewFamily(v segView, family string) ([]selection.Example, error) {
	if v.idx == nil {
		// Active tail: full decode, then filter.
		exs, err := s.decodeView(v)
		if err != nil {
			return nil, err
		}
		var out []selection.Example
		for _, ex := range exs {
			if ex.Family == family {
				out = append(out, ex)
			}
		}
		return out, nil
	}
	ords := v.idx.families[family]
	if len(ords) == 0 {
		return nil, nil // no I/O: the index proves the family is absent here
	}
	if s.cache != nil {
		if all, ok := s.cache.get(v.key); ok && len(all) == len(v.idx.offsets) {
			out := make([]selection.Example, 0, len(ords))
			for _, o := range ords {
				out = append(out, all[o])
			}
			return out, nil
		}
	}
	data, err := os.ReadFile(v.path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("feedback: snapshot: %w", err)
	}
	if int64(len(data)) > v.limit {
		data = data[:v.limit]
	}
	out := make([]selection.Example, 0, len(ords))
	for _, o := range ords {
		_, payload, ok := recordAt(data, v.idx.offsets[o])
		if !ok {
			// The file under the index changed (it should never: sealed
			// segments are immutable). Fall back to the full scan, whose
			// corruption semantics — keep the intact prefix — are the
			// ground truth the index is only a shortcut for.
			exs, _, _, _, err := scanRecords(data, v.path, true)
			if err != nil {
				return nil, err
			}
			out = out[:0]
			for _, ex := range exs {
				if ex.Family == family {
					out = append(out, ex)
				}
			}
			return out, nil
		}
		ex, err := decodeExample(payload, v.idx.format)
		if err != nil {
			return nil, fmt.Errorf("feedback: %s: %w", v.path, err)
		}
		out = append(out, ex)
	}
	return out, nil
}

// CorpusStats describes the on-disk corpus shape and the decode cache's
// standing — what a retrain is about to pay for, surfaced to operators
// via GET /models.
type CorpusStats struct {
	// Segments and Bytes are the on-disk segment count and their summed
	// good bytes; Examples is the retained example count.
	Segments int
	Bytes    int64
	Examples int
	// Families maps each workload family to its retained example count
	// (the empty key counts untagged v1-era examples), straight from the
	// sidecar indexes plus the tail's incremental bookkeeping — no scan.
	Families map[string]int
	// CacheHits/CacheMisses are lifetime decode-cache lookups;
	// CacheBytes/CachedSegments the current footprint; CacheCapBytes the
	// configured budget (0 = caching disabled).
	CacheHits      uint64
	CacheMisses    uint64
	CacheBytes     int64
	CacheCapBytes  int64
	CachedSegments int
	// FamilyQuota echoes the configured per-family retention floor (0 =
	// quotas off); the compaction counters are lifetime totals:
	// CompactionRuns successful CompactOnce passes, CompactedSegments
	// segments rewritten or removed by them, CompactionDropped examples
	// downsampled away.
	FamilyQuota       int
	CompactionRuns    int
	CompactedSegments int
	CompactionDropped int
}

// Stats reports the corpus shape and cache counters. The lock is held
// only to copy the incrementally-maintained counters — O(families), never
// O(segments × families) — so a huge corpus can't stall appends behind a
// health probe.
func (s *ExampleStore) Stats() CorpusStats {
	s.mu.Lock()
	st := CorpusStats{
		Segments:          len(s.segments),
		Examples:          s.total,
		Families:          make(map[string]int, len(s.famCounts)),
		FamilyQuota:       s.opts.FamilyQuota,
		CompactionRuns:    s.compactRuns,
		CompactedSegments: s.compactedSegs,
		CompactionDropped: s.compactDropped,
	}
	for f, n := range s.famCounts {
		st.Families[f] = n
	}
	for _, seg := range s.segments {
		st.Bytes += seg.bytes
	}
	s.mu.Unlock()
	if s.cache != nil {
		st.CacheCapBytes = s.opts.CacheBytes
		st.CacheHits, st.CacheMisses, st.CacheBytes, st.CachedSegments = s.cache.stats()
	}
	return st
}

// Sync flushes the active segment to stable storage.
func (s *ExampleStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.active.Sync()
}

// Dir returns the corpus directory.
func (s *ExampleStore) Dir() string { return s.dir }

// Close syncs and closes the active segment. Further appends fail with
// ErrClosed.
func (s *ExampleStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.active.Sync()
	return s.active.Close()
}

// encodeExample serialises one example:
//
//	uint32 nFeatures | nFeatures × float64
//	uint32 nKinds    | nKinds × float64 (ErrL1) | nKinds × float64 (ErrL2)
//	uint32 len | workload bytes
//	uint32 len | signature bytes
//	uint32 len | family bytes          (format >= 2)
//	uint32 nMeta | per entry: uint32 len | key bytes | float64 value
//
// Meta keys are written sorted so equal examples encode to equal bytes.
func encodeExample(e *selection.Example) ([]byte, error) {
	size := 4 + 8*len(e.Features) +
		4 + 16*progress.TotalKinds +
		4 + len(e.Workload) +
		4 + len(e.Signature) +
		4 + len(e.Family) +
		4
	metaKeys := make([]string, 0, len(e.Meta))
	for k := range e.Meta {
		metaKeys = append(metaKeys, k)
		size += 4 + len(k) + 8
	}
	sort.Strings(metaKeys)
	buf := make([]byte, 0, size)
	buf = putUint32(buf, uint32(len(e.Features)))
	for _, f := range e.Features {
		buf = putFloat64(buf, f)
	}
	buf = putUint32(buf, uint32(progress.TotalKinds))
	for k := 0; k < progress.TotalKinds; k++ {
		buf = putFloat64(buf, e.ErrL1[k])
	}
	for k := 0; k < progress.TotalKinds; k++ {
		buf = putFloat64(buf, e.ErrL2[k])
	}
	buf = putString(buf, e.Workload)
	buf = putString(buf, e.Signature)
	buf = putString(buf, e.Family)
	buf = putUint32(buf, uint32(len(metaKeys)))
	for _, k := range metaKeys {
		buf = putString(buf, k)
		buf = putFloat64(buf, e.Meta[k])
	}
	return buf, nil
}

// errCorruptFeatureCount flags a record whose feature count cannot fit
// its payload (shared by the full decode and the family-only skip).
var errCorruptFeatureCount = errors.New("corrupt example: feature count")

// decodeExample is the inverse of encodeExample. format selects the
// record layout; v1 records carry no family tag (Family stays "").
func decodeExample(b []byte, format int) (selection.Example, error) {
	var e selection.Example
	r := reader{b: b}
	nf := r.uint32()
	if nf > uint32(len(b)) {
		return e, errCorruptFeatureCount
	}
	e.Features = make([]float64, nf)
	for i := range e.Features {
		e.Features[i] = r.float64()
	}
	nk := r.uint32()
	if r.err == nil && nk != uint32(progress.TotalKinds) {
		return e, fmt.Errorf("corpus written with %d estimator kinds; this build has %d — the corpus must be re-harvested", nk, progress.TotalKinds)
	}
	for i := 0; i < progress.TotalKinds; i++ {
		e.ErrL1[i] = r.float64()
	}
	for i := 0; i < progress.TotalKinds; i++ {
		e.ErrL2[i] = r.float64()
	}
	e.Workload = r.string()
	e.Signature = r.string()
	if format >= 2 {
		e.Family = r.string()
	}
	nm := r.uint32()
	if nm > uint32(len(b)) {
		return e, errors.New("corrupt example: meta count")
	}
	if nm > 0 {
		e.Meta = make(map[string]float64, nm)
		for i := uint32(0); i < nm; i++ {
			k := r.string()
			e.Meta[k] = r.float64()
		}
	}
	if r.err != nil {
		return e, fmt.Errorf("corrupt example: %w", r.err)
	}
	if len(r.b) != 0 {
		return e, errors.New("corrupt example: trailing bytes")
	}
	return e, nil
}

func putUint32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func putFloat64(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

func putString(b []byte, s string) []byte {
	b = putUint32(b, uint32(len(s)))
	return append(b, s...)
}

// reader is a cursor over a record payload that latches the first error.
type reader struct {
	b   []byte
	err error
}

func (r *reader) uint32() uint32 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 4 {
		r.err = io.ErrUnexpectedEOF
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *reader) float64() float64 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 8 {
		r.err = io.ErrUnexpectedEOF
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b))
	r.b = r.b[8:]
	return v
}

func (r *reader) uint64() uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 8 {
		r.err = io.ErrUnexpectedEOF
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *reader) string() string {
	n := r.uint32()
	if r.err != nil {
		return ""
	}
	if uint32(len(r.b)) < n {
		r.err = io.ErrUnexpectedEOF
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

// skip advances the cursor n bytes without materialising anything.
func (r *reader) skip(n int) {
	if r.err != nil {
		return
	}
	if n < 0 || len(r.b) < n {
		r.err = io.ErrUnexpectedEOF
		return
	}
	r.b = r.b[n:]
}

// skipString advances past one length-prefixed string.
func (r *reader) skipString() {
	n := r.uint32()
	if r.err != nil {
		return
	}
	r.skip(int(n))
}
