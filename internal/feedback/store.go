// Package feedback closes the paper's training loop at serving time: it
// persists the labelled examples harvested from queries the daemon
// actually executes (the ExampleStore), converts finished execution
// traces into those examples as they complete (the Harvester), retrains
// the Section 4 estimator-selection models in the background once enough
// fresh evidence accrues (the Retrainer), and hot-swaps the resulting
// selector versions into the serving path without blocking a single
// progress request (the Registry). The corpus substrate is deliberately
// separate from the serving path — progressd keeps answering from the
// current selector while a new one trains.
package feedback

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"progressest/internal/progress"
	"progressest/internal/selection"
)

// Segment file layout:
//
//	header:  magic "PESTCORP" | uint32 format version
//	record:  uint32 payload length | uint32 CRC-32 (IEEE) of payload | payload
//
// All integers are little-endian. The payload is the compact binary
// encoding of one selection.Example (see encodeExample). Appends only ever
// extend the tail segment, so a crash can at worst leave one torn record
// at the end of the newest file; the recovery scan keeps every record up
// to the first corruption and truncates the torn tail.
// Format history: v1 had no family tag; v2 appends the example's workload
// family after the signature. Both decode; new segments are written at
// storeFormat, and a reopened store seals an old-format tail segment so a
// single segment never mixes formats.
const (
	segMagic      = "PESTCORP"
	storeFormat   = 2
	minFormat     = 1
	segHeaderSize = len(segMagic) + 4
	recHeaderSize = 8
)

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("feedback: store closed")

// StoreOptions bound the on-disk corpus.
type StoreOptions struct {
	// MaxSegmentBytes rotates the active segment once it exceeds this many
	// bytes (default 4 MiB).
	MaxSegmentBytes int64
	// MaxExamples bounds retention: once the corpus exceeds this many
	// examples, the oldest whole segments are deleted (default 100000; the
	// active segment is never deleted). Negative disables retention
	// entirely — required when appending to a corpus someone else bounds,
	// so an "append" can never delete another owner's history.
	MaxExamples int
}

func (o StoreOptions) withDefaults() StoreOptions {
	if o.MaxSegmentBytes <= 0 {
		o.MaxSegmentBytes = 4 << 20
	}
	if o.MaxExamples == 0 {
		o.MaxExamples = 100000
	}
	return o
}

// segment is one corpus file's bookkeeping. Examples live on disk only —
// the store never mirrors the corpus in memory; Snapshot decodes it on
// demand (retrains are rare, serving-path memory is precious).
type segment struct {
	index  int
	path   string
	count  int
	bytes  int64
	format int
}

// ExampleStore is an append-only, segmented, crash-safe on-disk corpus of
// labelled selection examples. Appends go to the tail segment; rotation
// caps segment size; retention drops the oldest segments. All methods are
// safe for concurrent use.
type ExampleStore struct {
	dir  string
	opts StoreOptions

	mu       sync.Mutex
	segments []*segment
	active   *os.File // open handle on the tail segment
	total    int
	appended int // lifetime appends, monotonic: retention never lowers it
	closed   bool
}

// OpenStore opens (or creates) the corpus directory, recovering from any
// torn tail record left by a crash: the scan keeps every intact record
// and truncates the tail segment to the last good offset.
func OpenStore(dir string, opts StoreOptions) (*ExampleStore, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("feedback: open store: %w", err)
	}
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil {
		return nil, fmt.Errorf("feedback: scan store: %w", err)
	}
	sort.Strings(names)
	// Identify real segment files first: the tail (crash-recovery
	// semantics, reopened for append) must be the last PARSED segment,
	// not whatever foreign seg-*.log file happens to sort last.
	type segFile struct {
		name string
		idx  int
	}
	var files []segFile
	for _, name := range names {
		var idx int
		if _, err := fmt.Sscanf(filepath.Base(name), "seg-%08d.log", &idx); err != nil {
			continue // foreign file; leave it alone
		}
		files = append(files, segFile{name, idx})
	}
	s := &ExampleStore{dir: dir, opts: opts}
	for i, f := range files {
		seg, err := readSegment(f.name, f.idx, i == len(files)-1)
		if err != nil {
			return nil, err
		}
		s.segments = append(s.segments, seg)
		s.total += seg.count
	}
	s.appended = s.total
	switch tail := s.tail(); {
	case tail == nil:
		if err := s.newSegmentLocked(1); err != nil {
			return nil, err
		}
	case tail.format != storeFormat:
		// Seal the old-format tail: a segment must never mix record
		// formats, so fresh appends go to a new current-format segment.
		if err := s.newSegmentLocked(tail.index + 1); err != nil {
			return nil, err
		}
	default:
		f, err := os.OpenFile(tail.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("feedback: reopen tail segment: %w", err)
		}
		s.active = f
	}
	s.enforceRetentionLocked()
	return s, nil
}

// ReadCorpus reads every example retained in a corpus directory without
// opening it for writing: nothing is created, truncated or appended, so
// it is safe on a corpus a live daemon owns, and a mistyped path errors
// instead of conjuring an empty store there. A torn tail record is
// skipped (not repaired).
func ReadCorpus(dir string) ([]selection.Example, error) {
	info, err := os.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("feedback: read corpus: %w", err)
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("feedback: read corpus: %s is not a directory", dir)
	}
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil {
		return nil, fmt.Errorf("feedback: read corpus: %w", err)
	}
	sort.Strings(names)
	var out []selection.Example
	found := false
	for _, name := range names {
		var idx int
		if _, err := fmt.Sscanf(filepath.Base(name), "seg-%08d.log", &idx); err != nil {
			continue
		}
		found = true
		data, err := os.ReadFile(name)
		if os.IsNotExist(err) {
			continue // a live owner's retention deleted it after the glob
		}
		if err != nil {
			return nil, fmt.Errorf("feedback: read corpus: %w", err)
		}
		exs, _, _, _, err := scanRecords(data, name, true) // read-only: never truncates
		if err != nil {
			return nil, err
		}
		out = append(out, exs...)
	}
	if !found {
		return nil, fmt.Errorf("feedback: %s contains no corpus segments", dir)
	}
	return out, nil
}

// readSegment validates one segment file and returns its bookkeeping
// (record count, good-byte watermark) WITHOUT materialising the examples
// — a restart over a capped corpus would otherwise decode and discard
// the whole thing. tail selects crash-recovery semantics: a torn or
// corrupt record at the end is truncated away so the segment can keep
// growing; in a sealed segment corruption keeps the intact prefix and
// ignores the remainder.
func readSegment(path string, index int, tail bool) (*segment, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("feedback: read segment: %w", err)
	}
	seg := &segment{index: index, path: path, format: storeFormat}
	if tail && len(data) < segHeaderSize {
		// A crash between create and header write; rewrite from scratch.
		if err := os.WriteFile(path, segmentHeader(), 0o644); err != nil {
			return nil, fmt.Errorf("feedback: reset torn segment: %w", err)
		}
		seg.bytes = int64(segHeaderSize)
		return seg, nil
	}
	_, count, good, format, err := scanRecords(data, path, false)
	if err != nil {
		return nil, err
	}
	seg.count = count
	seg.bytes = int64(good)
	seg.format = format
	if tail && good < len(data) {
		if err := os.Truncate(path, int64(good)); err != nil {
			return nil, fmt.Errorf("feedback: truncate torn tail: %w", err)
		}
	}
	return seg, nil
}

// scanRecords validates a segment image's header and walks its records,
// returning the record count, the byte offset of the end of the last
// intact record and the segment's format version. With decode set it also
// materialises the examples; with it clear only the FIRST record is
// decoded — a cheap sanity check that catches estimator-set/version skew
// at open time — and the rest are verified by CRC alone. Torn or corrupt
// trailing records are ignored (never an error): the caller decides
// whether to truncate them away.
func scanRecords(data []byte, path string, decode bool) ([]selection.Example, int, int, int, error) {
	if len(data) < segHeaderSize || string(data[:len(segMagic)]) != segMagic {
		return nil, 0, 0, 0, fmt.Errorf("feedback: %s is not a corpus segment (bad magic)", path)
	}
	format := int(binary.LittleEndian.Uint32(data[len(segMagic):segHeaderSize]))
	if format < minFormat || format > storeFormat {
		return nil, 0, 0, 0, fmt.Errorf("feedback: %s uses corpus format %d; this build understands formats %d..%d — retrain or migrate the corpus",
			path, format, minFormat, storeFormat)
	}
	var examples []selection.Example
	count := 0
	off := segHeaderSize
	good := off
	for off < len(data) {
		if off+recHeaderSize > len(data) {
			break // torn record header
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if off+recHeaderSize+n > len(data) {
			break // torn payload
		}
		payload := data[off+recHeaderSize : off+recHeaderSize+n]
		if crc32.ChecksumIEEE(payload) != sum {
			break // corrupt record; everything after it is suspect
		}
		if decode || count == 0 {
			ex, err := decodeExample(payload, format)
			if err != nil {
				return nil, 0, 0, 0, fmt.Errorf("feedback: %s: %w", path, err)
			}
			if decode {
				examples = append(examples, ex)
			}
		}
		count++
		off += recHeaderSize + n
		good = off
	}
	return examples, count, good, format, nil
}

func segmentHeader() []byte {
	h := make([]byte, segHeaderSize)
	copy(h, segMagic)
	binary.LittleEndian.PutUint32(h[len(segMagic):], storeFormat)
	return h
}

// newSegmentLocked creates and activates segment #index. O_EXCL makes a
// concurrent writer on the same directory an explicit error instead of a
// silent truncation of its segment — the store is single-writer.
func (s *ExampleStore) newSegmentLocked(index int) error {
	path := filepath.Join(s.dir, fmt.Sprintf("seg-%08d.log", index))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("feedback: create segment: %w", err)
	}
	if _, err := f.Write(segmentHeader()); err != nil {
		f.Close()
		// Remove the orphan: leaving it would make every rotation retry
		// fail on O_EXCL (EEXIST) until the process restarts.
		os.Remove(path)
		return fmt.Errorf("feedback: write segment header: %w", err)
	}
	if s.active != nil {
		s.active.Sync()
		s.active.Close()
	}
	s.active = f
	s.segments = append(s.segments, &segment{index: index, path: path, bytes: int64(segHeaderSize), format: storeFormat})
	return nil
}

// tail returns the newest segment, or nil when none exists.
func (s *ExampleStore) tail() *segment {
	if len(s.segments) == 0 {
		return nil
	}
	return s.segments[len(s.segments)-1]
}

// enforceRetentionLocked deletes the oldest whole segments while the
// corpus exceeds the example bound. The active segment always survives;
// a negative bound disables retention.
func (s *ExampleStore) enforceRetentionLocked() {
	if s.opts.MaxExamples < 0 {
		return
	}
	for s.total > s.opts.MaxExamples && len(s.segments) > 1 {
		old := s.segments[0]
		os.Remove(old.path)
		s.total -= old.count
		s.segments = s.segments[1:]
	}
}

// Append encodes and durably appends one example to the tail segment,
// rotating and enforcing retention as needed.
func (s *ExampleStore) Append(ex selection.Example) error {
	_, err := s.AppendAll([]selection.Example{ex})
	return err
}

// AppendAll appends a batch of examples under one lock acquisition. It
// returns the number of examples durably appended, which on error can be
// smaller than the batch — the prefix written before the failure IS in
// the corpus, so counters fed from the return value stay truthful.
func (s *ExampleStore) AppendAll(exs []selection.Example) (int, error) {
	if len(exs) == 0 {
		return 0, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	for i := range exs {
		payload, err := encodeExample(&exs[i])
		if err != nil {
			return i, err
		}
		rec := make([]byte, recHeaderSize+len(payload))
		binary.LittleEndian.PutUint32(rec, uint32(len(payload)))
		binary.LittleEndian.PutUint32(rec[4:], crc32.ChecksumIEEE(payload))
		copy(rec[recHeaderSize:], payload)
		tail := s.segments[len(s.segments)-1]
		if _, err := s.active.Write(rec); err != nil {
			// A short write leaves a torn record mid-segment; anything
			// appended after it would be silently discarded by the next
			// recovery scan. Roll the file back to the last good offset;
			// if even that fails, seal the segment and move on so future
			// appends land in a clean file.
			if terr := s.active.Truncate(tail.bytes); terr != nil {
				_ = s.newSegmentLocked(tail.index + 1)
			}
			return i, fmt.Errorf("feedback: append: %w", err)
		}
		tail.bytes += int64(len(rec))
		tail.count++
		s.total++
		s.appended++
		if tail.bytes >= s.opts.MaxSegmentBytes {
			if err := s.newSegmentLocked(tail.index + 1); err != nil {
				return i + 1, err
			}
		}
	}
	s.enforceRetentionLocked()
	return len(exs), nil
}

// Len returns the number of examples currently retained.
func (s *ExampleStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Appended returns the number of examples appended since the store was
// opened (plus those recovered at open). Unlike Len it is monotonic —
// retention dropping old segments never lowers it — so growth policies
// keep firing even once the corpus is pinned at its retention cap.
func (s *ExampleStore) Appended() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appended
}

// Segments returns the number of on-disk segment files.
func (s *ExampleStore) Segments() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.segments)
}

// Snapshot decodes the retained corpus from disk in append order. The
// store keeps no in-memory mirror — a daemon at the retention cap would
// otherwise pin tens of MB of heap for data read only at rare retrain
// time — so this costs one sequential read of the corpus. Only the
// segment list and byte watermarks are captured under the lock; the
// files are read and decoded outside it, so a large snapshot never
// stalls query-completion appends or the health probes. The returned
// examples share no state with the store.
func (s *ExampleStore) Snapshot() ([]selection.Example, error) {
	type segRead struct {
		path  string
		limit int64 // good bytes at capture time; later appends are excluded
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	total := s.total
	reads := make([]segRead, len(s.segments))
	for i, seg := range s.segments {
		reads[i] = segRead{path: seg.path, limit: seg.bytes}
	}
	s.mu.Unlock()

	out := make([]selection.Example, 0, total)
	for _, r := range reads {
		// Writes go straight to the file (no userspace buffering), so a
		// plain read sees every record appended so far; the watermark
		// bounds the view to the capture instant.
		data, err := os.ReadFile(r.path)
		if os.IsNotExist(err) {
			continue // retention dropped this segment after the capture
		}
		if err != nil {
			return nil, fmt.Errorf("feedback: snapshot: %w", err)
		}
		if int64(len(data)) > r.limit {
			data = data[:r.limit]
		}
		exs, _, _, _, err := scanRecords(data, r.path, true)
		if err != nil {
			return nil, err
		}
		out = append(out, exs...)
	}
	return out, nil
}

// Sync flushes the active segment to stable storage.
func (s *ExampleStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.active.Sync()
}

// Dir returns the corpus directory.
func (s *ExampleStore) Dir() string { return s.dir }

// Close syncs and closes the active segment. Further appends fail with
// ErrClosed.
func (s *ExampleStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.active.Sync()
	return s.active.Close()
}

// encodeExample serialises one example:
//
//	uint32 nFeatures | nFeatures × float64
//	uint32 nKinds    | nKinds × float64 (ErrL1) | nKinds × float64 (ErrL2)
//	uint32 len | workload bytes
//	uint32 len | signature bytes
//	uint32 len | family bytes          (format >= 2)
//	uint32 nMeta | per entry: uint32 len | key bytes | float64 value
//
// Meta keys are written sorted so equal examples encode to equal bytes.
func encodeExample(e *selection.Example) ([]byte, error) {
	size := 4 + 8*len(e.Features) +
		4 + 16*progress.TotalKinds +
		4 + len(e.Workload) +
		4 + len(e.Signature) +
		4 + len(e.Family) +
		4
	metaKeys := make([]string, 0, len(e.Meta))
	for k := range e.Meta {
		metaKeys = append(metaKeys, k)
		size += 4 + len(k) + 8
	}
	sort.Strings(metaKeys)
	buf := make([]byte, 0, size)
	buf = putUint32(buf, uint32(len(e.Features)))
	for _, f := range e.Features {
		buf = putFloat64(buf, f)
	}
	buf = putUint32(buf, uint32(progress.TotalKinds))
	for k := 0; k < progress.TotalKinds; k++ {
		buf = putFloat64(buf, e.ErrL1[k])
	}
	for k := 0; k < progress.TotalKinds; k++ {
		buf = putFloat64(buf, e.ErrL2[k])
	}
	buf = putString(buf, e.Workload)
	buf = putString(buf, e.Signature)
	buf = putString(buf, e.Family)
	buf = putUint32(buf, uint32(len(metaKeys)))
	for _, k := range metaKeys {
		buf = putString(buf, k)
		buf = putFloat64(buf, e.Meta[k])
	}
	return buf, nil
}

// decodeExample is the inverse of encodeExample. format selects the
// record layout; v1 records carry no family tag (Family stays "").
func decodeExample(b []byte, format int) (selection.Example, error) {
	var e selection.Example
	r := reader{b: b}
	nf := r.uint32()
	if nf > uint32(len(b)) {
		return e, errors.New("corrupt example: feature count")
	}
	e.Features = make([]float64, nf)
	for i := range e.Features {
		e.Features[i] = r.float64()
	}
	nk := r.uint32()
	if r.err == nil && nk != uint32(progress.TotalKinds) {
		return e, fmt.Errorf("corpus written with %d estimator kinds; this build has %d — the corpus must be re-harvested", nk, progress.TotalKinds)
	}
	for i := 0; i < progress.TotalKinds; i++ {
		e.ErrL1[i] = r.float64()
	}
	for i := 0; i < progress.TotalKinds; i++ {
		e.ErrL2[i] = r.float64()
	}
	e.Workload = r.string()
	e.Signature = r.string()
	if format >= 2 {
		e.Family = r.string()
	}
	nm := r.uint32()
	if nm > uint32(len(b)) {
		return e, errors.New("corrupt example: meta count")
	}
	if nm > 0 {
		e.Meta = make(map[string]float64, nm)
		for i := uint32(0); i < nm; i++ {
			k := r.string()
			e.Meta[k] = r.float64()
		}
	}
	if r.err != nil {
		return e, fmt.Errorf("corrupt example: %w", r.err)
	}
	if len(r.b) != 0 {
		return e, errors.New("corrupt example: trailing bytes")
	}
	return e, nil
}

func putUint32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func putFloat64(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

func putString(b []byte, s string) []byte {
	b = putUint32(b, uint32(len(s)))
	return append(b, s...)
}

// reader is a cursor over a record payload that latches the first error.
type reader struct {
	b   []byte
	err error
}

func (r *reader) uint32() uint32 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 4 {
		r.err = io.ErrUnexpectedEOF
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *reader) float64() float64 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 8 {
		r.err = io.ErrUnexpectedEOF
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b))
	r.b = r.b[8:]
	return v
}

func (r *reader) string() string {
	n := r.uint32()
	if r.err != nil {
		return ""
	}
	if uint32(len(r.b)) < n {
		r.err = io.ErrUnexpectedEOF
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}
