package feedback

import (
	"sort"
	"sync"
	"time"

	"progressest/internal/selection"
)

// DriftConfig tunes the observed-vs-predicted drift monitor.
type DriftConfig struct {
	// Window is the number of most recent observed per-pipeline errors the
	// tracker keeps per routing target (default 256). Older observations
	// roll off, so the verdict reflects current traffic, not the version's
	// lifetime average.
	Window int
	// MinSamples is the minimum number of windowed observations before a
	// drift verdict can fire (default 32): a fresh version — or a freshly
	// reset window — must accrue evidence first.
	MinSamples int
	// Ratio is the accepted observed/predicted error inflation: target is
	// drifted once meanObserved > baseline*Ratio + AbsSlack (default 1.5).
	Ratio float64
	// AbsSlack is the absolute slack added to the ratio bound (default
	// 0.01, mirroring the paper's Section 6.6 near-optimal tolerance):
	// near a tiny baseline a purely relative bound would flag measurement
	// noise as drift. Negative means zero slack.
	AbsSlack float64
}

const (
	defaultDriftWindow     = 256
	defaultDriftMinSamples = 32
	defaultDriftRatio      = 1.5
)

func (c DriftConfig) withDefaults() DriftConfig {
	if c.Window <= 0 {
		c.Window = defaultDriftWindow
	}
	if c.MinSamples <= 0 {
		c.MinSamples = defaultDriftMinSamples
	}
	if c.MinSamples > c.Window {
		// The ring can never hold MinSamples observations; an unclamped
		// config would silently disable every verdict (e.g.
		// -drift-window 16 with the default 32 minimum).
		c.MinSamples = c.Window
	}
	if c.Ratio <= 0 {
		c.Ratio = defaultDriftRatio
	}
	switch {
	case c.AbsSlack < 0:
		c.AbsSlack = 0
	case c.AbsSlack == 0:
		c.AbsSlack = gateAbsSlack
	}
	return c
}

// ServedModel pins, at query start, everything the drift join needs to
// know about the selector version serving that query: the routing target
// it was published under, its id, the selector itself (to replay its
// choices on the harvested examples), and the holdout baseline recorded
// at training time. BaselineN 0 means the version was never fairly
// holdout-evaluated (seed or restored models) — its errors are still
// tracked, but no drift verdict fires against an in-sample baseline.
type ServedModel struct {
	// Target is the routing target the version serves ("" = the global
	// model). Observed errors are accounted per target, not per query
	// family: a family falling back to the global model contributes
	// evidence to the global window.
	Target string
	// Version is the registry id of the pinned version.
	Version int
	// Selector replays the version's estimator choices on harvested
	// examples.
	Selector *selection.Selector
	// BaselineL1/BaselineN are the version's recorded holdout error and
	// the holdout size it was measured on (VersionMeta.HoldoutL1/N).
	BaselineL1 float64
	BaselineN  int
}

// DriftState is one routing target's observed-vs-predicted standing.
type DriftState struct {
	// Target is the routing target ("" = the global model).
	Target string
	// Version is the serving version the window is accounting against.
	Version int
	// BaselineL1/BaselineN are that version's holdout baseline (predicted
	// error); BaselineN 0 means no fair baseline exists and Drifted stays
	// false no matter the observations.
	BaselineL1 float64
	BaselineN  int
	// ObservedL1 is the mean L1 error of the version's own estimator
	// choices over the windowed observations; ObservedP90 the 90th
	// percentile of the same window.
	ObservedL1  float64
	ObservedP90 float64
	// Samples is the number of observations currently in the window (at
	// most Window); Total counts every observation recorded for this
	// version since the window was last reset, including rolled-off ones.
	Samples int
	Total   int
	// Drifted reports the verdict: a fair baseline exists, the window has
	// at least MinSamples observations, and ObservedL1 exceeds
	// BaselineL1*Ratio + AbsSlack.
	Drifted bool
	// Since is when the verdict first became true for this version's
	// window (zero while not drifted); it resets when the window does.
	Since time.Time
}

// driftWindow is one routing target's mutable accounting.
type driftWindow struct {
	version    int
	baselineL1 float64
	baselineN  int
	ring       []float64
	next       int // ring write cursor
	filled     int // observations in the ring (≤ len(ring))
	sum        float64
	total      int // lifetime observations for this version/window epoch
	since      time.Time
	// maxSeen is the highest version id ever bound to this target.
	// Registry ids are monotonic, so any id above it must be a NEW
	// publish (re-key the window), while an id at or below it that is
	// not the bound version is a late harvest for a replaced — or
	// rolled-back-from — version (drop it). Rebind preserves maxSeen
	// across a rollback precisely so the rolled-back-from version's
	// stragglers stay dropped even though the bound version moved
	// backwards.
	maxSeen int
}

// DriftTracker joins each served query's pinned model version with the
// estimator errors later harvested for that same query, per routing
// target, and compares the windowed observed error against the version's
// recorded holdout baseline — König et al.'s serving-time signal that a
// selection model has gone stale. All methods are safe for concurrent
// use; Record sits on the harvest path (one append per finished
// pipeline), so the window keeps a running sum and defers anything
// O(window) to Status.
type DriftTracker struct {
	cfg DriftConfig

	mu      sync.Mutex
	targets map[string]*driftWindow
}

// NewDriftTracker returns an empty tracker.
func NewDriftTracker(cfg DriftConfig) *DriftTracker {
	return &DriftTracker{cfg: cfg.withDefaults(), targets: make(map[string]*driftWindow)}
}

// Config returns the tracker's effective (defaulted) configuration.
func (t *DriftTracker) Config() DriftConfig { return t.cfg }

// newWindowLocked binds a fresh, empty window for served, carrying the
// highest version id the target has ever seen forward.
func (t *DriftTracker) newWindowLocked(served ServedModel, prev *driftWindow) *driftWindow {
	w := &driftWindow{
		version:    served.Version,
		baselineL1: served.BaselineL1,
		baselineN:  served.BaselineN,
		ring:       make([]float64, t.cfg.Window),
		maxSeen:    served.Version,
	}
	if prev != nil && prev.maxSeen > w.maxSeen {
		w.maxSeen = prev.maxSeen
	}
	return w
}

// Record accounts the observed per-pipeline L1 errors of one finished
// query against the version that served it. Version transitions are
// resolved by registry id: a version NEWER than anything the target has
// seen is a fresh publish and re-keys the window (its baseline changed,
// old observations are evidence about the old model); a version other
// than the bound one that is NOT newer is a late harvest for a replaced
// (or rolled-back-from) version and is dropped — a query pinned
// pre-transition must not poison the current window. Rollbacks move the
// bound version backwards via Rebind, which is why "newer" is judged
// against the high-water mark, not the bound version.
func (t *DriftTracker) Record(served ServedModel, errs []float64) {
	if len(errs) == 0 || served.Version == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	w := t.targets[served.Target]
	switch {
	case w == nil:
		w = t.newWindowLocked(served, nil)
		t.targets[served.Target] = w
	case served.Version == w.version:
		// The bound version: record below.
	case served.Version > w.maxSeen:
		w = t.newWindowLocked(served, w)
		t.targets[served.Target] = w
	default:
		return // late harvest for a replaced or rolled-back-from version
	}
	for _, e := range errs {
		if w.filled == len(w.ring) {
			w.sum -= w.ring[w.next]
		} else {
			w.filled++
		}
		w.ring[w.next] = e
		w.sum += e
		w.next = (w.next + 1) % len(w.ring)
		w.total++
	}
	if t.driftedLocked(w) {
		if w.since.IsZero() {
			w.since = time.Now()
		}
	} else {
		w.since = time.Time{}
	}
}

// driftedLocked evaluates the verdict for one window.
func (t *DriftTracker) driftedLocked(w *driftWindow) bool {
	if w.baselineN <= 0 || w.filled < t.cfg.MinSamples {
		return false
	}
	mean := w.sum / float64(w.filled)
	return mean > w.baselineL1*t.cfg.Ratio+t.cfg.AbsSlack
}

// Rebind re-keys target's existing window to the version the registry
// now serves it with — the reconciliation hook for transitions Record
// cannot infer from harvests alone. A rollback moves the bound version
// BACKWARDS (observations clear, the high-water mark survives so the
// rolled-back-from version's late harvests stay dropped); a
// served.Version of 0 tombstones the window (the target lost its own
// serving version entirely, e.g. a family rolled back past its last
// model onto the global fallback): it stops appearing in Statuses and
// never produces a verdict, yet keeps dropping stragglers until a fresh
// publish re-keys it. A target with no window is left without one.
//
// superseded is the id of the version just moved OFF the target (0 if
// unknown). The window's own high-water mark only tracks versions whose
// harvests it has seen; a rolled-back-from version that never finished
// a query is above it, and without this floor its first straggler would
// look like a fresh publish and hijack the window away from the version
// actually serving. For the same reason a target with no window yet
// GETS one here: a rollback can precede the target's first harvest, and
// dropping the floor on that path would let the straggler create the
// window keyed to the dead version.
func (t *DriftTracker) Rebind(target string, served ServedModel, superseded int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	nw := t.newWindowLocked(served, t.targets[target])
	if superseded > nw.maxSeen {
		nw.maxSeen = superseded
	}
	t.targets[target] = nw
}

// Reset clears target's window, keeping the version/baseline binding: a
// drift-triggered retrain whose candidate the gate rejected (the old
// version keeps serving) must re-accrue MinSamples fresh observations
// before the verdict can fire again, instead of re-firing every poll
// tick on the same stale window.
func (t *DriftTracker) Reset(target string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	w := t.targets[target]
	if w == nil {
		return
	}
	w.filled = 0
	w.next = 0
	w.sum = 0
	w.total = 0
	w.since = time.Time{}
}

// stateLocked snapshots one window into its public form.
func (t *DriftTracker) stateLocked(target string, w *driftWindow) DriftState {
	st := DriftState{
		Target:     target,
		Version:    w.version,
		BaselineL1: w.baselineL1,
		BaselineN:  w.baselineN,
		Samples:    w.filled,
		Total:      w.total,
		Drifted:    t.driftedLocked(w),
		Since:      w.since,
	}
	if w.filled > 0 {
		st.ObservedL1 = w.sum / float64(w.filled)
		obs := make([]float64, w.filled)
		copy(obs, w.ring[:w.filled])
		sort.Float64s(obs)
		// Nearest-rank p90 over the window (small by construction).
		idx := (len(obs)*9 + 9) / 10
		if idx > len(obs) {
			idx = len(obs)
		}
		st.ObservedP90 = obs[idx-1]
	}
	return st
}

// Status returns target's current standing; ok is false before any
// observation was recorded for it, and after a tombstone Rebind (the
// target has no serving version of its own to account against).
func (t *DriftTracker) Status(target string) (DriftState, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	w := t.targets[target]
	if w == nil || w.version == 0 {
		return DriftState{}, false
	}
	return t.stateLocked(target, w), true
}

// Statuses returns every tracked target's standing, sorted by target
// (the global "" first). Tombstoned targets are omitted.
func (t *DriftTracker) Statuses() []DriftState {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]DriftState, 0, len(t.targets))
	for target, w := range t.targets {
		if w.version == 0 {
			continue
		}
		out = append(out, t.stateLocked(target, w))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Target < out[j].Target })
	return out
}

// Drifted returns the targets whose verdict is currently true, sorted —
// the retrainer's drift trigger. It runs every poll tick, so unlike
// Statuses it stays O(1) per target (no window copy/sort): the returned
// states carry everything the trigger consumes but leave ObservedP90
// zero.
func (t *DriftTracker) Drifted() []DriftState {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []DriftState
	for target, w := range t.targets {
		if w.version == 0 || !t.driftedLocked(w) {
			continue
		}
		out = append(out, DriftState{
			Target:     target,
			Version:    w.version,
			BaselineL1: w.baselineL1,
			BaselineN:  w.baselineN,
			ObservedL1: w.sum / float64(w.filled),
			Samples:    w.filled,
			Total:      w.total,
			Drifted:    true,
			Since:      w.since,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Target < out[j].Target })
	return out
}
