package feedback

import (
	"testing"
	"time"
)

// canaryHarness is a retrainer with canary confirmation enabled over a
// fresh trainable corpus, with one manually published serving version
// (manual retrains bypass the canary, so v1 swaps in directly).
func canaryHarness(t *testing.T, window int, maxAge time.Duration) (*Retrainer, *Registry, *Canary, *ExampleStore) {
	t.Helper()
	store, err := OpenStore(t.TempDir(), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	if _, err := store.AppendAll(trainable(60, 0)); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	canary := NewCanary(CanaryConfig{Window: window, MaxAge: maxAge})
	r := NewRetrainer(store, reg, RetrainerConfig{
		Selection: fastConfig(), Canary: canary,
	})
	if _, err := r.Retrain("manual"); err != nil {
		t.Fatal(err)
	}
	if reg.Current() == nil {
		t.Fatal("manual retrain did not publish a serving champion")
	}
	return r, reg, canary, store
}

// resolve drives the canary verdicts the way the background tick does.
func resolve(r *Retrainer) {
	r.trainMu.Lock()
	defer r.trainMu.Unlock()
	r.resolveCanariesLocked()
}

// TestCanaryDivertsBackgroundRetrain: with canary confirmation on, a
// gate-accepted background retrain must NOT hot-swap — it becomes a
// pending challenger, the champion keeps serving, and the decision ring
// records the divert.
func TestCanaryDivertsBackgroundRetrain(t *testing.T) {
	r, reg, canary, store := canaryHarness(t, 8, time.Hour)
	v1 := reg.Current()
	if _, err := store.AppendAll(trainable(20, 100)); err != nil {
		t.Fatal(err)
	}
	v, err := r.Retrain("auto")
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Fatalf("diverted retrain returned a version: %+v", v)
	}
	if reg.Current() != v1 {
		t.Fatal("challenger hot-swapped past the confirmation window")
	}
	states := canary.States()
	if len(states) != 1 || states[0].Target != "" || states[0].Champion != v1.ID ||
		states[0].Samples != 0 || states[0].Window != 8 {
		t.Fatalf("canary state = %+v, want one fresh global challenger", states)
	}
	ds := r.Decisions()
	last := ds[len(ds)-1]
	if last.Trigger != "auto" || last.Decision != DecisionCanary || last.Version != 0 {
		t.Fatalf("divert decision = %+v, want trigger auto / decision canary", last)
	}
}

// TestCanaryPromotesAfterWindow: a challenger whose live error holds up
// against the champion over the full confirmation window is promoted —
// atomic hot-swap, decision "accepted", trigger "canary", and the live
// champion mean recorded as the baseline it was judged against.
func TestCanaryPromotesAfterWindow(t *testing.T) {
	r, reg, canary, store := canaryHarness(t, 8, time.Hour)
	v1 := reg.Current()
	if _, err := store.AppendAll(trainable(20, 100)); err != nil {
		t.Fatal(err)
	}
	if v, err := r.Retrain("auto"); err != nil || v != nil {
		t.Fatalf("divert failed: v=%v err=%v", v, err)
	}
	// The champion's live errors (0.5 each) are far worse than anything
	// the challenger's selector can pick (at most 0.40), so the live
	// comparison must pass.
	exs := trainable(8, 300)
	canary.Observe("", v1.ID, exs, repeat(0.5, 8))
	if st := canary.States(); len(st) != 1 || st[0].Samples != 8 {
		t.Fatalf("window not filled: %+v", st)
	}

	resolve(r)

	cur := reg.Current()
	if cur == v1 || cur.Meta.Decision != DecisionAccepted {
		t.Fatalf("challenger not promoted: %+v", cur)
	}
	if !near(cur.Meta.BaselineL1, 0.5) {
		t.Fatalf("promoted baseline %v, want the live champion mean 0.5", cur.Meta.BaselineL1)
	}
	if len(canary.States()) != 0 {
		t.Fatal("promoted challenger still pending")
	}
	ds := r.Decisions()
	last := ds[len(ds)-1]
	if last.Trigger != "canary" || last.Decision != DecisionAccepted || last.Version != cur.ID {
		t.Fatalf("promotion decision = %+v", last)
	}
}

// TestCanaryRejectsOnLiveRegression: holdout said the challenger was
// fine, live traffic disagrees — after the window fills with the
// champion clearly ahead, the challenger is recorded as rejected and the
// champion keeps serving.
func TestCanaryRejectsOnLiveRegression(t *testing.T) {
	r, reg, canary, store := canaryHarness(t, 8, time.Hour)
	v1 := reg.Current()
	if _, err := store.AppendAll(trainable(20, 100)); err != nil {
		t.Fatal(err)
	}
	if v, err := r.Retrain("auto"); err != nil || v != nil {
		t.Fatalf("divert failed: v=%v err=%v", v, err)
	}
	histBefore := len(reg.Versions())
	// The champion's live errors (0.01) beat anything the challenger can
	// select (at least 0.05) beyond tolerance + slack.
	canary.Observe("", v1.ID, trainable(8, 300), repeat(0.01, 8))

	resolve(r)

	if reg.Current() != v1 {
		t.Fatal("live-regressed challenger was promoted")
	}
	vs := reg.Versions()
	if len(vs) != histBefore+1 || vs[len(vs)-1].Meta.Decision != DecisionRejected {
		t.Fatalf("rejected challenger not recorded in history: %+v", vs[len(vs)-1].Meta)
	}
	if len(canary.States()) != 0 {
		t.Fatal("rejected challenger still pending")
	}
}

// TestCanaryExpiresWithoutTraffic: a challenger that cannot fill its
// window before MaxAge is rejected on expiry — no judgement on quality,
// the champion just keeps serving.
func TestCanaryExpiresWithoutTraffic(t *testing.T) {
	r, reg, canary, store := canaryHarness(t, 8, time.Millisecond)
	v1 := reg.Current()
	if _, err := store.AppendAll(trainable(20, 100)); err != nil {
		t.Fatal(err)
	}
	if v, err := r.Retrain("auto"); err != nil || v != nil {
		t.Fatalf("divert failed: v=%v err=%v", v, err)
	}
	time.Sleep(5 * time.Millisecond)
	if !canary.resolvable(time.Now()) {
		t.Fatal("expired challenger not resolvable")
	}

	resolve(r)

	if reg.Current() != v1 {
		t.Fatal("expired challenger was promoted")
	}
	vs := reg.Versions()
	if vs[len(vs)-1].Meta.Decision != DecisionRejected {
		t.Fatalf("expired challenger not recorded as rejected: %+v", vs[len(vs)-1].Meta)
	}
}

// TestCanaryManualBypass: an operator retrain hot-swaps immediately and
// returns the version even with canary confirmation enabled.
func TestCanaryManualBypass(t *testing.T) {
	r, reg, canary, store := canaryHarness(t, 8, time.Hour)
	v1 := reg.Current()
	if _, err := store.AppendAll(trainable(20, 100)); err != nil {
		t.Fatal(err)
	}
	v, err := r.Retrain("manual")
	if err != nil {
		t.Fatal(err)
	}
	if v == nil || reg.Current() == v1 || reg.Current().ID != v.ID {
		t.Fatalf("manual retrain did not hot-swap: v=%+v current=%+v", v, reg.Current())
	}
	if len(canary.States()) != 0 {
		t.Fatal("manual retrain left a pending challenger")
	}
}

// TestCanaryStaleChampionVoidsChallenger: a challenger proposed against
// one champion must not be promoted once a different version serves the
// target — the shadow comparison is about a replaced model.
func TestCanaryStaleChampionVoidsChallenger(t *testing.T) {
	r, reg, canary, store := canaryHarness(t, 8, time.Hour)
	v1 := reg.Current()
	if _, err := store.AppendAll(trainable(20, 100)); err != nil {
		t.Fatal(err)
	}
	if v, err := r.Retrain("auto"); err != nil || v != nil {
		t.Fatalf("divert failed: v=%v err=%v", v, err)
	}
	canary.Observe("", v1.ID, trainable(8, 300), repeat(0.5, 8))
	// A manual retrain replaces the champion before the verdict.
	if _, err := r.Retrain("manual"); err != nil {
		t.Fatal(err)
	}
	v2 := reg.Current()

	resolve(r)

	if reg.Current() != v2 {
		t.Fatal("stale challenger displaced the freshly served version")
	}
	vs := reg.Versions()
	if vs[len(vs)-1].Meta.Decision != DecisionRejected {
		t.Fatalf("stale challenger not recorded as rejected: %+v", vs[len(vs)-1].Meta)
	}
}

// TestCanaryObserveIgnoresMismatchedChampion: observations credited
// against a different serving version than the challenger was proposed
// under would corrupt the comparison; they are dropped.
func TestCanaryObserveIgnoresMismatchedChampion(t *testing.T) {
	r, reg, canary, store := canaryHarness(t, 8, time.Hour)
	v1 := reg.Current()
	if _, err := store.AppendAll(trainable(20, 100)); err != nil {
		t.Fatal(err)
	}
	if v, err := r.Retrain("auto"); err != nil || v != nil {
		t.Fatalf("divert failed: v=%v err=%v", v, err)
	}
	canary.Observe("", v1.ID+100, trainable(4, 300), repeat(0.5, 4))
	if st := canary.States(); len(st) != 1 || st[0].Samples != 0 {
		t.Fatalf("mismatched-champion observations were credited: %+v", st)
	}
}

// TestAutoRollbackAfterConsecutiveDriftRejects: the breaker — a target
// that keeps drifting while DriftRejectLimit consecutive drift retrains
// are gate-rejected is rolled back to its previous accepted version, the
// streak resets, and the decision ring records the trip.
func TestAutoRollbackAfterConsecutiveDriftRejects(t *testing.T) {
	store, err := OpenStore(t.TempDir(), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if _, err := store.AppendAll(trainable(60, 0)); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	drift := NewDriftTracker(DriftConfig{Window: 16, MinSamples: 4})
	r := NewRetrainer(store, reg, RetrainerConfig{
		Selection: fastConfig(), Drift: drift, DriftRetrain: true,
		DriftRejectLimit: 2,
	})
	// Two accepted versions so the rollback has somewhere to land.
	if _, err := r.Retrain("manual"); err != nil {
		t.Fatal(err)
	}
	v1 := reg.Current()
	if _, err := store.AppendAll(trainable(20, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Retrain("manual"); err != nil {
		t.Fatal(err)
	}
	v2 := reg.Current()
	if v2 == v1 {
		t.Fatal("second manual retrain did not publish")
	}
	// Poison the corpus: subsequent candidates learn inverted labels and
	// fail the truthful holdout, so every drift retrain is rejected.
	if _, err := store.AppendAll(poisonedCorpus(240, 1000)); err != nil {
		t.Fatal(err)
	}
	driftOn := func() {
		v := reg.Current()
		drift.Record(ServedModel{
			Target: "", Version: v.ID, Selector: v.Selector,
			BaselineL1: v.Meta.HoldoutL1, BaselineN: v.Meta.HoldoutN,
		}, repeat(0.9, 8))
	}

	driftOn()
	r.retrainDrifted()
	if reg.Current() != v2 {
		t.Fatal("rejected drift retrain replaced the serving version")
	}
	if got := r.DriftRejects()[""]; got != 1 {
		t.Fatalf("streak after first reject = %d, want 1", got)
	}

	// Expire the per-target cooldown so the second drift verdict is
	// actionable immediately (mirrors TestRetrainerDriftCooldown).
	r.lastDriftAt[""] = time.Now().Add(-2 * time.Hour)
	driftOn()
	r.retrainDrifted()

	if cur := reg.Current(); cur != v1 {
		t.Fatalf("breaker did not roll back to v%d: serving %+v", v1.ID, cur)
	}
	if got := r.DriftRejects()[""]; got != 0 {
		t.Fatalf("streak not reset after the breaker tripped: %d", got)
	}
	ds := r.Decisions()
	last := ds[len(ds)-1]
	if last.Trigger != "auto-rollback" || last.Decision != "rolled_back" || last.Version != v1.ID {
		t.Fatalf("auto-rollback decision = %+v", last)
	}
	// The drift window must follow the rollback: re-keyed to v1, empty.
	if st, ok := drift.Status(""); !ok || st.Version != v1.ID || st.Samples != 0 {
		t.Fatalf("drift window not re-keyed to the rolled-back-to version: %+v", st)
	}
}

// TestAutoRollbackPinsFamilyToGlobal: a family whose only version keeps
// drifting through the breaker has no earlier family version — it is
// pinned to the global fallback instead, and the pin then holds off
// further background retrains exactly like an operator pin.
func TestAutoRollbackPinsFamilyToGlobal(t *testing.T) {
	store, err := OpenStore(t.TempDir(), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if _, err := store.AppendAll(familyExamples(60, 0, "a", false)); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	drift := NewDriftTracker(DriftConfig{Window: 16, MinSamples: 4})
	r := NewRetrainer(store, reg, RetrainerConfig{
		Selection: fastConfig(), FamilyModels: true, MinFamilyExamples: 10,
		Drift: drift, DriftRetrain: true, DriftRejectLimit: 2,
	})
	if _, err := r.Retrain("manual"); err != nil {
		t.Fatal(err)
	}
	va := reg.CurrentFor("a")
	if va == nil || va.Meta.Family != "a" {
		t.Fatalf("family model missing: %+v", va)
	}
	// Poisoned family examples (training-side labels inverted, holdout
	// truthful): every drift retrain of "a" is rejected.
	for i := 1000; i < 1240; i++ {
		probe := familyExample(i, "a", false)
		if err := store.Append(familyExample(i, "a", !isHoldout(&probe))); err != nil {
			t.Fatal(err)
		}
	}
	driftOn := func() {
		v := reg.CurrentFor("a")
		drift.Record(ServedModel{
			Target: "a", Version: v.ID, Selector: v.Selector,
			BaselineL1: v.Meta.HoldoutL1, BaselineN: v.Meta.HoldoutN,
		}, repeat(0.9, 8))
	}

	driftOn()
	r.retrainDrifted()
	if got := r.DriftRejects()["a"]; got != 1 {
		t.Fatalf("streak after first reject = %d, want 1", got)
	}
	r.lastDriftAt["a"] = time.Now().Add(-2 * time.Hour)
	driftOn()
	r.retrainDrifted()

	if !reg.FallbackPinned("a") {
		t.Fatal("breaker did not pin the family to the global fallback")
	}
	if cur := reg.CurrentFor("a"); cur == nil || cur.Meta.Family != "" {
		t.Fatalf("family a not serving from the global model: %+v", cur)
	}
	ds := r.Decisions()
	last := ds[len(ds)-1]
	if last.Trigger != "auto-rollback" || last.Decision != "pinned_to_global" || last.Family != "a" {
		t.Fatalf("auto-rollback decision = %+v", last)
	}
	if _, ok := drift.Status("a"); ok {
		t.Fatal("pinned family's drift window should be tombstoned")
	}
}

// TestHarvesterFeedsCanary: the harvest path shadow-scores a pending
// challenger on exactly the examples that fed the champion's drift
// window.
func TestHarvesterFeedsCanary(t *testing.T) {
	r, reg, canary, store := canaryHarness(t, 4, time.Hour)
	v1 := reg.Current()
	if _, err := store.AppendAll(trainable(20, 100)); err != nil {
		t.Fatal(err)
	}
	if v, err := r.Retrain("auto"); err != nil || v != nil {
		t.Fatalf("divert failed: v=%v err=%v", v, err)
	}
	// Drive Observe through the exported surface the harvester uses.
	served := ServedModel{
		Target: "", Version: v1.ID, Selector: v1.Selector,
		BaselineL1: v1.Meta.HoldoutL1, BaselineN: v1.Meta.HoldoutN,
	}
	exs := trainable(4, 300)
	obs := make([]float64, len(exs))
	for i := range exs {
		obs[i] = exs[i].ErrL1[served.Selector.Select(exs[i].Features)]
	}
	canary.Observe(served.Target, served.Version, exs, obs)
	st := canary.States()
	if len(st) != 1 || st[0].Samples != 4 {
		t.Fatalf("observations not credited: %+v", st)
	}
	if !canary.resolvable(time.Now()) {
		t.Fatal("full window should be resolvable")
	}
}
