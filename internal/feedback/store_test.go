package feedback

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"progressest/internal/progress"
	"progressest/internal/selection"
)

// mkExample builds a deterministic synthetic example keyed by i.
func mkExample(i int) selection.Example {
	var e selection.Example
	e.Features = make([]float64, 7)
	for j := range e.Features {
		e.Features[j] = float64(i)*10 + float64(j) + 0.25
	}
	for k := 0; k < progress.TotalKinds; k++ {
		e.ErrL1[k] = float64(i) + float64(k)/100
		e.ErrL2[k] = float64(i) + float64(k)/1000
	}
	e.Workload = "tpch"
	e.Signature = "Scan:lineitem,Filter:"
	e.Meta = map[string]float64{"query": float64(i), "pipeline": 0, "getnext_total": 1234}
	return e
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]selection.Example, 25)
	for i := range want {
		want[i] = mkExample(i)
		if err := s.Append(want[i]); err != nil {
			t.Fatal(err)
		}
	}
	check := func(s *ExampleStore) {
		t.Helper()
		if s.Len() != len(want) {
			t.Fatalf("Len = %d, want %d", s.Len(), len(want))
		}
		got, err := s.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("example %d diverges after round trip:\n got %+v\nwant %+v", i, got[i], want[i])
			}
		}
	}
	check(s) // live store
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	check(s2) // after reopen
}

func TestStoreSpecialFloatValues(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	e := mkExample(0)
	e.Features[0] = math.Inf(1)
	e.Features[1] = math.Copysign(0, -1)
	e.Features[2] = math.MaxFloat64
	if err := s.Append(e); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	snap2, err := s2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	got := snap2[0]
	if !math.IsInf(got.Features[0], 1) || math.Signbit(got.Features[1]) != true ||
		got.Features[2] != math.MaxFloat64 {
		t.Fatalf("special floats mangled: %v", got.Features[:3])
	}
}

func TestStoreRotationAndRetention(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation every few records; retention caps the
	// corpus at 10 examples.
	s, err := OpenStore(dir, StoreOptions{MaxSegmentBytes: 2048, MaxExamples: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := s.Append(mkExample(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Rotation + retention happened: the very first segment file is gone.
	if _, err := os.Stat(filepath.Join(dir, "seg-00000001.log")); !os.IsNotExist(err) {
		t.Fatalf("oldest segment should have been rotated out and deleted (stat err: %v)", err)
	}
	if s.Len() > 10+5 { // retention drops whole segments, so allow slack
		t.Fatalf("retention did not bound the corpus: %d examples", s.Len())
	}
	// The survivors must be the newest examples, still in append order.
	got, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	last := got[len(got)-1]
	if last.Meta["query"] != 39 {
		t.Fatalf("newest example missing after retention: %v", last.Meta["query"])
	}
	for i := 1; i < len(got); i++ {
		if got[i].Meta["query"] != got[i-1].Meta["query"]+1 {
			t.Fatal("retention broke append order")
		}
	}
	s.Close()
	// Reopen: on-disk state agrees.
	s2, err := OpenStore(dir, StoreOptions{MaxSegmentBytes: 2048, MaxExamples: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != len(got) {
		t.Fatalf("reopen: %d examples, want %d", s2.Len(), len(got))
	}
}

// TestStoreCrashRecoveryTruncatedTail simulates a crash mid-append: the
// tail segment loses a few bytes. Reopening must keep every intact record,
// truncate the torn one, and accept further appends.
func TestStoreCrashRecoveryTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Append(mkExample(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	seg := filepath.Join(dir, "seg-00000001.log")
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Chop off the last 3 bytes: the 5th record is now torn.
	if err := os.Truncate(seg, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if s2.Len() != 4 {
		t.Fatalf("recovered %d examples, want 4", s2.Len())
	}
	// The store keeps working after recovery.
	if err := s2.Append(mkExample(99)); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	got, err := s3.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 || got[4].Meta["query"] != 99 {
		t.Fatalf("post-recovery append lost: %d examples", len(got))
	}
}

// TestStoreCrashRecoveryCorruptRecord flips a payload byte mid-file; the
// scan must keep the prefix before the corruption.
func TestStoreCrashRecoveryCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := s.Append(mkExample(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	seg := filepath.Join(dir, "seg-00000001.log")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte about halfway through (inside record 3's payload).
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer s2.Close()
	if n := s2.Len(); n == 0 || n >= 6 {
		t.Fatalf("recovered %d examples, want a proper non-empty prefix of 6", n)
	}
}

// TestStoreAppendedMonotonicUnderRetention: the lifetime append counter
// keeps growing while retention pins Len() at its cap — the signal the
// retrain policy relies on to keep firing on a saturated corpus.
func TestStoreAppendedMonotonicUnderRetention(t *testing.T) {
	s, err := OpenStore(t.TempDir(), StoreOptions{MaxSegmentBytes: 2048, MaxExamples: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 60; i++ {
		if err := s.Append(mkExample(i)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Appended() != 60 {
		t.Fatalf("Appended = %d, want 60", s.Appended())
	}
	if s.Len() >= 60 {
		t.Fatalf("retention did not drop anything: Len = %d", s.Len())
	}
}

// TestStoreAppendFailureDoesNotPoisonSegment: when a write fails, later
// appends must not land after a torn record (where the recovery scan
// would silently discard them). With the handle broken beyond repair the
// store seals the segment and continues in a fresh one.
func TestStoreAppendFailureDoesNotPoisonSegment(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := s.Append(mkExample(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate an I/O failure on the live handle: write AND truncate fail.
	s.active.Close()
	if err := s.Append(mkExample(9)); err == nil {
		t.Fatal("append on a broken handle should error")
	}
	// The store rotated to a clean segment; appends work again.
	if err := s.Append(mkExample(2)); err != nil {
		t.Fatalf("append after recovery rotation: %v", err)
	}
	s.Close()
	s2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2].Meta["query"] != 2 {
		t.Fatalf("post-failure appends lost: %d examples", len(got))
	}
}

// TestStoreNegativeMaxExamplesDisablesRetention: MaxExamples < 0 must
// never delete a segment — the mode ExportExamples uses so appending to
// someone else's capped corpus cannot destroy their history.
func TestStoreNegativeMaxExamplesDisablesRetention(t *testing.T) {
	s, err := OpenStore(t.TempDir(), StoreOptions{MaxSegmentBytes: 2048, MaxExamples: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 60; i++ {
		if err := s.Append(mkExample(i)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 60 {
		t.Fatalf("retention fired despite being disabled: Len = %d", s.Len())
	}
	if s.Segments() < 2 {
		t.Fatalf("rotation should still happen: %d segments", s.Segments())
	}
}

// TestStoreTailRecoveryIgnoresForeignLastFile: a foreign seg-*.log file
// sorting after the real tail must not demote the tail to sealed-segment
// (no-truncate) recovery.
func TestStoreTailRecoveryIgnoresForeignLastFile(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := s.Append(mkExample(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	// Foreign file that matches the glob, fails the name parse, and sorts
	// last; plus a torn record at the real tail.
	if err := os.WriteFile(filepath.Join(dir, "seg-backup.log"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, "seg-00000001.log")
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, info.Size()-3); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if s2.Len() != 3 {
		t.Fatalf("recovered %d examples, want 3", s2.Len())
	}
	// The torn bytes were truncated away, so this append is recoverable.
	if err := s2.Append(mkExample(42)); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	got, err := s3.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || got[3].Meta["query"] != 42 {
		t.Fatalf("append after foreign-file recovery lost: %d examples", len(got))
	}
}

// TestReadCorpusIsReadOnly: ReadCorpus returns the retained examples
// without creating, truncating or appending anything.
func TestReadCorpusIsReadOnly(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Append(mkExample(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	seg := filepath.Join(dir, "seg-00000001.log")
	info, _ := os.Stat(seg)
	os.Truncate(seg, info.Size()-2) // torn tail

	got, err := ReadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d examples, want the 2 intact ones", len(got))
	}
	// The torn tail was NOT repaired: the file size is untouched.
	after, _ := os.Stat(seg)
	if after.Size() != info.Size()-2 {
		t.Fatalf("ReadCorpus mutated the segment: %d -> %d bytes", info.Size()-2, after.Size())
	}
	// Missing directory errors and is not created.
	missing := filepath.Join(dir, "nope")
	if _, err := ReadCorpus(missing); err == nil {
		t.Fatal("missing dir should error")
	}
	if _, err := os.Stat(missing); !os.IsNotExist(err) {
		t.Fatal("ReadCorpus created the missing directory")
	}
	// A directory without segments errors.
	if _, err := ReadCorpus(t.TempDir()); err == nil {
		t.Fatal("segment-less dir should error")
	}
}

func TestStoreRejectsForeignFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "seg-00000001.log"), []byte("not a corpus at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(dir, StoreOptions{}); err == nil {
		t.Fatal("expected bad-magic error")
	}
}

func TestStoreClosedAppendFails(t *testing.T) {
	s, err := OpenStore(t.TempDir(), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := s.Append(mkExample(0)); err != ErrClosed {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
}

func TestStoreConcurrentAppendSnapshot(t *testing.T) {
	s, err := OpenStore(t.TempDir(), StoreOptions{MaxSegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			if err := s.Append(mkExample(i)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 50; i++ {
		snap, err := s.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		for j := 1; j < len(snap); j++ {
			if snap[j].Meta["query"] != snap[j-1].Meta["query"]+1 {
				t.Fatal("snapshot saw torn append order")
			}
		}
	}
	<-done
	if s.Len() != 200 {
		t.Fatalf("Len = %d, want 200", s.Len())
	}
}
