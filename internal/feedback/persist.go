package feedback

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"progressest/internal/atomicio"
	"progressest/internal/selection"
)

// manifestFormat versions manifest.json; manifestName is its file name
// inside the model directory.
const (
	manifestFormat = 1
	manifestName   = "manifest.json"
)

// manifest is the durable routing table: one entry per routing target
// (global + families) pointing at its selector file, with the version
// metadata a restart needs to rebuild the registry.
type manifest struct {
	Format  int              `json:"format"`
	SavedAt time.Time        `json:"saved_at"`
	Targets []manifestTarget `json:"targets"`
	// Pinned lists families an operator rolled back to the global model;
	// the pin must survive a restart, or the background retrainer would
	// quietly re-publish the model they rejected.
	Pinned []string `json:"pinned_families,omitempty"`
}

type manifestTarget struct {
	Family     string    `json:"family"`
	File       string    `json:"file"`
	ID         int       `json:"id"`
	TrainedAt  time.Time `json:"trained_at"`
	CorpusSize int       `json:"corpus_size"`
	HoldoutL1  float64   `json:"holdout_l1"`
	HoldoutN   int       `json:"holdout_n"`
	Source     string    `json:"source"`
}

// ModelDir persists the serving selector versions next to the corpus so
// a restarted daemon resumes from its last trained models instead of the
// fixed-estimator fallback. Each routing target's selector goes to its
// own per-version JSON file (global-v12.json, family-lineitem-v3.json)
// via selection.Selector.Save (temp-file + fsync + rename, so a crash
// never leaves a torn model), and the atomically renamed manifest.json is
// the commit point for the whole file SET: selector files are only ever
// written under fresh names, so a crash — or a later target's write
// failure — between selector saves and the manifest rename leaves the old
// manifest pointing at the old, untouched files, never at a file whose
// contents changed underneath it. Files no longer referenced are
// garbage-collected after a successful manifest write. Only the CURRENT
// version per target is persisted; the in-memory history (and rollback
// depth) restarts fresh.
type ModelDir struct {
	dir string

	mu sync.Mutex
	// saved maps family → the version ID and file name on disk, so a Sync
	// after a rollback (or an unchanged family) skips the multi-MB
	// selector rewrite and only refreshes the manifest — and so a synced
	// restored version keeps pointing at the file it was loaded from.
	saved map[string]savedModel
	// lastSync is the most recent Sync outcome (nil on success); while
	// non-nil, the on-disk manifest may trail the live routing table.
	lastSync error
}

type savedModel struct {
	id   int
	file string
}

// OpenModelDir opens (or creates) the model directory.
func OpenModelDir(dir string) (*ModelDir, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("feedback: open model dir: %w", err)
	}
	return &ModelDir{dir: dir, saved: make(map[string]savedModel)}, nil
}

// Dir returns the model directory path.
func (d *ModelDir) Dir() string { return d.dir }

// Sync persists the registry's current routing table: every routed
// version's selector file (skipped when already on disk) plus the
// manifest. Selector files of targets no longer routed are left behind
// harmlessly — the manifest alone decides what Restore loads.
func (d *ModelDir) Sync(reg *Registry) (err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	defer func() { d.lastSync = err }()
	// Snapshot the routing state under d.mu: concurrent Sync callers
	// (retrainer publish vs. operator rollback) then serialise in
	// registry-mutation order, so the last manifest written always
	// reflects the registry's latest state, never a stale preempted
	// snapshot. RoutingState couples the table and the pins atomically —
	// they must describe the same instant.
	routed, pins := reg.RoutingState()
	families := make([]string, 0, len(routed))
	for f := range routed {
		families = append(families, f)
	}
	sort.Strings(families)
	m := manifest{Format: manifestFormat, SavedAt: time.Now(), Pinned: pins}
	for _, f := range families {
		v := routed[f]
		sm, ok := d.saved[f]
		if !ok || sm.id != v.ID {
			sm = savedModel{id: v.ID, file: targetFile(f, v.ID)}
			if err := v.Selector.Save(filepath.Join(d.dir, sm.file)); err != nil {
				return fmt.Errorf("feedback: persist model for %q: %w", f, err)
			}
			d.saved[f] = sm
		}
		m.Targets = append(m.Targets, manifestTarget{
			Family:     f,
			File:       sm.file,
			ID:         v.ID,
			TrainedAt:  v.Meta.TrainedAt,
			CorpusSize: v.Meta.CorpusSize,
			HoldoutL1:  v.Meta.HoldoutL1,
			HoldoutN:   v.Meta.HoldoutN,
			Source:     v.Meta.Source,
		})
	}
	if err := d.writeManifestLocked(&m); err != nil {
		return err
	}
	d.collectGarbageLocked(&m)
	return nil
}

// collectGarbageLocked removes selector files the committed manifest no
// longer references — leftovers of superseded versions or of writes whose
// manifest commit never happened. Only files matching this package's
// naming scheme are touched; removal failures are ignored (an orphan
// costs disk, not correctness, and the next Sync retries).
func (d *ModelDir) collectGarbageLocked(m *manifest) {
	referenced := make(map[string]bool, len(m.Targets))
	for _, t := range m.Targets {
		referenced[t.File] = true
	}
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || referenced[name] || !strings.HasSuffix(name, ".json") {
			continue
		}
		if !strings.HasPrefix(name, "global-v") && !strings.HasPrefix(name, "family-") {
			continue // not ours (e.g. the manifest, or an operator's file)
		}
		os.Remove(filepath.Join(d.dir, name))
	}
}

// writeManifestLocked writes manifest.json atomically — the commit point
// for the whole persisted model set.
func (d *ModelDir) writeManifestLocked(m *manifest) error {
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("feedback: marshal manifest: %w", err)
	}
	if err := atomicio.WriteFile(filepath.Join(d.dir, manifestName), data); err != nil {
		return fmt.Errorf("feedback: write manifest: %w", err)
	}
	return nil
}

// LastSyncError returns the most recent Sync outcome (nil on success).
// Every Sync rewrites the whole manifest, so a later success clears an
// earlier failure's staleness.
func (d *ModelDir) LastSyncError() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lastSync
}

// Restore loads the persisted routing table into the registry: each
// manifest target's selector is loaded and published for its family with
// source "restored", preserving the original training metadata for
// inspection in GET /models (the quality gate itself re-evaluates the
// serving selector on each candidate's fresh holdout; it never reads
// these stored numbers). It returns the number of targets restored; a
// missing manifest restores nothing and is not an error.
func (d *ModelDir) Restore(reg *Registry) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	data, err := os.ReadFile(filepath.Join(d.dir, manifestName))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("feedback: read manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return 0, fmt.Errorf("feedback: parse manifest: %w", err)
	}
	if m.Format > manifestFormat {
		return 0, fmt.Errorf("feedback: manifest format %d is newer than this build understands (%d)",
			m.Format, manifestFormat)
	}
	// Global first, then families sorted — so the IDs a restored daemon
	// reports are deterministic.
	targets := append([]manifestTarget(nil), m.Targets...)
	sort.Slice(targets, func(i, j int) bool { return targets[i].Family < targets[j].Family })
	restored := 0
	for _, t := range targets {
		sel, err := selection.Load(filepath.Join(d.dir, t.File))
		if err != nil {
			return restored, fmt.Errorf("feedback: restore model for %q: %w", t.Family, err)
		}
		v := reg.Publish(sel, VersionMeta{
			TrainedAt:  t.TrainedAt,
			CorpusSize: t.CorpusSize,
			HoldoutL1:  t.HoldoutL1,
			HoldoutN:   t.HoldoutN,
			Source:     "restored",
			Family:     t.Family,
		})
		// Remember the file the version came from: the registry assigned
		// it a fresh ID, and a later Sync must keep the manifest pointing
		// at this existing file rather than inventing a name that was
		// never written.
		d.saved[t.Family] = savedModel{id: v.ID, file: t.File}
		restored++
	}
	for _, f := range m.Pinned {
		reg.RestoreFallbackPin(f)
	}
	return restored, nil
}

// targetFile maps a routing target and version to its selector file
// name. The version id in the name is what makes the manifest rename an
// atomic commit of the whole file set — a new version never overwrites a
// file an older manifest references. Family names are sanitised so any
// byte sequence stays a safe single path element.
func targetFile(family string, id int) string {
	if family == "" {
		return fmt.Sprintf("global-v%d.json", id)
	}
	var b strings.Builder
	b.WriteString("family-")
	for i := 0; i < len(family); i++ {
		c := family[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == '-':
			b.WriteByte(c)
		default:
			fmt.Fprintf(&b, "%%%02x", c)
		}
	}
	fmt.Fprintf(&b, "-v%d.json", id)
	return b.String()
}
