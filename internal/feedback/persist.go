package feedback

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"progressest/internal/atomicio"
	"progressest/internal/selection"
)

// manifestFormat versions manifest.json; manifestName is its file name
// inside the model directory.
// Format history: v1 persisted only the serving version per target; v2
// adds each target's bounded rollback history. v1 manifests still
// restore (with empty histories).
const (
	manifestFormat = 2
	manifestName   = "manifest.json"
)

// manifest is the durable routing table: one entry per routing target
// (global + families) pointing at its selector file, with the version
// metadata a restart needs to rebuild the registry.
type manifest struct {
	Format  int              `json:"format"`
	SavedAt time.Time        `json:"saved_at"`
	Targets []manifestTarget `json:"targets"`
	// Pinned lists families an operator rolled back to the global model;
	// the pin must survive a restart, or the background retrainer would
	// quietly re-publish the model they rejected.
	Pinned []string `json:"pinned_families,omitempty"`
}

type manifestTarget struct {
	Family     string    `json:"family"`
	File       string    `json:"file"`
	ID         int       `json:"id"`
	TrainedAt  time.Time `json:"trained_at"`
	CorpusSize int       `json:"corpus_size"`
	HoldoutL1  float64   `json:"holdout_l1"`
	HoldoutN   int       `json:"holdout_n"`
	Source     string    `json:"source"`
	// History is the target's rollback chain, nearest candidate first —
	// the versions successive POST /models/rollback calls would serve,
	// bounded at maxPersistHistory. Restoring them means rollback still
	// has somewhere to go after a restart.
	History []manifestVersion `json:"history,omitempty"`
}

// manifestVersion is one persisted non-serving version in a target's
// rollback history.
type manifestVersion struct {
	File       string    `json:"file"`
	ID         int       `json:"id"`
	TrainedAt  time.Time `json:"trained_at"`
	CorpusSize int       `json:"corpus_size"`
	HoldoutL1  float64   `json:"holdout_l1"`
	HoldoutN   int       `json:"holdout_n"`
	Source     string    `json:"source"`
}

// ModelDir persists the serving selector versions next to the corpus so
// a restarted daemon resumes from its last trained models instead of the
// fixed-estimator fallback. Each routing target's selector goes to its
// own per-version JSON file (global-v12.json, family-lineitem-v3.json)
// via selection.Selector.Save (temp-file + fsync + rename, so a crash
// never leaves a torn model), and the atomically renamed manifest.json is
// the commit point for the whole file SET: selector files are only ever
// written under fresh names, so a crash — or a later target's write
// failure — between selector saves and the manifest rename leaves the old
// manifest pointing at the old, untouched files, never at a file whose
// contents changed underneath it. Files no longer referenced are
// garbage-collected after a successful manifest write. Each target
// persists its serving version PLUS its rollback chain (bounded at
// maxPersistHistory), so a restarted daemon can still roll back.
type ModelDir struct {
	dir string

	mu sync.Mutex
	// saved maps (family, version id) → the file name on disk, so a Sync
	// after a rollback (or an unchanged target) skips the multi-MB
	// selector rewrite and only refreshes the manifest — and so a synced
	// restored version keeps pointing at the file it was loaded from.
	// Entries whose files the GC pass dropped are forgotten with them.
	saved map[savedKey]string
	// lastSync is the most recent Sync outcome (nil on success); while
	// non-nil, the on-disk manifest may trail the live routing table.
	lastSync error
}

type savedKey struct {
	family string
	id     int
}

// OpenModelDir opens (or creates) the model directory.
func OpenModelDir(dir string) (*ModelDir, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("feedback: open model dir: %w", err)
	}
	return &ModelDir{dir: dir, saved: make(map[savedKey]string)}, nil
}

// Dir returns the model directory path.
func (d *ModelDir) Dir() string { return d.dir }

// Sync persists the registry's current routing table and each target's
// rollback chain: every referenced version's selector file (skipped when
// already on disk) plus the manifest. Selector files of versions no
// longer referenced are garbage-collected after the manifest commit —
// the manifest alone decides what Restore loads.
func (d *ModelDir) Sync(reg *Registry) (err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	defer func() { d.lastSync = err }()
	// Snapshot the routing state under d.mu: concurrent Sync callers
	// (retrainer publish vs. operator rollback) then serialise in
	// registry-mutation order, so the last manifest written always
	// reflects the registry's latest state, never a stale preempted
	// snapshot. PersistState couples the table, the rollback chains and
	// the pins atomically — they must describe the same instant.
	routed, chains, pins := reg.PersistState(maxPersistHistory)
	families := make([]string, 0, len(routed))
	for f := range routed {
		families = append(families, f)
	}
	sort.Strings(families)
	m := manifest{Format: manifestFormat, SavedAt: time.Now(), Pinned: pins}
	for _, f := range families {
		v := routed[f]
		file, err := d.ensureSavedLocked(f, v)
		if err != nil {
			return err
		}
		t := manifestTarget{
			Family:     f,
			File:       file,
			ID:         v.ID,
			TrainedAt:  v.Meta.TrainedAt,
			CorpusSize: v.Meta.CorpusSize,
			HoldoutL1:  v.Meta.HoldoutL1,
			HoldoutN:   v.Meta.HoldoutN,
			Source:     v.Meta.Source,
		}
		for _, h := range chains[f] {
			hf, err := d.ensureSavedLocked(f, h)
			if err != nil {
				return err
			}
			t.History = append(t.History, manifestVersion{
				File:       hf,
				ID:         h.ID,
				TrainedAt:  h.Meta.TrainedAt,
				CorpusSize: h.Meta.CorpusSize,
				HoldoutL1:  h.Meta.HoldoutL1,
				HoldoutN:   h.Meta.HoldoutN,
				Source:     h.Meta.Source,
			})
		}
		m.Targets = append(m.Targets, t)
	}
	if err := d.writeManifestLocked(&m); err != nil {
		return err
	}
	d.collectGarbageLocked(&m)
	return nil
}

// ensureSavedLocked makes sure the version's selector file exists on
// disk and returns its name. Versions already written (or restored) are
// not rewritten.
func (d *ModelDir) ensureSavedLocked(family string, v *Version) (string, error) {
	k := savedKey{family: family, id: v.ID}
	if file, ok := d.saved[k]; ok {
		return file, nil
	}
	file := targetFile(family, v.ID)
	if err := v.Selector.Save(filepath.Join(d.dir, file)); err != nil {
		return "", fmt.Errorf("feedback: persist model for %q: %w", family, err)
	}
	d.saved[k] = file
	return file, nil
}

// collectGarbageLocked removes selector files the committed manifest no
// longer references — leftovers of superseded versions or of writes whose
// manifest commit never happened. Only files matching this package's
// naming scheme are touched; removal failures are ignored (an orphan
// costs disk, not correctness, and the next Sync retries).
func (d *ModelDir) collectGarbageLocked(m *manifest) {
	referenced := make(map[string]bool, 2*len(m.Targets))
	for _, t := range m.Targets {
		referenced[t.File] = true
		for _, h := range t.History {
			referenced[h.File] = true
		}
	}
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || referenced[name] || !strings.HasSuffix(name, ".json") {
			continue
		}
		if !strings.HasPrefix(name, "global-v") && !strings.HasPrefix(name, "family-") {
			continue // not ours (e.g. the manifest, or an operator's file)
		}
		os.Remove(filepath.Join(d.dir, name))
	}
	// Forget saved entries for files the manifest dropped — they may be
	// deleted now, and without this the map grows one entry per version
	// ever persisted.
	for k, file := range d.saved {
		if !referenced[file] {
			delete(d.saved, k)
		}
	}
}

// writeManifestLocked writes manifest.json atomically — the commit point
// for the whole persisted model set.
func (d *ModelDir) writeManifestLocked(m *manifest) error {
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("feedback: marshal manifest: %w", err)
	}
	if err := atomicio.WriteFile(filepath.Join(d.dir, manifestName), data); err != nil {
		return fmt.Errorf("feedback: write manifest: %w", err)
	}
	return nil
}

// LastSyncError returns the most recent Sync outcome (nil on success).
// Every Sync rewrites the whole manifest, so a later success clears an
// earlier failure's staleness.
func (d *ModelDir) LastSyncError() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lastSync
}

// Restore loads the persisted routing table into the registry: each
// manifest target's selector is loaded and published for its family with
// source "restored", preserving the original training metadata for
// inspection in GET /models (the quality gate itself re-evaluates the
// serving selector on each candidate's fresh holdout; it never reads
// these stored numbers). It returns the number of targets restored; a
// missing manifest restores nothing and is not an error.
func (d *ModelDir) Restore(reg *Registry) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	data, err := os.ReadFile(filepath.Join(d.dir, manifestName))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("feedback: read manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return 0, fmt.Errorf("feedback: parse manifest: %w", err)
	}
	if m.Format > manifestFormat {
		return 0, fmt.Errorf("feedback: manifest format %d is newer than this build understands (%d)",
			m.Format, manifestFormat)
	}
	// Global first, then families sorted — so the IDs a restored daemon
	// reports are deterministic.
	targets := append([]manifestTarget(nil), m.Targets...)
	sort.Slice(targets, func(i, j int) bool { return targets[i].Family < targets[j].Family })
	restored := 0
	for _, t := range targets {
		// Rollback history first, deepest first, so the registry's version
		// order reproduces the chain: each restored history version is an
		// earlier accepted same-family version of the one published after
		// it — exactly what rollbackCandidateLocked walks. History is
		// best-effort: an unreadable entry only shortens the chain, it
		// must not block restoring the serving model.
		for i := len(t.History) - 1; i >= 0; i-- {
			h := t.History[i]
			sel, err := selection.Load(filepath.Join(d.dir, h.File))
			if err != nil {
				continue
			}
			v := reg.Publish(sel, VersionMeta{
				TrainedAt:  h.TrainedAt,
				CorpusSize: h.CorpusSize,
				HoldoutL1:  h.HoldoutL1,
				HoldoutN:   h.HoldoutN,
				Source:     "restored",
				Family:     t.Family,
			})
			d.saved[savedKey{family: t.Family, id: v.ID}] = h.File
		}
		sel, err := selection.Load(filepath.Join(d.dir, t.File))
		if err != nil {
			return restored, fmt.Errorf("feedback: restore model for %q: %w", t.Family, err)
		}
		v := reg.Publish(sel, VersionMeta{
			TrainedAt:  t.TrainedAt,
			CorpusSize: t.CorpusSize,
			HoldoutL1:  t.HoldoutL1,
			HoldoutN:   t.HoldoutN,
			Source:     "restored",
			Family:     t.Family,
		})
		// Remember the file each version came from: the registry assigned
		// it a fresh ID, and a later Sync must keep the manifest pointing
		// at this existing file rather than inventing a name that was
		// never written.
		d.saved[savedKey{family: t.Family, id: v.ID}] = t.File
		restored++
	}
	for _, f := range m.Pinned {
		reg.RestoreFallbackPin(f)
	}
	return restored, nil
}

// targetFile maps a routing target and version to its selector file
// name. The version id in the name is what makes the manifest rename an
// atomic commit of the whole file set — a new version never overwrites a
// file an older manifest references. Family names are sanitised so any
// byte sequence stays a safe single path element.
func targetFile(family string, id int) string {
	if family == "" {
		return fmt.Sprintf("global-v%d.json", id)
	}
	var b strings.Builder
	b.WriteString("family-")
	for i := 0; i < len(family); i++ {
		c := family[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == '-':
			b.WriteByte(c)
		default:
			fmt.Fprintf(&b, "%%%02x", c)
		}
	}
	fmt.Fprintf(&b, "-v%d.json", id)
	return b.String()
}
