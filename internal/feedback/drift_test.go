package feedback

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

// near reports a ~ b up to the running-sum float residue.
func near(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// repeat returns n copies of v.
func repeat(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// driftServed builds a ServedModel without a selector (Record never
// touches it; the harvester replays the selector before calling Record).
func driftServed(target string, version int, baseline float64, baselineN int) ServedModel {
	return ServedModel{Target: target, Version: version, BaselineL1: baseline, BaselineN: baselineN}
}

// TestDriftTrackerVerdicts drives the ratio+slack boundary, the
// min-samples guard and the no-fair-baseline guard through one table.
// The config uses exactly binary-representable values so the boundary
// cases are exact: threshold = 0.5*2 + 0.25 = 1.25.
func TestDriftTrackerVerdicts(t *testing.T) {
	cases := []struct {
		name     string
		baseline float64
		baseN    int
		errs     []float64
		want     bool
	}{
		{"mean exactly at threshold is not drift", 0.5, 50, repeat(1.25, 8), false},
		{"mean just above threshold drifts", 0.5, 50, repeat(1.3125, 8), true},
		{"mean below threshold", 0.5, 50, repeat(1.0, 8), false},
		{"no fair baseline never drifts", 0.5, 0, repeat(10, 8), false},
		{"zero baseline still has absolute slack", 0, 50, repeat(0.25, 8), false},
		{"zero baseline above slack drifts", 0, 50, repeat(0.5, 8), true},
		{"below min samples never drifts", 0.5, 50, repeat(10, 3), false},
		{"min samples exactly reached drifts", 0.5, 50, repeat(10, 4), true},
		{"mixed window uses the mean", 0.5, 50, []float64{0, 0, 2.5, 2.75}, true}, // mean 1.3125 > 1.25
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := NewDriftTracker(DriftConfig{Window: 16, MinSamples: 4, Ratio: 2, AbsSlack: 0.25})
			tr.Record(driftServed("", 1, tc.baseline, tc.baseN), tc.errs)
			st, ok := tr.Status("")
			if !ok {
				t.Fatal("no status after Record")
			}
			if st.Drifted != tc.want {
				t.Fatalf("drifted = %v, want %v (status %+v)", st.Drifted, tc.want, st)
			}
			if st.Drifted && st.Since.IsZero() {
				t.Fatal("drifted status should carry a Since timestamp")
			}
			if !st.Drifted && !st.Since.IsZero() {
				t.Fatal("non-drifted status should have a zero Since")
			}
		})
	}
}

// TestDriftTrackerWindowRollOver: the verdict follows the WINDOW, not
// the lifetime: a burst of bad observations rolls off once enough good
// ones displace it, and vice versa.
func TestDriftTrackerWindowRollOver(t *testing.T) {
	tr := NewDriftTracker(DriftConfig{Window: 4, MinSamples: 4, Ratio: 2, AbsSlack: 0.25})
	sm := driftServed("", 1, 0.5, 50) // threshold 1.25

	tr.Record(sm, repeat(10, 4))
	if st, _ := tr.Status(""); !st.Drifted {
		t.Fatalf("bad burst should drift: %+v", st)
	}
	// Four good observations displace the whole window.
	tr.Record(sm, repeat(0.1, 4))
	st, _ := tr.Status("")
	if st.Drifted {
		t.Fatalf("recovered window still drifted: %+v", st)
	}
	if st.Samples != 4 {
		t.Fatalf("window samples = %d, want 4 (the window size)", st.Samples)
	}
	if st.Total != 8 {
		t.Fatalf("total = %d, want 8 lifetime observations", st.Total)
	}
	if !near(st.ObservedL1, 0.1) {
		t.Fatalf("windowed mean %v, want 0.1 (old burst rolled off)", st.ObservedL1)
	}
	// A partial roll mixes: two bad ones -> window {0.1, 0.1, 10, 10},
	// mean 5.05 -> drifted again.
	tr.Record(sm, repeat(10, 2))
	if st, _ := tr.Status(""); !st.Drifted || !near(st.ObservedL1, 5.05) {
		t.Fatalf("partial roll: %+v, want drifted with mean 5.05", st)
	}
}

// TestDriftTrackerPerTargetIsolation: a drifting family must not move
// the global window (or another family's), and Statuses reports each
// target separately, sorted.
func TestDriftTrackerPerTargetIsolation(t *testing.T) {
	tr := NewDriftTracker(DriftConfig{Window: 8, MinSamples: 2, Ratio: 2, AbsSlack: 0.25})
	tr.Record(driftServed("", 1, 0.5, 50), repeat(0.1, 4))
	tr.Record(driftServed("scan", 2, 0.5, 50), repeat(10, 4))
	tr.Record(driftServed("join", 3, 0.5, 50), repeat(0.2, 4))

	sts := tr.Statuses()
	if len(sts) != 3 {
		t.Fatalf("got %d targets, want 3", len(sts))
	}
	for i, want := range []string{"", "join", "scan"} {
		if sts[i].Target != want {
			t.Fatalf("statuses[%d].Target = %q, want %q (sorted)", i, sts[i].Target, want)
		}
	}
	for _, st := range sts {
		if want := st.Target == "scan"; st.Drifted != want {
			t.Fatalf("target %q drifted = %v, want %v", st.Target, st.Drifted, want)
		}
	}
	drifted := tr.Drifted()
	if len(drifted) != 1 || drifted[0].Target != "scan" {
		t.Fatalf("Drifted() = %+v, want exactly [scan]", drifted)
	}
}

// TestDriftTrackerVersionTransitions: a newer version resets the
// target's window (fresh baseline, fresh evidence), while a LATE harvest
// for an already replaced version is dropped — a query pinned before the
// swap must not poison the successor's window.
func TestDriftTrackerVersionTransitions(t *testing.T) {
	tr := NewDriftTracker(DriftConfig{Window: 8, MinSamples: 2, Ratio: 2, AbsSlack: 0.25})
	tr.Record(driftServed("", 3, 0.5, 50), repeat(10, 6)) // v3 drifts
	if st, _ := tr.Status(""); !st.Drifted {
		t.Fatal("v3 window should have drifted")
	}

	tr.Record(driftServed("", 4, 0.25, 40), repeat(0.1, 2)) // v4 swaps in
	st, _ := tr.Status("")
	if st.Version != 4 || st.BaselineL1 != 0.25 || st.BaselineN != 40 {
		t.Fatalf("swap did not re-key the window: %+v", st)
	}
	if st.Samples != 2 || st.Drifted {
		t.Fatalf("swap should reset the window: %+v", st)
	}

	tr.Record(driftServed("", 3, 0.5, 50), repeat(10, 6)) // late v3 harvest
	if st, _ := tr.Status(""); st.Samples != 2 || st.Version != 4 {
		t.Fatalf("late harvest for replaced v3 should be dropped: %+v", st)
	}

	tr.Record(ServedModel{Target: "", Version: 0}, repeat(10, 6)) // unversioned
	if st, _ := tr.Status(""); st.Samples != 2 {
		t.Fatalf("version-0 records should be ignored: %+v", st)
	}
}

// TestDriftTrackerResetForcesFreshEvidence: Reset (the gate-rejected
// drift-retrain path) clears the window without forgetting the version,
// so the verdict needs MinSamples fresh observations to fire again.
func TestDriftTrackerResetForcesFreshEvidence(t *testing.T) {
	tr := NewDriftTracker(DriftConfig{Window: 8, MinSamples: 4, Ratio: 2, AbsSlack: 0.25})
	sm := driftServed("scan", 7, 0.5, 50)
	tr.Record(sm, repeat(10, 8))
	if st, _ := tr.Status("scan"); !st.Drifted {
		t.Fatal("should drift before reset")
	}
	tr.Reset("scan")
	st, _ := tr.Status("scan")
	if st.Drifted || st.Samples != 0 || st.Total != 0 || !st.Since.IsZero() {
		t.Fatalf("reset left state behind: %+v", st)
	}
	if st.Version != 7 {
		t.Fatalf("reset should keep the version binding, got %+v", st)
	}
	tr.Record(sm, repeat(10, 3))
	if st, _ := tr.Status("scan"); st.Drifted {
		t.Fatalf("verdict re-fired before MinSamples fresh observations: %+v", st)
	}
	tr.Record(sm, repeat(10, 1))
	if st, _ := tr.Status("scan"); !st.Drifted {
		t.Fatalf("verdict should fire again after fresh evidence: %+v", st)
	}
	tr.Reset("nonexistent") // must not panic or invent a target
	if _, ok := tr.Status("nonexistent"); ok {
		t.Fatal("Reset conjured a target")
	}
}

// TestDriftTrackerRebindRollback: a rollback moves the bound version
// BACKWARDS via Rebind — observations about the rolled-back-to model
// are accepted again, stragglers from the rolled-back-from version stay
// dropped, and a fresh publish still re-keys forward.
func TestDriftTrackerRebindRollback(t *testing.T) {
	tr := NewDriftTracker(DriftConfig{Window: 8, MinSamples: 2, Ratio: 2, AbsSlack: 0.25})
	v1 := driftServed("", 1, 0.5, 50)
	v2 := driftServed("", 2, 0.25, 40)
	tr.Record(v1, repeat(0.1, 2))
	tr.Record(v2, repeat(10, 4)) // v2 serves, drifts

	// Operator rolls back to v1.
	tr.Rebind("", v1, 2)
	st, ok := tr.Status("")
	if !ok || st.Version != 1 || st.BaselineL1 != 0.5 || st.Samples != 0 || st.Drifted {
		t.Fatalf("rebind to v1: %+v", st)
	}
	// v1's observations now count again — this is the window the
	// operator is watching to judge the rollback.
	tr.Record(v1, repeat(0.1, 3))
	if st, _ := tr.Status(""); st.Samples != 3 || st.Version != 1 {
		t.Fatalf("post-rollback v1 records dropped: %+v", st)
	}
	// A straggler query pinned to v2 pre-rollback finishes late: its id
	// is above the bound version but NOT above the high-water mark, so
	// it must not re-key the window back to the rolled-back-from model.
	tr.Record(v2, repeat(10, 4))
	if st, _ := tr.Status(""); st.Version != 1 || st.Samples != 3 {
		t.Fatalf("v2 straggler poisoned the rolled-back window: %+v", st)
	}
	// A genuinely new publish re-keys forward.
	tr.Record(driftServed("", 3, 0.3, 30), repeat(0.1, 1))
	if st, _ := tr.Status(""); st.Version != 3 || st.Samples != 1 {
		t.Fatalf("new publish after rollback: %+v", st)
	}
}

// TestDriftTrackerRebindBeforeFirstHarvest: a rollback can land before
// the target's first harvest; Rebind must still install the window (and
// its superseded floor), or the rolled-back-from version's straggler
// would create one keyed to the dead version and shut out the serving
// model's evidence.
func TestDriftTrackerRebindBeforeFirstHarvest(t *testing.T) {
	tr := NewDriftTracker(DriftConfig{Window: 8, MinSamples: 2, Ratio: 2, AbsSlack: 0.25})
	v1 := driftServed("", 1, 0.5, 50)
	tr.Rebind("", v1, 2) // rollback v2 -> v1 with no harvest ever recorded

	tr.Record(driftServed("", 2, 0.2, 30), repeat(10, 4)) // v2 straggler
	st, ok := tr.Status("")
	if !ok || st.Version != 1 || st.Samples != 0 {
		t.Fatalf("straggler hijacked the pre-harvest rebind: %+v", st)
	}
	tr.Record(v1, repeat(0.1, 2))
	if st, _ := tr.Status(""); st.Version != 1 || st.Samples != 2 {
		t.Fatalf("serving version's records dropped: %+v", st)
	}
}

// TestDriftTrackerRebindNeverHarvestedSuperseded: rolling back from a
// version that never finished a query (so the tracker's own high-water
// mark has not seen its id) must still drop that version's stragglers —
// the superseded floor passed to Rebind, without which the straggler
// would masquerade as a fresh publish and hijack the window from the
// version actually serving.
func TestDriftTrackerRebindNeverHarvestedSuperseded(t *testing.T) {
	tr := NewDriftTracker(DriftConfig{Window: 8, MinSamples: 2, Ratio: 2, AbsSlack: 0.25})
	v5 := driftServed("", 5, 0.5, 50)
	tr.Record(v5, repeat(0.1, 2)) // maxSeen 5
	// v6 publishes but no v6-served query has finished yet; the operator
	// rolls back to v5 immediately.
	tr.Rebind("", v5, 6)
	// The in-flight v6 query finishes late: 6 is above the harvest-seen
	// mark but not above the superseded floor — drop it.
	tr.Record(driftServed("", 6, 0.2, 30), repeat(10, 4))
	st, ok := tr.Status("")
	if !ok || st.Version != 5 || st.Samples != 0 {
		t.Fatalf("never-harvested superseded version hijacked the window: %+v", st)
	}
	// The serving v5's observations land normally.
	tr.Record(v5, repeat(0.1, 2))
	if st, _ := tr.Status(""); st.Version != 5 || st.Samples != 2 {
		t.Fatalf("serving version's records dropped: %+v", st)
	}
	// The NEXT real publish (id above the floor) re-keys forward.
	tr.Record(driftServed("", 7, 0.3, 30), repeat(0.1, 1))
	if st, _ := tr.Status(""); st.Version != 7 {
		t.Fatalf("fresh publish after rollback: %+v", st)
	}
}

// TestDriftConfigClampsMinSamplesToWindow: a window smaller than the
// minimum sample count would make every verdict impossible; the config
// clamps instead of silently disabling detection.
func TestDriftConfigClampsMinSamplesToWindow(t *testing.T) {
	tr := NewDriftTracker(DriftConfig{Window: 8}) // MinSamples defaults to 32
	if got := tr.Config(); got.MinSamples != 8 {
		t.Fatalf("MinSamples = %d, want clamped to window 8", got.MinSamples)
	}
	tr.Record(driftServed("", 1, 0.001, 50), repeat(10, 8))
	if len(tr.Drifted()) != 1 {
		t.Fatal("a full window must be able to reach a verdict")
	}
}

// TestDriftTrackerTombstone: rolling a family back past its last version
// leaves no serving version for the target; the tombstoned window
// disappears from Statuses, keeps dropping stragglers, and comes back
// only with a fresh publish.
func TestDriftTrackerTombstone(t *testing.T) {
	tr := NewDriftTracker(DriftConfig{Window: 8, MinSamples: 2, Ratio: 2, AbsSlack: 0.25})
	v5 := driftServed("scan", 5, 0.5, 50)
	tr.Record(v5, repeat(10, 4))
	tr.Rebind("scan", ServedModel{Target: "scan"}, 5) // rolled back past the last version

	if _, ok := tr.Status("scan"); ok {
		t.Fatal("tombstoned target still reports status")
	}
	if got := tr.Statuses(); len(got) != 0 {
		t.Fatalf("tombstoned target in Statuses: %+v", got)
	}
	tr.Record(v5, repeat(10, 4)) // straggler for the rolled-back-from version
	if len(tr.Drifted()) != 0 {
		t.Fatal("straggler revived a tombstoned window")
	}
	// A new publish for the family (which clears the registry pin)
	// re-keys and tracking resumes.
	tr.Record(driftServed("scan", 6, 0.3, 30), repeat(0.1, 2))
	if st, ok := tr.Status("scan"); !ok || st.Version != 6 || st.Samples != 2 {
		t.Fatalf("post-tombstone publish: %+v", st)
	}
}

// TestRetrainerDriftHonorsFallbackPin: a drift verdict pending when the
// operator rolls the family back past its last version (pinning it to
// the global fallback) must NOT republish an ungated family model — the
// same operator decision the size/age path honors.
func TestRetrainerDriftHonorsFallbackPin(t *testing.T) {
	store, err := OpenStore(t.TempDir(), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if _, err := store.AppendAll(familyExamples(60, 0, "a", false)); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	drift := NewDriftTracker(DriftConfig{Window: 16, MinSamples: 4})
	r := NewRetrainer(store, reg, RetrainerConfig{
		Selection: fastConfig(), FamilyModels: true, MinFamilyExamples: 10,
		Drift: drift, DriftRetrain: true,
	})
	if _, err := r.Retrain("manual"); err != nil {
		t.Fatal(err)
	}
	va := reg.CurrentFor("a")
	drift.Record(ServedModel{
		Target: "a", Version: va.ID, Selector: va.Selector,
		BaselineL1: va.Meta.HoldoutL1, BaselineN: va.Meta.HoldoutN,
	}, repeat(0.9, 8))

	// Operator rolls the family back past its only version: route gone,
	// pin set.
	if _, err := reg.Rollback("a"); err != nil {
		t.Fatal(err)
	}
	if !reg.FallbackPinned("a") {
		t.Fatal("rollback past last version should pin the family")
	}
	histBefore := len(reg.Versions())

	r.retrainDrifted()

	if len(reg.Versions()) != histBefore {
		t.Fatal("drift retrain published despite the operator pin")
	}
	if reg.CurrentFor("a").Meta.Family != "" {
		t.Fatal("family a no longer falls back to the global model")
	}
	if _, ok := drift.Status("a"); ok {
		t.Fatal("pinned family's window should be tombstoned")
	}
}

// TestRetrainerDriftStaleVerdictRebinds: when a concurrent retrain
// already replaced the drifted version, the background trigger must not
// train against the old version's observations; it re-keys the window
// to the current version instead.
func TestRetrainerDriftStaleVerdictRebinds(t *testing.T) {
	store, err := OpenStore(t.TempDir(), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if _, err := store.AppendAll(trainable(60, 0)); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	drift := NewDriftTracker(DriftConfig{Window: 16, MinSamples: 4})
	r := NewRetrainer(store, reg, RetrainerConfig{
		Selection: fastConfig(), Drift: drift, DriftRetrain: true,
	})
	if _, err := r.Retrain("manual"); err != nil {
		t.Fatal(err)
	}
	v1 := reg.Current()
	drift.Record(ServedModel{
		Target: "", Version: v1.ID, Selector: v1.Selector,
		BaselineL1: v1.Meta.HoldoutL1, BaselineN: v1.Meta.HoldoutN,
	}, repeat(0.9, 8))

	// A manual retrain wins the race and publishes v2 before the tick.
	if _, err := r.Retrain("manual"); err != nil {
		t.Fatal(err)
	}
	v2 := reg.Current()
	if v2 == v1 {
		t.Fatal("manual retrain did not publish")
	}
	histBefore := len(reg.Versions())

	r.retrainDrifted()

	if len(reg.Versions()) != histBefore || reg.Current() != v2 {
		t.Fatal("stale drift verdict trained a fresh version anyway")
	}
	st, ok := drift.Status("")
	if !ok || st.Version != v2.ID || st.Samples != 0 {
		t.Fatalf("window not re-keyed to the serving version: %+v", st)
	}
}

// TestRetrainerDriftRespectsFamilyFloor: a drifted family whose retained
// corpus slice shrank below MinFamilyExamples is not retrained (the
// size/age path's training floor applies); its window resets to wait
// for fresh evidence.
func TestRetrainerDriftRespectsFamilyFloor(t *testing.T) {
	store, err := OpenStore(t.TempDir(), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if _, err := store.AppendAll(familyExamples(60, 0, "a", false)); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	drift := NewDriftTracker(DriftConfig{Window: 16, MinSamples: 4})
	r := NewRetrainer(store, reg, RetrainerConfig{
		Selection: fastConfig(), FamilyModels: true,
		MinFamilyExamples: 1000, // nothing can clear the floor
		Drift:             drift, DriftRetrain: true,
	})
	if _, err := r.Retrain("manual"); err != nil {
		t.Fatal(err)
	}
	// No family model trained (floor); fabricate the family serving
	// version so the drift window has a real target to judge.
	gv := reg.Current()
	va := reg.Publish(gv.Selector, VersionMeta{
		TrainedAt: time.Now(), HoldoutL1: 0.001, HoldoutN: 10, Source: "manual", Family: "a",
	})
	drift.Record(ServedModel{
		Target: "a", Version: va.ID, Selector: va.Selector,
		BaselineL1: va.Meta.HoldoutL1, BaselineN: va.Meta.HoldoutN,
	}, repeat(0.9, 8))
	histBefore := len(reg.Versions())

	r.retrainDrifted()

	if len(reg.Versions()) != histBefore || reg.CurrentFor("a") != va {
		t.Fatal("drift retrain ignored the family training floor")
	}
	if st, ok := drift.Status("a"); !ok || st.Samples != 0 || st.Drifted {
		t.Fatalf("underfed family's window should reset: %+v", st)
	}
}

// TestDriftTrackerQuantile: ObservedP90 is the nearest-rank 90th
// percentile of the window.
func TestDriftTrackerQuantile(t *testing.T) {
	tr := NewDriftTracker(DriftConfig{Window: 16, MinSamples: 2})
	errs := make([]float64, 10)
	for i := range errs {
		errs[i] = float64(i + 1) // 1..10
	}
	tr.Record(driftServed("", 1, 0.5, 50), errs)
	st, _ := tr.Status("")
	if st.ObservedP90 != 9 {
		t.Fatalf("p90 = %v, want 9 (nearest rank over 1..10)", st.ObservedP90)
	}
	if st.ObservedL1 != 5.5 {
		t.Fatalf("mean = %v, want 5.5", st.ObservedL1)
	}
}

// TestDriftTrackerConcurrent hammers Record, Status, Statuses, Drifted
// and Reset from many goroutines; under -race this proves the tracker is
// data-race-free on the harvest hot path.
func TestDriftTrackerConcurrent(t *testing.T) {
	tr := NewDriftTracker(DriftConfig{Window: 32, MinSamples: 8})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			target := fmt.Sprintf("fam%d", g%2)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tr.Record(driftServed(target, 1+i/100, 0.05, 50), repeat(float64(i%5)/10, 3))
			}
		}(g)
	}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch g {
				case 0:
					tr.Statuses()
					tr.Drifted()
				case 1:
					tr.Status("fam0")
					tr.Status("fam1")
				case 2:
					tr.Reset("fam1")
				}
			}
		}(g)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	for _, st := range tr.Statuses() {
		if st.Samples > 32 {
			t.Fatalf("window overflowed: %+v", st)
		}
	}
}

// TestRetrainerDecisionRingBounded: the decision history keeps the most
// recent maxDecisions entries, oldest dropped first.
func TestRetrainerDecisionRingBounded(t *testing.T) {
	store, err := OpenStore(t.TempDir(), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	r := NewRetrainer(store, NewRegistry(), RetrainerConfig{Selection: fastConfig()})
	for i := 1; i <= maxDecisions+10; i++ {
		r.recordDecision(&Version{ID: i, Meta: VersionMeta{TrainedAt: time.Now(), Decision: DecisionAccepted}}, "auto", 0)
	}
	ds := r.Decisions()
	if len(ds) != maxDecisions {
		t.Fatalf("ring length %d, want %d", len(ds), maxDecisions)
	}
	if ds[0].Version != 11 || ds[len(ds)-1].Version != maxDecisions+10 {
		t.Fatalf("ring kept wrong window: first v%d last v%d", ds[0].Version, ds[len(ds)-1].Version)
	}
}

// TestRetrainerDriftRetrainsOnlyDriftedTarget: with two family models
// serving, a drift verdict against one family retrains exactly that
// family (source "drift", provenance in the decision ring) and leaves
// the other family's and the global model untouched; the handled window
// is reset afterwards.
func TestRetrainerDriftRetrainsOnlyDriftedTarget(t *testing.T) {
	store, err := OpenStore(t.TempDir(), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if _, err := store.AppendAll(familyExamples(60, 0, "a", false)); err != nil {
		t.Fatal(err)
	}
	if _, err := store.AppendAll(familyExamples(60, 200, "b", false)); err != nil {
		t.Fatal(err)
	}

	reg := NewRegistry()
	drift := NewDriftTracker(DriftConfig{Window: 16, MinSamples: 4, Ratio: 1.5, AbsSlack: 0.01})
	r := NewRetrainer(store, reg, RetrainerConfig{
		Selection:    fastConfig(),
		FamilyModels: true,
		Drift:        drift,
		DriftRetrain: true,
	})
	if _, err := r.Retrain("manual"); err != nil {
		t.Fatal(err)
	}
	va, vb := reg.CurrentFor("a"), reg.CurrentFor("b")
	vg := reg.Current()
	if va == nil || vb == nil || va.Meta.Family != "a" || vb.Meta.Family != "b" {
		t.Fatalf("family models missing: a=%+v b=%+v", va, vb)
	}

	// Family a's serving model drifts: observed errors far above its
	// holdout baseline.
	drift.Record(ServedModel{
		Target: "a", Version: va.ID, Selector: va.Selector,
		BaselineL1: va.Meta.HoldoutL1, BaselineN: va.Meta.HoldoutN,
	}, repeat(0.9, 8))
	if got := drift.Drifted(); len(got) != 1 || got[0].Target != "a" {
		t.Fatalf("Drifted() = %+v, want [a]", got)
	}

	r.retrainDrifted()

	na := reg.CurrentFor("a")
	if na == nil || na.ID == va.ID {
		t.Fatalf("drifted family was not retrained: %+v", na)
	}
	if na.Meta.Source != "drift" || na.Meta.Family != "a" {
		t.Fatalf("drift retrain provenance wrong: %+v", na.Meta)
	}
	if reg.CurrentFor("b") != vb {
		t.Fatal("healthy family b was retrained by a's drift")
	}
	if reg.Current() != vg {
		t.Fatal("global model was retrained by a family drift")
	}
	var found *TrainDecision
	for _, d := range r.Decisions() {
		if d.Trigger == "drift" {
			d := d
			if found != nil {
				t.Fatalf("more than one drift decision: %+v and %+v", *found, d)
			}
			found = &d
		}
	}
	if found == nil || found.Family != "a" || found.Version != na.ID || !near(found.ObservedL1, 0.9) {
		t.Fatalf("drift decision missing or wrong: %+v", found)
	}
	if st, ok := drift.Status("a"); !ok || st.Samples != 0 || st.Drifted {
		t.Fatalf("drift window not reset after retrain: %+v", st)
	}
}

// TestRetrainerDriftDoesNotMaskTrainingErrors: a clean drift pass in
// the same poll tick as a failed size/age run must not wipe the
// recorded failure from LastError.
func TestRetrainerDriftDoesNotMaskTrainingErrors(t *testing.T) {
	store, err := OpenStore(t.TempDir(), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if _, err := store.AppendAll(trainable(60, 0)); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	drift := NewDriftTracker(DriftConfig{Window: 16, MinSamples: 4})
	r := NewRetrainer(store, reg, RetrainerConfig{
		Selection: fastConfig(), Drift: drift, DriftRetrain: true,
	})
	if _, err := r.Retrain("manual"); err != nil {
		t.Fatal(err)
	}
	v1 := reg.Current()
	drift.Record(ServedModel{
		Target: "", Version: v1.ID, Selector: v1.Selector,
		BaselineL1: v1.Meta.HoldoutL1, BaselineN: v1.Meta.HoldoutN,
	}, repeat(0.95, 8))

	sizeAgeFailure := errors.New("size/age run failed this tick")
	r.mu.Lock()
	r.lastErr = sizeAgeFailure
	r.mu.Unlock()

	r.retrainDrifted() // succeeds (publishes a drift version)

	if reg.Current() == v1 {
		t.Fatal("drift retrain should have published")
	}
	if got := r.LastError(); got != sizeAgeFailure {
		t.Fatalf("clean drift pass masked the recorded failure: LastError = %v", got)
	}
}

// TestRetrainerDriftCooldown: a target that keeps drifting is retrained
// at most once per Policy.MinInterval — the drift analogue of the
// size/age path's age gate — so sustained drift cannot spin a full
// training run every poll tick.
func TestRetrainerDriftCooldown(t *testing.T) {
	store, err := OpenStore(t.TempDir(), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if _, err := store.AppendAll(trainable(60, 0)); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	drift := NewDriftTracker(DriftConfig{Window: 16, MinSamples: 4})
	r := NewRetrainer(store, reg, RetrainerConfig{
		Selection: fastConfig(), Drift: drift, DriftRetrain: true,
		Policy: RetrainPolicy{MinInterval: time.Hour},
	})
	if _, err := r.Retrain("manual"); err != nil {
		t.Fatal(err)
	}
	driftOn := func() {
		v := reg.Current()
		drift.Record(ServedModel{
			Target: "", Version: v.ID, Selector: v.Selector,
			BaselineL1: v.Meta.HoldoutL1, BaselineN: v.Meta.HoldoutN,
		}, repeat(0.95, 8))
	}
	driftOn()
	r.retrainDrifted() // first run: lastDriftAt zero, allowed
	v2 := reg.Current()
	if v2.Meta.Source != "drift" {
		t.Fatalf("first drift retrain did not run: %+v", v2.Meta)
	}
	// The new version immediately drifts again; the cooldown (1h) must
	// hold the second run back without touching the window.
	driftOn()
	r.retrainDrifted()
	if reg.Current() != v2 {
		t.Fatal("drift retrain spun within MinInterval")
	}
	if st, _ := drift.Status(""); !st.Drifted {
		t.Fatal("cooldown should leave the pending verdict intact")
	}
	// Expiring the cooldown releases it.
	r.lastDriftAt[""] = time.Now().Add(-2 * time.Hour)
	r.retrainDrifted()
	if reg.Current() == v2 {
		t.Fatal("expired cooldown still blocked the retrain")
	}
}

// TestRetrainerDriftGlobalTarget: a drifted GLOBAL window retrains the
// global model on the full corpus.
func TestRetrainerDriftGlobalTarget(t *testing.T) {
	store, err := OpenStore(t.TempDir(), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if _, err := store.AppendAll(trainable(60, 0)); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	drift := NewDriftTracker(DriftConfig{Window: 16, MinSamples: 4})
	r := NewRetrainer(store, reg, RetrainerConfig{
		Selection: fastConfig(), Drift: drift, DriftRetrain: true,
	})
	if _, err := r.Retrain("manual"); err != nil {
		t.Fatal(err)
	}
	v1 := reg.Current()
	drift.Record(ServedModel{
		Target: "", Version: v1.ID, Selector: v1.Selector,
		BaselineL1: v1.Meta.HoldoutL1, BaselineN: v1.Meta.HoldoutN,
	}, repeat(0.95, 8))
	r.retrainDrifted()
	v2 := reg.Current()
	if v2 == v1 || v2.Meta.Source != "drift" || v2.Meta.Family != "" {
		t.Fatalf("global drift retrain: %+v", v2.Meta)
	}
}

// TestRetrainerDriftDisabled: with DriftRetrain off the tracker still
// accumulates verdicts but the background trigger never fires.
func TestRetrainerDriftDisabled(t *testing.T) {
	store, err := OpenStore(t.TempDir(), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if _, err := store.AppendAll(trainable(60, 0)); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	drift := NewDriftTracker(DriftConfig{MinSamples: 4})
	r := NewRetrainer(store, reg, RetrainerConfig{
		Selection: fastConfig(), Drift: drift, DriftRetrain: false,
	})
	if _, err := r.Retrain("manual"); err != nil {
		t.Fatal(err)
	}
	v1 := reg.Current()
	drift.Record(ServedModel{
		Target: "", Version: v1.ID, Selector: v1.Selector,
		BaselineL1: v1.Meta.HoldoutL1, BaselineN: v1.Meta.HoldoutN,
	}, repeat(0.95, 8))
	if len(r.driftDue()) != 0 {
		t.Fatal("driftDue should be empty with DriftRetrain off")
	}
	r.retrainDrifted() // must be a no-op
	if reg.Current() != v1 {
		t.Fatal("retrainDrifted retrained despite DriftRetrain off")
	}
	if got := drift.Drifted(); len(got) != 1 {
		t.Fatalf("tracking itself should continue: %+v", got)
	}
}
